package sccg_test

// The benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§5). Each benchmark drives the corresponding
// internal/experiments reproduction and reports the headline quantity of the
// paper's presentation as a custom metric, so
//
//	go test -bench=. -benchmem
//
// regenerates every result. cmd/bench prints the same experiments as full
// paper-style tables; EXPERIMENTS.md records paper-vs-measured values.

import (
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/gpu"
	"repro/internal/montecarlo"
	"repro/internal/pathology"
	"repro/internal/pipeline"
	"repro/internal/pixelbox"
)

// skipIfShort gates the long paper-reproduction benchmarks so -short runs
// (e.g. `go test -short -bench .` while iterating) stay fast.
func skipIfShort(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("long benchmark: skipped in -short mode")
	}
}

// The algorithm experiments (§5.2-5.4) use a subset of pairs from a few
// representative tiles, as the paper uses 15724 pairs from two
// representative polygon files of oligoastroIII_1.
var (
	benchOnce    sync.Once
	benchDataset *pathology.Dataset
	benchSubset  []pixelbox.Pair
)

func benchSetup() (*pathology.Dataset, []pixelbox.Pair) {
	benchOnce.Do(func() {
		spec := pathology.Representative()
		benchDataset = pathology.Generate(spec)
		sub := *benchDataset
		sub.Pairs = benchDataset.Pairs[:3]
		benchSubset = experiments.FilteredPairs(&sub)
	})
	return benchDataset, benchSubset
}

// BenchmarkFig2QueryDecomposition regenerates Fig. 2: the SDBMS operator
// profile for both query forms. Reported metric: the optimised query's
// Area_Of_Intersection share (paper: ~90%).
func BenchmarkFig2QueryDecomposition(b *testing.B) {
	skipIfShort(b)
	d, _ := benchSetup()
	var share float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig2(d)
		if err != nil {
			b.Fatal(err)
		}
		p := res.Optimized.Profile
		share = float64(p.AreaOfIntersection) / float64(p.Total())
	}
	b.ReportMetric(share*100, "%intersection")
}

// BenchmarkFig7GEOSvsPixelBox regenerates Fig. 7 over every filtered pair
// of the representative dataset. Reported metrics: speedups over the GEOS
// baseline (paper: 1.48x for PixelBox-CPU-S, >100x for PixelBox).
func BenchmarkFig7GEOSvsPixelBox(b *testing.B) {
	skipIfShort(b)
	d, _ := benchSetup()
	var cpuS, gpuBox float64
	for i := 0; i < b.N; i++ {
		res := experiments.Fig7(d)
		cpuS, gpuBox = res.Speedups()
	}
	b.ReportMetric(cpuS, "cpuS-x")
	b.ReportMetric(gpuBox, "pixelbox-x")
}

// BenchmarkFig8ScaleFactors regenerates Fig. 8: PixelOnly vs PixelBox-NoSep
// vs PixelBox over scale factors 1-5. Reported metric: PixelBox's speedup
// over PixelOnly at SF5 (the paper's box+indirect-union combination wins by
// a widening margin as polygons grow).
func BenchmarkFig8ScaleFactors(b *testing.B) {
	skipIfShort(b)
	_, pairs := benchSetup()
	var sf5 float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig8(pairs, 5)
		last := rows[len(rows)-1]
		sf5 = last.PixelOnlySecs / last.PixelBoxSecs
	}
	b.ReportMetric(sf5, "sf5-gain-x")
}

// BenchmarkFig9Optimizations regenerates Fig. 9: the NoOpt/NBC/NBC-UR/
// NBC-UR-SM ladder at SF 1, 3, 5. Reported metrics: full-ladder speedups at
// SF1 and SF5 (paper: 1.14x and 1.30x).
func BenchmarkFig9Optimizations(b *testing.B) {
	skipIfShort(b)
	_, pairs := benchSetup()
	var sf1, sf5 float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig9(pairs, []int{1, 3, 5})
		_, _, sf1 = rows[0].Speedups()
		_, _, sf5 = rows[2].Speedups()
	}
	b.ReportMetric(sf1, "sf1-x")
	b.ReportMetric(sf5, "sf5-x")
}

// BenchmarkFig10ThresholdSensitivity regenerates Fig. 10: device time vs
// pixelization threshold T at block size 64 for each scale factor. Reported
// metric: the best threshold at SF5 (paper: in [n²/8, n²] = [512, 4096]).
func BenchmarkFig10ThresholdSensitivity(b *testing.B) {
	skipIfShort(b)
	_, pairs := benchSetup()
	thresholds := []int{16, 64, 128, 512, 1024, 2048, 4096, 16384, 65536}
	var best float64
	for i := 0; i < b.N; i++ {
		series := experiments.Fig10(pairs, 64, thresholds, []int{1, 2, 3, 4, 5})
		best = float64(series[len(series)-1].Best().Threshold)
	}
	b.ReportMetric(best, "best-T-sf5")
}

// BenchmarkTable1PipelineSchemes regenerates Table 1: PostGIS-S vs
// NoPipe-S / NoPipe-M / Pipelined. Reported metrics: each scheme's speedup
// (paper: 37.07 / 63.64 / 76.02).
func BenchmarkTable1PipelineSchemes(b *testing.B) {
	skipIfShort(b)
	d, _ := benchSetup()
	var s, m, p float64
	for i := 0; i < b.N; i++ {
		cal := experiments.Calibrate(d)
		res, err := experiments.Table1(d, cal)
		if err != nil {
			b.Fatal(err)
		}
		s, m, p = res.Speedups()
	}
	b.ReportMetric(s, "nopipe-s-x")
	b.ReportMetric(m, "nopipe-m-x")
	b.ReportMetric(p, "pipelined-x")
}

// BenchmarkFig11TaskMigration regenerates Fig. 11: task-migration benefit
// on the three platform configurations. Reported metrics: normalised
// throughput per configuration (paper: ~1.5 / ~1.4 / ~1.14).
func BenchmarkFig11TaskMigration(b *testing.B) {
	skipIfShort(b)
	d, _ := benchSetup()
	var c1, c2, c3 float64
	for i := 0; i < b.N; i++ {
		cal := experiments.Calibrate(d)
		rows, err := experiments.Fig11(cal)
		if err != nil {
			b.Fatal(err)
		}
		c1, c2, c3 = rows[0].NormThroughput, rows[1].NormThroughput, rows[2].NormThroughput
	}
	b.ReportMetric(c1, "config-I")
	b.ReportMetric(c2, "config-II")
	b.ReportMetric(c3, "config-III")
}

// BenchmarkFig12AllDatasets regenerates Fig. 12: SCCG vs PostGIS-M over the
// full 18-dataset corpus. Reported metric: the geometric-mean speedup
// (paper: >18x, range 13-44x).
func BenchmarkFig12AllDatasets(b *testing.B) {
	skipIfShort(b)
	var gm float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig12(pathology.Corpus())
		if err != nil {
			b.Fatal(err)
		}
		gm = experiments.Fig12GeoMean(rows)
	}
	b.ReportMetric(gm, "geomean-x")
}

// BenchmarkPixelBoxKernel measures the raw per-pair cost of the fully
// optimised GPU kernel (host execution + cost model) — the library's hot
// path.
func BenchmarkPixelBoxKernel(b *testing.B) {
	_, pairs := benchSetup()
	cfg := pixelbox.Config{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.GPUSeconds(pairs, cfg)
	}
	b.ReportMetric(float64(len(pairs)), "pairs")
}

// BenchmarkPixelBoxCPU measures the single-core CPU port per workload pass.
func BenchmarkPixelBoxCPU(b *testing.B) {
	_, pairs := benchSetup()
	for i := 0; i < b.N; i++ {
		pixelbox.RunCPU(pairs, pixelbox.CPUConfig{})
	}
}

// BenchmarkSweepOverlay measures the GEOS-equivalent baseline per workload
// pass (with the SDBMS calling convention).
func BenchmarkSweepOverlay(b *testing.B) {
	_, pairs := benchSetup()
	encoded := experiments.EncodePairs(pairs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.SweepAreas(encoded)
	}
}

// BenchmarkHybridVsGPUOnly measures the hybrid co-executing aggregator
// against the single-GPU pipeline on the representative dataset: 2 simulated
// GPUs plus 4 PixelBox-CPU executors stealing from the shared pair buffer
// versus 1 GPU alone. Reported metric: the wall-clock speedup (on a CPU-rich
// host the hybrid configuration must be >= 1x; the similarity is
// bit-identical by construction and asserted here).
func BenchmarkHybridVsGPUOnly(b *testing.B) {
	skipIfShort(b)
	d, _ := benchSetup()
	tasks := pipeline.EncodeDataset(d)
	var speedup float64
	for i := 0; i < b.N; i++ {
		gpuOnly, err := pipeline.Run(tasks, pipeline.Config{Devices: gpu.NewDevices(1, gpu.GTX580())})
		if err != nil {
			b.Fatal(err)
		}
		hybrid, err := pipeline.Run(tasks, pipeline.Config{
			Devices:        gpu.NewDevices(2, gpu.GTX580()),
			CPUAggregators: 4,
			BatchPairs:     256,
		})
		if err != nil {
			b.Fatal(err)
		}
		if hybrid.Similarity != gpuOnly.Similarity {
			b.Fatalf("hybrid similarity %.17g != gpu-only %.17g", hybrid.Similarity, gpuOnly.Similarity)
		}
		speedup = gpuOnly.Stats.WallTime.Seconds() / hybrid.Stats.WallTime.Seconds()
	}
	b.ReportMetric(speedup, "hybrid-speedup-x")
}

// BenchmarkMonteCarloVsPixelBox is the §6 ablation: modelled device time of
// the Monte Carlo estimator (at a sample budget roughly matching the mean
// pair pixel count) vs the exact PixelBox kernel. Reported metric: the cost
// ratio (paper: "repeated casting of random sampling points makes Monte
// Carlo much more compute-intensive than our optimized PixelBox").
func BenchmarkMonteCarloVsPixelBox(b *testing.B) {
	skipIfShort(b)
	_, pairs := benchSetup()
	var ratio float64
	for i := 0; i < b.N; i++ {
		devMC := gpu.NewDevice(gpu.GTX580())
		// 4096 samples/pair still only reaches ~1.5% relative error on a
		// 150-pixel object, far from PixelBox's exactness.
		_, mc := montecarlo.RunGPU(devMC, pairs, 4096, 64, 1)
		pb := experiments.GPUSeconds(pairs, pixelbox.Config{})
		ratio = mc.DeviceSeconds / pb
	}
	b.ReportMetric(ratio, "mc/pixelbox-x")
}
