package sccg_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro"
)

// TestServiceMatchesDirectEngine is the PR's acceptance test: a job served
// by the sccgd service stack returns the same similarity as a direct
// Engine.CrossCompareDataset call over the same tasks, and a repeated
// submission is answered from cache without new GPU launches.
func TestServiceMatchesDirectEngine(t *testing.T) {
	spec := sccg.Representative()
	spec.Tiles = 4
	tasks := sccg.EncodeDataset(sccg.GenerateDataset(spec))

	eng := sccg.NewEngine(sccg.Options{})
	direct, err := eng.CrossCompareDataset(tasks)
	if err != nil {
		t.Fatalf("direct engine run: %v", err)
	}

	svc := sccg.NewService(sccg.ServiceOptions{Devices: 2})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	submit := func() (code int, jr struct {
		ID     string `json:"id"`
		State  string `json:"state"`
		Cached bool   `json:"cached"`
		Error  string `json:"error"`
		Report *struct {
			Similarity     float64 `json:"similarity"`
			Intersecting   int     `json:"intersecting"`
			KernelLaunches int64   `json:"kernel_launches"`
		} `json:"report"`
	}) {
		body, _ := json.Marshal(map[string]any{"spec": spec})
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, jr
	}

	code, first := submit()
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d", code)
	}
	deadline := time.Now().Add(time.Minute)
	var final sccg.JobStatus
	for {
		st, ok := svc.Job(first.ID)
		if !ok {
			t.Fatalf("job %s vanished", first.ID)
		}
		if st.State.Terminal() {
			final = st
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %v", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if final.Error != "" {
		t.Fatalf("job failed: %s", final.Error)
	}
	if math.Abs(final.Report.Similarity-direct.Similarity) > 1e-9 {
		t.Errorf("service similarity %.12f != direct %.12f", final.Report.Similarity, direct.Similarity)
	}
	if final.Report.Intersecting != direct.Intersecting || final.Report.Candidates != direct.Candidates {
		t.Errorf("service pair counts (%d, %d) != direct (%d, %d)",
			final.Report.Intersecting, final.Report.Candidates, direct.Intersecting, direct.Candidates)
	}

	launchesBefore := int64(0)
	for _, d := range svc.Scheduler().DeviceStats() {
		launchesBefore += d.Launches
	}
	code, second := submit()
	if code != http.StatusOK || !second.Cached || second.ID != first.ID {
		t.Fatalf("repeat submit = (%d, %+v), want cached hit on %s", code, second, first.ID)
	}
	launchesAfter := int64(0)
	for _, d := range svc.Scheduler().DeviceStats() {
		launchesAfter += d.Launches
	}
	if launchesAfter != launchesBefore {
		t.Errorf("cached submission launched kernels: %d -> %d", launchesBefore, launchesAfter)
	}
}

// TestServiceCompareEndpoint drives POST /compare, which runs through the
// facade's error-returning MatchPairsErr/ComputeAreasErr path.
func TestServiceCompareEndpoint(t *testing.T) {
	svc := sccg.NewService(sccg.ServiceOptions{Devices: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	d := trimmedRep(1)
	rawA := sccg.EncodePolygons(d.Pairs[0].A)
	rawB := sccg.EncodePolygons(d.Pairs[0].B)

	eng := sccg.NewEngine(sccg.Options{DisableGPU: true})
	wantSim, wantHits, wantCands, err := eng.CrossComparePolygonsErr(d.Pairs[0].A, d.Pairs[0].B)
	if err != nil {
		t.Fatalf("CrossComparePolygonsErr: %v", err)
	}

	body, _ := json.Marshal(map[string]any{"raw_a": rawA, "raw_b": rawB})
	resp, err := http.Post(ts.URL+"/compare", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compare status = %d", resp.StatusCode)
	}
	var got struct {
		Similarity   float64 `json:"similarity"`
		Intersecting int     `json:"intersecting"`
		Candidates   int     `json:"candidates"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Similarity-wantSim) > 1e-9 || got.Intersecting != wantHits || got.Candidates != wantCands {
		t.Errorf("compare = %+v, want (%.12f, %d, %d)", got, wantSim, wantHits, wantCands)
	}

	// Malformed polygon text is rejected through the error path, not a panic.
	body, _ = json.Marshal(map[string]any{"raw_a": []byte("not a polygon"), "raw_b": rawB})
	resp2, err := http.Post(ts.URL+"/compare", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("malformed compare status = %d, want 422", resp2.StatusCode)
	}
}

// TestErrVariants checks the validating facade variants reject nil polygons
// and surface previously-discarded join statistics.
func TestErrVariants(t *testing.T) {
	d := trimmedRep(1)
	a, b := d.Pairs[0].A, d.Pairs[0].B

	pairs, stats, err := sccg.MatchPairsErr(a, b)
	if err != nil {
		t.Fatalf("MatchPairsErr: %v", err)
	}
	if len(pairs) == 0 || stats.EntriesTested == 0 {
		t.Errorf("MatchPairsErr = %d pairs, stats %+v; want pairs and join stats", len(pairs), stats)
	}
	if got := sccg.MatchPairs(a, b); len(got) != len(pairs) {
		t.Errorf("legacy MatchPairs returned %d pairs, Err variant %d", len(got), len(pairs))
	}

	if _, _, err := sccg.MatchPairsErr([]*sccg.Polygon{nil}, b); err == nil {
		t.Error("MatchPairsErr accepted a nil polygon")
	}

	eng := sccg.NewEngine(sccg.Options{DisableGPU: true})
	if _, err := eng.ComputeAreasErr([]sccg.Pair{{P: nil, Q: nil}}); err == nil {
		t.Error("ComputeAreasErr accepted a nil pair")
	}
	results, err := eng.ComputeAreasErr(pairs)
	if err != nil {
		t.Fatalf("ComputeAreasErr: %v", err)
	}
	if len(results) != len(pairs) {
		t.Errorf("ComputeAreasErr returned %d results for %d pairs", len(results), len(pairs))
	}
}

// TestStoreBackedJobMatchesCrossCompare drives the facade's store surface:
// a dataset ingested through OpenStore/IngestDataset and executed as a
// store-backed job must reproduce the in-process CrossComparePolygons
// result over the same polygon sets bit-for-bit (single tile, so the two
// paths fold ratios in the same order).
func TestStoreBackedJobMatchesCrossCompare(t *testing.T) {
	st, err := sccg.OpenStore(t.TempDir())
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	spec := sccg.Representative()
	spec.Tiles = 1
	d := sccg.GenerateDataset(spec)
	man, err := sccg.IngestDataset(st, d)
	if err != nil {
		t.Fatalf("IngestDataset: %v", err)
	}

	svc := sccg.NewService(sccg.ServiceOptions{Devices: 1, Store: st})
	defer svc.Close()
	if svc.Store() != st {
		t.Fatal("Service.Store() does not expose the configured store")
	}
	id, err := svc.SubmitStored(man.ID)
	if err != nil {
		t.Fatalf("SubmitStored: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	job, err := svc.Scheduler().Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if job.Error != "" {
		t.Fatalf("store-backed job failed: %s", job.Error)
	}

	eng := sccg.NewEngine(sccg.Options{})
	sim, hits, cands := eng.CrossComparePolygons(d.Pairs[0].A, d.Pairs[0].B)
	if job.Report.Similarity != sim {
		t.Errorf("store-backed similarity %.17g != CrossComparePolygons %.17g (must be exact)",
			job.Report.Similarity, sim)
	}
	if job.Report.Intersecting != hits || job.Report.Candidates != cands {
		t.Errorf("store-backed counts (%d, %d) != CrossComparePolygons (%d, %d)",
			job.Report.Intersecting, job.Report.Candidates, hits, cands)
	}

	// An unknown content ID fails up front, not at run time.
	if _, err := svc.SubmitStored("0000000000000000000000000000000000000000000000000000000000000000"); err == nil {
		t.Error("SubmitStored accepted an unknown dataset ID")
	}
}
