package server

// Lazy exact upgrade of elided matrix cells: GET /matrix/{id}/cells/{i}/{j}
// reads one cell by grid coordinates, and ?exact=1 recomputes an elided cell
// on demand, patching the run's status counters in place.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/compare"
	"repro/internal/sched"
)

type cellReply struct {
	ID   string           `json:"id"`
	I    int              `json:"i"`
	J    int              `json:"j"`
	Cell compare.CellView `json:"cell"`
}

func TestMatrixCellExactUpgrade(t *testing.T) {
	st := testStoreAt(t, t.TempDir())
	const shift = 1 << 20
	ids := []string{
		ingestShifted(t, st, "slideU", 1, 2, 0, 0).ID,
		ingestShifted(t, st, "slideU", 2, 2, 0, 0).ID,
		ingestShifted(t, st, "slideU", 3, 2, shift, shift).ID,
		ingestShifted(t, st, "slideU", 4, 2, shift, shift).ID,
	}
	_, _, ts := newTestServer(t, sched.Config{Devices: 2}, Options{Store: st})

	resp, body := postJSON(t, ts.URL+"/matrix",
		MatrixRequest{Datasets: ids, Name: "upgrade", TopK: 2})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("matrix submit = %d: %s", resp.StatusCode, body)
	}
	var mst compare.Status
	if err := json.Unmarshal(body, &mst); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for mst.State == compare.RunRunning {
		if time.Now().After(deadline) {
			t.Fatalf("matrix stuck: %+v", mst)
		}
		time.Sleep(5 * time.Millisecond)
		getJSON(t, ts.URL+"/matrix/"+mst.ID, &mst)
	}
	if mst.State != compare.RunDone || mst.ExactCells != 2 || mst.SkippedCells != 4 {
		t.Fatalf("run = %s exact=%d skipped=%d, want done/2/4",
			mst.State, mst.ExactCells, mst.SkippedCells)
	}
	cellURL := func(i, j int) string {
		return fmt.Sprintf("%s/matrix/%s/cells/%d/%d", ts.URL, mst.ID, i, j)
	}

	// Plain read: the cross-cluster cell (0,2) was elided as skipped.
	var got cellReply
	if r := getJSON(t, cellURL(0, 2), &got); r.StatusCode != http.StatusOK {
		t.Fatalf("cell read = %d", r.StatusCode)
	}
	if got.Cell.State != compare.CellSkipped {
		t.Fatalf("cell (0,2) = %q, want skipped", got.Cell.State)
	}

	// ?exact=1 recomputes it; disjoint clusters make the exact answer 0.
	if r := getJSON(t, cellURL(0, 2)+"?exact=1", &got); r.StatusCode != http.StatusOK {
		t.Fatalf("exact upgrade = %d", r.StatusCode)
	}
	if got.Cell.State != compare.CellDone {
		t.Fatalf("upgraded cell = %q (%s), want done", got.Cell.State, got.Cell.Error)
	}
	if got.Cell.Similarity != 0 {
		t.Fatalf("upgraded cross-cluster similarity = %v, want 0", got.Cell.Similarity)
	}
	if got.Cell.Bound == nil || got.Cell.Similarity > *got.Cell.Bound {
		t.Fatalf("upgraded cell similarity %v exceeds bound %v", got.Cell.Similarity, got.Cell.Bound)
	}

	// The run's status is patched: one skipped cell became exact, the
	// terminal count is unchanged, and the mirror coordinate shows it too.
	getJSON(t, ts.URL+"/matrix/"+mst.ID, &mst)
	if mst.ExactCells != 3 || mst.SkippedCells != 3 || mst.TerminalCells != 6 {
		t.Fatalf("patched counters exact/skipped/terminal = %d/%d/%d, want 3/3/6",
			mst.ExactCells, mst.SkippedCells, mst.TerminalCells)
	}
	if mst.Cells[2][0].State != compare.CellDone {
		t.Fatalf("mirror cell [2][0] = %q, want done", mst.Cells[2][0].State)
	}
	var mirror cellReply
	getJSON(t, cellURL(2, 0), &mirror)
	if mirror.Cell.State != compare.CellDone {
		t.Fatalf("mirror read = %q, want done", mirror.Cell.State)
	}

	// Idempotent on an already-exact cell — including ones the run computed.
	if r := getJSON(t, cellURL(0, 2)+"?exact=1", &got); r.StatusCode != http.StatusOK || got.Cell.State != compare.CellDone {
		t.Fatalf("repeat upgrade = %d/%q", r.StatusCode, got.Cell.State)
	}
	if r := getJSON(t, cellURL(0, 1)+"?exact=1", &got); r.StatusCode != http.StatusOK || got.Cell.State != compare.CellDone {
		t.Fatalf("upgrade of an exact cell = %d/%q", r.StatusCode, got.Cell.State)
	}

	// Error surface: diagonal conflicts, out-of-range and unknown runs 404,
	// malformed coordinates 400.
	if r := getJSON(t, cellURL(1, 1), &got); r.StatusCode != http.StatusOK || got.Cell.State != compare.CellSelf {
		t.Fatalf("diagonal read = %d/%q, want 200/self", r.StatusCode, got.Cell.State)
	}
	var e map[string]any
	if r := getJSON(t, cellURL(1, 1)+"?exact=1", &e); r.StatusCode != http.StatusConflict {
		t.Fatalf("diagonal upgrade = %d, want 409", r.StatusCode)
	}
	if r := getJSON(t, cellURL(9, 0), &e); r.StatusCode != http.StatusNotFound {
		t.Fatalf("out-of-range cell = %d, want 404", r.StatusCode)
	}
	if r := getJSON(t, ts.URL+"/matrix/mx-999999/cells/0/1", &e); r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run = %d, want 404", r.StatusCode)
	}
	if r := getJSON(t, ts.URL+"/matrix/"+mst.ID+"/cells/x/1", &e); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed coordinate = %d, want 400", r.StatusCode)
	}
}
