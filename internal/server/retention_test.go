package server

// Delete-lifecycle and retention regression tests: the cascade that keeps
// deleted datasets' reports from being served (live, persisted, or
// resurrected at boot), spec-alias invalidation, pinning against deletes
// and sweeps, the clear mid-job delete failure, and the admin endpoints.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/pathology"
	"repro/internal/pipeline"
	"repro/internal/retention"
	"repro/internal/sched"
)

func doRequest(t *testing.T, method, url string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s %s body: %v", method, url, err)
	}
	return resp, raw
}

// waitPersisted blocks until the persisted cache directory holds n entries.
func waitPersisted(t *testing.T, dir string, n int) {
	t.Helper()
	cacheDir := filepath.Join(dir, "cache")
	deadline := time.Now().Add(10 * time.Second)
	for {
		entries, _ := os.ReadDir(cacheDir)
		files := 0
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".json") {
				files++
			}
		}
		if files >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("persisted cache never reached %d entries (%d)", n, files)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func persistedFiles(t *testing.T, dir string) int {
	t.Helper()
	entries, _ := os.ReadDir(filepath.Join(dir, "cache"))
	n := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".json") {
			n++
		}
	}
	return n
}

// TestDeleteCascadesResultLayers is the PR's first regression: deleting a
// dataset must drop its live LRU entry, its persisted report, and the disk
// file behind it — a repeat submission answers 404, a restart resurrects
// nothing, and re-ingesting the same content recomputes instead of serving
// the pre-delete report.
func TestDeleteCascadesResultLayers(t *testing.T) {
	dir := t.TempDir()
	st := testStoreAt(t, dir)
	man := ingestSpec(t, st, "cascade", 11, 2)
	_, _, ts := newTestServer(t, sched.Config{Devices: 1}, Options{Store: st})

	resp, body := postJSON(t, ts.URL+"/jobs", JobRequest{DatasetID: man.ID})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	if done := pollDone(t, ts.URL, jr.ID); done.State != "done" {
		t.Fatalf("job ended %s: %s", done.State, done.Error)
	}
	waitPersisted(t, dir, 1)

	// Precondition: the repeat is a cache hit.
	if resp, body := postJSON(t, ts.URL+"/jobs", JobRequest{DatasetID: man.ID}); resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-delete repeat = %d, want 200 cache hit: %s", resp.StatusCode, body)
	}

	dresp, draw := doRequest(t, http.MethodDelete, ts.URL+"/datasets/"+man.ID)
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete = %d: %s", dresp.StatusCode, draw)
	}
	// The cascade emptied every layer: no cached answer, no disk file.
	if resp, body := postJSON(t, ts.URL+"/jobs", JobRequest{DatasetID: man.ID}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("post-delete repeat = %d, want 404 (not a cached report): %s", resp.StatusCode, body)
	}
	if n := persistedFiles(t, dir); n != 0 {
		t.Fatalf("%d persisted entries survived the delete", n)
	}

	// Restart: nothing to resurrect.
	st2 := testStoreAt(t, dir)
	_, _, ts2 := newTestServer(t, sched.Config{Devices: 1}, Options{Store: st2})
	if resp, body := postJSON(t, ts2.URL+"/jobs", JobRequest{DatasetID: man.ID}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("post-restart repeat = %d, want 404: %s", resp.StatusCode, body)
	}

	// Re-ingest the identical content (same content ID): the repeat job must
	// recompute, not cache-hit a report from before the delete.
	man2 := ingestSpec(t, st2, "cascade", 11, 2)
	if man2.ID != man.ID {
		t.Fatalf("re-ingest produced %s, want the original content ID %s", man2.ID, man.ID)
	}
	resp, body = postJSON(t, ts2.URL+"/jobs", JobRequest{DatasetID: man.ID})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-reingest submit = %d, want 202 recompute: %s", resp.StatusCode, body)
	}
	var again JobResponse
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if again.Cached {
		t.Fatal("post-reingest submission was served from cache")
	}
	pollDone(t, ts2.URL, again.ID)
}

// TestBootDropsOrphanedReports: a crash between a dataset delete and its
// cache cascade leaves an orphaned report on disk; the next boot must drop
// it (memory and file), never serve it.
func TestBootDropsOrphanedReports(t *testing.T) {
	dir := t.TempDir()
	st := testStoreAt(t, dir)
	man := ingestSpec(t, st, "orphan", 5, 2)
	_, _, ts := newTestServer(t, sched.Config{Devices: 1}, Options{Store: st})

	resp, body := postJSON(t, ts.URL+"/jobs", JobRequest{DatasetID: man.ID})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	pollDone(t, ts.URL, jr.ID)
	waitPersisted(t, dir, 1)

	// Simulate the crash window: the dataset directory vanishes without the
	// delete hook ever running.
	if err := os.RemoveAll(filepath.Join(dir, man.ID)); err != nil {
		t.Fatal(err)
	}

	st2 := testStoreAt(t, dir)
	_, _, ts2 := newTestServer(t, sched.Config{Devices: 1}, Options{Store: st2})
	if resp, body := postJSON(t, ts2.URL+"/jobs", JobRequest{DatasetID: man.ID}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("orphaned report was served: %d %s", resp.StatusCode, body)
	}
	if n := persistedFiles(t, dir); n != 0 {
		t.Fatalf("boot left %d orphaned entry file(s) on disk", n)
	}
}

// TestSpecAliasDroppedOnDelete is the second regression: after its dataset
// is deleted, a re-submitted spec job must fall back to re-materialization
// (re-ingest and recompute) instead of resolving through the stale alias to
// a missing dataset or a dead cache entry.
func TestSpecAliasDroppedOnDelete(t *testing.T) {
	st := testStoreAt(t, t.TempDir())
	_, _, ts := newTestServer(t, sched.Config{Devices: 1}, Options{Store: st})

	spec := pathology.Representative()
	spec.Name = "alias"
	spec.Seed = 3
	spec.Tiles = 2
	resp, body := postJSON(t, ts.URL+"/jobs", JobRequest{Spec: &spec})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("spec submit = %d: %s", resp.StatusCode, body)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	first := pollDone(t, ts.URL, jr.ID)
	if first.State != "done" {
		t.Fatalf("spec job ended %s: %s", first.State, first.Error)
	}
	if st.Len() != 1 {
		t.Fatalf("spec job ingested %d datasets, want 1", st.Len())
	}
	id := st.List()[0].ID

	if dresp, draw := doRequest(t, http.MethodDelete, ts.URL+"/datasets/"+id); dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete = %d: %s", dresp.StatusCode, draw)
	}

	// The alias is gone: the repeat recomputes and re-ingests.
	resp, body = postJSON(t, ts.URL+"/jobs", JobRequest{Spec: &spec})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-delete spec submit = %d, want 202 recompute: %s", resp.StatusCode, body)
	}
	var second JobResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if second.Cached || second.ID == jr.ID {
		t.Fatalf("post-delete spec resubmit = %+v, want a fresh job", second)
	}
	redone := pollDone(t, ts.URL, second.ID)
	if redone.State != "done" {
		t.Fatalf("recomputed spec job ended %s: %s", redone.State, redone.Error)
	}
	if redone.Report.Similarity != first.Report.Similarity {
		t.Error("recomputed report differs from the original; content is identical")
	}
	if st.Len() != 1 {
		t.Fatalf("re-submission left %d datasets, want the re-ingested 1", st.Len())
	}
	if got := st.List()[0].ID; got != id {
		t.Fatalf("re-ingest produced %s, want the original content ID %s", got, id)
	}

	// And the third submission hits the repaired cache.
	if resp, body := postJSON(t, ts.URL+"/jobs", JobRequest{Spec: &spec}); resp.StatusCode != http.StatusOK {
		t.Fatalf("third spec submit = %d, want 200 cache hit: %s", resp.StatusCode, body)
	}
}

// gatedStoreSource delays tile materialization until released, keeping a
// store-backed job deterministically in flight. It preserves the PolySource
// contract of the wrapped source.
type gatedStoreSource struct {
	src     sched.PolySource
	release <-chan struct{}
	entered chan struct{}
	once    sync.Once
}

func (g *gatedStoreSource) Len() int           { return g.src.Len() }
func (g *gatedStoreSource) Weight(i int) int64 { return g.src.Weight(i) }
func (g *gatedStoreSource) wait() {
	g.once.Do(func() { close(g.entered) })
	<-g.release
}
func (g *gatedStoreSource) Task(i int) (pipeline.FileTask, error) {
	g.wait()
	return g.src.Task(i)
}
func (g *gatedStoreSource) PolyTask(i int) (pipeline.PolyTask, error) {
	g.wait()
	return g.src.PolyTask(i)
}

// TestForceDeleteMidJobFailsClearly is the third regression: with pinning in
// place a plain DELETE conflicts while the job runs, and a forced delete
// fails the job with a clear "dataset deleted during job" error instead of a
// raw tile-read I/O error. The pin releases at the job's terminal state.
func TestForceDeleteMidJobFailsClearly(t *testing.T) {
	st := testStoreAt(t, t.TempDir())
	man := ingestSpec(t, st, "midjob", 9, 1)
	srv, sc, ts := newTestServer(t, sched.Config{}, Options{Store: st})

	ds, err := st.OpenDataset(man.ID)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	gated := &gatedStoreSource{src: ds.Source(), release: release, entered: make(chan struct{})}
	var once sync.Once
	t.Cleanup(func() { once.Do(func() { close(release) }) })

	// Pin + wrap exactly as submitRequest does for dataset jobs.
	if err := srv.pinDatasets(man.ID); err != nil {
		t.Fatal(err)
	}
	id, err := sc.SubmitSource("doomed", wrapPinned(st, gated, man.ID))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-gated.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started materializing")
	}

	// Plain delete conflicts while pinned.
	if dresp, draw := doRequest(t, http.MethodDelete, ts.URL+"/datasets/"+man.ID); dresp.StatusCode != http.StatusConflict {
		t.Fatalf("delete of pinned dataset = %d, want 409: %s", dresp.StatusCode, draw)
	}
	// Forced delete wins.
	if dresp, draw := doRequest(t, http.MethodDelete, ts.URL+"/datasets/"+man.ID+"?force=true"); dresp.StatusCode != http.StatusOK {
		t.Fatalf("forced delete = %d: %s", dresp.StatusCode, draw)
	}
	once.Do(func() { close(release) })

	final, err := sc.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != sched.Failed {
		t.Fatalf("job ended %s, want failed", final.State)
	}
	if !strings.Contains(final.Error, "deleted during job") {
		t.Fatalf("job error %q does not state the lifecycle fault", final.Error)
	}
	if st.PinnedCount() != 0 {
		t.Fatalf("%d pins leaked past the job's terminal state", st.PinnedCount())
	}
}

// TestConcurrentSweepVsRunningJob: a sweeper hammering the store under a
// 1-byte budget never evicts the dataset of an in-flight job (the pin
// wins), the job completes, and the dataset is reclaimed only after the
// job's terminal state releases the pin. CI runs this under -race.
func TestConcurrentSweepVsRunningJob(t *testing.T) {
	st := testStoreAt(t, t.TempDir())
	man := ingestSpec(t, st, "sweeprace", 13, 2)
	srv, sc, _ := newTestServer(t, sched.Config{Devices: 1}, Options{Store: st})

	engine := retention.New(retention.Config{Store: st, Policy: retention.Policy{MaxBytes: 1}})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				engine.Sweep()
			}
		}
	}()
	defer func() {
		close(stop)
		wg.Wait()
	}()

	ds, err := st.OpenDataset(man.ID)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	gated := &gatedStoreSource{src: ds.Source(), release: release, entered: make(chan struct{})}
	if err := srv.pinDatasets(man.ID); err != nil {
		t.Fatal(err)
	}
	id, err := sc.SubmitSource("swept", wrapPinned(st, gated, man.ID))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-gated.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("job never started materializing")
	}
	// Let the sweeper contend with the blocked job for a moment.
	time.Sleep(20 * time.Millisecond)
	if _, ok := st.Get(man.ID); !ok {
		t.Fatal("sweeper evicted a pinned dataset under a running job")
	}
	close(release)

	final, err := sc.Wait(context.Background(), id)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != sched.Done {
		t.Fatalf("job ended %s (%s), want done despite concurrent sweeps", final.State, final.Error)
	}

	// Terminal state released the pin: the budget now reclaims the dataset.
	deadline := time.Now().Add(10 * time.Second)
	for st.Len() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("dataset never evicted after the job finished (pins=%d)", st.PinnedCount())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCacheAdminAndGC: DELETE /cache empties both result-cache layers (the
// repeat recomputes), POST /gc sweeps on demand under the configured policy,
// and the retention gauges are exported on /metrics.
func TestCacheAdminAndGC(t *testing.T) {
	dir := t.TempDir()
	st := testStoreAt(t, dir)
	man := ingestSpec(t, st, "admin", 21, 2)
	_, _, ts := newTestServer(t, sched.Config{Devices: 1},
		Options{Store: st, Retention: retention.Policy{MaxBytes: 1, SweepInterval: time.Hour}})

	resp, body := postJSON(t, ts.URL+"/jobs", JobRequest{DatasetID: man.ID})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	pollDone(t, ts.URL, jr.ID)
	waitPersisted(t, dir, 1)

	dresp, draw := doRequest(t, http.MethodDelete, ts.URL+"/cache")
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /cache = %d: %s", dresp.StatusCode, draw)
	}
	var cleared struct {
		LRU       int `json:"lru_dropped"`
		Persisted int `json:"persisted_dropped"`
	}
	if err := json.Unmarshal(draw, &cleared); err != nil {
		t.Fatal(err)
	}
	if cleared.LRU < 1 || cleared.Persisted != 1 {
		t.Fatalf("DELETE /cache dropped %+v, want at least the job's entry in both layers", cleared)
	}
	if n := persistedFiles(t, dir); n != 0 {
		t.Fatalf("%d persisted files survived DELETE /cache", n)
	}
	resp, body = postJSON(t, ts.URL+"/jobs", JobRequest{DatasetID: man.ID})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-clear repeat = %d, want 202 recompute: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	pollDone(t, ts.URL, jr.ID)

	// POST /gc sweeps now: the 1-byte budget evicts the (unpinned) dataset.
	gresp, graw := doRequest(t, http.MethodPost, ts.URL+"/gc")
	if gresp.StatusCode != http.StatusOK {
		t.Fatalf("POST /gc = %d: %s", gresp.StatusCode, graw)
	}
	var sw retention.Sweep
	if err := json.Unmarshal(graw, &sw); err != nil {
		t.Fatal(err)
	}
	if sw.BudgetEvicted != 1 || sw.Datasets != 0 || sw.StoreBytes != 0 {
		t.Fatalf("gc = %+v, want the dataset evicted and an empty store", sw)
	}
	if st.Len() != 0 {
		t.Fatal("dataset survived POST /gc under a 1-byte budget")
	}

	mresp, mraw := doRequest(t, http.MethodGet, ts.URL+"/metrics")
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", mresp.StatusCode)
	}
	text := string(mraw)
	for _, want := range []string{
		"sccgd_store_bytes 0",
		"sccgd_store_pinned_datasets 0",
		"sccgd_retention_sweeps_total",
		"sccgd_retention_datasets_evicted_total 1",
		"sccgd_cache_cascade_dropped_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	// Without a store the admin GC answers 501; the cache clear still works.
	_, _, bare := newTestServer(t, sched.Config{}, Options{})
	if gresp, _ := doRequest(t, http.MethodPost, bare.URL+"/gc"); gresp.StatusCode != http.StatusNotImplemented {
		t.Errorf("storeless POST /gc = %d, want 501", gresp.StatusCode)
	}
	if dresp, _ := doRequest(t, http.MethodDelete, bare.URL+"/cache"); dresp.StatusCode != http.StatusOK {
		t.Errorf("storeless DELETE /cache = %d, want 200", dresp.StatusCode)
	}
}

// TestPersistGateBlocksDeletedDataset: a report persister that loses the
// race with a dataset delete (the job's pin releases at its terminal state,
// *before* the report persists) must not insert behind the cascade — the
// put gate checks dataset liveness under the same mutex the cascade takes.
func TestPersistGateBlocksDeletedDataset(t *testing.T) {
	dir := t.TempDir()
	st := testStoreAt(t, dir)
	man := ingestSpec(t, st, "gate", 31, 1)
	srv, _, _ := newTestServer(t, sched.Config{}, Options{Store: st})

	if err := st.Delete(man.ID); err != nil {
		t.Fatal(err)
	}
	// What persistWhenDone would do after the delete won the race.
	if err := srv.persist.put(&persistEntry{Key: datasetKey(man.ID), Saved: time.Now().UTC()}); err != nil {
		t.Fatal(err)
	}
	if _, ok := srv.persist.get(datasetKey(man.ID)); ok {
		t.Fatal("persist layer stored a report for a deleted dataset")
	}
	if n := persistedFiles(t, dir); n != 0 {
		t.Fatalf("%d entry file(s) written for a deleted dataset", n)
	}
	// Cross keys referencing the deleted dataset are gated too.
	other := ingestSpec(t, st, "gate-other", 32, 1)
	if err := srv.persist.put(&persistEntry{Key: crossKey(other.ID, man.ID), Saved: time.Now().UTC()}); err != nil {
		t.Fatal(err)
	}
	if srv.persist.len() != 0 {
		t.Fatal("cross entry referencing a deleted dataset was stored")
	}
}

// TestReportDiskEntryBound: the persisted layer LRU-bounds its entries at
// put time and re-enforces the cap over preexisting entries at boot.
func TestReportDiskEntryBound(t *testing.T) {
	dir := t.TempDir()
	rd, skipped := openReportDisk(dir, 2)
	if rd == nil || len(skipped) != 0 {
		t.Fatalf("openReportDisk: %v", skipped)
	}
	saved := time.Now().UTC()
	for i, key := range []string{"k-old", "k-mid", "k-new"} {
		if err := rd.put(&persistEntry{Key: key, Saved: saved.Add(time.Duration(i) * time.Second)}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond) // strictly ordered put recency
	}
	if rd.len() != 2 {
		t.Fatalf("bounded layer holds %d entries, want 2", rd.len())
	}
	if _, ok := rd.get("k-old"); ok {
		t.Error("oldest entry survived the put-time bound")
	}
	if _, ok := rd.get("k-new"); !ok {
		t.Error("newest entry was evicted")
	}

	// Boot over the same directory with a tighter cap: the server enforces
	// it after loading (and after dropping orphans), which drops down to it.
	rd2, skipped := openReportDisk(dir, 1)
	if len(skipped) != 0 {
		t.Fatalf("reopen skipped: %v", skipped)
	}
	rd2.EnforceLimit(1)
	if rd2.len() != 1 {
		t.Fatalf("reopened layer holds %d entries, want 1", rd2.len())
	}
	files, _ := os.ReadDir(dir)
	count := 0
	for _, f := range files {
		if strings.HasSuffix(f.Name(), ".json") {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("%d entry files on disk after bounded reopen, want 1", count)
	}
}
