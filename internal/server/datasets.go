package server

// Dataset lifecycle endpoints over the content-addressed store:
//
//	PUT    /datasets        ingest a dataset (streaming; ?name= labels it)
//	GET    /datasets        list stored datasets
//	GET    /datasets/{id}   stat one dataset, tile index included
//	DELETE /datasets/{id}   remove a dataset
//
// Ingestion streams: the body is a JSON array of tile payloads (the same
// shape as JobRequest.Tasks) decoded one element at a time; each tile's raw
// text is run through the existing parser and appended to the store's
// segment file before the next element is read, so a dataset bounded only
// by the request-size cap never materializes whole in memory. The response
// carries the content-addressed dataset ID: re-ingesting identical polygon
// sets (any tile order, any text formatting) yields the same ID and no
// second copy.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/parser"
	"repro/internal/querylog"
	"repro/internal/store"
)

// DatasetTile is the wire form of one tile's manifest entry.
type DatasetTile struct {
	Image     string `json:"image,omitempty"`
	Tile      int    `json:"tile"`
	PolygonsA int    `json:"polygons_a"`
	PolygonsB int    `json:"polygons_b"`
	Bytes     int64  `json:"bytes"`
}

// DatasetResponse is the wire form of a stored dataset's manifest.
type DatasetResponse struct {
	ID           string        `json:"id"`
	Name         string        `json:"name,omitempty"`
	Created      time.Time     `json:"created"`
	Tiles        int           `json:"tiles"`
	Polygons     int64         `json:"polygons"`
	SegmentBytes int64         `json:"segment_bytes"`
	TileIndex    []DatasetTile `json:"tile_index,omitempty"`
}

func datasetResponse(man *store.Manifest, withTiles bool) DatasetResponse {
	resp := DatasetResponse{
		ID:           man.ID,
		Name:         man.Name,
		Created:      man.Created,
		Tiles:        len(man.Tiles),
		Polygons:     man.Polygons,
		SegmentBytes: man.SegmentBytes,
	}
	if withTiles {
		resp.TileIndex = make([]DatasetTile, len(man.Tiles))
		for i, ti := range man.Tiles {
			resp.TileIndex[i] = DatasetTile{
				Image:     ti.Image,
				Tile:      ti.Tile,
				PolygonsA: ti.CountA,
				PolygonsB: ti.CountB,
				Bytes:     ti.Bytes(),
			}
		}
	}
	return resp
}

// requireStore answers 501 when the daemon runs without a data directory.
func (s *Server) requireStore(w http.ResponseWriter) bool {
	if s.store == nil {
		s.fail(w, http.StatusNotImplemented,
			errors.New("no dataset store configured (start sccgd with -data-dir)"))
		return false
	}
	return true
}

func (s *Server) handlePutDataset(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w) {
		return
	}
	who := s.resolveTenant(r)
	ingestStart := time.Now()
	wtr, err := s.store.NewWriter(r.URL.Query().Get("name"))
	if err != nil {
		s.ingestFails.Inc()
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	committed := false
	defer func() {
		if !committed {
			wtr.Abort()
		}
	}()

	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if tok, err := dec.Token(); err != nil || tok != json.Delim('[') {
		s.fail(w, http.StatusBadRequest, errors.New("body must be a JSON array of tile payloads"))
		return
	}
	n := 0
	for dec.More() {
		if n >= maxTaskCount {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("at most %d tiles per dataset", maxTaskCount))
			return
		}
		// Elements decode as TilePayload — the superset GET /tiles/{n}
		// serves — so tile reads re-PUT verbatim (the read-only counts are
		// ignored) while unknown fields still reject typos.
		var tp TilePayload
		if err := dec.Decode(&tp); err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("tile %d: %w", n, err))
			return
		}
		if len(tp.RawA) == 0 || len(tp.RawB) == 0 {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("tile %d: raw_a and raw_b are required", n))
			return
		}
		a, err := parser.Parse(tp.RawA)
		if err != nil {
			s.fail(w, http.StatusUnprocessableEntity, fmt.Errorf("tile %d set A: %w", n, err))
			return
		}
		b, err := parser.Parse(tp.RawB)
		if err != nil {
			s.fail(w, http.StatusUnprocessableEntity, fmt.Errorf("tile %d set B: %w", n, err))
			return
		}
		if err := wtr.AddTile(tp.Image, tp.Tile, a, b); err != nil {
			// Duplicate tiles (and nil polygons, which parsing precludes
			// here) are client faults; anything else is a segment write
			// failure on our side.
			code := http.StatusInternalServerError
			if errors.Is(err, store.ErrDuplicateTile) {
				code = http.StatusBadRequest
			} else {
				s.ingestFails.Inc()
			}
			s.fail(w, code, err)
			return
		}
		n++
		// Early tenant-quota check per tile: a stream that has already
		// written more bytes than the tenant may hold cannot recover, so
		// stop reading rather than buffering the whole body first. (Only
		// the tenant dimensions — the global budget check below may evict,
		// which should happen once, not per tile.)
		if aerr := s.admitTenantBytes(who, wtr.Bytes()); aerr != nil {
			s.failAdmission(w, who, aerr)
			return
		}
	}
	if tok, err := dec.Token(); err != nil || tok != json.Delim(']') {
		s.fail(w, http.StatusBadRequest, errors.New("malformed tile array"))
		return
	}
	// Admission gates the commit: the exact segment size is known now, and
	// nothing has been published yet — a dataset that would overshoot the
	// tenant quota or the store budget (even after a synchronous targeted
	// sweep) is rejected with a structured 413/429 instead of committed.
	if aerr := s.admitIngest(who, wtr.Bytes()); aerr != nil {
		s.failAdmission(w, who, aerr)
		return
	}
	man, err := wtr.Commit()
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, store.ErrEmpty) {
			code = http.StatusBadRequest
		} else {
			s.ingestFails.Inc()
		}
		s.fail(w, code, err)
		return
	}
	committed = true
	s.ingests.Inc()
	if s.tusage != nil {
		s.tusage.Attribute(who.Name, man.ID, man.SegmentBytes)
	}
	if s.qlog != nil {
		s.qlog.Append(querylog.Record{
			Kind:       querylog.KindIngest,
			ID:         man.ID,
			Tenant:     who.Name,
			Datasets:   []querylog.DatasetIO{{ID: man.ID, Tiles: len(man.Tiles), Bytes: man.SegmentBytes}},
			DurationMs: float64(time.Since(ingestStart).Microseconds()) / 1000,
			Outcome:    querylog.OutcomeIngested,
		})
	}
	writeJSON(w, http.StatusOK, datasetResponse(man, true))
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w) {
		return
	}
	mans := s.store.List()
	out := make([]DatasetResponse, len(mans))
	for i, man := range mans {
		out[i] = datasetResponse(man, false)
	}
	writeJSON(w, http.StatusOK, map[string]any{"datasets": out})
}

func (s *Server) handleStatDataset(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w) {
		return
	}
	man, ok := s.store.Get(r.PathValue("id"))
	if !ok {
		s.fail(w, http.StatusNotFound, store.ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, datasetResponse(man, true))
}

// TilePayload is the wire form of one stored tile's content: the two
// result sets re-encoded as canonical polygon text (base64 in JSON, the
// same shape PUT /datasets ingests), enabling client-side spot checks and
// dataset-to-dataset diffing.
type TilePayload struct {
	Index     int    `json:"index"`
	Image     string `json:"image,omitempty"`
	Tile      int    `json:"tile"`
	PolygonsA int    `json:"polygons_a"`
	PolygonsB int    `json:"polygons_b"`
	RawA      []byte `json:"raw_a"`
	RawB      []byte `json:"raw_b"`
}

// handleReadTile serves GET /datasets/{id}/tiles/{n}: tile n (an index into
// the dataset's canonical tile order, as listed by GET /datasets/{id}) read
// straight from the segment file's byte ranges, digest-verified, and
// re-encoded as polygon text.
func (s *Server) handleReadTile(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w) {
		return
	}
	n, err := strconv.Atoi(r.PathValue("n"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("tile index %q is not a number", r.PathValue("n")))
		return
	}
	ds, err := s.store.OpenDataset(r.PathValue("id"))
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	man := ds.Manifest()
	if n < 0 || n >= len(man.Tiles) {
		s.fail(w, http.StatusNotFound,
			fmt.Errorf("dataset %s has tiles 0..%d, not %d", man.ID, len(man.Tiles)-1, n))
		return
	}
	a, b, err := ds.ReadTile(n)
	if err != nil {
		// The tile exists in the manifest but its bytes failed verification:
		// a storage fault, not a client one.
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	s.store.Touch(man.ID) // tile reads advance the retention clock
	ti := man.Tiles[n]
	writeJSON(w, http.StatusOK, TilePayload{
		Index:     n,
		Image:     ti.Image,
		Tile:      ti.Tile,
		PolygonsA: len(a),
		PolygonsB: len(b),
		RawA:      parser.Encode(a),
		RawB:      parser.Encode(b),
	})
}

// handleDeleteDataset removes a dataset. A dataset pinned by a queued or
// running job conflicts (409); ?force=true deletes it anyway, failing the
// jobs holding it with a clear "dataset deleted during job" error. Either
// way the delete cascades through the result layers via the store's hook.
func (s *Server) handleDeleteDataset(w http.ResponseWriter, r *http.Request) {
	if !s.requireStore(w) {
		return
	}
	id := r.PathValue("id")
	force := r.URL.Query().Get("force") == "true" || r.URL.Query().Get("force") == "1"
	var err error
	if force {
		err = s.store.ForceDelete(id)
	} else {
		err = s.store.Delete(id)
	}
	if err != nil {
		code := http.StatusInternalServerError
		switch {
		case errors.Is(err, store.ErrNotFound):
			code = http.StatusNotFound
		case errors.Is(err, store.ErrPinned):
			code = http.StatusConflict
		}
		s.fail(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": id, "forced": force})
}
