package server

// HTTP read surface of the persisted query/access log (internal/querylog):
// GET /querylog serves filtered records from the JSONL generations, and
// GET /datasets/{id}/heat serves the per-tile read-frequency rollup the
// store's read hook feeds. Both answer 501 when the log is disabled (no
// store, or -querylog-max-bytes < 0).

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/querylog"
	"repro/internal/store"
)

// querylogDefaultLimit bounds an unfiltered GET /querylog: the log may hold
// tens of MiB of records and the endpoint is for inspection, not bulk
// export (raise ?limit= explicitly to page deeper).
const querylogDefaultLimit = 500

func (s *Server) handleQuerylog(w http.ResponseWriter, r *http.Request) {
	if s.qlog == nil {
		s.fail(w, http.StatusNotImplemented, errors.New("query log not enabled (start sccgd with -data-dir)"))
		return
	}
	q := r.URL.Query()
	f := querylog.Filter{
		Dataset: q.Get("dataset"),
		Outcome: q.Get("outcome"),
		Kind:    q.Get("kind"),
		Tenant:  q.Get("tenant"),
		Limit:   querylogDefaultLimit,
	}
	var err error
	if f.Since, err = timeParam(q.Get("since")); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("since: %w", err))
		return
	}
	if f.Until, err = timeParam(q.Get("until")); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("until: %w", err))
		return
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("limit %q is not a non-negative integer", v))
			return
		}
		f.Limit = n
	}
	res, err := s.qlog.Query(f)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	records := res.Records
	if records == nil {
		records = []querylog.Record{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"schema":  querylog.Schema,
		"records": records,
		"skipped": res.Skipped,
	})
}

// timeParam parses an RFC3339 query parameter; empty means unset.
func timeParam(v string) (time.Time, error) {
	if v == "" {
		return time.Time{}, nil
	}
	t, err := time.Parse(time.RFC3339, v)
	if err != nil {
		return time.Time{}, fmt.Errorf("%q is not an RFC3339 timestamp", v)
	}
	return t, nil
}

// handleDatasetHeat serves a dataset's per-tile read counts. When the
// dataset is resident locally the heat slice is padded out to the manifest's
// tile count, so never-read tiles show as explicit zeros — the cold end of
// the distribution is data, not absence.
func (s *Server) handleDatasetHeat(w http.ResponseWriter, r *http.Request) {
	if s.qlog == nil {
		s.fail(w, http.StatusNotImplemented, errors.New("query log not enabled (start sccgd with -data-dir)"))
		return
	}
	id := r.PathValue("id")
	if !store.ValidateID(id) {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("%q is not a dataset ID", id))
		return
	}
	heat, seen := s.qlog.Heat(id)
	tiles := len(heat)
	local := false
	if s.store != nil {
		if man, ok := s.store.Get(id); ok {
			local = true
			if len(man.Tiles) > tiles {
				tiles = len(man.Tiles)
			}
		}
	}
	if !seen && !local {
		s.fail(w, http.StatusNotFound, fmt.Errorf("no reads recorded for dataset %.12s and it is not stored here", id))
		return
	}
	for t := len(heat); t < tiles; t++ {
		heat = append(heat, querylog.TileHeat{Tile: t})
	}
	var reads, bytes int64
	for _, h := range heat {
		reads += h.Reads
		bytes += h.Bytes
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"dataset":     id,
		"local":       local,
		"tiles":       heat,
		"total_reads": reads,
		"total_bytes": bytes,
	})
}
