package server

// Persistent result cache: content-hash → report JSON stored beside the
// dataset manifests (under <data-dir>/cache/), so a restarted daemon
// answers repeat jobs — and repeat matrix cells — without recompute. The
// in-memory LRU stays the first-level cache (it carries live job IDs and
// single-flight semantics); the disk layer is the durable second level,
// written when a cache-keyed job completes and loaded wholesale on boot.
//
// Entries are validated on load the way manifests are: a corrupt entry is
// skipped with a logged reason, never served. Validation re-folds the
// report's per-tile ratio partials in canonical order and requires the fold
// to reproduce the stored ratio sum, pair counts, and similarity exactly —
// the same invariant that makes sharded execution bit-deterministic makes a
// tampered or torn cache entry detectable.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/pipeline"
)

// persistEntry is one cached result on disk.
type persistEntry struct {
	// Key is the result-cache key (content-hash derived); the entry's file
	// name is the SHA-256 of this key, and load rejects entries whose key
	// does not hash back to the file that held them.
	Key    string          `json:"key"`
	Name   string          `json:"name,omitempty"`
	Cross  *CrossPayload   `json:"cross,omitempty"`
	Saved  time.Time       `json:"saved"`
	Report pipeline.Result `json:"report"`
}

// reportDisk is the on-disk cache: an in-memory index over one JSON file
// per entry, loaded at boot.
type reportDisk struct {
	dir string

	mu      sync.Mutex
	entries map[string]*persistEntry
}

// entryFile names the file holding key's entry.
func entryFile(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + ".json"
}

// openReportDisk loads the cache directory (creating it if needed) and
// returns the skip reasons of entries that failed validation.
func openReportDisk(dir string) (*reportDisk, []error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, []error{fmt.Errorf("create cache dir %s: %w", dir, err)}
	}
	rd := &reportDisk{dir: dir, entries: make(map[string]*persistEntry)}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, []error{fmt.Errorf("scan cache dir %s: %w", dir, err)}
	}
	var skipped []error
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			skipped = append(skipped, fmt.Errorf("cache entry %s: %w", name, err))
			continue
		}
		var e persistEntry
		if err := json.Unmarshal(raw, &e); err != nil {
			skipped = append(skipped, fmt.Errorf("cache entry %s: %w", name, err))
			continue
		}
		if err := validateEntry(&e); err != nil {
			skipped = append(skipped, fmt.Errorf("cache entry %s: %w", name, err))
			continue
		}
		if entryFile(e.Key) != name {
			skipped = append(skipped, fmt.Errorf("cache entry %s: key does not hash to its file name", name))
			continue
		}
		rd.entries[e.Key] = &e
	}
	return rd, skipped
}

// validateEntry rejects reports that cannot have been produced by the
// pipeline: the per-tile partials must re-fold, in canonical order, to the
// stored aggregate exactly.
func validateEntry(e *persistEntry) error {
	if e.Key == "" {
		return errors.New("missing cache key")
	}
	r := &e.Report
	if math.IsNaN(r.Similarity) || math.IsInf(r.Similarity, 0) {
		return errors.New("similarity is not finite")
	}
	if r.Intersecting < 0 || r.Candidates < 0 || r.Intersecting > r.Candidates {
		return errors.New("pair counts are inconsistent")
	}
	if len(r.TileRatios) > 0 {
		var sum float64
		hits := 0
		for i, tr := range r.TileRatios {
			if i > 0 {
				prev := r.TileRatios[i-1]
				if tr.Image < prev.Image || (tr.Image == prev.Image && tr.Tile <= prev.Tile) {
					return errors.New("tile partials out of canonical order")
				}
			}
			sum += tr.RatioSum
			hits += tr.Intersecting
		}
		if hits != r.Intersecting {
			return fmt.Errorf("tile partials carry %d intersecting pairs, report says %d", hits, r.Intersecting)
		}
		if sum != r.RatioSum {
			return errors.New("tile partials do not fold to the report's ratio sum")
		}
	}
	if r.Intersecting > 0 {
		if r.Similarity != r.RatioSum/float64(r.Intersecting) {
			return errors.New("similarity does not equal ratio sum over intersecting pairs")
		}
	} else if r.Similarity != 0 {
		return errors.New("nonzero similarity with no intersecting pairs")
	}
	return nil
}

// get returns the entry cached for key.
func (rd *reportDisk) get(key string) (*persistEntry, bool) {
	rd.mu.Lock()
	defer rd.mu.Unlock()
	e, ok := rd.entries[key]
	return e, ok
}

// len returns the live entry count.
func (rd *reportDisk) len() int {
	rd.mu.Lock()
	defer rd.mu.Unlock()
	return len(rd.entries)
}

// put records the entry in memory and writes it to disk atomically (temp
// file + rename, fsynced, like the store's manifests). The disk write runs
// outside the lock — lookups must not stall behind an fsync — which is safe
// because two concurrent puts of one key hold bit-identical reports (the
// key is a content address), so either rename wins harmlessly. The
// in-memory index is updated even when the write fails: the entry is still
// valid for this process, it just won't survive a restart.
func (rd *reportDisk) put(e *persistEntry) error {
	raw, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("encode cache entry: %w", err)
	}
	rd.mu.Lock()
	rd.entries[e.Key] = e
	rd.mu.Unlock()
	f, err := os.CreateTemp(rd.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("write cache entry: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(raw); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, filepath.Join(rd.dir, entryFile(e.Key)))
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("write cache entry: %w", err)
	}
	return nil
}
