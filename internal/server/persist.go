package server

// Persistent result cache: content-hash → report JSON stored beside the
// dataset manifests (under <data-dir>/cache/), so a restarted daemon
// answers repeat jobs — and repeat matrix cells — without recompute. The
// in-memory LRU stays the first-level cache (it carries live job IDs and
// single-flight semantics); the disk layer is the durable second level,
// written when a cache-keyed job completes and loaded wholesale on boot.
//
// Entries are validated on load the way manifests are: a corrupt entry is
// skipped with a logged reason, never served. Validation re-folds the
// report's per-tile ratio partials in canonical order and requires the fold
// to reproduce the stored ratio sum, pair counts, and similarity exactly —
// the same invariant that makes sharded execution bit-deterministic makes a
// tampered or torn cache entry detectable.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/pipeline"
)

// persistEntry is one cached result on disk.
type persistEntry struct {
	// Key is the result-cache key (content-hash derived); the entry's file
	// name is the SHA-256 of this key, and load rejects entries whose key
	// does not hash back to the file that held them.
	Key    string          `json:"key"`
	Name   string          `json:"name,omitempty"`
	Cross  *CrossPayload   `json:"cross,omitempty"`
	Saved  time.Time       `json:"saved"`
	Report pipeline.Result `json:"report"`

	// used is in-process recency for the LRU entry bound; boot seeds it from
	// Saved. Never serialized.
	used time.Time `json:"-"`
}

// reportDisk is the on-disk cache: an in-memory index over one JSON file
// per entry, loaded at boot. With max > 0 the entry count is bounded:
// put evicts least-recently-used entries past the cap, and the retention
// sweeper can re-enforce it via EnforceLimit.
type reportDisk struct {
	dir string
	max int // entry cap; 0 = unbounded
	// keep, when set, gates put: an entry whose key it rejects is not
	// stored. The server wires it to dataset liveness, and the check runs
	// inside put's critical section — the same mutex the delete cascade's
	// dropDataset takes — so a persister racing a dataset delete can never
	// insert after the cascade looked (if the delete committed first, keep
	// sees the dataset gone; if put won, the cascade drops the entry).
	keep func(key string) bool

	mu      sync.Mutex
	entries map[string]*persistEntry
}

// entryFile names the file holding key's entry.
func entryFile(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + ".json"
}

// openReportDisk loads the cache directory (creating it if needed) and
// returns the skip reasons of entries that failed validation. maxEntries
// bounds the live entry count at put time (0 = unbounded); the caller
// enforces it over preexisting entries AFTER dropping orphans, so dead
// entries never occupy cap slots at the expense of live ones.
func openReportDisk(dir string, maxEntries int) (*reportDisk, []error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, []error{fmt.Errorf("create cache dir %s: %w", dir, err)}
	}
	rd := &reportDisk{dir: dir, max: maxEntries, entries: make(map[string]*persistEntry)}
	des, err := os.ReadDir(dir)
	if err != nil {
		return nil, []error{fmt.Errorf("scan cache dir %s: %w", dir, err)}
	}
	var skipped []error
	for _, de := range des {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			skipped = append(skipped, fmt.Errorf("cache entry %s: %w", name, err))
			continue
		}
		var e persistEntry
		if err := json.Unmarshal(raw, &e); err != nil {
			skipped = append(skipped, fmt.Errorf("cache entry %s: %w", name, err))
			continue
		}
		if err := validateEntry(&e); err != nil {
			skipped = append(skipped, fmt.Errorf("cache entry %s: %w", name, err))
			continue
		}
		if entryFile(e.Key) != name {
			skipped = append(skipped, fmt.Errorf("cache entry %s: key does not hash to its file name", name))
			continue
		}
		e.used = e.Saved
		rd.entries[e.Key] = &e
	}
	return rd, skipped
}

// validateEntry rejects reports that cannot have been produced by the
// pipeline: the per-tile partials must re-fold, in canonical order, to the
// stored aggregate exactly.
func validateEntry(e *persistEntry) error {
	if e.Key == "" {
		return errors.New("missing cache key")
	}
	r := &e.Report
	if math.IsNaN(r.Similarity) || math.IsInf(r.Similarity, 0) {
		return errors.New("similarity is not finite")
	}
	if r.Intersecting < 0 || r.Candidates < 0 || r.Intersecting > r.Candidates {
		return errors.New("pair counts are inconsistent")
	}
	if len(r.TileRatios) > 0 {
		var sum float64
		hits := 0
		for i, tr := range r.TileRatios {
			if i > 0 {
				prev := r.TileRatios[i-1]
				if tr.Image < prev.Image || (tr.Image == prev.Image && tr.Tile <= prev.Tile) {
					return errors.New("tile partials out of canonical order")
				}
			}
			sum += tr.RatioSum
			hits += tr.Intersecting
		}
		if hits != r.Intersecting {
			return fmt.Errorf("tile partials carry %d intersecting pairs, report says %d", hits, r.Intersecting)
		}
		if sum != r.RatioSum {
			return errors.New("tile partials do not fold to the report's ratio sum")
		}
	}
	if r.Intersecting > 0 {
		if r.Similarity != r.RatioSum/float64(r.Intersecting) {
			return errors.New("similarity does not equal ratio sum over intersecting pairs")
		}
	} else if r.Similarity != 0 {
		return errors.New("nonzero similarity with no intersecting pairs")
	}
	return nil
}

// get returns the entry cached for key, refreshing its recency.
func (rd *reportDisk) get(key string) (*persistEntry, bool) {
	rd.mu.Lock()
	defer rd.mu.Unlock()
	e, ok := rd.entries[key]
	if ok {
		e.used = time.Now()
	}
	return e, ok
}

// len returns the live entry count.
func (rd *reportDisk) len() int {
	rd.mu.Lock()
	defer rd.mu.Unlock()
	return len(rd.entries)
}

// put records the entry in memory and writes it to disk atomically (temp
// file + rename, fsynced, like the store's manifests). The disk write runs
// outside the lock — lookups must not stall behind an fsync — which is safe
// because two concurrent puts of one key hold bit-identical reports (the
// key is a content address), so either rename wins harmlessly. The
// in-memory index is updated even when the write fails: the entry is still
// valid for this process, it just won't survive a restart.
func (rd *reportDisk) put(e *persistEntry) error {
	raw, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("encode cache entry: %w", err)
	}
	rd.mu.Lock()
	if rd.keep != nil && !rd.keep(e.Key) {
		rd.mu.Unlock()
		return nil // the entry's dataset is gone; nothing to persist
	}
	e.used = time.Now()
	rd.entries[e.Key] = e
	if rd.max > 0 {
		rd.enforceLocked(rd.max)
	}
	rd.mu.Unlock()
	f, err := os.CreateTemp(rd.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("write cache entry: %w", err)
	}
	tmp := f.Name()
	if _, err := f.Write(raw); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, filepath.Join(rd.dir, entryFile(e.Key)))
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("write cache entry: %w", err)
	}
	// Reconcile: the key may have been dropped (delete cascade, clear, LRU
	// eviction) while the bytes were in flight, in which case the rename
	// just orphaned a file the index no longer tracks — remove it. A
	// *replaced* entry (another put of the same key) is left alone: the key
	// is a content address, so the file bytes serve the new entry exactly.
	rd.mu.Lock()
	if _, ok := rd.entries[e.Key]; !ok {
		os.Remove(filepath.Join(rd.dir, entryFile(e.Key)))
	}
	rd.mu.Unlock()
	return nil
}

// removeLocked drops one entry from the index and from disk. Callers hold mu.
func (rd *reportDisk) removeLocked(key string) {
	if _, ok := rd.entries[key]; !ok {
		return
	}
	delete(rd.entries, key)
	os.Remove(filepath.Join(rd.dir, entryFile(key)))
}

// enforceLocked evicts least-recently-used entries until at most max remain,
// returning how many were dropped. Callers hold mu.
func (rd *reportDisk) enforceLocked(max int) int {
	over := len(rd.entries) - max
	if over <= 0 {
		return 0
	}
	type rec struct {
		key  string
		used time.Time
	}
	order := make([]rec, 0, len(rd.entries))
	for k, e := range rd.entries {
		order = append(order, rec{key: k, used: e.used})
	}
	sort.Slice(order, func(i, j int) bool {
		if !order[i].used.Equal(order[j].used) {
			return order[i].used.Before(order[j].used)
		}
		return order[i].key < order[j].key
	})
	for _, r := range order[:over] {
		rd.removeLocked(r.key)
	}
	return over
}

// EnforceLimit evicts least-recently-used entries beyond max. It is the
// retention engine's cache hook (see retention.Cache).
func (rd *reportDisk) EnforceLimit(max int) int {
	if max < 0 {
		max = 0
	}
	rd.mu.Lock()
	defer rd.mu.Unlock()
	return rd.enforceLocked(max)
}

// retain keeps only entries whose key the predicate accepts, dropping the
// rest from memory and disk; it returns how many were dropped. The server
// runs it at boot against the store's recovered datasets, so a crash between
// a dataset delete and its cache cascade can never resurrect the report.
func (rd *reportDisk) retain(keep func(key string) bool) int {
	rd.mu.Lock()
	defer rd.mu.Unlock()
	dropped := 0
	for k := range rd.entries {
		if !keep(k) {
			rd.removeLocked(k)
			dropped++
		}
	}
	return dropped
}

// dropDataset removes every entry whose key references the dataset — its
// single-dataset entry and every cross entry it participates in. This is the
// delete-cascade path.
func (rd *reportDisk) dropDataset(id string) int {
	return rd.retain(func(key string) bool {
		for _, ref := range keyDatasetIDs(key) {
			if ref == id {
				return false
			}
		}
		return true
	})
}

// clear empties the cache layer, removing every entry file.
func (rd *reportDisk) clear() int {
	rd.mu.Lock()
	defer rd.mu.Unlock()
	n := len(rd.entries)
	for k := range rd.entries {
		rd.removeLocked(k)
	}
	return n
}
