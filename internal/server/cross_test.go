package server

// Tests for the cross-dataset comparison surface: dataset_a/dataset_b jobs,
// the matrix endpoints, tile-range reads, and the persisted result cache.

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/compare"
	"repro/internal/parser"
	"repro/internal/pathology"
	"repro/internal/sched"
	"repro/internal/store"
)

func testStoreAt(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return st
}

// ingestSpec stores a generated dataset; image is the tile key namespace.
func ingestSpec(t *testing.T, st *store.Store, image string, seed int64, tiles int) *store.Manifest {
	t.Helper()
	spec := pathology.Representative()
	spec.Name = image
	spec.Seed = seed
	spec.Tiles = tiles
	man, err := st.IngestDataset(pathology.Generate(spec))
	if err != nil {
		t.Fatalf("IngestDataset: %v", err)
	}
	return man
}

// TestCrossJobSelfMatchesSingleDataset: a dataset_a/dataset_b job over the
// same stored content is answered bit-identically to — and, because the
// cache keys coincide, by the very same job as — the single-dataset job.
func TestCrossJobSelfMatchesSingleDataset(t *testing.T) {
	st := testStoreAt(t, t.TempDir())
	man := ingestSpec(t, st, "self", 101, 3)
	_, _, ts := newTestServer(t, sched.Config{Devices: 1}, Options{Store: st})

	resp, body := postJSON(t, ts.URL+"/jobs", JobRequest{DatasetID: man.ID})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("single submit = %d: %s", resp.StatusCode, body)
	}
	var single JobResponse
	if err := json.Unmarshal(body, &single); err != nil {
		t.Fatal(err)
	}
	singleDone := pollDone(t, ts.URL, single.ID)
	if singleDone.State != "done" {
		t.Fatalf("single job ended %s: %s", singleDone.State, singleDone.Error)
	}

	resp, body = postJSON(t, ts.URL+"/jobs", JobRequest{DatasetA: man.ID, DatasetB: man.ID})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cross self submit = %d, want 200 cache hit: %s", resp.StatusCode, body)
	}
	var cross JobResponse
	if err := json.Unmarshal(body, &cross); err != nil {
		t.Fatal(err)
	}
	if !cross.Cached || cross.ID != single.ID {
		t.Fatalf("cross self = %+v, want cache hit on job %s", cross, single.ID)
	}
	if cross.Report == nil || cross.Report.Similarity != singleDone.Report.Similarity {
		t.Fatalf("cross self report %+v != single %+v", cross.Report, singleDone.Report)
	}
}

// TestCrossJobPartialOverlap: unmatched tiles are reported in the job's
// cross block; disjoint datasets are rejected with the counts.
func TestCrossJobPartialOverlap(t *testing.T) {
	st := testStoreAt(t, t.TempDir())
	spec := pathology.Representative()
	spec.Name = "overlap"
	spec.Tiles = 4
	d := pathology.Generate(spec)
	all := make([]store.IngestTile, len(d.Pairs))
	for i, tp := range d.Pairs {
		all[i] = store.IngestTile{Image: tp.Image, Tile: tp.Index, A: tp.A, B: tp.B}
	}
	manFull, err := st.Ingest("full", all)
	if err != nil {
		t.Fatal(err)
	}
	manHalf, err := st.Ingest("half", all[:2])
	if err != nil {
		t.Fatal(err)
	}
	_, _, ts := newTestServer(t, sched.Config{Devices: 1}, Options{Store: st})

	resp, body := postJSON(t, ts.URL+"/jobs", JobRequest{DatasetA: manFull.ID, DatasetB: manHalf.ID})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cross submit = %d: %s", resp.StatusCode, body)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	if jr.Cross == nil {
		t.Fatal("cross job response carries no cross block")
	}
	if jr.Cross.MatchedTiles != 2 || jr.Cross.UnmatchedA != 2 || jr.Cross.UnmatchedB != 0 {
		t.Fatalf("cross block = %+v, want 2 matched, 2 unmatched in A", jr.Cross)
	}
	if len(jr.Cross.UnmatchedASample) != 2 {
		t.Fatalf("unmatched sample = %+v", jr.Cross.UnmatchedASample)
	}
	if jr.Tiles != 2 {
		t.Fatalf("job tiles = %d, want the 2 matched pairs", jr.Tiles)
	}
	done := pollDone(t, ts.URL, jr.ID)
	if done.State != "done" {
		t.Fatalf("cross job ended %s: %s", done.State, done.Error)
	}
	if done.Cross == nil || done.Cross.UnmatchedA != 2 {
		t.Fatalf("polled job lost its cross block: %+v", done.Cross)
	}

	// Disjoint datasets: rejected up front, with the mismatch reported.
	manOther := ingestSpec(t, st, "otherslide", 999, 2)
	resp, body = postJSON(t, ts.URL+"/jobs", JobRequest{DatasetA: manHalf.ID, DatasetB: manOther.ID})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("disjoint cross = %d, want 422: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "share no tile keys") {
		t.Fatalf("disjoint cross error %s does not report the mismatch", body)
	}
}

// TestCrossRequestValidation: half-set pairs and malformed IDs are 400s.
func TestCrossRequestValidation(t *testing.T) {
	st := testStoreAt(t, t.TempDir())
	_, _, ts := newTestServer(t, sched.Config{}, Options{Store: st})
	valid := strings.Repeat("ab", 32)
	for _, body := range []string{
		`{"dataset_a":"` + valid + `"}`,
		`{"dataset_b":"` + valid + `"}`,
		`{"dataset_a":"xyz","dataset_b":"` + valid + `"}`,
		`{"dataset_a":"` + valid + `","dataset_b":"` + valid + `","corpus":"x"}`,
	} {
		resp, raw := postJSON(t, ts.URL+"/jobs", json.RawMessage(body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("submit %s = %d, want 400: %s", body, resp.StatusCode, raw)
		}
	}
}

// TestTileReadEndpoint: GET /datasets/{id}/tiles/{n} serves the stored
// tile's canonical polygon text, digest-verified.
func TestTileReadEndpoint(t *testing.T) {
	st := testStoreAt(t, t.TempDir())
	spec := pathology.Representative()
	spec.Name = "tileread"
	spec.Tiles = 2
	d := pathology.Generate(spec)
	man, err := st.IngestDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	_, _, ts := newTestServer(t, sched.Config{}, Options{Store: st})

	var tp TilePayload
	if resp := getJSON(t, ts.URL+"/datasets/"+man.ID+"/tiles/1", &tp); resp.StatusCode != http.StatusOK {
		t.Fatalf("tile read status = %d", resp.StatusCode)
	}
	// The stored tile order is canonical (image, tile); spec tiles are
	// already in that order here.
	want := d.Pairs[1]
	if tp.Image != want.Image || tp.Tile != want.Index {
		t.Fatalf("tile read keyed %s/%d, want %s/%d", tp.Image, tp.Tile, want.Image, want.Index)
	}
	if string(tp.RawA) != string(parser.Encode(want.A)) || string(tp.RawB) != string(parser.Encode(want.B)) {
		t.Fatal("tile read text differs from canonical encoding of the ingested polygons")
	}
	if tp.PolygonsA != len(want.A) || tp.PolygonsB != len(want.B) {
		t.Fatalf("tile read counts %d/%d, want %d/%d", tp.PolygonsA, tp.PolygonsB, len(want.A), len(want.B))
	}

	if resp := getJSON(t, ts.URL+"/datasets/"+man.ID+"/tiles/99", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("out-of-range tile = %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/datasets/"+man.ID+"/tiles/x", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-numeric tile = %d, want 400", resp.StatusCode)
	}
	bogus := strings.Repeat("00", 32)
	if resp := getJSON(t, ts.URL+"/datasets/"+bogus+"/tiles/0", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown dataset tile read = %d, want 404", resp.StatusCode)
	}
}

// TestPersistedCacheAcrossRestart: a completed job's report is written
// beside the manifests and answers the same content from a fresh server
// (new scheduler, same store directory) without any new submission; a
// corrupted entry is skipped, never served.
func TestPersistedCacheAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	st := testStoreAt(t, dir)
	man := ingestSpec(t, st, "persist", 77, 2)

	_, _, ts := newTestServer(t, sched.Config{Devices: 1}, Options{Store: st})
	resp, body := postJSON(t, ts.URL+"/jobs", JobRequest{DatasetID: man.ID})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	first := pollDone(t, ts.URL, jr.ID)
	if first.State != "done" {
		t.Fatalf("job ended %s: %s", first.State, first.Error)
	}
	// The persister runs asynchronously after the job completes.
	cacheDir := filepath.Join(dir, "cache")
	deadline := time.Now().Add(10 * time.Second)
	for {
		if entries, _ := os.ReadDir(cacheDir); len(entries) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no persisted cache entry appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// "Restart": a fresh scheduler and server over the same directory.
	st2 := testStoreAt(t, dir)
	srv2, sc2, ts2 := newTestServer(t, sched.Config{Devices: 1}, Options{Store: st2})
	resp, body = postJSON(t, ts2.URL+"/jobs", JobRequest{DatasetID: man.ID})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart submit = %d, want 200 persisted hit: %s", resp.StatusCode, body)
	}
	var hit JobResponse
	if err := json.Unmarshal(body, &hit); err != nil {
		t.Fatal(err)
	}
	if !hit.Cached || hit.State != "done" || hit.Report == nil {
		t.Fatalf("post-restart response = %+v, want cached done report", hit)
	}
	if hit.Report.Similarity != first.Report.Similarity || hit.Report.Intersecting != first.Report.Intersecting {
		t.Fatalf("persisted report (%.17g, %d) != original (%.17g, %d); must be exact",
			hit.Report.Similarity, hit.Report.Intersecting,
			first.Report.Similarity, first.Report.Intersecting)
	}
	if got := sc2.Stats().Submitted; got != 0 {
		t.Fatalf("persisted hit still submitted %d jobs", got)
	}
	_ = srv2

	// Corrupt every entry: a third server must skip them and recompute.
	entries, err := os.ReadDir(cacheDir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("cache dir: %v (%d entries)", err, len(entries))
	}
	for _, e := range entries {
		p := filepath.Join(cacheDir, e.Name())
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		// Tamper with the report body, keeping valid JSON.
		tampered := strings.Replace(string(raw), `"Intersecting":`, `"Intersecting": 1e`, 1)
		if tampered == string(raw) {
			tampered = "{" + string(raw) // not JSON at all
		}
		if err := os.WriteFile(p, []byte(tampered), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	st3 := testStoreAt(t, dir)
	_, _, ts3 := newTestServer(t, sched.Config{Devices: 1}, Options{Store: st3})
	resp, body = postJSON(t, ts3.URL+"/jobs", JobRequest{DatasetID: man.ID})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit over corrupt cache = %d, want 202 recompute: %s", resp.StatusCode, body)
	}
}

// TestMatrixEndpoints: POST /matrix over 3 stored datasets, poll to done,
// verify symmetry and per-cell agreement with pairwise jobs; repeat run is
// fully cache-answered; DELETE on a terminal run conflicts.
func TestMatrixEndpoints(t *testing.T) {
	st := testStoreAt(t, t.TempDir())
	ids := []string{
		ingestSpec(t, st, "mx", 1, 2).ID,
		ingestSpec(t, st, "mx", 2, 2).ID,
		ingestSpec(t, st, "mx", 3, 2).ID,
	}
	_, _, ts := newTestServer(t, sched.Config{Devices: 2}, Options{Store: st})

	resp, body := postJSON(t, ts.URL+"/matrix", MatrixRequest{Datasets: ids, Name: "endpoints"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("matrix submit = %d: %s", resp.StatusCode, body)
	}
	var mst compare.Status
	if err := json.Unmarshal(body, &mst); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Minute)
	for mst.State == compare.RunRunning {
		if time.Now().After(deadline) {
			t.Fatalf("matrix stuck: %+v", mst)
		}
		time.Sleep(10 * time.Millisecond)
		if r := getJSON(t, ts.URL+"/matrix/"+mst.ID, &mst); r.StatusCode != http.StatusOK {
			t.Fatalf("matrix poll = %d", r.StatusCode)
		}
	}
	if mst.State != compare.RunDone {
		t.Fatalf("matrix ended %s: %+v", mst.State, mst.Cells)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			c := mst.Cells[i][j]
			if i == j {
				if c.State != compare.CellSelf {
					t.Errorf("diagonal [%d][%d] = %q", i, j, c.State)
				}
				continue
			}
			if c.State != compare.CellDone {
				t.Fatalf("cell [%d][%d] = %q: %s", i, j, c.State, c.Error)
			}
			if c.Similarity != mst.Cells[j][i].Similarity {
				t.Errorf("matrix asymmetric at [%d][%d]", i, j)
			}
			// The cell must match an independent pairwise job exactly (the
			// cache serves the identical job, so this also exercises the
			// cross cache key).
			a, b := ids[i], ids[j]
			if i > j {
				a, b = ids[j], ids[i]
			}
			r2, body2 := postJSON(t, ts.URL+"/jobs", JobRequest{DatasetA: a, DatasetB: b})
			if r2.StatusCode != http.StatusOK {
				t.Fatalf("pairwise resubmit = %d (want cache hit): %s", r2.StatusCode, body2)
			}
			var pj JobResponse
			if err := json.Unmarshal(body2, &pj); err != nil {
				t.Fatal(err)
			}
			if pj.Report == nil || pj.Report.Similarity != c.Similarity {
				t.Errorf("cell [%d][%d] similarity %v != pairwise job %+v", i, j, c.Similarity, pj.Report)
			}
		}
	}
	if !mst.Group.Terminal || mst.Group.Done != 3 {
		t.Errorf("matrix group = %+v", mst.Group)
	}

	// Repeat run: every cell served from cache, no new scheduler jobs.
	resp, body = postJSON(t, ts.URL+"/matrix", MatrixRequest{Datasets: ids})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("repeat matrix = %d: %s", resp.StatusCode, body)
	}
	var again compare.Status
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	for again.State == compare.RunRunning {
		time.Sleep(5 * time.Millisecond)
		getJSON(t, ts.URL+"/matrix/"+again.ID, &again)
	}
	for i := range again.Cells {
		for j := range again.Cells[i] {
			if i != j && !again.Cells[i][j].Cached {
				t.Errorf("repeat matrix cell [%d][%d] not cached: %+v", i, j, again.Cells[i][j])
			}
		}
	}

	// Terminal runs conflict on cancel; unknown IDs 404.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/matrix/"+mst.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusConflict {
		t.Errorf("cancel terminal matrix = %d, want 409", dresp.StatusCode)
	}
	if r := getJSON(t, ts.URL+"/matrix/mx-999999", nil); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown matrix = %d, want 404", r.StatusCode)
	}

	var list struct {
		Matrices []compare.Status `json:"matrices"`
	}
	getJSON(t, ts.URL+"/matrix", &list)
	if len(list.Matrices) != 2 {
		t.Errorf("matrix list has %d runs, want 2", len(list.Matrices))
	}

	// Validation: duplicate and malformed IDs.
	for _, bad := range []MatrixRequest{
		{Datasets: []string{ids[0]}},
		{Datasets: []string{ids[0], ids[0]}},
		{Datasets: []string{ids[0], "nothex"}},
	} {
		r, raw := postJSON(t, ts.URL+"/matrix", bad)
		if r.StatusCode != http.StatusBadRequest {
			t.Errorf("matrix %+v = %d, want 400: %s", bad, r.StatusCode, raw)
		}
	}
	unknown := strings.Repeat("ef", 32)
	if r, _ := postJSON(t, ts.URL+"/matrix", MatrixRequest{Datasets: []string{ids[0], unknown}}); r.StatusCode != http.StatusNotFound {
		t.Errorf("matrix over unknown dataset = %d, want 404", r.StatusCode)
	}
}
