package server

// Server-side cluster glue: the peer-to-peer HTTP surface other nodes call
// (/internal/*), and the client-side hooks the submission path uses in
// clustered mode — peer-pull of missing datasets, the cluster-wide result
// cache read-through, and owner-routed matrix cell execution.
//
// Trust model: nothing a peer serves is taken at face value. Manifests must
// fold back to their content address and segments are digest-verified
// tile-by-tile before publish (both inside store.Import / cluster.Node);
// result payloads must carry the expected cache key and pass the same
// structural validation the persisted disk layer applies to its own entries
// (validateEntry re-folds the tile partials exactly). An invalid answer is
// treated as a peer failure: skipped, logged, never served.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/cluster"
	"repro/internal/compare"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/querylog"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/tenant"
	"repro/internal/trace"
)

const (
	// clusterResultTimeout bounds a cache probe: owners answer from memory
	// or one disk read, so a slow peer is a down peer.
	clusterResultTimeout = 5 * time.Second
	// clusterCompareTimeout bounds a routed cell: the remote node may have
	// to pull both datasets and compute the cell from scratch.
	clusterCompareTimeout = 10 * time.Minute
	// maxClusterResultBytes bounds a peer result payload (reports carry
	// per-tile partials, still far below this).
	maxClusterResultBytes = 64 << 20
)

// clusterResult is the wire form of one finished comparison exchanged
// between peers: the persisted-cache entry shape plus a cached flag, so the
// receiver can validate it exactly like a local disk entry and adopt it into
// its own cache layers.
type clusterResult struct {
	Key    string          `json:"key"`
	Name   string          `json:"name,omitempty"`
	Cross  *CrossPayload   `json:"cross,omitempty"`
	Saved  time.Time       `json:"saved"`
	Cached bool            `json:"cached,omitempty"`
	Report pipeline.Result `json:"report"`
	// Trace carries the serving node's spans for this request so the caller
	// can splice them into its own picture. Validation ignores it — a trace
	// is observability, never trusted data.
	Trace *trace.Trace `json:"trace,omitempty"`
}

// clusterCompareRequest asks a peer to compute (or answer from cache) one
// pairwise comparison on the caller's behalf.
type clusterCompareRequest struct {
	DatasetA string `json:"dataset_a"`
	DatasetB string `json:"dataset_b"`
}

// peerRecorder starts a child recorder under the caller's traceparent, so
// spans recorded while serving a peer request share the caller's trace ID. A
// caller without a (valid) traceparent still gets spans — under a fresh
// trace identity.
func peerRecorder(r *http.Request) *trace.Recorder {
	parent, _ := trace.ParseTraceparent(r.Header.Get(trace.Header))
	return trace.NewRecorderFrom(parent)
}

// setHeaderTrace attaches the recorder's spans to the response as the
// X-Sccg-Trace header — the return channel for byte-stream endpoints whose
// bodies are raw data. Must run before the first body write.
func setHeaderTrace(w http.ResponseWriter, rec *trace.Recorder) {
	if enc := trace.EncodeHeaderTrace(rec.Snapshot()); enc != "" {
		w.Header().Set(trace.ResponseHeader, enc)
	}
}

// handleClusterManifest serves a stored dataset's manifest to a peer.
func (s *Server) handleClusterManifest(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !store.ValidateID(id) {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("%q is not a dataset ID", id))
		return
	}
	rec := peerRecorder(r)
	start := time.Now()
	man, ok := s.store.Get(id)
	rec.Add("serve_manifest", id[:12], start, time.Now())
	if !ok {
		s.fail(w, http.StatusNotFound, store.ErrNotFound)
		return
	}
	setHeaderTrace(w, rec)
	writeJSON(w, http.StatusOK, man)
}

// handleClusterSegment streams a stored dataset's raw segment bytes to a
// peer. The receiver digest-verifies every tile on import, so this serves
// plain bytes with no further framing. The trace header only covers work
// before the stream starts (headers precede the body on the wire); the
// caller's own span brackets the full transfer.
func (s *Server) handleClusterSegment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !store.ValidateID(id) {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("%q is not a dataset ID", id))
		return
	}
	rec := peerRecorder(r)
	start := time.Now()
	rc, size, err := s.store.OpenSegment(id)
	rec.Add("serve_segment", id[:12], start, time.Now())
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, store.ErrNotFound) {
			code = http.StatusNotFound
		}
		s.fail(w, code, err)
		return
	}
	defer rc.Close()
	setHeaderTrace(w, rec)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	_, _ = io.Copy(w, rc)
}

// handleClusterResult answers a peer's cache probe from this node's own
// result layers only — live LRU, then persisted reports. It never forwards
// to other peers: the requester walks the owner ranking itself, so one probe
// can never fan out into a cluster-wide recursion.
func (s *Server) handleClusterResult(w http.ResponseWriter, r *http.Request) {
	a, b := r.PathValue("a"), r.PathValue("b")
	if !store.ValidateID(a) || !store.ValidateID(b) {
		s.fail(w, http.StatusBadRequest, errors.New("result probe needs two dataset IDs"))
		return
	}
	rec := peerRecorder(r)
	start := time.Now()
	res, ok := s.localResult(crossKey(a, b))
	rec.Add("serve_result", a[:12]+"/"+b[:12], start, time.Now())
	if !ok {
		s.fail(w, http.StatusNotFound, errors.New("no cached result"))
		return
	}
	// Only the probe's own serving spans travel back: the cached report's
	// original compute trace belongs to a past job, not this call window.
	res.Trace = rec.Snapshot()
	writeJSON(w, http.StatusOK, res)
}

// localResult resolves a cache key against this node's layers without
// computing or forwarding: a finished live job under the LRU key, or a
// persisted entry.
func (s *Server) localResult(key string) (clusterResult, bool) {
	if id, ok := s.cache.get(key); ok {
		if st, live := s.sched.Job(id); live && st.State == sched.Done {
			s.crossMu.Lock()
			cross := s.crossByJob[id]
			s.crossMu.Unlock()
			return clusterResult{Key: key, Name: st.Name, Cross: cross, Saved: st.Finished.UTC(), Cached: true, Report: st.Report}, true
		}
	}
	if s.persist != nil {
		if e, ok := s.persist.get(key); ok {
			return clusterResult{Key: e.Key, Name: e.Name, Cross: e.Cross, Saved: e.Saved, Cached: true, Report: e.Report}, true
		}
	}
	return clusterResult{}, false
}

// handleClusterCompare computes — or answers from cache — one pairwise
// comparison on behalf of a peer: the receiving end of matrix cell routing.
// It runs the full submission path (cache layers, peer-pull of missing
// datasets, persistence) and blocks until the result is terminal.
func (s *Server) handleClusterCompare(w http.ResponseWriter, r *http.Request) {
	var req clusterCompareRequest
	if err := s.decode(w, r, &req); err != nil {
		return
	}
	// The caller's traceparent rides into the submission path, so the job's
	// whole recorder — materialize, pins, pulls, scheduler stages — joins the
	// caller's trace and travels back on the result for splicing. The
	// forwarded tenant NAME (never the token) keeps the work attributed to
	// the originating tenant on this node too; routed cells are batch work.
	parent, _ := trace.ParseTraceparent(r.Header.Get(trace.Header))
	sub, err := s.submitRequestAs(JobRequest{DatasetA: req.DatasetA, DatasetB: req.DatasetB,
		Band: sched.BandBatch.String()}, s.peerTenant(r), parent)
	if err != nil {
		s.fail(w, sub.code, err)
		return
	}
	key := crossKey(req.DatasetA, req.DatasetB)
	if sub.report != nil {
		// A cache layer answered terminal-immediately: synthesize the one
		// span that happened here (the cache probe) so the caller's splice
		// still shows where the answer came from.
		rec := trace.NewRecorderFrom(parent)
		rec.Add("cache", sub.outcome, time.Now(), time.Now())
		writeJSON(w, http.StatusOK, clusterResult{
			Key: key, Name: sub.resp.Name, Cross: sub.cross,
			Saved: time.Now().UTC(), Cached: true, Report: *sub.report,
			Trace: rec.Snapshot(),
		})
		return
	}
	st, err := s.sched.Wait(r.Context(), sub.jobID)
	if err != nil {
		s.fail(w, http.StatusServiceUnavailable, fmt.Errorf("waiting for job %s: %w", sub.jobID, err))
		return
	}
	if st.State != sched.Done {
		msg := st.Error
		if msg == "" {
			msg = "job ended " + st.State.String()
		}
		s.fail(w, http.StatusInternalServerError, errors.New(msg))
		return
	}
	writeJSON(w, http.StatusOK, clusterResult{
		Key: key, Name: st.Name, Cross: sub.cross,
		Saved: st.Finished.UTC(), Cached: sub.resp.Cached, Report: st.Report,
		Trace: st.Trace,
	})
}

// validateClusterResult holds a peer's result payload to the persisted
// layer's standard: expected key, structural consistency, exact tile-partial
// re-fold. Returns the entry ready for local adoption.
func validateClusterResult(res *clusterResult, wantKey string) (*persistEntry, error) {
	if res.Key != wantKey {
		return nil, fmt.Errorf("peer result carries key for a different comparison")
	}
	e := &persistEntry{Key: res.Key, Name: res.Name, Cross: res.Cross, Saved: res.Saved, Report: res.Report}
	if err := validateEntry(e); err != nil {
		return nil, err
	}
	return e, nil
}

// observeRemoteSpan times one cross-node leg (peer pull, remote compare,
// remote cache probe) into the per-kind remote-span histogram.
func (s *Server) observeRemoteSpan(kind string, start time.Time) {
	s.reg.Histogram(metrics.Label("sccgd_cluster_remote_span_seconds", "kind", kind)).ObserveSince(start)
}

// recordPull appends a query-log record for one peer pull attempt.
func (s *Server) recordPull(rec *trace.Recorder, id string, res cluster.PullResult, dur time.Duration, err error) {
	if s.qlog == nil {
		return
	}
	qr := querylog.Record{
		Kind:       querylog.KindPull,
		ID:         id,
		TraceID:    rec.Context().TraceIDString(),
		Datasets:   []querylog.DatasetIO{{ID: id, Bytes: res.Bytes}},
		DurationMs: float64(dur.Microseconds()) / 1000,
		Outcome:    querylog.OutcomePulled,
		Peer:       res.Peer,
	}
	if man, ok := s.store.Get(id); ok {
		qr.Datasets[0].Tiles = len(man.Tiles)
	}
	if err != nil {
		qr.Outcome = querylog.OutcomeFailed
		qr.Error = err.Error()
	}
	s.qlog.Append(qr)
}

// ensureLocal makes every dataset resident in the local store, pulling
// missing ones from cluster peers (digest-verified on arrival). Each pull is
// recorded as a `cluster` span, the serving peer's own spans are spliced in
// beside it, and a query-log pull record lands either way. Without a cluster
// it is a no-op: absence surfaces through the usual not-found paths.
func (s *Server) ensureLocal(rec *trace.Recorder, tenantName string, ids ...string) error {
	if s.cluster == nil || s.store == nil {
		return nil
	}
	for _, id := range ids {
		if _, ok := s.store.Get(id); ok {
			continue
		}
		ctx := tenant.WithContext(trace.WithContext(context.Background(), rec.Context()), tenantName)
		start := time.Now()
		res, err := s.cluster.PullDatasetCtx(ctx, id)
		end := time.Now()
		detail := "pull " + id[:12]
		if err != nil {
			detail += " failed"
		}
		rec.Add("cluster", detail, start, end)
		rec.Splice(res.Peer, res.Remote, start, end)
		s.observeRemoteSpan("pull", start)
		s.recordPull(rec, id, res, end.Sub(start), err)
		if err != nil {
			return err
		}
	}
	return nil
}

// remoteResult is the cluster-wide read-through layer beneath the local
// cache: ask the live peers, owner-ranked, whether one already holds the
// finished report for key. A hit is adopted into the local persisted layer
// (best-effort; the keep gate may decline entries for datasets not held
// here) and served exactly like a persisted hit.
func (s *Server) remoteResult(key, tenantName string, parent trace.Context) (submission, bool) {
	ids := keyDatasetIDs(key)
	if len(ids) == 0 {
		return submission{}, false // request-hash key: content unknown cluster-wide
	}
	a, b := ids[0], ids[len(ids)-1]
	rec := trace.NewRecorderFrom(parent)
	for _, hop := range s.cluster.Ranked(key) {
		if hop.Peer == nil {
			continue // this node's own layers already missed
		}
		ctx, cancel := context.WithTimeout(tenant.WithContext(
			trace.WithContext(context.Background(), rec.Context()), tenantName), clusterResultTimeout)
		start := time.Now()
		var res clusterResult
		err := s.cluster.GetJSON(ctx, hop.Peer, "/internal/results/"+a+"/"+b, &res, maxClusterResultBytes)
		cancel()
		end := time.Now()
		if err != nil {
			continue // miss or peer failure; a lower-ranked peer may still answer
		}
		e, verr := validateClusterResult(&res, key)
		if verr != nil {
			s.log.Warn("discarding invalid peer result", "peer", hop.Addr, "err", verr)
			continue
		}
		rec.Add("cluster", "remote result "+a[:12], start, end)
		rec.Splice(hop.Addr, res.Trace, start, end)
		s.observeRemoteSpan("remote_result", start)
		s.cacheHits.Inc()
		s.remoteHits.Inc()
		s.touchKey(key)
		if s.persist != nil {
			_ = s.persist.put(e)
		}
		resp := persistedResponse(key, e)
		resp.Trace = rec.Snapshot()
		return submission{resp: resp, code: http.StatusOK, report: &e.Report, cross: e.Cross,
			outcome: querylog.OutcomeCluster, peer: hop.Addr}, true
	}
	return submission{}, false
}

// remoteCell tries to execute one matrix cell on the live peer that owns its
// cache key, so repeated matrices anywhere in the cluster land on the same
// node's cache and cold cells compute where the placement says the data
// should live. ok=false means the cell should run locally: this node is the
// best live owner, or every better-ranked peer failed (degrade-to-local —
// the local submission path then pulls whatever datasets are missing).
// Routing never fails a submit.
func (s *Server) remoteCell(idA, idB, tenantName string) (compare.SubmitOutcome, bool) {
	key := crossKey(idA, idB)
	rec := trace.NewRecorder()
	for _, hop := range s.cluster.Ranked(key) {
		if hop.Peer == nil {
			return compare.SubmitOutcome{}, false // we own the cell
		}
		ctx, cancel := context.WithTimeout(tenant.WithContext(
			trace.WithContext(context.Background(), rec.Context()), tenantName), clusterCompareTimeout)
		start := time.Now()
		var res clusterResult
		err := s.cluster.PostJSON(ctx, hop.Peer, "/internal/compare",
			clusterCompareRequest{DatasetA: idA, DatasetB: idB}, &res, maxClusterResultBytes)
		cancel()
		end := time.Now()
		if err != nil {
			s.log.Warn("routed cell failed on peer", "peer", hop.Addr, "err", err)
			continue
		}
		e, verr := validateClusterResult(&res, key)
		if verr != nil {
			s.log.Warn("discarding invalid peer cell result", "peer", hop.Addr, "err", verr)
			continue
		}
		if e.Cross != nil && (e.Cross.DatasetA != idA || e.Cross.DatasetB != idB) {
			s.log.Warn("peer cell result names wrong datasets", "peer", hop.Addr)
			continue
		}
		rec.Add("cluster", "remote cell "+idA[:12]+"/"+idB[:12], start, end)
		rec.Splice(hop.Addr, res.Trace, start, end)
		s.observeRemoteSpan("remote_compare", start)
		s.routedCells.Inc()
		s.touchKey(key)
		if s.persist != nil {
			_ = s.persist.put(e)
		}
		out := compare.SubmitOutcome{Cached: res.Cached, Report: &e.Report,
			Tiles: e.Report.Stats.TilesProcessed, Trace: rec.Snapshot()}
		if e.Cross != nil {
			out.Tiles = e.Cross.MatchedTiles
			out.UnmatchedA = e.Cross.UnmatchedA
			out.UnmatchedB = e.Cross.UnmatchedB
		}
		if s.qlog != nil {
			outcome := querylog.OutcomeComputed
			if res.Cached {
				outcome = querylog.OutcomeCluster
			}
			s.qlog.Append(querylog.Record{
				Kind:    querylog.KindCell,
				ID:      idA[:12] + "/" + idB[:12],
				TraceID: rec.Context().TraceIDString(),
				Datasets: []querylog.DatasetIO{
					{ID: idA}, {ID: idB},
				},
				DurationMs: float64(end.Sub(start).Microseconds()) / 1000,
				Outcome:    outcome,
				Peer:       hop.Addr,
			})
		}
		return out, true
	}
	// Every live peer ranked above this node failed. If the stable owner is
	// someone else, this is a degraded-mode computation worth counting.
	if s.cluster.Owner(key) != s.cluster.Self() {
		s.degradedLocal.Inc()
	}
	return compare.SubmitOutcome{}, false
}
