package server

// Multi-tenant QoS regression tests: the byte-budget admission guarantee
// (the store budget is never overshot — ingest evicts synchronously,
// degrades, or rejects), tenant quota edges on the ingest surface,
// interactive latency under a batch matrix flood, mixed-band load racing
// the retention sweeper, and the tenant dimension of the query log.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/pathology"
	"repro/internal/querylog"
	"repro/internal/retention"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/tenant"
)

// testTenants builds a two-tenant config for the quota tests.
func testTenants(t *testing.T, doc string) tenant.Config {
	t.Helper()
	c, err := tenant.ParseConfig([]byte(doc))
	if err != nil {
		t.Fatalf("tenant config: %v", err)
	}
	return c
}

// postJSONAs is postJSON with a tenant token attached.
func postJSONAs(t *testing.T, url, token string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// putDatasetAs is putDataset with a tenant token via the X-Sccg-Token header.
func putDatasetAs(t *testing.T, url, token string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("X-Sccg-Token", token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("PUT %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// admissionBody decodes a structured admission rejection.
func admissionBody(t *testing.T, raw []byte) (code, tenantName string) {
	t.Helper()
	var m map[string]string
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("admission body %q: %v", raw, err)
	}
	return m["code"], m["tenant"]
}

// waitUnpinned blocks until every job pin on the store is released — a just
// finished job reports done a moment before its source unpins.
func waitUnpinned(t *testing.T, st *store.Store) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for st.PinnedBytes() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("store pins never released (%d bytes pinned)", st.PinnedBytes())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func qosSpec(name string, seed int64, tiles int) pathology.DatasetSpec {
	spec := pathology.Representative()
	spec.Name = name
	spec.Seed = seed
	spec.Tiles = tiles
	return spec
}

// TestSpecIngestRespectsByteBudget is the PR's byte-budget regression: a
// spec submission whose dataset lands the store at the budget boundary must
// trigger a synchronous targeted eviction — never an overshoot — and a
// dataset that cannot fit at all must degrade to uncached execution with
// the store left untouched.
func TestSpecIngestRespectsByteBudget(t *testing.T) {
	specA := qosSpec("budget-a", 1, 2)
	specB := qosSpec("budget-b", 2, 2)
	sizeA := store.DatasetBytes(pathology.Generate(specA))
	sizeB := store.DatasetBytes(pathology.Generate(specB))
	// Room for either dataset alone, never both.
	budget := sizeA + sizeB/2

	st := testStoreAt(t, t.TempDir())
	srv, _, ts := newTestServer(t, sched.Config{Devices: 1},
		Options{Store: st, Retention: retention.Policy{MaxBytes: budget, SweepInterval: time.Hour}})

	resp, body := postJSON(t, ts.URL+"/jobs", JobRequest{Spec: &specA})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("spec A submit = %d: %s", resp.StatusCode, body)
	}
	var jrA JobResponse
	if err := json.Unmarshal(body, &jrA); err != nil {
		t.Fatal(err)
	}
	if jrA.Degraded {
		t.Fatal("spec A degraded with an empty store")
	}
	if jrA.Band != sched.BandIngest.String() {
		t.Fatalf("spec job band = %q, want ingest", jrA.Band)
	}
	if done := pollDone(t, ts.URL, jrA.ID); done.State != "done" {
		t.Fatalf("spec A ended %s: %s", done.State, done.Error)
	}
	if got := st.TotalBytes(); got != sizeA || got > budget {
		t.Fatalf("store holds %d bytes after A, want %d within budget %d", got, sizeA, budget)
	}
	waitUnpinned(t, st)

	// B displaces A: admission evicts synchronously before a byte lands.
	resp, body = postJSON(t, ts.URL+"/jobs", JobRequest{Spec: &specB})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("spec B submit = %d: %s", resp.StatusCode, body)
	}
	var jrB JobResponse
	if err := json.Unmarshal(body, &jrB); err != nil {
		t.Fatal(err)
	}
	if jrB.Degraded {
		t.Fatal("spec B degraded; want synchronous eviction of A to admit it")
	}
	if done := pollDone(t, ts.URL, jrB.ID); done.State != "done" {
		t.Fatalf("spec B ended %s: %s", done.State, done.Error)
	}
	if got := st.TotalBytes(); got != sizeB || got > budget {
		t.Fatalf("store holds %d bytes after B, want %d within budget %d", got, sizeB, budget)
	}
	if len(st.List()) != 1 {
		t.Fatalf("store lists %d datasets, want only B after the targeted evict", len(st.List()))
	}
	waitUnpinned(t, st)

	// A dataset bigger than the whole budget can never be stored: the job
	// degrades to uncached execution and still answers correctly.
	specHuge := qosSpec("budget-huge", 3, 6)
	if huge := store.DatasetBytes(pathology.Generate(specHuge)); huge <= budget {
		t.Fatalf("test setup: huge spec is %d bytes, want > budget %d", huge, budget)
	}
	resp, body = postJSON(t, ts.URL+"/jobs", JobRequest{Spec: &specHuge})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("huge spec submit = %d: %s", resp.StatusCode, body)
	}
	var jrH JobResponse
	if err := json.Unmarshal(body, &jrH); err != nil {
		t.Fatal(err)
	}
	if !jrH.Degraded {
		t.Fatal("over-budget spec not flagged degraded")
	}
	done := pollDone(t, ts.URL, jrH.ID)
	if done.State != "done" || done.Report == nil {
		t.Fatalf("degraded job ended %s with report %v", done.State, done.Report)
	}
	if got := st.TotalBytes(); got != sizeB {
		t.Fatalf("degraded ingest touched the store: %d bytes, want %d", got, sizeB)
	}

	var metricsBuf bytes.Buffer
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBuf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"sccgd_qos_degraded_uncached_total 1",
		`sccgd_admission_rejected_total{reason="store_full"}`,
	} {
		if !strings.Contains(metricsBuf.String(), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	_ = srv
}

// TestPutDatasetTenantQuotaEdges drives the tenant byte and dataset-count
// quotas at their exact boundaries over PUT /datasets, and checks deletion
// (dataset and tenant) releases the charge.
func TestPutDatasetTenantQuotaEdges(t *testing.T) {
	d1 := pathology.Generate(qosSpec("quota-1", 11, 1))
	d2 := pathology.Generate(qosSpec("quota-2", 12, 1))
	d3 := pathology.Generate(qosSpec("quota-3", 13, 1))
	size1, size2 := store.DatasetBytes(d1), store.DatasetBytes(d2)

	cfg := testTenants(t, fmt.Sprintf(`{
		"tenants": [
			{"name": "acme", "token": "tok-acme", "max_bytes": %d},
			{"name": "globex", "token": "tok-globex", "max_datasets": 1}
		]
	}`, size1+size2-1))
	st := testStoreAt(t, t.TempDir())
	srv, _, ts := newTestServer(t, sched.Config{Devices: 1}, Options{Store: st, Tenants: cfg})

	// First ingest fits (and may sit exactly at the boundary).
	resp, body := putDatasetAs(t, ts.URL+"/datasets?name=q1", "tok-acme", datasetPayload(t, d1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("acme ingest 1 = %d: %s", resp.StatusCode, body)
	}
	var man1 DatasetResponse
	if err := json.Unmarshal(body, &man1); err != nil {
		t.Fatal(err)
	}
	// The second crosses the byte quota by exactly one byte: structured 413.
	resp, body = putDatasetAs(t, ts.URL+"/datasets?name=q2", "tok-acme", datasetPayload(t, d2))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("acme ingest over quota = %d: %s", resp.StatusCode, body)
	}
	if code, who := admissionBody(t, body); code != "tenant_bytes" || who != "acme" {
		t.Fatalf("rejection = code %q tenant %q, want tenant_bytes/acme", code, who)
	}
	// Anonymous traffic is not bounded by acme's quota.
	if resp, body := putDataset(t, ts.URL+"/datasets?name=anon", datasetPayload(t, d2)); resp.StatusCode != http.StatusOK {
		t.Fatalf("anonymous ingest = %d: %s", resp.StatusCode, body)
	}
	// Deleting the charged dataset releases the quota.
	dresp, draw := doRequest(t, http.MethodDelete, ts.URL+"/datasets/"+man1.ID)
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete = %d: %s", dresp.StatusCode, draw)
	}
	resp, body = putDatasetAs(t, ts.URL+"/datasets?name=q2", "tok-acme", datasetPayload(t, d2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("acme ingest after delete = %d: %s", resp.StatusCode, body)
	}

	// Dataset-count quota: the second dataset rejects regardless of size.
	resp, body = putDatasetAs(t, ts.URL+"/datasets?name=g1", "tok-globex", datasetPayload(t, d1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("globex ingest 1 = %d: %s", resp.StatusCode, body)
	}
	resp, body = putDatasetAs(t, ts.URL+"/datasets?name=g2", "tok-globex", datasetPayload(t, d3))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("globex ingest 2 = %d: %s", resp.StatusCode, body)
	}
	if code, who := admissionBody(t, body); code != "tenant_datasets" || who != "globex" {
		t.Fatalf("rejection = code %q tenant %q, want tenant_datasets/globex", code, who)
	}
	// Tenant deletion releases everything it held.
	srv.tusage.DropTenant("globex")
	if resp, body := putDatasetAs(t, ts.URL+"/datasets?name=g2", "tok-globex", datasetPayload(t, d3)); resp.StatusCode != http.StatusOK {
		t.Fatalf("globex ingest after DropTenant = %d: %s", resp.StatusCode, body)
	}
}

// TestInteractiveNotStarvedByMatrix is the starvation regression: a 6-way
// matrix floods every general slot with batch cells, and a concurrent
// interactive job must still start within a bounded queue wait (the
// reserved slot exists exactly for this), visible in both the queue-wait
// histogram and the job's own trace.
func TestInteractiveNotStarvedByMatrix(t *testing.T) {
	reg := metrics.NewRegistry()
	st := testStoreAt(t, t.TempDir())
	var ids []string
	for seed := int64(1); seed <= 6; seed++ {
		ids = append(ids, ingestSpec(t, st, "flood", seed, 1).ID)
	}
	probe := ingestSpec(t, st, "probe", 99, 1)
	_, _, ts := newTestServer(t, sched.Config{Devices: 2, Registry: reg},
		Options{Store: st, Registry: reg})

	resp, body := postJSON(t, ts.URL+"/matrix", MatrixRequest{Datasets: ids, Name: "flood"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("matrix submit = %d: %s", resp.StatusCode, body)
	}
	var mst struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(body, &mst); err != nil {
		t.Fatal(err)
	}

	// Submit the interactive probe while the batch cells saturate the pool.
	resp, body = postJSON(t, ts.URL+"/jobs", JobRequest{DatasetID: probe.ID})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("probe submit = %d: %s", resp.StatusCode, body)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	if jr.Band != sched.BandInteractive.String() {
		t.Fatalf("probe band = %q, want interactive", jr.Band)
	}
	done := pollDone(t, ts.URL, jr.ID)
	if done.State != "done" {
		t.Fatalf("probe ended %s: %s", done.State, done.Error)
	}
	if done.Started == nil {
		t.Fatal("done probe has no start time")
	}
	// Bounded queue wait: the 15 batch cells each take tens of milliseconds
	// on the single general slot; the probe must not have waited out that
	// backlog. 5s is far above any healthy wait and far below the flood.
	if wait := done.Started.Sub(done.Submitted); wait > 5*time.Second {
		t.Fatalf("interactive queue wait = %v under batch flood, want bounded", wait)
	}
	if done.Trace == nil {
		t.Fatal("probe has no trace")
	}
	foundQueue := false
	for _, sp := range done.Trace.Spans {
		if sp.Name == "queue" && sp.Detail == "interactive" {
			foundQueue = true
			if sp.DurationMs > 5000 {
				t.Fatalf("trace queue span = %.1fms, want bounded", sp.DurationMs)
			}
		}
	}
	if !foundQueue {
		t.Fatalf("probe trace has no interactive queue span: %+v", done.Trace.Spans)
	}

	// The per-band histogram observed the wait.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(buf.String(), `sccgd_job_queue_wait_seconds_count{band="interactive"}`) {
		t.Error(`metrics missing sccgd_job_queue_wait_seconds{band="interactive"} series`)
	}

	// Drain the matrix so Close doesn't race the flood.
	deadline := time.Now().Add(2 * time.Minute)
	for mst.State == "" || mst.State == "running" {
		if time.Now().After(deadline) {
			t.Fatalf("matrix stuck: %+v", mst)
		}
		time.Sleep(10 * time.Millisecond)
		getJSON(t, ts.URL+"/matrix/"+mst.ID, &mst)
	}
}

// TestQoSMixedBandSweeperContention exercises mixed-band submissions racing
// on-demand retention sweeps over a small store — the race-detector target
// for the QoS paths (run under -race in CI).
func TestQoSMixedBandSweeperContention(t *testing.T) {
	specSeed := qosSpec("contend-0", 40, 1)
	size := store.DatasetBytes(pathology.Generate(specSeed))
	st := testStoreAt(t, t.TempDir())
	_, _, ts := newTestServer(t, sched.Config{Devices: 2},
		Options{Store: st, Retention: retention.Policy{MaxBytes: 3 * size, SweepInterval: time.Hour}})

	stop := make(chan struct{})
	var sweeps sync.WaitGroup
	sweeps.Add(1)
	go func() {
		defer sweeps.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, _ := postJSON(t, ts.URL+"/gc", struct{}{})
			if resp.StatusCode != http.StatusOK {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	var mu sync.Mutex
	var jobIDs []string
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := qosSpec(fmt.Sprintf("contend-%d", i%3), int64(41+i%3), 1)
			req := JobRequest{Spec: &spec}
			if i%2 == 1 {
				req.Band = sched.BandBatch.String()
			}
			resp, body := postJSON(t, ts.URL+"/jobs", req)
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
				t.Errorf("submit %d = %d: %s", i, resp.StatusCode, body)
				return
			}
			var jr JobResponse
			if json.Unmarshal(body, &jr) == nil && jr.ID != "" && !jr.Cached {
				mu.Lock()
				jobIDs = append(jobIDs, jr.ID)
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	for _, id := range jobIDs {
		if done := pollDone(t, ts.URL, id); done.State == "failed" {
			t.Errorf("job %s failed under sweeper contention: %s", id, done.Error)
		}
	}
	close(stop)
	sweeps.Wait()
	if got := st.TotalBytes(); got > 3*size {
		t.Fatalf("store overshot the budget under contention: %d > %d", got, 3*size)
	}
}

// TestQuerylogTenantFilter checks the tenant dimension end to end: records
// carry the resolved tenant and GET /querylog?tenant= filters on it.
func TestQuerylogTenantFilter(t *testing.T) {
	cfg := testTenants(t, `{"tenants": [{"name": "acme", "token": "tok-acme"}]}`)
	st := testStoreAt(t, t.TempDir())
	man := ingestSpec(t, st, "qlog", 7, 1)
	_, _, ts := newTestServer(t, sched.Config{Devices: 1}, Options{Store: st, Tenants: cfg})

	resp, body := postJSONAs(t, ts.URL+"/jobs", "tok-acme", JobRequest{DatasetID: man.ID})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("acme submit = %d: %s", resp.StatusCode, body)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	if jr.Tenant != "acme" {
		t.Fatalf("submit response tenant = %q, want acme", jr.Tenant)
	}
	pollDone(t, ts.URL, jr.ID)
	// Same content as the default tenant: a cache hit, logged under default.
	if resp, body := postJSON(t, ts.URL+"/jobs", JobRequest{DatasetID: man.ID}); resp.StatusCode != http.StatusOK {
		t.Fatalf("default repeat = %d: %s", resp.StatusCode, body)
	}

	type qlogResponse struct {
		Records []querylog.Record `json:"records"`
	}
	var acmeOnly qlogResponse
	deadline := time.Now().Add(10 * time.Second)
	for {
		getJSON(t, ts.URL+"/querylog?tenant=acme&kind=job", &acmeOnly)
		if len(acmeOnly.Records) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no acme job records appeared in the query log")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, rec := range acmeOnly.Records {
		if rec.Tenant != "acme" {
			t.Fatalf("tenant=acme filter returned record for %q", rec.Tenant)
		}
		if rec.Band == "" {
			t.Fatalf("job record has no band: %+v", rec)
		}
	}
	var all qlogResponse
	getJSON(t, ts.URL+"/querylog?kind=job", &all)
	defaultSeen := false
	for _, rec := range all.Records {
		if rec.Tenant == "default" {
			defaultSeen = true
		}
	}
	if !defaultSeen {
		t.Fatalf("unfiltered log lost the default tenant's records: %+v", all.Records)
	}
	if len(all.Records) <= len(acmeOnly.Records) {
		t.Fatalf("filter removed nothing: %d total vs %d acme", len(all.Records), len(acmeOnly.Records))
	}
}
