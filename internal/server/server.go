// Package server exposes the sched job scheduler over HTTP: the API surface
// of the sccgd daemon. It provides job submission and polling, a synchronous
// small-comparison endpoint, health and metrics endpoints, and an LRU result
// cache keyed by dataset-spec hash so repeated cross-comparisons of the same
// input are answered without recomputation (and without further GPU
// launches).
//
//	POST   /jobs                    submit a cross-comparison job
//	GET    /jobs                    list all jobs
//	GET    /jobs/{id}               poll one job, report included when done
//	DELETE /jobs/{id}               cancel a queued or running job
//	PUT    /datasets                ingest a dataset into the store (streaming)
//	GET    /datasets                list stored datasets
//	GET    /datasets/{id}           stat one stored dataset
//	GET    /datasets/{id}/tiles/{n} read one stored tile's polygon text
//	DELETE /datasets/{id}           remove a stored dataset
//	POST   /matrix                  start a K-way similarity matrix run
//	GET    /matrix                  list matrix runs
//	GET    /matrix/{id}             poll one matrix run
//	GET    /matrix/{id}/cells/{i}/{j}  read one cell; ?exact=1 upgrades an elided cell
//	DELETE /matrix/{id}             cancel a matrix run
//	POST   /compare                 synchronous compare of two small polygon sets
//	POST   /gc                      run one retention sweep now
//	DELETE /cache                   empty the result cache (LRU + persisted)
//	GET    /metrics                 counters and gauges in Prometheus text format
//	GET    /healthz                 liveness probe
//
// When a store is configured, the result cache keys on dataset *content*
// hashes rather than request-spec hashes: a generated spec/corpus job is
// ingested into the store on first materialization and its cache entry
// re-keyed to the content ID, so a later job submitted by dataset_id against
// the very same polygons hits the same entry — and the ID's content
// addressing makes the hit exact by construction. Completed cache-keyed
// reports are additionally persisted as JSON beside the store's manifests
// and reloaded on boot, so a restarted daemon answers repeats without
// recompute (see persist.go).
//
// Cross-dataset jobs ({"dataset_a", "dataset_b"}) compare dataset_a's set-A
// polygons against dataset_b's set-B polygons over the tile keys the two
// datasets share; tiles present on only one side are reported in the job's
// "cross" block. K-way matrix runs (POST /matrix) fan all pairwise cells
// out through the same cache-aware submission path (see matrix.go).
//
// In clustered mode (Options.Cluster) the server additionally serves the
// peer-to-peer surface under /internal/ — dataset manifest/segment export,
// cache probes, and remote cell execution — and the submission path gains
// peer-pull of missing datasets plus a cluster-wide cache read-through
// layer (see cluster.go).
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/compare"
	"repro/internal/metrics"
	"repro/internal/pathology"
	"repro/internal/pipeline"
	"repro/internal/querylog"
	"repro/internal/retention"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/tenant"
	"repro/internal/trace"
)

// CompareResult is the synchronous /compare outcome.
type CompareResult struct {
	Similarity   float64 `json:"similarity"`
	Intersecting int     `json:"intersecting"`
	Candidates   int     `json:"candidates"`
}

// CompareFunc cross-compares two raw polygon text files synchronously. The
// facade injects an implementation backed by the engine's error-returning
// MatchPairs/ComputeAreas variants; when nil, POST /compare answers 501.
type CompareFunc func(rawA, rawB []byte) (CompareResult, error)

// Options configures a Server.
type Options struct {
	// CacheSize is the LRU result-cache capacity in entries; 0 selects the
	// default of 128, negative disables caching.
	CacheSize int
	// Registry receives the server's counters; one is created when nil.
	Registry *metrics.Registry
	// Compare backs POST /compare; nil disables the endpoint.
	Compare CompareFunc
	// MaxBodyBytes caps request bodies; default 32 MiB.
	MaxBodyBytes int64
	// Store, when set, backs the /datasets endpoints, jobs by dataset_id,
	// cross-dataset jobs, matrix runs, and content-hash result caching
	// (including the persisted layer under <store>/cache). Nil disables
	// them (the endpoints answer 501).
	Store *store.Store
	// MatrixConcurrency bounds how many cells of one matrix run are in
	// flight at once; 0 selects the default of 4.
	MatrixConcurrency int
	// Retention bounds the store and the persisted result cache (see
	// internal/retention). When any bound is set, New starts a background
	// sweeper that Close stops; POST /gc sweeps on demand either way.
	// Ignored without a Store.
	Retention retention.Policy
	// Cluster, when set, joins this server to a peer cluster: the internal
	// peer endpoints are served, missing datasets are pulled peer-to-peer
	// before jobs run, the result cache gains a cluster-wide read-through
	// layer, and matrix cells route to their owner nodes. The caller owns
	// the node's lifecycle. Requires a Store.
	Cluster *cluster.Node
	// QuerylogMaxBytes bounds the persisted query/access log under
	// <store>/querylog (active + one rotated generation). 0 selects the
	// 64 MiB default; negative disables the log. Ignored without a Store.
	QuerylogMaxBytes int64
	// SlowQuery, when positive, emits a structured warning (with the job's
	// trace summary) for any job or cell slower than this threshold.
	SlowQuery time.Duration
	// Tenants is the multi-tenant QoS configuration: token-keyed tenant
	// identities with per-tenant byte, dataset, and queued-job quotas.
	// The zero value runs everything as one unlimited default tenant.
	Tenants tenant.Config
	// QueuePinAge is the pin-aware queue-aging threshold: when a retention
	// sweep cannot meet its byte budget because the only evictable datasets
	// are pinned by jobs that have sat QUEUED at least this long, those jobs
	// are canceled so their pins release and the sweep retries. 0 disables
	// aging (queued jobs hold pins indefinitely). Ignored without a Store.
	QueuePinAge time.Duration
	// Logger receives the server's structured log records; slog.Default()
	// when nil.
	Logger *slog.Logger
}

// Server ties the scheduler, store, cache, and metrics into an
// http.Handler.
type Server struct {
	sched *sched.Scheduler
	store *store.Store
	cache *resultCache
	// specIDs remembers which content-addressed dataset a generated
	// spec/corpus request materialized into, so repeats of the spec resolve
	// to the content-hash cache key without regenerating anything.
	specIDs *resultCache
	// persist is the durable content-hash → report layer beneath the LRU;
	// nil when no store is configured or caching is disabled.
	persist *reportDisk
	// matrix orchestrates K-way similarity matrix runs; nil without a store.
	matrix *compare.Manager
	// retention is the store GC policy engine; nil without a store. Its
	// background sweeper (started only when the policy bounds something) is
	// owned by this server: New starts it, Close stops it.
	retention *retention.Engine
	// cluster is the peer layer; nil on a single-node daemon (see cluster.go).
	cluster *cluster.Node
	// qlog is the persisted query/access log plus per-tile heat rollup; nil
	// without a store or when disabled (see querylog_http.go for the routes).
	qlog *querylog.Log
	// fed caches peer metric scrapes for /metrics?cluster=1 and the /healthz
	// rollup; nil on a single-node daemon (see federate.go).
	fed       *federator
	slowQuery time.Duration
	reg       *metrics.Registry
	log       *slog.Logger
	compare   CompareFunc
	maxBody   int64
	started   time.Time
	// tenants resolves tokens (public surface) and forwarded names (peer
	// surface) to quotas; the zero config is one unlimited default tenant.
	tenants tenant.Config
	// tusage attributes stored bytes/datasets to tenants, persisted beside
	// the manifests; nil without a store.
	tusage *tenant.Registry
	// pinAge is the pin-aware queue-aging threshold (Options.QueuePinAge).
	pinAge time.Duration

	// pinsMu guards jobPins: which datasets each live store-backed job holds
	// pins on, feeding the retention engine's pinned-pressure callback.
	pinsMu  sync.Mutex
	jobPins map[string]jobPin

	// crossMu guards crossByJob: per-job cross-dataset pairing metadata
	// (matched/unmatched tile counts) attached to job responses.
	crossMu    sync.Mutex
	crossByJob map[string]*CrossPayload

	// persistWG tracks in-flight persistWhenDone goroutines so shutdown
	// can drain them instead of losing half-written cache entries.
	// persistMu serializes spawning against Drain: once draining, no new
	// persister may Add from zero concurrently with Wait.
	persistMu       sync.Mutex
	persistDraining bool
	persistWG       sync.WaitGroup

	requests    *metrics.Counter
	submits     *metrics.Counter
	cacheHits   *metrics.Counter
	persistHits *metrics.Counter
	cacheMiss   *metrics.Counter
	compares    *metrics.Counter
	badReqs     *metrics.Counter
	ingests     *metrics.Counter
	ingestFails *metrics.Counter
	matrixRuns  *metrics.Counter
	cascades    *metrics.Counter
	agedOut     *metrics.Counter
	degradedUnc *metrics.Counter

	// Cluster counters; non-nil only when a cluster node is configured.
	remoteHits    *metrics.Counter
	routedCells   *metrics.Counter
	degradedLocal *metrics.Counter
}

// New creates a server over the scheduler.
func New(s *sched.Scheduler, opts Options) *Server {
	if opts.CacheSize == 0 {
		opts.CacheSize = 128
	}
	if opts.Registry == nil {
		opts.Registry = metrics.NewRegistry()
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 32 << 20
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	srv := &Server{
		sched:      s,
		store:      opts.Store,
		cache:      newResultCache(opts.CacheSize),
		specIDs:    newResultCache(1024),
		reg:        opts.Registry,
		log:        opts.Logger,
		compare:    opts.Compare,
		maxBody:    opts.MaxBodyBytes,
		started:    time.Now(),
		tenants:    opts.Tenants,
		pinAge:     opts.QueuePinAge,
		crossByJob: make(map[string]*CrossPayload),
		jobPins:    make(map[string]jobPin),

		requests:    opts.Registry.Counter("sccgd_http_requests_total"),
		submits:     opts.Registry.Counter("sccgd_jobs_submitted_total"),
		cacheHits:   opts.Registry.Counter("sccgd_cache_hits_total"),
		persistHits: opts.Registry.Counter("sccgd_cache_persisted_hits_total"),
		cacheMiss:   opts.Registry.Counter("sccgd_cache_misses_total"),
		compares:    opts.Registry.Counter("sccgd_compares_total"),
		badReqs:     opts.Registry.Counter("sccgd_bad_requests_total"),
		ingests:     opts.Registry.Counter("sccgd_datasets_ingested_total"),
		ingestFails: opts.Registry.Counter("sccgd_dataset_ingest_failures_total"),
		matrixRuns:  opts.Registry.Counter("sccgd_matrix_runs_total"),
		cascades:    opts.Registry.Counter("sccgd_cache_cascade_dropped_total"),
		agedOut:     opts.Registry.Counter("sccgd_qos_aged_out_total"),
		degradedUnc: opts.Registry.Counter("sccgd_qos_degraded_uncached_total"),
	}
	opts.Registry.GaugeFunc("sccgd_cache_entries", func() float64 { return float64(srv.cache.len()) })
	// Scheduler and group metrics render from one snapshot per scrape (a
	// gauge func per value would rebuild the snapshot for every line) and
	// merge into the registry's sorted, typed exposition.
	opts.Registry.OnScrape(func(e *metrics.Emitter) {
		st := srv.sched.Stats()
		e.Gauge("sccgd_jobs_queued", float64(st.Queued))
		e.Gauge("sccgd_jobs_running", float64(st.Running))
		e.Counter("sccgd_jobs_completed_total", float64(st.Completed))
		e.Counter("sccgd_jobs_failed_total", float64(st.Failed))
		e.Counter("sccgd_jobs_canceled_total", float64(st.Canceled))
		for _, d := range st.Devices {
			dev := strconv.Itoa(d.ID)
			e.Counter(metrics.Label("sccgd_device_launches_total", "device", dev), float64(d.Launches))
			e.Gauge(metrics.Label("sccgd_device_busy_seconds", "device", dev), d.BusySeconds)
			e.Counter(metrics.Label("sccgd_device_shards_total", "device", dev), float64(d.Shards))
		}
		// Per-group progress series are emitted only for live (non-terminal)
		// groups: a matrix run is distinguishable from ad-hoc jobs while it
		// runs, and finished groups stop occupying scrape cardinality.
		groups := srv.sched.Groups()
		active := 0
		for _, g := range groups {
			if g.Terminal {
				continue
			}
			active++
			e.Gauge(metrics.Label("sccgd_group_members", "group", g.ID), float64(g.Members))
			e.Gauge(metrics.Label("sccgd_group_jobs_queued", "group", g.ID), float64(g.Queued))
			e.Gauge(metrics.Label("sccgd_group_jobs_running", "group", g.ID), float64(g.Running))
			e.Gauge(metrics.Label("sccgd_group_jobs_done", "group", g.ID), float64(g.Done))
			e.Gauge(metrics.Label("sccgd_group_jobs_failed", "group", g.ID), float64(g.Failed))
		}
		e.Gauge("sccgd_groups_active", float64(active))
		e.Counter("sccgd_groups_total", float64(len(groups)))
		// QoS series: per-band and per-tenant queue/run occupancy from the
		// same scheduler snapshot, plus per-tenant store attribution. Labels
		// are band names and configured tenant names — bounded cardinality,
		// federation-safe (no per-job or per-request values).
		for b := sched.Band(0); b < sched.NumBands; b++ {
			e.Gauge(metrics.Label("sccgd_band_jobs_queued", "band", b.String()), float64(st.Bands[b].Queued))
			e.Gauge(metrics.Label("sccgd_band_jobs_running", "band", b.String()), float64(st.Bands[b].Running))
		}
		for name, tc := range st.Tenants {
			e.Gauge(metrics.Label("sccgd_tenant_jobs_queued", "tenant", name), float64(tc.Queued))
			e.Gauge(metrics.Label("sccgd_tenant_jobs_running", "tenant", name), float64(tc.Running))
		}
		if srv.tusage != nil {
			for name, u := range srv.tusage.All() {
				e.Gauge(metrics.Label("sccgd_tenant_store_bytes", "tenant", name), float64(u.Bytes))
				e.Gauge(metrics.Label("sccgd_tenant_datasets", "tenant", name), float64(u.Datasets))
			}
		}
	})
	if opts.Cluster != nil && opts.Store != nil {
		srv.cluster = opts.Cluster
		srv.remoteHits = opts.Registry.Counter("sccgd_cluster_remote_cache_hits_total")
		srv.routedCells = opts.Registry.Counter("sccgd_cluster_cells_routed_total")
		srv.degradedLocal = opts.Registry.Counter("sccgd_cluster_degraded_local_total")
		srv.fed = newFederator(srv)
	}
	srv.slowQuery = opts.SlowQuery
	if srv.store != nil && opts.QuerylogMaxBytes >= 0 {
		ql, err := querylog.Open(filepath.Join(opts.Store.Dir(), "querylog"), opts.QuerylogMaxBytes)
		if err != nil {
			// A broken query log degrades observability only; the daemon runs.
			srv.log.Warn("query log disabled", "err", err)
		} else {
			srv.qlog = ql
			opts.Store.SetReadHook(ql.ObserveRead)
			opts.Registry.OnScrape(func(e *metrics.Emitter) {
				e.Counter("sccgd_querylog_records_total", float64(ql.Appended()))
				e.Counter("sccgd_querylog_write_errors_total", float64(ql.WriteErrors()))
			})
		}
	}
	if srv.store != nil {
		srv.store.SetMetrics(opts.Registry)
		// Tenant attribution persists beside the manifests so a restarted
		// daemon still knows whose bytes are whose.
		srv.tusage = tenant.NewRegistry(opts.Store.Dir())
		opts.Registry.GaugeFunc("sccgd_datasets", func() float64 { return float64(srv.store.Len()) })
		if opts.CacheSize > 0 {
			// The durable cache layer lives beside the manifests; corrupt
			// entries are skipped (and logged), never served.
			rd, skipped := openReportDisk(filepath.Join(srv.store.Dir(), "cache"), opts.Retention.CacheMaxEntries)
			for _, err := range skipped {
				srv.log.Warn("skipped persisted result", "err", err)
			}
			srv.persist = rd
			if rd != nil {
				opts.Registry.GaugeFunc("sccgd_cache_persisted_entries", func() float64 { return float64(rd.len()) })
				datasetsLive := func(key string) bool {
					for _, id := range keyDatasetIDs(key) {
						if _, ok := srv.store.Get(id); !ok {
							return false
						}
					}
					return true
				}
				// A restart must never resurrect reports for datasets that no
				// longer exist (a crash can land between a dataset delete and
				// its cache cascade): drop entries referencing unknown IDs.
				if dropped := rd.retain(datasetsLive); dropped > 0 {
					srv.log.Info("dropped persisted results referencing deleted datasets", "count", dropped)
				}
				// And gate writes the same way: a persister whose job outlived
				// its dataset (the pin releases at the terminal state, before
				// the report persists) must not re-insert behind the cascade.
				rd.keep = datasetsLive
				// Only now enforce the entry cap, so orphans never held cap
				// slots at the expense of live entries.
				if opts.Retention.CacheMaxEntries > 0 {
					rd.EnforceLimit(opts.Retention.CacheMaxEntries)
				}
			}
		}
		// Every delete path — HTTP, forced, retention sweep — cascades
		// through the result layers via the store's hook.
		srv.store.SetDeleteHook(srv.dropDatasetResults)
		var cacheForGC retention.Cache
		if srv.persist != nil {
			cacheForGC = srv.persist
		}
		srv.retention = retention.New(retention.Config{
			Store:    srv.store,
			Cache:    cacheForGC,
			Policy:   opts.Retention,
			Registry: opts.Registry,
			// Pin-aware queue aging: when the sweep is blocked on pins held
			// only by stale queued jobs, cancel them and sweep again.
			PinnedPressure: srv.pinnedPressure,
			Log: func(format string, args ...any) {
				srv.log.Info(fmt.Sprintf(format, args...), "subsystem", "retention")
			},
		})
		srv.retention.Start() // no-op unless the policy bounds something
		srv.matrix = compare.NewManager(compare.ManagerConfig{
			Scheduler: s,
			Submit:    srv.submitCell,
			// The planner's bound reads manifests only; the optional
			// estimate decodes a small tile sample. Neither pins — the run
			// holds pins on all its datasets for its whole lifetime.
			Bound: func(idA, idB string) (compare.CellBound, error) {
				return compare.BoundPair(srv.store, idA, idB)
			},
			Estimate: func(idA, idB string) (compare.CellEstimate, error) {
				return compare.EstimatePair(srv.store, idA, idB)
			},
			Concurrency: opts.MatrixConcurrency,
		})
	}
	return srv
}

// Close stops background orchestration (matrix runs, the retention
// sweeper); it does not close the scheduler, which the caller owns. Call
// before closing the scheduler.
func (s *Server) Close() {
	if s.matrix != nil {
		s.matrix.Close()
	}
	if s.retention != nil {
		s.retention.Close()
	}
}

// Drain blocks until background persist writes have finished; submissions
// that complete after Drain starts skip persisting. Persisters wait for
// their job's terminal state, so call this only after the scheduler has
// closed (which finalizes every job) — otherwise a persister waiting on a
// queued job would block Drain indefinitely.
func (s *Server) Drain() {
	s.persistMu.Lock()
	s.persistDraining = true
	s.persistMu.Unlock()
	s.persistWG.Wait()
	// Only after every in-flight recorder goroutine has appended its record:
	// Close flushes the heat rollup beside the log so a restarted daemon
	// answers /datasets/{id}/heat from history, not from zero.
	if err := s.qlog.Close(); err != nil {
		s.log.Warn("query log close", "err", err)
	}
}

// Registry returns the server's metrics registry.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Handler returns the HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		// The metric's route label is the mux pattern (bounded cardinality),
		// not the raw URL path.
		mux.HandleFunc(pattern, s.instrument(pattern, h))
	}
	handle("POST /jobs", s.handleSubmit)
	handle("GET /jobs", s.handleList)
	handle("GET /jobs/{id}", s.handleJob)
	handle("GET /jobs/{id}/trace", s.handleJobTrace)
	handle("DELETE /jobs/{id}", s.handleCancel)
	handle("PUT /datasets", s.handlePutDataset)
	handle("GET /datasets", s.handleListDatasets)
	handle("GET /datasets/{id}", s.handleStatDataset)
	handle("GET /datasets/{id}/tiles/{n}", s.handleReadTile)
	handle("DELETE /datasets/{id}", s.handleDeleteDataset)
	handle("POST /matrix", s.handleStartMatrix)
	handle("GET /matrix", s.handleListMatrices)
	handle("GET /matrix/{id}", s.handleGetMatrix)
	handle("GET /matrix/{id}/cells/{i}/{j}", s.handleMatrixCell)
	handle("DELETE /matrix/{id}", s.handleCancelMatrix)
	handle("POST /compare", s.handleCompare)
	handle("POST /gc", s.handleGC)
	handle("DELETE /cache", s.handleClearCache)
	handle("GET /querylog", s.handleQuerylog)
	handle("GET /datasets/{id}/heat", s.handleDatasetHeat)
	handle("GET /metrics", s.handleMetrics)
	handle("GET /healthz", s.handleHealthz)
	if s.cluster != nil {
		// The peer-to-peer surface (see cluster.go). Served only in
		// clustered mode; a single-node daemon exposes no internal routes.
		handle("GET /internal/datasets/{id}/manifest", s.handleClusterManifest)
		handle("GET /internal/datasets/{id}/segment", s.handleClusterSegment)
		handle("GET /internal/results/{a}/{b}", s.handleClusterResult)
		handle("POST /internal/compare", s.handleClusterCompare)
		handle("GET /internal/metrics", s.handleInternalMetrics)
	}
	return mux
}

// statusWriter captures the response status for the request-duration metric.
// It forwards Flush so streaming handlers (the matrix progress stream) keep
// working through the instrumentation wrap, and exposes Unwrap for
// http.ResponseController, which handles any interface the wrapper doesn't.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer when it supports flushing. The
// embedded ResponseWriter alone would hide the http.Flusher implementation of
// the real connection, silently buffering streamed responses.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap returns the wrapped writer so http.ResponseController can reach
// interfaces statusWriter doesn't forward itself.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps a handler with request accounting: the total-requests
// counter and a per-route, per-status duration histogram. Histogram series
// are created lazily on first (route, status) occurrence, so an idle server
// exposes no empty series.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Inc()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sw, r)
		s.reg.Histogram(metrics.Label("sccgd_http_request_duration_seconds",
			"route", route, "status", strconv.Itoa(sw.status))).ObserveSince(start)
	}
}

// TaskPayload is one tile's raw polygon files; RawA/RawB are base64 in JSON.
type TaskPayload struct {
	Image string `json:"image,omitempty"`
	Tile  int    `json:"tile"`
	RawA  []byte `json:"raw_a"`
	RawB  []byte `json:"raw_b"`
}

// JobRequest submits one cross-comparison job. Exactly one input form must
// be set: Corpus (a named corpus dataset), Spec (a full synthetic dataset
// spec), Tasks (raw tile files), DatasetID (a dataset previously ingested
// into the store via PUT /datasets), or the DatasetA/DatasetB pair (a
// cross-dataset comparison of two stored datasets: A's set-A polygons
// against B's set-B polygons over their shared tile keys).
type JobRequest struct {
	Corpus    string                 `json:"corpus,omitempty"`
	Spec      *pathology.DatasetSpec `json:"spec,omitempty"`
	Tasks     []TaskPayload          `json:"tasks,omitempty"`
	DatasetID string                 `json:"dataset_id,omitempty"`
	DatasetA  string                 `json:"dataset_a,omitempty"`
	DatasetB  string                 `json:"dataset_b,omitempty"`
	NoCache   bool                   `json:"no_cache,omitempty"`
	// Band optionally overrides the job's QoS band ("interactive", "batch",
	// "ingest"); unset picks by request form (spec/corpus → ingest, the
	// rest → interactive).
	Band string `json:"band,omitempty"`
}

// CrossPayload describes a cross-dataset job's tile pairing: how many tile
// keys matched and what fell outside the intersection — unmatched tiles are
// reported, never silently dropped.
type CrossPayload struct {
	DatasetA     string `json:"dataset_a"`
	DatasetB     string `json:"dataset_b"`
	MatchedTiles int    `json:"matched_tiles"`
	UnmatchedA   int    `json:"unmatched_a"`
	UnmatchedB   int    `json:"unmatched_b"`
	// Samples carry at most crossSampleKeys unmatched keys per side, enough
	// to locate a divergence without ballooning job responses.
	UnmatchedASample []compare.TileKey `json:"unmatched_a_sample,omitempty"`
	UnmatchedBSample []compare.TileKey `json:"unmatched_b_sample,omitempty"`
}

const crossSampleKeys = 8

// crossPayload summarizes a tile match for the wire.
func crossPayload(idA, idB string, m compare.Match) *CrossPayload {
	cp := &CrossPayload{
		DatasetA:     idA,
		DatasetB:     idB,
		MatchedTiles: len(m.Pairs),
		UnmatchedA:   len(m.OnlyA),
		UnmatchedB:   len(m.OnlyB),
	}
	cp.UnmatchedASample = append(cp.UnmatchedASample, m.OnlyA[:min(len(m.OnlyA), crossSampleKeys)]...)
	cp.UnmatchedBSample = append(cp.UnmatchedBSample, m.OnlyB[:min(len(m.OnlyB), crossSampleKeys)]...)
	return cp
}

// ExecutorPayload is the JSON projection of one hybrid-aggregator
// executor's accounting.
type ExecutorPayload struct {
	ID          string  `json:"id"`
	Kind        string  `json:"kind"`
	Batches     int64   `json:"batches"`
	Pairs       int64   `json:"pairs"`
	BusyMillis  float64 `json:"busy_millis"`
	PairsPerSec float64 `json:"pairs_per_sec"`
}

// ReportPayload is the JSON projection of a merged pipeline result.
type ReportPayload struct {
	Similarity     float64           `json:"similarity"`
	Intersecting   int               `json:"intersecting"`
	Candidates     int               `json:"candidates"`
	Tiles          int               `json:"tiles"`
	PairsOnGPU     int               `json:"pairs_on_gpu"`
	PairsOnCPU     int               `json:"pairs_on_cpu"`
	TasksToCPU     int64             `json:"tasks_migrated_to_cpu"`
	TasksToGPU     int64             `json:"tasks_migrated_to_gpu"`
	KernelLaunches int64             `json:"kernel_launches"`
	DeviceSeconds  float64           `json:"device_seconds"`
	WallMillis     float64           `json:"wall_millis"`
	Executors      []ExecutorPayload `json:"executors,omitempty"`
}

func reportPayload(r pipeline.Result) *ReportPayload {
	p := &ReportPayload{
		Similarity:     r.Similarity,
		Intersecting:   r.Intersecting,
		Candidates:     r.Candidates,
		Tiles:          r.Stats.TilesProcessed,
		PairsOnGPU:     r.Stats.PairsOnGPU,
		PairsOnCPU:     r.Stats.PairsOnCPU,
		TasksToCPU:     r.Stats.TasksToCPU,
		TasksToGPU:     r.Stats.TasksToGPU,
		KernelLaunches: r.Stats.KernelLaunches,
		DeviceSeconds:  r.Stats.DeviceSeconds,
		WallMillis:     float64(r.Stats.WallTime.Microseconds()) / 1000,
	}
	for _, e := range r.Stats.Executors {
		p.Executors = append(p.Executors, ExecutorPayload{
			ID:          e.ID,
			Kind:        e.Kind,
			Batches:     e.Batches,
			Pairs:       e.Pairs,
			BusyMillis:  float64(e.Busy.Microseconds()) / 1000,
			PairsPerSec: e.PairsPerSec,
		})
	}
	return p
}

// JobResponse is the wire form of a job snapshot.
type JobResponse struct {
	ID        string         `json:"id"`
	Name      string         `json:"name,omitempty"`
	State     string         `json:"state"`
	Cached    bool           `json:"cached,omitempty"`
	Error     string         `json:"error,omitempty"`
	Submitted time.Time      `json:"submitted"`
	Started   *time.Time     `json:"started,omitempty"`
	Finished  *time.Time     `json:"finished,omitempty"`
	Tiles     int            `json:"tiles"`
	Shards    int            `json:"shards,omitempty"`
	DeviceIDs []int          `json:"device_ids,omitempty"`
	Cross     *CrossPayload  `json:"cross,omitempty"`
	Report    *ReportPayload `json:"report,omitempty"`
	Trace     *trace.Trace   `json:"trace,omitempty"`
	// Band and Tenant are the job's QoS placement.
	Band   string `json:"band,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	// Degraded marks a spec/corpus job that ran uncached because admission
	// control could not fit its dataset in the store (see qos.go).
	Degraded bool `json:"degraded,omitempty"`
}

// jobResponse projects a job snapshot to the wire, attaching cross-dataset
// pairing metadata when the job is a cross comparison.
func (s *Server) jobResponse(st sched.JobStatus, cached bool) JobResponse {
	resp := baseJobResponse(st, cached)
	s.crossMu.Lock()
	resp.Cross = s.crossByJob[st.ID]
	s.crossMu.Unlock()
	return resp
}

func baseJobResponse(st sched.JobStatus, cached bool) JobResponse {
	resp := JobResponse{
		ID:        st.ID,
		Name:      st.Name,
		State:     st.State.String(),
		Cached:    cached,
		Error:     st.Error,
		Submitted: st.Submitted,
		Tiles:     st.Tiles,
		Shards:    st.Shards,
		DeviceIDs: st.DeviceIDs,
	}
	resp.Band = st.Band.String()
	resp.Tenant = st.Tenant
	if !st.Started.IsZero() {
		t := st.Started
		resp.Started = &t
	}
	if !st.Finished.IsZero() {
		t := st.Finished
		resp.Finished = &t
	}
	if st.State == sched.Done {
		resp.Report = reportPayload(st.Report)
	}
	resp.Trace = st.Trace
	return resp
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := s.decode(w, r, &req); err != nil {
		return
	}
	who := s.resolveTenant(r)
	sub, err := s.submitRequestAs(req, who, trace.Context{})
	if err != nil {
		var aerr *admissionError
		if errors.As(err, &aerr) {
			s.failAdmission(w, who, aerr)
			return
		}
		if errors.Is(err, sched.ErrTenantQueue) {
			s.admissionRejected("tenant_queue")
			w.Header().Set("Retry-After", "5")
			writeJSON(w, sub.code, map[string]string{
				"error": err.Error(), "code": "tenant_queue", "tenant": who.Name,
			})
			return
		}
		s.fail(w, sub.code, err)
		return
	}
	writeJSON(w, sub.code, sub.resp)
}

// submission is the outcome of one job-submission request, shared by the
// HTTP handler and the matrix orchestrator's cell submitter.
type submission struct {
	resp JobResponse
	code int
	// jobID is the live scheduler job behind resp; empty when a persisted
	// report answered without one.
	jobID string
	// report is the full pipeline result for persisted-cache answers.
	report *pipeline.Result
	// cross is the pairing metadata attached to resp, when any.
	cross *CrossPayload
	// outcome is the querylog classification of how this submission was
	// answered (querylog.Outcome*); peer is set for cluster-cache answers.
	outcome string
	peer    string
}

// submitRequest resolves a job request through the cache layers or submits
// it to the scheduler as the default tenant. On error, submission.code
// carries the HTTP status.
func (s *Server) submitRequest(req JobRequest) (submission, error) {
	return s.submitRequestAs(req, s.tenants.Resolve(""), trace.Context{})
}

// submitRequestAs is submitRequest under an explicit tenant identity and an
// incoming trace context: when parent is non-zero (a peer forwarded its
// traceparent), the job's recorder joins that trace so the spans splice
// back into the caller's picture. The tenant rides the whole lifecycle —
// scheduler accounting, query-log records, cluster call headers.
func (s *Server) submitRequestAs(req JobRequest, who tenant.Quota, parent trace.Context) (submission, error) {
	reqStart := time.Now()
	if err := checkRequest(req); err != nil {
		return submission{code: http.StatusBadRequest}, err
	}
	band, err := bandFor(req)
	if err != nil {
		return submission{code: http.StatusBadRequest}, err
	}
	if (req.DatasetID != "" || req.DatasetA != "") && s.store == nil {
		return submission{code: http.StatusNotImplemented},
			errors.New("no dataset store configured (start sccgd with -data-dir)")
	}

	// Look the request up before materializing it: a cache hit must not pay
	// for dataset generation or store reads. cacheKey resolves to the
	// dataset content hash whenever it can.
	key := ""
	if !req.NoCache {
		key = s.cacheKey(req)
		if sub, ok := s.resolveCached(key, who.Name, parent); ok {
			s.recordJobSub(req, sub, reqStart, who, band)
			return sub, nil
		}
		// The miss is counted only once the job is really submitted: the
		// re-key path below may still turn this request into a hit.
	}

	// The recorder starts here so the trace covers pre-scheduler time:
	// pinning, dataset generation, ingest, and store opens all land in the
	// materialize span (with pin sub-spans recorded inside). When a parent
	// context rode in, the recorder adopts its trace ID.
	rec := trace.NewRecorderFrom(parent)
	matStart := time.Now()
	mat, err := s.materializeRequest(rec, who, req)
	rec.Add("materialize", requestForm(req), matStart, time.Now())
	if err != nil {
		code := http.StatusUnprocessableEntity
		if errors.Is(err, store.ErrNotFound) {
			code = http.StatusNotFound
		}
		return submission{code: code}, err
	}
	if key != "" && mat.contentKey != "" && mat.contentKey != key {
		// Materialization pinned the content address (e.g. a spec was
		// ingested into the store): cache under it, so a later submission
		// of the same content by dataset_id hits this entry — and re-check
		// the cache, since this very content may already have a result
		// computed under another request form.
		key = mat.contentKey
		if sub, ok := s.resolveCached(key, who.Name, parent); ok {
			releaseSource(mat.src) // no job will own the pinned source
			s.recordJobSub(req, sub, reqStart, who, band)
			return sub, nil
		}
	}
	if key != "" {
		s.cacheMiss.Inc()
	}
	name, cross := mat.name, mat.cross
	id, err := s.sched.SubmitJob(mat.src, sched.JobOpts{
		Name: name, Band: band, Tenant: who.Name, Trace: rec,
	})
	if err != nil {
		releaseSource(mat.src)
		return submission{code: submitErrorCode(err)}, err
	}
	s.submits.Inc()
	s.trackJobPins(id, mat.pinned)
	s.log.Info("job submitted", "job_id", id, "name", name, "form", requestForm(req),
		"band", band.String(), "tenant", who.Name)
	if cross != nil {
		s.crossMu.Lock()
		s.crossByJob[id] = cross
		s.crossMu.Unlock()
	}
	if key != "" {
		s.cache.put(key, id)
	}
	// One completion watcher per computed job: it persists the report (when
	// cache-keyed), appends the query-log record, flags slow queries, and
	// drops the job's pin-tracking record. The draining check under the
	// mutex keeps the Add from racing Drain's Wait.
	if (key != "" && s.persist != nil) || s.qlog != nil || s.slowQuery > 0 || len(mat.pinned) > 0 {
		persistKey := key
		if s.persist == nil {
			persistKey = ""
		}
		s.persistMu.Lock()
		if !s.persistDraining {
			s.persistWG.Add(1)
			go func() {
				defer s.persistWG.Done()
				s.finishWhenDone(rec, persistKey, id, name, req, cross)
			}()
		}
		s.persistMu.Unlock()
	}
	st, _ := s.sched.Job(id)
	resp := s.jobResponse(st, false)
	resp.Degraded = mat.degraded
	return submission{resp: resp, code: http.StatusAccepted, jobID: id, cross: cross}, nil
}

// recordJobSub appends a query-log record for a cache-answered submission
// (computed jobs are recorded by their completion watcher instead).
func (s *Server) recordJobSub(req JobRequest, sub submission, start time.Time, who tenant.Quota, band sched.Band) {
	if s.qlog == nil || sub.outcome == "" {
		return
	}
	rec := querylog.Record{
		Kind:       querylog.KindJob,
		ID:         sub.resp.ID,
		TraceID:    traceIDOf(sub.resp.Trace),
		Tenant:     who.Name,
		Band:       band.String(),
		Datasets:   s.requestIO(req),
		DurationMs: float64(time.Since(start).Microseconds()) / 1000,
		Outcome:    sub.outcome,
		Peer:       sub.peer,
	}
	s.qlog.Append(rec)
}

// requestIO lists the datasets a request touches, with tile counts resolved
// from local manifests when available. Byte counts are left to the store's
// read hook (heat), which sees actual reads rather than request shapes.
func (s *Server) requestIO(req JobRequest) []querylog.DatasetIO {
	var ids []string
	switch {
	case req.DatasetA != "":
		ids = []string{req.DatasetA}
		if req.DatasetB != req.DatasetA {
			ids = append(ids, req.DatasetB)
		}
	case req.DatasetID != "":
		ids = []string{req.DatasetID}
	default:
		return nil
	}
	out := make([]querylog.DatasetIO, 0, len(ids))
	for _, id := range ids {
		io := querylog.DatasetIO{ID: id}
		if s.store != nil {
			if man, ok := s.store.Get(id); ok {
				io.Tiles = len(man.Tiles)
			}
		}
		out = append(out, io)
	}
	return out
}

// traceIDOf extracts the trace ID of a wire trace, "" when absent.
func traceIDOf(t *trace.Trace) string {
	if t == nil {
		return ""
	}
	return t.TraceID
}

// resolveCached answers a cache key from the live LRU first, then the
// persisted layer, then — in clustered mode — the cluster-wide read-through
// layer (owner peers' caches, see cluster.go). A hit is a use of the
// underlying datasets: their retention clocks advance, so repeatedly-hit
// content never TTL-expires out from under its own cache entry.
func (s *Server) resolveCached(key, tenantName string, parent trace.Context) (submission, bool) {
	if sub, ok := s.resolveLocalCached(key); ok {
		return sub, true
	}
	if s.cluster != nil {
		if sub, ok := s.remoteResult(key, tenantName, parent); ok {
			return sub, true
		}
	}
	return submission{}, false
}

// resolveLocalCached is resolveCached minus the cluster layer: this node's
// own live LRU and persisted reports.
func (s *Server) resolveLocalCached(key string) (submission, bool) {
	if resp, ok := s.cachedResponse(key); ok {
		s.cacheHits.Inc()
		s.touchKey(key)
		return submission{resp: resp, code: http.StatusOK, jobID: resp.ID, cross: resp.Cross,
			outcome: querylog.OutcomeCached}, true
	}
	if s.persist != nil {
		if e, ok := s.persist.get(key); ok {
			s.cacheHits.Inc()
			s.persistHits.Inc()
			s.touchKey(key)
			return submission{resp: persistedResponse(key, e), code: http.StatusOK, report: &e.Report, cross: e.Cross,
				outcome: querylog.OutcomePersisted}, true
		}
	}
	return submission{}, false
}

// touchKey advances the retention clock of every dataset a cache key
// references.
func (s *Server) touchKey(key string) {
	if s.store == nil {
		return
	}
	for _, id := range keyDatasetIDs(key) {
		s.store.Touch(id)
	}
}

// persistedResponse synthesizes a done job response from a persisted
// report. The ID is stable for the key but not pollable — the response
// already carries the full report.
func persistedResponse(key string, e *persistEntry) JobResponse {
	saved := e.Saved
	return JobResponse{
		ID:        "cached-" + entryFile(key)[:12],
		Name:      e.Name,
		State:     sched.Done.String(),
		Cached:    true,
		Submitted: saved,
		Finished:  &saved,
		Tiles:     e.Report.Stats.TilesProcessed,
		Cross:     e.Cross,
		Report:    reportPayload(e.Report),
	}
}

// finishWhenDone waits for a submitted job's terminal state and runs the
// completion bookkeeping: the durable-cache write for cache-keyed Done jobs
// (landing in the trace as a persist span — recorded after the scheduler
// froze the trace total, so it shows up in later trace reads without
// shifting the job's wall time), the query-log record, and the slow-query
// warning.
func (s *Server) finishWhenDone(rec *trace.Recorder, key, jobID, name string, req JobRequest, cross *CrossPayload) {
	st, err := s.sched.Wait(context.Background(), jobID)
	s.untrackJobPins(jobID)
	if err != nil {
		return
	}
	if key != "" && st.State == sched.Done {
		start := time.Now()
		e := &persistEntry{Key: key, Name: name, Cross: cross, Saved: time.Now().UTC(), Report: st.Report}
		perr := s.persist.put(e)
		rec.Add("persist", "", start, time.Now())
		if perr != nil {
			s.log.Warn("persist result failed", "job_id", jobID, "err", perr)
		}
	}
	outcome := querylog.OutcomeComputed
	if st.State != sched.Done {
		outcome = querylog.OutcomeFailed
	}
	dur := st.Finished.Sub(st.Submitted)
	if s.qlog != nil {
		s.qlog.Append(querylog.Record{
			Kind:       querylog.KindJob,
			ID:         jobID,
			TraceID:    rec.Context().TraceIDString(),
			Tenant:     st.Tenant,
			Band:       st.Band.String(),
			Datasets:   s.requestIO(req),
			DurationMs: float64(dur.Microseconds()) / 1000,
			Outcome:    outcome,
			Error:      st.Error,
		})
	}
	if s.slowQuery > 0 && dur > s.slowQuery {
		s.log.Warn("slow query", "job_id", jobID, "name", name,
			"tenant", st.Tenant, "band", st.Band.String(),
			"duration_ms", float64(dur.Microseconds())/1000,
			"threshold_ms", float64(s.slowQuery.Microseconds())/1000,
			"outcome", outcome, "trace", trace.Summarize(st.Trace))
	}
}

// submitCell is the matrix orchestrator's cell submitter: one pairwise
// cross-dataset job through the full cache-aware submission path. In
// clustered mode a cell that misses the local cache layers is first offered
// to its owner peers (remoteCell), so matrix fan-out spreads across the
// cluster; only when this node is the best live owner — or every peer
// failed — does the cell compute locally.
func (s *Server) submitCell(idA, idB, tenantName string) (compare.SubmitOutcome, error) {
	if s.cluster != nil {
		if sub, ok := s.resolveLocalCached(crossKey(idA, idB)); ok {
			return cellOutcome(sub), nil
		}
		if out, ok := s.remoteCell(idA, idB, tenantName); ok {
			return out, nil
		}
	}
	// Matrix cells are batch work under the run's tenant: a K-way flood must
	// never starve concurrent interactive jobs of the fair-share scheduler.
	who := s.tenants.Resolve("")
	if q, ok := s.tenants.ByName(tenantName); ok {
		who = q
	} else if tenantName != "" {
		who.Name = tenantName
	}
	sub, err := s.submitRequestAs(JobRequest{DatasetA: idA, DatasetB: idB, Band: sched.BandBatch.String()},
		who, trace.Context{})
	if err != nil {
		return compare.SubmitOutcome{}, err
	}
	return cellOutcome(sub), nil
}

// cellOutcome projects a submission to the matrix engine's contract.
func cellOutcome(sub submission) compare.SubmitOutcome {
	out := compare.SubmitOutcome{
		JobID:  sub.jobID,
		Cached: sub.resp.Cached,
		Report: sub.report,
		Tiles:  sub.resp.Tiles,
	}
	if sub.cross != nil {
		out.Tiles = sub.cross.MatchedTiles
		out.UnmatchedA = sub.cross.UnmatchedA
		out.UnmatchedB = sub.cross.UnmatchedB
	}
	return out
}

// datasetKey is the result-cache key of a content-addressed dataset: the
// content hash itself, namespaced apart from request-hash keys.
func datasetKey(id string) string { return "dataset\x00" + id }

// crossKey is the result-cache key of a cross-dataset comparison. The key
// is ordered — cross(a,b) compares a's set A against b's set B, a different
// comparison from cross(b,a) — except that a self-comparison IS the
// dataset's own embedded A-vs-B job, so it shares the single-dataset key
// (and therefore its cache entries, in both directions).
func crossKey(idA, idB string) string {
	if idA == idB {
		return datasetKey(idA)
	}
	return "cross\x00" + idA + "\x00" + idB
}

// cachedResponse resolves a cache key to a servable job response. A cached
// job that failed, was canceled, or vanished is evicted and reported as a
// miss so the caller recomputes.
func (s *Server) cachedResponse(key string) (JobResponse, bool) {
	id, ok := s.cache.get(key)
	if !ok {
		return JobResponse{}, false
	}
	if st, live := s.sched.Job(id); live && (st.State == sched.Done || !st.State.Terminal()) {
		return s.jobResponse(st, true), true
	}
	s.cache.drop(key)
	return JobResponse{}, false
}

// cacheKey resolves a request to its result-cache key without materializing
// anything. Dataset jobs key on the content hash directly; generated
// requests whose content address is already known (a previous submission
// ingested them) resolve through specIDs to the same content key.
func (s *Server) cacheKey(req JobRequest) string {
	if req.DatasetID != "" {
		return datasetKey(req.DatasetID)
	}
	if req.DatasetA != "" {
		return crossKey(req.DatasetA, req.DatasetB)
	}
	key := requestKey(req)
	if s.store != nil && (req.Corpus != "" || req.Spec != nil) {
		if dsID, ok := s.specIDs.get(key); ok {
			return datasetKey(dsID)
		}
	}
	return key
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.sched.Jobs()
	out := make([]JobResponse, len(jobs))
	for i, st := range jobs {
		out[i] = s.jobResponse(st, false)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	st, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		s.fail(w, http.StatusNotFound, sched.ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, s.jobResponse(st, false))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	err := s.sched.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, sched.ErrNotFound):
		s.fail(w, http.StatusNotFound, err)
	case errors.Is(err, sched.ErrTerminal):
		s.fail(w, http.StatusConflict, err)
	case err != nil:
		s.fail(w, http.StatusInternalServerError, err)
	default:
		st, _ := s.sched.Job(r.PathValue("id"))
		writeJSON(w, http.StatusOK, s.jobResponse(st, false))
	}
}

// CompareRequest is the synchronous comparison input: two raw polygon text
// files (base64 in JSON).
type CompareRequest struct {
	RawA []byte `json:"raw_a"`
	RawB []byte `json:"raw_b"`
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	if s.compare == nil {
		s.fail(w, http.StatusNotImplemented, errors.New("compare endpoint not configured"))
		return
	}
	var req CompareRequest
	if err := s.decode(w, r, &req); err != nil {
		return
	}
	if len(req.RawA) == 0 || len(req.RawB) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("raw_a and raw_b are required"))
		return
	}
	res, err := s.compare(req.RawA, req.RawB)
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.compares.Inc()
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("cluster") == "1" {
		if s.fed == nil {
			s.fail(w, http.StatusNotImplemented, errors.New("not clustered: no peers to federate"))
			return
		}
		s.fed.serveFederated(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// Everything — counters, gauges, histograms, and the scheduler/group
	// scrape collector registered in New — renders through the registry's
	// sorted, typed exposition.
	_ = s.reg.WriteText(w)
}

// handleInternalMetrics serves the node's own exposition on the peer surface
// so other nodes' /metrics?cluster=1 can scrape it through the cluster
// transport (same body as plain /metrics; the separate route keeps the
// public endpoint's route-label cardinality clean and stays cluster-gated).
func (s *Server) handleInternalMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WriteText(w)
}

// buildRevision resolves the binary's VCS revision from the embedded build
// info, "" when built outside a checkout.
func buildRevision() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	rev := ""
	dirty := false
	for _, kv := range bi.Settings {
		switch kv.Key {
		case "vcs.revision":
			rev = kv.Value
		case "vcs.modified":
			dirty = kv.Value == "true"
		}
	}
	if rev != "" && dirty {
		rev += "-dirty"
	}
	return rev
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	cfg := s.sched.Config()
	devs := s.sched.DeviceStats()
	slots := make([]map[string]any, len(devs))
	for i, d := range devs {
		slots[i] = map[string]any{"id": d.ID, "name": d.Name, "gpus": d.GPUs}
	}
	resp := map[string]any{
		"ok":             true,
		"uptime_seconds": time.Since(s.started).Seconds(),
		"started":        s.started.UTC().Format(time.RFC3339),
		"go_version":     runtime.Version(),
		"devices":        len(devs),
		"scheduler": map[string]any{
			"slots":          slots,
			"gpus":           cfg.Devices,
			"gpus_per_shard": cfg.GPUsPerShard,
			"hybrid_cpu":     cfg.HybridCPU,
			"workers":        cfg.Workers,
			"migration":      cfg.Migration,
			"max_shards":     cfg.MaxShards,
			"queue_depth":    cfg.QueueDepth,
		},
	}
	weights := make(map[string]int, sched.NumBands)
	for b := sched.Band(0); b < sched.NumBands; b++ {
		weights[b.String()] = cfg.BandWeights[b]
	}
	resp["qos"] = map[string]any{
		"multi_tenant":   s.tenants.Enabled(),
		"tenants":        len(s.tenants.Tenants),
		"band_weights":   weights,
		"reserved_slots": cfg.ReservedSlots,
		"aging_boost":    cfg.AgingBoost.String(),
		"queue_pin_age":  s.pinAge.String(),
	}
	if rev := buildRevision(); rev != "" {
		resp["revision"] = rev
	}
	if s.store != nil {
		resp["store"] = map[string]any{
			"datasets": s.store.Len(),
			"dir":      s.store.Dir(),
		}
	}
	if s.cluster != nil {
		resp["cluster"] = s.cluster.Health()
		if s.fed != nil {
			resp["cluster_metrics"] = s.fed.rollup()
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleJobTrace serves a job's stage-span breakdown. Live jobs answer with
// the spans recorded so far; finished jobs answer the frozen trace (plus any
// post-finish spans like persist).
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	st, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		s.fail(w, http.StatusNotFound, sched.ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"job_id": st.ID,
		"state":  st.State.String(),
		"trace":  st.Trace,
	})
}

// Generation limits for user-supplied dataset specs: a spec is a few dozen
// bytes but materializes into tiles of polygons, so unbounded values would
// let one small request exhaust memory or pin the CPU. The corpus tops out
// at 44 tiles of 52 objects (~2.3k blobs); these caps leave two orders of
// magnitude of headroom while keeping one request's work bounded.
const (
	maxSpecTiles   = 4096
	maxSpecObjects = 4096
	maxSpecBlobs   = 1 << 18 // Tiles * Objects product cap
	maxSpecTile    = 1 << 14
	maxSpecRadius  = 512 // MeanRadius + RadiusSigma, pixels
	maxTaskCount   = 65536
)

// checkRequest validates a JobRequest without materializing it (no dataset
// generation), so it is cheap to run before the cache lookup.
func checkRequest(req JobRequest) error {
	if (req.DatasetA != "") != (req.DatasetB != "") {
		return errors.New("dataset_a and dataset_b must be set together")
	}
	forms := 0
	if req.Corpus != "" {
		forms++
	}
	if req.Spec != nil {
		forms++
	}
	if len(req.Tasks) > 0 {
		forms++
	}
	if req.DatasetID != "" {
		forms++
	}
	if req.DatasetA != "" {
		forms++
	}
	if forms != 1 {
		return errors.New("exactly one of corpus, spec, tasks, dataset_id, dataset_a+dataset_b must be set")
	}
	switch {
	case req.DatasetA != "":
		if !store.ValidateID(req.DatasetA) {
			return fmt.Errorf("dataset_a %q is not a content hash (64 lowercase hex digits)", req.DatasetA)
		}
		if !store.ValidateID(req.DatasetB) {
			return fmt.Errorf("dataset_b %q is not a content hash (64 lowercase hex digits)", req.DatasetB)
		}
	case req.DatasetID != "":
		if !store.ValidateID(req.DatasetID) {
			return fmt.Errorf("dataset_id %q is not a content hash (64 lowercase hex digits)", req.DatasetID)
		}
	case req.Corpus != "":
		if _, ok := corpusByName(req.Corpus); !ok {
			return fmt.Errorf("unknown corpus dataset %q", req.Corpus)
		}
	case req.Spec != nil:
		spec := *req.Spec
		if spec.Tiles <= 0 || spec.Tiles > maxSpecTiles {
			return fmt.Errorf("spec.Tiles must be in 1..%d", maxSpecTiles)
		}
		g := spec.Gen
		if g.Objects < 0 || g.Objects > maxSpecObjects {
			return fmt.Errorf("spec.Gen.Objects must be in 0..%d", maxSpecObjects)
		}
		if spec.Tiles*max(g.Objects, 1) > maxSpecBlobs {
			return fmt.Errorf("spec.Tiles * spec.Gen.Objects must not exceed %d", maxSpecBlobs)
		}
		if g.TileSize < 0 || g.TileSize > maxSpecTile {
			return fmt.Errorf("spec.Gen.TileSize must be in 0..%d", maxSpecTile)
		}
		if g.MeanRadius < 0 || g.RadiusSigma < 0 || g.MeanRadius+g.RadiusSigma > maxSpecRadius {
			return fmt.Errorf("spec.Gen.MeanRadius + RadiusSigma must be in 0..%d", maxSpecRadius)
		}
		for name, v := range map[string]float64{
			"Noise":        g.Noise,
			"JitterRadius": g.JitterRadius,
			"DropRate":     g.DropRate,
		} {
			if v < 0 || v > 1 {
				return fmt.Errorf("spec.Gen.%s must be in [0, 1]", name)
			}
		}
		if g.JitterShift < 0 || g.JitterShift > maxSpecRadius {
			return fmt.Errorf("spec.Gen.JitterShift must be in 0..%d", maxSpecRadius)
		}
	default:
		if len(req.Tasks) > maxTaskCount {
			return fmt.Errorf("at most %d tasks per job", maxTaskCount)
		}
		for i, t := range req.Tasks {
			if len(t.RawA) == 0 || len(t.RawB) == 0 {
				return fmt.Errorf("task %d: raw_a and raw_b are required", i)
			}
		}
	}
	return nil
}

// requestForm names a request's input form for log attrs and trace details.
func requestForm(req JobRequest) string {
	switch {
	case req.DatasetA != "":
		return "cross"
	case req.DatasetID != "":
		return "dataset"
	case req.Corpus != "":
		return "corpus"
	case req.Spec != nil:
		return "spec"
	}
	return "tasks"
}

// materialized is the outcome of materializeRequest: the task source to
// run plus the submission metadata resolved along the way.
type materialized struct {
	name string
	src  sched.TaskSource
	// contentKey is the content-hash cache key when materialization resolved
	// one (e.g. a spec was ingested); empty when the content address stays
	// unknown.
	contentKey string
	// cross is the tile-pairing metadata of a cross-dataset job.
	cross *CrossPayload
	// pinned lists the dataset IDs the source holds pins on — the input to
	// pin-aware queue aging.
	pinned []string
	// degraded marks a spec/corpus job whose dataset admission declined:
	// the job runs uncached from memory instead of overshooting the budget.
	degraded bool
}

// materializeRequest turns a checked JobRequest into the task source to
// run. Dataset jobs come back as lazy store tile handles; cross-dataset
// jobs as lazy tile-pair handles over the two segment files (cross carries
// the pairing report); generated requests are, when a store is configured
// and admission control accepts the bytes, ingested so their results can be
// cached (and later requested) by content hash. Pin acquisition is recorded
// into rec; who rides along for admission and cluster-call attribution.
func (s *Server) materializeRequest(rec *trace.Recorder, who tenant.Quota, req JobRequest) (materialized, error) {
	if req.DatasetA != "" {
		// Pin before opening: after Pin succeeds no delete or retention
		// sweep can remove the dataset, so the open below cannot race an
		// eviction. The pinned wrapper unpins at the job's terminal state.
		ids := []string{req.DatasetA}
		if req.DatasetB != req.DatasetA {
			ids = append(ids, req.DatasetB)
		}
		if err := s.ensureLocal(rec, who.Name, ids...); err != nil {
			return materialized{}, err
		}
		pinStart := time.Now()
		name, csrc, match, self, err := s.openPairPinned(ids, req.DatasetA, req.DatasetB)
		rec.Add("pin", "pair", pinStart, time.Now())
		if err != nil {
			return materialized{}, err
		}
		for _, id := range ids {
			s.store.Touch(id)
		}
		m := materialized{name: name, src: csrc, contentKey: crossKey(req.DatasetA, req.DatasetB), pinned: ids}
		if !self {
			// A self-comparison is the dataset's own embedded A-vs-B job
			// (same cache key, bit-identical report), so no cross block:
			// the response contract must not depend on which request form
			// populated the shared cache entry.
			m.cross = crossPayload(req.DatasetA, req.DatasetB, match)
		}
		return m, nil
	}
	if req.DatasetID != "" {
		if err := s.ensureLocal(rec, who.Name, req.DatasetID); err != nil {
			return materialized{}, err
		}
		pinStart := time.Now()
		src, man, err := s.openDatasetPinned(req.DatasetID)
		rec.Add("pin", "dataset", pinStart, time.Now())
		if err != nil {
			return materialized{}, err
		}
		s.store.Touch(man.ID)
		return materialized{name: man.DisplayName(), src: src,
			contentKey: datasetKey(man.ID), pinned: []string{man.ID}}, nil
	}
	if req.Corpus != "" || req.Spec != nil {
		var spec pathology.DatasetSpec
		if req.Corpus != "" {
			spec, _ = corpusByName(req.Corpus)
		} else {
			spec = *req.Spec
			if spec.Gen == (pathology.GenConfig{}) {
				spec.Gen = pathology.DefaultGenConfig()
			}
		}
		d := pathology.Generate(spec)
		m := materialized{name: spec.Name, src: sched.Tasks(pipeline.EncodeDataset(d))}
		if s.store != nil {
			specKey := requestKey(req)
			dsID := ""
			if known, ok := s.specIDs.get(specKey); ok {
				// This spec's content is already stored: skip the
				// re-encode/re-write that Commit's dedup would discard. Pin
				// doubles as the liveness check — success means the dataset
				// outlives this job; failure means it was deleted, and the
				// re-ingest below materializes it again (the dropped-alias
				// fallback).
				if s.store.Pin(known) == nil {
					dsID = known
				}
			}
			if dsID == "" {
				// Admission gates the bytes BEFORE any write: the exact
				// segment size is arithmetic over the generated polygons, so
				// a dataset that would overshoot the byte budget (or the
				// tenant's quota) never touches disk. A decline degrades the
				// job to uncached in-memory execution — same result bytes,
				// no persistence — rather than rejecting work the scheduler
				// could still run.
				if aerr := s.admitIngest(who, store.DatasetBytes(d)); aerr != nil {
					m.degraded = true
					s.degradedUnc.Inc()
					s.log.Warn("spec ingest declined, job degraded to uncached",
						"dataset", spec.Name, "tenant", who.Name, "reason", aerr.code)
				} else if man, ierr := s.store.IngestDataset(d); ierr == nil {
					// Persist the generated content; on failure the job still
					// runs, degrading to request-hash caching — but visibly.
					s.ingests.Inc()
					s.specIDs.put(specKey, man.ID)
					if s.tusage != nil {
						s.tusage.Attribute(who.Name, man.ID, man.SegmentBytes)
					}
					if s.store.Pin(man.ID) == nil {
						dsID = man.ID
					}
				} else {
					s.ingestFails.Inc()
					s.log.Warn("ingest of generated dataset failed", "dataset", spec.Name, "err", ierr)
				}
			}
			if dsID != "" {
				s.store.Touch(dsID)
				m.contentKey = datasetKey(dsID)
				m.src = wrapPinned(s.store, m.src, dsID)
				m.pinned = []string{dsID}
			}
		}
		return m, nil
	}
	tasks := make([]pipeline.FileTask, len(req.Tasks))
	for i, t := range req.Tasks {
		tasks[i] = pipeline.FileTask{Image: t.Image, Tile: t.Tile, RawA: t.RawA, RawB: t.RawB}
	}
	return materialized{name: "upload", src: sched.Tasks(tasks)}, nil
}

func corpusByName(name string) (pathology.DatasetSpec, bool) {
	for _, spec := range pathology.Corpus() {
		if spec.Name == name {
			return spec, true
		}
	}
	return pathology.DatasetSpec{}, false
}

// requestKey hashes the request's semantic identity — the dataset spec for
// generated inputs, the raw bytes for uploads — into the result-cache key.
// It reads only the request, never generated data, so it can run before
// materialization.
func requestKey(req JobRequest) string {
	h := sha256.New()
	switch {
	case req.Corpus != "":
		fmt.Fprintf(h, "corpus\x00%s", req.Corpus)
	case req.Spec != nil:
		fmt.Fprintf(h, "spec\x00%#v", *req.Spec)
	default:
		io.WriteString(h, "tasks")
		for _, t := range req.Tasks {
			fmt.Fprintf(h, "\x00%s\x00%d\x00", t.Image, t.Tile)
			h.Write(t.RawA)
			h.Write([]byte{0})
			h.Write(t.RawB)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return err
	}
	return nil
}

func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	if code == http.StatusBadRequest {
		s.badReqs.Inc()
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
