// Package server exposes the sched job scheduler over HTTP: the API surface
// of the sccgd daemon. It provides job submission and polling, a synchronous
// small-comparison endpoint, health and metrics endpoints, and an LRU result
// cache keyed by dataset-spec hash so repeated cross-comparisons of the same
// input are answered without recomputation (and without further GPU
// launches).
//
//	POST   /jobs          submit a cross-comparison job
//	GET    /jobs          list all jobs
//	GET    /jobs/{id}     poll one job, report included when done
//	DELETE /jobs/{id}     cancel a queued or running job
//	PUT    /datasets      ingest a dataset into the store (streaming)
//	GET    /datasets      list stored datasets
//	GET    /datasets/{id} stat one stored dataset
//	DELETE /datasets/{id} remove a stored dataset
//	POST   /compare       synchronous compare of two small polygon sets
//	GET    /metrics       counters and gauges in Prometheus text format
//	GET    /healthz       liveness probe
//
// When a store is configured, the result cache keys on dataset *content*
// hashes rather than request-spec hashes: a generated spec/corpus job is
// ingested into the store on first materialization and its cache entry
// re-keyed to the content ID, so a later job submitted by dataset_id against
// the very same polygons hits the same entry — and the ID's content
// addressing makes the hit exact by construction.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"repro/internal/metrics"
	"repro/internal/pathology"
	"repro/internal/pipeline"
	"repro/internal/sched"
	"repro/internal/store"
)

// CompareResult is the synchronous /compare outcome.
type CompareResult struct {
	Similarity   float64 `json:"similarity"`
	Intersecting int     `json:"intersecting"`
	Candidates   int     `json:"candidates"`
}

// CompareFunc cross-compares two raw polygon text files synchronously. The
// facade injects an implementation backed by the engine's error-returning
// MatchPairs/ComputeAreas variants; when nil, POST /compare answers 501.
type CompareFunc func(rawA, rawB []byte) (CompareResult, error)

// Options configures a Server.
type Options struct {
	// CacheSize is the LRU result-cache capacity in entries; 0 selects the
	// default of 128, negative disables caching.
	CacheSize int
	// Registry receives the server's counters; one is created when nil.
	Registry *metrics.Registry
	// Compare backs POST /compare; nil disables the endpoint.
	Compare CompareFunc
	// MaxBodyBytes caps request bodies; default 32 MiB.
	MaxBodyBytes int64
	// Store, when set, backs the /datasets endpoints, jobs by dataset_id,
	// and content-hash result caching. Nil disables all three (the
	// endpoints answer 501).
	Store *store.Store
}

// Server ties the scheduler, store, cache, and metrics into an
// http.Handler.
type Server struct {
	sched *sched.Scheduler
	store *store.Store
	cache *resultCache
	// specIDs remembers which content-addressed dataset a generated
	// spec/corpus request materialized into, so repeats of the spec resolve
	// to the content-hash cache key without regenerating anything.
	specIDs *resultCache
	reg     *metrics.Registry
	compare CompareFunc
	maxBody int64
	started time.Time

	requests    *metrics.Counter
	submits     *metrics.Counter
	cacheHits   *metrics.Counter
	cacheMiss   *metrics.Counter
	compares    *metrics.Counter
	badReqs     *metrics.Counter
	ingests     *metrics.Counter
	ingestFails *metrics.Counter
}

// New creates a server over the scheduler.
func New(s *sched.Scheduler, opts Options) *Server {
	if opts.CacheSize == 0 {
		opts.CacheSize = 128
	}
	if opts.Registry == nil {
		opts.Registry = metrics.NewRegistry()
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 32 << 20
	}
	srv := &Server{
		sched:   s,
		store:   opts.Store,
		cache:   newResultCache(opts.CacheSize),
		specIDs: newResultCache(1024),
		reg:     opts.Registry,
		compare: opts.Compare,
		maxBody: opts.MaxBodyBytes,
		started: time.Now(),

		requests:    opts.Registry.Counter("sccgd_http_requests_total"),
		submits:     opts.Registry.Counter("sccgd_jobs_submitted_total"),
		cacheHits:   opts.Registry.Counter("sccgd_cache_hits_total"),
		cacheMiss:   opts.Registry.Counter("sccgd_cache_misses_total"),
		compares:    opts.Registry.Counter("sccgd_compares_total"),
		badReqs:     opts.Registry.Counter("sccgd_bad_requests_total"),
		ingests:     opts.Registry.Counter("sccgd_datasets_ingested_total"),
		ingestFails: opts.Registry.Counter("sccgd_dataset_ingest_failures_total"),
	}
	opts.Registry.GaugeFunc("sccgd_cache_entries", func() float64 { return float64(srv.cache.len()) })
	if srv.store != nil {
		opts.Registry.GaugeFunc("sccgd_datasets", func() float64 { return float64(srv.store.Len()) })
	}
	return srv
}

// Registry returns the server's metrics registry.
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Handler returns the HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.count(s.handleSubmit))
	mux.HandleFunc("GET /jobs", s.count(s.handleList))
	mux.HandleFunc("GET /jobs/{id}", s.count(s.handleJob))
	mux.HandleFunc("DELETE /jobs/{id}", s.count(s.handleCancel))
	mux.HandleFunc("PUT /datasets", s.count(s.handlePutDataset))
	mux.HandleFunc("GET /datasets", s.count(s.handleListDatasets))
	mux.HandleFunc("GET /datasets/{id}", s.count(s.handleStatDataset))
	mux.HandleFunc("DELETE /datasets/{id}", s.count(s.handleDeleteDataset))
	mux.HandleFunc("POST /compare", s.count(s.handleCompare))
	mux.HandleFunc("GET /metrics", s.count(s.handleMetrics))
	mux.HandleFunc("GET /healthz", s.count(s.handleHealthz))
	return mux
}

func (s *Server) count(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Inc()
		h(w, r)
	}
}

// TaskPayload is one tile's raw polygon files; RawA/RawB are base64 in JSON.
type TaskPayload struct {
	Image string `json:"image,omitempty"`
	Tile  int    `json:"tile"`
	RawA  []byte `json:"raw_a"`
	RawB  []byte `json:"raw_b"`
}

// JobRequest submits one cross-comparison job. Exactly one input form must
// be set: Corpus (a named corpus dataset), Spec (a full synthetic dataset
// spec), Tasks (raw tile files), or DatasetID (a dataset previously
// ingested into the store via PUT /datasets).
type JobRequest struct {
	Corpus    string                 `json:"corpus,omitempty"`
	Spec      *pathology.DatasetSpec `json:"spec,omitempty"`
	Tasks     []TaskPayload          `json:"tasks,omitempty"`
	DatasetID string                 `json:"dataset_id,omitempty"`
	NoCache   bool                   `json:"no_cache,omitempty"`
}

// ExecutorPayload is the JSON projection of one hybrid-aggregator
// executor's accounting.
type ExecutorPayload struct {
	ID          string  `json:"id"`
	Kind        string  `json:"kind"`
	Batches     int64   `json:"batches"`
	Pairs       int64   `json:"pairs"`
	BusyMillis  float64 `json:"busy_millis"`
	PairsPerSec float64 `json:"pairs_per_sec"`
}

// ReportPayload is the JSON projection of a merged pipeline result.
type ReportPayload struct {
	Similarity     float64           `json:"similarity"`
	Intersecting   int               `json:"intersecting"`
	Candidates     int               `json:"candidates"`
	Tiles          int               `json:"tiles"`
	PairsOnGPU     int               `json:"pairs_on_gpu"`
	PairsOnCPU     int               `json:"pairs_on_cpu"`
	TasksToCPU     int64             `json:"tasks_migrated_to_cpu"`
	TasksToGPU     int64             `json:"tasks_migrated_to_gpu"`
	KernelLaunches int64             `json:"kernel_launches"`
	DeviceSeconds  float64           `json:"device_seconds"`
	WallMillis     float64           `json:"wall_millis"`
	Executors      []ExecutorPayload `json:"executors,omitempty"`
}

func reportPayload(r pipeline.Result) *ReportPayload {
	p := &ReportPayload{
		Similarity:     r.Similarity,
		Intersecting:   r.Intersecting,
		Candidates:     r.Candidates,
		Tiles:          r.Stats.TilesProcessed,
		PairsOnGPU:     r.Stats.PairsOnGPU,
		PairsOnCPU:     r.Stats.PairsOnCPU,
		TasksToCPU:     r.Stats.TasksToCPU,
		TasksToGPU:     r.Stats.TasksToGPU,
		KernelLaunches: r.Stats.KernelLaunches,
		DeviceSeconds:  r.Stats.DeviceSeconds,
		WallMillis:     float64(r.Stats.WallTime.Microseconds()) / 1000,
	}
	for _, e := range r.Stats.Executors {
		p.Executors = append(p.Executors, ExecutorPayload{
			ID:          e.ID,
			Kind:        e.Kind,
			Batches:     e.Batches,
			Pairs:       e.Pairs,
			BusyMillis:  float64(e.Busy.Microseconds()) / 1000,
			PairsPerSec: e.PairsPerSec,
		})
	}
	return p
}

// JobResponse is the wire form of a job snapshot.
type JobResponse struct {
	ID        string         `json:"id"`
	Name      string         `json:"name,omitempty"`
	State     string         `json:"state"`
	Cached    bool           `json:"cached,omitempty"`
	Error     string         `json:"error,omitempty"`
	Submitted time.Time      `json:"submitted"`
	Started   *time.Time     `json:"started,omitempty"`
	Finished  *time.Time     `json:"finished,omitempty"`
	Tiles     int            `json:"tiles"`
	Shards    int            `json:"shards,omitempty"`
	DeviceIDs []int          `json:"device_ids,omitempty"`
	Report    *ReportPayload `json:"report,omitempty"`
}

func jobResponse(st sched.JobStatus, cached bool) JobResponse {
	resp := JobResponse{
		ID:        st.ID,
		Name:      st.Name,
		State:     st.State.String(),
		Cached:    cached,
		Error:     st.Error,
		Submitted: st.Submitted,
		Tiles:     st.Tiles,
		Shards:    st.Shards,
		DeviceIDs: st.DeviceIDs,
	}
	if !st.Started.IsZero() {
		t := st.Started
		resp.Started = &t
	}
	if !st.Finished.IsZero() {
		t := st.Finished
		resp.Finished = &t
	}
	if st.State == sched.Done {
		resp.Report = reportPayload(st.Report)
	}
	return resp
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := s.decode(w, r, &req); err != nil {
		return
	}
	if err := checkRequest(req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if req.DatasetID != "" && !s.requireStore(w) {
		return
	}

	// Look the request up before materializing it: a cache hit must not pay
	// for dataset generation or store reads. cacheKey resolves to the
	// dataset content hash whenever it can.
	key := ""
	if !req.NoCache {
		key = s.cacheKey(req)
		if resp, ok := s.cachedResponse(key); ok {
			s.cacheHits.Inc()
			writeJSON(w, http.StatusOK, resp)
			return
		}
		// The miss is counted only once the job is really submitted: the
		// re-key path below may still turn this request into a hit.
	}

	name, src, contentKey, err := s.materializeRequest(req)
	if err != nil {
		code := http.StatusUnprocessableEntity
		if errors.Is(err, store.ErrNotFound) {
			code = http.StatusNotFound
		}
		s.fail(w, code, err)
		return
	}
	if key != "" && contentKey != "" && contentKey != key {
		// Materialization pinned the content address (e.g. a spec was
		// ingested into the store): cache under it, so a later submission
		// of the same content by dataset_id hits this entry — and re-check
		// the cache, since this very content may already have a result
		// computed under another request form.
		key = contentKey
		if resp, ok := s.cachedResponse(key); ok {
			s.cacheHits.Inc()
			writeJSON(w, http.StatusOK, resp)
			return
		}
	}
	if key != "" {
		s.cacheMiss.Inc()
	}
	id, err := s.sched.SubmitSource(name, src)
	switch {
	case errors.Is(err, sched.ErrQueueFull):
		s.fail(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, sched.ErrClosed):
		s.fail(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	s.submits.Inc()
	if key != "" {
		s.cache.put(key, id)
	}
	st, _ := s.sched.Job(id)
	writeJSON(w, http.StatusAccepted, jobResponse(st, false))
}

// datasetKey is the result-cache key of a content-addressed dataset: the
// content hash itself, namespaced apart from request-hash keys.
func datasetKey(id string) string { return "dataset\x00" + id }

// cachedResponse resolves a cache key to a servable job response. A cached
// job that failed, was canceled, or vanished is evicted and reported as a
// miss so the caller recomputes.
func (s *Server) cachedResponse(key string) (JobResponse, bool) {
	id, ok := s.cache.get(key)
	if !ok {
		return JobResponse{}, false
	}
	if st, live := s.sched.Job(id); live && (st.State == sched.Done || !st.State.Terminal()) {
		return jobResponse(st, true), true
	}
	s.cache.drop(key)
	return JobResponse{}, false
}

// cacheKey resolves a request to its result-cache key without materializing
// anything. Dataset jobs key on the content hash directly; generated
// requests whose content address is already known (a previous submission
// ingested them) resolve through specIDs to the same content key.
func (s *Server) cacheKey(req JobRequest) string {
	if req.DatasetID != "" {
		return datasetKey(req.DatasetID)
	}
	key := requestKey(req)
	if s.store != nil && (req.Corpus != "" || req.Spec != nil) {
		if dsID, ok := s.specIDs.get(key); ok {
			return datasetKey(dsID)
		}
	}
	return key
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.sched.Jobs()
	out := make([]JobResponse, len(jobs))
	for i, st := range jobs {
		out[i] = jobResponse(st, false)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	st, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		s.fail(w, http.StatusNotFound, sched.ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, jobResponse(st, false))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	err := s.sched.Cancel(r.PathValue("id"))
	switch {
	case errors.Is(err, sched.ErrNotFound):
		s.fail(w, http.StatusNotFound, err)
	case errors.Is(err, sched.ErrTerminal):
		s.fail(w, http.StatusConflict, err)
	case err != nil:
		s.fail(w, http.StatusInternalServerError, err)
	default:
		st, _ := s.sched.Job(r.PathValue("id"))
		writeJSON(w, http.StatusOK, jobResponse(st, false))
	}
}

// CompareRequest is the synchronous comparison input: two raw polygon text
// files (base64 in JSON).
type CompareRequest struct {
	RawA []byte `json:"raw_a"`
	RawB []byte `json:"raw_b"`
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	if s.compare == nil {
		s.fail(w, http.StatusNotImplemented, errors.New("compare endpoint not configured"))
		return
	}
	var req CompareRequest
	if err := s.decode(w, r, &req); err != nil {
		return
	}
	if len(req.RawA) == 0 || len(req.RawB) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("raw_a and raw_b are required"))
		return
	}
	res, err := s.compare(req.RawA, req.RawB)
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.compares.Inc()
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WriteText(w)
	// Scheduler metrics are rendered from one snapshot per scrape rather
	// than a gauge func per value, which would rebuild the snapshot for
	// every single line.
	st := s.sched.Stats()
	fmt.Fprintf(w, "sccgd_jobs_queued %d\n", st.Queued)
	fmt.Fprintf(w, "sccgd_jobs_running %d\n", st.Running)
	fmt.Fprintf(w, "sccgd_jobs_completed_total %d\n", st.Completed)
	fmt.Fprintf(w, "sccgd_jobs_failed_total %d\n", st.Failed)
	fmt.Fprintf(w, "sccgd_jobs_canceled_total %d\n", st.Canceled)
	for _, d := range st.Devices {
		fmt.Fprintf(w, "sccgd_device_launches_total{device=\"%d\"} %d\n", d.ID, d.Launches)
		fmt.Fprintf(w, "sccgd_device_busy_seconds{device=\"%d\"} %g\n", d.ID, d.BusySeconds)
		fmt.Fprintf(w, "sccgd_device_shards_total{device=\"%d\"} %d\n", d.ID, d.Shards)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":             true,
		"uptime_seconds": time.Since(s.started).Seconds(),
		"devices":        len(s.sched.DeviceStats()),
	})
}

// Generation limits for user-supplied dataset specs: a spec is a few dozen
// bytes but materializes into tiles of polygons, so unbounded values would
// let one small request exhaust memory or pin the CPU. The corpus tops out
// at 44 tiles of 52 objects (~2.3k blobs); these caps leave two orders of
// magnitude of headroom while keeping one request's work bounded.
const (
	maxSpecTiles   = 4096
	maxSpecObjects = 4096
	maxSpecBlobs   = 1 << 18 // Tiles * Objects product cap
	maxSpecTile    = 1 << 14
	maxSpecRadius  = 512 // MeanRadius + RadiusSigma, pixels
	maxTaskCount   = 65536
)

// checkRequest validates a JobRequest without materializing it (no dataset
// generation), so it is cheap to run before the cache lookup.
func checkRequest(req JobRequest) error {
	forms := 0
	if req.Corpus != "" {
		forms++
	}
	if req.Spec != nil {
		forms++
	}
	if len(req.Tasks) > 0 {
		forms++
	}
	if req.DatasetID != "" {
		forms++
	}
	if forms != 1 {
		return errors.New("exactly one of corpus, spec, tasks, dataset_id must be set")
	}
	switch {
	case req.DatasetID != "":
		if !store.ValidateID(req.DatasetID) {
			return fmt.Errorf("dataset_id %q is not a content hash (64 lowercase hex digits)", req.DatasetID)
		}
	case req.Corpus != "":
		if _, ok := corpusByName(req.Corpus); !ok {
			return fmt.Errorf("unknown corpus dataset %q", req.Corpus)
		}
	case req.Spec != nil:
		spec := *req.Spec
		if spec.Tiles <= 0 || spec.Tiles > maxSpecTiles {
			return fmt.Errorf("spec.Tiles must be in 1..%d", maxSpecTiles)
		}
		g := spec.Gen
		if g.Objects < 0 || g.Objects > maxSpecObjects {
			return fmt.Errorf("spec.Gen.Objects must be in 0..%d", maxSpecObjects)
		}
		if spec.Tiles*max(g.Objects, 1) > maxSpecBlobs {
			return fmt.Errorf("spec.Tiles * spec.Gen.Objects must not exceed %d", maxSpecBlobs)
		}
		if g.TileSize < 0 || g.TileSize > maxSpecTile {
			return fmt.Errorf("spec.Gen.TileSize must be in 0..%d", maxSpecTile)
		}
		if g.MeanRadius < 0 || g.RadiusSigma < 0 || g.MeanRadius+g.RadiusSigma > maxSpecRadius {
			return fmt.Errorf("spec.Gen.MeanRadius + RadiusSigma must be in 0..%d", maxSpecRadius)
		}
		for name, v := range map[string]float64{
			"Noise":        g.Noise,
			"JitterRadius": g.JitterRadius,
			"DropRate":     g.DropRate,
		} {
			if v < 0 || v > 1 {
				return fmt.Errorf("spec.Gen.%s must be in [0, 1]", name)
			}
		}
		if g.JitterShift < 0 || g.JitterShift > maxSpecRadius {
			return fmt.Errorf("spec.Gen.JitterShift must be in 0..%d", maxSpecRadius)
		}
	default:
		if len(req.Tasks) > maxTaskCount {
			return fmt.Errorf("at most %d tasks per job", maxTaskCount)
		}
		for i, t := range req.Tasks {
			if len(t.RawA) == 0 || len(t.RawB) == 0 {
				return fmt.Errorf("task %d: raw_a and raw_b are required", i)
			}
		}
	}
	return nil
}

// materializeRequest turns a checked JobRequest into the task source to
// run. Dataset jobs come back as lazy store tile handles; generated
// requests are, when a store is configured, ingested so their results can
// be cached (and later requested) by content hash — contentKey carries that
// resolved cache key, empty when the content address is unknown.
func (s *Server) materializeRequest(req JobRequest) (name string, src sched.TaskSource, contentKey string, err error) {
	if req.DatasetID != "" {
		ds, err := s.store.OpenDataset(req.DatasetID)
		if err != nil {
			return "", nil, "", err
		}
		man := ds.Manifest()
		return man.DisplayName(), ds.Source(), datasetKey(man.ID), nil
	}
	if req.Corpus != "" || req.Spec != nil {
		var spec pathology.DatasetSpec
		if req.Corpus != "" {
			spec, _ = corpusByName(req.Corpus)
		} else {
			spec = *req.Spec
			if spec.Gen == (pathology.GenConfig{}) {
				spec.Gen = pathology.DefaultGenConfig()
			}
		}
		d := pathology.Generate(spec)
		if s.store != nil {
			specKey := requestKey(req)
			if dsID, ok := s.specIDs.get(specKey); ok {
				if _, live := s.store.Get(dsID); live {
					// This spec's content is already stored: skip the
					// re-encode/re-write that Commit's dedup would discard.
					contentKey = datasetKey(dsID)
				}
			}
			if contentKey == "" {
				// Persist the generated content; on failure the job still
				// runs, degrading to request-hash caching — but visibly.
				if man, ierr := s.store.IngestDataset(d); ierr == nil {
					s.ingests.Inc()
					s.specIDs.put(specKey, man.ID)
					contentKey = datasetKey(man.ID)
				} else {
					s.ingestFails.Inc()
					log.Printf("server: ingest of generated dataset %q failed: %v", spec.Name, ierr)
				}
			}
		}
		return spec.Name, sched.Tasks(pipeline.EncodeDataset(d)), contentKey, nil
	}
	tasks := make([]pipeline.FileTask, len(req.Tasks))
	for i, t := range req.Tasks {
		tasks[i] = pipeline.FileTask{Image: t.Image, Tile: t.Tile, RawA: t.RawA, RawB: t.RawB}
	}
	return "upload", sched.Tasks(tasks), "", nil
}

func corpusByName(name string) (pathology.DatasetSpec, bool) {
	for _, spec := range pathology.Corpus() {
		if spec.Name == name {
			return spec, true
		}
	}
	return pathology.DatasetSpec{}, false
}

// requestKey hashes the request's semantic identity — the dataset spec for
// generated inputs, the raw bytes for uploads — into the result-cache key.
// It reads only the request, never generated data, so it can run before
// materialization.
func requestKey(req JobRequest) string {
	h := sha256.New()
	switch {
	case req.Corpus != "":
		fmt.Fprintf(h, "corpus\x00%s", req.Corpus)
	case req.Spec != nil:
		fmt.Fprintf(h, "spec\x00%#v", *req.Spec)
	default:
		io.WriteString(h, "tasks")
		for _, t := range req.Tasks {
			fmt.Fprintf(h, "\x00%s\x00%d\x00", t.Image, t.Tile)
			h.Write(t.RawA)
			h.Write([]byte{0})
			h.Write(t.RawB)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("invalid request body: %w", err))
		return err
	}
	return nil
}

func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	if code == http.StatusBadRequest {
		s.badReqs.Inc()
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
