package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/gpu"
	"repro/internal/pathology"
	"repro/internal/pipeline"
	"repro/internal/sched"
)

func newTestServer(t *testing.T, cfg sched.Config, opts Options) (*Server, *sched.Scheduler, *httptest.Server) {
	t.Helper()
	s := sched.New(cfg)
	srv := New(s, opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return srv, s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, dst any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if dst != nil {
		if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func pollDone(t *testing.T, base, id string) JobResponse {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for {
		var jr JobResponse
		getJSON(t, base+"/jobs/"+id, &jr)
		switch jr.State {
		case "done", "failed", "canceled":
			return jr
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", id, jr.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSubmitPollFetchRoundTrip drives the full HTTP lifecycle and checks the
// served similarity against a direct pipeline run over the same tasks.
func TestSubmitPollFetchRoundTrip(t *testing.T) {
	_, _, ts := newTestServer(t, sched.Config{Devices: 2}, Options{})

	spec := pathology.Representative()
	spec.Tiles = 4
	tasks := pipeline.EncodeDataset(pathology.Generate(spec))
	direct, err := pipeline.Run(tasks, pipeline.Config{Device: gpu.NewDevice(gpu.GTX580())})
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}

	resp, body := postJSON(t, ts.URL+"/jobs", JobRequest{Spec: &spec})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, body %s", resp.StatusCode, body)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatalf("unmarshal submit response: %v", err)
	}
	if jr.ID == "" || jr.Cached {
		t.Fatalf("submit response = %+v, want fresh job with ID", jr)
	}

	done := pollDone(t, ts.URL, jr.ID)
	if done.State != "done" {
		t.Fatalf("job ended %s: %s", done.State, done.Error)
	}
	if done.Report == nil {
		t.Fatal("done job has no report")
	}
	if math.Abs(done.Report.Similarity-direct.Similarity) > 1e-9 {
		t.Errorf("served similarity %.12f != direct %.12f", done.Report.Similarity, direct.Similarity)
	}
	if done.Report.Intersecting != direct.Intersecting {
		t.Errorf("intersecting %d != direct %d", done.Report.Intersecting, direct.Intersecting)
	}

	var list struct {
		Jobs []JobResponse `json:"jobs"`
	}
	getJSON(t, ts.URL+"/jobs", &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != jr.ID {
		t.Errorf("job list = %+v, want the one submitted job", list.Jobs)
	}

	var health map[string]any
	if resp := getJSON(t, ts.URL+"/healthz", &health); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d", resp.StatusCode)
	}
	if health["ok"] != true {
		t.Errorf("healthz = %v, want ok", health)
	}
}

// TestCacheHitSkipsRecompute asserts the LRU cache answers a repeated
// dataset submission with the original job and, critically, that no
// additional kernels are launched on any pool device.
func TestCacheHitSkipsRecompute(t *testing.T) {
	_, s, ts := newTestServer(t, sched.Config{Devices: 2}, Options{})

	req := JobRequest{Corpus: "oligoastroIII_1"}
	resp, body := postJSON(t, ts.URL+"/jobs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, body %s", resp.StatusCode, body)
	}
	var first JobResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	done := pollDone(t, ts.URL, first.ID)
	if done.State != "done" {
		t.Fatalf("job ended %s: %s", done.State, done.Error)
	}

	launchesBefore := int64(0)
	for _, d := range s.DeviceStats() {
		launchesBefore += d.Launches
	}
	if launchesBefore == 0 {
		t.Fatal("first job launched no kernels")
	}

	resp, body = postJSON(t, ts.URL+"/jobs", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached submit status = %d, body %s", resp.StatusCode, body)
	}
	var second JobResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.ID != first.ID || second.State != "done" {
		t.Fatalf("cached response = %+v, want cached done job %s", second, first.ID)
	}
	if second.Report == nil || second.Report.Similarity != done.Report.Similarity {
		t.Error("cached response does not carry the original report")
	}

	launchesAfter := int64(0)
	for _, d := range s.DeviceStats() {
		launchesAfter += d.Launches
	}
	if launchesAfter != launchesBefore {
		t.Errorf("cache hit launched kernels: %d -> %d", launchesBefore, launchesAfter)
	}

	// NoCache bypasses and recomputes.
	req.NoCache = true
	resp, body = postJSON(t, ts.URL+"/jobs", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("no_cache submit status = %d, body %s", resp.StatusCode, body)
	}
	var third JobResponse
	if err := json.Unmarshal(body, &third); err != nil {
		t.Fatal(err)
	}
	if third.Cached || third.ID == first.ID {
		t.Errorf("no_cache response = %+v, want a fresh job", third)
	}
	pollDone(t, ts.URL, third.ID)
}

func TestSubmitValidation(t *testing.T) {
	_, _, ts := newTestServer(t, sched.Config{Devices: 1}, Options{})

	cases := []JobRequest{
		{}, // no input form
		{Corpus: "oligoastroIII_1", Tasks: []TaskPayload{{RawA: []byte("x"), RawB: []byte("y")}}}, // two forms
		{Corpus: "no_such_dataset"},
		{Tasks: []TaskPayload{{RawA: nil, RawB: []byte("y")}}},
	}
	for i, req := range cases {
		resp, body := postJSON(t, ts.URL+"/jobs", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status = %d (body %s), want 400", i, resp.StatusCode, body)
		}
	}

	if resp := getJSON(t, ts.URL+"/jobs/job-424242", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", resp.StatusCode)
	}
}

func TestRawTaskSubmission(t *testing.T) {
	_, _, ts := newTestServer(t, sched.Config{Devices: 1}, Options{})

	spec := pathology.Representative()
	spec.Tiles = 2
	tasks := pipeline.EncodeDataset(pathology.Generate(spec))
	payload := make([]TaskPayload, len(tasks))
	for i, task := range tasks {
		payload[i] = TaskPayload{Image: task.Image, Tile: task.Tile, RawA: task.RawA, RawB: task.RawB}
	}
	resp, body := postJSON(t, ts.URL+"/jobs", JobRequest{Tasks: payload})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, body %s", resp.StatusCode, body)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	done := pollDone(t, ts.URL, jr.ID)
	if done.State != "done" || done.Report == nil || done.Report.Similarity <= 0 {
		t.Fatalf("raw task job = %+v, want done with positive similarity", done)
	}

	// The same bytes resubmitted hit the cache.
	resp, body = postJSON(t, ts.URL+"/jobs", JobRequest{Tasks: payload})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status = %d, body %s", resp.StatusCode, body)
	}
	var again JobResponse
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.ID != jr.ID {
		t.Errorf("repeat = %+v, want cache hit on %s", again, jr.ID)
	}
}

func TestCancelEndpoint(t *testing.T) {
	_, _, ts := newTestServer(t, sched.Config{Devices: 1}, Options{})

	// Fill the single runner with a long job, then cancel a queued one. Both
	// jobs are pre-encoded client-side so each submit costs ~1ms while the
	// long job occupies the runner for tens of milliseconds — the victim is
	// still queued when DELETE lands.
	encode := func(tiles int, seed int64) []TaskPayload {
		spec := pathology.Representative()
		spec.Tiles = tiles
		spec.Seed = seed
		tasks := pipeline.EncodeDataset(pathology.Generate(spec))
		payload := make([]TaskPayload, len(tasks))
		for i, task := range tasks {
			payload[i] = TaskPayload{Image: task.Image, Tile: task.Tile, RawA: task.RawA, RawB: task.RawB}
		}
		return payload
	}
	longTasks := encode(20, 1)

	// The schedule is timing-based (the runner can drain both jobs before
	// DELETE lands under scheduler jitter), so losing the race retries with
	// a fresh victim rather than flaking.
	for attempt := 1; ; attempt++ {
		resp, body := postJSON(t, ts.URL+"/jobs", JobRequest{Tasks: longTasks, NoCache: true})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status = %d, body %s", resp.StatusCode, body)
		}
		resp, body = postJSON(t, ts.URL+"/jobs", JobRequest{Tasks: encode(1, 99+int64(attempt))})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit status = %d, body %s", resp.StatusCode, body)
		}
		var victim JobResponse
		if err := json.Unmarshal(body, &victim); err != nil {
			t.Fatal(err)
		}

		delReq, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+victim.ID, nil)
		delResp, err := http.DefaultClient.Do(delReq)
		if err != nil {
			t.Fatal(err)
		}
		delResp.Body.Close()
		if delResp.StatusCode == http.StatusConflict && attempt < 5 {
			continue // both jobs finished before the cancel; try again
		}
		if delResp.StatusCode != http.StatusOK {
			t.Fatalf("cancel status = %d (attempt %d)", delResp.StatusCode, attempt)
		}
		if done := pollDone(t, ts.URL, victim.ID); done.State != "canceled" {
			t.Errorf("victim state = %s, want canceled", done.State)
		}
		return
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, _, ts := newTestServer(t, sched.Config{Devices: 2}, Options{})

	spec := pathology.Representative()
	spec.Tiles = 2
	resp, body := postJSON(t, ts.URL+"/jobs", JobRequest{Spec: &spec})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, body %s", resp.StatusCode, body)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	pollDone(t, ts.URL, jr.ID)

	mResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mResp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mResp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"sccgd_http_requests_total",
		"sccgd_jobs_submitted_total 1",
		"sccgd_jobs_completed_total 1",
		"sccgd_cache_misses_total 1",
		`sccgd_device_launches_total{device="0"}`,
		`sccgd_device_busy_seconds{device="1"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q:\n%s", want, text)
		}
	}
}

func TestCompareEndpoint(t *testing.T) {
	compare := func(rawA, rawB []byte) (CompareResult, error) {
		if len(rawA) == 0 || len(rawB) == 0 {
			return CompareResult{}, fmt.Errorf("empty input")
		}
		return CompareResult{Similarity: 0.5, Intersecting: 1, Candidates: 2}, nil
	}
	_, _, ts := newTestServer(t, sched.Config{Devices: 1}, Options{Compare: compare})

	resp, body := postJSON(t, ts.URL+"/compare", CompareRequest{RawA: []byte("a"), RawB: []byte("b")})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compare status = %d, body %s", resp.StatusCode, body)
	}
	var res CompareResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Similarity != 0.5 || res.Intersecting != 1 || res.Candidates != 2 {
		t.Errorf("compare result = %+v", res)
	}

	// Unconfigured compare answers 501.
	_, _, bare := newTestServer(t, sched.Config{Devices: 1}, Options{})
	resp, _ = postJSON(t, bare.URL+"/compare", CompareRequest{RawA: []byte("a"), RawB: []byte("b")})
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("unconfigured compare status = %d, want 501", resp.StatusCode)
	}
}

func TestCacheLRU(t *testing.T) {
	c := newResultCache(2)
	c.put("a", "job-1")
	c.put("b", "job-2")
	c.put("c", "job-3") // evicts a
	if _, ok := c.get("a"); ok {
		t.Error("a survived past capacity")
	}
	if id, ok := c.get("b"); !ok || id != "job-2" {
		t.Errorf("get(b) = %q, %v", id, ok)
	}
	c.put("d", "job-4") // evicts c (b was refreshed)
	if _, ok := c.get("c"); ok {
		t.Error("c survived, want LRU eviction after b refresh")
	}
	if _, ok := c.get("b"); !ok {
		t.Error("b evicted despite being most recently used")
	}
	c.drop("b")
	if _, ok := c.get("b"); ok {
		t.Error("b survived drop")
	}
	disabled := newResultCache(-1)
	disabled.put("x", "job-9")
	if _, ok := disabled.get("x"); ok {
		t.Error("disabled cache stored an entry")
	}
}

// flushRecorder is an httptest.ResponseRecorder that counts Flush calls, so
// tests can tell whether a wrapper actually forwards flushes rather than
// swallowing them in the embedded-interface shadow.
type flushRecorder struct {
	*httptest.ResponseRecorder
	flushes int
}

func (f *flushRecorder) Flush() { f.flushes++ }

// plainWriter implements only http.ResponseWriter — no Flusher — to check the
// wrapper degrades to a no-op instead of panicking.
type plainWriter struct{ header http.Header }

func (p *plainWriter) Header() http.Header         { return p.header }
func (p *plainWriter) Write(b []byte) (int, error) { return len(b), nil }
func (p *plainWriter) WriteHeader(int)             {}

// TestStatusWriterFlush is the regression test for the instrumentation
// wrapper dropping http.Flusher: streaming handlers behind instrument() saw a
// writer with no Flush, so progress events sat in buffers until the response
// ended.
func TestStatusWriterFlush(t *testing.T) {
	rec := &flushRecorder{ResponseRecorder: httptest.NewRecorder()}
	sw := &statusWriter{ResponseWriter: rec, status: http.StatusOK}

	// The wrapper must satisfy http.Flusher and forward to the real writer.
	f, ok := interface{}(sw).(http.Flusher)
	if !ok {
		t.Fatal("statusWriter does not implement http.Flusher")
	}
	f.Flush()
	if rec.flushes != 1 {
		t.Fatalf("underlying writer saw %d flushes, want 1", rec.flushes)
	}

	// http.ResponseController must reach the underlying Flusher via Unwrap.
	if err := http.NewResponseController(sw).Flush(); err != nil {
		t.Fatalf("ResponseController.Flush: %v", err)
	}
	if rec.flushes < 2 {
		t.Fatalf("ResponseController flush did not reach the underlying writer (flushes=%d)", rec.flushes)
	}
	if got := sw.Unwrap(); got != http.ResponseWriter(rec) {
		t.Fatalf("Unwrap() = %T, want the wrapped writer", got)
	}

	// A non-flushing underlying writer: Flush is a harmless no-op.
	plain := &statusWriter{ResponseWriter: &plainWriter{header: make(http.Header)}, status: http.StatusOK}
	plain.Flush()
}
