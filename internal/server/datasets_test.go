package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/parser"
	"repro/internal/pathology"
	"repro/internal/sched"
	"repro/internal/store"
)

func testStore(t *testing.T) *store.Store {
	t.Helper()
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return s
}

// datasetPayload encodes a generated dataset as the PUT /datasets body.
func datasetPayload(t *testing.T, d *pathology.Dataset) []byte {
	t.Helper()
	tiles := make([]TaskPayload, len(d.Pairs))
	for i, tp := range d.Pairs {
		tiles[i] = TaskPayload{
			Image: tp.Image,
			Tile:  tp.Index,
			RawA:  parser.Encode(tp.A),
			RawB:  parser.Encode(tp.B),
		}
	}
	raw, err := json.Marshal(tiles)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func putDataset(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("PUT %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestDatasetLifecycle walks the full dataset CRUD surface: ingest, list,
// stat, job by content ID, cached resubmission, delete, and the 404s after.
func TestDatasetLifecycle(t *testing.T) {
	st := testStore(t)
	_, _, ts := newTestServer(t, sched.Config{Devices: 1}, Options{Store: st})

	spec := pathology.Representative()
	spec.Tiles = 3
	d := pathology.Generate(spec)

	resp, body := putDataset(t, ts.URL+"/datasets?name=lifecycle", datasetPayload(t, d))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT /datasets status = %d, body %s", resp.StatusCode, body)
	}
	var man DatasetResponse
	if err := json.Unmarshal(body, &man); err != nil {
		t.Fatal(err)
	}
	if !store.ValidateID(man.ID) || man.Name != "lifecycle" || man.Tiles != 3 || len(man.TileIndex) != 3 {
		t.Fatalf("ingest response = %+v, want 3-tile dataset named lifecycle", man)
	}

	// Idempotent re-ingest: same content, same ID, still one dataset.
	resp, body = putDataset(t, ts.URL+"/datasets?name=other", datasetPayload(t, d))
	var again DatasetResponse
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || again.ID != man.ID {
		t.Fatalf("re-ingest returned %d id %s, want 200 with %s", resp.StatusCode, again.ID, man.ID)
	}

	var list struct {
		Datasets []DatasetResponse `json:"datasets"`
	}
	getJSON(t, ts.URL+"/datasets", &list)
	if len(list.Datasets) != 1 || list.Datasets[0].ID != man.ID {
		t.Fatalf("GET /datasets = %+v, want exactly the ingested dataset", list)
	}

	var stat DatasetResponse
	if resp := getJSON(t, ts.URL+"/datasets/"+man.ID, &stat); resp.StatusCode != http.StatusOK {
		t.Fatalf("stat status = %d", resp.StatusCode)
	}
	if stat.ID != man.ID || len(stat.TileIndex) != 3 {
		t.Fatalf("stat = %+v, want full tile index", stat)
	}

	// Job by content ID.
	resp, body = postJSON(t, ts.URL+"/jobs", JobRequest{DatasetID: man.ID})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job by dataset_id status = %d, body %s", resp.StatusCode, body)
	}
	var job JobResponse
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if job.Name != "lifecycle" {
		t.Errorf("job name %q, want the dataset's name", job.Name)
	}
	done := pollDone(t, ts.URL, job.ID)
	if done.State != "done" {
		t.Fatalf("store-backed job ended %s: %s", done.State, done.Error)
	}

	// Resubmission is served from the content-hash cache.
	resp, body = postJSON(t, ts.URL+"/jobs", JobRequest{DatasetID: man.ID})
	var cached JobResponse
	if err := json.Unmarshal(body, &cached); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !cached.Cached || cached.ID != job.ID {
		t.Fatalf("resubmission = %d %+v, want cache hit on job %s", resp.StatusCode, cached, job.ID)
	}

	// Delete, then everything 404s.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/datasets/"+man.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d", dresp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/datasets/"+man.ID, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("stat after delete = %d, want 404", resp.StatusCode)
	}
	resp, body = postJSON(t, ts.URL+"/jobs", JobRequest{DatasetID: man.ID, NoCache: true})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("job on deleted dataset = %d (%s), want 404", resp.StatusCode, body)
	}
}

// TestSpecJobSharesContentCache: submitting a generated spec ingests it into
// the store, and a later job for the resulting dataset ID hits the same
// content-hash cache entry without recomputation.
func TestSpecJobSharesContentCache(t *testing.T) {
	st := testStore(t)
	_, _, ts := newTestServer(t, sched.Config{Devices: 1}, Options{Store: st})

	spec := pathology.Representative()
	spec.Tiles = 2
	resp, body := postJSON(t, ts.URL+"/jobs", JobRequest{Spec: &spec})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("spec submit status = %d, body %s", resp.StatusCode, body)
	}
	var job JobResponse
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if pollDone(t, ts.URL, job.ID).State != "done" {
		t.Fatal("spec job did not complete")
	}

	// The generated content is now stored and addressable.
	var list struct {
		Datasets []DatasetResponse `json:"datasets"`
	}
	getJSON(t, ts.URL+"/datasets", &list)
	if len(list.Datasets) != 1 {
		t.Fatalf("spec submission ingested %d datasets, want 1", len(list.Datasets))
	}
	dsID := list.Datasets[0].ID

	// A dataset_id job for the same content is a cache hit on the spec job.
	resp, body = postJSON(t, ts.URL+"/jobs", JobRequest{DatasetID: dsID})
	var cached JobResponse
	if err := json.Unmarshal(body, &cached); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !cached.Cached || cached.ID != job.ID {
		t.Fatalf("dataset_id job = %d %+v, want content-hash cache hit on %s", resp.StatusCode, cached, job.ID)
	}

	// And so is a repeat of the spec itself (resolved through specIDs).
	resp, body = postJSON(t, ts.URL+"/jobs", JobRequest{Spec: &spec})
	var repeat JobResponse
	if err := json.Unmarshal(body, &repeat); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !repeat.Cached || repeat.ID != job.ID {
		t.Fatalf("spec repeat = %d %+v, want cache hit on %s", resp.StatusCode, repeat, job.ID)
	}
}

// TestDatasetEndpointsWithoutStore: a daemon without -data-dir answers 501
// on the whole dataset surface and on dataset_id jobs.
func TestDatasetEndpointsWithoutStore(t *testing.T) {
	_, _, ts := newTestServer(t, sched.Config{Devices: 0}, Options{})
	if resp := getJSON(t, ts.URL+"/datasets", nil); resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("GET /datasets without store = %d, want 501", resp.StatusCode)
	}
	id := strings.Repeat("ab", 32)
	resp, _ := postJSON(t, ts.URL+"/jobs", JobRequest{DatasetID: id})
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("dataset_id job without store = %d, want 501", resp.StatusCode)
	}
}

// TestPutDatasetValidation: malformed bodies and unparseable polygon text
// fail with clear statuses and leave nothing behind in the store.
func TestPutDatasetValidation(t *testing.T) {
	st := testStore(t)
	_, _, ts := newTestServer(t, sched.Config{Devices: 0}, Options{Store: st})

	cases := []struct {
		name string
		body string
		code int
	}{
		{"not an array", `{"tiles": []}`, http.StatusBadRequest},
		{"empty array", `[]`, http.StatusBadRequest},
		{"missing raw", `[{"tile": 0}]`, http.StatusBadRequest},
		{"bad polygon text", `[{"tile": 0, "raw_a": "bm90IGEgcG9seWdvbg==", "raw_b": "bm90IGEgcG9seWdvbg=="}]`,
			http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		resp, body := putDataset(t, ts.URL+"/datasets", []byte(tc.body))
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status = %d (%s), want %d", tc.name, resp.StatusCode, body, tc.code)
		}
	}
	if st.Len() != 0 {
		t.Fatalf("failed ingests left %d datasets in the store", st.Len())
	}
}

// TestSpecJobHitsStoredDatasetResult is the reverse direction of content
// unification: a dataset-ID job computes first, and a spec job generating
// the very same content must be answered from that cached result (the
// submit path re-checks the cache after ingest pins the content address).
func TestSpecJobHitsStoredDatasetResult(t *testing.T) {
	st := testStore(t)
	_, _, ts := newTestServer(t, sched.Config{Devices: 1}, Options{Store: st})

	spec := pathology.Representative()
	spec.Tiles = 2
	man, err := st.IngestDataset(pathology.Generate(spec))
	if err != nil {
		t.Fatalf("IngestDataset: %v", err)
	}

	resp, body := postJSON(t, ts.URL+"/jobs", JobRequest{DatasetID: man.ID})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("dataset job status = %d, body %s", resp.StatusCode, body)
	}
	var job JobResponse
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if pollDone(t, ts.URL, job.ID).State != "done" {
		t.Fatal("dataset job did not complete")
	}

	resp, body = postJSON(t, ts.URL+"/jobs", JobRequest{Spec: &spec})
	var specJob JobResponse
	if err := json.Unmarshal(body, &specJob); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !specJob.Cached || specJob.ID != job.ID {
		t.Fatalf("spec job = %d %+v, want cache hit on dataset job %s", resp.StatusCode, specJob, job.ID)
	}
}
