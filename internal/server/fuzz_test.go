package server

// FuzzJobRequest hardens the job-submission surface the same way FuzzParse
// hardens the polygon text format: arbitrary JSON bodies must never panic
// the decoder, the spec validation limits, or the cache-key hasher, and
// every accepted request must satisfy the invariants the handlers rely on.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/store"
)

func FuzzJobRequest(f *testing.F) {
	f.Add([]byte(`{"corpus":"oligoastroIII_1"}`))
	f.Add([]byte(`{"spec":{"Name":"x","Seed":1,"Tiles":2}}`))
	f.Add([]byte(`{"spec":{"Name":"x","Tiles":4096,"Gen":{"Objects":4096,"TileSize":16384}}}`))
	f.Add([]byte(`{"tasks":[{"tile":0,"raw_a":"MA==","raw_b":"MA=="}]}`))
	f.Add([]byte(`{"dataset_id":"` + strings.Repeat("ab", 32) + `"}`))
	f.Add([]byte(`{"dataset_id":"../../etc/passwd"}`))
	f.Add([]byte(`{"dataset_id":"` + strings.Repeat("AB", 32) + `"}`))
	f.Add([]byte(`{"corpus":"a","spec":{"Name":"b","Tiles":1}}`))
	f.Add([]byte(`{"spec":{"Tiles":-1}}`))
	f.Add([]byte(`{"spec":{"Tiles":1,"Gen":{"Noise":1e308,"MeanRadius":-1}}}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		var req JobRequest
		if err := dec.Decode(&req); err != nil {
			return // rejected at the decode layer, as the handler would
		}
		err := checkRequest(req)
		// The cache-key hasher runs on pre-validation requests in the
		// handler path, so it must tolerate anything that decodes.
		_ = requestKey(req)
		if err != nil {
			return
		}
		// Invariants of accepted requests.
		forms := 0
		if req.Corpus != "" {
			forms++
		}
		if req.Spec != nil {
			forms++
		}
		if len(req.Tasks) > 0 {
			forms++
		}
		if req.DatasetID != "" {
			forms++
		}
		if forms != 1 {
			t.Fatalf("checkRequest accepted %d input forms: %+v", forms, req)
		}
		if req.DatasetID != "" && !store.ValidateID(req.DatasetID) {
			t.Fatalf("checkRequest accepted malformed dataset ID %q", req.DatasetID)
		}
		if req.Spec != nil {
			if req.Spec.Tiles <= 0 || req.Spec.Tiles > maxSpecTiles {
				t.Fatalf("checkRequest accepted spec.Tiles = %d", req.Spec.Tiles)
			}
			if req.Spec.Tiles*max(req.Spec.Gen.Objects, 1) > maxSpecBlobs {
				t.Fatalf("checkRequest accepted blob product %d * %d",
					req.Spec.Tiles, req.Spec.Gen.Objects)
			}
		}
		if len(req.Tasks) > maxTaskCount {
			t.Fatalf("checkRequest accepted %d tasks", len(req.Tasks))
		}
	})
}
