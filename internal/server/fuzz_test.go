package server

// FuzzJobRequest hardens the job-submission surface the same way FuzzParse
// hardens the polygon text format: arbitrary JSON bodies must never panic
// the decoder, the spec validation limits, or the cache-key hasher, and
// every accepted request must satisfy the invariants the handlers rely on.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/store"
)

func FuzzJobRequest(f *testing.F) {
	f.Add([]byte(`{"corpus":"oligoastroIII_1"}`))
	f.Add([]byte(`{"spec":{"Name":"x","Seed":1,"Tiles":2}}`))
	f.Add([]byte(`{"spec":{"Name":"x","Tiles":4096,"Gen":{"Objects":4096,"TileSize":16384}}}`))
	f.Add([]byte(`{"tasks":[{"tile":0,"raw_a":"MA==","raw_b":"MA=="}]}`))
	f.Add([]byte(`{"dataset_id":"` + strings.Repeat("ab", 32) + `"}`))
	f.Add([]byte(`{"dataset_id":"../../etc/passwd"}`))
	f.Add([]byte(`{"dataset_id":"` + strings.Repeat("AB", 32) + `"}`))
	f.Add([]byte(`{"dataset_a":"` + strings.Repeat("ab", 32) + `","dataset_b":"` + strings.Repeat("cd", 32) + `"}`))
	f.Add([]byte(`{"dataset_a":"` + strings.Repeat("ab", 32) + `"}`))
	f.Add([]byte(`{"dataset_b":"` + strings.Repeat("ab", 32) + `"}`))
	f.Add([]byte(`{"dataset_a":"x","dataset_b":"y"}`))
	f.Add([]byte(`{"dataset_a":"` + strings.Repeat("ab", 32) + `","dataset_b":"` + strings.Repeat("ab", 32) + `","dataset_id":"` + strings.Repeat("ab", 32) + `"}`))
	f.Add([]byte(`{"corpus":"a","spec":{"Name":"b","Tiles":1}}`))
	f.Add([]byte(`{"spec":{"Tiles":-1}}`))
	f.Add([]byte(`{"spec":{"Tiles":1,"Gen":{"Noise":1e308,"MeanRadius":-1}}}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		var req JobRequest
		if err := dec.Decode(&req); err != nil {
			return // rejected at the decode layer, as the handler would
		}
		err := checkRequest(req)
		// The cache-key hasher runs on pre-validation requests in the
		// handler path, so it must tolerate anything that decodes.
		_ = requestKey(req)
		if err != nil {
			return
		}
		// Invariants of accepted requests.
		forms := 0
		if req.Corpus != "" {
			forms++
		}
		if req.Spec != nil {
			forms++
		}
		if len(req.Tasks) > 0 {
			forms++
		}
		if req.DatasetID != "" {
			forms++
		}
		if req.DatasetA != "" || req.DatasetB != "" {
			forms++
		}
		if forms != 1 {
			t.Fatalf("checkRequest accepted %d input forms: %+v", forms, req)
		}
		if req.DatasetID != "" && !store.ValidateID(req.DatasetID) {
			t.Fatalf("checkRequest accepted malformed dataset ID %q", req.DatasetID)
		}
		if req.DatasetA != "" || req.DatasetB != "" {
			if !store.ValidateID(req.DatasetA) || !store.ValidateID(req.DatasetB) {
				t.Fatalf("checkRequest accepted malformed cross pair %q/%q", req.DatasetA, req.DatasetB)
			}
		}
		if req.Spec != nil {
			if req.Spec.Tiles <= 0 || req.Spec.Tiles > maxSpecTiles {
				t.Fatalf("checkRequest accepted spec.Tiles = %d", req.Spec.Tiles)
			}
			if req.Spec.Tiles*max(req.Spec.Gen.Objects, 1) > maxSpecBlobs {
				t.Fatalf("checkRequest accepted blob product %d * %d",
					req.Spec.Tiles, req.Spec.Gen.Objects)
			}
		}
		if len(req.Tasks) > maxTaskCount {
			t.Fatalf("checkRequest accepted %d tasks", len(req.Tasks))
		}
	})
}

// FuzzMatrixRequest hardens the matrix surface: arbitrary dataset-ID lists,
// bipartite axes, and progressive objectives must never panic validation,
// and every accepted request satisfies the invariants the orchestrator
// relies on (axes mutually exclusive, 2..max valid distinct IDs per axis —
// or both bipartite axes non-empty — and objectives within range).
func FuzzMatrixRequest(f *testing.F) {
	idA := strings.Repeat("ab", 32)
	idB := strings.Repeat("cd", 32)
	f.Add([]byte(`{"datasets":["` + idA + `","` + idB + `"]}`))
	f.Add([]byte(`{"datasets":["` + idA + `","` + idB + `","` + strings.Repeat("ef", 32) + `"],"name":"x"}`))
	f.Add([]byte(`{"datasets":["` + idA + `"]}`))
	f.Add([]byte(`{"datasets":["` + idA + `","` + idA + `"]}`))
	f.Add([]byte(`{"datasets":["../../etc/passwd","` + idB + `"]}`))
	f.Add([]byte(`{"datasets":[]}`))
	f.Add([]byte(`{"datasets":null}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"set_a":["` + idA + `"],"set_b":["` + idB + `"]}`))
	f.Add([]byte(`{"set_a":["` + idA + `"],"set_b":["` + idA + `"]}`))
	f.Add([]byte(`{"set_a":["` + idA + `"]}`))
	f.Add([]byte(`{"set_b":["` + idB + `"]}`))
	f.Add([]byte(`{"datasets":["` + idA + `","` + idB + `"],"set_a":["` + idA + `"],"set_b":["` + idB + `"]}`))
	f.Add([]byte(`{"set_a":["` + idA + `","` + idA + `"],"set_b":["` + idB + `"]}`))
	f.Add([]byte(`{"datasets":["` + idA + `","` + idB + `"],"top_k":3,"min_similarity":0.5,"estimate":true}`))
	f.Add([]byte(`{"datasets":["` + idA + `","` + idB + `"],"top_k":-1}`))
	f.Add([]byte(`{"datasets":["` + idA + `","` + idB + `"],"min_similarity":1.5}`))
	f.Add([]byte(`{"datasets":["` + idA + `","` + idB + `"],"min_similarity":-0.1}`))
	f.Add([]byte(`{"datasets":["` + idA + `","` + idB + `"],"min_similarity":1e308}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.DisallowUnknownFields()
		var req MatrixRequest
		if err := dec.Decode(&req); err != nil {
			return // rejected at the decode layer, as the handler would
		}
		// matrixIDs runs before validation succeeds in no path, but it must
		// still tolerate anything that decodes (startMatrix calls it only
		// after checkMatrixRequest; keep it panic-free regardless).
		_ = matrixIDs(req)
		if err := checkMatrixRequest(req); err != nil {
			return
		}
		// Invariants of accepted requests.
		bipartite := len(req.SetA) > 0 || len(req.SetB) > 0
		if bipartite {
			if len(req.Datasets) > 0 {
				t.Fatalf("checkMatrixRequest accepted mixed axes: %+v", req)
			}
			if len(req.SetA) == 0 || len(req.SetB) == 0 {
				t.Fatalf("checkMatrixRequest accepted a one-sided bipartite request: %+v", req)
			}
		} else if len(req.Datasets) < 2 || len(req.Datasets) > maxMatrixDatasets {
			t.Fatalf("checkMatrixRequest accepted %d datasets", len(req.Datasets))
		}
		for _, axis := range [][]string{req.Datasets, req.SetA, req.SetB} {
			if len(axis) > maxMatrixDatasets {
				t.Fatalf("checkMatrixRequest accepted a %d-wide axis", len(axis))
			}
			seen := map[string]struct{}{}
			for _, id := range axis {
				if !store.ValidateID(id) {
					t.Fatalf("checkMatrixRequest accepted malformed ID %q", id)
				}
				if _, dup := seen[id]; dup {
					t.Fatalf("checkMatrixRequest accepted duplicate ID %q", id)
				}
				seen[id] = struct{}{}
			}
		}
		if req.TopK < 0 {
			t.Fatalf("checkMatrixRequest accepted top_k %d", req.TopK)
		}
		if req.MinSimilarity < 0 || req.MinSimilarity > 1 {
			t.Fatalf("checkMatrixRequest accepted min_similarity %v", req.MinSimilarity)
		}
	})
}
