package server

// Retention surface: the admin endpoints and the plumbing that ties the
// retention engine into the request path.
//
//	POST   /gc      run one retention sweep now, report what it evicted
//	DELETE /cache   empty the result cache (in-memory LRU + persisted layer)
//
// Two invariants are enforced here rather than in the engine, so they hold
// for every delete path (HTTP DELETE, forced deletes, retention sweeps):
//
//   - Cascade: the store's delete hook routes through dropDatasetResults,
//     which removes the dataset's live LRU entries, its persisted report
//     entries (single and cross), and any spec alias resolving to it — a
//     deleted dataset's results are never served again, and a re-submitted
//     spec falls back to re-materialization.
//   - Pinning: every store-backed job submission pins its datasets first
//     (Pin fails if the dataset is already gone, closing the race with a
//     concurrent sweep) and wraps the task source so the scheduler unpins
//     exactly once at the job's terminal state.

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"repro/internal/compare"
	"repro/internal/pipeline"
	"repro/internal/retention"
	"repro/internal/sched"
	"repro/internal/store"
)

// keyDatasetIDs returns the dataset content IDs a result-cache key
// references: one for a single-dataset key, two for a cross key, none for
// request-hash keys (uploads, storeless spec jobs).
func keyDatasetIDs(key string) []string {
	if rest, ok := strings.CutPrefix(key, "dataset\x00"); ok {
		return []string{rest}
	}
	if rest, ok := strings.CutPrefix(key, "cross\x00"); ok {
		if a, b, ok := strings.Cut(rest, "\x00"); ok {
			return []string{a, b}
		}
	}
	return nil
}

// dropDatasetResults is the store's delete hook: cascade a dataset removal
// through every result layer so no path — DELETE /datasets, a forced delete,
// a retention eviction — leaves reports behind for data that no longer
// exists.
func (s *Server) dropDatasetResults(id string) {
	n := s.cache.dropWhere(func(key, _ string) bool {
		for _, ref := range keyDatasetIDs(key) {
			if ref == id {
				return true
			}
		}
		return false
	})
	n += s.specIDs.dropWhere(func(_, dsID string) bool { return dsID == id })
	if s.persist != nil {
		n += s.persist.dropDataset(id)
	}
	// Heat is an access rollup for data that exists; a deleted dataset's
	// history goes with it (records in the query log itself remain — the log
	// is an audit trail, not a cache).
	s.qlog.DropHeat(id)
	// Tenant attribution releases with the dataset: the owning tenant's
	// byte/dataset usage frees quota headroom the moment the delete lands.
	if s.tusage != nil {
		s.tusage.DropDataset(id)
	}
	if n > 0 {
		s.cascades.Add(int64(n))
	}
}

// pinnedSource wraps a job's task source so its datasets stay pinned —
// immune to Delete and retention sweeps — until the scheduler releases the
// source at the job's terminal state. Release is idempotent because the
// server also calls it on paths where the source never reaches a job (a
// late cache hit, a submit failure).
type pinnedSource struct {
	sched.TaskSource
	st   *store.Store
	ids  []string
	once sync.Once
}

func (p *pinnedSource) Release() {
	p.once.Do(func() {
		for _, id := range p.ids {
			p.st.Unpin(id)
		}
	})
}

// pinnedPolySource additionally forwards the PolySource contract, so
// wrapping never demotes a parse-free store source to the text path.
type pinnedPolySource struct {
	*pinnedSource
	poly sched.PolySource
}

func (p *pinnedPolySource) PolyTask(i int) (pipeline.PolyTask, error) { return p.poly.PolyTask(i) }

// pinDatasets pins every id; all must exist — a failure unwinds the pins
// already taken, so pins are held all-or-nothing.
func (s *Server) pinDatasets(ids ...string) error {
	for i, id := range ids {
		if err := s.store.Pin(id); err != nil {
			for _, held := range ids[:i] {
				s.store.Unpin(held)
			}
			return fmt.Errorf("dataset %s: %w", id, err)
		}
	}
	return nil
}

// wrapPinned wraps src so the already-held pins on ids release exactly once,
// preserving the PolySource contract when src carries it.
func wrapPinned(st *store.Store, src sched.TaskSource, ids ...string) sched.TaskSource {
	ps := &pinnedSource{TaskSource: src, st: st, ids: ids}
	if poly, ok := src.(sched.PolySource); ok {
		return &pinnedPolySource{pinnedSource: ps, poly: poly}
	}
	return ps
}

// openDatasetPinned pins a stored dataset and returns its parse-free task
// source; the pin is released at the job's terminal state (or by
// releaseSource when no job takes the source).
func (s *Server) openDatasetPinned(id string) (sched.TaskSource, *store.Manifest, error) {
	if err := s.pinDatasets(id); err != nil {
		return nil, nil, err
	}
	ds, err := s.store.OpenDataset(id)
	if err != nil {
		s.store.Unpin(id)
		return nil, nil, err
	}
	return wrapPinned(s.store, ds.Source(), id), ds.Manifest(), nil
}

// openPairPinned pins the cross pair's datasets (ids, deduplicated by the
// caller for self-comparisons) and opens the comparison over them.
func (s *Server) openPairPinned(ids []string, idA, idB string) (name string, src sched.TaskSource, match compare.Match, self bool, err error) {
	if err := s.pinDatasets(ids...); err != nil {
		return "", nil, compare.Match{}, false, err
	}
	name, csrc, match, self, err := compare.OpenPair(s.store, idA, idB)
	if err != nil {
		for _, id := range ids {
			s.store.Unpin(id)
		}
		return "", nil, compare.Match{}, false, err
	}
	return name, wrapPinned(s.store, csrc, ids...), match, self, nil
}

// releaseSource releases a pinned source that will never reach (or never
// reached) a scheduler job.
func releaseSource(src sched.TaskSource) {
	if rel, ok := src.(sched.SourceReleaser); ok {
		rel.Release()
	}
}

// GC runs one retention sweep immediately. It fails when the server has no
// store (retention bounds nothing without one).
func (s *Server) GC() (retention.Sweep, error) {
	if s.retention == nil {
		return retention.Sweep{}, errors.New("no dataset store configured (start sccgd with -data-dir)")
	}
	return s.retention.Sweep(), nil
}

func (s *Server) handleGC(w http.ResponseWriter, r *http.Request) {
	sw, err := s.GC()
	if err != nil {
		s.fail(w, http.StatusNotImplemented, err)
		return
	}
	writeJSON(w, http.StatusOK, sw)
}

// handleClearCache empties both result-cache layers: the in-memory LRU and
// the persisted reports on disk. Spec aliases are kept — they point at live
// datasets, and dataset deletion is what invalidates them.
func (s *Server) handleClearCache(w http.ResponseWriter, r *http.Request) {
	lru := s.cache.clear()
	persisted := 0
	if s.persist != nil {
		persisted = s.persist.clear()
	}
	writeJSON(w, http.StatusOK, map[string]int{
		"lru_dropped":       lru,
		"persisted_dropped": persisted,
	})
}
