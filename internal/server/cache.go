package server

import (
	"container/list"
	"sync"
)

// resultCache is an LRU map from request hash to the job ID that computed
// (or is computing) that request. Serving the job ID rather than a copied
// report gives single-flight semantics for free: a duplicate submission that
// arrives while the first is still running attaches to the in-flight job
// instead of recomputing.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key   string
	jobID string
}

// newResultCache creates a cache holding up to capacity entries; a
// non-positive capacity disables caching (every lookup misses).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// get returns the job ID cached for key, refreshing its recency.
func (c *resultCache) get(key string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return "", false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).jobID, true
}

// put records key → jobID, evicting the least recently used entry when over
// capacity.
func (c *resultCache) put(key, jobID string) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).jobID = jobID
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, jobID: jobID})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

// drop removes key (used when a cached job turns out failed or canceled).
func (c *resultCache) drop(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.Remove(el)
		delete(c.items, key)
	}
}

// dropWhere removes every entry the predicate matches and returns how many
// went — the cascade primitive behind dataset deletes (drop result keys
// referencing the dataset, drop spec aliases resolving to it).
func (c *resultCache) dropWhere(pred func(key, value string) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	dropped := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		e := el.Value.(*cacheEntry)
		if pred(e.key, e.jobID) {
			c.ll.Remove(el)
			delete(c.items, e.key)
			dropped++
		}
		el = next
	}
	return dropped
}

// clear empties the cache, returning how many entries it held.
func (c *resultCache) clear() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.ll.Len()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	return n
}

// len returns the live entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
