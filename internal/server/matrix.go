package server

// K-way similarity matrix endpoints over the compare subsystem:
//
//	POST   /matrix       start a run:
//	                       {"datasets": ["<id>", ...]}          symmetric, or
//	                       {"set_a": [...], "set_b": [...]}     bipartite rows×cols
//	                     plus optional "name", and the progressive objectives
//	                     "top_k" (only the K highest cells need exact answers),
//	                     "min_similarity" (cells provably below it are skipped)
//	                     and "estimate" (Monte-Carlo ordering refinement).
//	GET    /matrix       list runs
//	GET    /matrix/{id}  poll one run (cell grid, group aggregate).
//	                       ?wait=1&since=N long-polls until the run's version
//	                       exceeds N (or the run finishes, or ~25s elapse);
//	                       ?stream=1 streams every status change as NDJSON
//	                       until the run is terminal.
//	DELETE /matrix/{id}  cancel a run (cancels its remaining member jobs)
//	GET    /matrix/{id}/cells/{i}/{j}
//	                     read one cell by grid coordinates; ?exact=1 lazily
//	                     upgrades an elided (skipped/bounded) cell to an exact
//	                     answer on demand and patches the run's status
//
// A run resolves each cell through the cache-aware job submission path
// (repeat content — including across daemon restarts, via the persisted
// cache — is never recomputed) and fans the rest out as scheduler jobs under
// one cancellable job group. Progressive runs first bound every cell from
// manifest stats and elide cells that cannot affect the answer; see
// internal/compare. The run pins all its datasets for its lifetime, so a
// retention sweep mid-run can never delete a dataset out from under a
// planned cell.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/compare"
	"repro/internal/store"
	"repro/internal/tenant"
	"repro/internal/trace"
)

// MatrixRequest starts a matrix run over stored datasets.
type MatrixRequest struct {
	Datasets []string `json:"datasets,omitempty"`
	SetA     []string `json:"set_a,omitempty"`
	SetB     []string `json:"set_b,omitempty"`
	Name     string   `json:"name,omitempty"`
	// TopK asks only for the K highest-similarity cells; remaining cells
	// may finish "bounded" (elided, with a sound upper bound) instead of
	// exact.
	TopK int `json:"top_k,omitempty"`
	// MinSimilarity, in [0,1], skips cells whose similarity provably falls
	// below it.
	MinSimilarity float64 `json:"min_similarity,omitempty"`
	// Estimate turns on Monte-Carlo cell estimates to refine the order in
	// which cells are computed. Estimates never decide skips.
	Estimate bool `json:"estimate,omitempty"`
}

// maxMatrixDatasets caps each axis; the cell count grows quadratically and
// 16 datasets already mean 120 pairwise jobs.
const maxMatrixDatasets = 16

// checkMatrixRequest validates a matrix request without touching the store.
func checkMatrixRequest(req MatrixRequest) error {
	bipartite := len(req.SetA) > 0 || len(req.SetB) > 0
	switch {
	case bipartite && len(req.Datasets) > 0:
		return errors.New("datasets and set_a/set_b are mutually exclusive")
	case bipartite:
		if len(req.SetA) == 0 || len(req.SetB) == 0 {
			return errors.New("a bipartite matrix needs both set_a and set_b")
		}
		if err := checkMatrixAxis("set_a", req.SetA); err != nil {
			return err
		}
		if err := checkMatrixAxis("set_b", req.SetB); err != nil {
			return err
		}
	default:
		if len(req.Datasets) < 2 {
			return errors.New("a matrix needs at least 2 datasets")
		}
		if err := checkMatrixAxis("datasets", req.Datasets); err != nil {
			return err
		}
	}
	if req.TopK < 0 {
		return fmt.Errorf("top_k %d is negative", req.TopK)
	}
	if req.MinSimilarity < 0 || req.MinSimilarity > 1 {
		return fmt.Errorf("min_similarity %v outside [0, 1]", req.MinSimilarity)
	}
	return nil
}

func checkMatrixAxis(field string, ids []string) error {
	if len(ids) > maxMatrixDatasets {
		return fmt.Errorf("at most %d %s per matrix", maxMatrixDatasets, field)
	}
	seen := make(map[string]struct{}, len(ids))
	for i, id := range ids {
		if !store.ValidateID(id) {
			return fmt.Errorf("%s[%d] %q is not a content hash (64 lowercase hex digits)", field, i, id)
		}
		if _, dup := seen[id]; dup {
			return fmt.Errorf("%s[%d] %s listed twice", field, i, id)
		}
		seen[id] = struct{}{}
	}
	return nil
}

// matrixIDs returns the distinct dataset IDs a request touches (set_a and
// set_b may overlap across sides).
func matrixIDs(req MatrixRequest) []string {
	seen := make(map[string]struct{})
	var ids []string
	for _, axis := range [][]string{req.Datasets, req.SetA, req.SetB} {
		for _, id := range axis {
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				ids = append(ids, id)
			}
		}
	}
	return ids
}

// requireMatrix answers 501 when the daemon runs without a store (matrix
// runs exist only over stored datasets).
func (s *Server) requireMatrix(w http.ResponseWriter) bool {
	if s.matrix == nil {
		s.fail(w, http.StatusNotImplemented,
			errors.New("no dataset store configured (start sccgd with -data-dir)"))
		return false
	}
	return true
}

// startMatrix validates and starts a matrix run; code carries the HTTP
// status on failure. Shared by the HTTP handler and SubmitMatrix.
//
// All the run's datasets are pinned here — all-or-nothing — and released in
// one batch when the run finalizes. Per-cell submissions pin again for the
// job's own lifetime; the run-level pins are what keep a dataset alive in
// the window between run start and its last cell's submission, which a
// retention sweep could otherwise hit.
func (s *Server) startMatrix(req MatrixRequest, who tenant.Quota) (run *compare.Run, code int, err error) {
	if s.matrix == nil {
		return nil, http.StatusNotImplemented,
			errors.New("no dataset store configured (start sccgd with -data-dir)")
	}
	if err := checkMatrixRequest(req); err != nil {
		return nil, http.StatusBadRequest, err
	}
	ids := matrixIDs(req)
	// In clustered mode the coordinating node pulls every missing dataset up
	// front: pinning requires local presence, and the plan phase bounds cells
	// from local manifests. Routed cells still compute remotely; the pull
	// keeps the coordinator able to answer any cell itself (degrade-to-local).
	// The pulls are recorded and handed to the run as its plan prelude, so
	// plan_trace prices them next to the bound/estimate stages.
	rec := trace.NewRecorder()
	if err := s.ensureLocal(rec, who.Name, ids...); err != nil {
		if errors.Is(err, store.ErrNotFound) {
			return nil, http.StatusNotFound, err
		}
		return nil, http.StatusBadGateway, err
	}
	rec.Finish()
	if err := s.pinDatasets(ids...); err != nil {
		if errors.Is(err, store.ErrNotFound) {
			return nil, http.StatusNotFound, err
		}
		return nil, http.StatusConflict, err
	}
	release := func() {
		for _, id := range ids {
			s.store.Unpin(id)
		}
	}
	run, err = s.matrix.StartSpec(compare.RunSpec{
		Name:          req.Name,
		Tenant:        who.Name,
		Datasets:      req.Datasets,
		SetA:          req.SetA,
		SetB:          req.SetB,
		TopK:          req.TopK,
		MinSimilarity: req.MinSimilarity,
		Estimate:      req.Estimate,
		Prelude:       rec.Snapshot(),
	}, release)
	if err != nil {
		release()
		return nil, http.StatusServiceUnavailable, err
	}
	s.matrixRuns.Inc()
	return run, http.StatusAccepted, nil
}

// SubmitMatrix validates and starts a symmetric matrix run over the dataset
// IDs, returning the run ID. It is the non-HTTP entry the facade uses.
func (s *Server) SubmitMatrix(ids []string, name string) (string, error) {
	run, _, err := s.startMatrix(MatrixRequest{Datasets: ids, Name: name}, s.tenants.Resolve(""))
	if err != nil {
		return "", err
	}
	return run.ID(), nil
}

// SubmitMatrixRequest starts a run from the full request form (progressive
// objectives, bipartite axes). Facade entry.
func (s *Server) SubmitMatrixRequest(req MatrixRequest) (string, error) {
	run, _, err := s.startMatrix(req, s.tenants.Resolve(""))
	if err != nil {
		return "", err
	}
	return run.ID(), nil
}

// Matrix returns a run's status snapshot.
func (s *Server) Matrix(id string) (compare.Status, bool) {
	if s.matrix == nil {
		return compare.Status{}, false
	}
	run, ok := s.matrix.Get(id)
	if !ok {
		return compare.Status{}, false
	}
	return run.Status(), true
}

// WaitMatrix blocks until the run's version exceeds since (or the run is
// terminal, or ctx expires) and returns the fresh snapshot. Facade entry.
func (s *Server) WaitMatrix(ctx context.Context, id string, since int64) (compare.Status, bool) {
	if s.matrix == nil {
		return compare.Status{}, false
	}
	run, ok := s.matrix.Get(id)
	if !ok {
		return compare.Status{}, false
	}
	st, _ := run.WaitChange(ctx, since)
	return st, true
}

// CancelMatrix cancels a run.
func (s *Server) CancelMatrix(id string) error {
	if s.matrix == nil {
		return compare.ErrNoRun
	}
	return s.matrix.Cancel(id)
}

func (s *Server) handleStartMatrix(w http.ResponseWriter, r *http.Request) {
	if !s.requireMatrix(w) {
		return
	}
	var req MatrixRequest
	if err := s.decode(w, r, &req); err != nil {
		return
	}
	run, code, err := s.startMatrix(req, s.resolveTenant(r))
	if err != nil {
		s.fail(w, code, err)
		return
	}
	writeJSON(w, code, run.Status())
}

func (s *Server) handleListMatrices(w http.ResponseWriter, r *http.Request) {
	if !s.requireMatrix(w) {
		return
	}
	runs := s.matrix.Runs()
	out := make([]compare.Status, len(runs))
	for i, run := range runs {
		out[i] = run.Status()
	}
	compare.SortRunsByID(out)
	writeJSON(w, http.StatusOK, map[string]any{"matrices": out})
}

// matrixWaitTimeout bounds one long-poll round; clients re-poll with the
// returned version. Short of most proxy idle timeouts.
const matrixWaitTimeout = 25 * time.Second

func (s *Server) handleGetMatrix(w http.ResponseWriter, r *http.Request) {
	if !s.requireMatrix(w) {
		return
	}
	run, ok := s.matrix.Get(r.PathValue("id"))
	if !ok {
		s.fail(w, http.StatusNotFound, compare.ErrNoRun)
		return
	}
	q := r.URL.Query()
	switch {
	case q.Get("stream") == "1":
		s.streamMatrix(w, r, run)
	case q.Get("wait") == "1":
		since, err := strconv.ParseInt(q.Get("since"), 10, 64)
		if err != nil {
			// Absent or malformed ?since= long-polls for any change past
			// the current state the client has not seen: version 0 never
			// blocks after the plan phase, so default to "wait for the
			// next change from now".
			since = run.Status().Version
		}
		ctx, cancel := context.WithTimeout(r.Context(), matrixWaitTimeout)
		defer cancel()
		st, _ := run.WaitChange(ctx, since)
		writeJSON(w, http.StatusOK, st)
	default:
		writeJSON(w, http.StatusOK, run.Status())
	}
}

// streamMatrix writes every observable status change as one NDJSON line
// until the run is terminal or the client goes away. Each line is a full
// status snapshot; the last line is the terminal one.
func (s *Server) streamMatrix(w http.ResponseWriter, r *http.Request, run *compare.Run) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	since := int64(-1) // emit the current state first
	for {
		st, err := run.WaitChange(r.Context(), since)
		if err != nil {
			return // client gone
		}
		if encErr := enc.Encode(st); encErr != nil {
			return
		}
		_ = rc.Flush()
		if st.State != compare.RunRunning {
			return
		}
		since = st.Version
	}
}

// handleMatrixCell reads one cell by grid coordinates. With ?exact=1 an
// elided (skipped/bounded) cell is recomputed exactly — through the same
// cache-aware submission path as planned cells, so a cluster or persisted
// cache hit still answers without a job — and the run's status is patched in
// place. The call blocks until the upgraded cell is terminal.
func (s *Server) handleMatrixCell(w http.ResponseWriter, r *http.Request) {
	if !s.requireMatrix(w) {
		return
	}
	run, ok := s.matrix.Get(r.PathValue("id"))
	if !ok {
		s.fail(w, http.StatusNotFound, compare.ErrNoRun)
		return
	}
	i, err := strconv.Atoi(r.PathValue("i"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("cell row %q is not an integer", r.PathValue("i")))
		return
	}
	j, err := strconv.Atoi(r.PathValue("j"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("cell column %q is not an integer", r.PathValue("j")))
		return
	}
	var view compare.CellView
	if r.URL.Query().Get("exact") == "1" {
		view, err = run.UpgradeCell(i, j)
	} else {
		view, err = run.Cell(i, j)
	}
	switch {
	case errors.Is(err, compare.ErrNoCell):
		s.fail(w, http.StatusNotFound, err)
		return
	case errors.Is(err, compare.ErrCellSelf),
		errors.Is(err, compare.ErrCellBusy),
		errors.Is(err, compare.ErrCellNotElided):
		s.fail(w, http.StatusConflict, err)
		return
	case errors.Is(err, store.ErrNotFound):
		s.fail(w, http.StatusNotFound, err)
		return
	case err != nil:
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id": run.ID(), "i": i, "j": j, "cell": view,
	})
}

func (s *Server) handleCancelMatrix(w http.ResponseWriter, r *http.Request) {
	if !s.requireMatrix(w) {
		return
	}
	run, ok := s.matrix.Get(r.PathValue("id"))
	if !ok {
		s.fail(w, http.StatusNotFound, compare.ErrNoRun)
		return
	}
	switch err := run.Cancel(); {
	case errors.Is(err, compare.ErrRunTerminal):
		s.fail(w, http.StatusConflict, err)
	case err != nil:
		s.fail(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusOK, run.Status())
	}
}
