package server

// K-way similarity matrix endpoints over the compare subsystem:
//
//	POST   /matrix       start a run: {"datasets": ["<id>", ...], "name"?: "..."}
//	GET    /matrix       list runs
//	GET    /matrix/{id}  poll one run (K×K cell grid, group aggregate)
//	DELETE /matrix/{id}  cancel a run (cancels its remaining member jobs)
//
// A run plans the K·(K−1)/2 unordered pairwise cells, resolves each through
// the cache-aware job submission path (repeat content — including across
// daemon restarts, via the persisted cache — is never recomputed), and fans
// the rest out as scheduler jobs under one cancellable job group.

import (
	"errors"
	"fmt"
	"net/http"

	"repro/internal/compare"
	"repro/internal/store"
)

// MatrixRequest starts a matrix run over stored datasets.
type MatrixRequest struct {
	Datasets []string `json:"datasets"`
	Name     string   `json:"name,omitempty"`
}

// maxMatrixDatasets caps K; the cell count grows quadratically and
// 16 datasets already mean 120 pairwise jobs.
const maxMatrixDatasets = 16

// checkMatrixRequest validates a matrix request without touching the store.
func checkMatrixRequest(req MatrixRequest) error {
	if len(req.Datasets) < 2 {
		return errors.New("a matrix needs at least 2 datasets")
	}
	if len(req.Datasets) > maxMatrixDatasets {
		return fmt.Errorf("at most %d datasets per matrix", maxMatrixDatasets)
	}
	seen := make(map[string]struct{}, len(req.Datasets))
	for i, id := range req.Datasets {
		if !store.ValidateID(id) {
			return fmt.Errorf("datasets[%d] %q is not a content hash (64 lowercase hex digits)", i, id)
		}
		if _, dup := seen[id]; dup {
			return fmt.Errorf("datasets[%d] %s listed twice", i, id)
		}
		seen[id] = struct{}{}
	}
	return nil
}

// requireMatrix answers 501 when the daemon runs without a store (matrix
// runs exist only over stored datasets).
func (s *Server) requireMatrix(w http.ResponseWriter) bool {
	if s.matrix == nil {
		s.fail(w, http.StatusNotImplemented,
			errors.New("no dataset store configured (start sccgd with -data-dir)"))
		return false
	}
	return true
}

// startMatrix validates and starts a matrix run; code carries the HTTP
// status on failure. Shared by the HTTP handler and SubmitMatrix.
func (s *Server) startMatrix(req MatrixRequest) (run *compare.Run, code int, err error) {
	if s.matrix == nil {
		return nil, http.StatusNotImplemented,
			errors.New("no dataset store configured (start sccgd with -data-dir)")
	}
	if err := checkMatrixRequest(req); err != nil {
		return nil, http.StatusBadRequest, err
	}
	for _, id := range req.Datasets {
		if _, ok := s.store.Get(id); !ok {
			return nil, http.StatusNotFound, fmt.Errorf("dataset %s: %w", id, store.ErrNotFound)
		}
	}
	run, err = s.matrix.Start(req.Name, req.Datasets)
	if err != nil {
		return nil, http.StatusServiceUnavailable, err
	}
	s.matrixRuns.Inc()
	return run, http.StatusAccepted, nil
}

// SubmitMatrix validates and starts a matrix run over the dataset IDs,
// returning the run ID. It is the non-HTTP entry the facade uses.
func (s *Server) SubmitMatrix(ids []string, name string) (string, error) {
	run, _, err := s.startMatrix(MatrixRequest{Datasets: ids, Name: name})
	if err != nil {
		return "", err
	}
	return run.ID(), nil
}

// Matrix returns a run's status snapshot.
func (s *Server) Matrix(id string) (compare.Status, bool) {
	if s.matrix == nil {
		return compare.Status{}, false
	}
	run, ok := s.matrix.Get(id)
	if !ok {
		return compare.Status{}, false
	}
	return run.Status(), true
}

// CancelMatrix cancels a run.
func (s *Server) CancelMatrix(id string) error {
	if s.matrix == nil {
		return compare.ErrNoRun
	}
	return s.matrix.Cancel(id)
}

func (s *Server) handleStartMatrix(w http.ResponseWriter, r *http.Request) {
	if !s.requireMatrix(w) {
		return
	}
	var req MatrixRequest
	if err := s.decode(w, r, &req); err != nil {
		return
	}
	run, code, err := s.startMatrix(req)
	if err != nil {
		s.fail(w, code, err)
		return
	}
	writeJSON(w, code, run.Status())
}

func (s *Server) handleListMatrices(w http.ResponseWriter, r *http.Request) {
	if !s.requireMatrix(w) {
		return
	}
	runs := s.matrix.Runs()
	out := make([]compare.Status, len(runs))
	for i, run := range runs {
		out[i] = run.Status()
	}
	compare.SortRunsByID(out)
	writeJSON(w, http.StatusOK, map[string]any{"matrices": out})
}

func (s *Server) handleGetMatrix(w http.ResponseWriter, r *http.Request) {
	if !s.requireMatrix(w) {
		return
	}
	run, ok := s.matrix.Get(r.PathValue("id"))
	if !ok {
		s.fail(w, http.StatusNotFound, compare.ErrNoRun)
		return
	}
	writeJSON(w, http.StatusOK, run.Status())
}

func (s *Server) handleCancelMatrix(w http.ResponseWriter, r *http.Request) {
	if !s.requireMatrix(w) {
		return
	}
	run, ok := s.matrix.Get(r.PathValue("id"))
	if !ok {
		s.fail(w, http.StatusNotFound, compare.ErrNoRun)
		return
	}
	switch err := run.Cancel(); {
	case errors.Is(err, compare.ErrRunTerminal):
		s.fail(w, http.StatusConflict, err)
	case err != nil:
		s.fail(w, http.StatusInternalServerError, err)
	default:
		writeJSON(w, http.StatusOK, run.Status())
	}
}
