package server

// Progressive-matrix endpoint tests and the run-level pinning regression:
// a retention sweeper hammering a tiny TTL must never evict a dataset out
// from under a started matrix run, long-polls and NDJSON streams must follow
// the run's version counter, and the progressive objectives must round-trip
// through the HTTP surface.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/compare"
	"repro/internal/pathology"
	"repro/internal/retention"
	"repro/internal/sched"
	"repro/internal/store"
)

// ingestShifted stores a generated variant whose polygons are translated by
// (dx, dy): same tile keys as an unshifted variant of the same image, but a
// disjoint spatial cluster, so cross-cluster matrix cells carry bound 0.
func ingestShifted(t *testing.T, st *store.Store, image string, seed int64, tiles int, dx, dy int32) *store.Manifest {
	t.Helper()
	spec := pathology.Representative()
	spec.Name = image
	spec.Seed = seed
	spec.Tiles = tiles
	d := pathology.Generate(spec)
	its := make([]store.IngestTile, 0, len(d.Pairs))
	for _, tp := range d.Pairs {
		it := store.IngestTile{Image: tp.Image, Tile: tp.Index}
		for _, p := range tp.A {
			it.A = append(it.A, p.Translate(dx, dy))
		}
		for _, p := range tp.B {
			it.B = append(it.B, p.Translate(dx, dy))
		}
		its = append(its, it)
	}
	man, err := st.Ingest(image, its)
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	return man
}

// TestMatrixRunPinsDatasets is the run-level pinning regression: a matrix
// run pins all K datasets when it starts, so a TTL sweeper striking in the
// window between run start and a cell's own submission-time pin cannot
// evict a dataset the plan still needs. Pre-fix, later cells failed with
// "dataset not found" whenever a sweep won that race.
func TestMatrixRunPinsDatasets(t *testing.T) {
	st := testStoreAt(t, t.TempDir())
	var ids []string
	for seed := int64(1); seed <= 4; seed++ {
		ids = append(ids, ingestSpec(t, st, "pinned", seed, 2).ID)
	}
	// One device serializes the 6 cells, stretching the start-to-submission
	// window the pins must cover.
	_, _, ts := newTestServer(t, sched.Config{Devices: 1}, Options{Store: st})

	resp, body := postJSON(t, ts.URL+"/matrix", MatrixRequest{Datasets: ids, Name: "pins"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("matrix submit = %d: %s", resp.StatusCode, body)
	}
	var mst compare.Status
	if err := json.Unmarshal(body, &mst); err != nil {
		t.Fatal(err)
	}

	// From the moment the run exists, hammer the store with a sweeper whose
	// TTL has every unpinned dataset instantly overdue.
	engine := retention.New(retention.Config{Store: st,
		Policy: retention.Policy{TTL: time.Millisecond, SweepInterval: 50 * time.Millisecond}})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				engine.Sweep()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	defer func() { close(stop); wg.Wait() }()

	deadline := time.Now().Add(time.Minute)
	for mst.State == compare.RunRunning {
		if time.Now().After(deadline) {
			t.Fatalf("matrix stuck: %+v", mst)
		}
		time.Sleep(5 * time.Millisecond)
		getJSON(t, ts.URL+"/matrix/"+mst.ID, &mst)
	}
	if mst.State != compare.RunDone {
		t.Fatalf("matrix ended %s under a concurrent sweeper: %+v", mst.State, mst.Cells)
	}
	for i := range mst.Cells {
		for j := range mst.Cells[i] {
			if i != j && mst.Cells[i][j].State != compare.CellDone {
				t.Errorf("cell [%d][%d] = %q (%s); a pinned dataset was lost mid-run",
					i, j, mst.Cells[i][j].State, mst.Cells[i][j].Error)
			}
		}
	}

	// Finalize released the run-level pins: the same sweeper now reclaims
	// all four datasets. This is what catches a future pin leak.
	evictDeadline := time.Now().Add(10 * time.Second)
	for st.Len() > 0 {
		if time.Now().After(evictDeadline) {
			t.Fatalf("%d datasets never evicted after the run finished (pins=%d)",
				st.Len(), st.PinnedCount())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestMatrixProgressiveEndpoints drives a top-k run over a spatially skewed
// corpus through the HTTP surface: progressive fields round-trip, the
// version-based long-poll converges on the terminal state, cross-cluster
// cells come back skipped with bound 0, and the NDJSON stream replays to the
// terminal snapshot.
func TestMatrixProgressiveEndpoints(t *testing.T) {
	st := testStoreAt(t, t.TempDir())
	const shift = 1 << 20
	near := []string{
		ingestShifted(t, st, "slideP", 1, 2, 0, 0).ID,
		ingestShifted(t, st, "slideP", 2, 2, 0, 0).ID,
	}
	far := []string{
		ingestShifted(t, st, "slideP", 3, 2, shift, shift).ID,
		ingestShifted(t, st, "slideP", 4, 2, shift, shift).ID,
	}
	all := append(append([]string(nil), near...), far...)
	_, _, ts := newTestServer(t, sched.Config{Devices: 2}, Options{Store: st})

	resp, body := postJSON(t, ts.URL+"/matrix",
		MatrixRequest{Datasets: all, Name: "topk", TopK: 2, Estimate: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("progressive submit = %d: %s", resp.StatusCode, body)
	}
	var mst compare.Status
	if err := json.Unmarshal(body, &mst); err != nil {
		t.Fatal(err)
	}
	if mst.TopK != 2 {
		t.Fatalf("top_k echo = %d, want 2", mst.TopK)
	}

	// Long-poll to terminal: each round passes the last seen version and
	// must come back with a strictly newer one (or the terminal state).
	deadline := time.Now().Add(time.Minute)
	for mst.State == compare.RunRunning {
		if time.Now().After(deadline) {
			t.Fatalf("matrix stuck: %+v", mst)
		}
		prev := mst.Version
		url := fmt.Sprintf("%s/matrix/%s?wait=1&since=%d", ts.URL, mst.ID, prev)
		if r := getJSON(t, url, &mst); r.StatusCode != http.StatusOK {
			t.Fatalf("long-poll = %d", r.StatusCode)
		}
		if mst.State == compare.RunRunning && mst.Version <= prev {
			t.Fatalf("long-poll returned version %d ≤ since %d on a running run", mst.Version, prev)
		}
	}
	if mst.State != compare.RunDone {
		t.Fatalf("matrix ended %s: %+v", mst.State, mst.Cells)
	}

	// The skew decides the split: 2 within-cluster cells are exact, the 4
	// cross-cluster cells are provably empty (bound 0) and skipped.
	if mst.ExactCells != 2 || mst.SkippedCells != 4 || mst.BoundedCells != 0 {
		t.Fatalf("exact/skipped/bounded = %d/%d/%d, want 2/4/0",
			mst.ExactCells, mst.SkippedCells, mst.BoundedCells)
	}
	if mst.PlanTrace == nil || mst.PlanTrace.Stages["bound"] < 0 {
		t.Fatalf("plan trace missing: %+v", mst.PlanTrace)
	}
	for i := range mst.Cells {
		for j := range mst.Cells[i] {
			c := mst.Cells[i][j]
			if i == j {
				continue
			}
			if c.Bound == nil {
				t.Fatalf("cell [%d][%d] has no bound on a progressive run", i, j)
			}
			if c.State == compare.CellSkipped && *c.Bound != 0 {
				t.Errorf("skipped cell [%d][%d] carries bound %v, want 0", i, j, *c.Bound)
			}
			if c.State == compare.CellDone && c.Similarity-*c.Bound > 1e-9 {
				t.Errorf("cell [%d][%d] similarity %v exceeds its bound %v", i, j, c.Similarity, *c.Bound)
			}
		}
	}

	// A long-poll on a terminal run returns immediately even with a stale
	// ?since far ahead of the version counter.
	start := time.Now()
	var again compare.Status
	getJSON(t, fmt.Sprintf("%s/matrix/%s?wait=1&since=%d", ts.URL, mst.ID, mst.Version+1000), &again)
	if again.State != compare.RunDone {
		t.Fatalf("terminal long-poll state = %s", again.State)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("terminal long-poll blocked instead of returning the final state")
	}

	// The NDJSON stream emits at least the current snapshot and closes at
	// the terminal line.
	sresp, err := http.Get(ts.URL + "/matrix/" + mst.ID + "?stream=1")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content-type = %q", ct)
	}
	var last compare.Status
	lines := 0
	sc := bufio.NewScanner(sresp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("stream line %d: %v", lines, err)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 || last.State != compare.RunDone {
		t.Fatalf("stream emitted %d lines, last state %q; want the terminal snapshot", lines, last.State)
	}

	// min_similarity alone (no top_k) skips exactly the provably-empty
	// cross-cluster cells.
	resp, body = postJSON(t, ts.URL+"/matrix",
		MatrixRequest{Datasets: all, MinSimilarity: 0.01})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("min_similarity submit = %d: %s", resp.StatusCode, body)
	}
	var msim compare.Status
	if err := json.Unmarshal(body, &msim); err != nil {
		t.Fatal(err)
	}
	for msim.State == compare.RunRunning {
		time.Sleep(5 * time.Millisecond)
		getJSON(t, ts.URL+"/matrix/"+msim.ID, &msim)
	}
	if msim.State != compare.RunDone || msim.SkippedCells != 4 {
		t.Fatalf("min_similarity run = %s with %d skipped, want done/4", msim.State, msim.SkippedCells)
	}

	// Bipartite axes build an oriented rows×cols grid.
	resp, body = postJSON(t, ts.URL+"/matrix",
		MatrixRequest{SetA: near[:1], SetB: []string{near[1], far[0]}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("bipartite submit = %d: %s", resp.StatusCode, body)
	}
	var bst compare.Status
	if err := json.Unmarshal(body, &bst); err != nil {
		t.Fatal(err)
	}
	for bst.State == compare.RunRunning {
		time.Sleep(5 * time.Millisecond)
		getJSON(t, ts.URL+"/matrix/"+bst.ID, &bst)
	}
	if bst.State != compare.RunDone {
		t.Fatalf("bipartite run ended %s: %+v", bst.State, bst.Cells)
	}
	if len(bst.Cells) != 1 || len(bst.Cells[0]) != 2 {
		t.Fatalf("bipartite grid is %dx%d, want 1x2", len(bst.Cells), len(bst.Cells[0]))
	}
	if len(bst.SetA) != 1 || len(bst.SetB) != 2 || len(bst.Datasets) != 0 {
		t.Fatalf("bipartite axes echo = %v / %v / %v", bst.SetA, bst.SetB, bst.Datasets)
	}

	// Validation at the HTTP boundary.
	for _, bad := range []MatrixRequest{
		{Datasets: all, SetA: near},                  // mixed axes
		{SetA: near},                                 // missing set_b
		{SetA: near, SetB: []string{"nothex"}},       // malformed id
		{Datasets: all, TopK: -1},                    // negative top_k
		{Datasets: all, MinSimilarity: 1.5},          // out-of-range threshold
		{SetA: near, SetB: []string{far[0], far[0]}}, // duplicate in one axis
	} {
		if r, raw := postJSON(t, ts.URL+"/matrix", bad); r.StatusCode != http.StatusBadRequest {
			t.Errorf("matrix %+v = %d, want 400: %s", bad, r.StatusCode, raw)
		}
	}
	unknown := strings.Repeat("ab", 32)
	if r, _ := postJSON(t, ts.URL+"/matrix", MatrixRequest{SetA: near, SetB: []string{unknown}}); r.StatusCode != http.StatusNotFound {
		t.Errorf("bipartite over unknown dataset should 404")
	}
}
