package server

// Metrics federation: GET /metrics?cluster=1 scrapes every peer's
// /internal/metrics through the cluster transport, merges the expositions
// with the local registry's (internal/metrics.Federate — counters and
// histogram series summed, gauges relabelled per peer), and serves one
// cluster-wide exposition. Scrapes are cached briefly so a dashboard
// polling the endpoint doesn't multiply cluster traffic, and a peer that
// stops answering keeps serving its last scrape until it goes stale — a
// flapping peer degrades to slightly-old numbers, not to a hole in the sum.

import (
	"bytes"
	"context"
	"net/http"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/metrics"
)

const (
	// fedScrapeTimeout bounds one peer scrape: an exposition is a memory
	// render, so a slow peer is a down peer.
	fedScrapeTimeout = 2 * time.Second
	// fedFreshFor reuses a completed gather wholesale, absorbing dashboard
	// poll bursts.
	fedFreshFor = 2 * time.Second
	// fedStaleLimit is how long a failed peer's last good scrape keeps
	// counting before it drops out of the federation.
	fedStaleLimit = 30 * time.Second
	// maxFedScrapeBytes bounds one peer's exposition payload.
	maxFedScrapeBytes = 8 << 20
)

// peerScrape is the cached state of one peer's last scrape attempt.
type peerScrape struct {
	exp     *metrics.Exposition
	fetched time.Time // last successful scrape
	lastErr string
	errAt   time.Time
}

type federator struct {
	srv *Server

	mu       sync.Mutex
	scrapes  map[string]*peerScrape
	gathered time.Time
}

func newFederator(srv *Server) *federator {
	return &federator{srv: srv, scrapes: make(map[string]*peerScrape)}
}

// gather refreshes the per-peer scrape cache, fetching all peers in
// parallel. A failure keeps the previous exposition (until fedStaleLimit)
// and records the error.
func (f *federator) gather() {
	f.mu.Lock()
	if time.Since(f.gathered) < fedFreshFor {
		f.mu.Unlock()
		return
	}
	f.gathered = time.Now()
	f.mu.Unlock()

	peers := f.srv.cluster.Peers()
	var wg sync.WaitGroup
	for _, p := range peers {
		wg.Add(1)
		go func(p *cluster.Peer) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), fedScrapeTimeout)
			raw, err := f.srv.cluster.FetchMetrics(ctx, p, maxFedScrapeBytes)
			cancel()
			var exp *metrics.Exposition
			if err == nil {
				exp, err = metrics.ParseText(bytes.NewReader(raw))
			}
			f.mu.Lock()
			ps := f.scrapes[p.Addr()]
			if ps == nil {
				ps = &peerScrape{}
				f.scrapes[p.Addr()] = ps
			}
			if err != nil {
				ps.lastErr = err.Error()
				ps.errAt = time.Now()
			} else {
				ps.exp = exp
				ps.fetched = time.Now()
				ps.lastErr = ""
			}
			f.mu.Unlock()
		}(p)
	}
	wg.Wait()
}

// selfExposition renders and re-parses the local registry, so the local
// node federates through exactly the same path as its peers.
func (f *federator) selfExposition() (*metrics.Exposition, error) {
	var buf bytes.Buffer
	if err := f.srv.reg.WriteText(&buf); err != nil {
		return nil, err
	}
	return metrics.ParseText(&buf)
}

// nodes assembles the label → exposition map for Federate: self plus every
// peer whose last good scrape is still within the staleness limit.
func (f *federator) nodes() (map[string]*metrics.Exposition, error) {
	self, err := f.selfExposition()
	if err != nil {
		return nil, err
	}
	out := map[string]*metrics.Exposition{f.srv.cluster.Self(): self}
	f.mu.Lock()
	for addr, ps := range f.scrapes {
		if ps.exp != nil && time.Since(ps.fetched) < fedStaleLimit {
			out[addr] = ps.exp
		}
	}
	f.mu.Unlock()
	return out, nil
}

func (f *federator) serveFederated(w http.ResponseWriter, r *http.Request) {
	f.gather()
	nodes, err := f.nodes()
	if err != nil {
		f.srv.fail(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = metrics.Federate(w, nodes)
}

// rollup is the /healthz federation block: per-peer scrape freshness from
// the cache only — a liveness probe must not block on peer scrapes. It
// kicks an async refresh when the cache has gone stale so a healthz-only
// consumer still converges.
func (f *federator) rollup() map[string]any {
	f.mu.Lock()
	stale := time.Since(f.gathered) >= fedStaleLimit
	peers := make([]map[string]any, 0, len(f.scrapes))
	included := 1 // self always federates
	for addr, ps := range f.scrapes {
		fresh := ps.exp != nil && time.Since(ps.fetched) < fedStaleLimit
		if fresh {
			included++
		}
		p := map[string]any{"addr": addr, "fresh": fresh}
		if !ps.fetched.IsZero() {
			p["scraped"] = ps.fetched.UTC().Format(time.RFC3339)
		}
		if ps.lastErr != "" {
			p["last_error"] = ps.lastErr
		}
		peers = append(peers, p)
	}
	f.mu.Unlock()
	if stale {
		go f.gather()
	}
	return map[string]any{
		"nodes_federated": included,
		"peer_scrapes":    peers,
	}
}
