package server

// Multi-tenant QoS glue: token-keyed tenant resolution on the public
// surface (and name-keyed on the peer surface), admission control that
// consults the retention engine before the daemon accepts bytes it cannot
// hold, and pin-aware queue aging — the retention engine's escape hatch
// when everything evictable is gone and what remains is pinned only by
// long-queued jobs.
//
// Admission decisions are structured: the response body carries a stable
// machine-readable code next to the human-readable error, and every
// rejection lands in the sccgd_admission_rejected_total{reason} counter.
//
//	413 tenant_bytes      the tenant's byte quota cannot hold the dataset
//	413 tenant_datasets   the tenant's dataset-count quota is reached
//	413 store_full        the dataset cannot fit even after evicting every
//	                      unpinned dataset (it is bigger than the budget
//	                      minus pinned bytes) — retrying cannot help
//	429 store_busy        the dataset would fit, but a synchronous sweep
//	                      could not free enough right now (pins); retry
//	429 tenant_queue      the tenant's queued-job quota is reached
//
// Spec/corpus jobs never 413 on store pressure: the job can run without
// the store, so ingest is skipped and the submission degrades to
// uncached execution (flagged in the response and counted).

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/tenant"
)

// admissionError is a structured admission rejection: code is the stable
// machine-readable reason (also the metrics label), status the HTTP status.
type admissionError struct {
	status int
	code   string
	msg    string
}

func (e *admissionError) Error() string { return e.msg }

// resolveTenant maps a request to its tenant quota: `Authorization: Bearer
// <token>` or the X-Sccg-Token header on the public surface. Unknown and
// absent tokens resolve to the default tenant — multi-tenancy is opt-in,
// an unconfigured daemon treats everyone as one unlimited tenant.
func (s *Server) resolveTenant(r *http.Request) tenant.Quota {
	tok := r.Header.Get("X-Sccg-Token")
	if tok == "" {
		if auth := r.Header.Get("Authorization"); auth != "" {
			if rest, ok := strings.CutPrefix(auth, "Bearer "); ok {
				tok = strings.TrimSpace(rest)
			}
		}
	}
	return s.tenants.Resolve(tok)
}

// peerTenant maps a forwarded /internal/* request to a quota. Peers forward
// the tenant NAME (never the token); a name this node has no config for is
// bounded like anonymous traffic but keeps its identity for accounting.
func (s *Server) peerTenant(r *http.Request) tenant.Quota {
	name := r.Header.Get(tenant.Header)
	if name == "" || !tenant.ValidName(name) {
		return s.tenants.Resolve("")
	}
	if q, ok := s.tenants.ByName(name); ok {
		return q
	}
	q := s.tenants.Resolve("")
	q.Name = name
	return q
}

// rejectAdmission counts and reports one structured admission rejection.
func (s *Server) rejectAdmission(who tenant.Quota, code string, status int, format string, args ...any) *admissionError {
	s.admissionRejected(code)
	return &admissionError{status: status, code: code,
		msg: fmt.Sprintf("tenant %s: ", who.Name) + fmt.Sprintf(format, args...)}
}

func (s *Server) admissionRejected(reason string) {
	s.reg.Counter(metrics.Label("sccgd_admission_rejected_total", "reason", reason)).Inc()
}

// admitTenantBytes enforces the tenant's byte and dataset-count quotas for
// an ingest of `need` more bytes. Exactly-at-quota is full: a tenant whose
// usage+need exceeds MaxBytes gets the 413 before any byte is committed.
func (s *Server) admitTenantBytes(who tenant.Quota, need int64) *admissionError {
	if s.tusage == nil {
		return nil
	}
	u := s.tusage.Usage(who.Name)
	if who.MaxBytes > 0 && u.Bytes+need > int64(who.MaxBytes) {
		return s.rejectAdmission(who, "tenant_bytes", http.StatusRequestEntityTooLarge,
			"ingesting %d bytes would exceed the %d-byte quota (%d in use)",
			need, int64(who.MaxBytes), u.Bytes)
	}
	if who.MaxDatasets > 0 && u.Datasets >= who.MaxDatasets {
		return s.rejectAdmission(who, "tenant_datasets", http.StatusRequestEntityTooLarge,
			"dataset quota of %d reached", who.MaxDatasets)
	}
	return nil
}

// admitStoreBytes enforces the store's global byte budget for an ingest of
// `need` more bytes, synchronously evicting (targeted: exactly the headroom
// needed) before deciding. Returns nil when the bytes may be written; a
// terminal 413 when the dataset cannot fit even after evicting everything
// unpinned; a retryable 429 when eviction was blocked (pins) right now.
func (s *Server) admitStoreBytes(who tenant.Quota, need int64) *admissionError {
	if s.store == nil || s.retention == nil {
		return nil
	}
	budget := s.retention.Policy().MaxBytes
	if budget <= 0 {
		return nil // unbounded store
	}
	if need > budget {
		return s.rejectAdmission(who, "store_full", http.StatusRequestEntityTooLarge,
			"dataset of %d bytes exceeds the store budget of %d bytes", need, budget)
	}
	if s.store.TotalBytes()+need <= budget {
		return nil
	}
	// Over budget with this dataset: evict exactly enough, synchronously,
	// before a byte lands — the budget is a guarantee, not a high-water mark.
	s.retention.SweepFor(need)
	if s.store.TotalBytes()+need <= budget {
		return nil
	}
	if need > budget-s.store.PinnedBytes() {
		// Even an empty (modulo pins) store could not hold it.
		return s.rejectAdmission(who, "store_full", http.StatusRequestEntityTooLarge,
			"dataset of %d bytes cannot fit: store budget %d with %d bytes pinned",
			need, budget, s.store.PinnedBytes())
	}
	return s.rejectAdmission(who, "store_busy", http.StatusTooManyRequests,
		"store at capacity and eviction is blocked by in-flight jobs; retry later")
}

// admitIngest runs the full admission pipeline for an ingest of `need`
// bytes: tenant quotas first (cheap, no side effects), then the global
// budget (may sweep).
func (s *Server) admitIngest(who tenant.Quota, need int64) *admissionError {
	if aerr := s.admitTenantBytes(who, need); aerr != nil {
		return aerr
	}
	return s.admitStoreBytes(who, need)
}

// failAdmission writes a structured admission rejection. 429s advise a
// retry; both shapes carry the machine-readable code and the tenant.
func (s *Server) failAdmission(w http.ResponseWriter, who tenant.Quota, aerr *admissionError) {
	if aerr.status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "5")
	}
	writeJSON(w, aerr.status, map[string]string{
		"error":  aerr.msg,
		"code":   aerr.code,
		"tenant": who.Name,
	})
}

// jobPin records which datasets a queued-or-running job holds pins on, and
// since when — the input to pin-aware queue aging.
type jobPin struct {
	ids       []string
	submitted time.Time
}

// trackJobPins registers a submitted job's dataset pins for the retention
// engine's pinned-pressure callback. No-op for jobs that pin nothing.
func (s *Server) trackJobPins(jobID string, ids []string) {
	if len(ids) == 0 || jobID == "" {
		return
	}
	s.pinsMu.Lock()
	s.jobPins[jobID] = jobPin{ids: ids, submitted: time.Now()}
	s.pinsMu.Unlock()
}

// untrackJobPins drops a terminal job's pin record.
func (s *Server) untrackJobPins(jobID string) {
	s.pinsMu.Lock()
	delete(s.jobPins, jobID)
	s.pinsMu.Unlock()
}

// pinnedPressure is the retention engine's escape hatch: a sweep that is
// still over budget after evicting everything unpinned hands over the IDs
// whose eviction pins blocked. Queued (never running) jobs older than the
// pin-age threshold holding those pins are canceled — their sources release
// the pins at the terminal state — and a positive return tells the sweep to
// run a second eviction pass. Fresh queued jobs and running jobs always
// keep their pins: aging out work the moment it queues would turn disk
// pressure into a denial of service on the queue itself.
func (s *Server) pinnedPressure(blocked []string) int {
	if s.pinAge <= 0 {
		return 0
	}
	blockedSet := make(map[string]struct{}, len(blocked))
	for _, id := range blocked {
		blockedSet[id] = struct{}{}
	}
	cutoff := time.Now().Add(-s.pinAge)
	var victims []string
	s.pinsMu.Lock()
	for jobID, jp := range s.jobPins {
		if jp.submitted.After(cutoff) {
			continue
		}
		for _, id := range jp.ids {
			if _, hit := blockedSet[id]; hit {
				victims = append(victims, jobID)
				break
			}
		}
	}
	s.pinsMu.Unlock()
	aged := 0
	for _, jobID := range victims {
		// CancelQueued refuses running jobs: only work that never started —
		// and has waited past the threshold — yields its pins to the sweep.
		if s.sched.CancelQueued(jobID) {
			aged++
			s.agedOut.Inc()
			s.log.Warn("queued job aged out under disk pressure",
				"job_id", jobID, "pin_age", s.pinAge.String())
		}
	}
	return aged
}

// bandFor picks a submission's QoS band: an explicit request band wins,
// otherwise generated inputs (spec/corpus — they materialize and possibly
// ingest a dataset) run as ingest work and everything else is interactive.
// Matrix cells are batch (set explicitly by the cell submitter).
func bandFor(req JobRequest) (sched.Band, error) {
	if req.Band != "" {
		return sched.ParseBand(req.Band)
	}
	if req.Spec != nil || req.Corpus != "" {
		return sched.BandIngest, nil
	}
	return sched.BandInteractive, nil
}

// submitErrorCode maps a scheduler submission error to its HTTP status.
func submitErrorCode(err error) int {
	switch {
	case errors.Is(err, sched.ErrTenantQueue):
		return http.StatusTooManyRequests
	case errors.Is(err, sched.ErrQueueFull), errors.Is(err, sched.ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusBadRequest
	}
}
