// Package cluster is the peer layer of a multi-node sccgd deployment: any
// node can accept any request, and placement is pure hashing. Rendezvous
// (HRW) hashing on the content key ranks the membership per dataset or
// result, so every node independently agrees on the owners with no
// coordinator, no ring state, and minimal reshuffling when membership
// changes. Because datasets are immutable and content-addressed, a node that
// receives work for data it doesn't hold simply pulls segment+manifest from
// an owner peer and verifies every byte on arrival (store.Import re-checks
// each tile digest), so a corrupt or malicious peer can never poison a
// store. Peer health is tracked per node with exponential retry backoff; a
// cluster degraded to one reachable node degrades to exactly the single-node
// behavior.
package cluster

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/tenant"
	"repro/internal/trace"
)

const (
	defaultProbeInterval = 5 * time.Second
	probeTimeout         = 2 * time.Second
	manifestTimeout      = 15 * time.Second
	segmentTimeout       = 5 * time.Minute
	// maxManifestBytes bounds a peer-served manifest read; manifests are a
	// few hundred bytes per tile, so this is generous without being unbounded.
	maxManifestBytes = 64 << 20

	peerBackoffBase = 500 * time.Millisecond
	peerBackoffMax  = 15 * time.Second
)

// ErrPeerMiss marks a peer answering 404: reachable, just not holding the
// requested resource. Callers move on to the next ranked owner.
var ErrPeerMiss = errors.New("cluster: peer does not hold the resource")

// Normalize canonicalizes a node address to a bare scheme://host base URL,
// so the same node spelled "host:8080", "http://host:8080", or
// "http://host:8080/" always hashes to the same rendezvous scores.
func Normalize(addr string) (string, error) {
	s := strings.TrimSpace(addr)
	if s == "" {
		return "", errors.New("empty address")
	}
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	u, err := url.Parse(s)
	if err != nil {
		return "", err
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("unsupported scheme %q", u.Scheme)
	}
	if u.Host == "" {
		return "", fmt.Errorf("no host in %q", addr)
	}
	if (u.Path != "" && u.Path != "/") || u.RawQuery != "" || u.Fragment != "" {
		return "", fmt.Errorf("address %q must be a bare scheme://host[:port]", addr)
	}
	return u.Scheme + "://" + u.Host, nil
}

// ParsePeers splits a comma-separated -peers value into normalized base
// URLs, deduplicated with order preserved.
func ParsePeers(csv string) ([]string, error) {
	var out []string
	seen := make(map[string]bool)
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		addr, err := Normalize(part)
		if err != nil {
			return nil, fmt.Errorf("cluster: peer %q: %w", part, err)
		}
		if seen[addr] {
			continue
		}
		seen[addr] = true
		out = append(out, addr)
	}
	if len(out) == 0 {
		return nil, errors.New("cluster: peer list names no addresses")
	}
	return out, nil
}

// Peer is one remote node's address plus its tracked health. A peer starts
// optimistically reachable; transport failures push it into an exponential
// backoff window (500ms doubling to 15s) during which the request path skips
// it, while the background prober keeps testing it so recovery is noticed
// within one probe interval.
type Peer struct {
	addr string

	mu       sync.Mutex
	up       bool
	fails    int
	retryAt  time.Time
	lastErr  string
	lastSeen time.Time
}

// Addr returns the peer's normalized base URL.
func (p *Peer) Addr() string { return p.addr }

func (p *Peer) markUp() {
	p.mu.Lock()
	p.up = true
	p.fails = 0
	p.retryAt = time.Time{}
	p.lastErr = ""
	p.lastSeen = time.Now()
	p.mu.Unlock()
}

func (p *Peer) markDown(err error) {
	p.mu.Lock()
	p.up = false
	p.fails++
	backoff := peerBackoffBase << min(p.fails-1, 6)
	if backoff > peerBackoffMax {
		backoff = peerBackoffMax
	}
	p.retryAt = time.Now().Add(backoff)
	p.lastErr = err.Error()
	p.mu.Unlock()
}

// live reports whether the request path should try the peer: it is up, or
// its backoff window has elapsed (one request then acts as the retry probe).
func (p *Peer) live(now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.up || !now.Before(p.retryAt)
}

// Status is one peer's health as reported on /healthz.
type Status struct {
	Addr      string    `json:"addr"`
	Up        bool      `json:"up"`
	LastError string    `json:"last_error,omitempty"`
	LastSeen  time.Time `json:"last_seen,omitempty"`
}

func (p *Peer) status() Status {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Status{Addr: p.addr, Up: p.up, LastError: p.lastErr, LastSeen: p.lastSeen}
}

// Health is the cluster membership block /healthz serves.
type Health struct {
	Advertise string   `json:"advertise"`
	Peers     []Status `json:"peers"`
	Reachable int      `json:"reachable"`
}

// Config configures a cluster node.
type Config struct {
	// Self is this node's base URL as peers reach it (the -advertise flag).
	Self string
	// Peers lists the other nodes' base URLs (the -peers flag). Self is
	// filtered out, so every node can be started with the same full list.
	Peers []string
	// Store receives peer-pulled datasets; required for PullDataset.
	Store *store.Store
	// Registry, when set, receives the sccgd_cluster_* metrics.
	Registry *metrics.Registry
	Logger   *slog.Logger
	// ProbeInterval is the background peer health-check period (default 5s).
	ProbeInterval time.Duration
}

// Node is this process's view of the cluster: static membership, per-peer
// health, and the peer-to-peer pull client. All methods are safe for
// concurrent use; the peer list is immutable after New.
type Node struct {
	self  string
	peers []*Peer
	store *store.Store
	log   *slog.Logger

	client    *http.Client
	stop      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup

	pulls        *metrics.Counter
	pullFailures *metrics.Counter
	pullBytes    *metrics.Counter
	// pullSeconds holds one histogram per configured peer
	// (sccgd_cluster_pull_seconds{peer=...}): membership is static, so the
	// label cardinality is bounded by the peer list.
	pullSeconds map[string]*metrics.Histogram
}

// New builds a cluster node from static membership. The returned node runs a
// background health prober until Close.
func New(cfg Config) (*Node, error) {
	self, err := Normalize(cfg.Self)
	if err != nil {
		return nil, fmt.Errorf("cluster: advertise address: %w", err)
	}
	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	probeEvery := cfg.ProbeInterval
	if probeEvery <= 0 {
		probeEvery = defaultProbeInterval
	}
	n := &Node{
		self:  self,
		store: cfg.Store,
		log:   log.With("component", "cluster"),
		// No client-level timeout: each call bounds itself with a context
		// sized to its transfer (a segment pull may legitimately run minutes).
		client: &http.Client{},
		stop:   make(chan struct{}),
	}
	seen := map[string]bool{self: true}
	for _, raw := range cfg.Peers {
		addr, err := Normalize(raw)
		if err != nil {
			return nil, fmt.Errorf("cluster: peer %q: %w", raw, err)
		}
		if seen[addr] {
			continue // duplicates and self are config echoes, not errors
		}
		seen[addr] = true
		n.peers = append(n.peers, &Peer{addr: addr, up: true})
	}
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	n.pulls = reg.Counter("sccgd_cluster_pulls_total")
	n.pullFailures = reg.Counter("sccgd_cluster_pull_failures_total")
	n.pullBytes = reg.Counter("sccgd_cluster_pull_bytes_total")
	n.pullSeconds = make(map[string]*metrics.Histogram, len(n.peers))
	for _, p := range n.peers {
		n.pullSeconds[p.addr] = reg.Histogram(metrics.Label("sccgd_cluster_pull_seconds", "peer", p.addr))
	}
	reg.GaugeFunc("sccgd_cluster_peers", func() float64 { return float64(len(n.peers)) })
	reg.OnScrape(func(e *metrics.Emitter) {
		reachable := 0
		for _, p := range n.peers {
			up := 0.0
			if p.status().Up {
				up = 1
				reachable++
			}
			e.Gauge(metrics.Label("sccgd_cluster_peer_up", "peer", p.addr), up)
		}
		e.Gauge("sccgd_cluster_peers_reachable", float64(reachable))
	})
	n.wg.Add(1)
	go n.probeLoop(probeEvery)
	return n, nil
}

// Close stops the background prober.
func (n *Node) Close() {
	n.closeOnce.Do(func() { close(n.stop) })
	n.wg.Wait()
}

// Self returns this node's advertised base URL.
func (n *Node) Self() string { return n.self }

// Health reports membership for /healthz: every configured peer with its
// tracked state, plus how many currently answer.
func (n *Node) Health() Health {
	h := Health{Advertise: n.self, Peers: make([]Status, 0, len(n.peers))}
	for _, p := range n.peers {
		st := p.status()
		if st.Up {
			h.Reachable++
		}
		h.Peers = append(h.Peers, st)
	}
	return h
}

// probeLoop checks every peer's /healthz each interval. It probes backed-off
// peers too — the backoff gates the request path, while the prober is the
// recovery mechanism that notices a peer coming back.
func (n *Node) probeLoop(every time.Duration) {
	defer n.wg.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
		}
		for _, p := range n.peers {
			ctx, cancel := context.WithTimeout(context.Background(), probeTimeout)
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.addr+"/healthz", nil)
			if err == nil {
				resp, derr := n.do(req, p)
				if derr == nil {
					io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
					resp.Body.Close()
				}
			}
			cancel()
		}
	}
}

// rendezvousScore is the HRW weight of (node, key): every node computes the
// same scores, so the membership agrees on owner ranking with no shared
// state beyond the peer list itself.
func rendezvousScore(addr, key string) uint64 {
	h := sha256.Sum256([]byte(addr + "\x00" + key))
	return binary.BigEndian.Uint64(h[:8])
}

// Hop is one step of an owner walk: a peer, or this node itself (Peer nil).
type Hop struct {
	Addr string
	Peer *Peer
}

// ranked orders the full membership (self included) by rendezvous score for
// key, best placement first.
func (n *Node) ranked(key string) []Hop {
	hops := make([]Hop, 0, len(n.peers)+1)
	hops = append(hops, Hop{Addr: n.self})
	for _, p := range n.peers {
		hops = append(hops, Hop{Addr: p.addr, Peer: p})
	}
	sort.Slice(hops, func(i, j int) bool {
		si, sj := rendezvousScore(hops[i].Addr, key), rendezvousScore(hops[j].Addr, key)
		if si != sj {
			return si > sj
		}
		return hops[i].Addr < hops[j].Addr
	})
	return hops
}

// Ranked returns the nodes to consult for key, best placement first, with
// peers currently inside their failure-backoff window filtered out. This
// node itself is always present (it is always reachable), so a walk hitting
// the self hop can stop: no better-ranked live peer exists, handle it
// locally.
func (n *Node) Ranked(key string) []Hop {
	now := time.Now()
	all := n.ranked(key)
	out := make([]Hop, 0, len(all))
	for _, h := range all {
		if h.Peer == nil || h.Peer.live(now) {
			out = append(out, h)
		}
	}
	return out
}

// Owner returns key's top-ranked node over the full membership, reachable or
// not — the stable placement a healed cluster converges to.
func (n *Node) Owner(key string) string { return n.ranked(key)[0].Addr }

// do issues one request to a peer and folds the outcome into its health:
// transport errors mark it down (entering backoff), any HTTP response —
// including a 404 — marks it up, because the peer answered. A trace context
// stashed in the request's context.Context (trace.WithContext) is injected
// as the traceparent header here, the single chokepoint every peer call
// passes through, so the remote side can run a child recorder under the
// caller's trace ID.
func (n *Node) do(req *http.Request, p *Peer) (*http.Response, error) {
	if tc := trace.FromContext(req.Context()); !tc.Zero() {
		req.Header.Set(trace.Header, tc.Traceparent())
	}
	// The tenant identity rides the same chokepoint (tenant.WithContext →
	// X-Sccg-Tenant), so work a peer performs on this node's behalf — cell
	// compute, dataset pulls — is scheduled and accounted under the
	// originating tenant, not an anonymous internal identity.
	if name := tenant.FromContext(req.Context()); name != "" && tenant.ValidName(name) {
		req.Header.Set(tenant.Header, name)
	}
	resp, err := n.client.Do(req)
	if err != nil {
		p.markDown(err)
		return nil, err
	}
	p.markUp()
	return resp, nil
}

// decodeJSONResponse maps a peer's HTTP status and decodes a JSON body under
// a size limit. 404 becomes ErrPeerMiss.
func decodeJSONResponse(resp *http.Response, dst any, maxBytes int64) error {
	if resp.StatusCode == http.StatusNotFound {
		return ErrPeerMiss
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("cluster: peer answered %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxBytes)).Decode(dst); err != nil {
		return fmt.Errorf("cluster: decode peer response: %w", err)
	}
	return nil
}

// GetJSON fetches path from a peer and decodes the JSON response into dst,
// updating the peer's health from the outcome. A 404 returns ErrPeerMiss.
func (n *Node) GetJSON(ctx context.Context, p *Peer, path string, dst any, maxBytes int64) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.addr+path, nil)
	if err != nil {
		return err
	}
	resp, err := n.do(req, p)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeJSONResponse(resp, dst, maxBytes)
}

// PostJSON posts a JSON body to a peer and decodes the JSON response into
// dst, updating the peer's health from the outcome.
func (n *Node) PostJSON(ctx context.Context, p *Peer, path string, in, dst any, maxBytes int64) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.addr+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.do(req, p)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeJSONResponse(resp, dst, maxBytes)
}

// DecodeManifest parses and validates a peer-served manifest for dataset id:
// well-formed JSON, ID agreement, and the store's full structural validation
// including the digest-fold-equals-ID check. Peer input is never trusted
// past this point — the segment bytes themselves are verified tile-by-tile
// inside store.Import.
func DecodeManifest(id string, raw []byte) (*store.Manifest, error) {
	var man store.Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("cluster: manifest for %.12s: %w", id, err)
	}
	if man.ID != id {
		return nil, fmt.Errorf("cluster: peer served manifest %.12s for dataset %.12s", man.ID, id)
	}
	if err := man.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: manifest for %.12s: %w", id, err)
	}
	return &man, nil
}

// fetchManifest fetches and validates a peer's manifest. The peer's own
// serving spans (returned in the X-Sccg-Trace response header) accumulate
// into remote when non-nil.
func (n *Node) fetchManifest(ctx context.Context, p *Peer, id string, remote *trace.Trace) (*store.Manifest, error) {
	ctx, cancel := context.WithTimeout(ctx, manifestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.addr+"/internal/datasets/"+id+"/manifest", nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.do(req, p)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	collectHeaderTrace(remote, resp)
	if resp.StatusCode == http.StatusNotFound {
		return nil, ErrPeerMiss
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: peer answered %d for manifest %.12s", resp.StatusCode, id)
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxManifestBytes))
	if err != nil {
		return nil, fmt.Errorf("cluster: read manifest %.12s: %w", id, err)
	}
	return DecodeManifest(id, raw)
}

// fetchSegment streams one peer's segment straight into the local store's
// Import, which size-checks the copy and digest-verifies every tile before
// publishing.
func (n *Node) fetchSegment(ctx context.Context, p *Peer, man *store.Manifest, remote *trace.Trace) error {
	ctx, cancel := context.WithTimeout(ctx, segmentTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.addr+"/internal/datasets/"+man.ID+"/segment", nil)
	if err != nil {
		return err
	}
	resp, err := n.do(req, p)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	collectHeaderTrace(remote, resp)
	if resp.StatusCode == http.StatusNotFound {
		return ErrPeerMiss
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: peer answered %d for segment %.12s", resp.StatusCode, man.ID)
	}
	_, err = n.store.Import(man, resp.Body)
	return err
}

// collectHeaderTrace appends a response's X-Sccg-Trace spans into remote.
// Header spans describe only the peer's pre-stream work (open, validate) —
// headers precede the body, so the transfer itself is the caller's span.
func collectHeaderTrace(remote *trace.Trace, resp *http.Response) {
	if remote == nil {
		return
	}
	if t := trace.DecodeHeaderTrace(resp.Header.Get(trace.ResponseHeader)); t != nil {
		remote.Spans = append(remote.Spans, t.Spans...)
	}
}

// PullResult describes a completed peer pull: the bytes copied (0 when the
// dataset was already local), the peer that served it, and the peer's own
// serving spans for the caller to splice into its trace.
type PullResult struct {
	Bytes  int64
	Peer   string
	Remote *trace.Trace
}

// PullDataset fetches dataset id from the cluster into the local store.
// See PullDatasetCtx for semantics.
func (n *Node) PullDataset(id string) (int64, error) {
	res, err := n.PullDatasetCtx(context.Background(), id)
	return res.Bytes, err
}

// PullDatasetCtx fetches dataset id from the cluster into the local store:
// manifest first, then the raw segment, every byte verified on arrival.
// Owners are tried in rendezvous rank order; a peer serving corrupt bytes
// (digest or decode failure inside Import) is skipped and the next owner
// tried, so one bad replica can neither poison the store nor block the pull.
// A trace context stashed in ctx propagates to the serving peer, whose spans
// come back in the result. When no reachable peer holds the dataset, the
// error wraps store.ErrNotFound.
func (n *Node) PullDatasetCtx(ctx context.Context, id string) (PullResult, error) {
	if n.store == nil {
		return PullResult{}, errors.New("cluster: node has no store")
	}
	if !store.ValidateID(id) {
		return PullResult{}, fmt.Errorf("cluster: %q is not a dataset ID", id)
	}
	if _, ok := n.store.Get(id); ok {
		return PullResult{}, nil
	}
	start := time.Now()
	var lastErr error
	for _, hop := range n.Ranked(id) {
		if hop.Peer == nil {
			continue // self: nothing to pull from
		}
		remote := &trace.Trace{}
		man, err := n.fetchManifest(ctx, hop.Peer, id, remote)
		if err != nil {
			if errors.Is(err, ErrPeerMiss) {
				continue
			}
			n.pullFailures.Inc()
			n.log.Warn("manifest fetch failed", "dataset", id[:12], "peer", hop.Addr, "error", err)
			lastErr = err
			continue
		}
		if err := n.fetchSegment(ctx, hop.Peer, man, remote); err != nil {
			n.pullFailures.Inc()
			n.log.Warn("dataset pull failed", "dataset", id[:12], "peer", hop.Addr, "error", err)
			lastErr = err
			continue
		}
		n.pulls.Inc()
		n.pullBytes.Add(man.SegmentBytes)
		if h := n.pullSeconds[hop.Addr]; h != nil {
			h.ObserveSince(start)
		}
		n.log.Info("dataset pulled", "dataset", id[:12], "peer", hop.Addr, "bytes", man.SegmentBytes)
		if len(remote.Spans) == 0 {
			remote = nil
		}
		return PullResult{Bytes: man.SegmentBytes, Peer: hop.Addr, Remote: remote}, nil
	}
	if lastErr != nil {
		return PullResult{}, fmt.Errorf("cluster: pull dataset %.12s: %w", id, lastErr)
	}
	return PullResult{}, fmt.Errorf("cluster: %w: no reachable peer holds %.12s", store.ErrNotFound, id)
}

// FetchMetrics scrapes one peer's /internal/metrics text exposition, bounded
// by maxBytes, for the federation layer.
func (n *Node) FetchMetrics(ctx context.Context, p *Peer, maxBytes int64) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.addr+"/internal/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.do(req, p)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: peer answered %d for metrics", resp.StatusCode)
	}
	return io.ReadAll(io.LimitReader(resp.Body, maxBytes))
}

// Peers returns the configured peer list (excluding self).
func (n *Node) Peers() []*Peer { return n.peers }
