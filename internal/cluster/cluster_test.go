package cluster_test

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/pathology"
	"repro/internal/store"
)

func TestNormalize(t *testing.T) {
	cases := []struct {
		in, want string
		ok       bool
	}{
		{"host:8080", "http://host:8080", true},
		{"http://host:8080", "http://host:8080", true},
		{"http://host:8080/", "http://host:8080", true},
		{" https://host ", "https://host", true},
		{"", "", false},
		{"ftp://host", "", false},
		{"http://", "", false},
		{"http://host:8080/api", "", false},
		{"http://host:8080?x=1", "", false},
	}
	for _, c := range cases {
		got, err := cluster.Normalize(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("Normalize(%q) = %q, %v; want %q", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("Normalize(%q) = %q; want error", c.in, got)
		}
	}
}

func TestParsePeers(t *testing.T) {
	got, err := cluster.ParsePeers("a:1, http://a:1 ,b:2,,")
	if err != nil {
		t.Fatalf("ParsePeers: %v", err)
	}
	want := []string{"http://a:1", "http://b:2"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("ParsePeers = %v, want %v", got, want)
	}
	if _, err := cluster.ParsePeers(" , "); err == nil {
		t.Fatal("ParsePeers on an empty list: want error")
	}
	if _, err := cluster.ParsePeers("a:1,ftp://b"); err == nil {
		t.Fatal("ParsePeers with a bad scheme: want error")
	}
}

// newNode builds a test node with the background prober effectively parked.
func newNode(t *testing.T, self string, peers []string, st *store.Store) *cluster.Node {
	t.Helper()
	n, err := cluster.New(cluster.Config{
		Self:          self,
		Peers:         peers,
		Store:         st,
		ProbeInterval: time.Hour,
	})
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	t.Cleanup(n.Close)
	return n
}

// TestRendezvousAgreement: every node, ranking the same membership, picks the
// same owner for every key — placement needs no coordinator.
func TestRendezvousAgreement(t *testing.T) {
	addrs := []string{"http://a:1", "http://b:2", "http://c:3"}
	var nodes []*cluster.Node
	for i, self := range addrs {
		peers := append(append([]string(nil), addrs[:i]...), addrs[i+1:]...)
		nodes = append(nodes, newNode(t, self, peers, nil))
	}
	owners := make(map[string]int)
	for _, key := range []string{"k1", "k2", "k3", "k4", "k5", "k6", "k7", "k8", "k9", "k10"} {
		want := nodes[0].Owner(key)
		for _, n := range nodes[1:] {
			if got := n.Owner(key); got != want {
				t.Fatalf("Owner(%q): node %s says %s, node %s says %s",
					key, n.Self(), got, nodes[0].Self(), want)
			}
		}
		owners[want]++
	}
	if len(owners) < 2 {
		t.Fatalf("10 keys all landed on one node: %v", owners)
	}
	// Self is always a live hop, so a walk can always terminate locally.
	for _, n := range nodes {
		found := false
		for _, hop := range n.Ranked("k1") {
			if hop.Peer == nil {
				if hop.Addr != n.Self() {
					t.Fatalf("self hop has addr %s, want %s", hop.Addr, n.Self())
				}
				found = true
			}
		}
		if !found {
			t.Fatalf("Ranked omits the self hop on %s", n.Self())
		}
	}
}

func ingest(t *testing.T, st *store.Store, image string, seed int64, tiles int) *store.Manifest {
	t.Helper()
	spec := pathology.Representative()
	spec.Name = image
	spec.Seed = seed
	spec.Tiles = tiles
	man, err := st.IngestDataset(pathology.Generate(spec))
	if err != nil {
		t.Fatalf("IngestDataset: %v", err)
	}
	return man
}

// servePeer exposes a store's manifest+segment the way a real node does, with
// corrupt optionally flipping one mid-segment byte.
func servePeer(t *testing.T, st *store.Store, corrupt bool) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /internal/datasets/{id}/manifest", func(w http.ResponseWriter, r *http.Request) {
		man, ok := st.Get(r.PathValue("id"))
		if !ok {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(man)
	})
	mux.HandleFunc("GET /internal/datasets/{id}/segment", func(w http.ResponseWriter, r *http.Request) {
		rc, size, err := st.OpenSegment(r.PathValue("id"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		defer rc.Close()
		buf := make([]byte, size)
		if _, err := io.ReadFull(rc, buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if corrupt {
			buf[len(buf)/2] ^= 0xff
		}
		w.Write(buf)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestPullDatasetRejectsCorruptPeer: a peer serving flipped segment bytes is
// caught by per-tile digest verification; the pull fails without leaving any
// partial dataset on disk, and with a good replica present the pull falls
// back and succeeds.
func TestPullDatasetRejectsCorruptPeer(t *testing.T) {
	origin, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	man := ingest(t, origin, "pull-src", 11, 2)

	bad := servePeer(t, origin, true)

	dir := t.TempDir()
	local, err := store.Open(dir)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	n := newNode(t, "http://self:1", []string{bad.URL}, local)
	if _, err := n.PullDataset(man.ID); err == nil {
		t.Fatal("PullDataset from a corrupt peer: want error")
	} else if !strings.Contains(err.Error(), "digest") {
		t.Fatalf("PullDataset error %q does not name the digest check", err)
	}
	if local.Len() != 0 {
		t.Fatalf("corrupt pull published a dataset: store holds %d", local.Len())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, e := range entries {
		t.Fatalf("corrupt pull left %q on disk", e.Name())
	}

	// A good replica behind the corrupt one: the walk skips the poisoned
	// answer and completes from the healthy owner.
	good := servePeer(t, origin, false)
	n2 := newNode(t, "http://self:1", []string{bad.URL, good.URL}, local)
	bytes, err := n2.PullDataset(man.ID)
	if err != nil {
		t.Fatalf("PullDataset with a good replica present: %v", err)
	}
	if bytes != man.SegmentBytes && bytes != 0 {
		t.Fatalf("pulled %d bytes, manifest says %d", bytes, man.SegmentBytes)
	}
	got, ok := local.Get(man.ID)
	if !ok {
		t.Fatal("pulled dataset is not in the local store")
	}
	if got.ID != man.ID || len(got.Tiles) != len(man.Tiles) {
		t.Fatal("pulled manifest does not match the origin")
	}
	// Idempotent: a second pull is a no-op.
	if n, err := n2.PullDataset(man.ID); err != nil || n != 0 {
		t.Fatalf("repeat pull = %d, %v; want 0, nil", n, err)
	}
}

// TestPullDatasetNoHolder: when no reachable peer has the dataset the error
// wraps store.ErrNotFound so HTTP callers answer 404, not 502.
func TestPullDatasetNoHolder(t *testing.T) {
	origin, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	man := ingest(t, origin, "missing", 12, 2)
	empty, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	peer := servePeer(t, empty, false)

	local, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	n := newNode(t, "http://self:1", []string{peer.URL}, local)
	if _, err := n.PullDataset(man.ID); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("PullDataset with no holder = %v, want store.ErrNotFound", err)
	}
}

// TestPeerBackoff: a dead peer drops out of the live ranking after a failed
// request and Health reports it down.
func TestPeerBackoff(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadAddr := dead.URL
	dead.Close() // nothing listens any more

	local, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	origin, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	man := ingest(t, origin, "backoff", 13, 2)

	n := newNode(t, "http://self:1", []string{deadAddr}, local)
	if _, err := n.PullDataset(man.ID); err == nil {
		t.Fatal("PullDataset via a dead peer: want error")
	}
	h := n.Health()
	if h.Reachable != 0 || len(h.Peers) != 1 || h.Peers[0].Up {
		t.Fatalf("Health after transport failure = %+v, want the peer down", h)
	}
	// Inside the backoff window the request path skips the peer entirely.
	for _, hop := range n.Ranked(man.ID) {
		if hop.Peer != nil && hop.Addr == deadAddr {
			t.Fatal("backed-off peer still in the live ranking")
		}
	}
}
