package cluster_test

// FuzzPeerManifest drives the peer-manifest decoder — the first untrusted
// input a pulling node parses — with hostile bytes. The invariant under fuzz:
// DecodeManifest either errors or returns a manifest that names the requested
// ID and passes the store's full structural validation (including the
// digest-fold-equals-ID check), so no fuzzer-crafted manifest can reach
// store.Import claiming content it doesn't have.

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/pathology"
	"repro/internal/store"
)

func FuzzPeerManifest(f *testing.F) {
	fakeID := strings.Repeat("ab", 32)
	f.Add(fakeID, []byte("{"))
	f.Add(fakeID, []byte("null"))
	f.Add(fakeID, []byte(`{"id":"`+fakeID+`"}`))
	f.Add(fakeID, []byte(`{"id":"`+fakeID+`","tiles":[{}]}`))
	f.Add(fakeID, []byte(`{"id":"`+fakeID+`","segment_bytes":-1}`))
	f.Add("not-an-id", []byte(`{"id":"not-an-id","tiles":[]}`))
	f.Add(fakeID, []byte(`{"id":"`+strings.Repeat("cd", 32)+`"}`))

	// One genuinely valid manifest, so the fuzzer explores the accepting path
	// and its mutations probe every validation branch.
	st, err := store.Open(f.TempDir())
	if err != nil {
		f.Fatalf("store.Open: %v", err)
	}
	spec := pathology.Representative()
	spec.Name = "fuzz-seed"
	spec.Seed = 7
	spec.Tiles = 2
	man, err := st.IngestDataset(pathology.Generate(spec))
	if err != nil {
		f.Fatalf("IngestDataset: %v", err)
	}
	raw, err := json.Marshal(man)
	if err != nil {
		f.Fatalf("Marshal: %v", err)
	}
	f.Add(man.ID, raw)

	f.Fuzz(func(t *testing.T, id string, data []byte) {
		man, err := cluster.DecodeManifest(id, data)
		if err != nil {
			return
		}
		if man == nil {
			t.Fatal("nil manifest with nil error")
		}
		if man.ID != id {
			t.Fatalf("accepted manifest for %q when asked for %q", man.ID, id)
		}
		if err := man.Validate(); err != nil {
			t.Fatalf("accepted manifest fails re-validation: %v", err)
		}
	})
}
