package pathology_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/clip"
	"repro/internal/geom"
	"repro/internal/pathology"
	"repro/internal/rtree"
)

func TestGenerateTilePairBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := pathology.DefaultGenConfig()
	tp := pathology.GenerateTilePair(rng, "img", 0, cfg)
	if len(tp.A) == 0 || len(tp.B) == 0 {
		t.Fatalf("empty result sets: %d, %d", len(tp.A), len(tp.B))
	}
	// Drop rate is low: both sets should be near the object count.
	if len(tp.A) < cfg.Objects*3/4 || len(tp.B) < cfg.Objects*3/4 {
		t.Fatalf("too many objects missing: %d, %d of %d", len(tp.A), len(tp.B), cfg.Objects)
	}
	for _, set := range [][]*geom.Polygon{tp.A, tp.B} {
		for _, p := range set {
			m := p.MBR()
			if m.MinX < 0 || m.MinY < 0 || m.MaxX > cfg.TileSize || m.MaxY > cfg.TileSize {
				t.Fatalf("polygon out of tile bounds: %v", m)
			}
			if p.Area() <= 0 {
				t.Fatal("non-positive polygon area")
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := pathology.GenerateTilePair(rand.New(rand.NewSource(9)), "x", 0, pathology.DefaultGenConfig())
	b := pathology.GenerateTilePair(rand.New(rand.NewSource(9)), "x", 0, pathology.DefaultGenConfig())
	if len(a.A) != len(b.A) || len(a.B) != len(b.B) {
		t.Fatal("generation not deterministic in counts")
	}
	for i := range a.A {
		va, vb := a.A[i].Vertices(), b.A[i].Vertices()
		if len(va) != len(vb) {
			t.Fatal("generation not deterministic in shapes")
		}
		for j := range va {
			if va[j] != vb[j] {
				t.Fatal("generation not deterministic in vertices")
			}
		}
	}
}

// TestWorkloadStatistics asserts the generator reproduces the paper's
// polygon statistics (§5.1): mean area ≈ 150 pixels, std deviation ≈ 100.
func TestWorkloadStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	cfg := pathology.DefaultGenConfig()
	var areas []float64
	for tile := 0; tile < 6; tile++ {
		tp := pathology.GenerateTilePair(rng, "stats", tile, cfg)
		for _, p := range append(append([]*geom.Polygon{}, tp.A...), tp.B...) {
			areas = append(areas, float64(p.Area()))
		}
	}
	var sum float64
	for _, a := range areas {
		sum += a
	}
	mean := sum / float64(len(areas))
	var varSum float64
	for _, a := range areas {
		varSum += (a - mean) * (a - mean)
	}
	sd := math.Sqrt(varSum / float64(len(areas)))
	if mean < 90 || mean > 230 {
		t.Fatalf("mean polygon area %v outside the paper's ~150 ballpark", mean)
	}
	if sd < 40 || sd > 200 {
		t.Fatalf("area std dev %v outside the paper's ~100 ballpark", sd)
	}
}

// TestResultSetsOverlap asserts the cross-comparison workload shape: most
// polygons in set A have an MBR-intersecting counterpart in set B, and the
// mean Jaccard ratio of true pairs is high but below 1.
func TestResultSetsOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	tp := pathology.GenerateTilePair(rng, "ov", 0, pathology.DefaultGenConfig())
	ea := make([]rtree.Entry, len(tp.A))
	for i, p := range tp.A {
		ea[i] = rtree.Entry{MBR: p.MBR(), ID: int32(i)}
	}
	eb := make([]rtree.Entry, len(tp.B))
	for i, p := range tp.B {
		eb[i] = rtree.Entry{MBR: p.MBR(), ID: int32(i)}
	}
	ta := rtree.Build(ea, rtree.Options{})
	tb := rtree.Build(eb, rtree.Options{})
	pairs, _ := rtree.Join(ta, tb, nil)
	if len(pairs) < len(tp.A)/2 {
		t.Fatalf("only %d candidate pairs for %d polygons", len(pairs), len(tp.A))
	}
	var ratios []float64
	for _, pr := range pairs {
		if r, ok := clip.JaccardRatio(tp.A[pr.A], tp.B[pr.B]); ok {
			ratios = append(ratios, r)
		}
	}
	if len(ratios) == 0 {
		t.Fatal("no truly intersecting pairs")
	}
	var sum float64
	for _, r := range ratios {
		sum += r
	}
	mean := sum / float64(len(ratios))
	if mean < 0.45 || mean >= 1.0 {
		t.Fatalf("mean Jaccard ratio %v implausible for perturbed re-segmentation", mean)
	}
}

func TestCorpusShape(t *testing.T) {
	corpus := pathology.Corpus()
	if len(corpus) != 18 {
		t.Fatalf("corpus has %d datasets, want 18", len(corpus))
	}
	names := make(map[string]bool)
	for _, spec := range corpus {
		if names[spec.Name] {
			t.Fatalf("duplicate dataset name %q", spec.Name)
		}
		names[spec.Name] = true
		if spec.Tiles <= 0 || spec.Gen.Objects <= 0 {
			t.Fatalf("degenerate spec %+v", spec)
		}
	}
	// Size spread: last dataset much larger than first.
	if corpus[17].Tiles < corpus[0].Tiles*8 {
		t.Fatalf("corpus lacks the paper's size spread: %d vs %d tiles", corpus[0].Tiles, corpus[17].Tiles)
	}
	if pathology.Representative().Name != "oligoastroIII_1" {
		t.Fatal("representative dataset misnamed")
	}
}

func TestGenerateDataset(t *testing.T) {
	spec := pathology.Corpus()[0]
	d := pathology.Generate(spec)
	if len(d.Pairs) != spec.Tiles {
		t.Fatalf("pairs = %d, want %d", len(d.Pairs), spec.Tiles)
	}
	a, b := d.NumPolygons()
	if a == 0 || b == 0 {
		t.Fatal("empty dataset")
	}
}

func TestGlobalPolygonsDisjointTiles(t *testing.T) {
	spec := pathology.Corpus()[0]
	d := pathology.Generate(spec)
	a, b := d.GlobalPolygons()
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("no global polygons")
	}
	// Tile offsets must keep different tiles in disjoint coordinate ranges:
	// polygons from different tiles must never share an MBR overlap region
	// bigger than zero (tiles only touch at borders).
	offsets := make(map[[2]int32]bool)
	for i := 0; i < spec.Tiles; i++ {
		dx, dy := pathology.TileOffset(i, spec.Tiles, spec.Gen.TileSize)
		key := [2]int32{dx, dy}
		if offsets[key] {
			t.Fatalf("tiles %d shares offset %v", i, key)
		}
		offsets[key] = true
	}
}

func TestTileOffsetGrid(t *testing.T) {
	dx, dy := pathology.TileOffset(0, 9, 100)
	if dx != 0 || dy != 0 {
		t.Fatal("tile 0 must sit at origin")
	}
	dx, dy = pathology.TileOffset(4, 9, 100)
	if dx != 100 || dy != 100 {
		t.Fatalf("tile 4 of 9 at (%d,%d), want (100,100)", dx, dy)
	}
}
