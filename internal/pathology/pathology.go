// Package pathology is the segmentation simulator that substitutes for the
// paper's proprietary brain-tumour whole-slide images (see DESIGN.md §1).
//
// A whole-slide image is modelled as a set of image tiles. For each tile the
// generator synthesises nucleus-like objects — noisy radial blobs rasterised
// onto the tile's integer pixel grid — and traces each blob's boundary into
// a simple rectilinear polygon, exactly the structure produced by real
// segmentation algorithms on raster images (paper §3.1). Two "segmentation
// result sets" per image are produced by re-segmenting the same ground-truth
// blobs with perturbed parameters, yielding the heavily-overlapping polygon
// pairs that cross-comparison consumes; a configurable fraction of objects
// is dropped from or added to either set to model missing polygons (§2.1).
//
// The generated corpus matches the paper's workload statistics: mean polygon
// area ≈ 150 pixels with standard deviation ≈ 100, thousands of polygons per
// tile group, and an 18-dataset spread of sizes (scaled down ~50x so the full
// suite runs on a laptop core; see pathology.Corpus).
package pathology

import (
	"math"
	"math/rand"

	"repro/internal/clip"
	"repro/internal/geom"
)

// Tile is one image tile's worth of segmented polygons from one algorithm.
type Tile struct {
	// Image and Index identify the tile within its slide image.
	Image string
	Index int
	// Polygons are the segmented object boundaries.
	Polygons []*geom.Polygon
}

// TilePair is the unit of cross-comparison work: the two result sets
// segmented from the same image tile by two different methods.
type TilePair struct {
	Image string
	Index int
	A, B  []*geom.Polygon
}

// GenConfig controls blob synthesis for one tile.
type GenConfig struct {
	// TileSize is the tile's square edge length in pixels.
	TileSize int32
	// Objects is the number of ground-truth objects per tile.
	Objects int
	// MeanRadius and RadiusSigma shape the blob radius distribution; the
	// defaults target the paper's mean polygon area of ~150 pixels.
	MeanRadius  float64
	RadiusSigma float64
	// Noise is the relative radial boundary noise amplitude (0..1).
	Noise float64
	// Jitter perturbs the second segmentation: centre shift in pixels and
	// relative radius change.
	JitterShift  float64
	JitterRadius float64
	// DropRate is the probability that an object is missing from one of
	// the two result sets.
	DropRate float64
}

// DefaultGenConfig returns generation parameters matching the paper's
// polygon statistics.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		TileSize:     512,
		Objects:      48,
		MeanRadius:   6.9, // pi*r^2 ~ 150 pixels
		RadiusSigma:  2.2,
		Noise:        0.25,
		JitterShift:  1.5,
		JitterRadius: 0.12,
		DropRate:     0.04,
	}
}

// blob is a ground-truth object prior to rasterisation.
type blob struct {
	cx, cy float64
	radius float64
	// phase and lobes parameterise the angular noise so a re-segmentation
	// of the same blob stays correlated with the original.
	phase float64
	lobes int
	amp   float64
}

// GenerateTilePair synthesises one tile's ground truth and segments it with
// two perturbed parameter sets, returning the two polygon result sets. The
// generator is fully deterministic given rng's state.
func GenerateTilePair(rng *rand.Rand, image string, index int, cfg GenConfig) TilePair {
	blobs := groundTruth(rng, cfg)
	a := make([]*geom.Polygon, 0, len(blobs))
	b := make([]*geom.Polygon, 0, len(blobs))
	for _, bl := range blobs {
		dropA := rng.Float64() < cfg.DropRate
		dropB := rng.Float64() < cfg.DropRate
		if !dropA {
			if p := rasterize(bl, cfg.TileSize); p != nil {
				a = append(a, p)
			}
		}
		if !dropB {
			jb := bl
			jb.cx += rng.NormFloat64() * cfg.JitterShift
			jb.cy += rng.NormFloat64() * cfg.JitterShift
			jb.radius *= 1 + rng.NormFloat64()*cfg.JitterRadius
			jb.phase += rng.NormFloat64() * 0.15
			if p := rasterize(jb, cfg.TileSize); p != nil {
				b = append(b, p)
			}
		}
	}
	return TilePair{Image: image, Index: index, A: a, B: b}
}

// groundTruth places blobs on a jittered grid so that objects rarely overlap
// within one result set, as segmented nuclei rarely do.
func groundTruth(rng *rand.Rand, cfg GenConfig) []blob {
	// Grid with one candidate cell per object and ~30% slack.
	cells := int(math.Ceil(math.Sqrt(float64(cfg.Objects) * 1.3)))
	cellSize := float64(cfg.TileSize) / float64(cells)
	order := rng.Perm(cells * cells)
	blobs := make([]blob, 0, cfg.Objects)
	for _, c := range order {
		if len(blobs) >= cfg.Objects {
			break
		}
		gx, gy := c%cells, c/cells
		r := cfg.MeanRadius + rng.NormFloat64()*cfg.RadiusSigma
		if r < 2.0 {
			r = 2.0
		}
		margin := r + 2
		if margin*2 >= cellSize {
			margin = cellSize / 2.5
		}
		blobs = append(blobs, blob{
			cx:     float64(gx)*cellSize + margin + rng.Float64()*(cellSize-2*margin),
			cy:     float64(gy)*cellSize + margin + rng.Float64()*(cellSize-2*margin),
			radius: r,
			phase:  rng.Float64() * 2 * math.Pi,
			lobes:  3 + rng.Intn(4),
			amp:    cfg.Noise * (0.5 + rng.Float64()),
		})
	}
	return blobs
}

// rasterize renders a blob onto the pixel grid and traces the boundary of
// its largest connected component into a rectilinear polygon. Returns nil
// when the blob rasterises to nothing useful (off-tile or sub-pixel).
func rasterize(bl blob, tileSize int32) *geom.Polygon {
	rMax := bl.radius * (1 + bl.amp) // conservative outer bound
	x0 := int32(math.Floor(bl.cx - rMax - 1))
	y0 := int32(math.Floor(bl.cy - rMax - 1))
	x1 := int32(math.Ceil(bl.cx + rMax + 1))
	y1 := int32(math.Ceil(bl.cy + rMax + 1))
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > tileSize {
		x1 = tileSize
	}
	if y1 > tileSize {
		y1 = tileSize
	}
	w, h := int(x1-x0), int(y1-y0)
	if w <= 0 || h <= 0 {
		return nil
	}
	mask := make([]bool, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			px := float64(x0+int32(x)) + 0.5
			py := float64(y0+int32(y)) + 0.5
			dx, dy := px-bl.cx, py-bl.cy
			d := math.Hypot(dx, dy)
			θ := math.Atan2(dy, dx)
			rθ := bl.radius * (1 + bl.amp*math.Sin(float64(bl.lobes)*θ+bl.phase))
			if d <= rθ {
				mask[y*w+x] = true
			}
		}
	}
	keepLargestComponent(mask, w, h)
	fillHoles(mask, w, h)
	rects := maskToRects(mask, w, h, x0, y0)
	if len(rects) == 0 {
		return nil
	}
	rings := clip.RegionToRings(rects)
	var best *clip.Ring
	for i := range rings {
		if rings[i].IsHole() {
			continue
		}
		if best == nil || rings[i].SignedArea > best.SignedArea {
			best = &rings[i]
		}
	}
	if best == nil {
		return nil
	}
	poly, err := best.Polygon()
	if err != nil {
		return nil
	}
	return poly
}

// keepLargestComponent clears all but the biggest 4-connected component.
func keepLargestComponent(mask []bool, w, h int) {
	labels := make([]int32, w*h)
	var sizes []int32
	var stack []int32
	next := int32(0)
	for i := range mask {
		if !mask[i] || labels[i] != 0 {
			continue
		}
		next++
		size := int32(0)
		stack = append(stack[:0], int32(i))
		labels[i] = next
		for len(stack) > 0 {
			c := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			x, y := int(c)%w, int(c)/w
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := x+d[0], y+d[1]
				if nx < 0 || ny < 0 || nx >= w || ny >= h {
					continue
				}
				ni := int32(ny*w + nx)
				if mask[ni] && labels[ni] == 0 {
					labels[ni] = next
					stack = append(stack, ni)
				}
			}
		}
		sizes = append(sizes, size)
	}
	if len(sizes) <= 1 {
		return
	}
	bestLabel := int32(1)
	for l, s := range sizes {
		if s > sizes[bestLabel-1] {
			bestLabel = int32(l + 1)
		}
	}
	for i := range mask {
		if mask[i] && labels[i] != bestLabel {
			mask[i] = false
		}
	}
}

// fillHoles sets to true every false pixel not reachable from the bounding
// box border, making the blob simply connected so its boundary is a single
// ring.
func fillHoles(mask []bool, w, h int) {
	outside := make([]bool, w*h)
	var stack []int32
	push := func(x, y int) {
		i := int32(y*w + x)
		if !mask[i] && !outside[i] {
			outside[i] = true
			stack = append(stack, i)
		}
	}
	for x := 0; x < w; x++ {
		push(x, 0)
		push(x, h-1)
	}
	for y := 0; y < h; y++ {
		push(0, y)
		push(w-1, y)
	}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		x, y := int(c)%w, int(c)/w
		for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			nx, ny := x+d[0], y+d[1]
			if nx >= 0 && ny >= 0 && nx < w && ny < h {
				push(nx, ny)
			}
		}
	}
	for i := range mask {
		if !mask[i] && !outside[i] {
			mask[i] = true
		}
	}
}

// maskToRects converts a pixel mask into row-run rectangles in tile
// coordinates.
func maskToRects(mask []bool, w, h int, x0, y0 int32) []geom.MBR {
	var rects []geom.MBR
	for y := 0; y < h; y++ {
		x := 0
		for x < w {
			if !mask[y*w+x] {
				x++
				continue
			}
			start := x
			for x < w && mask[y*w+x] {
				x++
			}
			rects = append(rects, geom.MBR{
				MinX: x0 + int32(start), MinY: y0 + int32(y),
				MaxX: x0 + int32(x), MaxY: y0 + int32(y) + 1,
			})
		}
	}
	return rects
}
