package pathology

import "repro/internal/geom"

// TileOffset returns the global pixel offset of tile index within a dataset
// laid out on a near-square grid of tiles, the arrangement whole-slide
// imaging uses when partitioning a slide into tiles (paper §2.1).
func TileOffset(index, tiles int, tileSize int32) (dx, dy int32) {
	cols := 1
	for cols*cols < tiles {
		cols++
	}
	return int32(index%cols) * tileSize, int32(index/cols) * tileSize
}

// GlobalPolygons returns the dataset's two result sets with every polygon
// translated into the slide image's global coordinate space, the form in
// which an SDBMS stores them (one table per result set covering the whole
// image).
func (d *Dataset) GlobalPolygons() (a, b []*geom.Polygon) {
	for _, tp := range d.Pairs {
		dx, dy := TileOffset(tp.Index, d.Spec.Tiles, d.Spec.Gen.TileSize)
		for _, p := range tp.A {
			a = append(a, p.Translate(dx, dy))
		}
		for _, p := range tp.B {
			b = append(b, p.Translate(dx, dy))
		}
	}
	return a, b
}

// RawBytes returns the total raw text size of the dataset (both result
// sets), the quantity throughput is normalised by in Fig. 11.
func (d *Dataset) RawBytes(encode func([]*geom.Polygon) []byte) int64 {
	var total int64
	for _, tp := range d.Pairs {
		total += int64(len(encode(tp.A)) + len(encode(tp.B)))
	}
	return total
}
