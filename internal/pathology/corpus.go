package pathology

import (
	"fmt"
	"math/rand"
)

// DatasetSpec describes one synthetic slide-image dataset: a group of tiles
// segmented by two methods, the unit over which the paper reports Fig. 12.
type DatasetSpec struct {
	// Name identifies the dataset (the paper's datasets are named after
	// slide images, e.g. "oligoastroIII_1").
	Name string
	// Seed makes generation deterministic per dataset.
	Seed int64
	// Tiles is the number of image tiles (each contributes two polygon
	// files, one per result set).
	Tiles int
	// Gen holds the per-tile synthesis parameters.
	Gen GenConfig
}

// Dataset is a fully generated dataset held in memory.
type Dataset struct {
	Spec  DatasetSpec
	Pairs []TilePair
}

// NumPolygons returns the total polygon count over both result sets.
func (d *Dataset) NumPolygons() (a, b int) {
	for _, tp := range d.Pairs {
		a += len(tp.A)
		b += len(tp.B)
	}
	return a, b
}

// Generate materialises the dataset described by spec.
func Generate(spec DatasetSpec) *Dataset {
	rng := rand.New(rand.NewSource(spec.Seed))
	d := &Dataset{Spec: spec}
	d.Pairs = make([]TilePair, spec.Tiles)
	for i := 0; i < spec.Tiles; i++ {
		d.Pairs[i] = GenerateTilePair(rng, spec.Name, i, spec.Gen)
	}
	return d
}

// Representative returns the spec of the corpus dataset playing the role of
// the paper's oligoastroIII_1: the mid-size dataset used by the algorithm
// experiments (Figs. 7-10, Table 1, Fig. 11).
func Representative() DatasetSpec { return Corpus()[5] }

// Corpus returns the 18-dataset synthetic corpus mirroring the paper's
// evaluation data (§5.1): datasets differ widely in tile count and polygon
// count — the first is the smallest ("20 polygon files, about 57000
// polygons"), the last the largest ("442 polygon files, over 4 million
// polygons") — with everything scaled down ~50x so the suite runs on one
// host core in minutes.
func Corpus() []DatasetSpec {
	base := DefaultGenConfig()
	// Tile counts spread roughly like the paper's file counts (20..442
	// files => 10..221 tiles, scaled to 4..44 tiles) and object densities
	// vary mildly between slides.
	shapes := []struct {
		tiles   int
		objects int
	}{
		{4, 36},  // 1: smallest
		{6, 40},  // 2
		{8, 44},  // 3
		{10, 40}, // 4
		{12, 48}, // 5
		{14, 52}, // 6: "oligoastroIII_1" analogue (Representative)
		{12, 40}, // 7
		{16, 44}, // 8
		{18, 48}, // 9
		{20, 52}, // 10
		{22, 44}, // 11
		{24, 48}, // 12
		{26, 40}, // 13
		{28, 52}, // 14
		{32, 48}, // 15
		{36, 44}, // 16
		{40, 48}, // 17
		{44, 52}, // 18: largest
	}
	specs := make([]DatasetSpec, len(shapes))
	for i, s := range shapes {
		gen := base
		gen.Objects = s.objects
		specs[i] = DatasetSpec{
			Name:  datasetName(i),
			Seed:  0x5CC6 + int64(i)*7919,
			Tiles: s.tiles,
			Gen:   gen,
		}
	}
	return specs
}

func datasetName(i int) string {
	if i == 5 {
		return "oligoastroIII_1"
	}
	return fmt.Sprintf("astro_%02d", i+1)
}
