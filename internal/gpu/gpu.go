// Package gpu provides a SIMT GPU simulator: the hardware substitution that
// lets this pure-Go reproduction run the paper's CUDA experiments without a
// physical GPU (see DESIGN.md §1).
//
// Kernels written against this package execute their real computation on the
// host — results are bit-exact — while charging a calibrated cycle cost model
// for every vector operation: warp-granularity instruction issue (idle SIMD
// lanes still consume issue slots), shared-memory accesses with bank-conflict
// serialisation, global-memory transactions whose latency is hidden in
// proportion to resident-warp occupancy, and __syncthreads barriers. Block
// scheduling across SMs, occupancy limits, per-launch overhead, exclusive
// device ownership, and PCIe transfer costs are modelled at the device level.
//
// The model is deliberately Fermi-shaped (GTX 580 / Tesla M2050 are the
// paper's devices) but parameterised, so experiments can de-tune or resize
// the device as the paper does in §5.6.
package gpu

import (
	"fmt"
	"sync"
)

// Config describes a virtual GPU device.
type Config struct {
	Name            string
	SMs             int     // streaming multiprocessors
	CoresPerSM      int     // CUDA cores per SM (= warp instruction width)
	ClockHz         float64 // shader clock
	WarpSize        int     // threads per warp
	SharedMemBanks  int     // shared memory banks
	SharedMemPerSM  int     // bytes of shared memory per SM
	MaxThreadsPerSM int     // occupancy limit: resident threads
	MaxBlocksPerSM  int     // occupancy limit: resident blocks
	SharedLatency   int     // cycles per conflict-free shared access
	L1Latency       int     // cycles per L1-cached global access
	// CPI is the effective cycles per issued warp instruction. Fermi SMs
	// can issue one warp instruction per cycle only with enough independent
	// warps to cover the ~18-22 cycle arithmetic pipeline; the dependent
	// integer chains of geometry kernels at moderate occupancy sustain
	// roughly a quarter of peak issue.
	CPI             float64
	GlobalLatency   int     // cycles raw latency of a global transaction
	GlobalBandwidth float64 // device memory bandwidth, bytes/s
	SyncCycles      int     // cycles per __syncthreads barrier
	LaunchOverhead  float64 // seconds of fixed kernel-launch cost
	PCIeLatency     float64 // seconds of fixed host-device transfer cost
	PCIeBandwidth   float64 // host-device bandwidth, bytes/s
}

// GTX580 returns the configuration of the NVIDIA GeForce GTX 580 in the
// paper's Dell T1500 workstation (Fermi GF110: 16 SMs x 32 cores, 1.544 GHz
// shader clock, 48 KiB shared memory, 192 GB/s).
func GTX580() Config {
	return Config{
		Name:            "GeForce GTX 580",
		SMs:             16,
		CoresPerSM:      32,
		ClockHz:         1.544e9,
		WarpSize:        32,
		SharedMemBanks:  32,
		SharedMemPerSM:  48 << 10,
		MaxThreadsPerSM: 1536,
		MaxBlocksPerSM:  8,
		SharedLatency:   2,
		L1Latency:       18,
		CPI:             4,
		GlobalLatency:   400,
		GlobalBandwidth: 192e9,
		SyncCycles:      30,
		LaunchOverhead:  6e-6,
		PCIeLatency:     10e-6,
		PCIeBandwidth:   6e9,
	}
}

// TeslaM2050 returns the configuration of the NVIDIA Tesla M2050 in the
// paper's Amazon EC2 instance (Fermi GF100: 14 SMs x 32 cores, 1.15 GHz,
// 148 GB/s).
func TeslaM2050() Config {
	return Config{
		Name:            "Tesla M2050",
		SMs:             14,
		CoresPerSM:      32,
		ClockHz:         1.15e9,
		SharedMemBanks:  32,
		WarpSize:        32,
		SharedMemPerSM:  48 << 10,
		MaxThreadsPerSM: 1536,
		MaxBlocksPerSM:  8,
		SharedLatency:   2,
		L1Latency:       20,
		CPI:             4,
		GlobalLatency:   440,
		GlobalBandwidth: 148e9,
		SyncCycles:      30,
		LaunchOverhead:  6e-6,
		PCIeLatency:     10e-6,
		PCIeBandwidth:   5e9,
	}
}

// Counters aggregates the cost-model activity of a kernel launch, broken
// down by hardware resource. All values are in SM cycles except where noted.
type Counters struct {
	ALUCycles      float64 // warp instruction issue
	SharedCycles   float64 // shared-memory access (conflict-free part)
	ConflictCycles float64 // extra serialisation from bank conflicts
	GlobalCycles   float64 // global/L1 access latency after hiding
	SyncCycles     float64 // barrier cost
	GlobalBytes    int64   // bytes moved to/from device memory
	Barriers       int64   // number of __syncthreads executed
	WarpInstrs     int64   // warp instructions issued
}

// Total returns the summed cycle cost.
func (c *Counters) Total() float64 {
	return c.ALUCycles + c.SharedCycles + c.ConflictCycles + c.GlobalCycles + c.SyncCycles
}

func (c *Counters) add(o *Counters) {
	c.ALUCycles += o.ALUCycles
	c.SharedCycles += o.SharedCycles
	c.ConflictCycles += o.ConflictCycles
	c.GlobalCycles += o.GlobalCycles
	c.SyncCycles += o.SyncCycles
	c.GlobalBytes += o.GlobalBytes
	c.Barriers += o.Barriers
	c.WarpInstrs += o.WarpInstrs
}

// LaunchResult reports the outcome of a kernel launch.
type LaunchResult struct {
	DeviceSeconds  float64  // modelled execution time on the device
	Cycles         float64  // busiest-SM cycle count
	Blocks         int      // grid size
	ResidentBlocks int      // blocks resident per SM under occupancy limits
	Counters       Counters // aggregate activity
}

// Device is a virtual GPU. Launching kernels is serialised — a GPU is an
// exclusive, non-preemptive compute device (paper §4) — and each launch
// advances the device's busy-time accounting.
type Device struct {
	cfg Config

	mu        sync.Mutex
	busy      float64 // total modelled busy seconds
	launches  int64
	transfers int64
	moved     int64 // bytes over PCIe
}

// NewDevice creates a virtual device from a configuration.
func NewDevice(cfg Config) *Device { return &Device{cfg: cfg} }

// NewDevices creates a pool of n independent virtual devices sharing one
// configuration — the executor set a hybrid aggregator drives.
func NewDevices(n int, cfg Config) []*Device {
	out := make([]*Device, n)
	for i := range out {
		out[i] = NewDevice(cfg)
	}
	return out
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// BusySeconds returns the accumulated modelled busy time.
func (d *Device) BusySeconds() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.busy
}

// Launches returns the number of kernel launches executed.
func (d *Device) Launches() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.launches
}

// Snapshot is a point-in-time copy of a device's cumulative accounting.
type Snapshot struct {
	BusySeconds float64
	Launches    int64
	Transfers   int64
	BytesMoved  int64 // bytes over PCIe
}

// Stats returns the device's cumulative accounting in one consistent read,
// so callers bracketing a run (e.g. the scheduler attributing shard work)
// do not interleave half-updated counters.
func (d *Device) Stats() Snapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Snapshot{
		BusySeconds: d.busy,
		Launches:    d.launches,
		Transfers:   d.transfers,
		BytesMoved:  d.moved,
	}
}

// Kernel is the body of a GPU kernel: it is invoked once per thread block
// and must perform its computation through (or alongside) the Block's
// cost-charging primitives.
type Kernel func(b *Block)

// Launch executes kernel over a grid of gridDim blocks of blockDim threads,
// with shmemPerBlock bytes of shared memory per block, and returns the
// modelled execution result. The computation runs for real on the host; the
// returned DeviceSeconds is the simulated device time.
func (d *Device) Launch(gridDim, blockDim, shmemPerBlock int, kernel Kernel) LaunchResult {
	if gridDim <= 0 || blockDim <= 0 {
		return LaunchResult{}
	}
	cfg := d.cfg
	resident := occupancy(cfg, blockDim, shmemPerBlock)
	warps := (blockDim + cfg.WarpSize - 1) / cfg.WarpSize
	residentWarps := resident * warps
	if residentWarps < 1 {
		residentWarps = 1
	}
	// Latency hiding: a transaction's exposed latency shrinks as more warps
	// are resident to cover it, but never below the L1 pipeline depth.
	effGlobal := float64(cfg.GlobalLatency) / float64(residentWarps)
	if effGlobal < float64(cfg.SharedLatency) {
		effGlobal = float64(cfg.SharedLatency)
	}
	effL1 := float64(cfg.L1Latency) / float64(residentWarps)
	if effL1 < float64(cfg.SharedLatency) {
		effL1 = float64(cfg.SharedLatency)
	}

	smCycles := make([]float64, cfg.SMs)
	var agg Counters
	for idx := 0; idx < gridDim; idx++ {
		b := &Block{
			Idx:       idx,
			GridDim:   gridDim,
			BlockDim:  blockDim,
			dev:       d,
			warps:     warps,
			effGlobal: effGlobal,
			effL1:     effL1,
		}
		kernel(b)
		// Round-robin block scheduling across SMs; the busiest SM bounds
		// the launch. (Real hardware load-balances dynamically; round-robin
		// is a faithful approximation for uniform-cost blocks and a
		// conservative one otherwise.)
		sm := idx % cfg.SMs
		smCycles[sm] += b.counters.Total()
		agg.add(&b.counters)
	}
	maxCycles := 0.0
	for _, c := range smCycles {
		if c > maxCycles {
			maxCycles = c
		}
	}
	// Resident blocks on one SM interleave rather than run serially; the
	// cycle counts already charge issue slots, so interleaving does not
	// shorten the critical path — but memory-bound launches are additionally
	// floored by aggregate DRAM bandwidth.
	secs := maxCycles/cfg.ClockHz + cfg.LaunchOverhead
	if bwSecs := float64(agg.GlobalBytes) / cfg.GlobalBandwidth; bwSecs > secs {
		secs = bwSecs
	}

	d.mu.Lock()
	d.busy += secs
	d.launches++
	d.mu.Unlock()

	return LaunchResult{
		DeviceSeconds:  secs,
		Cycles:         maxCycles,
		Blocks:         gridDim,
		ResidentBlocks: resident,
		Counters:       agg,
	}
}

// Transfer models a host-device copy of n bytes and returns its time in
// seconds. Batching many small copies into one large one amortises the fixed
// PCIe latency — the reason the aggregator stage batches its input (§4.1).
func (d *Device) Transfer(n int64) float64 {
	secs := d.cfg.PCIeLatency + float64(n)/d.cfg.PCIeBandwidth
	d.mu.Lock()
	d.transfers++
	d.moved += n
	d.busy += secs
	d.mu.Unlock()
	return secs
}

// occupancy returns how many blocks of blockDim threads using shmemPerBlock
// bytes of shared memory can be resident on one SM.
func occupancy(cfg Config, blockDim, shmemPerBlock int) int {
	resident := cfg.MaxBlocksPerSM
	if byThreads := cfg.MaxThreadsPerSM / blockDim; byThreads < resident {
		resident = byThreads
	}
	if shmemPerBlock > 0 {
		if byShmem := cfg.SharedMemPerSM / shmemPerBlock; byShmem < resident {
			resident = byShmem
		}
	}
	if resident < 1 {
		resident = 1
	}
	return resident
}

// Block is the kernel-side handle: identification plus the cost-charging
// primitives through which a kernel describes the vector operations it has
// just executed on the host.
type Block struct {
	Idx      int // blockIdx.x
	GridDim  int // gridDim.x
	BlockDim int // blockDim.x

	dev       *Device
	warps     int
	effGlobal float64
	effL1     float64
	counters  Counters
}

// Uniform charges ops ALU/branch instructions executed by every thread of
// the block (one issue slot per warp per instruction).
func (b *Block) Uniform(ops int) {
	cpi := b.dev.cfg.CPI
	if cpi <= 0 {
		cpi = 1
	}
	b.counters.ALUCycles += float64(ops) * float64(b.warps) * cpi
	b.counters.WarpInstrs += int64(ops) * int64(b.warps)
}

// Strided charges a block-stride loop over items work items with opsPerItem
// instructions each: threads take ceil(items/blockDim) iterations, and a
// final iteration with fewer items than threads still occupies full warp
// issue slots — the SIMD-waste effect that makes tiny sampling boxes
// inefficient (paper §3.4).
func (b *Block) Strided(items, opsPerItem int) {
	if items <= 0 {
		return
	}
	iters := (items + b.BlockDim - 1) / b.BlockDim
	b.Uniform(iters * opsPerItem)
}

// Divergent charges a two-sided branch whose sides execute thenOps and
// elseOps instructions: under SIMT both sides are serialised for the warp
// whenever lanes disagree, so the charge is the sum.
func (b *Block) Divergent(thenOps, elseOps int) {
	b.Uniform(thenOps + elseOps)
}

// SharedAccess charges n conflict-free shared-memory accesses per thread.
func (b *Block) SharedAccess(n int) {
	c := float64(n) * float64(b.warps) * float64(b.dev.cfg.SharedLatency)
	b.counters.SharedCycles += c
}

// SharedBroadcast charges n shared-memory reads where the whole warp reads
// the same address (hardware broadcasts: one access).
func (b *Block) SharedBroadcast(n int) {
	b.counters.SharedCycles += float64(n) * float64(b.warps) * float64(b.dev.cfg.SharedLatency)
}

// SharedPattern charges one shared-memory access per thread at the given
// word addresses (thread i accesses wordAddrs[i]) and models real bank
// conflicts: within each warp, accesses serialise by the maximum number of
// distinct addresses mapping to one bank.
func (b *Block) SharedPattern(wordAddrs []int32) {
	cfg := b.dev.cfg
	ws := cfg.WarpSize
	for base := 0; base < len(wordAddrs); base += ws {
		end := base + ws
		if end > len(wordAddrs) {
			end = len(wordAddrs)
		}
		perBank := make(map[int32]map[int32]struct{}, cfg.SharedMemBanks)
		for _, a := range wordAddrs[base:end] {
			bank := a % int32(cfg.SharedMemBanks)
			if bank < 0 {
				bank += int32(cfg.SharedMemBanks)
			}
			if perBank[bank] == nil {
				perBank[bank] = make(map[int32]struct{})
			}
			perBank[bank][a] = struct{}{}
		}
		maxWays := 1
		for _, addrs := range perBank {
			if len(addrs) > maxWays {
				maxWays = len(addrs)
			}
		}
		b.counters.SharedCycles += float64(cfg.SharedLatency)
		b.counters.ConflictCycles += float64(cfg.SharedLatency) * float64(maxWays-1)
	}
}

// GlobalRead charges a read of n bytes from device memory, coalesced into
// 128-byte transactions, with latency hidden by occupancy.
func (b *Block) GlobalRead(n int) {
	tx := (n + 127) / 128
	b.counters.GlobalCycles += float64(tx) * b.effGlobal
	b.counters.GlobalBytes += int64(n)
}

// GlobalWrite charges a write of n bytes to device memory.
func (b *Block) GlobalWrite(n int) {
	tx := (n + 127) / 128
	b.counters.GlobalCycles += float64(tx) * b.effGlobal
	b.counters.GlobalBytes += int64(n)
}

// L1Read charges n per-warp reads that hit the L1 cache (repeatedly accessed
// read-only data, e.g. polygon vertices left in global memory).
func (b *Block) L1Read(n int) {
	b.counters.GlobalCycles += float64(n) * float64(b.warps) * b.effL1
}

// Sync charges one __syncthreads barrier.
func (b *Block) Sync() {
	b.counters.SyncCycles += float64(b.dev.cfg.SyncCycles)
	b.counters.Barriers++
}

// String identifies the block for diagnostics.
func (b *Block) String() string {
	return fmt.Sprintf("block %d/%d (dim %d)", b.Idx, b.GridDim, b.BlockDim)
}
