package gpu

import (
	"sync"
	"testing"
)

func TestOccupancyLimits(t *testing.T) {
	cfg := GTX580()
	cases := []struct {
		blockDim, shmem, want int
	}{
		{64, 0, 8},        // capped by MaxBlocksPerSM
		{256, 0, 6},       // capped by threads: 1536/256
		{1536, 0, 1},      // one giant block
		{64, 24 << 10, 2}, // capped by shared memory: 48K/24K
		{64, 48 << 10, 1}, // whole shared memory per block
		{64, 64 << 10, 1}, // oversubscribed still clamps to 1
	}
	for _, c := range cases {
		if got := occupancy(cfg, c.blockDim, c.shmem); got != c.want {
			t.Errorf("occupancy(dim=%d, shmem=%d) = %d, want %d", c.blockDim, c.shmem, got, c.want)
		}
	}
}

func TestLaunchChargesUniform(t *testing.T) {
	dev := NewDevice(GTX580())
	res := dev.Launch(16, 64, 0, func(b *Block) {
		b.Uniform(100)
	})
	// 64 threads = 2 warps; 100 ops * 2 warps * CPI(4) = 800 cycles per
	// block; one block per SM => 800 cycles critical path.
	if res.Cycles != 800 {
		t.Fatalf("cycles = %v, want 800", res.Cycles)
	}
	if res.Counters.WarpInstrs != 16*200 {
		t.Fatalf("warp instrs = %d", res.Counters.WarpInstrs)
	}
	if res.DeviceSeconds <= 0 {
		t.Fatal("no device time")
	}
}

func TestLaunchRoundRobinImbalance(t *testing.T) {
	dev := NewDevice(GTX580())
	// 17 blocks on 16 SMs: SM 0 receives two blocks.
	res := dev.Launch(17, 32, 0, func(b *Block) { b.Uniform(10) })
	if res.Cycles != 80 {
		t.Fatalf("critical path = %v, want 80 (two blocks of 40 cycles on SM0)", res.Cycles)
	}
}

func TestStridedChargesIdleLanes(t *testing.T) {
	dev := NewDevice(GTX580())
	var few, exact float64
	r1 := dev.Launch(1, 64, 0, func(b *Block) { b.Strided(1, 10) })
	few = r1.Cycles
	r2 := dev.Launch(1, 64, 0, func(b *Block) { b.Strided(64, 10) })
	exact = r2.Cycles
	// One item still occupies the whole block's issue slots for one
	// iteration: same cost as 64 items.
	if few != exact {
		t.Fatalf("idle lanes not charged: 1 item %v cycles vs 64 items %v", few, exact)
	}
	r3 := dev.Launch(1, 64, 0, func(b *Block) { b.Strided(65, 10) })
	if r3.Cycles != 2*exact {
		t.Fatalf("65 items should take two iterations: %v vs %v", r3.Cycles, exact)
	}
}

func TestSharedPatternConflicts(t *testing.T) {
	dev := NewDevice(GTX580())
	// Unit-stride: no conflicts.
	unit := make([]int32, 32)
	for i := range unit {
		unit[i] = int32(i)
	}
	r := dev.Launch(1, 32, 0, func(b *Block) { b.SharedPattern(unit) })
	if r.Counters.ConflictCycles != 0 {
		t.Fatalf("unit stride conflicts = %v, want 0", r.Counters.ConflictCycles)
	}
	// Stride 8 with 32 banks: addresses 0,8,16.. map to banks {0,8,16,24}
	// => 8-way conflict.
	strided := make([]int32, 32)
	for i := range strided {
		strided[i] = int32(i * 8)
	}
	r = dev.Launch(1, 32, 0, func(b *Block) { b.SharedPattern(strided) })
	cfg := GTX580()
	wantExtra := float64(cfg.SharedLatency) * 7
	if r.Counters.ConflictCycles != wantExtra {
		t.Fatalf("8-way conflict cycles = %v, want %v", r.Counters.ConflictCycles, wantExtra)
	}
	// Same address across the warp broadcasts: no conflict.
	same := make([]int32, 32)
	r = dev.Launch(1, 32, 0, func(b *Block) { b.SharedPattern(same) })
	if r.Counters.ConflictCycles != 0 {
		t.Fatalf("broadcast conflicts = %v, want 0", r.Counters.ConflictCycles)
	}
}

func TestGlobalLatencyHiding(t *testing.T) {
	cfg := GTX580()
	dev := NewDevice(cfg)
	// Low occupancy: shared memory limits residency to one 2-warp block.
	lo := dev.Launch(1, 64, cfg.SharedMemPerSM, func(b *Block) { b.GlobalRead(128) })
	// High occupancy: eight 2-warp blocks resident.
	hi := dev.Launch(1, 64, 0, func(b *Block) { b.GlobalRead(128) })
	if lo.Counters.GlobalCycles <= hi.Counters.GlobalCycles {
		t.Fatalf("latency hiding inverted: lo=%v hi=%v", lo.Counters.GlobalCycles, hi.Counters.GlobalCycles)
	}
}

func TestBandwidthFloor(t *testing.T) {
	cfg := GTX580()
	dev := NewDevice(cfg)
	// Move 1 GiB with trivial compute: time must be at least bytes/BW.
	res := dev.Launch(16, 64, 0, func(b *Block) {
		b.GlobalRead(64 << 20)
	})
	minSecs := float64(16*(64<<20)) / cfg.GlobalBandwidth
	if res.DeviceSeconds < minSecs {
		t.Fatalf("device time %v below bandwidth floor %v", res.DeviceSeconds, minSecs)
	}
}

func TestSyncCost(t *testing.T) {
	cfg := GTX580()
	dev := NewDevice(cfg)
	res := dev.Launch(1, 64, 0, func(b *Block) {
		for i := 0; i < 10; i++ {
			b.Sync()
		}
	})
	if res.Counters.Barriers != 10 {
		t.Fatalf("barriers = %d", res.Counters.Barriers)
	}
	if res.Counters.SyncCycles != float64(10*cfg.SyncCycles) {
		t.Fatalf("sync cycles = %v", res.Counters.SyncCycles)
	}
}

func TestTransferBatchingAmortisesLatency(t *testing.T) {
	cfg := GTX580()
	one := NewDevice(cfg)
	many := NewDevice(cfg)
	batched := one.Transfer(100 * 1024)
	var split float64
	for i := 0; i < 100; i++ {
		split += many.Transfer(1024)
	}
	if batched >= split {
		t.Fatalf("batched transfer %v not cheaper than split %v", batched, split)
	}
}

func TestDeviceAccounting(t *testing.T) {
	dev := NewDevice(GTX580())
	if dev.BusySeconds() != 0 || dev.Launches() != 0 {
		t.Fatal("fresh device not idle")
	}
	dev.Launch(4, 32, 0, func(b *Block) { b.Uniform(10) })
	dev.Transfer(1 << 20)
	if dev.Launches() != 1 {
		t.Fatalf("launches = %d", dev.Launches())
	}
	if dev.BusySeconds() <= 0 {
		t.Fatal("busy time not recorded")
	}
}

func TestConcurrentLaunchesAreSafe(t *testing.T) {
	dev := NewDevice(GTX580())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dev.Launch(4, 32, 0, func(b *Block) { b.Uniform(5) })
		}()
	}
	wg.Wait()
	if dev.Launches() != 8 {
		t.Fatalf("launches = %d, want 8", dev.Launches())
	}
}

func TestEmptyLaunch(t *testing.T) {
	dev := NewDevice(GTX580())
	res := dev.Launch(0, 64, 0, func(b *Block) { t.Error("kernel ran for empty grid") })
	if res.DeviceSeconds != 0 {
		t.Fatal("empty launch consumed time")
	}
}

func TestConfigs(t *testing.T) {
	g := GTX580()
	m := TeslaM2050()
	if g.SMs != 16 || m.SMs != 14 {
		t.Fatal("SM counts wrong")
	}
	if g.ClockHz <= m.ClockHz {
		t.Fatal("GTX 580 should clock higher than M2050")
	}
}
