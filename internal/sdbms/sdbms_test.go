package sdbms_test

import (
	"math"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/pathology"
	"repro/internal/sdbms"
)

func loadSmallDataset(t *testing.T) (*sdbms.DB, string, string) {
	t.Helper()
	spec := pathology.Corpus()[0]
	d := pathology.Generate(spec)
	a, b := d.GlobalPolygons()
	db := sdbms.NewDB()
	if _, err := db.CreateTable("set_1", a); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("set_2", b); err != nil {
		t.Fatal(err)
	}
	return db, "set_1", "set_2"
}

func TestCreateTableErrors(t *testing.T) {
	db := sdbms.NewDB()
	if _, err := db.CreateTable("t", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("t", nil); err == nil {
		t.Fatal("duplicate table creation succeeded")
	}
	if _, err := db.Table("missing"); err == nil {
		t.Fatal("missing table lookup succeeded")
	}
	db.DropTable("t")
	if _, err := db.Table("t"); err == nil {
		t.Fatal("dropped table still visible")
	}
}

func TestCrossCompareBothFormsAgree(t *testing.T) {
	db, t1, t2 := loadSmallDataset(t)
	unopt, err := db.CrossCompare(t1, t2, sdbms.Unoptimized)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := db.CrossCompare(t1, t2, sdbms.Optimized)
	if err != nil {
		t.Fatal(err)
	}
	// The two query forms are rewrites of the same query: identical
	// results.
	if unopt.IntersectingPairs != opt.IntersectingPairs {
		t.Fatalf("intersecting pairs differ: %d vs %d", unopt.IntersectingPairs, opt.IntersectingPairs)
	}
	if math.Abs(unopt.Similarity-opt.Similarity) > 1e-12 {
		t.Fatalf("similarity differs: %v vs %v", unopt.Similarity, opt.Similarity)
	}
	if opt.Similarity <= 0.4 || opt.Similarity >= 1 {
		t.Fatalf("similarity %v implausible for perturbed re-segmentation", opt.Similarity)
	}
	if opt.CandidatePairs < opt.IntersectingPairs {
		t.Fatal("candidates fewer than intersecting pairs")
	}
}

func TestCrossCompareSelfSimilarityIsOne(t *testing.T) {
	spec := pathology.Corpus()[0]
	d := pathology.Generate(spec)
	a, _ := d.GlobalPolygons()
	db := sdbms.NewDB()
	if _, err := db.CreateTable("a1", a); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("a2", a); err != nil {
		t.Fatal(err)
	}
	res, err := db.CrossCompare("a1", "a2", sdbms.Optimized)
	if err != nil {
		t.Fatal(err)
	}
	// Comparing a result set with itself: every polygon matches itself
	// perfectly, though neighbours may add ratios < 1. J' must be high.
	if res.Similarity < 0.9 {
		t.Fatalf("self similarity %v, want >= 0.9", res.Similarity)
	}
}

// TestProfileShape reproduces the Fig. 2 structure: in the optimised query,
// Area_Of_Intersection dominates; index work stays a small fraction; the
// unoptimised query splits its time across ST_Intersects,
// Area_Of_Intersection and Area_Of_Union.
func TestProfileShape(t *testing.T) {
	db, t1, t2 := loadSmallDataset(t)
	opt, err := db.CrossCompare(t1, t2, sdbms.Optimized)
	if err != nil {
		t.Fatal(err)
	}
	p := opt.Profile
	total := p.Total()
	if total <= 0 {
		t.Fatal("no profiled time")
	}
	if frac := float64(p.AreaOfIntersection) / float64(total); frac < 0.5 {
		t.Fatalf("Area_Of_Intersection fraction %v, want dominant (paper: ~90%%)", frac)
	}
	if frac := float64(p.IndexBuild+p.IndexSearch) / float64(total); frac > 0.3 {
		t.Fatalf("index fraction %v, want small (paper: <6%%)", frac)
	}
	if p.AreaOfUnion != 0 {
		t.Fatal("optimised query must not run ST_Union")
	}
	if p.STIntersects != 0 {
		t.Fatal("optimised query must not run ST_Intersects")
	}

	// Rebuild tables so index build is re-measured for the unoptimised run.
	spec := pathology.Corpus()[0]
	d := pathology.Generate(spec)
	a, b := d.GlobalPolygons()
	db2 := sdbms.NewDB()
	if _, err := db2.CreateTable("u1", a); err != nil {
		t.Fatal(err)
	}
	if _, err := db2.CreateTable("u2", b); err != nil {
		t.Fatal(err)
	}
	unopt, err := db2.CrossCompare("u1", "u2", sdbms.Unoptimized)
	if err != nil {
		t.Fatal(err)
	}
	up := unopt.Profile
	if up.AreaOfUnion == 0 || up.STIntersects == 0 {
		t.Fatal("unoptimised query must run ST_Union and ST_Intersects")
	}
	if up.Total() <= total {
		t.Fatalf("unoptimised query (%v) should be slower than optimised (%v)", up.Total(), total)
	}
}

func TestProfileComponents(t *testing.T) {
	p := sdbms.Profile{IndexBuild: 1, IndexSearch: 2, STIntersects: 3, AreaOfIntersection: 4, AreaOfUnion: 5, STArea: 6, Other: 7}
	if p.Total() != 28 {
		t.Fatalf("total = %v", p.Total())
	}
	comps := p.Components()
	if len(comps) != 7 {
		t.Fatalf("components = %d", len(comps))
	}
	if comps[3].Label != "Area_Of_Intersection" || comps[3].D != 4 {
		t.Fatalf("component order wrong: %+v", comps[3])
	}
}

func TestModelParallelTime(t *testing.T) {
	single := 100 * time.Second
	// 16 streams on 8 cores with 25% SMT yield: 10x.
	got := sdbms.ModelParallelTime(single, 16, 8, 0.25)
	if got != 10*time.Second {
		t.Fatalf("16 streams = %v, want 10s", got)
	}
	// 4 streams on 8 cores: limited by streams.
	if got := sdbms.ModelParallelTime(single, 4, 8, 0.25); got != 25*time.Second {
		t.Fatalf("4 streams = %v", got)
	}
	// Degenerate inputs clamp.
	if got := sdbms.ModelParallelTime(single, 0, 8, 0.25); got != single {
		t.Fatalf("0 streams = %v", got)
	}
}

func TestQueryFormString(t *testing.T) {
	if sdbms.Unoptimized.String() != "unoptimized" || sdbms.Optimized.String() != "optimized" {
		t.Fatal("QueryForm strings")
	}
}

func TestCrossCompareMissingTables(t *testing.T) {
	db := sdbms.NewDB()
	if _, err := db.CrossCompare("a", "b", sdbms.Optimized); err == nil {
		t.Fatal("missing tables should error")
	}
	if _, err := db.CreateTable("a", []*geom.Polygon{geom.Rect(0, 0, 2, 2)}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CrossCompare("a", "b", sdbms.Optimized); err == nil {
		t.Fatal("missing second table should error")
	}
}
