// Package sdbms is a miniature spatial database engine standing in for the
// paper's PostGIS/PostgreSQL baseline (see DESIGN.md §1).
//
// Fidelity to the baseline's cost structure matters as much as to its
// results. Like PostGIS, the engine stores geometries serialized (WKB) with
// a cached bounding box, builds an R-tree index over the boxes, and — the
// expensive part — has every spatial operator call deserialize and validate
// its geometry arguments before computing (package wkb), because that is how
// the PostgreSQL function-call convention works. Spatial computation is
// implemented on the clip package — the GEOS equivalent — and, like PostGIS,
// the executor constructs intersection and union boundaries per tuple rather
// than computing areas directly.
//
// The executor supports the paper's two cross-comparing query forms
// (Fig. 1a and 1b) with per-operator time profiling, reproducing the Fig. 2
// decomposition: in the optimised query, the area of intersection captures
// ~90% of execution time, the bottleneck PixelBox removes.
package sdbms

import (
	"fmt"
	"time"

	"repro/internal/clip"
	"repro/internal/geom"
	"repro/internal/rtree"
	"repro/internal/wkb"
)

// DB is an in-memory spatial database: a catalog of polygon tables.
type DB struct {
	tables map[string]*Table
}

// NewDB creates an empty database.
func NewDB() *DB { return &DB{tables: make(map[string]*Table)} }

// Table is one polygon result set stored as a relation: serialized
// geometries plus their cached bounding boxes (as PostGIS keeps a bbox in
// the geometry header), with an R-tree index over the boxes (the GiST index
// of the PostGIS solution).
type Table struct {
	Name string

	rows [][]byte
	mbrs []geom.MBR

	index     *rtree.Tree
	buildTime time.Duration
}

// CreateTable loads polygons into a new table, serializing them to the
// on-disk form. Loading is not part of query profiling (the paper excludes
// load time); index building is profiled separately via BuildIndex.
func (db *DB) CreateTable(name string, polys []*geom.Polygon) (*Table, error) {
	if _, exists := db.tables[name]; exists {
		return nil, fmt.Errorf("sdbms: table %q already exists", name)
	}
	t := &Table{
		Name: name,
		rows: make([][]byte, len(polys)),
		mbrs: make([]geom.MBR, len(polys)),
	}
	for i, p := range polys {
		t.rows[i] = wkb.Marshal(p)
		t.mbrs[i] = p.MBR()
	}
	db.tables[name] = t
	return t, nil
}

// Len returns the table's row count.
func (t *Table) Len() int { return len(t.rows) }

// Table returns a table by name.
func (db *DB) Table(name string) (*Table, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("sdbms: no table %q", name)
	}
	return t, nil
}

// DropTable removes a table.
func (db *DB) DropTable(name string) {
	delete(db.tables, name)
}

// BuildIndex builds the table's MBR index if not yet present and returns
// the time spent.
func (t *Table) BuildIndex() time.Duration {
	if t.index != nil {
		return t.buildTime
	}
	start := time.Now()
	entries := make([]rtree.Entry, len(t.rows))
	for i, m := range t.mbrs {
		entries[i] = rtree.Entry{MBR: m, ID: int32(i)}
	}
	t.index = rtree.Build(entries, rtree.Options{})
	t.buildTime = time.Since(start)
	return t.buildTime
}

// QueryForm selects between the paper's two cross-comparing SQL forms.
type QueryForm int

// Query forms of Fig. 1.
const (
	// Unoptimized evaluates ST_Intersects as the join predicate and
	// computes both ST_Area(ST_Intersection(...)) and
	// ST_Area(ST_Union(...)) per joined tuple (Fig. 1a).
	Unoptimized QueryForm = iota
	// Optimized joins on the && MBR-overlap operator and computes only the
	// area of intersection, deriving the union area from
	// ‖p∪q‖ = ‖p‖+‖q‖−‖p∩q‖ (Fig. 1b).
	Optimized
)

func (f QueryForm) String() string {
	if f == Unoptimized {
		return "unoptimized"
	}
	return "optimized"
}

// Profile decomposes query execution time by component, mirroring Fig. 2.
// Each spatial operator's bucket includes the per-call geometry
// deserialization its arguments cost, as in the real system.
type Profile struct {
	IndexBuild         time.Duration
	IndexSearch        time.Duration
	STIntersects       time.Duration
	AreaOfIntersection time.Duration
	AreaOfUnion        time.Duration
	STArea             time.Duration
	Other              time.Duration
}

// Total returns the summed execution time.
func (p Profile) Total() time.Duration {
	return p.IndexBuild + p.IndexSearch + p.STIntersects +
		p.AreaOfIntersection + p.AreaOfUnion + p.STArea + p.Other
}

// Components returns the profile as ordered (label, duration) rows for
// reporting.
func (p Profile) Components() []struct {
	Label string
	D     time.Duration
} {
	return []struct {
		Label string
		D     time.Duration
	}{
		{"Index_Build", p.IndexBuild},
		{"Index_Search", p.IndexSearch},
		{"ST_Intersects", p.STIntersects},
		{"Area_Of_Intersection", p.AreaOfIntersection},
		{"Area_Of_Union", p.AreaOfUnion},
		{"ST_Area", p.STArea},
		{"Other", p.Other},
	}
}

// Result is the output of a cross-comparing query.
type Result struct {
	// Similarity is J' of Eq. 1: the mean Jaccard ratio over genuinely
	// intersecting pairs.
	Similarity float64
	// CandidatePairs is the number of MBR-intersecting pairs the index
	// join produced; IntersectingPairs the number with non-zero area of
	// intersection.
	CandidatePairs    int
	IntersectingPairs int
	// Profile is the per-operator time decomposition.
	Profile Profile
}

// CrossCompare executes the cross-comparing query over two tables on the
// calling goroutine (the single-core PostGIS-S baseline) and returns the
// similarity together with the operator profile.
func (db *DB) CrossCompare(name1, name2 string, form QueryForm) (Result, error) {
	t1, err := db.Table(name1)
	if err != nil {
		return Result{}, err
	}
	t2, err := db.Table(name2)
	if err != nil {
		return Result{}, err
	}
	return crossCompare(t1, t2, form)
}

// STAreaOfIntersection is the combo operator ST_Area(ST_Intersection(a,b))
// with the full PostGIS calling convention: deserialize and validate both
// arguments, construct the intersection boundary, measure it.
func STAreaOfIntersection(a, b []byte) (int64, error) {
	p, err := wkb.Unmarshal(a)
	if err != nil {
		return 0, err
	}
	q, err := wkb.Unmarshal(b)
	if err != nil {
		return 0, err
	}
	return clip.RegionArea(clip.TopologyOverlay(p, q, clip.OpAnd)), nil
}

// STAreaOfUnion is ST_Area(ST_Union(a,b)) under the same convention.
func STAreaOfUnion(a, b []byte) (int64, error) {
	p, err := wkb.Unmarshal(a)
	if err != nil {
		return 0, err
	}
	q, err := wkb.Unmarshal(b)
	if err != nil {
		return 0, err
	}
	return clip.RegionArea(clip.TopologyOverlay(p, q, clip.OpOr)), nil
}

// STIntersects is the spatial predicate with per-call deserialization.
func STIntersects(a, b []byte) (bool, error) {
	p, err := wkb.Unmarshal(a)
	if err != nil {
		return false, err
	}
	q, err := wkb.Unmarshal(b)
	if err != nil {
		return false, err
	}
	return clip.Intersects(p, q), nil
}

// STArea deserializes one geometry and computes its area by the shoelace
// formula (not a cached value — PostGIS recomputes).
func STArea(a []byte) (int64, error) {
	p, err := wkb.Unmarshal(a)
	if err != nil {
		return 0, err
	}
	vs := p.Vertices()
	var sum int64
	n := len(vs)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		sum += int64(vs[i].X)*int64(vs[j].Y) - int64(vs[j].X)*int64(vs[i].Y)
	}
	if sum < 0 {
		sum = -sum
	}
	return sum / 2, nil
}

func crossCompare(t1, t2 *Table, form QueryForm) (Result, error) {
	var res Result
	res.Profile.IndexBuild = t1.BuildIndex() + t2.BuildIndex()

	start := time.Now()
	pairs, _ := rtree.Join(t1.index, t2.index, nil)
	res.Profile.IndexSearch = time.Since(start)
	res.CandidatePairs = len(pairs)

	var ratioSum float64
	for _, pr := range pairs {
		a := t1.rows[pr.A]
		b := t2.rows[pr.B]
		switch form {
		case Unoptimized:
			s := time.Now()
			hit, err := STIntersects(a, b)
			res.Profile.STIntersects += time.Since(s)
			if err != nil {
				return res, err
			}
			if !hit {
				continue
			}
			s = time.Now()
			interArea, err := STAreaOfIntersection(a, b)
			res.Profile.AreaOfIntersection += time.Since(s)
			if err != nil {
				return res, err
			}
			s = time.Now()
			unionArea, err := STAreaOfUnion(a, b)
			res.Profile.AreaOfUnion += time.Since(s)
			if err != nil {
				return res, err
			}
			s = time.Now()
			if interArea > 0 && unionArea > 0 {
				ratioSum += float64(interArea) / float64(unionArea)
				res.IntersectingPairs++
			}
			res.Profile.Other += time.Since(s)
		case Optimized:
			s := time.Now()
			interArea, err := STAreaOfIntersection(a, b)
			res.Profile.AreaOfIntersection += time.Since(s)
			if err != nil {
				return res, err
			}
			s = time.Now()
			areaP, err := STArea(a)
			if err != nil {
				return res, err
			}
			areaQ, err := STArea(b)
			res.Profile.STArea += time.Since(s)
			if err != nil {
				return res, err
			}
			s = time.Now()
			if interArea > 0 {
				unionArea := areaP + areaQ - interArea
				ratioSum += float64(interArea) / float64(unionArea)
				res.IntersectingPairs++
			}
			res.Profile.Other += time.Since(s)
		}
	}
	if res.IntersectingPairs > 0 {
		res.Similarity = ratioSum / float64(res.IntersectingPairs)
	}
	return res, nil
}

// ModelParallelTime converts a measured single-core query time into the
// paper's PostGIS-M scheme: the polygon tables are partitioned into chunks
// and `streams` independent query streams run over `cores` physical cores
// with SMT yield htYield (extra effective throughput per hyperthread pair).
// The paper's EC2 baseline uses 16 streams on 2x4 cores with 16 hardware
// threads.
func ModelParallelTime(single time.Duration, streams, cores int, htYield float64) time.Duration {
	if streams < 1 {
		streams = 1
	}
	effective := float64(cores)
	if streams > cores {
		effective = float64(cores) * (1 + htYield)
		if s := float64(streams); s < effective {
			effective = s
		}
	} else {
		effective = float64(streams)
	}
	if effective < 1 {
		effective = 1
	}
	return time.Duration(float64(single) / effective)
}
