package sched

// Job groups compose several scheduler jobs into one logical run — the
// compare subsystem's K-way similarity matrices are the first user: each
// matrix run is a group whose members are the pairwise cell jobs. A group is
// a cancellation domain (Cancel fans out to the members submitted for this
// group) and a progress/metrics aggregation point; it never affects how the
// scheduler executes the member jobs themselves.
//
// Members are added as they are submitted, since an orchestrator with
// bounded concurrency learns its job IDs over time; Seal marks the member
// set complete, which is what lets Status report the group as terminal.
// Jobs attached with owned=false (an orchestrator reusing another
// submitter's cached or in-flight job) are aggregated but never canceled
// through the group — canceling a shared job would yank it out from under
// its other consumers.

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Errors returned by the group API.
var (
	ErrGroupCanceled = errors.New("sched: group canceled")
	ErrGroupSealed   = errors.New("sched: group sealed")
)

// Group is a set of jobs forming one logical run. Create with NewGroup, grow
// with Add, close the member set with Seal, observe with Status, stop with
// Cancel. All methods are safe for concurrent use.
type Group struct {
	s       *Scheduler
	id      string
	name    string
	tenant  string
	created time.Time

	mu       sync.Mutex
	members  []groupMember
	sealed   bool
	canceled bool
}

type groupMember struct {
	jobID string
	// owned marks jobs submitted for this group; only these are canceled
	// when the group is.
	owned bool
}

// GroupStatus is a point-in-time aggregate over a group's member jobs.
type GroupStatus struct {
	ID       string    `json:"id"`
	Name     string    `json:"name,omitempty"`
	Tenant   string    `json:"tenant,omitempty"`
	Created  time.Time `json:"created"`
	Members  int       `json:"members"`
	Sealed   bool      `json:"sealed"`
	Canceled bool      `json:"canceled"`
	// Per-state member counts.
	Queued       int `json:"queued"`
	Running      int `json:"running"`
	Done         int `json:"done"`
	Failed       int `json:"failed"`
	CanceledJobs int `json:"canceled_jobs"`
	// Aggregated work accounting over member jobs (done jobs contribute
	// their report's device counters).
	Tiles          int     `json:"tiles"`
	KernelLaunches int64   `json:"kernel_launches"`
	DeviceSeconds  float64 `json:"device_seconds"`
	// Terminal reports whether the member set is complete and every member
	// has reached a terminal state.
	Terminal bool `json:"terminal"`
}

// NewGroup creates an empty job group and registers it with the scheduler so
// observers (the server's group-aware /metrics scrape) can enumerate groups
// without holding the creator's handle. name is an optional label surfaced
// in the status.
func (s *Scheduler) NewGroup(name string) *Group { return s.NewGroupFor(name, "") }

// NewGroupFor is NewGroup with a tenant identity: the group's member jobs
// are the tenant's work, and the group status carries the name so dashboards
// and the slow-query log can attribute a whole matrix run.
func (s *Scheduler) NewGroupFor(name, tenant string) *Group {
	g := &Group{s: s, name: name, tenant: tenant, created: time.Now()}
	g.id = fmt.Sprintf("grp-%06d", atomic.AddInt64(&s.nextGroup, 1))
	s.mu.Lock()
	s.groups[g.id] = g
	s.gorder = append(s.gorder, g.id)
	s.mu.Unlock()
	return g
}

// Groups returns every group's current status in creation order. Like jobs,
// groups are kept for the scheduler's lifetime; callers that only care about
// live runs filter on !Terminal.
func (s *Scheduler) Groups() []GroupStatus {
	s.mu.Lock()
	groups := make([]*Group, 0, len(s.gorder))
	for _, id := range s.gorder {
		groups = append(groups, s.groups[id])
	}
	s.mu.Unlock()
	// Status takes g.mu and s.mu (via Job); compute outside the lock.
	out := make([]GroupStatus, len(groups))
	for i, g := range groups {
		out[i] = g.Status()
	}
	return out
}

// ID returns the group's scheduler-assigned ID.
func (g *Group) ID() string { return g.id }

// Add attaches a job to the group. owned marks jobs submitted specifically
// for this group — Cancel fans out only to those, leaving shared jobs
// (cache-hit attachments) running for their other consumers.
func (g *Group) Add(jobID string, owned bool) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.canceled {
		return ErrGroupCanceled
	}
	if g.sealed {
		return ErrGroupSealed
	}
	g.members = append(g.members, groupMember{jobID: jobID, owned: owned})
	return nil
}

// Remove detaches a job from the group (a matrix cell dropping a canceled
// attempt it is about to retry, so the dead job doesn't inflate the group's
// aggregates). Unknown members are ignored.
func (g *Group) Remove(jobID string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, m := range g.members {
		if m.jobID == jobID {
			g.members = append(g.members[:i], g.members[i+1:]...)
			return
		}
	}
}

// Seal marks the member set complete; further Adds fail. Status reports the
// group terminal once sealed and all members have finished.
func (g *Group) Seal() {
	g.mu.Lock()
	g.sealed = true
	g.mu.Unlock()
}

// Cancel marks the group canceled (future Adds fail, so an orchestrator
// racing Cancel stops growing the group) and cancels every owned member that
// has not already finished. Cancellation of members follows job semantics:
// queued jobs finalize immediately, running jobs stop dispatching new
// shards.
func (g *Group) Cancel() {
	g.mu.Lock()
	g.canceled = true
	g.sealed = true
	owned := make([]string, 0, len(g.members))
	for _, m := range g.members {
		if m.owned {
			owned = append(owned, m.jobID)
		}
	}
	g.mu.Unlock()
	for _, id := range owned {
		// Already-terminal and vanished members are fine; the point is that
		// nothing belonging to this group keeps consuming devices.
		_ = g.s.Cancel(id)
	}
}

// CancelMember cancels one member job, but only if it is owned by this
// group — shared members (cache-hit attachments) have other consumers and
// are never touched. It reports whether a cancel was issued. Progressive
// matrix runs use this for group-aware early termination: when a new exact
// result proves an in-flight cell can no longer affect the answer, that one
// member stops consuming devices while the rest of the group runs on.
func (g *Group) CancelMember(jobID string) bool {
	g.mu.Lock()
	owned := false
	for _, m := range g.members {
		if m.jobID == jobID {
			owned = m.owned
			break
		}
	}
	g.mu.Unlock()
	if !owned {
		return false
	}
	_ = g.s.Cancel(jobID)
	return true
}

// Status aggregates the member jobs' current snapshots.
func (g *Group) Status() GroupStatus {
	g.mu.Lock()
	members := make([]groupMember, len(g.members))
	copy(members, g.members)
	st := GroupStatus{
		ID:       g.id,
		Name:     g.name,
		Tenant:   g.tenant,
		Created:  g.created,
		Members:  len(members),
		Sealed:   g.sealed,
		Canceled: g.canceled,
	}
	g.mu.Unlock()
	terminal := 0
	for _, m := range members {
		js, ok := g.s.Job(m.jobID)
		if !ok {
			continue
		}
		st.Tiles += js.Tiles
		switch js.State {
		case Queued:
			st.Queued++
		case Running:
			st.Running++
		case Done:
			st.Done++
			st.KernelLaunches += js.Report.Stats.KernelLaunches
			st.DeviceSeconds += js.Report.Stats.DeviceSeconds
		case Failed:
			st.Failed++
		case Canceled:
			st.CanceledJobs++
		}
		if js.State.Terminal() {
			terminal++
		}
	}
	st.Terminal = st.Sealed && terminal == len(members)
	return st
}
