package sched

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/gpu"
	"repro/internal/pathology"
	"repro/internal/pipeline"
)

func testTasks(t *testing.T, tiles int) []pipeline.FileTask {
	t.Helper()
	spec := pathology.Representative()
	spec.Tiles = tiles
	return pipeline.EncodeDataset(pathology.Generate(spec))
}

// TestShardsAcrossDevices is the tentpole correctness test: a job sharded
// over two devices must produce the same report a single direct pipeline run
// produces, and both devices must actually execute work.
func TestShardsAcrossDevices(t *testing.T) {
	tasks := testTasks(t, 6)

	direct, err := pipeline.Run(tasks, pipeline.Config{Device: gpu.NewDevice(gpu.GTX580())})
	if err != nil {
		t.Fatalf("direct run: %v", err)
	}

	s := New(Config{Devices: 2})
	defer s.Close()
	id, err := s.Submit("rep", tasks)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	st, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if st.State != Done {
		t.Fatalf("job state = %v (err %q), want Done", st.State, st.Error)
	}
	if st.Shards != 2 {
		t.Fatalf("job ran %d shards, want 2", st.Shards)
	}
	if len(st.DeviceIDs) < 2 {
		t.Fatalf("job used devices %v, want 2 distinct devices", st.DeviceIDs)
	}
	for _, d := range s.DeviceStats() {
		if d.Shards == 0 || d.Launches == 0 {
			t.Errorf("device %d idle (shards=%d launches=%d), want both devices busy",
				d.ID, d.Shards, d.Launches)
		}
	}

	if st.Report.Intersecting != direct.Intersecting || st.Report.Candidates != direct.Candidates {
		t.Errorf("pair counts (%d, %d) != direct (%d, %d)",
			st.Report.Intersecting, st.Report.Candidates, direct.Intersecting, direct.Candidates)
	}
	if math.Abs(st.Report.Similarity-direct.Similarity) > 1e-9 {
		t.Errorf("similarity %.12f != direct %.12f", st.Report.Similarity, direct.Similarity)
	}
	if st.Report.Stats.TilesProcessed != len(tasks) {
		t.Errorf("tiles processed = %d, want %d", st.Report.Stats.TilesProcessed, len(tasks))
	}
}

// TestReportCountersArePerJob guards against leaking the pool devices'
// cumulative counters into job reports: two identical jobs on one scheduler
// must report identical launch counts and near-identical device seconds.
func TestReportCountersArePerJob(t *testing.T) {
	tasks := testTasks(t, 4)
	s := New(Config{Devices: 2})
	defer s.Close()
	var reports []pipeline.Result
	for i := 0; i < 2; i++ {
		id, err := s.Submit("again", tasks)
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		st, err := s.Wait(context.Background(), id)
		if err != nil || st.State != Done {
			t.Fatalf("Wait = %+v, %v", st.State, err)
		}
		reports = append(reports, st.Report)
	}
	if reports[0].Stats.KernelLaunches == 0 {
		t.Fatal("first job reports zero kernel launches")
	}
	if reports[1].Stats.KernelLaunches != reports[0].Stats.KernelLaunches {
		t.Errorf("second identical job reports %d launches, first %d — cumulative device counters leaked",
			reports[1].Stats.KernelLaunches, reports[0].Stats.KernelLaunches)
	}
	if reports[1].Stats.DeviceSeconds > 2*reports[0].Stats.DeviceSeconds {
		t.Errorf("second job device seconds %.6f vs first %.6f — cumulative busy time leaked",
			reports[1].Stats.DeviceSeconds, reports[0].Stats.DeviceSeconds)
	}
}

func TestCPUOnlyScheduler(t *testing.T) {
	tasks := testTasks(t, 2)
	s := New(Config{Devices: 0})
	defer s.Close()
	id, err := s.Submit("cpu", tasks)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st, err := s.Wait(context.Background(), id)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if st.State != Done {
		t.Fatalf("state = %v (err %q), want Done", st.State, st.Error)
	}
	if st.Report.Stats.PairsOnGPU != 0 {
		t.Errorf("CPU-only job reports %d GPU pairs", st.Report.Stats.PairsOnGPU)
	}
	if st.Report.Similarity <= 0 {
		t.Errorf("similarity = %v, want > 0", st.Report.Similarity)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := New(Config{Devices: 1})
	if _, err := s.Submit("empty", nil); err != ErrEmptyJob {
		t.Errorf("Submit(nil) err = %v, want ErrEmptyJob", err)
	}
	s.Close()
	if _, err := s.Submit("late", testTasks(t, 1)); err != ErrClosed {
		t.Errorf("Submit after Close err = %v, want ErrClosed", err)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	// One device, one runner: the second job stays queued while the first
	// (deliberately large) runs, so canceling it is race-free in practice.
	s := New(Config{Devices: 1})
	defer s.Close()
	first, err := s.Submit("long", testTasks(t, 12))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	second, err := s.Submit("victim", testTasks(t, 2))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := s.Cancel(second); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	st, err := s.Wait(context.Background(), second)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if st.State != Canceled {
		t.Fatalf("canceled job state = %v, want Canceled", st.State)
	}
	if fst, err := s.Wait(context.Background(), first); err != nil || fst.State != Done {
		t.Fatalf("first job state = %v err = %v, want Done", fst.State, err)
	}
	if err := s.Cancel(second); err != ErrTerminal {
		t.Errorf("Cancel(terminal) err = %v, want ErrTerminal", err)
	}
	if err := s.Cancel("job-999999"); err != ErrNotFound {
		t.Errorf("Cancel(unknown) err = %v, want ErrNotFound", err)
	}
}

func TestJobsListingOrder(t *testing.T) {
	s := New(Config{Devices: 1})
	defer s.Close()
	var ids []string
	for i := 0; i < 3; i++ {
		id, err := s.Submit("j", testTasks(t, 1))
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if _, err := s.Wait(context.Background(), id); err != nil {
			t.Fatalf("Wait(%s): %v", id, err)
		}
	}
	jobs := s.Jobs()
	if len(jobs) != len(ids) {
		t.Fatalf("Jobs() returned %d entries, want %d", len(jobs), len(ids))
	}
	for i, st := range jobs {
		if st.ID != ids[i] {
			t.Errorf("Jobs()[%d].ID = %s, want %s (submission order)", i, st.ID, ids[i])
		}
	}
}

// weightSource is a TaskSource with explicit per-tile weights for shard
// policy tests.
type weightSource []int64

func (w weightSource) Len() int           { return len(w) }
func (w weightSource) Weight(i int) int64 { return w[i] }
func (w weightSource) Task(i int) (pipeline.FileTask, error) {
	return pipeline.FileTask{Tile: i}, nil
}

func TestShardTasks(t *testing.T) {
	tasks := testTasks(t, 5)
	shards := shardTasks(Tasks(tasks), 8)
	if len(shards) != 5 {
		t.Fatalf("shardTasks over-split: %d shards for 5 tasks", len(shards))
	}
	shards = shardTasks(Tasks(tasks), 2)
	if len(shards) != 2 {
		t.Fatalf("shardTasks(5, 2) = %d shards, want 2", len(shards))
	}
	seen := make(map[int]bool)
	for _, sh := range shards {
		for _, ix := range sh {
			if seen[ix] {
				t.Fatalf("tile %d assigned to two shards", ix)
			}
			seen[ix] = true
		}
	}
	if len(seen) != len(tasks) {
		t.Fatalf("shards hold %d tiles, want %d", len(seen), len(tasks))
	}
}

// TestShardTasksWeighted checks the throughput-weighted split: one huge tile
// plus many small ones must not share a shard with other work, and the byte
// loads of the shards must come out far more even than a round-robin count
// split would make them.
func TestShardTasksWeighted(t *testing.T) {
	src := weightSource{1000, 10, 10, 10, 10, 10, 10, 10, 10, 10, 10}
	shards := shardTasks(src, 2)
	if len(shards) != 2 {
		t.Fatalf("got %d shards, want 2", len(shards))
	}
	loads := make([]int64, len(shards))
	for i, sh := range shards {
		for _, ix := range sh {
			loads[i] += src.Weight(ix)
		}
	}
	// LPT on these weights: the heavy tile alone on one shard, every small
	// tile on the other — 1000 vs 100.
	heavy, light := loads[0], loads[1]
	if heavy < light {
		heavy, light = light, heavy
	}
	if heavy != 1000 || light != 100 {
		t.Fatalf("weighted shard loads = %v, want [1000 100]", loads)
	}
	// Determinism: same source, same split.
	again := shardTasks(src, 2)
	for i := range shards {
		if len(again[i]) != len(shards[i]) {
			t.Fatalf("shardTasks is not deterministic: %v vs %v", again, shards)
		}
		for k := range shards[i] {
			if again[i][k] != shards[i][k] {
				t.Fatalf("shardTasks is not deterministic: %v vs %v", again, shards)
			}
		}
	}
}

// slowWeightSource wraps real tasks with a Weight that blocks until released,
// simulating a source whose weight scan is expensive (a cross-reader walking
// tile manifests). started is closed when sharding first asks for a weight.
type slowWeightSource struct {
	tasks   []pipeline.FileTask
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func (s *slowWeightSource) Len() int { return len(s.tasks) }
func (s *slowWeightSource) Weight(i int) int64 {
	s.once.Do(func() { close(s.started) })
	<-s.release
	return 1
}
func (s *slowWeightSource) Task(i int) (pipeline.FileTask, error) { return s.tasks[i], nil }

// TestJobsNotBlockedBySlowSharding is the regression test for sharding inside
// the scheduler lock: while a source's Weight scan stalls shardTasks, the
// observability surface (Jobs, and through it /jobs, /metrics, /healthz) must
// still answer.
func TestJobsNotBlockedBySlowSharding(t *testing.T) {
	s := New(Config{Devices: 1})
	defer s.Close()
	src := &slowWeightSource{
		tasks:   testTasks(t, 2),
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
	id, err := s.SubmitSource("slow-shard", src)
	if err != nil {
		t.Fatalf("SubmitSource: %v", err)
	}
	select {
	case <-src.started:
	case <-time.After(10 * time.Second):
		t.Fatal("sharding never started")
	}
	// The runner is now inside shardTasks with Weight blocked. Jobs must not
	// be stuck behind it.
	got := make(chan []JobStatus, 1)
	go func() { got <- s.Jobs() }()
	select {
	case jobs := <-got:
		if len(jobs) != 1 || jobs[0].ID != id {
			t.Fatalf("Jobs() = %+v, want the one submitted job", jobs)
		}
		if jobs[0].State != Queued {
			t.Errorf("job state during sharding = %v, want Queued", jobs[0].State)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Jobs() blocked while a slow source sharded — shardTasks runs under the scheduler lock")
	}
	close(src.release)
	st, err := s.Wait(context.Background(), id)
	if err != nil || st.State != Done {
		t.Fatalf("job after release: state=%v err=%v, want Done", st.State, err)
	}
}

// TestCancelDuringSharding covers the terminal re-check after sharding moved
// outside the lock: a job canceled while its source shards must finalize as
// Canceled with the computed shards discarded unstarted.
func TestCancelDuringSharding(t *testing.T) {
	s := New(Config{Devices: 1})
	defer s.Close()
	src := &slowWeightSource{
		tasks:   testTasks(t, 2),
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
	id, err := s.SubmitSource("cancel-shard", src)
	if err != nil {
		t.Fatalf("SubmitSource: %v", err)
	}
	select {
	case <-src.started:
	case <-time.After(10 * time.Second):
		t.Fatal("sharding never started")
	}
	if err := s.Cancel(id); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	close(src.release)
	st, err := s.Wait(context.Background(), id)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if st.State != Canceled {
		t.Fatalf("state = %v, want Canceled", st.State)
	}
	if st.Shards != 0 {
		t.Errorf("canceled-during-shard job reports %d shards, want 0 (shards discarded)", st.Shards)
	}
}

// TestGroupCancelMember checks single-member early termination: owned members
// cancel, shared (cache-hit) members and unknown IDs are left alone.
func TestGroupCancelMember(t *testing.T) {
	s := New(Config{Devices: 1})
	defer s.Close()
	// A deliberately large first job keeps the later ones queued so their
	// cancellation is race-free.
	blocker, err := s.Submit("blocker", testTasks(t, 12))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	owned, err := s.Submit("owned", testTasks(t, 1))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	shared, err := s.Submit("shared", testTasks(t, 1))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	g := s.NewGroup("run")
	if err := g.Add(owned, true); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := g.Add(shared, false); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if !g.CancelMember(owned) {
		t.Error("CancelMember(owned) = false, want cancel issued")
	}
	if g.CancelMember(shared) {
		t.Error("CancelMember(shared) = true, want shared member untouched")
	}
	if g.CancelMember("job-999999") {
		t.Error("CancelMember(unknown) = true, want false")
	}
	if st, err := s.Wait(context.Background(), owned); err != nil || st.State != Canceled {
		t.Fatalf("owned member state = %v err = %v, want Canceled", st.State, err)
	}
	if st, err := s.Wait(context.Background(), shared); err != nil || st.State != Done {
		t.Fatalf("shared member state = %v err = %v, want Done", st.State, err)
	}
	if st, err := s.Wait(context.Background(), blocker); err != nil || st.State != Done {
		t.Fatalf("blocker state = %v err = %v, want Done", st.State, err)
	}
}

// TestWarmStartCarriesThroughput checks the executor-pool warm start: after
// a first job measures slot throughput, the scheduler's memory holds the
// EWMA under the slot-labelled executor ID so the next job's executors seed
// from it instead of the static prior.
func TestWarmStartCarriesThroughput(t *testing.T) {
	s := New(Config{Devices: 1, Workers: 2})
	defer s.Close()
	id, err := s.Submit("warm", testTasks(t, 4))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st, err := s.Wait(context.Background(), id)
	if err != nil || st.State != Done {
		t.Fatalf("job: state=%v err=%v", st.State, err)
	}
	tp, ok := s.warm.Prior("slot0/gpu0")
	if !ok {
		t.Fatal("warm memory holds no measurement for slot0/gpu0 after a completed job")
	}
	if tp <= 0 {
		t.Fatalf("remembered throughput %v, want > 0", tp)
	}
}

// TestMergeMatchesUnsharded checks pipeline.Merge against ground truth on
// partitioned runs.
func TestMergeMatchesUnsharded(t *testing.T) {
	tasks := testTasks(t, 4)
	whole, err := pipeline.Run(tasks, pipeline.Config{})
	if err != nil {
		t.Fatalf("whole run: %v", err)
	}
	half1, err := pipeline.Run(tasks[:2], pipeline.Config{})
	if err != nil {
		t.Fatalf("half1: %v", err)
	}
	half2, err := pipeline.Run(tasks[2:], pipeline.Config{})
	if err != nil {
		t.Fatalf("half2: %v", err)
	}
	merged := pipeline.Merge(half1, half2)
	if merged.Intersecting != whole.Intersecting || merged.Candidates != whole.Candidates {
		t.Errorf("merged counts (%d, %d) != whole (%d, %d)",
			merged.Intersecting, merged.Candidates, whole.Intersecting, whole.Candidates)
	}
	if math.Abs(merged.Similarity-whole.Similarity) > 1e-9 {
		t.Errorf("merged similarity %.12f != whole %.12f", merged.Similarity, whole.Similarity)
	}
}
