// Package sched is the multi-device job scheduler behind the sccgd service:
// it owns a pool of simulated GPUs plus CPU pipeline workers, accepts
// cross-comparison jobs (batches of image-tile file tasks), shards each
// job's tiles across the executor-slot pool, runs every shard through the
// SCCG pipeline, and merges the shard reports into one job result.
//
// This generalises the paper's single-node resident service (one process
// owning one GPU, §4) to a pool of hybrid CPU–GPU executor slots: each slot
// leases an executor SET — GPUsPerShard exclusive non-preemptive devices
// plus, with HybridCPU, co-executing PixelBox-CPU workers — to exactly one
// shard at a time. Per-slot busy time and launch counts are accounted so a
// load balancer (or the /metrics endpoint) can see skew, and per-executor
// pipeline accounting flows into the optional metrics Registry.
//
// Jobs move queued → running → done | failed | canceled. Cancellation is
// shard-granular: a canceled job stops dispatching new shards immediately,
// but a shard already on a device runs to completion (kernels are
// non-preemptive).
package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/pathology"
	"repro/internal/pipeline"
	"repro/internal/pixelbox"
	"repro/internal/trace"
)

// Config wires a scheduler.
type Config struct {
	// Devices is the number of simulated GPUs in the pool. 0 means a
	// CPU-only scheduler (shards run PixelBox-CPU, one at a time).
	Devices int
	// GPU is the device model for every pool member; the zero value selects
	// the paper's GTX 580.
	GPU gpu.Config
	// GPUsPerShard is how many pool GPUs one shard's hybrid pipeline drives
	// concurrently; default 1 (the original one-device-per-shard layout).
	// Devices are grouped into ceil(Devices/GPUsPerShard) executor slots.
	GPUsPerShard int
	// Workers is each shard pipeline's CPU worker count (parser threads and
	// PixelBox-CPU); 0 uses the pipeline default.
	Workers int
	// HybridCPU co-executes PixelBox-CPU aggregator workers alongside each
	// shard's GPUs (the hybrid work-stealing aggregator). The CPU executor
	// count is Workers, or 2 when Workers is unset.
	HybridCPU bool
	// Migration enables dynamic task migration inside each shard pipeline.
	Migration bool
	// PixelBox tunes the kernel.
	PixelBox pixelbox.Config
	// MaxShards caps how many shards one job is split into; 0 means one
	// shard per executor slot.
	MaxShards int
	// QueueDepth is the queued-job limit before Submit rejects; default 64.
	// The limit spans all bands.
	QueueDepth int
	// BandWeights is the weighted-fair-sharing ratio between the QoS bands;
	// an all-zero value selects DefaultBandWeights. Individual zero entries
	// inherit their default; weights must be positive.
	BandWeights [NumBands]int
	// AgingBoost bounds cross-band starvation: a queued job older than this
	// is dispatched ahead of weighted-fair order (oldest first), whatever
	// its band's weight. 0 selects the 30s default; negative disables.
	AgingBoost time.Duration
	// ReservedSlots holds this many executor slots exclusively for
	// interactive jobs — batch and ingest shards never lease them, so an
	// interactive job admitted under a batch flood starts on reserved
	// capacity instead of waiting out a non-preemptive shard. 0 selects the
	// default (1 when the pool has more than one slot); negative disables.
	// Clamped to slots-1 so every band can always run somewhere.
	ReservedSlots int
	// TenantQueueLimit, when set, returns the queued-job cap for a tenant
	// (0 = unlimited). Checked under the queue lock, so two submits racing
	// one remaining slot resolve atomically: exactly one wins.
	TenantQueueLimit func(tenant string) int
	// Registry, when set, receives per-executor pipeline accounting.
	Registry *metrics.Registry
	// NoTrace disables per-job span recording: jobs submitted without a
	// caller recorder run with no recorder at all (every trace.Recorder
	// method is nil-safe). Exists to measure tracing's own overhead
	// (cmd/bench trace_overhead); production keeps it off.
	NoTrace bool
}

func (c Config) normalized() Config {
	if c.Devices < 0 {
		c.Devices = 0
	}
	if c.GPU == (gpu.Config{}) {
		c.GPU = gpu.GTX580()
	}
	if c.GPUsPerShard <= 0 {
		c.GPUsPerShard = 1
	}
	if c.Devices > 0 && c.GPUsPerShard > c.Devices {
		c.GPUsPerShard = c.Devices
	}
	if c.MaxShards <= 0 {
		c.MaxShards = c.slots()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	for b, w := range c.BandWeights {
		if w <= 0 {
			c.BandWeights[b] = DefaultBandWeights[b]
		}
	}
	if c.AgingBoost == 0 {
		c.AgingBoost = 30 * time.Second
	}
	switch {
	case c.ReservedSlots == 0 && c.slots() > 1:
		c.ReservedSlots = 1
	case c.ReservedSlots < 0:
		c.ReservedSlots = 0
	}
	if c.ReservedSlots >= c.slots() {
		c.ReservedSlots = c.slots() - 1
	}
	return c
}

// slots returns the executor-slot count for a normalized config.
func (c Config) slots() int {
	if c.Devices <= 0 {
		return 1 // a single CPU-only executor slot
	}
	return (c.Devices + c.GPUsPerShard - 1) / c.GPUsPerShard
}

// cpuAggregators returns the per-shard CPU executor count implied by the
// config.
func (c Config) cpuAggregators() int {
	if !c.HybridCPU {
		return 0
	}
	if c.Workers > 0 {
		return c.Workers
	}
	return 2
}

// TaskSource hands the scheduler a job's tiles lazily: Len and Weight are
// cheap metadata reads (a stored dataset serves them straight from its
// manifest), while Task materializes one tile's pipeline input on demand.
// Shards therefore carry tile handles, not encoded datasets — each shard
// goroutine materializes only its own tiles right before running, so a job
// over a large stored dataset never holds the whole encoded input in memory.
type TaskSource interface {
	// Len is the tile count.
	Len() int
	// Weight is tile i's cost proxy for sharding: its encoded byte size.
	Weight(i int) int64
	// Task materializes tile i's pipeline input.
	Task(i int) (pipeline.FileTask, error)
}

// SourceReleaser is an optional TaskSource extension for sources holding
// external resources — the server's store-backed sources keep their datasets
// pinned against retention eviction through it. The scheduler calls Release
// exactly once, when the job reaches a terminal state (done, failed, or
// canceled — including jobs canceled while still queued and jobs finalized
// by Close).
type SourceReleaser interface {
	Release()
}

// PolySource is an optional TaskSource extension for inputs whose tiles are
// already decoded polygon sets (stored datasets, cross-dataset pair
// readers). Shards from a PolySource run through pipeline.RunParsed,
// skipping the parser stage — the polygons were validated where they were
// decoded, and the report stays bit-identical to the text path.
type PolySource interface {
	TaskSource
	// PolyTask materializes tile i as pre-parsed pipeline input.
	PolyTask(i int) (pipeline.PolyTask, error)
}

// memSource adapts an in-memory task slice to the TaskSource contract.
type memSource []pipeline.FileTask

func (m memSource) Len() int                              { return len(m) }
func (m memSource) Weight(i int) int64                    { return int64(len(m[i].RawA) + len(m[i].RawB)) }
func (m memSource) Task(i int) (pipeline.FileTask, error) { return m[i], nil }

// Tasks wraps fully materialized tile tasks as a TaskSource.
func Tasks(tasks []pipeline.FileTask) TaskSource { return memSource(tasks) }

// State is a job's lifecycle position.
type State int

const (
	Queued State = iota
	Running
	Done
	Failed
	Canceled
)

// String returns the lowercase wire name used by the HTTP API.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Canceled:
		return "canceled"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Canceled }

// JobStatus is a point-in-time snapshot of one job.
type JobStatus struct {
	ID        string
	Name      string // dataset or caller-supplied label, may be empty
	Band      Band
	Tenant    string
	State     State
	Error     string // set when State == Failed
	Submitted time.Time
	Started   time.Time // zero until Running
	Finished  time.Time // zero until terminal
	Tiles     int
	Shards    int   // shards the job was split into (set when Running)
	DeviceIDs []int // pool devices that executed at least one shard
	// Report is the merged cross-comparison result, valid when State == Done.
	Report pipeline.Result
	// Trace is the job's stage-span breakdown, recorded from submission.
	// Snapshots of a live job show the spans so far; after the job finishes
	// its total freezes (later spans like the server's persist still appear).
	Trace *trace.Trace
}

// DeviceStats is the accounting for one pool executor slot (its GPU set, or
// a CPU-only slot).
type DeviceStats struct {
	ID          int
	Name        string
	GPUs        int     // simulated GPUs leased by this slot
	Launches    int64   // kernel launches summed over the slot's GPUs
	BusySeconds float64 // modelled device busy seconds summed over the slot's GPUs
	Shards      int64   // shards executed
	Wall        time.Duration
}

// Stats is a scheduler-wide snapshot for monitoring.
type Stats struct {
	Submitted int64
	Completed int64
	Failed    int64
	Canceled  int64
	Queued    int
	Running   int
	Bands     [NumBands]BandCounts
	Tenants   map[string]TenantCounts
	Devices   []DeviceStats
}

// Errors returned by the scheduler's public API.
var (
	ErrClosed      = errors.New("sched: scheduler closed")
	ErrQueueFull   = errors.New("sched: job queue full")
	ErrTenantQueue = errors.New("sched: tenant queued-job quota reached")
	ErrNotFound    = errors.New("sched: no such job")
	ErrTerminal    = errors.New("sched: job already finished")
	ErrEmptyJob    = errors.New("sched: job has no tasks")
)

// device is one pool member: a leased executor slot owning a (possibly
// empty) set of exclusive GPUs; an empty set is a CPU-only slot.
type device struct {
	id     int
	gpus   []*gpu.Device
	home   chan *device // the pool this device returns to after a lease
	shards int64        // atomic
	wallNS int64        // atomic
}

// stats sums the slot's cumulative GPU accounting.
func (d *device) stats() (launches int64, busy float64) {
	for _, g := range d.gpus {
		s := g.Stats()
		launches += s.Launches
		busy += s.BusySeconds
	}
	return launches, busy
}

type job struct {
	id        string
	name      string
	band      Band
	tenant    string
	src       TaskSource // released on finish; see tiles
	tiles     int
	ctx       context.Context
	cancel    context.CancelFunc
	done      chan struct{}
	state     State
	counted   bool // still held in queue accounting (queuedTotal/queuedTenant)
	err       error
	submitted time.Time
	started   time.Time
	finished  time.Time
	shards    int
	devices   map[int]struct{}
	report    pipeline.Result
	trace     *trace.Recorder
}

// Scheduler is the job service's execution core. Create with New, submit
// with Submit/SubmitDataset, observe with Job/Jobs/DeviceStats, stop with
// Close.
type Scheduler struct {
	cfg   Config
	pool  chan *device // general slots, leased by any band
	rpool chan *device // reserved slots, leased only by interactive jobs; nil when none
	devs  []*device

	wg sync.WaitGroup

	// warm carries each slot executor's measured throughput EWMA across
	// jobs, so a new job's first claims are sized from history.
	warm *pipeline.ThroughputMemory

	mu     sync.Mutex
	qcond  *sync.Cond // signaled on enqueue and Close; guards the fields below via mu
	jobs   map[string]*job
	order  []string
	groups map[string]*Group
	gorder []string
	closed bool

	// The banded ready queue: one FIFO per band under weighted fair sharing
	// (virtual-time WFQ) with aging. Terminal jobs (canceled while queued)
	// stay in their slice until a dequeue skips them; accounting drops them
	// immediately via job.counted.
	bands         [NumBands][]*job
	vtime         [NumBands]float64
	queuedTotal   int
	queuedByBand  [NumBands]int
	runningByBand [NumBands]int
	queuedTenant  map[string]int
	runningTenant map[string]int

	// Latency histograms, nil without a Registry.
	histQueueWait     *metrics.Histogram
	histQueueWaitBand [NumBands]*metrics.Histogram
	histJobDuration   map[State]*metrics.Histogram

	nextID    int64
	nextGroup int64
	submitted int64
	completed int64
	failed    int64
	canceled  int64
	running   int64
}

// New creates a scheduler and starts its dispatch workers.
func New(cfg Config) *Scheduler {
	cfg = cfg.normalized()
	s := &Scheduler{
		cfg:           cfg,
		jobs:          make(map[string]*job),
		groups:        make(map[string]*Group),
		queuedTenant:  make(map[string]int),
		runningTenant: make(map[string]int),
		warm:          pipeline.NewThroughputMemory(),
	}
	s.qcond = sync.NewCond(&s.mu)
	if r := cfg.Registry; r != nil {
		s.histQueueWait = r.Histogram("sccgd_job_queue_wait_seconds")
		for b := Band(0); b < NumBands; b++ {
			s.histQueueWaitBand[b] = r.Histogram(metrics.Label("sccgd_job_queue_wait_seconds", "band", b.String()))
		}
		s.histJobDuration = map[State]*metrics.Histogram{
			Done:     r.Histogram(metrics.Label("sccgd_job_duration_seconds", "outcome", "done")),
			Failed:   r.Histogram(metrics.Label("sccgd_job_duration_seconds", "outcome", "failed")),
			Canceled: r.Histogram(metrics.Label("sccgd_job_duration_seconds", "outcome", "canceled")),
		}
	}
	slots := cfg.slots()
	general := slots - cfg.ReservedSlots
	s.pool = make(chan *device, general)
	if cfg.ReservedSlots > 0 {
		s.rpool = make(chan *device, cfg.ReservedSlots)
	}
	s.devs = make([]*device, slots)
	remaining := cfg.Devices
	for i := 0; i < slots; i++ {
		d := &device{id: i, home: s.pool}
		if i >= general {
			d.home = s.rpool
		}
		n := cfg.GPUsPerShard
		if n > remaining {
			n = remaining
		}
		for g := 0; g < n; g++ {
			d.gpus = append(d.gpus, gpu.NewDevice(cfg.GPU))
		}
		remaining -= n
		s.devs[i] = d
		d.home <- d
	}
	// One runner per executor slot: jobs run concurrently as devices free
	// up, and a single job can still fan its shards across the whole pool.
	// Runners for reserved slots dequeue only interactive jobs, so a batch
	// backlog can never occupy every runner either.
	for i := 0; i < slots; i++ {
		s.wg.Add(1)
		go s.runner(i >= general)
	}
	return s
}

// Config returns the normalized configuration the scheduler runs with.
func (s *Scheduler) Config() Config { return s.cfg }

// Submit enqueues a cross-comparison job over the given tile tasks and
// returns its ID. name is an optional label surfaced in job listings.
func (s *Scheduler) Submit(name string, tasks []pipeline.FileTask) (string, error) {
	if len(tasks) == 0 {
		return "", ErrEmptyJob
	}
	return s.SubmitSource(name, memSource(tasks))
}

// SubmitSource enqueues a job whose tiles are materialized lazily from src
// (e.g. handles into a stored dataset). Each shard reads only its own tiles.
func (s *Scheduler) SubmitSource(name string, src TaskSource) (string, error) {
	return s.SubmitSourceTraced(name, src, nil)
}

// SubmitSourceTraced is SubmitSource with a caller-provided span recorder,
// for callers that already spent traceable time on the job before submission
// (the server records pin/materialize spans while resolving stored datasets).
// A nil recorder gets a fresh one, so every job carries a trace.
func (s *Scheduler) SubmitSourceTraced(name string, src TaskSource, rec *trace.Recorder) (string, error) {
	return s.SubmitJob(src, JobOpts{Name: name, Trace: rec})
}

// JobOpts qualifies a SubmitJob submission.
type JobOpts struct {
	// Name is an optional label surfaced in job listings.
	Name string
	// Band is the job's QoS class; the zero value is BandInteractive.
	Band Band
	// Tenant is the accounting identity; empty means the default tenant.
	Tenant string
	// Trace is an optional caller-provided span recorder.
	Trace *trace.Recorder
}

// SubmitJob enqueues a job with explicit QoS placement: its band picks the
// weighted-fair queue, its tenant is charged against the per-tenant
// queued-job quota (ErrTenantQueue when at the cap — checked under the
// queue lock, so concurrent submits racing one remaining slot resolve to
// exactly one winner).
func (s *Scheduler) SubmitJob(src TaskSource, opts JobOpts) (string, error) {
	if src == nil || src.Len() == 0 {
		return "", ErrEmptyJob
	}
	if opts.Band < 0 || opts.Band >= NumBands {
		return "", fmt.Errorf("sched: invalid band %d", int(opts.Band))
	}
	if opts.Tenant == "" {
		opts.Tenant = "default"
	}
	rec := opts.Trace
	if rec == nil && !s.cfg.NoTrace {
		rec = trace.NewRecorder()
	}
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		name:      opts.Name,
		band:      opts.Band,
		tenant:    opts.Tenant,
		src:       src,
		tiles:     src.Len(),
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		state:     Queued,
		submitted: time.Now(),
		devices:   make(map[int]struct{}),
		trace:     rec,
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		return "", ErrClosed
	}
	if s.queuedTotal >= s.cfg.QueueDepth {
		s.mu.Unlock()
		cancel()
		return "", ErrQueueFull
	}
	if lim := s.cfg.TenantQueueLimit; lim != nil {
		if max := lim(j.tenant); max > 0 && s.queuedTenant[j.tenant] >= max {
			s.mu.Unlock()
			cancel()
			return "", fmt.Errorf("%w: tenant %s has %d queued", ErrTenantQueue, j.tenant, max)
		}
	}
	j.id = fmt.Sprintf("job-%06d", atomic.AddInt64(&s.nextID, 1))
	s.enqueueLocked(j)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	atomic.AddInt64(&s.submitted, 1)
	s.mu.Unlock()
	return j.id, nil
}

// enqueueLocked appends j to its band's FIFO and wakes the runners. The
// band's virtual time catches up to the busiest active band when it was
// idle, so a band returning from idleness gets its fair share, not a burst
// of banked credit.
func (s *Scheduler) enqueueLocked(j *job) {
	b := j.band
	if len(s.bands[b]) == 0 {
		minActive := -1.0
		for ob := Band(0); ob < NumBands; ob++ {
			if ob == b || len(s.bands[ob]) == 0 {
				continue
			}
			if minActive < 0 || s.vtime[ob] < minActive {
				minActive = s.vtime[ob]
			}
		}
		if minActive < 0 {
			// Everything idle: reset the clock to keep vtime bounded.
			for ob := range s.vtime {
				s.vtime[ob] = 0
			}
		} else if s.vtime[b] < minActive {
			s.vtime[b] = minActive
		}
	}
	s.bands[b] = append(s.bands[b], j)
	j.counted = true
	s.queuedTotal++
	s.queuedByBand[b]++
	s.queuedTenant[j.tenant]++
	s.qcond.Broadcast()
}

// uncountLocked drops j from queue accounting exactly once, whether it left
// the queue by dequeue or by being finalized while still queued.
func (s *Scheduler) uncountLocked(j *job) {
	if !j.counted {
		return
	}
	j.counted = false
	s.queuedTotal--
	s.queuedByBand[j.band]--
	if n := s.queuedTenant[j.tenant]; n > 1 {
		s.queuedTenant[j.tenant] = n - 1
	} else {
		delete(s.queuedTenant, j.tenant)
	}
}

// dequeueLocked pops the next runnable job, or nil when nothing is eligible.
// Reserved-slot runners (interactiveOnly) serve only the interactive band
// and don't charge its fair-share clock — reserved capacity is dedicated,
// not part of the weighted split. General runners pick the band by
// virtual-time WFQ, except that a head-of-line job older than AgingBoost is
// served first (oldest head wins), bounding every band's wait under any
// weight ratio.
func (s *Scheduler) dequeueLocked(interactiveOnly bool) *job {
	for {
		pick := Band(-1)
		charge := false
		if interactiveOnly {
			if len(s.bands[BandInteractive]) == 0 {
				return nil
			}
			pick = BandInteractive
		} else {
			if s.cfg.AgingBoost > 0 {
				now := time.Now()
				var oldest time.Time
				for b := Band(0); b < NumBands; b++ {
					if len(s.bands[b]) == 0 {
						continue
					}
					h := s.bands[b][0]
					if now.Sub(h.submitted) >= s.cfg.AgingBoost && (pick < 0 || h.submitted.Before(oldest)) {
						pick, oldest = b, h.submitted
					}
				}
			}
			if pick < 0 {
				for b := Band(0); b < NumBands; b++ {
					if len(s.bands[b]) == 0 {
						continue
					}
					if pick < 0 || s.vtime[b] < s.vtime[pick] {
						pick = b
					}
				}
			}
			if pick < 0 {
				return nil
			}
			charge = true
		}
		j := s.bands[pick][0]
		s.bands[pick] = s.bands[pick][1:]
		s.uncountLocked(j)
		if j.state.Terminal() {
			// Canceled while queued; its slot in the FIFO dies here.
			continue
		}
		if charge {
			s.vtime[pick] += 1 / float64(s.cfg.BandWeights[pick])
		}
		return j
	}
}

// hasWorkLocked reports whether a runner of the given kind could dequeue
// something (terminal leftovers count — dequeue discards them cheaply).
func (s *Scheduler) hasWorkLocked(interactiveOnly bool) bool {
	if interactiveOnly {
		return len(s.bands[BandInteractive]) > 0
	}
	for b := Band(0); b < NumBands; b++ {
		if len(s.bands[b]) > 0 {
			return true
		}
	}
	return false
}

// SubmitDataset generates the dataset described by spec, encodes its tiles,
// and submits them as one job.
func (s *Scheduler) SubmitDataset(spec pathology.DatasetSpec) (string, error) {
	d := pathology.Generate(spec)
	return s.Submit(spec.Name, pipeline.EncodeDataset(d))
}

// Cancel requests cancellation of a queued or running job. A queued job is
// finalized immediately (it stays in the queue; the runner that eventually
// dequeues it skips it); a running job stops dispatching new shards
// (in-flight shards complete, their work is discarded).
func (s *Scheduler) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return ErrNotFound
	}
	if j.state.Terminal() {
		s.mu.Unlock()
		return ErrTerminal
	}
	queued := j.state == Queued
	s.mu.Unlock()
	j.cancel()
	if queued {
		// finish is idempotent, so racing a runner that just dequeued the
		// job is safe: whoever transitions it first wins.
		s.finish(j, Canceled, nil, pipeline.Result{})
	}
	return nil
}

// CancelQueued cancels the job only if it is still queued, reporting
// whether it did. The server's pin-aware queue aging uses it to shed an
// aged-out queued job whose dataset pins block eviction under disk
// pressure, without ever touching a job that already started running.
func (s *Scheduler) CancelQueued(id string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok || j.state != Queued {
		s.mu.Unlock()
		return false
	}
	s.mu.Unlock()
	j.cancel()
	s.finish(j, Canceled, errors.New("sched: queued job aged out under disk pressure"), pipeline.Result{})
	return true
}

// Job returns a snapshot of the job with the given ID.
func (s *Scheduler) Job(id string) (JobStatus, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return s.snapshotLocked(j), true
}

// Jobs returns snapshots of every job in submission order.
func (s *Scheduler) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.snapshotLocked(s.jobs[id]))
	}
	return out
}

// Wait blocks until the job reaches a terminal state and returns its final
// snapshot, or fails when ctx expires first.
func (s *Scheduler) Wait(ctx context.Context, id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, ErrNotFound
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return JobStatus{}, ctx.Err()
	}
	st, _ := s.Job(id)
	return st, nil
}

// DeviceStats returns per-device accounting for the pool.
func (s *Scheduler) DeviceStats() []DeviceStats {
	out := make([]DeviceStats, len(s.devs))
	for i, d := range s.devs {
		ds := DeviceStats{
			ID:     d.id,
			Name:   "cpu",
			GPUs:   len(d.gpus),
			Shards: atomic.LoadInt64(&d.shards),
			Wall:   time.Duration(atomic.LoadInt64(&d.wallNS)),
		}
		if len(d.gpus) > 0 {
			ds.Name = d.gpus[0].Config().Name
			if len(d.gpus) > 1 {
				ds.Name = fmt.Sprintf("%dx %s", len(d.gpus), ds.Name)
			}
			ds.Launches, ds.BusySeconds = d.stats()
		}
		out[i] = ds
	}
	return out
}

// Stats returns a scheduler-wide snapshot.
func (s *Scheduler) Stats() Stats {
	st := Stats{
		Submitted: atomic.LoadInt64(&s.submitted),
		Completed: atomic.LoadInt64(&s.completed),
		Failed:    atomic.LoadInt64(&s.failed),
		Canceled:  atomic.LoadInt64(&s.canceled),
		Running:   int(atomic.LoadInt64(&s.running)),
		Devices:   s.DeviceStats(),
		Tenants:   make(map[string]TenantCounts),
	}
	s.mu.Lock()
	st.Queued = s.queuedTotal
	for b := Band(0); b < NumBands; b++ {
		st.Bands[b] = BandCounts{Queued: s.queuedByBand[b], Running: s.runningByBand[b]}
	}
	for t, n := range s.queuedTenant {
		tc := st.Tenants[t]
		tc.Queued = n
		st.Tenants[t] = tc
	}
	for t, n := range s.runningTenant {
		tc := st.Tenants[t]
		tc.Running = n
		st.Tenants[t] = tc
	}
	s.mu.Unlock()
	return st
}

// Close stops the runners after in-flight jobs finish and cancels queued
// jobs. Submit fails with ErrClosed afterwards.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.qcond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	// Runners are gone: finalize whatever is still queued.
	for {
		s.mu.Lock()
		var j *job
		for b := Band(0); b < NumBands && j == nil; b++ {
			if len(s.bands[b]) > 0 {
				j = s.bands[b][0]
				s.bands[b] = s.bands[b][1:]
				s.uncountLocked(j)
			}
		}
		s.mu.Unlock()
		if j == nil {
			return
		}
		s.finish(j, Canceled, nil, pipeline.Result{})
	}
}

func (s *Scheduler) snapshotLocked(j *job) JobStatus {
	st := JobStatus{
		ID:        j.id,
		Name:      j.name,
		Band:      j.band,
		Tenant:    j.tenant,
		State:     j.state,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
		Tiles:     j.tiles,
		Shards:    j.shards,
		Report:    j.report,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	for id := range j.devices {
		st.DeviceIDs = append(st.DeviceIDs, id)
	}
	// The recorder has its own lock and Snapshot takes no scheduler locks,
	// so snapshotting under s.mu is safe.
	st.Trace = j.trace.Snapshot()
	return st
}

// runner is one dispatch loop. Reserved-slot runners (interactiveOnly)
// serve only the interactive band, so even with every general runner deep
// in a batch job an interactive submission is picked up immediately.
func (s *Scheduler) runner(interactiveOnly bool) {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for !s.closed && !s.hasWorkLocked(interactiveOnly) {
			s.qcond.Wait()
		}
		if s.closed {
			// Close finalizes whatever is still queued after runners exit.
			s.mu.Unlock()
			return
		}
		j := s.dequeueLocked(interactiveOnly)
		s.mu.Unlock()
		if j != nil {
			s.runJob(j)
		}
	}
}

// runJob executes one job: shard, lease devices, run pipelines, merge.
func (s *Scheduler) runJob(j *job) {
	if j.ctx.Err() != nil {
		s.finish(j, Canceled, nil, pipeline.Result{})
		return
	}
	s.mu.Lock()
	if j.state.Terminal() {
		// Cancel finalized the job while it sat in the queue.
		s.mu.Unlock()
		return
	}
	// Capture the source under the lock: finish() releases j.src on any
	// terminal transition, and Cancel can finalize the job concurrently with
	// the shard goroutines below (it saw the job still queued before this
	// runner marked it running).
	src := j.src
	s.mu.Unlock()

	// Sharding scans every task's Weight — O(tiles) over a large stored
	// dataset — so it must not run under s.mu: every Jobs/Job/Stats/Groups
	// snapshot (and through them /jobs, /metrics, /healthz) would stall
	// behind it. Len/Weight are in-memory manifest reads on every source, so
	// scanning outside the lock races nothing but the terminal re-check
	// below: if Cancel finalized the job while it sharded, the shards are
	// discarded unstarted exactly as if the cancel had won the queue race.
	shardStart := time.Now()
	shards := shardTasks(src, s.cfg.MaxShards)

	s.mu.Lock()
	if j.state.Terminal() {
		s.mu.Unlock()
		return
	}
	j.state = Running
	j.started = time.Now()
	j.shards = len(shards)
	s.runningByBand[j.band]++
	s.runningTenant[j.tenant]++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.runningByBand[j.band]--
		if n := s.runningTenant[j.tenant]; n > 1 {
			s.runningTenant[j.tenant] = n - 1
		} else {
			delete(s.runningTenant, j.tenant)
		}
		s.mu.Unlock()
	}()
	// The queue span's detail names the band, so a slow-query trace shows
	// which class of backlog the job waited behind.
	j.trace.Add("queue", j.band.String(), j.submitted, shardStart)
	j.trace.Add("shard", fmt.Sprintf("%d shards", len(shards)), shardStart, j.started)
	if s.histQueueWait != nil {
		s.histQueueWait.ObserveDuration(shardStart.Sub(j.submitted))
		s.histQueueWaitBand[j.band].ObserveDuration(shardStart.Sub(j.submitted))
	}
	atomic.AddInt64(&s.running, 1)
	defer atomic.AddInt64(&s.running, -1)

	results := make([]pipeline.Result, len(shards))
	errs := make([]error, len(shards))
	ran := make([]bool, len(shards))
	var wg sync.WaitGroup
	for i, shard := range shards {
		// Lease a device per shard; the lease blocks until a pool member is
		// free, so a job never oversubscribes an exclusive device. Stop
		// dispatching as soon as the job is canceled or a shard has failed.
		if j.ctx.Err() != nil {
			break
		}
		var dev *device
		if j.band == BandInteractive && s.rpool != nil {
			// Interactive shards lease from whichever pool frees first; the
			// reserved slots exist exactly for this moment, when every
			// general slot is held by a non-preemptive batch shard.
			select {
			case dev = <-s.pool:
			case dev = <-s.rpool:
			case <-j.ctx.Done():
			}
		} else {
			select {
			case dev = <-s.pool:
			case <-j.ctx.Done():
			}
		}
		if dev == nil {
			break
		}
		wg.Add(1)
		go func(i int, idxs []int, dev *device) {
			defer wg.Done()
			defer func() { dev.home <- dev }()
			start := time.Now()
			pcfg := pipeline.Config{
				ParserWorkers:  s.cfg.Workers,
				Devices:        dev.gpus,
				CPUAggregators: s.cfg.cpuAggregators(),
				CPU:            pixelbox.CPUConfig{Workers: s.cfg.Workers},
				PixelBox:       s.cfg.PixelBox,
				Migration:      s.cfg.Migration,
				Registry:       s.cfg.Registry,
				ExecutorLabel:  fmt.Sprintf("slot%d/", dev.id),
				Warmth:         s.warm,
			}
			// Pool devices are long-lived, so their launch/busy counters are
			// cumulative; snapshot around the run to report only this
			// shard's share (the lease is exclusive, so the delta is exact).
			launches0, busy0 := dev.stats()
			// Materialize only this shard's tiles from the source — for a
			// stored dataset that means reading just these tiles' byte
			// ranges out of the segment file. Pre-parsed sources skip the
			// pipeline's parser stage entirely.
			res, err, executed := s.runShard(j.trace, fmt.Sprintf("slot%d shard%d", dev.id, i), src, idxs, pcfg)
			if !executed {
				// Materialization failure: no pipeline ran at all.
				errs[i] = err
				ran[i] = true
				j.cancel() // fail fast, as with a pipeline error
				s.mu.Lock()
				j.devices[dev.id] = struct{}{}
				s.mu.Unlock()
				return
			}
			if len(dev.gpus) > 0 {
				launches1, busy1 := dev.stats()
				res.Stats.KernelLaunches = launches1 - launches0
				res.Stats.DeviceSeconds = busy1 - busy0
			}
			atomic.AddInt64(&dev.shards, 1)
			atomic.AddInt64(&dev.wallNS, int64(time.Since(start)))
			results[i], errs[i], ran[i] = res, err, true
			if err != nil {
				j.cancel() // fail fast: stop dispatching the job's remaining shards
			}
			s.mu.Lock()
			j.devices[dev.id] = struct{}{}
			s.mu.Unlock()
		}(i, shard, dev)
	}
	wg.Wait()

	var firstErr error
	complete := true
	merged := make([]pipeline.Result, 0, len(shards))
	for i := range shards {
		if !ran[i] {
			complete = false
			continue
		}
		if errs[i] != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard %d/%d: %w", i+1, len(shards), errs[i])
		}
		merged = append(merged, results[i])
	}
	switch {
	case firstErr != nil:
		s.finish(j, Failed, firstErr, pipeline.Result{})
	case !complete || j.ctx.Err() != nil:
		// Either shards were never dispatched, or cancellation arrived after
		// the last shard went out: the work is discarded either way.
		s.finish(j, Canceled, nil, pipeline.Result{})
	default:
		mergeStart := time.Now()
		report := pipeline.Merge(merged...)
		j.trace.Add("merge", fmt.Sprintf("%d shards", len(merged)), mergeStart, time.Now())
		// Merge's WallTime is the max across shards, which assumes they ran
		// concurrently; with more shards than free devices they serialize,
		// so report the job's real elapsed time instead.
		report.Stats.WallTime = time.Since(j.started)
		s.finish(j, Done, nil, report)
	}
}

// runShard materializes one shard's tiles and runs them through the
// pipeline. Sources carrying decoded polygons (PolySource) enter the
// pipeline past the parser stage; executed reports whether a pipeline ran at
// all (false means materialization failed and err describes the tile).
// Materialize and execute spans are recorded under detail (slot + shard);
// the parse span's duration is the pipeline's summed parser busy time (its
// workers overlap, so this is CPU time, not a wall interval).
func (s *Scheduler) runShard(rec *trace.Recorder, detail string, src TaskSource, idxs []int, pcfg pipeline.Config) (res pipeline.Result, err error, executed bool) {
	matStart := time.Now()
	if ps, ok := src.(PolySource); ok {
		shard := make([]pipeline.PolyTask, 0, len(idxs))
		for _, ix := range idxs {
			t, terr := ps.PolyTask(ix)
			if terr != nil {
				return pipeline.Result{}, fmt.Errorf("materialize tile %d: %w", ix, terr), false
			}
			shard = append(shard, t)
		}
		execStart := time.Now()
		rec.Add("materialize", detail, matStart, execStart)
		res, err = pipeline.RunParsed(shard, pcfg)
		rec.Add("execute", detail, execStart, time.Now())
		return res, err, true
	}
	shard := make([]pipeline.FileTask, 0, len(idxs))
	for _, ix := range idxs {
		t, terr := src.Task(ix)
		if terr != nil {
			return pipeline.Result{}, fmt.Errorf("materialize tile %d: %w", ix, terr), false
		}
		shard = append(shard, t)
	}
	execStart := time.Now()
	rec.Add("materialize", detail, matStart, execStart)
	res, err = pipeline.Run(shard, pcfg)
	end := time.Now()
	rec.Add("execute", detail, execStart, end)
	if err == nil && res.Stats.ParserBusy > 0 {
		rec.AddDuration("parse", detail, execStart, res.Stats.ParserBusy)
	}
	return res, err, true
}

// finish moves a job to a terminal state. It is idempotent: Cancel can
// finalize a queued job while a runner races to dequeue it, and only the
// first finisher takes effect.
func (s *Scheduler) finish(j *job, state State, err error, report pipeline.Result) {
	// Bump the outcome counter before the terminal state becomes visible so
	// a client that polls "done" then scrapes /metrics sees it counted.
	switch state {
	case Done:
		atomic.AddInt64(&s.completed, 1)
	case Failed:
		atomic.AddInt64(&s.failed, 1)
	case Canceled:
		atomic.AddInt64(&s.canceled, 1)
	}
	s.mu.Lock()
	if j.state.Terminal() {
		s.mu.Unlock()
		// Undo the speculative counter bump: someone finished first.
		switch state {
		case Done:
			atomic.AddInt64(&s.completed, -1)
		case Failed:
			atomic.AddInt64(&s.failed, -1)
		case Canceled:
			atomic.AddInt64(&s.canceled, -1)
		}
		return
	}
	j.state = state
	j.err = err
	j.finished = time.Now()
	j.report = report
	// A job finalized while still queued leaves quota accounting now; its
	// FIFO slot is discarded by whichever dequeue reaches it.
	s.uncountLocked(j)
	src := j.src
	j.src = nil // release the input source; finished jobs are kept forever
	s.mu.Unlock()
	j.trace.Finish()
	if h := s.histJobDuration[state]; h != nil {
		// Job latency is submission → terminal: queue wait included, because
		// that is the latency a client experiences.
		h.ObserveDuration(j.finished.Sub(j.submitted))
	}
	if rel, ok := src.(SourceReleaser); ok {
		// Outside the lock: Release may take the store's lock (unpinning),
		// and only the first finisher sees a non-nil src, so this runs once.
		rel.Release()
	}
	j.cancel()
	close(j.done)
}

// shardTasks splits the source's tile indices into at most maxShards
// shards, never more than one shard per tile, weighting each shard by
// encoded tile byte size so shard finish times even out when tile sizes are
// skewed (round-robin by count let one segment-heavy shard serialize the
// job's tail). Longest-processing-time greedy: tiles are considered
// heaviest first and each goes to the currently lightest shard; ties break
// on lowest index, keeping the split deterministic for a given source.
func shardTasks(src TaskSource, maxShards int) [][]int {
	n := maxShards
	if n > src.Len() {
		n = src.Len()
	}
	if n < 1 {
		n = 1
	}
	order := make([]int, src.Len())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return src.Weight(order[a]) > src.Weight(order[b])
	})
	shards := make([][]int, n)
	loads := make([]int64, n)
	for _, ix := range order {
		lightest := 0
		for sh := 1; sh < n; sh++ {
			if loads[sh] < loads[lightest] {
				lightest = sh
			}
		}
		shards[lightest] = append(shards[lightest], ix)
		loads[lightest] += src.Weight(ix)
	}
	// Tiles within a shard run in index order; determinism of the merged
	// result never depends on it (tile-canonical folding), but ordered
	// reads keep store access sequential within each shard.
	for _, sh := range shards {
		sort.Ints(sh)
	}
	return shards
}
