package sched

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// queueJob builds a minimal queued job for white-box banded-queue tests.
// Only the fields the queue path touches are populated.
func queueJob(band Band, tenant string, submitted time.Time) *job {
	ctx, cancel := context.WithCancel(context.Background())
	return &job{
		band:      band,
		tenant:    tenant,
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		state:     Queued,
		submitted: submitted,
	}
}

// drainOrder enqueues the jobs and dequeues everything under one hold of the
// scheduler lock, so the runners never race the observation. It returns the
// dequeue order as band values.
func drainOrder(t *testing.T, s *Scheduler, js []*job) []Band {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range js {
		s.enqueueLocked(j)
	}
	var order []Band
	for {
		j := s.dequeueLocked(false)
		if j == nil {
			break
		}
		order = append(order, j.band)
	}
	if s.queuedTotal != 0 {
		t.Fatalf("queuedTotal = %d after drain, want 0", s.queuedTotal)
	}
	for b := Band(0); b < NumBands; b++ {
		if s.queuedByBand[b] != 0 {
			t.Fatalf("queuedByBand[%s] = %d after drain, want 0", b, s.queuedByBand[b])
		}
	}
	if len(s.queuedTenant) != 0 {
		t.Fatalf("queuedTenant = %v after drain, want empty", s.queuedTenant)
	}
	return order
}

// TestWFQInterleavesByWeight checks the virtual-time weighted-fair order:
// with the default 8:2 interactive:batch ratio and four jobs queued in each
// band, interactive must dominate the head of the dispatch order while batch
// still progresses (no strict priority, no starvation).
func TestWFQInterleavesByWeight(t *testing.T) {
	s := New(Config{Devices: 1, AgingBoost: -1, ReservedSlots: -1})
	defer s.Close()

	now := time.Now()
	var js []*job
	for i := 0; i < 4; i++ {
		js = append(js, queueJob(BandInteractive, "default", now))
	}
	for i := 0; i < 4; i++ {
		js = append(js, queueJob(BandBatch, "default", now))
	}
	order := drainOrder(t, s, js)
	if len(order) != 8 {
		t.Fatalf("drained %d jobs, want 8", len(order))
	}
	// vtime trace with weights 8 and 2: I(0→1/8) B(0→1/2) I I I, then the
	// remaining batch backlog. The exact sequence is deterministic because
	// ties break toward the lower band index (interactive).
	want := []Band{BandInteractive, BandBatch, BandInteractive, BandInteractive,
		BandInteractive, BandBatch, BandBatch, BandBatch}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order = %v, want %v", order, want)
		}
	}
}

// TestWFQIdleBandCatchesUp checks the vtime catch-up on idle return: a band
// that sat idle while another band consumed service must not bank credit and
// burst ahead of its weight when it becomes active again.
func TestWFQIdleBandCatchesUp(t *testing.T) {
	s := New(Config{Devices: 1, AgingBoost: -1, ReservedSlots: -1})
	defer s.Close()

	s.mu.Lock()
	defer s.mu.Unlock()
	// Batch runs alone for a while: its clock advances.
	for i := 0; i < 6; i++ {
		s.enqueueLocked(queueJob(BandBatch, "default", time.Now()))
	}
	for i := 0; i < 3; i++ {
		if j := s.dequeueLocked(false); j == nil || j.band != BandBatch {
			t.Fatalf("warm-up dequeue %d: got %+v, want batch", i, j)
		}
	}
	// Interactive wakes up. Without catch-up its vtime would be 0 (or reset),
	// letting it monopolize until it "caught up" to batch's clock; with
	// catch-up it starts level and shares by weight immediately.
	s.enqueueLocked(queueJob(BandInteractive, "default", time.Now()))
	if got, want := s.vtime[BandInteractive], s.vtime[BandBatch]; got < want {
		t.Fatalf("interactive vtime = %v after idle return, want >= batch's %v", got, want)
	}
	for {
		if j := s.dequeueLocked(false); j == nil {
			break
		}
	}
}

// TestAgingBoostBeatsWeight checks the starvation bound: a batch job whose
// queue wait exceeds AgingBoost is dispatched ahead of weighted-fair order
// even when the interactive band would otherwise win every dispatch.
func TestAgingBoostBeatsWeight(t *testing.T) {
	s := New(Config{Devices: 1, ReservedSlots: -1}) // default 30s AgingBoost
	defer s.Close()

	now := time.Now()
	aged := queueJob(BandBatch, "default", now.Add(-time.Minute))
	fresh := queueJob(BandInteractive, "default", now)

	s.mu.Lock()
	s.enqueueLocked(fresh)
	s.enqueueLocked(aged)
	first := s.dequeueLocked(false)
	second := s.dequeueLocked(false)
	s.mu.Unlock()
	if first == nil || first.band != BandBatch {
		t.Fatalf("first dispatch = %+v, want the aged batch job", first)
	}
	if second == nil || second.band != BandInteractive {
		t.Fatalf("second dispatch = %+v, want the interactive job", second)
	}
}

// TestReservedSlotDequeuesInteractiveOnly checks the reserved-runner
// contract: it never serves batch or ingest work, and serving interactive
// work does not charge the band's fair-share clock.
func TestReservedSlotDequeuesInteractiveOnly(t *testing.T) {
	s := New(Config{Devices: 1, AgingBoost: -1, ReservedSlots: -1})
	defer s.Close()

	s.mu.Lock()
	defer s.mu.Unlock()
	s.enqueueLocked(queueJob(BandBatch, "default", time.Now()))
	s.enqueueLocked(queueJob(BandIngest, "default", time.Now()))
	if j := s.dequeueLocked(true); j != nil {
		t.Fatalf("reserved dequeue returned a %s job, want nil", j.band)
	}
	s.enqueueLocked(queueJob(BandInteractive, "default", time.Now()))
	before := s.vtime[BandInteractive]
	j := s.dequeueLocked(true)
	if j == nil || j.band != BandInteractive {
		t.Fatalf("reserved dequeue = %+v, want the interactive job", j)
	}
	if s.vtime[BandInteractive] != before {
		t.Fatalf("reserved dequeue charged vtime (%v -> %v), want uncharged",
			before, s.vtime[BandInteractive])
	}
	for {
		if j := s.dequeueLocked(false); j == nil {
			break
		}
	}
}

// startFiller submits a multi-tile job and blocks until it is running, so
// subsequent submissions stay queued behind the busy slot.
func startFiller(t *testing.T, s *Scheduler) string {
	t.Helper()
	id, err := s.Submit("filler", testTasks(t, 4))
	if err != nil {
		t.Fatalf("submit filler: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, ok := s.Job(id)
		if ok && st.State == Running {
			return id
		}
		if ok && st.State.Terminal() {
			t.Fatalf("filler finished (%s) before anything queued behind it", st.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("filler never started running")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTenantQueueQuotaExact checks the per-tenant queued-job cap at the
// boundary: exactly MaxQueuedJobs submissions are admitted, the next gets
// ErrTenantQueue, and other tenants are unaffected.
func TestTenantQueueQuotaExact(t *testing.T) {
	s := New(Config{
		Devices: 1,
		TenantQueueLimit: func(tenant string) int {
			if tenant == "acme" {
				return 2
			}
			return 0
		},
	})
	defer s.Close()
	startFiller(t, s)

	tasks := testTasks(t, 1)
	for i := 0; i < 2; i++ {
		if _, err := s.SubmitJob(Tasks(tasks), JobOpts{Name: "ok", Tenant: "acme"}); err != nil {
			t.Fatalf("acme submit %d: %v", i, err)
		}
	}
	if _, err := s.SubmitJob(Tasks(tasks), JobOpts{Name: "over", Tenant: "acme"}); !errors.Is(err, ErrTenantQueue) {
		t.Fatalf("acme submit over quota: err = %v, want ErrTenantQueue", err)
	}
	if _, err := s.SubmitJob(Tasks(tasks), JobOpts{Name: "other", Tenant: "globex"}); err != nil {
		t.Fatalf("unlimited tenant blocked by acme's quota: %v", err)
	}
	st := s.Stats()
	if got := st.Tenants["acme"].Queued; got != 2 {
		t.Fatalf("acme queued = %d, want 2", got)
	}
}

// TestTenantQueueQuotaRace races concurrent submissions against one
// remaining quota slot: the check runs under the queue lock, so exactly one
// submission must win and every loser must see ErrTenantQueue.
func TestTenantQueueQuotaRace(t *testing.T) {
	s := New(Config{
		Devices: 1,
		TenantQueueLimit: func(tenant string) int {
			if tenant == "race" {
				return 1
			}
			return 0
		},
	})
	defer s.Close()
	startFiller(t, s)

	tasks := testTasks(t, 1)
	const racers = 8
	var wg sync.WaitGroup
	errsCh := make(chan error, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.SubmitJob(Tasks(tasks), JobOpts{Name: "racer", Tenant: "race"})
			errsCh <- err
		}()
	}
	wg.Wait()
	close(errsCh)
	wins, losses := 0, 0
	for err := range errsCh {
		switch {
		case err == nil:
			wins++
		case errors.Is(err, ErrTenantQueue):
			losses++
		default:
			t.Fatalf("unexpected submit error: %v", err)
		}
	}
	if wins != 1 || losses != racers-1 {
		t.Fatalf("race resolved to %d winners / %d quota rejections, want 1 / %d",
			wins, losses, racers-1)
	}
}

// TestCancelQueuedSemantics checks the pin-aging primitive: CancelQueued
// cancels only still-queued jobs (releasing the tenant's quota slot) and
// refuses running, finished, and unknown jobs.
func TestCancelQueuedSemantics(t *testing.T) {
	s := New(Config{
		Devices: 1,
		TenantQueueLimit: func(tenant string) int {
			if tenant == "acme" {
				return 1
			}
			return 0
		},
	})
	defer s.Close()
	filler := startFiller(t, s)

	tasks := testTasks(t, 1)
	queued, err := s.SubmitJob(Tasks(tasks), JobOpts{Name: "victim", Tenant: "acme"})
	if err != nil {
		t.Fatalf("submit queued job: %v", err)
	}
	if s.CancelQueued(filler) {
		t.Fatal("CancelQueued canceled a running job")
	}
	if s.CancelQueued("job-999999") {
		t.Fatal("CancelQueued claimed to cancel an unknown job")
	}
	if !s.CancelQueued(queued) {
		t.Fatal("CancelQueued refused a queued job")
	}
	st, ok := s.Job(queued)
	if !ok || st.State != Canceled {
		t.Fatalf("aged-out job state = %v, want Canceled", st.State)
	}
	if s.CancelQueued(queued) {
		t.Fatal("CancelQueued canceled an already-terminal job")
	}
	// The quota slot must be released: the tenant can queue again.
	if _, err := s.SubmitJob(Tasks(tasks), JobOpts{Name: "retry", Tenant: "acme"}); err != nil {
		t.Fatalf("resubmit after CancelQueued: %v", err)
	}
}
