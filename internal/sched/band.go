package sched

import "fmt"

// Band is a job's QoS class. The scheduler runs one weighted-fair queue per
// band (with aging) instead of a single FIFO, so a deep batch backlog — a
// large-K matrix fanning hundreds of cells — can no longer starve an ad-hoc
// interactive job, and heavy ingest coexists with heavy analytics on one
// daemon (the Polynesia HTAP framing, PAPERS.md).
type Band int

const (
	// BandInteractive is the default for ad-hoc jobs: highest weight, and
	// optionally a reserved executor slot no other band may lease.
	BandInteractive Band = iota
	// BandBatch is bulk analytical work: matrix cells and anything a caller
	// explicitly marks batch. Lowest weight; aging still bounds its wait.
	BandBatch
	// BandIngest is generation + ingestion work (spec/corpus jobs): the
	// "transactional" side of the HTAP split, weighted between the two.
	BandIngest
	// NumBands sizes per-band arrays.
	NumBands = 3
)

// String returns the lowercase wire name used by the HTTP API and metric
// labels.
func (b Band) String() string {
	switch b {
	case BandInteractive:
		return "interactive"
	case BandBatch:
		return "batch"
	case BandIngest:
		return "ingest"
	}
	return fmt.Sprintf("band(%d)", int(b))
}

// ParseBand maps a wire name to its band. Empty is not a band — callers
// decide their own default.
func ParseBand(s string) (Band, error) {
	switch s {
	case "interactive":
		return BandInteractive, nil
	case "batch":
		return BandBatch, nil
	case "ingest":
		return BandIngest, nil
	}
	return 0, fmt.Errorf("sched: unknown band %q (want interactive, batch, or ingest)", s)
}

// DefaultBandWeights is the weighted-fair-sharing ratio used when Config
// leaves BandWeights zero: under full contention interactive gets 8 of
// every 13 dispatches, ingest 3, batch 2. Batch throughput under an idle
// daemon is unaffected — weights only arbitrate when bands compete.
var DefaultBandWeights = [NumBands]int{BandInteractive: 8, BandBatch: 2, BandIngest: 3}

// BandCounts is one band's queue occupancy in a Stats snapshot.
type BandCounts struct {
	Queued  int
	Running int
}

// TenantCounts is one tenant's job occupancy in a Stats snapshot.
type TenantCounts struct {
	Queued  int
	Running int
}
