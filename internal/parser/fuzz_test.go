package parser

import (
	"testing"
)

// FuzzParse drives the FSM parser with arbitrary byte input. The contract
// under test: Parse must never panic — malformed segmentation output is an
// error, not a crash — and any input it accepts must round-trip through
// Encode back to the same polygons.
func FuzzParse(f *testing.F) {
	// Seed corpus: one valid line plus the malformed shapes segmentation
	// pipelines actually emit (truncation, bad keywords, stray separators,
	// sign/overflow games, missing newlines).
	seeds := []string{
		"0 POLYGON ((0 0,0 4,4 4,4 0))\n",
		"",
		"\n\n",
		"0",
		"0 ",
		"0 POLYGON",
		"0 POLYGON (",
		"0 POLYGON ((",
		"0 POLYGON ((0",
		"0 POLYGON ((0 ",
		"0 POLYGON ((0 0",
		"0 POLYGON ((0 0,",
		"0 POLYGON ((0 0))",
		"0 POLYGON ((0 0,0 4,4 4,4 0))",    // no trailing newline
		"0 POLYGON ((0 0,0 4,4 4,4 0)) \n", // trailing junk
		"0 polygon ((0 0,0 4,4 4,4 0))\n",
		"abc POLYGON ((0 0,0 4,4 4,4 0))\n",
		"0 POLYGON ((-0 -0,-0 4,4 4,4 -0))\n",
		"0 POLYGON ((- 0,0 4,4 4,4 0))\n",
		"0 POLYGON ((0 0,,0 4,4 4,4 0))\n",
		"0 POLYGON ((0 0 0,0 4,4 4,4 0))\n",
		"0 POLYGON ((99999999999999999999 0,0 4,4 4,4 0))\n",
		"0 POLYGON ((-99999999999999999999 0,0 4,4 4,4 0))\n",
		"0 POLYGON ((2147483647 2147483647,2147483647 2147483651,2147483651 2147483651,2147483651 2147483647))\n",
		"0 POLYGON ((0 0,0 4,4 4,4 0)))\n",
		"0 POLYGON ((0 0,1 1,2 2))\n", // non-rectilinear
		"0 POLYGON ((0 0,0 4))\n",     // too few vertices
		"0 POLYGON ((0 0,0 4,0 0,0 4))\n",
		"1 POLYGON ((5 5,5 9,9 9,9 5))\n2 POLYGON ((0 0,0 2,2 2,2 0))\n",
		"0 POLYGON\t((0 0,0 4,4 4,4 0))\n",
		"\x000 POLYGON ((0 0,0 4,4 4,4 0))\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		polys, err := Parse(data) // must not panic on any input
		if err != nil {
			return
		}
		// Accepted input must round-trip: encoding the parsed polygons and
		// re-parsing yields the same geometry.
		enc := Encode(polys)
		again, err := Parse(enc)
		if err != nil {
			t.Fatalf("round-trip re-parse failed: %v\ninput: %q\nencoded: %q", err, data, enc)
		}
		if len(again) != len(polys) {
			t.Fatalf("round-trip count %d != %d", len(again), len(polys))
		}
		for i := range polys {
			a, b := polys[i].Vertices(), again[i].Vertices()
			if len(a) != len(b) {
				t.Fatalf("polygon %d: vertex count %d != %d", i, len(b), len(a))
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("polygon %d vertex %d: %v != %v", i, j, b[j], a[j])
				}
			}
		}
	})
}
