package parser_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/geomtest"
	"repro/internal/gpu"
	"repro/internal/parser"
)

func TestEncodeParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var polys []*geom.Polygon
	for len(polys) < 40 {
		if p := geomtest.RandomPolygon(rng, 30); p != nil {
			polys = append(polys, p)
		}
	}
	data := parser.Encode(polys)
	got, err := parser.Parse(data)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(got) != len(polys) {
		t.Fatalf("parsed %d polygons, want %d", len(got), len(polys))
	}
	for i := range polys {
		a, b := polys[i].Vertices(), got[i].Vertices()
		if len(a) != len(b) {
			t.Fatalf("polygon %d vertex count %d != %d", i, len(b), len(a))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("polygon %d vertex %d: %v != %v", i, j, b[j], a[j])
			}
		}
		if got[i].Area() != polys[i].Area() {
			t.Fatalf("polygon %d area mismatch", i)
		}
	}
}

func TestParseNegativeCoordinates(t *testing.T) {
	p := geom.MustPolygon([]geom.Point{{X: -5, Y: -5}, {X: -2, Y: -5}, {X: -2, Y: -1}, {X: -5, Y: -1}})
	data := parser.Encode([]*geom.Polygon{p})
	got, err := parser.Parse(data)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got[0].Area() != 12 {
		t.Fatalf("area = %d", got[0].Area())
	}
}

func TestParseEmpty(t *testing.T) {
	got, err := parser.Parse(nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty input: %v, %d polys", err, len(got))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"garbage", "hello world\n"},
		{"truncated", "0 POLYGON ((0 0,2 0,2 2"},
		{"bad keyword", "0 POLYGONE ((0 0,2 0,2 2,0 2))\n"},
		{"missing y", "0 POLYGON ((0 ,2 0,2 2,0 2))\n"},
		{"diagonal polygon", "0 POLYGON ((0 0,2 2,4 0,2 -2))\n"},
		{"trailing junk", "0 POLYGON ((0 0,2 0,2 2,0 2))x\n"},
		{"letters in digits", "0 POLYGON ((0 0,2a 0,2 2,0 2))\n"},
	}
	for _, c := range cases {
		if _, err := parser.Parse([]byte(c.input)); err == nil {
			t.Errorf("%s: expected error", c.name)
		} else if !strings.Contains(err.Error(), "line") {
			t.Errorf("%s: error lacks line info: %v", c.name, err)
		}
	}
}

func TestParseMultiLineErrorPosition(t *testing.T) {
	good := "0 POLYGON ((0 0,2 0,2 2,0 2))\n"
	bad := good + good + "2 POLYGON ((0 0,1 1,2 0,1 -1))\n"
	_, err := parser.Parse([]byte(bad))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("want line 3 error, got %v", err)
	}
}

func TestEncodeFormat(t *testing.T) {
	p := geom.Rect(1, 2, 3, 4)
	data := parser.Encode([]*geom.Polygon{p})
	want := "0 POLYGON ((1 2,3 2,3 4,1 4))\n"
	if string(data) != want {
		t.Fatalf("encoded %q, want %q", data, want)
	}
}

func TestGPUParseMatchesCPUAndChargesDevice(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var polys []*geom.Polygon
	for len(polys) < 30 {
		if p := geomtest.RandomPolygon(rng, 30); p != nil {
			polys = append(polys, p)
		}
	}
	data := parser.Encode(polys)
	dev := gpu.NewDevice(gpu.GTX580())
	got, secs, err := parser.GPUParse(dev, data, 200e6)
	if err != nil {
		t.Fatalf("gpu parse: %v", err)
	}
	if len(got) != len(polys) {
		t.Fatalf("gpu parsed %d, want %d", len(got), len(polys))
	}
	if secs <= 0 {
		t.Fatal("gpu parse charged no device time")
	}
	if dev.Launches() != 1 {
		t.Fatalf("launches = %d", dev.Launches())
	}
	// Device throughput should be within 2x of the requested host parity.
	modelBPS := float64(len(data)) / secs
	if modelBPS > 500e6 {
		t.Fatalf("GPU parser throughput %e B/s implausibly above host parity", modelBPS)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	p := geom.Rect(0, 0, 2, 2)
	a := parser.Encode([]*geom.Polygon{p, p})
	b := parser.Encode([]*geom.Polygon{p, p})
	if !bytes.Equal(a, b) {
		t.Fatal("encode not deterministic")
	}
}
