// Package parser implements the polygon-file text format and the parsing
// stage of the SCCG pipeline (paper §4.1, stage 1).
//
// Raw segmentation output arrives as text files, one polygon per line in a
// WKT-like syntax. Parsing transforms text into the binary polygon
// representation; the paper implements it as a finite state machine and
// notes (§4.2, citing Asanovic et al.) that FSMs parallelise poorly — the
// GPU port of the parser only matches CPU speed, which is exactly what makes
// the parser stage a useful migration target when the GPU would otherwise
// idle.
package parser

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/gpu"
)

// Encode serialises polygons into the text format, one per line:
//
//	<id> POLYGON ((x y,x y,...))
//
// This is the raw-data form produced by segmentation pipelines and consumed
// by the parser stage.
func Encode(polys []*geom.Polygon) []byte {
	var out []byte
	for i, p := range polys {
		out = appendInt(out, int64(i))
		out = append(out, " POLYGON (("...)
		for j, v := range p.Vertices() {
			if j > 0 {
				out = append(out, ',')
			}
			out = appendInt(out, int64(v.X))
			out = append(out, ' ')
			out = appendInt(out, int64(v.Y))
		}
		out = append(out, "))\n"...)
	}
	return out
}

func appendInt(dst []byte, v int64) []byte {
	if v < 0 {
		dst = append(dst, '-')
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(dst, buf[i:]...)
}

// parse states of the FSM.
type state uint8

const (
	stLineStart state = iota
	stID
	stKeyword
	stOpen
	stX
	stXDigits
	stY
	stYDigits
	stAfterPair
	stLineEnd
)

// Parse runs the FSM over one polygon file and returns the decoded,
// validated polygons. Lines that decode into invalid polygons (too few
// vertices, non-rectilinear, self-intersecting) are rejected with an error
// carrying the line number.
func Parse(data []byte) ([]*geom.Polygon, error) {
	var polys []*geom.Polygon
	var verts []geom.Point
	var cur int64
	var neg bool
	var x int32
	line := 1
	st := stLineStart
	kw := 0
	const keyword = " POLYGON (("

	fail := func(pos int, c byte) error {
		return fmt.Errorf("parser: line %d: unexpected %q at byte %d", line, c, pos)
	}

	for pos := 0; pos < len(data); pos++ {
		c := data[pos]
		switch st {
		case stLineStart:
			switch {
			case c >= '0' && c <= '9':
				st = stID
			case c == '\n':
				line++
			default:
				return nil, fail(pos, c)
			}
		case stID:
			switch {
			case c >= '0' && c <= '9':
				// skip id digits
			case c == ' ':
				st, kw = stKeyword, 1
			default:
				return nil, fail(pos, c)
			}
		case stKeyword:
			if kw >= len(keyword) || c != keyword[kw] {
				return nil, fail(pos, c)
			}
			kw++
			if kw == len(keyword) {
				st = stX
				verts = verts[:0]
			}
		case stX:
			switch {
			case c == '-':
				neg, cur, st = true, 0, stXDigits
			case c >= '0' && c <= '9':
				neg, cur, st = false, int64(c-'0'), stXDigits
			default:
				return nil, fail(pos, c)
			}
		case stXDigits:
			switch {
			case c >= '0' && c <= '9':
				cur = cur*10 + int64(c-'0')
			case c == ' ':
				x = finish(cur, neg)
				st = stY
			default:
				return nil, fail(pos, c)
			}
		case stY:
			switch {
			case c == '-':
				neg, cur, st = true, 0, stYDigits
			case c >= '0' && c <= '9':
				neg, cur, st = false, int64(c-'0'), stYDigits
			default:
				return nil, fail(pos, c)
			}
		case stYDigits:
			switch {
			case c >= '0' && c <= '9':
				cur = cur*10 + int64(c-'0')
			case c == ',':
				verts = append(verts, geom.Point{X: x, Y: finish(cur, neg)})
				st = stX
			case c == ')':
				verts = append(verts, geom.Point{X: x, Y: finish(cur, neg)})
				st = stAfterPair
			default:
				return nil, fail(pos, c)
			}
		case stAfterPair:
			if c != ')' {
				return nil, fail(pos, c)
			}
			vs := make([]geom.Point, len(verts))
			copy(vs, verts)
			p, err := geom.NewPolygon(vs)
			if err != nil {
				return nil, fmt.Errorf("parser: line %d: %w", line, err)
			}
			polys = append(polys, p)
			st = stLineEnd
		case stLineEnd:
			if c != '\n' {
				return nil, fail(pos, c)
			}
			line++
			st = stLineStart
		}
	}
	if st != stLineStart {
		return nil, fmt.Errorf("parser: truncated input at line %d", line)
	}
	return polys, nil
}

func finish(v int64, neg bool) int32 {
	if neg {
		return int32(-v)
	}
	return int32(v)
}

// GPUParse parses a polygon file "on the GPU": the decoding runs on the
// host (results identical to Parse), while the virtual device is charged
// time equivalent to the host's single-core parsing throughput.
//
// This parity is the paper's own measurement (§4.2): the GPU parser — an FSM
// whose warps fully serialise on per-character divergence and whose byte
// loads cannot coalesce — achieves performance "only comparable to its CPU
// counterpart". hostBytesPerSec is the calibrated CPU parser throughput.
func GPUParse(dev *gpu.Device, data []byte, hostBytesPerSec float64) ([]*geom.Polygon, float64, error) {
	polys, err := Parse(data)
	if err != nil {
		return nil, 0, err
	}
	if hostBytesPerSec <= 0 {
		hostBytesPerSec = 100e6
	}
	cfg := dev.Config()
	targetSecs := float64(len(data)) / hostBytesPerSec
	// Express the cost as a kernel over 4 KiB chunks whose per-byte charge
	// realises the target throughput, so device accounting (busy time,
	// launches) stays consistent with other kernels.
	const chunk = 4096
	blocks := (len(data) + chunk - 1) / chunk
	if blocks == 0 {
		blocks = 1
	}
	cyclesPerBlock := targetSecs * cfg.ClockHz * float64(cfg.SMs) / float64(blocks)
	res := dev.Launch(blocks, 32, 0, func(b *gpu.Block) {
		b.Uniform(int(cyclesPerBlock))
	})
	xfer := dev.Transfer(int64(len(data)))
	return polys, res.DeviceSeconds + xfer, nil
}
