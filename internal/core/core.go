// Package core anchors the repository layout's "primary contribution" slot:
// the paper's core contribution is the PixelBox algorithm, implemented in
// package repro/internal/pixelbox together with its GPU kernel, algorithmic
// ablations and CPU port. This package re-exports the PixelBox entry points
// under the canonical name so readers exploring internal/core land on the
// real implementation.
package core

import (
	"repro/internal/gpu"
	"repro/internal/pixelbox"
)

// Core types of the PixelBox algorithm.
type (
	// Pair is one polygon pair to cross-compare.
	Pair = pixelbox.Pair
	// AreaResult is the exact intersection/union pixel count of a pair.
	AreaResult = pixelbox.AreaResult
	// Config tunes a PixelBox launch.
	Config = pixelbox.Config
	// Variant selects algorithmic and implementation ablations.
	Variant = pixelbox.Variant
	// CPUConfig tunes the CPU port.
	CPUConfig = pixelbox.CPUConfig
)

// RunGPU executes PixelBox on the simulated GPU; see pixelbox.RunGPU.
func RunGPU(dev *gpu.Device, pairs []Pair, cfg Config) ([]AreaResult, gpu.LaunchResult, float64) {
	return pixelbox.RunGPU(dev, pairs, cfg)
}

// RunCPU executes the single-core CPU port; see pixelbox.RunCPU.
func RunCPU(pairs []Pair, cfg CPUConfig) []AreaResult {
	return pixelbox.RunCPU(pairs, cfg)
}

// RunCPUParallel executes the multi-worker CPU port; see
// pixelbox.RunCPUParallel.
func RunCPUParallel(pairs []Pair, cfg CPUConfig) []AreaResult {
	return pixelbox.RunCPUParallel(pairs, cfg)
}
