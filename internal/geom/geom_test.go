package geom

import (
	"math/rand"
	"testing"
)

// unit square covering pixel (0,0).
func unitSquare(t *testing.T) *Polygon {
	t.Helper()
	return Rect(0, 0, 1, 1)
}

// lShape is the L-polygon covering pixels {(0,0),(1,0),(0,1)}.
func lShape() *Polygon {
	return MustPolygon([]Point{{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}})
}

func TestMBRBasics(t *testing.T) {
	m := MBR{0, 0, 4, 3}
	if m.IsEmpty() {
		t.Fatal("non-empty MBR reported empty")
	}
	if got := m.Pixels(); got != 12 {
		t.Fatalf("Pixels = %d, want 12", got)
	}
	if got := m.Width(); got != 4 {
		t.Fatalf("Width = %d, want 4", got)
	}
	if got := m.Height(); got != 3 {
		t.Fatalf("Height = %d, want 3", got)
	}
}

func TestMBREmpty(t *testing.T) {
	cases := []MBR{
		{},
		{5, 5, 5, 9},
		{5, 5, 9, 5},
		{5, 5, 4, 9},
		EmptyMBR(),
	}
	for _, m := range cases {
		if !m.IsEmpty() {
			t.Errorf("%v should be empty", m)
		}
		if m.Pixels() != 0 {
			t.Errorf("%v Pixels should be 0", m)
		}
	}
}

func TestMBRIntersects(t *testing.T) {
	a := MBR{0, 0, 4, 4}
	cases := []struct {
		b    MBR
		want bool
	}{
		{MBR{2, 2, 6, 6}, true},
		{MBR{4, 0, 8, 4}, false}, // edge-adjacent: no shared pixel
		{MBR{0, 4, 4, 8}, false},
		{MBR{3, 3, 4, 4}, true},
		{MBR{-4, -4, 0, 0}, false},
		{MBR{-1, -1, 1, 1}, true},
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("%v.Intersects(%v) = %v, want %v", a, c.b, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("Intersects not symmetric for %v, %v", a, c.b)
		}
	}
}

func TestMBRIntersectionUnion(t *testing.T) {
	a := MBR{0, 0, 4, 4}
	b := MBR{2, 1, 6, 3}
	got := a.Intersection(b)
	want := MBR{2, 1, 4, 3}
	if got != want {
		t.Fatalf("Intersection = %v, want %v", got, want)
	}
	u := a.Union(b)
	if u != (MBR{0, 0, 6, 4}) {
		t.Fatalf("Union = %v", u)
	}
	if !a.Intersection(MBR{9, 9, 12, 12}).IsEmpty() {
		t.Fatal("disjoint intersection should be empty")
	}
	if EmptyMBR().Union(a) != a {
		t.Fatal("union with empty should be identity")
	}
}

func TestMBRContains(t *testing.T) {
	a := MBR{0, 0, 4, 4}
	if !a.Contains(MBR{1, 1, 3, 3}) {
		t.Fatal("inner not contained")
	}
	if !a.Contains(a) {
		t.Fatal("self not contained")
	}
	if a.Contains(MBR{1, 1, 5, 3}) {
		t.Fatal("overflowing contained")
	}
	if !a.Contains(MBR{}) {
		t.Fatal("empty should be contained")
	}
}

func TestNewPolygonValidation(t *testing.T) {
	cases := []struct {
		name string
		vs   []Point
		want error
	}{
		{"too few", []Point{{0, 0}, {1, 0}, {1, 1}}, ErrTooFewVertices},
		{"odd", []Point{{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}}, ErrOddVertexCount},
		{"diagonal", []Point{{0, 0}, {1, 1}, {2, 0}, {1, -1}}, ErrNotRectilinear},
		{"zero edge", []Point{{0, 0}, {0, 0}, {1, 0}, {1, 1}}, ErrZeroLengthEdge},
		{"not alternating", []Point{{0, 0}, {1, 0}, {2, 0}, {2, 1}, {1, 1}, {0, 1}}, ErrNotAlternating},
		{"repeated vertex", []Point{{0, 0}, {2, 0}, {2, 2}, {1, 2}, {1, 1}, {2, 1}, {2, 2}, {0, 2}}, ErrRepeatedVertex},
	}
	for _, c := range cases {
		if _, err := NewPolygon(c.vs); err != c.want {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestNewPolygonSelfIntersection(t *testing.T) {
	// A bow-tie-like rectilinear loop: edges cross.
	vs := []Point{{0, 0}, {3, 0}, {3, 2}, {1, 2}, {1, -1}, {0, -1}}
	if _, err := NewPolygon(vs); err != ErrSelfIntersecting {
		t.Fatalf("err = %v, want ErrSelfIntersecting", err)
	}
}

func TestPolygonAreaSquare(t *testing.T) {
	p := unitSquare(t)
	if p.Area() != 1 {
		t.Fatalf("unit square area = %d", p.Area())
	}
	r := Rect(2, 3, 7, 11)
	if r.Area() != 40 {
		t.Fatalf("rect area = %d, want 40", r.Area())
	}
}

func TestPolygonAreaLShape(t *testing.T) {
	p := lShape()
	if p.Area() != 3 {
		t.Fatalf("L area = %d, want 3", p.Area())
	}
	if p.MBR() != (MBR{0, 0, 2, 2}) {
		t.Fatalf("L MBR = %v", p.MBR())
	}
}

func TestPolygonAreaWindingInvariant(t *testing.T) {
	cw := MustPolygon([]Point{{0, 0}, {0, 2}, {2, 2}, {2, 0}})
	ccw := MustPolygon([]Point{{0, 0}, {2, 0}, {2, 2}, {0, 2}})
	if cw.Area() != ccw.Area() {
		t.Fatalf("winding changed area: %d vs %d", cw.Area(), ccw.Area())
	}
}

func TestContainsPixelSquare(t *testing.T) {
	p := Rect(1, 1, 3, 3)
	for y := int32(-1); y < 5; y++ {
		for x := int32(-1); x < 5; x++ {
			want := x >= 1 && x < 3 && y >= 1 && y < 3
			if got := p.ContainsPixel(x, y); got != want {
				t.Errorf("ContainsPixel(%d,%d) = %v, want %v", x, y, got, want)
			}
		}
	}
}

func TestContainsPixelLShape(t *testing.T) {
	p := lShape()
	inside := map[[2]int32]bool{{0, 0}: true, {1, 0}: true, {0, 1}: true}
	for y := int32(-1); y < 3; y++ {
		for x := int32(-1); x < 3; x++ {
			want := inside[[2]int32{x, y}]
			if got := p.ContainsPixel(x, y); got != want {
				t.Errorf("ContainsPixel(%d,%d) = %v, want %v", x, y, got, want)
			}
		}
	}
}

func TestContainsPixelAreaAgreement(t *testing.T) {
	// Pixel count via ray casting must equal the shoelace area on a
	// non-convex polygon (U shape).
	p := MustPolygon([]Point{{0, 0}, {5, 0}, {5, 4}, {4, 4}, {4, 1}, {1, 1}, {1, 4}, {0, 4}})
	var count int64
	m := p.MBR()
	for y := m.MinY; y < m.MaxY; y++ {
		for x := m.MinX; x < m.MaxX; x++ {
			if p.ContainsPixel(x, y) {
				count++
			}
		}
	}
	if count != p.Area() {
		t.Fatalf("pixel count %d != shoelace area %d", count, p.Area())
	}
}

func TestBoxPositionSquare(t *testing.T) {
	p := Rect(0, 0, 8, 8)
	cases := []struct {
		box  MBR
		want BoxPos
	}{
		{MBR{1, 1, 4, 4}, BoxInside},
		{MBR{0, 0, 8, 8}, BoxInside}, // coincident borders: centre decides
		{MBR{10, 10, 12, 12}, BoxOutside},
		{MBR{6, 6, 10, 10}, BoxHover},
		{MBR{-2, -2, 10, 10}, BoxHover}, // polygon strictly inside box
	}
	for _, c := range cases {
		if got := p.BoxPosition(c.box); got != c.want {
			t.Errorf("BoxPosition(%v) = %v, want %v", c.box, got, c.want)
		}
	}
}

func TestBoxPositionLemma1Cases(t *testing.T) {
	// Fig. 5 of the paper: (c) polygon fully inside the box is hover even
	// though no edges cross the box border.
	p := Rect(4, 4, 6, 6)
	if got := p.BoxPosition(MBR{0, 0, 10, 10}); got != BoxHover {
		t.Fatalf("enclosing box = %v, want hover", got)
	}
	// (d) edge crossing through the box border.
	if got := p.BoxPosition(MBR{5, 5, 9, 9}); got != BoxHover {
		t.Fatalf("crossing box = %v, want hover", got)
	}
	// (a) outside with nearby edges.
	if got := p.BoxPosition(MBR{7, 7, 9, 9}); got != BoxOutside {
		t.Fatalf("outside box = %v, want outside", got)
	}
}

// TestBoxPositionConsistentWithPixels is the key invariant behind PixelBox:
// a box classified Inside/Outside must agree with per-pixel ray casting for
// every pixel it covers.
func TestBoxPositionConsistentWithPixels(t *testing.T) {
	p := MustPolygon([]Point{{0, 0}, {6, 0}, {6, 2}, {4, 2}, {4, 4}, {6, 4}, {6, 6}, {0, 6}, {0, 4}, {2, 4}, {2, 2}, {0, 2}})
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 500; trial++ {
		x0 := rng.Int31n(8) - 1
		y0 := rng.Int31n(8) - 1
		w := 1 + rng.Int31n(4)
		h := 1 + rng.Int31n(4)
		box := MBR{x0, y0, x0 + w, y0 + h}
		pos := p.BoxPosition(box)
		if pos == BoxHover {
			continue
		}
		for y := box.MinY; y < box.MaxY; y++ {
			for x := box.MinX; x < box.MaxX; x++ {
				in := p.ContainsPixel(x, y)
				if pos == BoxInside && !in {
					t.Fatalf("box %v classified inside but pixel (%d,%d) is outside", box, x, y)
				}
				if pos == BoxOutside && in {
					t.Fatalf("box %v classified outside but pixel (%d,%d) is inside", box, x, y)
				}
			}
		}
	}
}

func TestScale(t *testing.T) {
	p := lShape()
	s := p.Scale(3)
	if s.Area() != p.Area()*9 {
		t.Fatalf("scaled area = %d, want %d", s.Area(), p.Area()*9)
	}
	if s.MBR() != (MBR{0, 0, 6, 6}) {
		t.Fatalf("scaled MBR = %v", s.MBR())
	}
	if p.Scale(1) != p {
		t.Fatal("Scale(1) should return the receiver")
	}
	// Scaled polygon must still satisfy pixel-count == shoelace.
	var count int64
	m := s.MBR()
	for y := m.MinY; y < m.MaxY; y++ {
		for x := m.MinX; x < m.MaxX; x++ {
			if s.ContainsPixel(x, y) {
				count++
			}
		}
	}
	if count != s.Area() {
		t.Fatalf("scaled pixel count %d != area %d", count, s.Area())
	}
}

func TestTranslate(t *testing.T) {
	p := lShape()
	q := p.Translate(10, -5)
	if q.Area() != p.Area() {
		t.Fatal("translate changed area")
	}
	if q.MBR() != (MBR{10, -5, 12, -3}) {
		t.Fatalf("translated MBR = %v", q.MBR())
	}
	if !q.ContainsPixel(10, -5) {
		t.Fatal("translated polygon lost pixel")
	}
}

func TestEdges(t *testing.T) {
	p := lShape()
	hs := p.HorizontalEdges()
	vs := p.VerticalEdges()
	if len(hs) != 3 || len(vs) != 3 {
		t.Fatalf("edge counts = %d,%d, want 3,3", len(hs), len(vs))
	}
	for _, h := range hs {
		if h.X1 >= h.X2 {
			t.Fatalf("unnormalised horizontal edge %+v", h)
		}
	}
	for _, v := range vs {
		if v.Y1 >= v.Y2 {
			t.Fatalf("unnormalised vertical edge %+v", v)
		}
	}
}

func TestBoxPosString(t *testing.T) {
	if BoxInside.String() != "inside" || BoxOutside.String() != "outside" || BoxHover.String() != "hover" {
		t.Fatal("BoxPos strings wrong")
	}
}
