// Package geom provides the geometric primitives used throughout the SCCG
// reproduction: integer points, minimum bounding rectangles, and rectilinear
// polygons as segmented from raster pathology images.
//
// Polygons extracted from medical images have a special structure that the
// whole system exploits (paper §3.1): vertex coordinates are integer-valued
// and every edge is either horizontal or vertical, because segmentation
// boundaries follow the pixel grid of the source raster image. A polygon is
// interpreted as the set of unit pixels enclosed by its boundary; the shoelace
// area of such a polygon equals its pixel count exactly.
package geom

import (
	"errors"
	"fmt"
	"math"
)

// Point is an integer-valued vertex on the pixel grid of a source image.
type Point struct {
	X, Y int32
}

// String renders the point as "(x,y)".
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// MBR is a minimum bounding rectangle in pixel-grid coordinates. The
// rectangle spans [MinX, MaxX] x [MinY, MaxY] in geometric coordinates, which
// covers the pixels with x in [MinX, MaxX) and y in [MinY, MaxY).
type MBR struct {
	MinX, MinY, MaxX, MaxY int32
}

// EmptyMBR returns an MBR that contains nothing and acts as the identity for
// Extend.
func EmptyMBR() MBR {
	return MBR{
		MinX: math.MaxInt32, MinY: math.MaxInt32,
		MaxX: math.MinInt32, MaxY: math.MinInt32,
	}
}

// IsEmpty reports whether the MBR covers no pixels.
func (m MBR) IsEmpty() bool { return m.MinX >= m.MaxX || m.MinY >= m.MaxY }

// Width returns the horizontal extent in pixels.
func (m MBR) Width() int32 {
	if m.IsEmpty() {
		return 0
	}
	return m.MaxX - m.MinX
}

// Height returns the vertical extent in pixels.
func (m MBR) Height() int32 {
	if m.IsEmpty() {
		return 0
	}
	return m.MaxY - m.MinY
}

// Pixels returns the number of pixels covered by the MBR.
func (m MBR) Pixels() int64 {
	if m.IsEmpty() {
		return 0
	}
	return int64(m.MaxX-m.MinX) * int64(m.MaxY-m.MinY)
}

// Intersects reports whether two MBRs share at least one pixel. This is the
// "&&" operator of the optimised cross-comparing query (paper Fig. 1b).
func (m MBR) Intersects(o MBR) bool {
	return m.MinX < o.MaxX && o.MinX < m.MaxX && m.MinY < o.MaxY && o.MinY < m.MaxY
}

// Touches reports whether two MBRs intersect or share a boundary.
func (m MBR) Touches(o MBR) bool {
	return m.MinX <= o.MaxX && o.MinX <= m.MaxX && m.MinY <= o.MaxY && o.MinY <= m.MaxY
}

// Intersection returns the overlapping region of two MBRs; the result is
// empty when they do not intersect.
func (m MBR) Intersection(o MBR) MBR {
	r := MBR{
		MinX: max32(m.MinX, o.MinX), MinY: max32(m.MinY, o.MinY),
		MaxX: min32(m.MaxX, o.MaxX), MaxY: min32(m.MaxY, o.MaxY),
	}
	if r.IsEmpty() {
		return MBR{}
	}
	return r
}

// Union returns the smallest MBR covering both inputs.
func (m MBR) Union(o MBR) MBR {
	if m.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return m
	}
	return MBR{
		MinX: min32(m.MinX, o.MinX), MinY: min32(m.MinY, o.MinY),
		MaxX: max32(m.MaxX, o.MaxX), MaxY: max32(m.MaxY, o.MaxY),
	}
}

// Extend grows the MBR to include p as a vertex (geometric coordinate).
func (m MBR) Extend(p Point) MBR {
	return MBR{
		MinX: min32(m.MinX, p.X), MinY: min32(m.MinY, p.Y),
		MaxX: max32(m.MaxX, p.X), MaxY: max32(m.MaxY, p.Y),
	}
}

// ContainsPixel reports whether the pixel at (x, y) lies inside the MBR.
func (m MBR) ContainsPixel(x, y int32) bool {
	return x >= m.MinX && x < m.MaxX && y >= m.MinY && y < m.MaxY
}

// Contains reports whether o lies entirely within m.
func (m MBR) Contains(o MBR) bool {
	if o.IsEmpty() {
		return true
	}
	return o.MinX >= m.MinX && o.MaxX <= m.MaxX && o.MinY >= m.MinY && o.MaxY <= m.MaxY
}

// Center returns the geometric centre of the MBR in doubled coordinates, so
// that half-integer centres remain exactly representable in integers.
func (m MBR) Center() (cx2, cy2 int64) {
	return int64(m.MinX) + int64(m.MaxX), int64(m.MinY) + int64(m.MaxY)
}

// Scale multiplies all coordinates by factor (used by the scale-factor
// experiments of paper §5.2, which grow polygons by multiplying vertex
// coordinates).
func (m MBR) Scale(factor int32) MBR {
	return MBR{m.MinX * factor, m.MinY * factor, m.MaxX * factor, m.MaxY * factor}
}

func (m MBR) String() string {
	return fmt.Sprintf("[%d,%d %d,%d]", m.MinX, m.MinY, m.MaxX, m.MaxY)
}

// HEdge is a horizontal polygon edge at height Y spanning [X1, X2] with
// X1 < X2 (normalised regardless of traversal direction).
type HEdge struct {
	Y, X1, X2 int32
}

// VEdge is a vertical polygon edge at abscissa X spanning [Y1, Y2] with
// Y1 < Y2 (normalised regardless of traversal direction).
type VEdge struct {
	X, Y1, Y2 int32
}

// Polygon is a simple rectilinear polygon: a closed loop of vertices with
// strictly alternating horizontal and vertical edges and integer coordinates.
// The vertex slice stores each corner exactly once; the closing edge from the
// last vertex back to the first is implicit.
//
// The zero value is an empty polygon with no area.
type Polygon struct {
	vertices []Point
	mbr      MBR
	area     int64 // pixel count; cached at construction
}

// Validation errors returned by NewPolygon.
var (
	ErrTooFewVertices   = errors.New("geom: rectilinear polygon needs at least 4 vertices")
	ErrOddVertexCount   = errors.New("geom: rectilinear polygon must have an even vertex count")
	ErrNotRectilinear   = errors.New("geom: consecutive vertices must differ in exactly one axis")
	ErrZeroLengthEdge   = errors.New("geom: polygon has a zero-length edge")
	ErrNotAlternating   = errors.New("geom: edges must alternate horizontal/vertical")
	ErrZeroArea         = errors.New("geom: polygon encloses no pixels")
	ErrRepeatedVertex   = errors.New("geom: polygon repeats a vertex")
	ErrSelfIntersecting = errors.New("geom: polygon boundary self-intersects")
)

// NewPolygon validates vertices as a simple rectilinear polygon and returns
// it. Vertices may wind in either direction; the implicit closing edge is
// checked like any other. Collinear runs are not permitted: every vertex must
// be a true corner, which is what boundary tracers emit.
func NewPolygon(vertices []Point) (*Polygon, error) {
	n := len(vertices)
	if n < 4 {
		return nil, ErrTooFewVertices
	}
	if n%2 != 0 {
		return nil, ErrOddVertexCount
	}
	mbr := EmptyMBR()
	prevHorizontal := false
	for i := 0; i < n; i++ {
		a, b := vertices[i], vertices[(i+1)%n]
		dx, dy := b.X-a.X, b.Y-a.Y
		switch {
		case dx == 0 && dy == 0:
			return nil, ErrZeroLengthEdge
		case dx != 0 && dy != 0:
			return nil, ErrNotRectilinear
		}
		horizontal := dy == 0
		if i > 0 && horizontal == prevHorizontal {
			return nil, ErrNotAlternating
		}
		prevHorizontal = horizontal
		mbr = mbr.Extend(a)
	}
	// The closing edge (n-1 -> 0) and the first edge (0 -> 1) must also
	// alternate; since n is even and edges alternate pairwise this is
	// guaranteed, but verify to be safe against n==4 degenerate inputs.
	last := edgeHorizontal(vertices[n-1], vertices[0])
	first := edgeHorizontal(vertices[0], vertices[1])
	if last == first {
		return nil, ErrNotAlternating
	}
	p := &Polygon{vertices: vertices, mbr: mbr}
	p.area = shoelace(vertices)
	if p.area == 0 {
		return nil, ErrZeroArea
	}
	if err := p.checkSimple(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustPolygon is NewPolygon that panics on invalid input; for tests and
// literals.
func MustPolygon(vertices []Point) *Polygon {
	p, err := NewPolygon(vertices)
	if err != nil {
		panic(err)
	}
	return p
}

func edgeHorizontal(a, b Point) bool { return a.Y == b.Y }

// shoelace returns the absolute polygon area via the surveyor's formula,
// A = |sum(x_i*y_{i+1} - x_{i+1}*y_i)| / 2. For rectilinear integer polygons
// the sum is always even and the result equals the enclosed pixel count.
func shoelace(vs []Point) int64 {
	var sum int64
	n := len(vs)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		sum += int64(vs[i].X)*int64(vs[j].Y) - int64(vs[j].X)*int64(vs[i].Y)
	}
	if sum < 0 {
		sum = -sum
	}
	return sum / 2
}

// checkSimple verifies that no two non-adjacent edges intersect and no vertex
// repeats. It is O(e^2) on the edge count, which is fine for the small
// polygons of this domain; construction is off the hot path.
func (p *Polygon) checkSimple() error {
	n := len(p.vertices)
	seen := make(map[Point]struct{}, n)
	for _, v := range p.vertices {
		if _, dup := seen[v]; dup {
			return ErrRepeatedVertex
		}
		seen[v] = struct{}{}
	}
	hs := p.HorizontalEdges()
	vs := p.VerticalEdges()
	// Horizontal-horizontal overlap on the same row.
	for i := 0; i < len(hs); i++ {
		for j := i + 1; j < len(hs); j++ {
			if hs[i].Y == hs[j].Y && hs[i].X1 < hs[j].X2 && hs[j].X1 < hs[i].X2 {
				return ErrSelfIntersecting
			}
		}
	}
	// Vertical-vertical overlap on the same column.
	for i := 0; i < len(vs); i++ {
		for j := i + 1; j < len(vs); j++ {
			if vs[i].X == vs[j].X && vs[i].Y1 < vs[j].Y2 && vs[j].Y1 < vs[i].Y2 {
				return ErrSelfIntersecting
			}
		}
	}
	// Horizontal-vertical proper crossings (shared endpoints are fine: that
	// is how consecutive edges join).
	for _, h := range hs {
		for _, v := range vs {
			if h.X1 < v.X && v.X < h.X2 && v.Y1 < h.Y && h.Y < v.Y2 {
				return ErrSelfIntersecting
			}
		}
	}
	return nil
}

// Vertices returns the polygon's vertex loop. Callers must not modify it.
func (p *Polygon) Vertices() []Point { return p.vertices }

// NumVertices returns the number of corners.
func (p *Polygon) NumVertices() int { return len(p.vertices) }

// MBR returns the polygon's minimum bounding rectangle.
func (p *Polygon) MBR() MBR { return p.mbr }

// Area returns the enclosed pixel count (exact).
func (p *Polygon) Area() int64 { return p.area }

// VerticalEdges returns all vertical edges, each normalised so Y1 < Y2.
func (p *Polygon) VerticalEdges() []VEdge {
	n := len(p.vertices)
	out := make([]VEdge, 0, n/2)
	for i := 0; i < n; i++ {
		a, b := p.vertices[i], p.vertices[(i+1)%n]
		if a.X == b.X {
			y1, y2 := a.Y, b.Y
			if y1 > y2 {
				y1, y2 = y2, y1
			}
			out = append(out, VEdge{X: a.X, Y1: y1, Y2: y2})
		}
	}
	return out
}

// HorizontalEdges returns all horizontal edges, each normalised so X1 < X2.
func (p *Polygon) HorizontalEdges() []HEdge {
	n := len(p.vertices)
	out := make([]HEdge, 0, n/2)
	for i := 0; i < n; i++ {
		a, b := p.vertices[i], p.vertices[(i+1)%n]
		if a.Y == b.Y {
			x1, x2 := a.X, b.X
			if x1 > x2 {
				x1, x2 = x2, x1
			}
			out = append(out, HEdge{Y: a.Y, X1: x1, X2: x2})
		}
	}
	return out
}

// ContainsPixel reports whether the unit pixel at (x, y) — the square
// [x,x+1) x [y,y+1) — lies inside the polygon. The test casts a horizontal
// ray from the pixel centre towards -infinity and counts crossings with
// vertical edges (paper §3.1, Fig. 4b). Because edges sit on integer grid
// lines and the centre sits at half-integers, the ray never grazes a vertex
// and the parity test is exact in integer arithmetic.
func (p *Polygon) ContainsPixel(x, y int32) bool {
	if !p.mbr.ContainsPixel(x, y) {
		return false
	}
	crossings := 0
	n := len(p.vertices)
	for i := 0; i < n; i++ {
		a, b := p.vertices[i], p.vertices[(i+1)%n]
		if a.X != b.X {
			continue // horizontal edge: parallel to the ray
		}
		y1, y2 := a.Y, b.Y
		if y1 > y2 {
			y1, y2 = y2, y1
		}
		// Edge at abscissa a.X crosses the ray y = y+0.5, x' < x+0.5
		// iff a.X <= x and y1 <= y < y2.
		if a.X <= x && y1 <= y && y < y2 {
			crossings++
		}
	}
	return crossings%2 == 1
}

// ContainsCenter2 reports whether the point (cx2/2, cy2/2), given in doubled
// coordinates, lies strictly inside the polygon. Callers must ensure the
// point does not lie exactly on the boundary (odd doubled coordinates are
// always safe). Used by the Lemma-1 sampling-box position test.
func (p *Polygon) ContainsCenter2(cx2, cy2 int64) bool {
	crossings := 0
	n := len(p.vertices)
	for i := 0; i < n; i++ {
		a, b := p.vertices[i], p.vertices[(i+1)%n]
		if a.X != b.X {
			continue
		}
		y1, y2 := a.Y, b.Y
		if y1 > y2 {
			y1, y2 = y2, y1
		}
		if int64(a.X)*2 < cx2 && int64(y1)*2 < cy2 && cy2 < int64(y2)*2 {
			crossings++
		}
	}
	return crossings%2 == 1
}

// BoxPosition classifies a sampling box against the polygon per Lemma 1 of
// the paper: Inside (every pixel of the box is inside), Outside (every pixel
// outside), or Hover (mixed). The box is the pixel rectangle b, i.e. the
// geometric square [b.MinX, b.MaxX] x [b.MinY, b.MaxY].
//
// The implementation uses an equivalent, robust formulation of the lemma's
// three conditions: the box hovers iff some polygon edge passes through the
// box's open interior (which subsumes both "an edge crosses a box edge" and
// "a polygon vertex lies inside the box"); otherwise the position of the
// box's geometric centre decides Inside vs Outside. Boundary segments lying
// exactly on the box border do not force Hover — the paper notes such boxes
// may be classified either way, and the next refinement level resolves them.
func (p *Polygon) BoxPosition(b MBR) BoxPos {
	if !p.mbr.Intersects(b) {
		return BoxOutside
	}
	n := len(p.vertices)
	for i := 0; i < n; i++ {
		a, c := p.vertices[i], p.vertices[(i+1)%n]
		if a.X == c.X { // vertical edge
			y1, y2 := a.Y, c.Y
			if y1 > y2 {
				y1, y2 = y2, y1
			}
			if b.MinX < a.X && a.X < b.MaxX && y1 < b.MaxY && b.MinY < y2 {
				return BoxHover
			}
		} else { // horizontal edge
			x1, x2 := a.X, c.X
			if x1 > x2 {
				x1, x2 = x2, x1
			}
			if b.MinY < a.Y && a.Y < b.MaxY && x1 < b.MaxX && b.MinX < x2 {
				return BoxHover
			}
		}
	}
	// Lemma 1 condition (iii) tests the box's geometric centre; once the box
	// is known not to hover, every pixel of the box lies on the same side,
	// so the centre of the box's first pixel — always at half-integer
	// coordinates, hence never on the boundary grid — decides robustly.
	if p.ContainsPixel(b.MinX, b.MinY) {
		return BoxInside
	}
	return BoxOutside
}

// BoxPos is the position of a sampling box relative to a polygon (paper
// Fig. 5).
type BoxPos uint8

// Sampling-box positions.
const (
	BoxOutside BoxPos = iota // every pixel of the box lies outside the polygon
	BoxInside                // every pixel of the box lies inside the polygon
	BoxHover                 // the polygon boundary passes through the box
)

func (b BoxPos) String() string {
	switch b {
	case BoxOutside:
		return "outside"
	case BoxInside:
		return "inside"
	case BoxHover:
		return "hover"
	default:
		return fmt.Sprintf("BoxPos(%d)", uint8(b))
	}
}

// Scale returns a copy of the polygon with every vertex coordinate multiplied
// by factor, growing its pixel area by factor^2. This mirrors the paper's
// stress test (§5.2), which scales vertex coordinates by factors 1–5.
func (p *Polygon) Scale(factor int32) *Polygon {
	if factor == 1 {
		return p
	}
	vs := make([]Point, len(p.vertices))
	for i, v := range p.vertices {
		vs[i] = Point{v.X * factor, v.Y * factor}
	}
	return &Polygon{
		vertices: vs,
		mbr:      p.mbr.Scale(factor),
		area:     p.area * int64(factor) * int64(factor),
	}
}

// Translate returns a copy of the polygon shifted by (dx, dy).
func (p *Polygon) Translate(dx, dy int32) *Polygon {
	vs := make([]Point, len(p.vertices))
	for i, v := range p.vertices {
		vs[i] = Point{v.X + dx, v.Y + dy}
	}
	return &Polygon{
		vertices: vs,
		mbr: MBR{p.mbr.MinX + dx, p.mbr.MinY + dy,
			p.mbr.MaxX + dx, p.mbr.MaxY + dy},
		area: p.area,
	}
}

// Rect builds the rectangle polygon covering pixels [x0,x1) x [y0,y1).
func Rect(x0, y0, x1, y1 int32) *Polygon {
	return MustPolygon([]Point{{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}})
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
