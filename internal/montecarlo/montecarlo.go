// Package montecarlo implements the Monte Carlo area estimator the paper
// discusses as the natural GPU-friendly alternative (§6, citing Fishman):
// repeatedly cast random sampling points into the pair's bounding window and
// count how many fall inside the intersection/union. It exists as a
// comparator: it parallelises as well as PixelBox, but it is only
// approximate, and reaching useful accuracy requires so many samples that
// it is far more compute-intensive than the optimised PixelBox — the
// relationship BenchmarkMonteCarloVsPixelBox demonstrates.
package montecarlo

import (
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/gpu"
	"repro/internal/pixelbox"
)

// Estimate approximates one pair's areas of intersection and union from
// `samples` uniform random pixels in the pair's union-MBR window.
func Estimate(rng *rand.Rand, p, q *geom.Polygon, samples int) pixelbox.AreaResult {
	window := p.MBR().Union(q.MBR())
	if window.IsEmpty() || samples <= 0 {
		return pixelbox.AreaResult{}
	}
	w := window.Width()
	h := window.Height()
	var interHits, unionHits int
	for s := 0; s < samples; s++ {
		x := window.MinX + rng.Int31n(w)
		y := window.MinY + rng.Int31n(h)
		inP := p.ContainsPixel(x, y)
		inQ := q.ContainsPixel(x, y)
		if inP && inQ {
			interHits++
		}
		if inP || inQ {
			unionHits++
		}
	}
	total := float64(window.Pixels())
	return pixelbox.AreaResult{
		Intersection: int64(float64(interHits) / float64(samples) * total),
		Union:        int64(float64(unionHits) / float64(samples) * total),
	}
}

// EstimateRatio approximates one pair's Jaccard ratio — intersection over
// union, which is exactly the per-pair ratio the PixelBox pipeline averages
// into a similarity — and reports a confidence measure alongside it.
//
// Samples fall uniformly in the pair's union-MBR window; the ratio is the
// fraction of union hits that are also intersection hits, and stderr is the
// binomial standard error of that fraction, sqrt(p̂(1−p̂)/unionHits). ok is
// false when the pair produced no union hits (disjoint windows, degenerate
// polygons, or too few samples), in which case the pair tells us nothing.
func EstimateRatio(rng *rand.Rand, p, q *geom.Polygon, samples int) (ratio, stderr float64, ok bool) {
	window := p.MBR().Union(q.MBR())
	if window.IsEmpty() || samples <= 0 {
		return 0, 0, false
	}
	w := window.Width()
	h := window.Height()
	var interHits, unionHits int
	for s := 0; s < samples; s++ {
		x := window.MinX + rng.Int31n(w)
		y := window.MinY + rng.Int31n(h)
		inP := p.ContainsPixel(x, y)
		inQ := q.ContainsPixel(x, y)
		if inP && inQ {
			interHits++
		}
		if inP || inQ {
			unionHits++
		}
	}
	if unionHits == 0 {
		return 0, 0, false
	}
	ratio = float64(interHits) / float64(unionHits)
	stderr = math.Sqrt(ratio * (1 - ratio) / float64(unionHits))
	return ratio, stderr, true
}

// EstimateAll estimates every pair with a fixed per-pair sample budget.
func EstimateAll(seed int64, pairs []pixelbox.Pair, samplesPerPair int) []pixelbox.AreaResult {
	rng := rand.New(rand.NewSource(seed))
	out := make([]pixelbox.AreaResult, len(pairs))
	for i, pr := range pairs {
		out[i] = Estimate(rng, pr.P, pr.Q, samplesPerPair)
	}
	return out
}

// Cost-model constants for the GPU variant: each sample needs two random
// numbers (a few ALU ops of counter-based PRNG) plus two point-in-polygon
// ray casts.
const (
	prngOps      = 8
	pixelTestOps = 5
	loopOverhead = 1
)

// RunGPU models Monte Carlo on the simulated device: the estimation runs
// for real on the host while each block is charged for its samples' PRNG
// and edge-loop work. The returned device seconds are directly comparable
// with pixelbox.RunGPU's.
func RunGPU(dev *gpu.Device, pairs []pixelbox.Pair, samplesPerPair, blockSize int, seed int64) ([]pixelbox.AreaResult, gpu.LaunchResult) {
	if blockSize <= 0 {
		blockSize = pixelbox.DefaultBlockSize
	}
	results := make([]pixelbox.AreaResult, len(pairs))
	if len(pairs) == 0 {
		return results, gpu.LaunchResult{}
	}
	grid := dev.Config().SMs * dev.Config().MaxBlocksPerSM * 4
	if grid > len(pairs) {
		grid = len(pairs)
	}
	launch := dev.Launch(grid, blockSize, 0, func(b *gpu.Block) {
		for i := b.Idx; i < len(pairs); i += b.GridDim {
			pr := pairs[i]
			rng := rand.New(rand.NewSource(seed + int64(i)))
			results[i] = Estimate(rng, pr.P, pr.Q, samplesPerPair)
			edges := pr.P.NumVertices() + pr.Q.NumVertices()
			opsPerSample := prngOps + edges*(pixelTestOps+loopOverhead) + 4
			b.Strided(samplesPerPair, opsPerSample)
			b.L1Read((samplesPerPair + b.BlockDim - 1) / b.BlockDim * edges)
		}
	})
	return results, launch
}
