package montecarlo_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/clip"
	"repro/internal/geom"
	"repro/internal/geomtest"
	"repro/internal/gpu"
	"repro/internal/montecarlo"
	"repro/internal/pixelbox"
)

func TestEstimateConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := geom.Rect(0, 0, 40, 40)
	q := geom.Rect(20, 0, 60, 40) // intersection 800, union 2400
	est := montecarlo.Estimate(rng, p, q, 200000)
	if relErr(est.Intersection, 800) > 0.05 {
		t.Fatalf("intersection estimate %d too far from 800", est.Intersection)
	}
	if relErr(est.Union, 2400) > 0.05 {
		t.Fatalf("union estimate %d too far from 2400", est.Union)
	}
}

func TestEstimateIsOnlyApproximate(t *testing.T) {
	// With few samples, estimates deviate — the reason Monte Carlo cannot
	// replace PixelBox for a metric defined on exact areas.
	rng := rand.New(rand.NewSource(9))
	var maxErr float64
	for trial := 0; trial < 30; {
		p := geomtest.RandomPolygon(rng, 24)
		q := geomtest.RandomPolygon(rng, 24)
		if p == nil || q == nil {
			continue
		}
		trial++
		exact := clip.IntersectionArea(p, q)
		est := montecarlo.Estimate(rng, p, q, 64)
		if exact > 0 {
			if e := relErr(est.Intersection, exact); e > maxErr {
				maxErr = e
			}
		}
	}
	if maxErr == 0 {
		t.Fatal("64-sample Monte Carlo was exact over 30 random pairs; estimator is suspect")
	}
}

func TestEstimateAllDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var pairs []pixelbox.Pair
	for len(pairs) < 10 {
		p := geomtest.RandomPolygon(rng, 20)
		q := geomtest.RandomPolygon(rng, 20)
		if p == nil || q == nil {
			continue
		}
		pairs = append(pairs, pixelbox.Pair{P: p, Q: q})
	}
	a := montecarlo.EstimateAll(42, pairs, 500)
	b := montecarlo.EstimateAll(42, pairs, 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("estimates not deterministic for a fixed seed")
		}
	}
}

func TestRunGPUMoreExpensiveThanPixelBox(t *testing.T) {
	// The §6 claim: at a sample budget comparable to the pixel count,
	// Monte Carlo costs more device time than the optimised PixelBox.
	rng := rand.New(rand.NewSource(11))
	var pairs []pixelbox.Pair
	for len(pairs) < 30 {
		p := geomtest.RandomPolygon(rng, 24)
		q := geomtest.RandomPolygon(rng, 24)
		if p == nil || q == nil {
			continue
		}
		pairs = append(pairs, pixelbox.Pair{P: p, Q: q})
	}
	devMC := gpu.NewDevice(gpu.GTX580())
	_, mc := montecarlo.RunGPU(devMC, pairs, 1024, 64, 1)
	devPB := gpu.NewDevice(gpu.GTX580())
	_, pb, _ := pixelbox.RunGPU(devPB, pairs, pixelbox.Config{})
	if mc.DeviceSeconds <= pb.DeviceSeconds {
		t.Fatalf("Monte Carlo (%v) not costlier than PixelBox (%v)", mc.DeviceSeconds, pb.DeviceSeconds)
	}
}

func TestEmptyInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := geom.Rect(0, 0, 2, 2)
	q := geom.Rect(10, 10, 12, 12)
	if est := montecarlo.Estimate(rng, p, q, 0); est != (pixelbox.AreaResult{}) {
		t.Fatal("zero samples should estimate nothing")
	}
	dev := gpu.NewDevice(gpu.GTX580())
	res, launch := montecarlo.RunGPU(dev, nil, 100, 64, 1)
	if len(res) != 0 || launch.DeviceSeconds != 0 {
		t.Fatal("empty input consumed device time")
	}
}

func relErr(got, want int64) float64 {
	if want == 0 {
		return 0
	}
	return math.Abs(float64(got-want)) / float64(want)
}

func TestEstimateRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(7))

	// Identical squares: every sample lands in both, ratio exactly 1 with
	// zero uncertainty.
	sq := geom.Rect(0, 0, 64, 64)
	r, se, ok := montecarlo.EstimateRatio(rng, sq, sq, 1000)
	if !ok || r != 1 || se != 0 {
		t.Fatalf("identical squares: ratio=%v stderr=%v ok=%v, want 1/0/true", r, se, ok)
	}

	// Disjoint squares inside one window: union hits exist, intersection
	// hits cannot.
	far := geom.Rect(200, 200, 264, 264)
	r, se, ok = montecarlo.EstimateRatio(rng, sq, far, 1000)
	if !ok || r != 0 || se != 0 {
		t.Fatalf("disjoint squares: ratio=%v stderr=%v ok=%v, want 0/0/true", r, se, ok)
	}

	// Half-overlapping squares: true Jaccard 1/3; the estimate converges
	// with shrinking, positive stderr.
	half := geom.Rect(32, 0, 96, 64)
	r, se, ok = montecarlo.EstimateRatio(rng, sq, half, 50000)
	if !ok {
		t.Fatal("half overlap: no union hits")
	}
	if se <= 0 {
		t.Fatalf("half overlap stderr = %v, want > 0", se)
	}
	if diff := r - 1.0/3.0; diff > 5*se+0.02 || diff < -(5*se+0.02) {
		t.Fatalf("half overlap ratio = %v (stderr %v), want near 1/3", r, se)
	}

	// Degenerate: no samples.
	if _, _, ok := montecarlo.EstimateRatio(rng, sq, sq, 0); ok {
		t.Fatal("0 samples reported ok")
	}
}
