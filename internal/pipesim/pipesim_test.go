package pipesim

import (
	"testing"
)

// syntheticWorkload builds n identical tiles with a workload shape matching
// the calibrated SCCG profile: parsing dominates CPU work; GPU aggregation
// is fast; CPU aggregation is ~50x slower than GPU.
func syntheticWorkload(n int) []TileCost {
	tiles := make([]TileCost, n)
	for i := range tiles {
		tiles[i] = TileCost{
			ParseSec:    20e-3,
			BuildSec:    2e-3,
			FilterSec:   1e-3,
			GPUAggSec:   1.5e-3,
			CPUAggSec:   75e-3,
			GPUParseSec: 5.5e-3,
			Pairs:       600,
		}
	}
	return tiles
}

func mustSim(t *testing.T, tiles []TileCost, plat Platform, scheme Scheme, opt Options) Result {
	t.Helper()
	res, err := Simulate(tiles, plat, scheme, opt)
	if err != nil {
		t.Fatalf("%v on %s: %v", scheme, plat.Name, err)
	}
	if res.Seconds <= 0 {
		t.Fatalf("%v produced no time", scheme)
	}
	return res
}

// TestTable1Ordering reproduces the Table 1 relationship: NoPipe-S slower
// than NoPipe-M slower than Pipelined.
func TestTable1Ordering(t *testing.T) {
	tiles := syntheticWorkload(120)
	plat := T1500()
	s := mustSim(t, tiles, plat, NoPipeS, Options{})
	m := mustSim(t, tiles, plat, NoPipeM, Options{})
	p := mustSim(t, tiles, plat, Pipelined, Options{})
	if !(p.Seconds < m.Seconds && m.Seconds < s.Seconds) {
		t.Fatalf("Table 1 ordering violated: S=%v M=%v P=%v", s.Seconds, m.Seconds, p.Seconds)
	}
	// NoPipe-S is a single stream: CPU utilisation far below 1 core of 4.
	if s.CPUUtilisation > 0.30 {
		t.Fatalf("NoPipe-S CPU utilisation %v, want ~1/4 or below", s.CPUUtilisation)
	}
}

// TestNoPipeMCPUUnderutilised reproduces the §5.5 observation: with
// uncoordinated GPU use, "all CPU cores were only about 50% saturated".
func TestNoPipeMCPUUnderutilised(t *testing.T) {
	// GPU-heavy tiles so streams serialise on the device.
	tiles := make([]TileCost, 80)
	for i := range tiles {
		tiles[i] = TileCost{ParseSec: 5e-3, BuildSec: 1e-3, FilterSec: 1e-3, GPUAggSec: 8e-3, CPUAggSec: 200e-3, Pairs: 500}
	}
	res := mustSim(t, tiles, T1500(), NoPipeM, Options{})
	if res.CPUUtilisation > 0.8 {
		t.Fatalf("NoPipe-M CPU utilisation %v; device serialisation should throttle it", res.CPUUtilisation)
	}
	if res.GPUUtilisation < 0.8 {
		t.Fatalf("GPU should be the bottleneck, utilisation %v", res.GPUUtilisation)
	}
}

// TestMigrationConfigI reproduces Fig. 11 Config-I: on the workstation the
// aggregator cannot keep the GPU busy, parser tasks migrate to the GPU, and
// throughput improves substantially.
func TestMigrationConfigI(t *testing.T) {
	tiles := syntheticWorkload(160)
	plat := T1500()
	off := mustSim(t, tiles, plat, Pipelined, Options{Migration: false})
	on := mustSim(t, tiles, plat, Pipelined, Options{Migration: true})
	if on.Seconds >= off.Seconds {
		t.Fatalf("migration did not help: on=%v off=%v", on.Seconds, off.Seconds)
	}
	if on.MigratedToGPU == 0 {
		t.Fatal("no parser tasks migrated to the idle GPU")
	}
	gain := off.Seconds/on.Seconds - 1
	if gain < 0.10 {
		t.Fatalf("Config-I migration gain %.0f%%, paper reports ~50%%", gain*100)
	}
}

// TestMigrationConfigIII reproduces Fig. 11 Config-III: with a deliberately
// slowed GPU the aggregator becomes the bottleneck and tasks flow the other
// way, GPU to CPU.
func TestMigrationConfigIII(t *testing.T) {
	tiles := syntheticWorkload(160)
	plat := EC2(1)
	plat.GPUSpeed = 0.12 // sub-optimal block size throttles the kernel
	off := mustSim(t, tiles, plat, Pipelined, Options{Migration: false})
	on := mustSim(t, tiles, plat, Pipelined, Options{Migration: true})
	if on.Seconds >= off.Seconds {
		t.Fatalf("migration did not help: on=%v off=%v", on.Seconds, off.Seconds)
	}
	if on.MigratedToCPU == 0 {
		t.Fatal("no aggregator tasks migrated to CPUs")
	}
}

// TestBatchingAmortisesLaunchOverhead: the pipelined aggregator batches,
// so launch overhead is paid far fewer times than once per tile.
func TestBatchingAmortisesLaunchOverhead(t *testing.T) {
	tiles := syntheticWorkload(200)
	plat := T1500()
	plat.LaunchOverhead = 5e-3 // exaggerate to make the effect visible
	noPipe := mustSim(t, tiles, plat, NoPipeS, Options{})
	piped := mustSim(t, tiles, plat, Pipelined, Options{BatchPairs: 4096})
	// NoPipe pays 200 x 5ms = 1s of launch overhead alone.
	if noPipe.Seconds < 1.0 {
		t.Fatalf("NoPipe-S should pay per-tile launch overhead, got %v", noPipe.Seconds)
	}
	if piped.Seconds > noPipe.Seconds*0.8 {
		t.Fatalf("batching saved too little: piped=%v nopipe=%v", piped.Seconds, noPipe.Seconds)
	}
}

func TestTwoGPUsOverlap(t *testing.T) {
	// GPU-bound workload: two devices should nearly halve the time.
	tiles := make([]TileCost, 100)
	for i := range tiles {
		tiles[i] = TileCost{ParseSec: 1e-3, BuildSec: 0.2e-3, FilterSec: 0.2e-3, GPUAggSec: 10e-3, CPUAggSec: 500e-3, Pairs: 2000}
	}
	one := mustSim(t, tiles, Platform{Name: "1gpu", Cores: 8, GPUs: 1, GPUSpeed: 1, LaunchOverhead: 1e-5}, Pipelined, Options{BatchPairs: 2000})
	two := mustSim(t, tiles, Platform{Name: "2gpu", Cores: 8, GPUs: 2, GPUSpeed: 1, LaunchOverhead: 1e-5}, Pipelined, Options{BatchPairs: 2000})
	if two.Seconds > one.Seconds*0.7 {
		t.Fatalf("second GPU bought too little: 1gpu=%v 2gpu=%v", one.Seconds, two.Seconds)
	}
}

func TestEmptyWorkload(t *testing.T) {
	res, err := Simulate(nil, T1500(), Pipelined, Options{})
	if err != nil || res.Seconds != 0 {
		t.Fatalf("empty workload: %v, %v", res, err)
	}
}

func TestDeterminism(t *testing.T) {
	tiles := syntheticWorkload(50)
	a := mustSim(t, tiles, T1500(), Pipelined, Options{Migration: true})
	b := mustSim(t, tiles, T1500(), Pipelined, Options{Migration: true})
	if a != b {
		t.Fatalf("simulation not deterministic: %+v vs %+v", a, b)
	}
}

func TestSchemeString(t *testing.T) {
	if NoPipeS.String() != "NoPipe-S" || NoPipeM.String() != "NoPipe-M" || Pipelined.String() != "Pipelined" {
		t.Fatal("scheme strings")
	}
}

func TestNoGPUFallback(t *testing.T) {
	tiles := syntheticWorkload(20)
	res := mustSim(t, tiles, Platform{Name: "cpu-only", Cores: 4, GPUs: 0, GPUSpeed: 1}, Pipelined, Options{})
	if res.GPUBusy != 0 {
		t.Fatal("cpu-only platform used a GPU")
	}
}
