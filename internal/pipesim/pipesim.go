// Package pipesim models the performance of the SCCG execution schemes on
// the paper's hardware platforms using discrete-event simulation. The
// functional pipeline (package pipeline) runs the computation for real; this
// package answers the scheduling questions of §5.5-§5.7 — how do NoPipe-S /
// NoPipe-M / Pipelined compare, and what does dynamic task migration buy on
// a given platform — for multi-core, multi-GPU machines the reproduction
// host does not have.
//
// Inputs are per-tile service times calibrated from real single-core
// measurements (CPU stages) and the GPU simulator (aggregator kernels); see
// internal/experiments.Calibrate.
package pipesim

import (
	"fmt"

	"repro/internal/des"
)

// TileCost carries the calibrated service times of one image tile's journey
// through the pipeline.
type TileCost struct {
	// ParseSec, BuildSec, FilterSec are single-core CPU seconds for the
	// tile's two polygon files.
	ParseSec  float64
	BuildSec  float64
	FilterSec float64
	// GPUAggSec is the device compute time of PixelBox over the tile's
	// pair array, excluding per-launch fixed overhead (batching amortises
	// that).
	GPUAggSec float64
	// CPUAggSec is the single-core PixelBox-CPU time for the tile.
	CPUAggSec float64
	// GPUParseSec is the device time to parse the tile's files with
	// GPU-Parser, whose throughput the paper measures as comparable to the
	// (multi-threaded) CPU parser stage — roughly ParseSec divided by the
	// parser worker count.
	GPUParseSec float64
	// Pairs is the tile's filtered pair count (migration picks the
	// smallest tasks).
	Pairs int
}

// Platform describes the modelled machine.
type Platform struct {
	Name string
	// Cores is the number of CPU worker threads the machine sustains
	// (physical cores, plus SMT yield folded in by the caller).
	Cores int
	// GPUs is the number of GPU devices.
	GPUs int
	// GPUSpeed scales device service times: 1.0 is the calibrated GTX 580;
	// lower is slower (Config-III de-tunes the kernel; the M2050 is a
	// slower part).
	GPUSpeed float64
	// LaunchOverhead is the fixed host-device cost per kernel launch
	// (launch + transfer latency), paid once per batch.
	LaunchOverhead float64
	// ContextSwitch is the device cost paid whenever a different execution
	// stream than the previous one takes the GPU — the "resource contention
	// and low execution efficiency" of uncontrolled kernel invocations
	// (§4). A single consolidating aggregator never pays it.
	ContextSwitch float64
}

// T1500 returns the paper's workstation platform: 4-core i7-860 plus one
// GTX 580.
func T1500() Platform {
	return Platform{Name: "T1500", Cores: 4, GPUs: 1, GPUSpeed: 1.0, LaunchOverhead: 40e-6, ContextSwitch: 5e-5}
}

// EC2 returns the paper's cc-GPU EC2 instance: dual X5570 (8 cores, 16
// hardware threads modelled as 10 effective workers) and gpus Tesla M2050s
// (≈ 65% of GTX 580 throughput).
func EC2(gpus int) Platform {
	return Platform{Name: fmt.Sprintf("EC2-%dGPU", gpus), Cores: 10, GPUs: gpus, GPUSpeed: 0.65, LaunchOverhead: 40e-6, ContextSwitch: 5e-5}
}

// Scheme selects the execution scheme of Table 1.
type Scheme int

// Execution schemes.
const (
	// NoPipeS runs the four stages sequentially per tile in one stream.
	NoPipeS Scheme = iota
	// NoPipeM runs multiple independent NoPipeS streams (uncoordinated
	// GPU use).
	NoPipeM
	// Pipelined is the SCCG pipelined framework with a single
	// GPU-consolidating aggregator.
	Pipelined
)

func (s Scheme) String() string {
	switch s {
	case NoPipeS:
		return "NoPipe-S"
	case NoPipeM:
		return "NoPipe-M"
	case Pipelined:
		return "Pipelined"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Options tunes a simulated run.
type Options struct {
	// Migration enables the dynamic task migration component (§4.2).
	Migration bool
	// ParserWorkers is the pipelined parser stage width; defaults to
	// Cores-2 (builder and filter keep a core each).
	ParserWorkers int
	// BufferCap is the inter-stage buffer capacity in tasks; defaults 8.
	BufferCap int
	// BatchPairs is the aggregator batch target; defaults 1024.
	BatchPairs int
	// Streams is the NoPipe-M stream count; defaults to Cores.
	Streams int
}

func (o Options) normalized(plat Platform) Options {
	if o.ParserWorkers <= 0 {
		// Oversubscribe slightly: the cores resource arbitrates between
		// parser workers and the (cheap) builder/filter/aggregator hosts.
		o.ParserWorkers = plat.Cores
	}
	if o.BufferCap <= 0 {
		o.BufferCap = 8
	}
	if o.BatchPairs <= 0 {
		o.BatchPairs = 1024
	}
	if o.Streams <= 0 {
		o.Streams = plat.Cores
	}
	return o
}

// Result reports a simulated run.
type Result struct {
	Seconds        float64
	CPUBusy        float64
	GPUBusy        float64
	CPUUtilisation float64
	GPUUtilisation float64
	MigratedToCPU  int
	MigratedToGPU  int
}

// Throughput returns tiles per simulated second.
func (r Result) Throughput(tiles int) float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(tiles) / r.Seconds
}

// Simulate runs the chosen scheme over the workload on the platform and
// returns the modelled wall time and utilisation.
func Simulate(tiles []TileCost, plat Platform, scheme Scheme, opt Options) (Result, error) {
	opt = opt.normalized(plat)
	if len(tiles) == 0 {
		return Result{}, nil
	}
	sim := des.New()
	cores := des.NewResource(sim, "cores", plat.Cores)
	var gpus *des.Resource
	if plat.GPUs > 0 {
		gpus = des.NewResource(sim, "gpus", plat.GPUs)
	}
	m := &model{
		sim: sim, plat: plat, opt: opt,
		cores: cores, gpus: gpus, tiles: tiles,
	}
	switch scheme {
	case NoPipeS:
		m.buildNoPipe(1)
	case NoPipeM:
		m.buildNoPipe(opt.Streams)
	case Pipelined:
		m.buildPipelined()
	default:
		return Result{}, fmt.Errorf("pipesim: unknown scheme %v", scheme)
	}
	end, err := sim.Run()
	if err != nil {
		return Result{}, fmt.Errorf("pipesim: %s on %s: %w", scheme, plat.Name, err)
	}
	res := Result{
		Seconds:       end,
		CPUBusy:       cores.BusySeconds(),
		MigratedToCPU: m.migratedToCPU,
		MigratedToGPU: m.migratedToGPU,
	}
	if gpus != nil {
		res.GPUBusy = gpus.BusySeconds()
		if end > 0 {
			res.GPUUtilisation = res.GPUBusy / (end * float64(plat.GPUs))
		}
	}
	if end > 0 {
		res.CPUUtilisation = res.CPUBusy / (end * float64(plat.Cores))
	}
	return res, nil
}

// model holds the wiring of one simulated run.
type model struct {
	sim   *des.Sim
	plat  Platform
	opt   Options
	cores *des.Resource
	gpus  *des.Resource
	tiles []TileCost

	migratedToCPU int
	migratedToGPU int

	// lastGPUOwner tracks which execution stream last held a device;
	// switching owners pays the platform's context-switch cost.
	lastGPUOwner string
}

// gpuSecs scales a calibrated device time by the platform's GPU speed.
func (m *model) gpuSecs(t float64) float64 {
	if m.plat.GPUSpeed <= 0 {
		return t
	}
	return t / m.plat.GPUSpeed
}

// gpuServiceTime returns the device occupancy for a launch by `owner`,
// including launch overhead and any context-switch penalty.
func (m *model) gpuServiceTime(owner string, computeSec float64) float64 {
	d := m.plat.LaunchOverhead + m.gpuSecs(computeSec)
	if m.lastGPUOwner != owner && m.lastGPUOwner != "" {
		d += m.plat.ContextSwitch
	}
	m.lastGPUOwner = owner
	return d
}

// aggregateOnGPU occupies one device for a batch, blocking the caller.
func (m *model) aggregateOnGPU(p *des.Proc, owner string, batchGPUSec float64) {
	m.gpus.Use(p, m.gpuServiceTime(owner, batchGPUSec))
}

// buildNoPipe wires `streams` independent sequential workers over a
// round-robin tile partition. Every stream parses, builds, filters on a CPU
// core and then aggregates on the GPU tile by tile — the uncoordinated
// device use that caps NoPipe-M's CPU utilisation (§5.5).
func (m *model) buildNoPipe(streams int) {
	for s := 0; s < streams; s++ {
		s := s
		name := fmt.Sprintf("stream-%d", s)
		m.sim.Spawn(name, func(p *des.Proc) {
			for i := s; i < len(m.tiles); i += streams {
				tc := m.tiles[i]
				m.cores.Use(p, tc.ParseSec+tc.BuildSec+tc.FilterSec)
				if m.gpus != nil {
					m.aggregateOnGPU(p, name, tc.GPUAggSec)
				} else {
					m.cores.Use(p, tc.CPUAggSec)
				}
			}
		})
	}
}

// pipeTask flows through the simulated pipeline.
type pipeTask struct {
	tc TileCost
}

// buildPipelined wires the four-stage pipeline with bounded buffers, one
// GPU-consolidating aggregator, and (optionally) the two migration
// processes.
func (m *model) buildPipelined() {
	opt := m.opt
	fileQ := des.NewQueue[pipeTask](m.sim, len(m.tiles))
	parsedQ := des.NewQueue[pipeTask](m.sim, opt.BufferCap)
	builtQ := des.NewQueue[pipeTask](m.sim, opt.BufferCap)
	pairQ := des.NewQueue[pipeTask](m.sim, opt.BufferCap)

	fullTrig := des.NewTrigger(m.sim)
	emptyTrig := des.NewTrigger(m.sim)
	if opt.Migration {
		pairQ.FullSignal = fullTrig.Fire
		pairQ.EmptySignal = emptyTrig.Fire
	}

	// Input feed: all tile files are on disk up front.
	pendingParse := len(m.tiles)
	finishParse := func() {
		pendingParse--
		if pendingParse == 0 {
			parsedQ.Close()
		}
	}
	m.sim.Spawn("feed", func(p *des.Proc) {
		for _, tc := range m.tiles {
			fileQ.Put(p, pipeTask{tc: tc})
		}
		fileQ.Close()
	})

	// Parser workers.
	for w := 0; w < opt.ParserWorkers; w++ {
		m.sim.Spawn(fmt.Sprintf("parser-%d", w), func(p *des.Proc) {
			for {
				t, ok := fileQ.Get(p)
				if !ok {
					return
				}
				m.cores.Use(p, t.tc.ParseSec)
				parsedQ.Put(p, t)
				finishParse()
			}
		})
	}

	// Builder (single worker).
	m.sim.Spawn("builder", func(p *des.Proc) {
		for {
			t, ok := parsedQ.Get(p)
			if !ok {
				builtQ.Close()
				return
			}
			m.cores.Use(p, t.tc.BuildSec)
			builtQ.Put(p, t)
		}
	})

	// Filter (single worker).
	m.sim.Spawn("filter", func(p *des.Proc) {
		for {
			t, ok := builtQ.Get(p)
			if !ok {
				pairQ.Close()
				return
			}
			m.cores.Use(p, t.tc.FilterSec)
			pairQ.Put(p, t)
		}
	})

	// Aggregator: batches buffered tasks, consolidating kernel launches.
	m.sim.Spawn("aggregator", func(p *des.Proc) {
		for {
			t, ok := pairQ.Get(p)
			if !ok {
				fullTrig.Stop()
				emptyTrig.Stop()
				return
			}
			batchGPU := t.tc.GPUAggSec
			batchPairs := t.tc.Pairs
			for batchPairs < opt.BatchPairs {
				extra, ok := pairQ.TryGet()
				if !ok {
					break
				}
				batchGPU += extra.tc.GPUAggSec
				batchPairs += extra.tc.Pairs
			}
			if m.gpus != nil {
				// Dispatch asynchronously so a second device (Config-II)
				// can overlap with the next batch. The pipelined scheme
				// owns the device from one process context ("sccg"), so
				// alternating between aggregation and GPU-parsing kernels
				// pays no context switch.
				m.gpus.UseAsync(p, m.gpuServiceTime("sccg", batchGPU))
			} else {
				m.cores.Use(p, t.tc.CPUAggSec)
			}
		}
	})

	if !opt.Migration {
		return
	}

	// Aggregator migration thread: woken when the aggregator input buffer
	// fills; steals the smallest tasks and runs the parallel PixelBox-CPU
	// (the paper's work-stealing TBB port) across several cores at once.
	aggWorkers := m.plat.Cores / 2
	if aggWorkers < 1 {
		aggWorkers = 1
	}
	m.sim.Spawn("migrate-to-cpu", func(p *des.Proc) {
		for fullTrig.Await(p) {
			// Genuine GPU congestion: the buffer is at capacity while every
			// device is occupied. A full buffer right after a batch drain
			// with idle devices is just the batching rhythm, not congestion.
			for pairQ.IsFull() && m.gpus != nil && m.gpus.InUse() >= m.plat.GPUs {
				t, ok := pairQ.StealMin(func(t pipeTask) float64 { return float64(t.tc.Pairs) })
				if !ok {
					break
				}
				m.migratedToCPU++
				for w := 0; w < aggWorkers; w++ {
					m.cores.Acquire(p)
				}
				p.Delay(t.tc.CPUAggSec / float64(aggWorkers))
				for w := 0; w < aggWorkers; w++ {
					m.cores.Release()
				}
			}
		}
	})

	// Parser migration thread: woken when the aggregator input buffer runs
	// empty (idle GPU); steals parse tasks and runs GPU-Parser.
	m.sim.Spawn("migrate-to-gpu", func(p *des.Proc) {
		if m.gpus == nil {
			return
		}
		for emptyTrig.Await(p) {
			// Level-triggered: keep feeding the device while the
			// aggregator remains starved; as soon as pair tasks arrive the
			// migrator yields the GPU back to aggregation.
			for pairQ.Len() == 0 && !pairQ.Closed() {
				// Only steal while the parser stage has a deep backlog: a
				// migrated parse near the drain would put the (slower,
				// serial) GPU parser on the pipeline's critical path.
				if fileQ.Len() <= 2*opt.ParserWorkers {
					break
				}
				t, ok := fileQ.StealMin(func(t pipeTask) float64 { return t.tc.ParseSec })
				if !ok {
					break
				}
				m.migratedToGPU++
				m.gpus.Use(p, m.gpuServiceTime("sccg", t.tc.GPUParseSec))
				parsedQ.Put(p, t)
				finishParse()
			}
		}
	})
}
