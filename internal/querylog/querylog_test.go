package querylog

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func openLog(t *testing.T, dir string, max int64) *Log {
	t.Helper()
	l, err := Open(dir, max)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestAppendQueryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, 0)
	defer l.Close()

	l.Append(Record{Kind: KindJob, ID: "j1", Outcome: OutcomeComputed,
		Datasets: []DatasetIO{{ID: "aaa", Tiles: 2, Bytes: 100}}, DurationMs: 5})
	l.Append(Record{Kind: KindJob, ID: "j2", Outcome: OutcomeCached,
		Datasets: []DatasetIO{{ID: "aaa"}}})
	l.Append(Record{Kind: KindPull, Outcome: OutcomePulled, Peer: "http://p:1",
		Datasets: []DatasetIO{{ID: "bbb", Tiles: 3, Bytes: 999}}})

	res, err := l.Query(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 3 {
		t.Fatalf("got %d records", len(res.Records))
	}
	if res.Records[0].Schema != Schema || res.Records[0].Time == "" {
		t.Fatalf("record not stamped: %+v", res.Records[0])
	}

	byKind, _ := l.Query(Filter{Kind: KindPull})
	if len(byKind.Records) != 1 || byKind.Records[0].Peer != "http://p:1" {
		t.Fatalf("kind filter: %+v", byKind.Records)
	}
	byDS, _ := l.Query(Filter{Dataset: "aaa"})
	if len(byDS.Records) != 2 {
		t.Fatalf("dataset filter: %d", len(byDS.Records))
	}
	byOutcome, _ := l.Query(Filter{Outcome: OutcomeCached})
	if len(byOutcome.Records) != 1 || byOutcome.Records[0].ID != "j2" {
		t.Fatalf("outcome filter: %+v", byOutcome.Records)
	}
	limited, _ := l.Query(Filter{Limit: 1})
	if len(limited.Records) != 1 || limited.Records[0].Kind != KindPull {
		t.Fatalf("limit kept the wrong end: %+v", limited.Records)
	}
	future, _ := l.Query(Filter{Since: time.Now().Add(time.Hour)})
	if len(future.Records) != 0 {
		t.Fatalf("time filter leaked %d records", len(future.Records))
	}
	if l.Appended() != 3 || l.WriteErrors() != 0 {
		t.Fatalf("counters: appended=%d errs=%d", l.Appended(), l.WriteErrors())
	}
}

func TestReopenKeepsRecords(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, 0)
	l.Append(Record{Kind: KindIngest, ID: "d1", Outcome: OutcomeIngested})
	l.ObserveRead("d1", 0, 10)
	l.ObserveRead("d1", 2, 30)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openLog(t, dir, 0)
	defer l2.Close()
	l2.Append(Record{Kind: KindJob, ID: "j1", Outcome: OutcomeComputed})
	res, _ := l2.Query(Filter{})
	if len(res.Records) != 2 {
		t.Fatalf("restart lost records: %d", len(res.Records))
	}
	heat, ok := l2.Heat("d1")
	if !ok || len(heat) != 3 {
		t.Fatalf("restart lost heat: %v ok=%v", heat, ok)
	}
	if heat[0].Reads != 1 || heat[1].Reads != 0 || heat[2].Reads != 1 || heat[2].Bytes != 30 {
		t.Fatalf("heat after restart: %+v", heat)
	}
}

func TestRotationBoundsDisk(t *testing.T) {
	dir := t.TempDir()
	const max = 8 << 10
	l := openLog(t, dir, max)
	defer l.Close()
	long := strings.Repeat("x", 100)
	for i := 0; i < 1000; i++ {
		l.Append(Record{Kind: KindJob, ID: long, Outcome: OutcomeComputed})
	}
	var total int64
	for _, name := range []string{activeFile, rotatedFile} {
		if st, err := os.Stat(filepath.Join(dir, name)); err == nil {
			total += st.Size()
		}
	}
	if total > max+1024 {
		t.Fatalf("log grew to %d bytes, bound %d", total, max)
	}
	// Recent records survive rotation.
	res, _ := l.Query(Filter{})
	if len(res.Records) == 0 {
		t.Fatal("rotation dropped everything")
	}
}

func TestCorruptLinesSkippedWithReason(t *testing.T) {
	dir := t.TempDir()
	l := openLog(t, dir, 0)
	l.Append(Record{Kind: KindJob, ID: "ok", Outcome: OutcomeComputed})
	l.Close()

	f, err := os.OpenFile(filepath.Join(dir, activeFile), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("{torn json\n")
	f.WriteString(`{"schema":"other/9","kind":"job","outcome":"computed"}` + "\n")
	f.WriteString(`{"schema":"sccg-qlog/1"}` + "\n")
	f.Close()

	l2 := openLog(t, dir, 0)
	defer l2.Close()
	res, err := l2.Query(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 || res.Records[0].ID != "ok" {
		t.Fatalf("records: %+v", res.Records)
	}
	want := map[string]int64{SkipBadJSON: 1, SkipBadSchema: 1, SkipBadRecord: 1}
	for k, v := range want {
		if res.Skipped[k] != v {
			t.Fatalf("skipped[%s] = %d, want %d (all: %v)", k, res.Skipped[k], v, res.Skipped)
		}
	}
}

func TestDropHeat(t *testing.T) {
	l := openLog(t, t.TempDir(), 0)
	defer l.Close()
	l.ObserveRead("d1", 0, 1)
	l.ObserveRead("d2", 0, 1)
	l.DropHeat("d1")
	if _, ok := l.Heat("d1"); ok {
		t.Fatal("dropped dataset still hot")
	}
	if got := l.HeatDatasets(); len(got) != 1 || got[0] != "d2" {
		t.Fatalf("HeatDatasets = %v", got)
	}
}

func TestNilLogIsInert(t *testing.T) {
	var l *Log
	l.Append(Record{Kind: KindJob, Outcome: OutcomeComputed})
	l.ObserveRead("d", 0, 1)
	l.DropHeat("d")
	if _, ok := l.Heat("d"); ok {
		t.Fatal("nil log has heat")
	}
	if res, err := l.Query(Filter{}); err != nil || len(res.Records) != 0 {
		t.Fatal("nil query")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.SaveHeat(); err != nil {
		t.Fatal(err)
	}
}
