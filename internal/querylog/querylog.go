// Package querylog persists an append-only, rotation-bounded JSONL record
// of everything the daemon actually did with data — jobs, matrix cells,
// ingests, and peer pulls — plus a per-tile read-frequency rollup (heat)
// fed by the store's read hook.
//
// The log is the instrument ROADMAP's workload-adaptive storage direction
// consumes: which datasets are queried together, how often each tile is
// actually read, and whether answers came from compute, cache, or a peer.
// Every line is a self-describing JSON object tagged "sccg-qlog/1"; corrupt
// or truncated lines (a crash mid-append) are skipped with a counted reason,
// never an error for the whole log.
package querylog

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Schema tags every record line. Bump on any incompatible field change.
const Schema = "sccg-qlog/1"

// Record kinds.
const (
	KindJob    = "job"
	KindCell   = "cell"
	KindIngest = "ingest"
	KindPull   = "pull"
)

// Outcomes. Jobs/cells: computed, cached (live LRU), cached_persisted
// (disk), cached_cluster (adopted from a peer), failed. Ingests: ingested,
// failed. Pulls: pulled, failed.
const (
	OutcomeComputed  = "computed"
	OutcomeCached    = "cached"
	OutcomePersisted = "cached_persisted"
	OutcomeCluster   = "cached_cluster"
	OutcomeIngested  = "ingested"
	OutcomePulled    = "pulled"
	OutcomeFailed    = "failed"
)

// DatasetIO names one dataset a record touched with the tiles and bytes it
// covered. For compute records the numbers come from the manifest (what the
// job read); cache hits read nothing and report zero.
type DatasetIO struct {
	ID    string `json:"id"`
	Tiles int    `json:"tiles,omitempty"`
	Bytes int64  `json:"bytes,omitempty"`
}

// Record is one line of the query log.
type Record struct {
	Schema     string      `json:"schema"`
	Time       string      `json:"time"` // RFC3339Nano, UTC
	Kind       string      `json:"kind"`
	ID         string      `json:"id,omitempty"` // job ID, cell "i,j", etc.
	TraceID    string      `json:"trace_id,omitempty"`
	Tenant     string      `json:"tenant,omitempty"` // accounting identity that issued the work
	Band       string      `json:"band,omitempty"`   // QoS band the work ran under
	Datasets   []DatasetIO `json:"datasets,omitempty"`
	DurationMs float64     `json:"duration_ms"`
	Outcome    string      `json:"outcome"`
	Peer       string      `json:"peer,omitempty"` // remote node involved, if any
	Error      string      `json:"error,omitempty"`
}

// Decode skip reasons, as counted by Query and the metrics surface.
const (
	SkipBadJSON   = "bad_json"
	SkipBadSchema = "bad_schema"
	SkipBadRecord = "bad_record"
)

var (
	errSchema = errors.New("querylog: schema mismatch")
	errRecord = errors.New("querylog: incomplete record")
)

// DecodeRecord parses one JSONL line. It never panics (FuzzQuerylogRecord
// holds it to that) and classifies failures so callers can count them:
// malformed JSON, a foreign/missing schema tag, or a structurally empty
// record (no kind/outcome — e.g. a torn line that still parses as JSON).
// Unknown fields are tolerated — the schema tag, not the field set, is the
// compatibility contract.
func DecodeRecord(line []byte) (Record, error) {
	var r Record
	if err := json.Unmarshal(line, &r); err != nil {
		return Record{}, fmt.Errorf("querylog: %w", err)
	}
	if r.Schema != Schema {
		return Record{}, errSchema
	}
	if r.Kind == "" || r.Outcome == "" {
		return Record{}, errRecord
	}
	return r, nil
}

// SkipReason folds a DecodeRecord error into its counter bucket.
func SkipReason(err error) string {
	switch {
	case errors.Is(err, errSchema):
		return SkipBadSchema
	case errors.Is(err, errRecord):
		return SkipBadRecord
	default:
		return SkipBadJSON
	}
}

const (
	activeFile  = "querylog.jsonl"
	rotatedFile = "querylog.1.jsonl"
	heatFile    = "heat.json"
	// DefaultMaxBytes bounds the two generations together at 64 MiB.
	DefaultMaxBytes = 64 << 20
)

// heatEntry is one dataset's per-tile accounting. Slices are indexed by tile
// and grown on demand; a tile never read stays zero.
type heatEntry struct {
	Reads []int64 `json:"reads"`
	Bytes []int64 `json:"bytes"`
}

type heatState struct {
	Schema   string                `json:"schema"`
	Datasets map[string]*heatEntry `json:"datasets"`
}

const heatSchema = "sccg-heat/1"

// Log is the append side plus the query/heat read side. Safe for concurrent
// use; appends are serialized under one mutex (each append is a single
// buffered write + newline, cheap next to the work being recorded).
type Log struct {
	mu       sync.Mutex
	dir      string
	maxBytes int64
	f        *os.File
	size     int64

	appended  int64
	writeErrs int64

	heatMu    sync.Mutex
	heat      map[string]*heatEntry
	heatDirty bool
}

// Open opens (creating if needed) the log rooted at dir. maxBytes bounds the
// on-disk size across the active and one rotated generation; <= 0 uses
// DefaultMaxBytes. A persisted heat rollup from a previous run is reloaded;
// a corrupt one is discarded (heat is a rollup, not a source of truth).
func Open(dir string, maxBytes int64) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("querylog: create %s: %w", dir, err)
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	f, err := os.OpenFile(filepath.Join(dir, activeFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("querylog: open: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("querylog: stat: %w", err)
	}
	l := &Log{dir: dir, maxBytes: maxBytes, f: f, size: st.Size(), heat: make(map[string]*heatEntry)}
	l.loadHeat()
	return l, nil
}

// Append writes one record, stamping schema and (when empty) time. Write
// failures are counted and swallowed: the query log must never take down
// the operation it is describing.
func (l *Log) Append(r Record) {
	if l == nil {
		return
	}
	r.Schema = Schema
	if r.Time == "" {
		r.Time = time.Now().UTC().Format(time.RFC3339Nano)
	}
	line, err := json.Marshal(r)
	if err != nil {
		l.mu.Lock()
		l.writeErrs++
		l.mu.Unlock()
		return
	}
	line = append(line, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.size+int64(len(line)) > l.maxBytes/2 {
		l.rotateLocked()
	}
	n, err := l.f.Write(line)
	l.size += int64(n)
	if err != nil {
		l.writeErrs++
		return
	}
	l.appended++
}

// rotateLocked promotes the active file to the single rotated generation
// (replacing any previous one) and starts a fresh active file. On rename or
// reopen failure the current file is kept — the log degrades to unbounded
// growth of one file rather than losing the append path.
func (l *Log) rotateLocked() {
	active := filepath.Join(l.dir, activeFile)
	if err := l.f.Sync(); err != nil {
		l.writeErrs++
	}
	if err := os.Rename(active, filepath.Join(l.dir, rotatedFile)); err != nil {
		l.writeErrs++
		return
	}
	nf, err := os.OpenFile(active, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// The old handle still points at the rotated file; keep appending
		// there so records are not lost.
		l.writeErrs++
		return
	}
	l.f.Close()
	l.f = nf
	l.size = 0
}

// Appended returns the count of records successfully written this process.
func (l *Log) Appended() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appended
}

// WriteErrors returns the count of swallowed append/rotate failures.
func (l *Log) WriteErrors() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.writeErrs
}

// Filter selects records for Query. Zero values match everything.
type Filter struct {
	Since   time.Time // inclusive
	Until   time.Time // exclusive
	Dataset string    // any record touching this dataset ID
	Outcome string
	Kind    string
	Tenant  string
	Limit   int // most recent N after filtering; <= 0 means all
}

// QueryResult carries the matched records (oldest first) and the per-reason
// counts of lines that could not be decoded.
type QueryResult struct {
	Records []Record
	Skipped map[string]int64
}

// Query scans the rotated then the active generation, oldest first. The
// scan reads files that Append may be writing concurrently; a torn final
// line decodes as bad_json and is counted, matching crash-recovery reads.
func (l *Log) Query(f Filter) (QueryResult, error) {
	if l == nil {
		return QueryResult{Skipped: map[string]int64{}}, nil
	}
	res := QueryResult{Skipped: make(map[string]int64)}
	for _, name := range []string{rotatedFile, activeFile} {
		if err := l.scanFile(filepath.Join(l.dir, name), f, &res); err != nil {
			return res, err
		}
	}
	if f.Limit > 0 && len(res.Records) > f.Limit {
		res.Records = res.Records[len(res.Records)-f.Limit:]
	}
	return res, nil
}

func (l *Log) scanFile(path string, f Filter, res *QueryResult) error {
	file, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("querylog: %w", err)
	}
	defer file.Close()
	sc := bufio.NewScanner(file)
	sc.Buffer(make([]byte, 64<<10), 4<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		r, err := DecodeRecord(line)
		if err != nil {
			res.Skipped[SkipReason(err)]++
			continue
		}
		if matches(r, f) {
			res.Records = append(res.Records, r)
		}
	}
	if err := sc.Err(); err != nil {
		// An oversized line is corruption, not a query failure.
		res.Skipped[SkipBadJSON]++
	}
	return nil
}

func matches(r Record, f Filter) bool {
	if f.Kind != "" && r.Kind != f.Kind {
		return false
	}
	if f.Outcome != "" && r.Outcome != f.Outcome {
		return false
	}
	if f.Tenant != "" && r.Tenant != f.Tenant {
		return false
	}
	if f.Dataset != "" {
		found := false
		for _, d := range r.Datasets {
			if d.ID == f.Dataset || strings.HasPrefix(d.ID, f.Dataset) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if !f.Since.IsZero() || !f.Until.IsZero() {
		t, err := time.Parse(time.RFC3339Nano, r.Time)
		if err != nil {
			return false
		}
		if !f.Since.IsZero() && t.Before(f.Since) {
			return false
		}
		if !f.Until.IsZero() && !t.Before(f.Until) {
			return false
		}
	}
	return true
}

// ObserveRead accumulates one verified tile read into the heat rollup.
// Wired to store.SetReadHook; must stay cheap (map lookup + two adds).
func (l *Log) ObserveRead(id string, tile int, bytes int64) {
	if l == nil || tile < 0 {
		return
	}
	l.heatMu.Lock()
	e := l.heat[id]
	if e == nil {
		e = &heatEntry{}
		l.heat[id] = e
	}
	for len(e.Reads) <= tile {
		e.Reads = append(e.Reads, 0)
		e.Bytes = append(e.Bytes, 0)
	}
	e.Reads[tile]++
	e.Bytes[tile] += bytes
	l.heatDirty = true
	l.heatMu.Unlock()
}

// TileHeat is one tile's read accounting in wire form.
type TileHeat struct {
	Tile  int   `json:"tile"`
	Reads int64 `json:"reads"`
	Bytes int64 `json:"bytes"`
}

// Heat returns the per-tile read counts for a dataset, tile-ordered, and
// whether the dataset has any recorded reads.
func (l *Log) Heat(id string) ([]TileHeat, bool) {
	if l == nil {
		return nil, false
	}
	l.heatMu.Lock()
	defer l.heatMu.Unlock()
	e := l.heat[id]
	if e == nil {
		return nil, false
	}
	out := make([]TileHeat, len(e.Reads))
	for i := range e.Reads {
		out[i] = TileHeat{Tile: i, Reads: e.Reads[i], Bytes: e.Bytes[i]}
	}
	return out, true
}

// HeatDatasets lists dataset IDs with recorded reads, sorted.
func (l *Log) HeatDatasets() []string {
	if l == nil {
		return nil
	}
	l.heatMu.Lock()
	ids := make([]string, 0, len(l.heat))
	for id := range l.heat {
		ids = append(ids, id)
	}
	l.heatMu.Unlock()
	sort.Strings(ids)
	return ids
}

// DropHeat forgets a dataset's rollup; wired into the delete cascade so a
// removed dataset's heat cannot outlive it.
func (l *Log) DropHeat(id string) {
	if l == nil {
		return
	}
	l.heatMu.Lock()
	if _, ok := l.heat[id]; ok {
		delete(l.heat, id)
		l.heatDirty = true
	}
	l.heatMu.Unlock()
}

// SaveHeat persists the rollup (atomic rename). A no-op when nothing
// changed since the last save.
func (l *Log) SaveHeat() error {
	if l == nil {
		return nil
	}
	l.heatMu.Lock()
	if !l.heatDirty {
		l.heatMu.Unlock()
		return nil
	}
	state := heatState{Schema: heatSchema, Datasets: l.heat}
	data, err := json.Marshal(state)
	l.heatDirty = false
	l.heatMu.Unlock()
	if err != nil {
		return fmt.Errorf("querylog: heat: %w", err)
	}
	tmp := filepath.Join(l.dir, heatFile+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("querylog: heat: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, heatFile)); err != nil {
		return fmt.Errorf("querylog: heat: %w", err)
	}
	return nil
}

func (l *Log) loadHeat() {
	data, err := os.ReadFile(filepath.Join(l.dir, heatFile))
	if err != nil {
		return
	}
	var state heatState
	if json.Unmarshal(data, &state) != nil || state.Schema != heatSchema {
		return
	}
	for id, e := range state.Datasets {
		if e == nil || len(e.Reads) != len(e.Bytes) {
			continue
		}
		l.heat[id] = e
	}
}

// Close persists the heat rollup and closes the active file.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	err := l.SaveHeat()
	l.mu.Lock()
	defer l.mu.Unlock()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}
