package querylog

import (
	"encoding/json"
	"testing"
)

// FuzzQuerylogRecord holds DecodeRecord to "never panic, classify every
// failure, and anything accepted re-encodes to a line that decodes to the
// same record" — the property crash-recovery reads depend on when the tail
// of the log is a torn write.
func FuzzQuerylogRecord(f *testing.F) {
	f.Add([]byte(`{"schema":"sccg-qlog/1","time":"2026-01-01T00:00:00Z","kind":"job","id":"j1","outcome":"computed","duration_ms":1.5}`))
	f.Add([]byte(`{"schema":"sccg-qlog/1","kind":"pull","outcome":"pulled","peer":"http://p:1","datasets":[{"id":"a","tiles":2,"bytes":9}]}`))
	f.Add([]byte(`{"schema":"other/1","kind":"job","outcome":"computed"}`))
	f.Add([]byte(`{"schema":"sccg-qlog/1"}`))
	f.Add([]byte(`{torn`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, line []byte) {
		r, err := DecodeRecord(line)
		if err != nil {
			switch SkipReason(err) {
			case SkipBadJSON, SkipBadSchema, SkipBadRecord:
			default:
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		if r.Schema != Schema || r.Kind == "" || r.Outcome == "" {
			t.Fatalf("accepted incomplete record: %+v", r)
		}
		re, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("accepted record does not re-encode: %v", err)
		}
		r2, err := DecodeRecord(re)
		if err != nil {
			t.Fatalf("re-encoded record rejected: %v (%s)", err, re)
		}
		if r2.Kind != r.Kind || r2.Outcome != r.Outcome || r2.ID != r.ID || len(r2.Datasets) != len(r.Datasets) {
			t.Fatalf("round trip diverged: %+v vs %+v", r, r2)
		}
	})
}
