// Package des is a deterministic process-oriented discrete-event simulation
// kernel. The system-level experiments of the paper (Table 1, Figs. 11-12)
// evaluate pipeline schemes on platforms — a 4-core workstation with a GTX
// 580, an 8-core EC2 instance with two Tesla M2050s — that the reproduction
// host does not have; package pipesim models those runs on this kernel using
// service times calibrated from real single-core measurements and the GPU
// simulator (see DESIGN.md §1).
//
// Processes are goroutines that advance a shared virtual clock through
// blocking primitives (Delay, Queue.Put/Get, Resource.Acquire). Exactly one
// process runs at a time and events fire in deterministic (time, sequence)
// order, so simulations are exactly reproducible.
package des

import (
	"container/heap"
	"fmt"
)

// Sim is one simulation instance. Create with New, add processes with
// Spawn, then call Run.
type Sim struct {
	now    float64
	seq    int64
	events eventHeap
	ack    chan struct{}
	// blocked counts processes parked on conditions (not timers); used to
	// detect modelling deadlocks.
	liveProcs int
}

type event struct {
	t   float64
	seq int64
	p   *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// New creates an empty simulation.
func New() *Sim {
	return &Sim{ack: make(chan struct{})}
}

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// Proc is a simulated process: the handle its body uses to block on virtual
// time and synchronisation objects.
type Proc struct {
	sim    *Sim
	name   string
	resume chan struct{}
	// pending guards against duplicate wake events: at most one resume
	// event may be in flight per process.
	pending bool
}

// Name returns the process name (for diagnostics).
func (p *Proc) Name() string { return p.name }

// Sim returns the owning simulation.
func (p *Proc) Sim() *Sim { return p.sim }

// Spawn registers a process that starts at the current virtual time.
func (s *Sim) Spawn(name string, fn func(*Proc)) {
	p := &Proc{sim: s, name: name, resume: make(chan struct{})}
	s.liveProcs++
	go func() {
		<-p.resume
		fn(p)
		s.liveProcs--
		s.ack <- struct{}{}
	}()
	s.schedule(s.now, p)
}

// schedule enqueues a wakeup for p at time t; duplicate wakeups for a
// process with an in-flight event are dropped (the process re-checks its
// blocking condition on resume anyway).
func (s *Sim) schedule(t float64, p *Proc) {
	if p.pending {
		return
	}
	p.pending = true
	s.seq++
	heap.Push(&s.events, event{t: t, seq: s.seq, p: p})
}

// Run executes the simulation until no events remain, returning the final
// virtual time. It returns an error if processes remain blocked on
// conditions with no pending events — a modelling deadlock.
func (s *Sim) Run() (float64, error) {
	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(event)
		if e.t < s.now {
			return s.now, fmt.Errorf("des: time went backwards: %v < %v", e.t, s.now)
		}
		s.now = e.t
		e.p.pending = false
		e.p.resume <- struct{}{}
		<-s.ack
	}
	if s.liveProcs > 0 {
		return s.now, fmt.Errorf("des: deadlock: %d processes blocked with no pending events", s.liveProcs)
	}
	return s.now, nil
}

// park suspends the calling process until another event resumes it. The
// scheduler regains control.
func (p *Proc) park() {
	p.sim.ack <- struct{}{}
	<-p.resume
}

// Delay advances the process by d seconds of virtual time.
func (p *Proc) Delay(d float64) {
	if d < 0 {
		d = 0
	}
	p.sim.schedule(p.sim.now+d, p)
	p.park()
}

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.sim.now }

// wake schedules a parked process to resume at the current time.
func (s *Sim) wake(p *Proc) { s.schedule(s.now, p) }

// Queue is a bounded FIFO connecting simulated processes, mirroring the
// pipeline's inter-stage work buffers: Put blocks when full, Get blocks when
// empty, Close releases blocked getters. StealMin supports the migration
// policy.
type Queue[T any] struct {
	sim     *Sim
	items   []T
	cap     int
	closed  bool
	getters []*Proc
	putters []*Proc
	// FullSignal and EmptySignal, when non-nil, are woken on
	// full/found-empty transitions (migration triggers).
	FullSignal  func()
	EmptySignal func()
}

// NewQueue creates a bounded queue for the simulation.
func NewQueue[T any](s *Sim, capacity int) *Queue[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue[T]{sim: s, cap: capacity}
}

// Len returns current occupancy.
func (q *Queue[T]) Len() int { return len(q.items) }

// IsFull reports occupancy at capacity.
func (q *Queue[T]) IsFull() bool { return len(q.items) >= q.cap }

// Closed reports whether Close was called.
func (q *Queue[T]) Closed() bool { return q.closed }

// removeProc deletes every occurrence of p from list (processes deregister
// after each park so stale entries can never wake a finished process).
func removeProc(list []*Proc, p *Proc) []*Proc {
	out := list[:0]
	for _, x := range list {
		if x != p {
			out = append(out, x)
		}
	}
	return out
}

// Put appends v, blocking the process while the queue is full.
func (q *Queue[T]) Put(p *Proc, v T) {
	for len(q.items) >= q.cap && !q.closed {
		if q.FullSignal != nil {
			q.FullSignal()
		}
		q.putters = append(q.putters, p)
		p.park()
		q.putters = removeProc(q.putters, p)
	}
	if q.closed {
		panic("des: Put on closed queue")
	}
	q.items = append(q.items, v)
	if len(q.items) >= q.cap && q.FullSignal != nil {
		q.FullSignal()
	}
	q.wakeGetters()
}

// Get removes the head item, blocking while the queue is empty; ok is false
// once the queue is closed and drained.
func (q *Queue[T]) Get(p *Proc) (v T, ok bool) {
	for len(q.items) == 0 && !q.closed {
		if q.EmptySignal != nil {
			q.EmptySignal()
		}
		q.getters = append(q.getters, p)
		p.park()
		q.getters = removeProc(q.getters, p)
	}
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	q.wakePutters()
	return v, true
}

// TryGet removes the head item without blocking.
func (q *Queue[T]) TryGet() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	q.wakePutters()
	return v, true
}

// StealMin removes the item minimising weight without blocking.
func (q *Queue[T]) StealMin(weight func(T) float64) (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	best := 0
	bw := weight(q.items[0])
	for i := 1; i < len(q.items); i++ {
		if w := weight(q.items[i]); w < bw {
			best, bw = i, w
		}
	}
	v = q.items[best]
	q.items = append(q.items[:best], q.items[best+1:]...)
	q.wakePutters()
	return v, true
}

// Close marks the queue complete and releases blocked getters.
func (q *Queue[T]) Close() {
	q.closed = true
	q.wakeGetters()
	q.wakePutters()
}

func (q *Queue[T]) wakeGetters() {
	for _, g := range q.getters {
		q.sim.wake(g)
	}
	q.getters = q.getters[:0]
}

func (q *Queue[T]) wakePutters() {
	for _, w := range q.putters {
		q.sim.wake(w)
	}
	q.putters = q.putters[:0]
}

// Resource is a counted server (CPU cores, an exclusive GPU): Acquire
// blocks until a unit is free; Use is acquire-delay-release. Busy time is
// accumulated for utilisation reporting.
type Resource struct {
	sim     *Sim
	name    string
	cap     int
	inUse   int
	waiters []*Proc
	busy    float64
}

// NewResource creates a resource with capacity units.
func NewResource(s *Sim, name string, capacity int) *Resource {
	if capacity < 1 {
		capacity = 1
	}
	return &Resource{sim: s, name: name, cap: capacity}
}

// Acquire blocks until a unit is available and takes it.
func (r *Resource) Acquire(p *Proc) {
	for r.inUse >= r.cap {
		r.waiters = append(r.waiters, p)
		p.park()
		r.waiters = removeProc(r.waiters, p)
	}
	r.inUse++
}

// Release returns a unit and wakes one waiter.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("des: Release of idle resource " + r.name)
	}
	r.inUse--
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.sim.wake(w)
	}
}

// Use occupies one unit for d seconds of virtual time.
func (r *Resource) Use(p *Proc, d float64) {
	r.Acquire(p)
	r.busy += d
	p.Delay(d)
	r.Release()
}

// UseAsync acquires a unit (blocking until one is free), then occupies it
// for d seconds in the background while the caller continues — the pattern
// of an aggregator dispatching batches across multiple devices.
func (r *Resource) UseAsync(p *Proc, d float64) {
	r.Acquire(p)
	r.busy += d
	r.sim.Spawn(r.name+"-async", func(c *Proc) {
		c.Delay(d)
		r.Release()
	})
}

// BusySeconds returns the summed busy time across units.
func (r *Resource) BusySeconds() float64 { return r.busy }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Trigger is a level-triggered wakeup for monitor processes (the paper's
// migration threads "usually stay in the sleeping state and are only woken
// up when the input buffer of the aggregator stage becomes full or empty").
// Fire arms the trigger and wakes the waiter; Await blocks until armed and
// consumes the arming. Stop releases a waiter permanently.
type Trigger struct {
	sim     *Sim
	armed   bool
	stopped bool
	waiter  *Proc
}

// NewTrigger creates a trigger for the simulation.
func NewTrigger(s *Sim) *Trigger { return &Trigger{sim: s} }

// Fire arms the trigger, waking the waiting process if any.
func (t *Trigger) Fire() {
	t.armed = true
	if t.waiter != nil {
		t.sim.wake(t.waiter)
	}
}

// Stop permanently releases waiters; Await returns false afterwards.
func (t *Trigger) Stop() {
	t.stopped = true
	if t.waiter != nil {
		t.sim.wake(t.waiter)
	}
}

// Await blocks the process until the trigger fires, consuming the arming.
// It returns false once the trigger is stopped. Only one process may await
// a given trigger.
func (t *Trigger) Await(p *Proc) bool {
	for !t.armed && !t.stopped {
		t.waiter = p
		p.park()
		t.waiter = nil
	}
	if t.armed {
		t.armed = false
		return true
	}
	return false
}
