package des

import (
	"math"
	"testing"
)

func TestDelayAdvancesClock(t *testing.T) {
	s := New()
	var observed []float64
	s.Spawn("a", func(p *Proc) {
		p.Delay(1.5)
		observed = append(observed, p.Now())
		p.Delay(0.5)
		observed = append(observed, p.Now())
	})
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 2.0 {
		t.Fatalf("end time = %v, want 2.0", end)
	}
	if len(observed) != 2 || observed[0] != 1.5 || observed[1] != 2.0 {
		t.Fatalf("observed = %v", observed)
	}
}

func TestProcessesInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		s := New()
		var order []string
		for _, spec := range []struct {
			name  string
			delay float64
		}{{"x", 2}, {"y", 1}, {"z", 3}} {
			spec := spec
			s.Spawn(spec.name, func(p *Proc) {
				p.Delay(spec.delay)
				order = append(order, p.Name())
			})
		}
		if _, err := s.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a := run()
	b := run()
	if len(a) != 3 || a[0] != "y" || a[1] != "x" || a[2] != "z" {
		t.Fatalf("order = %v", a)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("simulation not deterministic")
		}
	}
}

func TestQueueProducerConsumer(t *testing.T) {
	s := New()
	q := NewQueue[int](s, 2)
	var got []int
	var putDone float64
	s.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			q.Put(p, i)
		}
		putDone = p.Now()
		q.Close()
	})
	s.Spawn("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v)
			p.Delay(1) // slow consumer forces producer to block on full
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("consumed %v", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order: %v", got)
		}
	}
	// With capacity 2 and a 1s-per-item consumer, the producer's last put
	// cannot complete at time 0.
	if putDone == 0 {
		t.Fatal("bounded queue did not apply backpressure")
	}
}

func TestQueueStealMin(t *testing.T) {
	s := New()
	q := NewQueue[int](s, 8)
	s.Spawn("p", func(p *Proc) {
		for _, v := range []int{4, 2, 9} {
			q.Put(p, v)
		}
		if v, ok := q.StealMin(func(x int) float64 { return float64(x) }); !ok || v != 2 {
			t.Errorf("StealMin = %v,%v", v, ok)
		}
		if q.Len() != 2 {
			t.Errorf("len = %d", q.Len())
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestResourceSerialises(t *testing.T) {
	s := New()
	r := NewResource(s, "gpu", 1)
	var finish []float64
	for i := 0; i < 3; i++ {
		s.Spawn("user", func(p *Proc) {
			r.Use(p, 2)
			finish = append(finish, p.Now())
		})
	}
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 6 {
		t.Fatalf("three exclusive 2s uses should end at 6, got %v", end)
	}
	if r.BusySeconds() != 6 {
		t.Fatalf("busy = %v", r.BusySeconds())
	}
}

func TestResourceParallelCapacity(t *testing.T) {
	s := New()
	r := NewResource(s, "cores", 4)
	for i := 0; i < 8; i++ {
		s.Spawn("task", func(p *Proc) { r.Use(p, 1) })
	}
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 2 {
		t.Fatalf("8 unit tasks on 4 cores should end at 2, got %v", end)
	}
}

func TestDeadlockDetection(t *testing.T) {
	s := New()
	q := NewQueue[int](s, 1)
	s.Spawn("starved", func(p *Proc) {
		q.Get(p) // nobody ever puts or closes
	})
	if _, err := s.Run(); err == nil {
		t.Fatal("deadlock not reported")
	}
}

func TestTrigger(t *testing.T) {
	s := New()
	tr := NewTrigger(s)
	var wokenAt float64
	fired := 0
	s.Spawn("monitor", func(p *Proc) {
		for tr.Await(p) {
			fired++
			wokenAt = p.Now()
		}
	})
	s.Spawn("worker", func(p *Proc) {
		p.Delay(5)
		tr.Fire()
		p.Delay(5)
		tr.Fire()
		p.Delay(1)
		tr.Stop()
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 2 {
		t.Fatalf("monitor fired %d times, want 2", fired)
	}
	if math.Abs(wokenAt-10) > 1e-12 {
		t.Fatalf("woken at %v, want 10", wokenAt)
	}
}

func TestQueueEmptyFullSignals(t *testing.T) {
	s := New()
	q := NewQueue[int](s, 1)
	var fulls, empties int
	q.FullSignal = func() { fulls++ }
	q.EmptySignal = func() { empties++ }
	s.Spawn("producer", func(p *Proc) {
		q.Put(p, 1) // fills capacity-1 queue -> full signal
		q.Put(p, 2) // blocks behind the slow start -> another full signal
		p.Delay(5)  // slow producer: consumer finds the queue empty
		q.Put(p, 3)
		q.Close()
	})
	s.Spawn("consumer", func(p *Proc) {
		p.Delay(1)
		for {
			if _, ok := q.Get(p); !ok {
				return
			}
		}
	})
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fulls == 0 {
		t.Fatal("no full signals")
	}
	if empties == 0 {
		t.Fatal("no empty signals (consumer drains faster than producer)")
	}
}
