package tenant

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleConfig = `{
  "default": {"max_queued_jobs": 4},
  "tenants": [
    {"name": "acme", "token": "tok-acme", "max_bytes": "1MiB", "max_datasets": 2, "max_queued_jobs": 8},
    {"name": "globex", "token": "tok-globex", "max_bytes": 4096}
  ]
}`

func TestParseConfigRoundTrip(t *testing.T) {
	c, err := ParseConfig([]byte(sampleConfig))
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	if !c.Enabled() {
		t.Fatal("config with tenants reports Enabled() == false")
	}
	q := c.Resolve("tok-acme")
	if q.Name != "acme" || q.MaxBytes != 1<<20 || q.MaxDatasets != 2 || q.MaxQueuedJobs != 8 {
		t.Fatalf("Resolve(tok-acme) = %+v", q)
	}
	if q := c.Resolve("unknown-token"); q.Name != DefaultName || q.MaxQueuedJobs != 4 {
		t.Fatalf("unknown token resolved to %+v, want default with max_queued_jobs=4", q)
	}
	if q := c.Resolve(""); q.Name != DefaultName {
		t.Fatalf("empty token resolved to %+v, want default", q)
	}
	if q, ok := c.ByName("globex"); !ok || q.MaxBytes != 4096 {
		t.Fatalf("ByName(globex) = %+v, %v", q, ok)
	}
	if _, ok := c.ByName("nobody"); ok {
		t.Fatal("ByName(nobody) found a tenant")
	}
	if got := c.QueueLimit("acme"); got != 8 {
		t.Fatalf("QueueLimit(acme) = %d, want 8", got)
	}
	// A forwarded name with no local config is bounded like anonymous traffic.
	if got := c.QueueLimit("stranger"); got != 4 {
		t.Fatalf("QueueLimit(stranger) = %d, want the default tenant's 4", got)
	}
	names := c.Names()
	if len(names) != 3 || names[0] != DefaultName {
		t.Fatalf("Names() = %v", names)
	}
}

func TestParseConfigRejections(t *testing.T) {
	cases := map[string]string{
		"default token":     `{"default": {"token": "x"}}`,
		"missing token":     `{"tenants": [{"name": "a"}]}`,
		"invalid name":      `{"tenants": [{"name": "no spaces!", "token": "x"}]}`,
		"empty name":        `{"tenants": [{"name": "", "token": "x"}]}`,
		"duplicate name":    `{"tenants": [{"name": "a", "token": "x"}, {"name": "a", "token": "y"}]}`,
		"duplicate token":   `{"tenants": [{"name": "a", "token": "x"}, {"name": "b", "token": "x"}]}`,
		"default collision": `{"tenants": [{"name": "default", "token": "x"}]}`,
		"negative quota":    `{"tenants": [{"name": "a", "token": "x", "max_datasets": -1}]}`,
		"negative bytes":    `{"tenants": [{"name": "a", "token": "x", "max_bytes": -5}]}`,
		"unknown field":     `{"tenants": [{"name": "a", "token": "x", "max_ponies": 1}]}`,
		"trailing data":     `{"tenants": []} {"again": true}`,
		"bad byte size":     `{"tenants": [{"name": "a", "token": "x", "max_bytes": "lots"}]}`,
	}
	for label, doc := range cases {
		if _, err := ParseConfig([]byte(doc)); err == nil {
			t.Errorf("%s: ParseConfig accepted %s", label, doc)
		}
	}
}

func TestEnabledZeroValue(t *testing.T) {
	var c Config
	if c.Enabled() {
		t.Fatal("zero config reports Enabled()")
	}
	if q := c.Resolve("anything"); q.Name != DefaultName || q.MaxBytes != 0 {
		t.Fatalf("zero config resolved %+v, want unlimited default", q)
	}
	if got := c.QueueLimit("anyone"); got != 0 {
		t.Fatalf("zero config QueueLimit = %d, want 0 (unlimited)", got)
	}
}

func TestLoadConfigInlineAndFile(t *testing.T) {
	if c, err := LoadConfig("  "); err != nil || c.Enabled() {
		t.Fatalf("blank flag: %+v, %v", c, err)
	}
	if _, err := LoadConfig(`{"tenants": [{"name": "a", "token": "x"}]}`); err != nil {
		t.Fatalf("inline JSON: %v", err)
	}
	path := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(path, []byte(sampleConfig), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := LoadConfig(path)
	if err != nil {
		t.Fatalf("file config: %v", err)
	}
	if q := c.Resolve("tok-globex"); q.Name != "globex" {
		t.Fatalf("file config resolved %+v", q)
	}
	if _, err := LoadConfig(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestRegistryAttributionLifecycle(t *testing.T) {
	dir := t.TempDir()
	r := NewRegistry(dir)
	r.Attribute("acme", "ds-1", 100)
	r.Attribute("acme", "ds-2", 50)
	r.Attribute("globex", "ds-1", 100) // shared dataset, charged to both

	if u := r.Usage("acme"); u.Bytes != 150 || u.Datasets != 2 {
		t.Fatalf("acme usage = %+v", u)
	}
	if u := r.Usage("globex"); u.Bytes != 100 || u.Datasets != 1 {
		t.Fatalf("globex usage = %+v", u)
	}
	// Re-ingest is idempotent: the charge updates, it doesn't accumulate.
	r.Attribute("acme", "ds-1", 100)
	if u := r.Usage("acme"); u.Bytes != 150 {
		t.Fatalf("acme usage after re-attribute = %+v", u)
	}
	if ids := r.Datasets("acme"); len(ids) != 2 || ids[0] != "ds-1" || ids[1] != "ds-2" {
		t.Fatalf("acme datasets = %v", ids)
	}

	// Attribution survives a restart.
	r2 := NewRegistry(dir)
	if u := r2.Usage("acme"); u.Bytes != 150 || u.Datasets != 2 {
		t.Fatalf("reloaded acme usage = %+v", u)
	}

	// Deleting the dataset releases every tenant's charge.
	r2.DropDataset("ds-1")
	if u := r2.Usage("acme"); u.Bytes != 50 || u.Datasets != 1 {
		t.Fatalf("acme usage after DropDataset = %+v", u)
	}
	if u := r2.Usage("globex"); u.Bytes != 0 || u.Datasets != 0 {
		t.Fatalf("globex usage after DropDataset = %+v", u)
	}

	// Tenant deletion releases its quota without touching other owners.
	r2.Attribute("globex", "ds-2", 50)
	r2.DropTenant("acme")
	if u := r2.Usage("acme"); u.Bytes != 0 || u.Datasets != 0 {
		t.Fatalf("acme usage after DropTenant = %+v", u)
	}
	if u := r2.Usage("globex"); u.Bytes != 50 || u.Datasets != 1 {
		t.Fatalf("globex usage after DropTenant = %+v", u)
	}
	all := r2.All()
	if len(all) != 1 || all["globex"].Bytes != 50 {
		t.Fatalf("All() = %v", all)
	}
}

// FuzzTenantConfig checks ParseConfig never panics and every accepted config
// upholds its invariants: valid names, unique names and tokens, non-negative
// quotas, and a token on every non-default tenant.
func FuzzTenantConfig(f *testing.F) {
	f.Add(sampleConfig)
	f.Add(`{}`)
	f.Add(`{"default": {"name": "anon", "max_bytes": "16KiB"}}`)
	f.Add(`{"tenants": [{"name": "a", "token": "t"}]}`)
	f.Add(`{"tenants": [{"name": "a", "token": "t", "max_bytes": -1}]}`)
	f.Add(`not json at all`)
	f.Fuzz(func(t *testing.T, doc string) {
		c, err := ParseConfig([]byte(doc))
		if err != nil {
			return
		}
		if !ValidName(c.Default.Name) {
			t.Fatalf("accepted invalid default name %q", c.Default.Name)
		}
		if c.Default.Token != "" {
			t.Fatal("accepted a default tenant with a token")
		}
		names := map[string]bool{c.Default.Name: true}
		tokens := map[string]bool{}
		for _, q := range c.Tenants {
			if !ValidName(q.Name) {
				t.Fatalf("accepted invalid tenant name %q", q.Name)
			}
			if strings.TrimSpace(q.Token) == "" {
				t.Fatalf("accepted tokenless tenant %q", q.Name)
			}
			if names[q.Name] {
				t.Fatalf("accepted duplicate tenant name %q", q.Name)
			}
			if tokens[q.Token] {
				t.Fatalf("accepted duplicate token for tenant %q", q.Name)
			}
			names[q.Name], tokens[q.Token] = true, true
			if q.MaxBytes < 0 || q.MaxDatasets < 0 || q.MaxQueuedJobs < 0 {
				t.Fatalf("accepted negative quota on tenant %q: %+v", q.Name, q)
			}
			if got := c.Resolve(q.Token); got.Name != q.Name {
				t.Fatalf("Resolve(%q) = %q, want %q", q.Token, got.Name, q.Name)
			}
		}
	})
}
