// Package tenant is sccgd's multi-tenant identity and quota layer: a
// token-keyed tenant configuration (LogBase's tenant-partitioned access
// idea, PAPERS.md), per-tenant usage accounting over the content-addressed
// store, and the plumbing that carries a tenant identity across cluster
// calls.
//
// Identity is resolved from the request's bearer token; unknown or absent
// tokens fall into the default tenant, so an unconfigured daemon behaves
// exactly as before. Quotas bound three things: bytes attributed to the
// tenant in the store, datasets attributed to the tenant, and jobs the
// tenant may hold queued at once. Attribution is charged at ingest to the
// ingesting tenant; a dataset two tenants both ingested is charged to both
// (content addressing dedups the bytes on disk, but a tenant can never
// free-ride under another tenant's upload), and deleting the dataset
// releases every tenant's charge.
package tenant

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"

	"repro/internal/retention"
)

// Header carries the resolved tenant NAME (not the secret token) on
// /internal/* cluster calls, so work a peer performs on another node's
// behalf is accounted and scheduled under the originating tenant.
const Header = "X-Sccg-Tenant"

// DefaultName is the tenant unknown and anonymous tokens resolve to.
const DefaultName = "default"

// nameRE bounds tenant names to metric-label-safe, header-safe tokens.
var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// ValidName reports whether s is an acceptable tenant name: 1-64 chars of
// [A-Za-z0-9._-], starting alphanumeric. Names appear verbatim as metric
// label values and in the cluster propagation header, so the charset is
// deliberately narrow (federation-safe, no escaping surprises).
func ValidName(s string) bool { return nameRE.MatchString(s) }

// ByteSize is an int64 byte count that unmarshals from either a JSON number
// or a human-readable string ("512MiB", "1.5 GB").
type ByteSize int64

// UnmarshalJSON accepts numbers and retention.ParseBytes strings.
func (b *ByteSize) UnmarshalJSON(data []byte) error {
	s := strings.TrimSpace(string(data))
	if len(s) > 0 && s[0] == '"' {
		var str string
		if err := json.Unmarshal(data, &str); err != nil {
			return err
		}
		n, err := retention.ParseBytes(str)
		if err != nil {
			return err
		}
		*b = ByteSize(n)
		return nil
	}
	var n int64
	if err := json.Unmarshal(data, &n); err != nil {
		return err
	}
	if n < 0 {
		return fmt.Errorf("tenant: negative byte size %d", n)
	}
	*b = ByteSize(n)
	return nil
}

// MarshalJSON renders the plain byte count.
func (b ByteSize) MarshalJSON() ([]byte, error) { return json.Marshal(int64(b)) }

// Quota is one tenant's identity and limits. Zero limits mean unlimited —
// quotas are opt-in per dimension.
type Quota struct {
	// Name identifies the tenant in metrics, logs, and the query log.
	Name string `json:"name"`
	// Token is the bearer token that resolves to this tenant. Required for
	// configured tenants, forbidden on the default (which is what every
	// unmatched token already resolves to).
	Token string `json:"token,omitempty"`
	// MaxBytes caps the store bytes attributed to the tenant. 0 = unlimited.
	MaxBytes ByteSize `json:"max_bytes,omitempty"`
	// MaxDatasets caps datasets attributed to the tenant. 0 = unlimited.
	MaxDatasets int `json:"max_datasets,omitempty"`
	// MaxQueuedJobs caps how many of the tenant's jobs may sit queued at
	// once (enforced atomically inside the scheduler). 0 = unlimited.
	MaxQueuedJobs int `json:"max_queued_jobs,omitempty"`
}

// Config is the parsed -tenants configuration.
type Config struct {
	// Default is the tenant unknown tokens fall into. Its Name defaults to
	// "default"; its quotas bound anonymous traffic.
	Default Quota `json:"default"`
	// Tenants are the token-keyed tenants.
	Tenants []Quota `json:"tenants"`

	byToken map[string]Quota
	byName  map[string]Quota
}

// Enabled reports whether the config carries anything beyond the implicit
// unlimited default tenant.
func (c Config) Enabled() bool {
	return len(c.Tenants) > 0 || c.Default.MaxBytes > 0 ||
		c.Default.MaxDatasets > 0 || c.Default.MaxQueuedJobs > 0
}

// Resolve maps a bearer token to its tenant; unknown or empty tokens get
// the default tenant.
func (c Config) Resolve(token string) Quota {
	if token != "" {
		if q, ok := c.byToken[token]; ok {
			return q
		}
	}
	return c.defaultQuota()
}

// ByName looks a tenant up by name (cluster calls forward names, never
// tokens).
func (c Config) ByName(name string) (Quota, bool) {
	if name == c.defaultQuota().Name {
		return c.defaultQuota(), true
	}
	q, ok := c.byName[name]
	return q, ok
}

// QueueLimit returns the queued-job cap for the named tenant (0 =
// unlimited) — the scheduler's atomic admission callback.
func (c Config) QueueLimit(name string) int {
	if q, ok := c.ByName(name); ok {
		return q.MaxQueuedJobs
	}
	// A forwarded cluster tenant this node has no config for: bound it like
	// anonymous traffic.
	return c.defaultQuota().MaxQueuedJobs
}

// Names returns every configured tenant name, default first.
func (c Config) Names() []string {
	out := []string{c.defaultQuota().Name}
	for _, q := range c.Tenants {
		out = append(out, q.Name)
	}
	return out
}

func (c Config) defaultQuota() Quota {
	d := c.Default
	if d.Name == "" {
		d.Name = DefaultName
	}
	return d
}

// ParseConfig parses and validates a tenants configuration document.
func ParseConfig(data []byte) (Config, error) {
	var c Config
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("tenant: parse config: %w", err)
	}
	if dec.More() {
		return Config{}, errors.New("tenant: trailing data after config document")
	}
	if c.Default.Token != "" {
		return Config{}, errors.New("tenant: default tenant must not have a token")
	}
	c.Default = c.defaultQuota()
	if !ValidName(c.Default.Name) {
		return Config{}, fmt.Errorf("tenant: invalid default tenant name %q", c.Default.Name)
	}
	c.byToken = make(map[string]Quota, len(c.Tenants))
	c.byName = make(map[string]Quota, len(c.Tenants))
	for i, q := range c.Tenants {
		if !ValidName(q.Name) {
			return Config{}, fmt.Errorf("tenant: tenant %d: invalid name %q (want 1-64 chars of [A-Za-z0-9._-])", i, q.Name)
		}
		if q.Name == c.Default.Name {
			return Config{}, fmt.Errorf("tenant: tenant %q collides with the default tenant", q.Name)
		}
		if strings.TrimSpace(q.Token) == "" {
			return Config{}, fmt.Errorf("tenant: tenant %q has no token (unreachable)", q.Name)
		}
		if strings.TrimSpace(q.Token) != q.Token {
			return Config{}, fmt.Errorf("tenant: tenant %q: token has surrounding whitespace", q.Name)
		}
		if q.MaxBytes < 0 || q.MaxDatasets < 0 || q.MaxQueuedJobs < 0 {
			return Config{}, fmt.Errorf("tenant: tenant %q: quotas must be non-negative", q.Name)
		}
		if _, dup := c.byName[q.Name]; dup {
			return Config{}, fmt.Errorf("tenant: duplicate tenant name %q", q.Name)
		}
		if _, dup := c.byToken[q.Token]; dup {
			return Config{}, fmt.Errorf("tenant: tenant %q: token already assigned", q.Name)
		}
		c.byName[q.Name] = q
		c.byToken[q.Token] = q
	}
	if c.Default.MaxBytes < 0 || c.Default.MaxDatasets < 0 || c.Default.MaxQueuedJobs < 0 {
		return Config{}, errors.New("tenant: default tenant: quotas must be non-negative")
	}
	return c, nil
}

// LoadConfig reads a tenants configuration from the -tenants flag value:
// inline JSON when the value starts with '{', otherwise a file path.
func LoadConfig(pathOrJSON string) (Config, error) {
	s := strings.TrimSpace(pathOrJSON)
	if s == "" {
		return Config{}, nil
	}
	if strings.HasPrefix(s, "{") {
		return ParseConfig([]byte(s))
	}
	data, err := os.ReadFile(s)
	if err != nil {
		return Config{}, fmt.Errorf("tenant: read config: %w", err)
	}
	return ParseConfig(data)
}

type ctxKey struct{}

// WithContext attaches a tenant name to ctx; the cluster client forwards it
// on outbound /internal/* calls.
func WithContext(ctx context.Context, name string) context.Context {
	if name == "" {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, name)
}

// FromContext returns the tenant name attached by WithContext, or "".
func FromContext(ctx context.Context) string {
	name, _ := ctx.Value(ctxKey{}).(string)
	return name
}

// Usage is one tenant's accounted footprint.
type Usage struct {
	Bytes    int64 `json:"bytes"`
	Datasets int   `json:"datasets"`
}

// usageFile is the persisted attribution map: schema-tagged so a future
// layout change can migrate it.
type usageFile struct {
	Schema string                      `json:"schema"`
	Owners map[string]map[string]int64 `json:"owners"` // dataset ID → tenant → bytes
}

const usageSchema = "sccg-tenants/1"

// Registry tracks which tenant ingested which dataset and the byte charge,
// persisting the attribution next to the store so quotas survive a restart.
// All methods are safe for concurrent use.
type Registry struct {
	mu     sync.Mutex
	path   string // "" = in-memory only
	owners map[string]map[string]int64
}

// NewRegistry creates a usage registry. When dir is non-empty, attribution
// is persisted to dir/tenants.json and reloaded from it; load errors start
// the registry empty (attribution is advisory accounting, never worth
// refusing boot over).
func NewRegistry(dir string) *Registry {
	r := &Registry{owners: make(map[string]map[string]int64)}
	if dir == "" {
		return r
	}
	r.path = filepath.Join(dir, "tenants.json")
	data, err := os.ReadFile(r.path)
	if err != nil {
		return r
	}
	var f usageFile
	if json.Unmarshal(data, &f) == nil && f.Schema == usageSchema && f.Owners != nil {
		r.owners = f.Owners
	}
	return r
}

// Attribute charges the dataset's bytes to the tenant. Re-attributing the
// same dataset to the same tenant updates the charge (content addressing
// makes re-ingest idempotent, so the charge must be too).
func (r *Registry) Attribute(tenantName, datasetID string, bytes int64) {
	if tenantName == "" || datasetID == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.owners[datasetID]
	if m == nil {
		m = make(map[string]int64)
		r.owners[datasetID] = m
	}
	m[tenantName] = bytes
	r.saveLocked()
}

// DropDataset releases every tenant's charge for the dataset — wired into
// the store's delete hook so eviction, DELETE /datasets, and GC all release
// quota in the same stroke.
func (r *Registry) DropDataset(datasetID string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.owners[datasetID]; !ok {
		return
	}
	delete(r.owners, datasetID)
	r.saveLocked()
}

// DropTenant releases everything attributed to the tenant (tenant deletion
// releases its quota; the datasets stay, charged to their other owners).
func (r *Registry) DropTenant(tenantName string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	changed := false
	for id, m := range r.owners {
		if _, ok := m[tenantName]; !ok {
			continue
		}
		delete(m, tenantName)
		if len(m) == 0 {
			delete(r.owners, id)
		}
		changed = true
	}
	if changed {
		r.saveLocked()
	}
}

// Usage returns the tenant's accounted footprint.
func (r *Registry) Usage(tenantName string) Usage {
	r.mu.Lock()
	defer r.mu.Unlock()
	var u Usage
	for _, m := range r.owners {
		if b, ok := m[tenantName]; ok {
			u.Bytes += b
			u.Datasets++
		}
	}
	return u
}

// All returns every tenant with non-zero usage, for gauges and the admin
// listing.
func (r *Registry) All() map[string]Usage {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]Usage)
	for _, m := range r.owners {
		for t, b := range m {
			u := out[t]
			u.Bytes += b
			u.Datasets++
			out[t] = u
		}
	}
	return out
}

// Datasets returns the dataset IDs attributed to the tenant, sorted.
func (r *Registry) Datasets(tenantName string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for id, m := range r.owners {
		if _, ok := m[tenantName]; ok {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// saveLocked persists the attribution map atomically (tmp + rename),
// best-effort: accounting must never fail the ingest that triggered it.
func (r *Registry) saveLocked() {
	if r.path == "" {
		return
	}
	data, err := json.Marshal(usageFile{Schema: usageSchema, Owners: r.owners})
	if err != nil {
		return
	}
	tmp := r.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, r.path)
}
