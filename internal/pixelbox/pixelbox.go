// Package pixelbox implements PixelBox, the paper's core contribution: a
// GPU algorithm computing the areas of intersection and union of polygon
// pairs segmented from raster images (paper §3).
//
// Instead of constructing intersection/union boundaries the way sweepline
// overlay libraries do, PixelBox counts pixels. Rectilinearity makes the
// count exact (§3.1). Compute intensity is reduced with recursively refined
// sampling boxes classified by the Lemma-1 position test (§3.2), switching
// to per-pixel testing below a threshold T; the area of union is derived
// indirectly from ‖p∪q‖ = ‖p‖+‖q‖−‖p∩q‖.
//
// The package provides the GPU kernel of Algorithm 1 (run on the simulator
// in internal/gpu), the algorithmic ablations PixelOnly and PixelBox-NoSep
// (Fig. 8), the implementation-optimisation ladder NoOpt/NBC/NBC-UR/
// NBC-UR-SM (Fig. 9), and the CPU port PixelBox-CPU in single-core and
// parallel forms (§4.2).
package pixelbox

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/gpu"
)

// Pair is one polygon pair whose areas of intersection and union are to be
// computed; pairs are produced by the filter stage's MBR join.
type Pair struct {
	P, Q *geom.Polygon
}

// AreaResult is the output for one pair: exact pixel counts.
type AreaResult struct {
	Intersection int64
	Union        int64
}

// Ratio returns the Jaccard ratio r(p,q) = ‖p∩q‖/‖p∪q‖ and whether the pair
// truly intersects (MBR-intersecting pairs often do not).
func (r AreaResult) Ratio() (float64, bool) {
	if r.Intersection == 0 {
		return 0, false
	}
	return float64(r.Intersection) / float64(r.Union), true
}

// Variant selects the algorithmic and implementation options whose effects
// the paper ablates.
type Variant struct {
	// SamplingBoxes enables the recursive sampling-box refinement of §3.2;
	// disabled it degenerates to the pixelization-only method ("PixelOnly").
	SamplingBoxes bool
	// IndirectUnion derives the area of union from polygon areas and the
	// area of intersection rather than testing union membership during
	// refinement; disabled is the "PixelBox-NoSep" variant, which needs
	// strictly more box partitionings.
	IndirectUnion bool
	// SharedVertices loads polygon vertex data into shared memory when it
	// fits (the "SM" implementation optimisation); otherwise vertices are
	// read from (L1-cached) global memory on every edge test.
	SharedVertices bool
	// ConflictFreeStack lays the sampling-box stack out as five independent
	// SoA sub-stacks so warp-simultaneous pushes are conflict-free (the
	// "NBC" optimisation); otherwise stack elements are contiguous padded
	// records and pushes serialise on shared-memory banks.
	ConflictFreeStack bool
	// Unroll is the edge-loop unrolling factor (the "UR" optimisation);
	// values <= 1 mean no unrolling.
	Unroll int
}

// Canonical variants from the paper.
var (
	// PixelBox is the fully optimised algorithm: sampling boxes, indirect
	// union, and all implementation optimisations.
	PixelBox = Variant{SamplingBoxes: true, IndirectUnion: true, SharedVertices: true, ConflictFreeStack: true, Unroll: 4}
	// PixelBoxNoSep combines pixelization and sampling boxes but computes
	// the areas of intersection and union together directly (Fig. 8).
	PixelBoxNoSep = Variant{SamplingBoxes: true, IndirectUnion: false, SharedVertices: true, ConflictFreeStack: true, Unroll: 4}
	// PixelOnly uses the pixelization method alone (Fig. 8).
	PixelOnly = Variant{SamplingBoxes: false, IndirectUnion: false, SharedVertices: true, ConflictFreeStack: true, Unroll: 4}
	// NoOpt is PixelBox with no implementation optimisations (Fig. 9).
	NoOpt = Variant{SamplingBoxes: true, IndirectUnion: true}
	// NBC avoids stack bank conflicts only (Fig. 9).
	NBC = Variant{SamplingBoxes: true, IndirectUnion: true, ConflictFreeStack: true}
	// NBCUR adds edge-loop unrolling (Fig. 9).
	NBCUR = Variant{SamplingBoxes: true, IndirectUnion: true, ConflictFreeStack: true, Unroll: 4}
	// NBCURSM adds shared-memory vertex staging: identical to PixelBox.
	NBCURSM = PixelBox
)

// Name returns the paper's name for a canonical variant, or a descriptive
// string otherwise.
func (v Variant) Name() string {
	switch v {
	case PixelBox:
		return "PixelBox"
	case PixelBoxNoSep:
		return "PixelBox-NoSep"
	case PixelOnly:
		return "PixelOnly"
	case NoOpt:
		return "PixelBox-NoOpt"
	case NBC:
		return "PixelBox-NBC"
	case NBCUR:
		return "PixelBox-NBC-UR"
	}
	return fmt.Sprintf("Variant%+v", v)
}

// Config tunes a kernel launch.
type Config struct {
	// BlockSize is the thread-block size n; DefaultBlockSize when zero. The
	// paper finds small blocks (64) best (§5.4).
	BlockSize int
	// GridSize is the number of thread blocks; 0 selects automatically.
	GridSize int
	// Threshold is the pixelization threshold T in pixels; 0 selects the
	// paper's recommended n²/2.
	Threshold int
	// Variant selects the algorithm variant; the zero value is upgraded to
	// the fully optimised PixelBox.
	Variant Variant
}

// DefaultBlockSize is the paper's preferred thread-block size.
const DefaultBlockSize = 64

// normalized fills in defaults.
func (c Config) normalized() Config {
	if c.BlockSize <= 0 {
		c.BlockSize = DefaultBlockSize
	}
	if c.Threshold <= 0 {
		c.Threshold = c.BlockSize * c.BlockSize / 2
	}
	if c.Threshold < 2 {
		// T=1 cannot terminate: a 1-pixel box is never smaller than T yet
		// cannot be partitioned further. Clamp (1x1 boxes are pixelised
		// unconditionally as well).
		c.Threshold = 2
	}
	if (c.Variant == Variant{}) {
		c.Variant = PixelBox
	}
	if c.Variant.Unroll < 1 {
		c.Variant.Unroll = 1
	}
	return c
}

// Shared-memory layout constants (bytes), mirroring §3.3: a static region
// for staged polygon vertices plus the sampling-box stack.
const (
	vertexRegionBytes = 2048 // 256 staged vertices of 8 bytes
	stackCapacity     = 512  // sampling-box stack entries
	stackEntryWords   = 5    // x0,y0,x1,y1,flag
	stackBytes        = stackCapacity * stackEntryWords * 4
	stackPadWords     = 8 // padded AoS record (without NBC)
)

// ShmemPerBlock returns the shared-memory footprint per thread block for a
// variant, used for occupancy.
func ShmemPerBlock(v Variant) int {
	sh := stackBytes
	if !v.ConflictFreeStack {
		sh = stackCapacity * stackPadWords * 4
	}
	if v.SharedVertices {
		sh += vertexRegionBytes
	}
	return sh
}

// Cost-model instruction counts per edge-loop iteration, calibrated to
// Fermi-generation instruction mixes. Loop overhead is divided by the
// unrolling factor.
const (
	pixelTestOps  = 5 // compares + conditional increment per edge
	boxTestOps    = 8 // interval overlap tests per edge
	centerTestOps = 5 // ray-crossing test per edge
	loopOverhead  = 3 // index update + bounds check + branch
	polyAreaOps   = 10
)

// RunGPU executes the configured variant over pairs on the simulated device
// and returns exact per-pair areas together with the modelled launch result
// and host-device transfer time in seconds.
//
// The computation is performed for real — results are exact and validated
// against the clip package in tests — while the gpu.Block cost primitives
// account for the work as a Fermi-class GPU would execute it.
func RunGPU(dev *gpu.Device, pairs []Pair, cfg Config) ([]AreaResult, gpu.LaunchResult, float64) {
	cfg = cfg.normalized()
	results := make([]AreaResult, len(pairs))
	if len(pairs) == 0 {
		return results, gpu.LaunchResult{}, 0
	}

	grid := cfg.GridSize
	if grid <= 0 {
		grid = dev.Config().SMs * dev.Config().MaxBlocksPerSM * 4
		if grid > len(pairs) {
			grid = len(pairs)
		}
	}

	// Host-to-device transfer: vertex data plus MBRs, device-to-host: areas.
	var bytes int64
	for _, pr := range pairs {
		bytes += int64(pr.P.NumVertices()+pr.Q.NumVertices())*8 + 16
	}
	xfer := dev.Transfer(bytes)
	launch := dev.Launch(grid, cfg.BlockSize, ShmemPerBlock(cfg.Variant), func(b *gpu.Block) {
		for i := b.Idx; i < len(pairs); i += b.GridDim {
			results[i] = kernelPair(b, pairs[i], cfg)
		}
	})
	xfer += dev.Transfer(int64(len(pairs)) * 16)
	return results, launch, xfer
}

// kernelPair processes one polygon pair inside a thread block, following
// Algorithm 1 of the paper.
func kernelPair(b *gpu.Block, pr Pair, cfg Config) AreaResult {
	v := cfg.Variant
	p, q := pr.P, pr.Q

	// Stage vertices into shared memory when they fit in the static region
	// (§3.3 "Utilize shared memory"): a strided copy from global memory.
	totalVerts := p.NumVertices() + q.NumVertices()
	inShared := v.SharedVertices && totalVerts*8 <= vertexRegionBytes
	b.GlobalRead(totalVerts * 8)
	if inShared {
		b.Strided(totalVerts, 2)
		b.SharedAccess((totalVerts + b.BlockDim - 1) / b.BlockDim)
	}

	res := AreaResult{}
	if v.IndirectUnion {
		// Lines 11-12: partial polygon areas by the shoelace formula,
		// strided across threads; reduction happens host-side (§3.3).
		b.Strided(p.NumVertices(), polyAreaOps)
		b.Strided(q.NumVertices(), polyAreaOps)
		if inShared {
			b.SharedBroadcast((totalVerts + b.BlockDim - 1) / b.BlockDim)
		} else {
			b.L1Read((totalVerts + b.BlockDim - 1) / b.BlockDim)
		}
	}

	// The working window: with indirect union only the intersection of the
	// two MBRs matters (‖p∩q‖ can only lie there); direct-union variants
	// must cover the pair's full union MBR, exactly as the paper's kernel
	// pushes the pair MBR as the first sampling box.
	var window geom.MBR
	if v.IndirectUnion {
		window = p.MBR().Intersection(q.MBR())
	} else {
		window = p.MBR().Union(q.MBR())
	}
	if window.IsEmpty() {
		res.Union = p.Area() + q.Area()
		return res
	}

	var inter, union int64
	if !v.SamplingBoxes {
		inter, union = pixelizeBox(b, p, q, window, cfg, true)
	} else {
		inter, union = samplingBoxLoop(b, p, q, window, cfg)
	}
	res.Intersection = inter
	if v.IndirectUnion {
		res.Union = p.Area() + q.Area() - inter
	} else {
		res.Union = union
	}
	// Write per-pair partials back to global memory (lines 5-6).
	b.GlobalWrite(16)
	return res
}

// stackEntry is one sampling box on the shared stack with its probe flag
// (c=0: skip when popped; Algorithm 1 line 19).
type stackEntry struct {
	box   geom.MBR
	probe bool
}

// samplingBoxLoop runs the sampling-box refinement of Algorithm 1 lines
// 13-42 for one pair, returning exact intersection (and, for the direct
// variant, union-within-MBR) pixel counts.
func samplingBoxLoop(b *gpu.Block, p, q *geom.Polygon, mbr geom.MBR, cfg Config) (inter, union int64) {
	v := cfg.Variant
	stack := make([]stackEntry, 0, stackCapacity)
	stack = append(stack, stackEntry{box: mbr, probe: true})
	b.SharedAccess(1) // thread 0 pushes the MBR (line 13)

	kx, ky := partitionGrid(cfg.BlockSize)

	for len(stack) > 0 {
		b.Sync() // line 17
		top := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		b.SharedBroadcast(stackEntryWords) // all threads pop the same entry
		b.Uniform(3)                       // top bookkeeping + flag test
		if !top.probe {
			continue
		}
		size := top.box.Pixels()
		onePixel := top.box.Width() == 1 && top.box.Height() == 1
		overflow := len(stack)+1+cfg.BlockSize > stackCapacity
		if size < int64(cfg.Threshold) || onePixel || overflow {
			di, du := pixelizeBox(b, p, q, top.box, cfg, !v.IndirectUnion)
			inter += di
			union += du
			continue
		}
		// Partition into blockDim sub-sampling boxes, one per thread
		// (lines 30-39). All threads execute the SubSampBox arithmetic and
		// the two Lemma-1 position tests in lockstep — every thread's
		// polygons (hence edge counts) are identical, so one warp
		// instruction stream covers the whole block and the cost is
		// charged once per partition step, not per thread.
		b.Uniform(8 + 6) // SubSampBox index arithmetic + BoxContinue/Contribute
		chargeBoxTests(b, p, q, cfg)
		pushAddrs := make([]int32, 0, cfg.BlockSize)
		for tid := 0; tid < cfg.BlockSize; tid++ {
			sub := subSampBox(top.box, tid, kx, ky)
			if sub.IsEmpty() {
				// Trivially outside; still pushed with c=0 as in the real
				// kernel (the lane ran in lockstep with the others).
				stack = append(stack, stackEntry{probe: false})
				pushAddrs = append(pushAddrs, int32(len(stack)-1))
				continue
			}
			φ1 := p.BoxPosition(sub)
			φ2 := q.BoxPosition(sub)
			cont := boxContinue(φ1, φ2, v.IndirectUnion)
			if !cont {
				if φ1 == geom.BoxInside && φ2 == geom.BoxInside {
					inter += sub.Pixels()
				}
				if !v.IndirectUnion && (φ1 == geom.BoxInside || φ2 == geom.BoxInside) {
					union += sub.Pixels()
				}
			}
			stack = append(stack, stackEntry{box: sub, probe: cont})
			pushAddrs = append(pushAddrs, int32(len(stack)-1))
		}
		chargeStackPush(b, pushAddrs, v)
	}
	return inter, union
}

// boxContinue decides whether a sub-box needs further probing given its
// positions relative to the two polygons.
func boxContinue(φ1, φ2 geom.BoxPos, indirectUnion bool) bool {
	interKnown := φ1 == geom.BoxOutside || φ2 == geom.BoxOutside ||
		(φ1 == geom.BoxInside && φ2 == geom.BoxInside)
	if indirectUnion {
		return !interKnown
	}
	unionKnown := φ1 == geom.BoxInside || φ2 == geom.BoxInside ||
		(φ1 == geom.BoxOutside && φ2 == geom.BoxOutside)
	return !(interKnown && unionKnown)
}

// chargeBoxTests charges two Lemma-1 box position computations (one per
// polygon): an edge-overlap scan plus the centre ray test, serialised under
// SIMT because threads diverge on whether the centre test is needed.
func chargeBoxTests(b *gpu.Block, p, q *geom.Polygon, cfg Config) {
	v := cfg.Variant
	loopOv := loopOverhead / v.Unroll
	if loopOv < 1 {
		loopOv = 1
	}
	edges := p.NumVertices() + q.NumVertices()
	inShared := v.SharedVertices && edges*8 <= vertexRegionBytes
	b.Uniform(edges * (boxTestOps + centerTestOps + 2*loopOv))
	if inShared {
		b.SharedBroadcast(2 * edges)
	} else {
		b.L1Read(2 * edges)
	}
}

// chargeStackPush charges the warp-simultaneous push of one sub-box per
// thread. With the conflict-free SoA layout each of the five word stores is
// an independent unit-stride access; with the padded contiguous layout the
// stores stride by the record size and serialise on banks (§3.3 "Avoid
// memory bank conflicts"). Bank conflicts are computed from real addresses.
func chargeStackPush(b *gpu.Block, slots []int32, v Variant) {
	if len(slots) == 0 {
		return
	}
	addrs := make([]int32, len(slots))
	for w := 0; w < stackEntryWords; w++ {
		for i, s := range slots {
			if v.ConflictFreeStack {
				// Five SoA sub-stacks: word w lives in its own array,
				// thread i writes element s (unit stride).
				addrs[i] = s
			} else {
				// Contiguous records padded to stackPadWords words.
				addrs[i] = s*stackPadWords + int32(w)
			}
		}
		b.SharedPattern(addrs)
	}
	b.Uniform(2) // top pointer update (thread 0) + old-top flag clear
	b.SharedAccess(1)
}

// pixelizeBox counts, pixel by pixel, the intersection (and optionally
// union) contribution of a box (Algorithm 1 lines 22-28). Pixels are strided
// across the block's threads; a box smaller than the block leaves SIMD lanes
// idle, which the cost model charges via Strided.
func pixelizeBox(b *gpu.Block, p, q *geom.Polygon, box geom.MBR, cfg Config, wantUnion bool) (inter, union int64) {
	v := cfg.Variant
	loopOv := loopOverhead / v.Unroll
	if loopOv < 1 {
		loopOv = 1
	}
	edges := p.NumVertices() + q.NumVertices()
	inShared := v.SharedVertices && edges*8 <= vertexRegionBytes

	pixels := int(box.Pixels())
	opsPerPixel := edges*(pixelTestOps+loopOv) + 4
	b.Strided(pixels, opsPerPixel)
	iters := (pixels + cfg.BlockSize - 1) / cfg.BlockSize
	if inShared {
		b.SharedBroadcast(iters * edges)
	} else {
		b.L1Read(iters * edges)
	}

	for y := box.MinY; y < box.MaxY; y++ {
		for x := box.MinX; x < box.MaxX; x++ {
			inP := p.ContainsPixel(x, y)
			inQ := q.ContainsPixel(x, y)
			if inP && inQ {
				inter++
			}
			if wantUnion && (inP || inQ) {
				union++
			}
		}
	}
	return inter, union
}

// partitionGrid chooses the kx x ky sub-box grid for a block size, as close
// to square as divides the block size evenly.
func partitionGrid(blockDim int) (kx, ky int) {
	kx = 1
	for f := 1; f*f <= blockDim; f++ {
		if blockDim%f == 0 {
			kx = f
		}
	}
	return blockDim / kx, kx
}

// subSampBox returns the tid-th sub-box of a kx x ky partition of box,
// clipped to the box; sub-boxes beyond the box extent are empty.
func subSampBox(box geom.MBR, tid, kx, ky int) geom.MBR {
	ix := int32(tid % kx)
	iy := int32(tid / kx)
	w := (box.Width() + int32(kx) - 1) / int32(kx)
	h := (box.Height() + int32(ky) - 1) / int32(ky)
	sub := geom.MBR{
		MinX: box.MinX + ix*w,
		MinY: box.MinY + iy*h,
		MaxX: box.MinX + (ix+1)*w,
		MaxY: box.MinY + (iy+1)*h,
	}
	if sub.MaxX > box.MaxX {
		sub.MaxX = box.MaxX
	}
	if sub.MaxY > box.MaxY {
		sub.MaxY = box.MaxY
	}
	if sub.IsEmpty() {
		return geom.MBR{}
	}
	return sub
}
