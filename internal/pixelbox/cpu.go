package pixelbox

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
)

// CPUConfig tunes the CPU port of PixelBox (paper §4.2: "we have ported the
// PixelBox algorithms to CPUs, and parallelized its execution with multiple
// worker threads").
type CPUConfig struct {
	// Threshold is the pixelization threshold in pixels; boxes at or below
	// it are counted pixel by pixel. The CPU port refines boxes with a
	// quad split (there is no thread block to feed), so a smaller
	// threshold than the GPU's n²/2 works best. Defaults to 64.
	Threshold int
	// CacheEdges pre-extracts each pair's vertical edge lists so per-pixel
	// ray casts iterate flat slices; off by default, which keeps the port
	// a literal translation of the GPU kernel's per-pixel test (the form
	// the paper's PixelBox-CPU measurements reflect).
	CacheEdges bool
	// Workers is the number of parallel workers for RunCPUParallel;
	// defaults to GOMAXPROCS.
	Workers int
}

func (c CPUConfig) normalized() CPUConfig {
	if c.Threshold <= 0 {
		c.Threshold = 64
	}
	if c.Threshold < 2 {
		c.Threshold = 2
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// RunCPU computes the areas of intersection and union for all pairs on a
// single core: the PixelBox-CPU-S baseline of Fig. 7.
func RunCPU(pairs []Pair, cfg CPUConfig) []AreaResult {
	cfg = cfg.normalized()
	results := make([]AreaResult, len(pairs))
	for i, pr := range pairs {
		results[i] = cpuPair(pr, cfg)
	}
	return results
}

// RunCPUParallel computes areas with cfg.Workers parallel workers pulling
// pairs off a shared atomic cursor (dynamic scheduling in the spirit of the
// paper's work-stealing TBB parallelisation).
func RunCPUParallel(pairs []Pair, cfg CPUConfig) []AreaResult {
	cfg = cfg.normalized()
	results := make([]AreaResult, len(pairs))
	if len(pairs) == 0 {
		return results
	}
	workers := cfg.Workers
	if workers > len(pairs) {
		workers = len(pairs)
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := atomic.AddInt64(&next, 1) - 1
				if i >= int64(len(pairs)) {
					return
				}
				results[i] = cpuPair(pairs[i], cfg)
			}
		}()
	}
	wg.Wait()
	return results
}

// cpuPair computes one pair with the sampling-box + pixelization scheme and
// indirect union. Vertical edges are extracted once per pair so the hot
// per-pixel ray cast iterates a flat edge slice instead of re-deriving
// edges from the vertex loop.
func cpuPair(pr Pair, cfg CPUConfig) AreaResult {
	p, q := pr.P, pr.Q
	window := p.MBR().Intersection(q.MBR())
	res := AreaResult{}
	if window.IsEmpty() {
		res.Union = p.Area() + q.Area()
		return res
	}
	pc := pairCtx{p: p, q: q, pMBR: p.MBR(), qMBR: q.MBR()}
	if cfg.CacheEdges {
		pc.pEdges = p.VerticalEdges()
		pc.qEdges = q.VerticalEdges()
	}
	inter := pc.refine(window, int64(cfg.Threshold))
	res.Intersection = inter
	res.Union = p.Area() + q.Area() - inter
	return res
}

// pairCtx caches the per-pair geometry the refinement loops consult.
type pairCtx struct {
	p, q           *geom.Polygon
	pEdges, qEdges []geom.VEdge
	pMBR, qMBR     geom.MBR
}

// pixelIn tests a pixel against one polygon via its cached vertical edges.
func pixelIn(edges []geom.VEdge, m geom.MBR, x, y int32) bool {
	if !m.ContainsPixel(x, y) {
		return false
	}
	crossings := 0
	for _, e := range edges {
		if e.X <= x && e.Y1 <= y && y < e.Y2 {
			crossings++
		}
	}
	return crossings%2 == 1
}

// refine recursively classifies a box against both polygons (Lemma 1),
// quad-splitting hovering boxes until they fall below the pixelization
// threshold.
func (pc *pairCtx) refine(box geom.MBR, threshold int64) int64 {
	φ1 := pc.p.BoxPosition(box)
	if φ1 == geom.BoxOutside {
		return 0
	}
	φ2 := pc.q.BoxPosition(box)
	if φ2 == geom.BoxOutside {
		return 0
	}
	if φ1 == geom.BoxInside && φ2 == geom.BoxInside {
		return box.Pixels()
	}
	if box.Pixels() <= threshold || (box.Width() == 1 && box.Height() == 1) {
		return pc.pixelize(box)
	}
	midX := box.MinX + box.Width()/2
	midY := box.MinY + box.Height()/2
	var total int64
	quads := [4]geom.MBR{
		{MinX: box.MinX, MinY: box.MinY, MaxX: midX, MaxY: midY},
		{MinX: midX, MinY: box.MinY, MaxX: box.MaxX, MaxY: midY},
		{MinX: box.MinX, MinY: midY, MaxX: midX, MaxY: box.MaxY},
		{MinX: midX, MinY: midY, MaxX: box.MaxX, MaxY: box.MaxY},
	}
	for _, qd := range quads {
		if !qd.IsEmpty() {
			total += pc.refine(qd, threshold)
		}
	}
	return total
}

// pixelize counts intersection pixels in a box directly.
func (pc *pairCtx) pixelize(box geom.MBR) int64 {
	var inter int64
	cached := pc.pEdges != nil
	for y := box.MinY; y < box.MaxY; y++ {
		for x := box.MinX; x < box.MaxX; x++ {
			var in bool
			if cached {
				in = pixelIn(pc.pEdges, pc.pMBR, x, y) && pixelIn(pc.qEdges, pc.qMBR, x, y)
			} else {
				in = pc.p.ContainsPixel(x, y) && pc.q.ContainsPixel(x, y)
			}
			if in {
				inter++
			}
		}
	}
	return inter
}
