package pixelbox_test

// Differential/property suite (hardening for the hybrid aggregator): on
// randomly generated rectilinear polygon pairs, PixelBox-GPU, PixelBox-CPU
// (both edge-cache modes) and the exact sweep overlay must agree on every
// area, and the full pipeline must report bit-identical similarity whether
// it aggregates on one GPU, on CPUs only, or on the hybrid executor pool.

import (
	"math/rand"
	"testing"

	"repro/internal/clip"
	"repro/internal/gpu"
	"repro/internal/pathology"
	"repro/internal/pipeline"
	"repro/internal/pixelbox"
)

func TestDifferentialGPUvsCPUvsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(0xD1FF))
	n := 60
	if testing.Short() {
		n = 15
	}
	pairs := randomPairs(rng, n, 48)

	dev := gpu.NewDevice(gpu.GTX580())
	gpuRes, _, _ := pixelbox.RunGPU(dev, pairs, pixelbox.Config{})
	cpuRes := pixelbox.RunCPU(pairs, pixelbox.CPUConfig{})
	cpuCached := pixelbox.RunCPU(pairs, pixelbox.CPUConfig{CacheEdges: true})

	for i, pr := range pairs {
		inter := clip.IntersectionArea(pr.P, pr.Q)
		union := pr.P.Area() + pr.Q.Area() - inter
		want := pixelbox.AreaResult{Intersection: inter, Union: union}
		if gpuRes[i] != want {
			t.Errorf("pair %d: GPU %+v != exact %+v", i, gpuRes[i], want)
		}
		if cpuRes[i] != want {
			t.Errorf("pair %d: CPU %+v != exact %+v", i, cpuRes[i], want)
		}
		if cpuCached[i] != want {
			t.Errorf("pair %d: CPU(cached edges) %+v != exact %+v", i, cpuCached[i], want)
		}
	}
}

// TestDifferentialVariantsAgree runs every canonical kernel variant over the
// same random pairs: implementation optimisations must never change results.
func TestDifferentialVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(0xBEEF))
	pairs := randomPairs(rng, 20, 32)
	variants := []pixelbox.Variant{
		pixelbox.PixelBox, pixelbox.PixelBoxNoSep, pixelbox.PixelOnly,
		pixelbox.NoOpt, pixelbox.NBC, pixelbox.NBCUR,
	}
	var want []pixelbox.AreaResult
	for vi, v := range variants {
		dev := gpu.NewDevice(gpu.GTX580())
		got, _, _ := pixelbox.RunGPU(dev, pairs, pixelbox.Config{Variant: v})
		if vi == 0 {
			want = got
			for i, pr := range pairs {
				inter := clip.IntersectionArea(pr.P, pr.Q)
				if got[i].Intersection != inter {
					t.Fatalf("pair %d: %s intersection %d != exact %d", i, v.Name(), got[i].Intersection, inter)
				}
			}
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("pair %d: variant %s %+v != PixelBox %+v", i, v.Name(), got[i], want[i])
			}
		}
	}
}

// TestHybridPipelineBitIdenticalAcrossExecutors is the differential
// guarantee the ISSUE demands: on the same dataset seed, hybrid pipeline
// similarity is bit-identical to GPU-only and CPU-only runs.
func TestHybridPipelineBitIdenticalAcrossExecutors(t *testing.T) {
	spec := pathology.Representative()
	spec.Tiles = 5
	tasks := pipeline.EncodeDataset(pathology.Generate(spec))

	runWith := func(cfg pipeline.Config) pipeline.Result {
		t.Helper()
		res, err := pipeline.Run(tasks, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	gpuOnly := runWith(pipeline.Config{Devices: []*gpu.Device{gpu.NewDevice(gpu.GTX580())}})
	cpuOnly := runWith(pipeline.Config{})
	hybrid := runWith(pipeline.Config{
		Devices:        []*gpu.Device{gpu.NewDevice(gpu.GTX580()), gpu.NewDevice(gpu.GTX580())},
		CPUAggregators: 2,
		BatchPairs:     64,
	})
	hybridMig := runWith(pipeline.Config{
		Devices:        []*gpu.Device{gpu.NewDevice(gpu.GTX580())},
		CPUAggregators: 1,
		BatchPairs:     32,
		BufferCap:      2,
		Migration:      true,
	})

	for _, tc := range []struct {
		name string
		res  pipeline.Result
	}{{"cpu-only", cpuOnly}, {"hybrid", hybrid}, {"hybrid+migration", hybridMig}} {
		if tc.res.Similarity != gpuOnly.Similarity || tc.res.RatioSum != gpuOnly.RatioSum {
			t.Errorf("%s: similarity %.17g / ratio %.17g, gpu-only %.17g / %.17g (must be bit-identical)",
				tc.name, tc.res.Similarity, tc.res.RatioSum, gpuOnly.Similarity, gpuOnly.RatioSum)
		}
		if tc.res.Intersecting != gpuOnly.Intersecting || tc.res.Candidates != gpuOnly.Candidates {
			t.Errorf("%s: counts (%d,%d) != gpu-only (%d,%d)", tc.name,
				tc.res.Intersecting, tc.res.Candidates, gpuOnly.Intersecting, gpuOnly.Candidates)
		}
	}
}
