package pixelbox_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/clip"
	"repro/internal/geom"
	"repro/internal/geomtest"
	"repro/internal/gpu"
	"repro/internal/pixelbox"
)

// randomPairs builds n random overlapping polygon pairs.
func randomPairs(rng *rand.Rand, n int, size int32) []pixelbox.Pair {
	pairs := make([]pixelbox.Pair, 0, n)
	for len(pairs) < n {
		p := geomtest.RandomPolygon(rng, size)
		q := geomtest.RandomPolygon(rng, size)
		if p == nil || q == nil {
			continue
		}
		pairs = append(pairs, pixelbox.Pair{P: p, Q: q})
	}
	return pairs
}

// expected computes the oracle areas for pairs via the sweep overlay.
func expected(pairs []pixelbox.Pair) []pixelbox.AreaResult {
	out := make([]pixelbox.AreaResult, len(pairs))
	for i, pr := range pairs {
		inter := clip.IntersectionArea(pr.P, pr.Q)
		out[i] = pixelbox.AreaResult{
			Intersection: inter,
			Union:        pr.P.Area() + pr.Q.Area() - inter,
		}
	}
	return out
}

func checkResults(t *testing.T, label string, got, want []pixelbox.AreaResult, pairs []pixelbox.Pair) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s pair %d: got %+v, want %+v\np=%v\nq=%v", label, i, got[i], want[i],
				pairs[i].P.Vertices(), pairs[i].Q.Vertices())
		}
	}
}

// TestGPUVariantsExact verifies the §3.4 accuracy claim for every variant:
// PixelBox computes areas with no loss of precision relative to the exact
// overlay ("we validated the correctness of PixelBox by comparing the areas
// computed by PixelBox with those computed by PostGIS").
func TestGPUVariantsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	pairs := randomPairs(rng, 60, 28)
	want := expected(pairs)
	variants := []pixelbox.Variant{
		pixelbox.PixelBox,
		pixelbox.PixelBoxNoSep,
		pixelbox.PixelOnly,
		pixelbox.NoOpt,
		pixelbox.NBC,
		pixelbox.NBCUR,
	}
	for _, v := range variants {
		dev := gpu.NewDevice(gpu.GTX580())
		got, _, _ := pixelbox.RunGPU(dev, pairs, pixelbox.Config{Variant: v})
		checkResults(t, v.Name(), got, want, pairs)
	}
}

func TestGPUScaledPolygonsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := randomPairs(rng, 10, 20)
	for _, sf := range []int32{2, 3, 5} {
		pairs := make([]pixelbox.Pair, len(base))
		for i, pr := range base {
			pairs[i] = pixelbox.Pair{P: pr.P.Scale(sf), Q: pr.Q.Scale(sf)}
		}
		want := expected(pairs)
		dev := gpu.NewDevice(gpu.GTX580())
		got, _, _ := pixelbox.RunGPU(dev, pairs, pixelbox.Config{})
		checkResults(t, "scaled", got, want, pairs)
	}
}

func TestGPUThresholdExtremesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pairs := randomPairs(rng, 20, 24)
	want := expected(pairs)
	for _, T := range []int{2, 8, 64, 512, 4096, 1 << 20} {
		dev := gpu.NewDevice(gpu.GTX580())
		got, _, _ := pixelbox.RunGPU(dev, pairs, pixelbox.Config{Threshold: T})
		checkResults(t, "threshold", got, want, pairs)
	}
}

func TestGPUBlockSizesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pairs := randomPairs(rng, 15, 24)
	want := expected(pairs)
	for _, n := range []int{32, 48, 64, 128, 256} {
		dev := gpu.NewDevice(gpu.GTX580())
		got, _, _ := pixelbox.RunGPU(dev, pairs, pixelbox.Config{BlockSize: n})
		checkResults(t, "blocksize", got, want, pairs)
	}
}

func TestCPUExact(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pairs := randomPairs(rng, 60, 28)
	want := expected(pairs)
	got := pixelbox.RunCPU(pairs, pixelbox.CPUConfig{})
	checkResults(t, "cpu", got, want, pairs)
	gotPar := pixelbox.RunCPUParallel(pairs, pixelbox.CPUConfig{Workers: 4})
	checkResults(t, "cpu-parallel", gotPar, want, pairs)
}

func TestDisjointPairs(t *testing.T) {
	p := geom.Rect(0, 0, 4, 4)
	q := geom.Rect(100, 100, 104, 104)
	pairs := []pixelbox.Pair{{P: p, Q: q}}
	dev := gpu.NewDevice(gpu.GTX580())
	got, _, _ := pixelbox.RunGPU(dev, pairs, pixelbox.Config{})
	if got[0].Intersection != 0 || got[0].Union != 32 {
		t.Fatalf("disjoint pair result %+v", got[0])
	}
	r, ok := got[0].Ratio()
	if ok || r != 0 {
		t.Fatal("disjoint pair should not report a ratio")
	}
}

func TestIdenticalPair(t *testing.T) {
	p := geom.MustPolygon([]geom.Point{{X: 0, Y: 0}, {X: 3, Y: 0}, {X: 3, Y: 2}, {X: 2, Y: 2}, {X: 2, Y: 3}, {X: 0, Y: 3}})
	pairs := []pixelbox.Pair{{P: p, Q: p}}
	dev := gpu.NewDevice(gpu.GTX580())
	got, _, _ := pixelbox.RunGPU(dev, pairs, pixelbox.Config{})
	if got[0].Intersection != p.Area() || got[0].Union != p.Area() {
		t.Fatalf("self pair %+v, want area %d", got[0], p.Area())
	}
	r, ok := got[0].Ratio()
	if !ok || r != 1 {
		t.Fatalf("self ratio = %v", r)
	}
}

func TestEmptyInput(t *testing.T) {
	dev := gpu.NewDevice(gpu.GTX580())
	got, res, xfer := pixelbox.RunGPU(dev, nil, pixelbox.Config{})
	if len(got) != 0 || res.DeviceSeconds != 0 || xfer != 0 {
		t.Fatal("empty input should be free")
	}
	if out := pixelbox.RunCPU(nil, pixelbox.CPUConfig{}); len(out) != 0 {
		t.Fatal("cpu empty input")
	}
	if out := pixelbox.RunCPUParallel(nil, pixelbox.CPUConfig{}); len(out) != 0 {
		t.Fatal("cpu parallel empty input")
	}
}

// TestQuickGPUMatchesOracle drives the full kernel with testing/quick.
func TestQuickGPUMatchesOracle(t *testing.T) {
	dev := gpu.NewDevice(gpu.GTX580())
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := geomtest.RandomPolygon(rng, 20)
		q := geomtest.RandomPolygon(rng, 20)
		if p == nil || q == nil {
			return true
		}
		pairs := []pixelbox.Pair{{P: p, Q: q}}
		got, _, _ := pixelbox.RunGPU(dev, pairs, pixelbox.Config{})
		inter := clip.IntersectionArea(p, q)
		return got[0].Intersection == inter && got[0].Union == p.Area()+q.Area()-inter
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// --- Cost-model shape tests: the relationships the paper's figures rest on.

func modelSeconds(t *testing.T, pairs []pixelbox.Pair, cfg pixelbox.Config) float64 {
	t.Helper()
	dev := gpu.NewDevice(gpu.GTX580())
	_, res, _ := pixelbox.RunGPU(dev, pairs, cfg)
	return res.DeviceSeconds
}

// TestSamplingBoxesBeatPixelOnlyWhenScaled mirrors Fig. 8: at scale factor 5
// the sampling-box variants must be far faster than pixelization alone.
func TestSamplingBoxesBeatPixelOnlyWhenScaled(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	base := randomPairs(rng, 12, 24)
	scaled := make([]pixelbox.Pair, len(base))
	for i, pr := range base {
		scaled[i] = pixelbox.Pair{P: pr.P.Scale(5), Q: pr.Q.Scale(5)}
	}
	pixelOnly := modelSeconds(t, scaled, pixelbox.Config{Variant: pixelbox.PixelOnly})
	noSep := modelSeconds(t, scaled, pixelbox.Config{Variant: pixelbox.PixelBoxNoSep})
	full := modelSeconds(t, scaled, pixelbox.Config{Variant: pixelbox.PixelBox})
	if !(full < noSep && noSep < pixelOnly) {
		t.Fatalf("Fig.8 ordering violated at SF5: PixelBox=%v NoSep=%v PixelOnly=%v", full, noSep, pixelOnly)
	}
}

// TestOptimizationLadder mirrors Fig. 9: each implementation optimisation
// must not slow the kernel down, and the full ladder must beat NoOpt.
func TestOptimizationLadder(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	base := randomPairs(rng, 12, 24)
	pairs := make([]pixelbox.Pair, len(base))
	for i, pr := range base {
		pairs[i] = pixelbox.Pair{P: pr.P.Scale(3), Q: pr.Q.Scale(3)}
	}
	noOpt := modelSeconds(t, pairs, pixelbox.Config{Variant: pixelbox.NoOpt})
	nbc := modelSeconds(t, pairs, pixelbox.Config{Variant: pixelbox.NBC})
	nbcur := modelSeconds(t, pairs, pixelbox.Config{Variant: pixelbox.NBCUR})
	full := modelSeconds(t, pairs, pixelbox.Config{Variant: pixelbox.NBCURSM})
	if nbc > noOpt || nbcur > nbc || full > nbcur {
		t.Fatalf("Fig.9 ladder violated: NoOpt=%v NBC=%v NBC-UR=%v NBC-UR-SM=%v", noOpt, nbc, nbcur, full)
	}
	if full >= noOpt {
		t.Fatalf("full optimisation not faster than NoOpt: %v vs %v", full, noOpt)
	}
}

// TestThresholdSweetSpot mirrors Fig. 10: extreme thresholds must be slower
// than the paper's recommended T = n²/2. The pair is a large polygon with
// interior boundary structure (two offset staircase shapes), so that tiny T
// forces deep recursion and huge T forces pixelizing a large window.
func TestThresholdSweetSpot(t *testing.T) {
	staircase := func(off int32) *geom.Polygon {
		// A 4-step staircase within a 400x400 extent.
		base := []geom.Point{
			{X: 0, Y: 0}, {X: 400, Y: 0}, {X: 400, Y: 100}, {X: 300, Y: 100},
			{X: 300, Y: 200}, {X: 200, Y: 200}, {X: 200, Y: 300}, {X: 100, Y: 300},
			{X: 100, Y: 400}, {X: 0, Y: 400},
		}
		vs := make([]geom.Point, len(base))
		for i, v := range base {
			vs[i] = geom.Point{X: v.X + off, Y: v.Y + off}
		}
		return geom.MustPolygon(vs)
	}
	pairs := []pixelbox.Pair{{P: staircase(0), Q: staircase(30)}}
	n := 64
	sweet := modelSeconds(t, pairs, pixelbox.Config{BlockSize: n, Threshold: n * n / 2})
	tiny := modelSeconds(t, pairs, pixelbox.Config{BlockSize: n, Threshold: 4})
	huge := modelSeconds(t, pairs, pixelbox.Config{BlockSize: n, Threshold: 1 << 22})
	if sweet >= tiny {
		t.Fatalf("T=n²/2 (%v) not faster than tiny T (%v)", sweet, tiny)
	}
	if sweet >= huge {
		t.Fatalf("T=n²/2 (%v) not faster than huge T (%v)", sweet, huge)
	}
}

func TestVariantNames(t *testing.T) {
	if pixelbox.PixelBox.Name() != "PixelBox" {
		t.Fatal("PixelBox name")
	}
	if pixelbox.PixelOnly.Name() != "PixelOnly" {
		t.Fatal("PixelOnly name")
	}
	if pixelbox.PixelBoxNoSep.Name() != "PixelBox-NoSep" {
		t.Fatal("NoSep name")
	}
	if pixelbox.NoOpt.Name() != "PixelBox-NoOpt" {
		t.Fatal("NoOpt name")
	}
}
