// Package jaccard implements the cross-comparison similarity metrics of
// paper §2.1: the pairwise Jaccard variant J' (Eq. 1) used throughout the
// evaluation, the classical set-level Jaccard similarity J, and the
// missing-polygon accounting that J' deliberately excludes ("missing
// polygons can be easily identified by comparing the number of polygons that
// appear in the intersection with the number of polygons in each polygon
// set").
package jaccard

import (
	"math"

	"repro/internal/pixelbox"
)

// Accumulator folds per-pair area results into the image-level similarity
// score. The zero value is ready to use.
type Accumulator struct {
	ratioSum     float64
	intersecting int
	candidates   int
}

// AddPair folds one MBR-intersecting pair's areas; pairs with zero area of
// intersection count as candidates but do not contribute to J'.
func (a *Accumulator) AddPair(r pixelbox.AreaResult) {
	a.candidates++
	if ratio, ok := r.Ratio(); ok {
		a.ratioSum += ratio
		a.intersecting++
	}
}

// AddResults folds a batch of results.
func (a *Accumulator) AddResults(rs []pixelbox.AreaResult) {
	for _, r := range rs {
		a.AddPair(r)
	}
}

// Merge folds another accumulator (e.g. from a parallel worker).
func (a *Accumulator) Merge(b Accumulator) {
	a.ratioSum += b.ratioSum
	a.intersecting += b.intersecting
	a.candidates += b.candidates
}

// Similarity returns J' — the mean Jaccard ratio over truly-intersecting
// pairs — and false when no pair intersects.
func (a *Accumulator) Similarity() (float64, bool) {
	if a.intersecting == 0 {
		return 0, false
	}
	return a.ratioSum / float64(a.intersecting), true
}

// Intersecting returns the number of truly-intersecting pairs.
func (a *Accumulator) Intersecting() int { return a.intersecting }

// Candidates returns the number of MBR-intersecting pairs examined.
func (a *Accumulator) Candidates() int { return a.candidates }

// MissingStats quantifies the polygons J' ignores: objects present in one
// result set with no truly-intersecting counterpart in the other.
type MissingStats struct {
	// SetA and SetB are the result-set sizes.
	SetA, SetB int
	// MatchedA and MatchedB count polygons of each set participating in at
	// least one truly-intersecting pair.
	MatchedA, MatchedB int
}

// MissingA returns the number of set-A polygons with no counterpart.
func (m MissingStats) MissingA() int { return m.SetA - m.MatchedA }

// MissingB returns the number of set-B polygons with no counterpart.
func (m MissingStats) MissingB() int { return m.SetB - m.MatchedB }

// Recall returns the matched fraction of each set.
func (m MissingStats) Recall() (a, b float64) {
	if m.SetA > 0 {
		a = float64(m.MatchedA) / float64(m.SetA)
	}
	if m.SetB > 0 {
		b = float64(m.MatchedB) / float64(m.SetB)
	}
	return a, b
}

// PairRef identifies a candidate pair by polygon indexes within its two
// result sets.
type PairRef struct {
	A, B int32
}

// CollectMissing computes MissingStats from the candidate pair list and the
// per-pair results (parallel slices), given the set sizes.
func CollectMissing(setA, setB int, refs []PairRef, results []pixelbox.AreaResult) MissingStats {
	matchedA := make(map[int32]struct{})
	matchedB := make(map[int32]struct{})
	for i, ref := range refs {
		if i >= len(results) {
			break
		}
		if results[i].Intersection > 0 {
			matchedA[ref.A] = struct{}{}
			matchedB[ref.B] = struct{}{}
		}
	}
	return MissingStats{SetA: setA, SetB: setB, MatchedA: len(matchedA), MatchedB: len(matchedB)}
}

// SetSimilarity returns the classical Jaccard similarity J = ‖P∩Q‖/‖P∪Q‖
// of two result sets, computed from per-pair intersections and the summed
// polygon areas. It assumes polygons within one result set are disjoint —
// true for segmentation output, where an image pixel belongs to at most one
// object.
func SetSimilarity(areaSumA, areaSumB int64, results []pixelbox.AreaResult) float64 {
	var inter int64
	for _, r := range results {
		inter += r.Intersection
	}
	union := areaSumA + areaSumB - inter
	if union <= 0 {
		return math.NaN()
	}
	return float64(inter) / float64(union)
}
