package jaccard

import (
	"math"
	"testing"

	"repro/internal/pixelbox"
)

func TestAccumulator(t *testing.T) {
	var a Accumulator
	a.AddPair(pixelbox.AreaResult{Intersection: 50, Union: 100}) // 0.5
	a.AddPair(pixelbox.AreaResult{Intersection: 0, Union: 80})   // candidate only
	a.AddPair(pixelbox.AreaResult{Intersection: 90, Union: 90})  // 1.0
	sim, ok := a.Similarity()
	if !ok {
		t.Fatal("no similarity")
	}
	if math.Abs(sim-0.75) > 1e-12 {
		t.Fatalf("J' = %v, want 0.75", sim)
	}
	if a.Candidates() != 3 || a.Intersecting() != 2 {
		t.Fatalf("counts = %d, %d", a.Candidates(), a.Intersecting())
	}
}

func TestAccumulatorEmpty(t *testing.T) {
	var a Accumulator
	if _, ok := a.Similarity(); ok {
		t.Fatal("empty accumulator reported similarity")
	}
}

func TestAccumulatorMerge(t *testing.T) {
	var a, b Accumulator
	a.AddPair(pixelbox.AreaResult{Intersection: 10, Union: 20})
	b.AddPair(pixelbox.AreaResult{Intersection: 30, Union: 30})
	b.AddPair(pixelbox.AreaResult{Intersection: 0, Union: 5})
	a.Merge(b)
	sim, _ := a.Similarity()
	if math.Abs(sim-0.75) > 1e-12 {
		t.Fatalf("merged J' = %v", sim)
	}
	if a.Candidates() != 3 {
		t.Fatalf("candidates = %d", a.Candidates())
	}
}

func TestAddResults(t *testing.T) {
	var a Accumulator
	a.AddResults([]pixelbox.AreaResult{
		{Intersection: 1, Union: 2},
		{Intersection: 1, Union: 4},
	})
	sim, _ := a.Similarity()
	if math.Abs(sim-0.375) > 1e-12 {
		t.Fatalf("J' = %v", sim)
	}
}

func TestCollectMissing(t *testing.T) {
	refs := []PairRef{{A: 0, B: 0}, {A: 0, B: 1}, {A: 2, B: 3}}
	results := []pixelbox.AreaResult{
		{Intersection: 10, Union: 20},
		{Intersection: 0, Union: 15}, // MBRs overlapped but no true overlap
		{Intersection: 5, Union: 9},
	}
	m := CollectMissing(4, 5, refs, results)
	if m.MatchedA != 2 || m.MatchedB != 2 {
		t.Fatalf("matched = %d, %d", m.MatchedA, m.MatchedB)
	}
	if m.MissingA() != 2 || m.MissingB() != 3 {
		t.Fatalf("missing = %d, %d", m.MissingA(), m.MissingB())
	}
	ra, rb := m.Recall()
	if math.Abs(ra-0.5) > 1e-12 || math.Abs(rb-0.4) > 1e-12 {
		t.Fatalf("recall = %v, %v", ra, rb)
	}
}

func TestSetSimilarity(t *testing.T) {
	results := []pixelbox.AreaResult{{Intersection: 30}, {Intersection: 20}}
	// |P| = 100, |Q| = 100, inter = 50 => union = 150, J = 1/3.
	j := SetSimilarity(100, 100, results)
	if math.Abs(j-1.0/3.0) > 1e-12 {
		t.Fatalf("J = %v", j)
	}
	if !math.IsNaN(SetSimilarity(0, 0, nil)) {
		t.Fatal("degenerate set similarity should be NaN")
	}
}
