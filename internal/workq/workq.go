// Package workq provides a work-stealing task pool, the stand-in for the
// Intel Threading Building Blocks runtime the paper uses to parallelise text
// parsing and PixelBox-CPU (§5: "Intel Threading Building Blocks, a popular
// work-stealing software library for task-based parallelization on CPUs").
//
// Each worker owns a deque: it pushes and pops its own tasks LIFO (hot cache
// reuse), and steals FIFO from victims when its deque drains (oldest tasks
// first, the largest remaining subtrees under recursive decomposition).
package workq

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// Task is a unit of work.
type Task func()

// Pool is a work-stealing executor. Create with NewPool, submit with Submit
// or the per-worker Spawn, then Wait for quiescence. A Pool may be reused
// for multiple Wait cycles and must be closed with Shutdown.
type Pool struct {
	workers []*worker
	wg      sync.WaitGroup // worker goroutine lifetimes

	pending int64 // outstanding tasks
	idleMu  sync.Mutex
	idleCv  *sync.Cond
	done    chan struct{}

	quiesceMu sync.Mutex
	quiesceCv *sync.Cond
}

type worker struct {
	pool *Pool
	id   int
	mu   sync.Mutex
	dq   []Task
	rng  *rand.Rand
}

// NewPool creates a pool with n workers (GOMAXPROCS when n <= 0) and starts
// them.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{done: make(chan struct{})}
	p.idleCv = sync.NewCond(&p.idleMu)
	p.quiesceCv = sync.NewCond(&p.quiesceMu)
	p.workers = make([]*worker, n)
	for i := range p.workers {
		p.workers[i] = &worker{pool: p, id: i, rng: rand.New(rand.NewSource(int64(i) + 1))}
	}
	for _, w := range p.workers {
		p.wg.Add(1)
		go w.run()
	}
	return p
}

// Size returns the number of workers.
func (p *Pool) Size() int { return len(p.workers) }

// Submit enqueues a task onto the least-loaded-looking worker deque and
// wakes an idle worker.
func (p *Pool) Submit(t Task) {
	atomic.AddInt64(&p.pending, 1)
	w := p.workers[rand.Intn(len(p.workers))]
	w.mu.Lock()
	w.dq = append(w.dq, t)
	w.mu.Unlock()
	p.idleMu.Lock()
	p.idleCv.Signal()
	p.idleMu.Unlock()
}

// Wait blocks until every submitted task (including tasks spawned by tasks)
// has completed.
func (p *Pool) Wait() {
	p.quiesceMu.Lock()
	for atomic.LoadInt64(&p.pending) != 0 {
		p.quiesceCv.Wait()
	}
	p.quiesceMu.Unlock()
}

// Shutdown stops all workers after the current tasks finish. Pending tasks
// that have not started may be dropped; call Wait first for a clean drain.
func (p *Pool) Shutdown() {
	close(p.done)
	p.idleMu.Lock()
	p.idleCv.Broadcast()
	p.idleMu.Unlock()
	p.wg.Wait()
}

// run is the worker loop: pop own deque LIFO, else steal FIFO, else sleep.
func (w *worker) run() {
	defer w.pool.wg.Done()
	for {
		t := w.pop()
		if t == nil {
			t = w.steal()
		}
		if t != nil {
			t()
			if atomic.AddInt64(&w.pool.pending, -1) == 0 {
				w.pool.quiesceMu.Lock()
				w.pool.quiesceCv.Broadcast()
				w.pool.quiesceMu.Unlock()
			}
			continue
		}
		select {
		case <-w.pool.done:
			return
		default:
		}
		w.pool.idleMu.Lock()
		// Re-check for work before sleeping to avoid lost wakeups.
		if w.anyWork() {
			w.pool.idleMu.Unlock()
			continue
		}
		select {
		case <-w.pool.done:
			w.pool.idleMu.Unlock()
			return
		default:
		}
		w.pool.idleCv.Wait()
		w.pool.idleMu.Unlock()
	}
}

func (w *worker) anyWork() bool {
	for _, v := range w.pool.workers {
		v.mu.Lock()
		n := len(v.dq)
		v.mu.Unlock()
		if n > 0 {
			return true
		}
	}
	return false
}

// pop takes the newest task from the worker's own deque.
func (w *worker) pop() Task {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := len(w.dq)
	if n == 0 {
		return nil
	}
	t := w.dq[n-1]
	w.dq = w.dq[:n-1]
	return t
}

// steal takes the oldest task from a random victim's deque.
func (w *worker) steal() Task {
	n := len(w.pool.workers)
	start := w.rng.Intn(n)
	for i := 0; i < n; i++ {
		v := w.pool.workers[(start+i)%n]
		if v == w {
			continue
		}
		v.mu.Lock()
		if len(v.dq) > 0 {
			t := v.dq[0]
			v.dq = v.dq[1:]
			v.mu.Unlock()
			return t
		}
		v.mu.Unlock()
	}
	return nil
}

// Parallel runs fn(i) for i in [0, n) across the pool and waits.
func (p *Pool) Parallel(n int, fn func(i int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		p.Submit(func() {
			defer wg.Done()
			fn(i)
		})
	}
	wg.Wait()
}
