package workq

import (
	"sync/atomic"
	"testing"
)

func TestSubmitAndWait(t *testing.T) {
	p := NewPool(4)
	defer p.Shutdown()
	var count int64
	for i := 0; i < 200; i++ {
		p.Submit(func() { atomic.AddInt64(&count, 1) })
	}
	p.Wait()
	if count != 200 {
		t.Fatalf("ran %d tasks, want 200", count)
	}
}

func TestTasksSpawningTasks(t *testing.T) {
	p := NewPool(3)
	defer p.Shutdown()
	var count int64
	var spawn func(depth int)
	spawn = func(depth int) {
		atomic.AddInt64(&count, 1)
		if depth > 0 {
			for i := 0; i < 2; i++ {
				d := depth - 1
				p.Submit(func() { spawn(d) })
			}
		}
	}
	p.Submit(func() { spawn(5) })
	p.Wait()
	// A full binary recursion of depth 5: 2^6 - 1 = 63 tasks.
	if count != 63 {
		t.Fatalf("ran %d tasks, want 63", count)
	}
}

func TestParallel(t *testing.T) {
	p := NewPool(4)
	defer p.Shutdown()
	hits := make([]int64, 100)
	p.Parallel(100, func(i int) { atomic.AddInt64(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
}

func TestReuseAfterWait(t *testing.T) {
	p := NewPool(2)
	defer p.Shutdown()
	var count int64
	for round := 0; round < 3; round++ {
		for i := 0; i < 50; i++ {
			p.Submit(func() { atomic.AddInt64(&count, 1) })
		}
		p.Wait()
	}
	if count != 150 {
		t.Fatalf("count = %d", count)
	}
}

func TestDefaultSize(t *testing.T) {
	p := NewPool(0)
	defer p.Shutdown()
	if p.Size() < 1 {
		t.Fatal("pool has no workers")
	}
}

func TestWaitWithNoTasks(t *testing.T) {
	p := NewPool(2)
	defer p.Shutdown()
	p.Wait() // must not block
}
