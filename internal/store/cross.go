package store

// Cross-dataset pair reading: the storage primitive behind the compare
// subsystem's dataset_a-vs-dataset_b jobs. A cross comparison pairs tiles by
// (image, tile) key across two stored datasets and compares the FIRST
// dataset's set-A polygons against the SECOND dataset's set-B polygons —
// with dataset_a == dataset_b this degenerates exactly to the dataset's own
// embedded A-vs-B comparison, which is what makes cross results directly
// comparable (and cacheable) against single-dataset jobs.

import "repro/internal/geom"

// CrossReader reads matched tile pairs across two stored datasets. Each
// ReadPair digest-verifies both tiles before decoding, exactly like the
// single-dataset read path, but decodes only the set actually compared from
// each side (set A from the first dataset, set B from the second).
type CrossReader struct {
	a, b *Dataset
}

// NewCrossReader returns a pair reader over the two datasets. The datasets
// may be the same handle (a self-comparison).
func NewCrossReader(a, b *Dataset) *CrossReader { return &CrossReader{a: a, b: b} }

// A returns the first dataset (the set-A side).
func (r *CrossReader) A() *Dataset { return r.a }

// B returns the second dataset (the set-B side).
func (r *CrossReader) B() *Dataset { return r.b }

// ReadPair reads the cross pair (set A of the first dataset's tile ia, set B
// of the second dataset's tile ib). Both tiles' content digests are
// re-verified over their full byte ranges; only the compared set is decoded.
func (r *CrossReader) ReadPair(ia, ib int) (setA, setB []*geom.Polygon, err error) {
	tiA, segA, _, err := r.a.readVerified(ia)
	if err != nil {
		return nil, nil, err
	}
	if setA, err = r.a.decodeSet(tiA, "A", segA, tiA.CountA); err != nil {
		return nil, nil, err
	}
	tiB, _, segB, err := r.b.readVerified(ib)
	if err != nil {
		return nil, nil, err
	}
	if setB, err = r.b.decodeSet(tiB, "B", segB, tiB.CountB); err != nil {
		return nil, nil, err
	}
	return setA, setB, nil
}
