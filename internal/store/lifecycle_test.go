package store

// Delete-lifecycle tests: pin refcounts, forced deletes, the clear
// "deleted during job" read error, and the delete hook the server uses to
// cascade cached results.

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// TestDeletePinnedConflicts: Delete refuses a pinned dataset until the last
// Unpin; ForceDelete removes it regardless.
func TestDeletePinnedConflicts(t *testing.T) {
	s := openStore(t, t.TempDir())
	man, err := s.IngestDataset(testDataset(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Pin(man.ID); err != nil {
		t.Fatalf("Pin: %v", err)
	}
	if err := s.Pin(man.ID); err != nil {
		t.Fatalf("second Pin: %v", err)
	}
	if !s.Pinned(man.ID) || s.PinnedCount() != 1 {
		t.Fatalf("Pinned=%v PinnedCount=%d, want pinned once-counted dataset", s.Pinned(man.ID), s.PinnedCount())
	}
	if err := s.Delete(man.ID); !errors.Is(err, ErrPinned) {
		t.Fatalf("Delete(pinned) = %v, want ErrPinned", err)
	}
	s.Unpin(man.ID)
	if err := s.Delete(man.ID); !errors.Is(err, ErrPinned) {
		t.Fatalf("Delete with one pin left = %v, want ErrPinned", err)
	}
	s.Unpin(man.ID)
	if err := s.Delete(man.ID); err != nil {
		t.Fatalf("Delete after last Unpin: %v", err)
	}

	// ForceDelete overrides pins.
	man, err = s.IngestDataset(testDataset(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Pin(man.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.ForceDelete(man.ID); err != nil {
		t.Fatalf("ForceDelete(pinned): %v", err)
	}
	if _, ok := s.Get(man.ID); ok {
		t.Error("force-deleted dataset still indexed")
	}
	// Pinning a deleted dataset fails: Pin doubles as the liveness check.
	if err := s.Pin(man.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("Pin(deleted) = %v, want ErrNotFound", err)
	}
}

// TestReadAfterForceDeleteReportsLifecycle: a reader opened before a forced
// delete fails with the clear "deleted during job" error, not a raw I/O
// error — what a job's shard reports when its dataset is yanked mid-run.
func TestReadAfterForceDeleteReportsLifecycle(t *testing.T) {
	s := openStore(t, t.TempDir())
	man, err := s.IngestDataset(testDataset(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := s.OpenDataset(man.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ForceDelete(man.ID); err != nil {
		t.Fatal(err)
	}
	_, _, err = ds.ReadTile(0)
	if !errors.Is(err, ErrDeleted) {
		t.Fatalf("ReadTile after force delete = %v, want ErrDeleted", err)
	}
	if !strings.Contains(err.Error(), "deleted during job") {
		t.Fatalf("error %q does not state the lifecycle fault", err)
	}

	// Re-ingesting the same content clears the tombstone: a fresh reader
	// works, and a stale reader no longer reports a bogus delete.
	if _, err := s.IngestDataset(testDataset(t, 1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ds.ReadTile(0); err != nil {
		t.Fatalf("ReadTile after re-ingest: %v", err)
	}
}

// TestDeleteHookFiresOnEveryPath: the cascade hook runs for plain and
// forced deletes with the removed ID.
func TestDeleteHookFiresOnEveryPath(t *testing.T) {
	s := openStore(t, t.TempDir())
	var got []string
	s.SetDeleteHook(func(id string) { got = append(got, id) })

	a, err := s.IngestDataset(testDataset(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(a.ID); err != nil {
		t.Fatal(err)
	}
	b, err := s.IngestDataset(testDataset(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ForceDelete(b.ID); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != a.ID || got[1] != b.ID {
		t.Fatalf("hook saw %v, want [%s %s]", got, a.ID, b.ID)
	}
}

// TestTouchThrottlesManifestWrites: touches within the persist interval
// advance only the in-memory clock (the sweep's source of truth); a touch
// moving the clock past the interval rewrites the manifest.
func TestTouchThrottlesManifestWrites(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	man, err := s.IngestDataset(testDataset(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	near := man.Created.Add(time.Second)
	s.TouchAt(man.ID, near)
	cur, _ := s.Get(man.ID)
	if !cur.LastUse().Equal(near) {
		t.Fatalf("in-memory clock = %s, want %s", cur.LastUse(), near)
	}
	// The sub-interval touch did not hit disk: a reopen sees no last-use.
	if rec, _ := openStore(t, dir).Get(man.ID); !rec.LastUsed.IsZero() {
		t.Fatalf("sub-interval touch was persisted: %s", rec.LastUsed)
	}

	far := man.Created.Add(touchPersistInterval + time.Minute).Truncate(time.Second)
	s.TouchAt(man.ID, far)
	if rec, _ := openStore(t, dir).Get(man.ID); !rec.LastUse().Equal(far) {
		t.Fatalf("past-interval touch not persisted: %s, want %s", rec.LastUse(), far)
	}
}

// TestTouchKeepsManifestValid: a touched manifest still recovers (the
// rewrite must keep every invariant loadManifest enforces) and carries the
// advanced clock; Manifest copies stay immutable for existing holders.
func TestTouchKeepsManifestValid(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	man, err := s.IngestDataset(testDataset(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	before := man.LastUse()
	stamp := time.Now().UTC().Add(time.Hour).Truncate(time.Second)
	s.TouchAt(man.ID, stamp)
	if !man.LastUse().Equal(before) {
		t.Error("Touch mutated a previously returned manifest")
	}
	cur, _ := s.Get(man.ID)
	if !cur.LastUse().Equal(stamp) {
		t.Fatalf("in-memory last-use = %s, want %s", cur.LastUse(), stamp)
	}

	s2 := openStore(t, dir)
	if s2.Len() != 1 {
		t.Fatalf("touched dataset failed recovery: %d datasets, skipped %v", s2.Len(), s2.Skipped())
	}
	rec, _ := s2.Get(man.ID)
	if !rec.LastUse().Equal(stamp) {
		t.Fatalf("recovered last-use = %s, want %s", rec.LastUse(), stamp)
	}
}
