// Package store is the persistent, content-addressed dataset store behind
// the sccgd daemon: the substrate that turns the service from a
// benchmark-on-request toy into a system serving stored collections of
// segmented pathology boundaries (the paper's actual workload).
//
// A dataset is persisted as one append-only segment file of WKB-encoded
// polygons (reusing internal/wkb, the SDBMS baseline's serialized geometry
// format) plus a JSON manifest recording, per image tile, the byte
// offset/size and polygon count of each of the tile's two result sets. The
// dataset ID is the hex SHA-256 of the canonical tile content — per-tile
// digests folded in (image, tile) order — so the ID is stable across ingest
// order and text-formatting differences, identical polygon sets deduplicate
// to one copy, and a result cache keyed on the ID is exact by construction.
//
// Readers are lazy and per-tile: a scheduler shard holding a handle to a
// stored dataset reads only its own tiles' byte ranges, never the whole
// segment file. Ingestion is streaming and log-structured: tiles are
// appended to a temp segment as they arrive (LogBase-style raw appends),
// hashed incrementally, and the dataset directory is committed with one
// rename, so a crashed ingest leaves only a temp directory that the next
// Open sweeps away.
package store

import (
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"

	"crypto/sha256"

	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/parser"
	"repro/internal/pathology"
	"repro/internal/pipeline"
	"repro/internal/wkb"
)

const (
	manifestFile = "manifest.json"
	segmentFile  = "segments.wkb"
	tmpPrefix    = "tmp-"
	// recLenBytes frames each polygon in a segment: a little-endian uint32
	// byte length precedes the WKB payload.
	recLenBytes = 4
)

// Errors returned by the store's public API.
var (
	ErrNotFound = errors.New("store: no such dataset")
	ErrEmpty    = errors.New("store: dataset has no tiles")
	// ErrDuplicateTile marks an ingest containing the same (image, tile)
	// twice — a client fault, unlike the I/O errors AddTile can also return.
	ErrDuplicateTile = errors.New("store: duplicate tile in ingest")
	// ErrPinned rejects deleting a dataset referenced by a queued or running
	// job. ForceDelete overrides; the retention sweeper never does.
	ErrPinned = errors.New("store: dataset is pinned by a queued or running job")
	// ErrDeleted marks tile reads against a dataset force-deleted while a job
	// still held its handle, so the job fails with a lifecycle error instead
	// of a raw segment I/O error.
	ErrDeleted = errors.New("store: dataset deleted during job")
)

var idPattern = regexp.MustCompile(`^[0-9a-f]{64}$`)

// ValidateID reports whether id is syntactically a dataset ID (the lowercase
// hex SHA-256 of the dataset's canonical tile content).
func ValidateID(id string) bool { return idPattern.MatchString(id) }

// SetStats summarises one tile's polygon set for query planning without
// decoding the segment: the set's covering MBR plus the smallest and largest
// polygon area (shoelace pixels). Like Manifest.Name, stats are metadata —
// they are not folded into the tile digest or the dataset ID — so datasets
// written before stats existed load fine and simply plan without them.
type SetStats struct {
	MBR     geom.MBR `json:"mbr"`
	MinArea int64    `json:"min_area"`
	MaxArea int64    `json:"max_area"`
}

// Valid reports whether the stats are internally consistent. Stats are not
// digest-protected, so planners must treat invalid ones as absent rather
// than derive bounds from them.
func (st *SetStats) Valid() bool {
	return st != nil && st.MinArea >= 0 && st.MinArea <= st.MaxArea &&
		(st.MaxArea == 0 || !st.MBR.IsEmpty())
}

// computeSetStats folds one polygon set's planning stats; nil for an empty
// set (no polygons means no pairs, which callers treat as bound zero).
func computeSetStats(polys []*geom.Polygon) *SetStats {
	if len(polys) == 0 {
		return nil
	}
	st := &SetStats{MBR: geom.EmptyMBR(), MinArea: math.MaxInt64}
	for _, p := range polys {
		st.MBR = st.MBR.Union(p.MBR())
		a := p.Area()
		if a < st.MinArea {
			st.MinArea = a
		}
		if a > st.MaxArea {
			st.MaxArea = a
		}
	}
	return st
}

// TileInfo locates one tile's two polygon sets inside the segment file.
type TileInfo struct {
	Image  string `json:"image"`
	Tile   int    `json:"tile"`
	OffA   int64  `json:"off_a"`
	LenA   int64  `json:"len_a"`
	CountA int    `json:"count_a"`
	OffB   int64  `json:"off_b"`
	LenB   int64  `json:"len_b"`
	CountB int    `json:"count_b"`
	// StatsA/StatsB summarise each set's geometry for the matrix planner's
	// cheap per-cell bounds; absent on datasets ingested before they
	// existed (and then the planner falls back to the trivial bound).
	StatsA *SetStats `json:"stats_a,omitempty"`
	StatsB *SetStats `json:"stats_b,omitempty"`
	// Digest is the hex SHA-256 of the tile's canonical content (identity
	// plus both sets' exact bytes, every variable-length field
	// length-prefixed so the encoding is injective). The dataset ID folds
	// these, and every ReadTile re-verifies against it, so size-preserving
	// segment corruption cannot serve wrong polygons under a content
	// address.
	Digest string `json:"digest"`
}

// Bytes is the tile's total encoded segment size, the sharding weight.
func (ti TileInfo) Bytes() int64 { return ti.LenA + ti.LenB }

// Manifest describes one stored dataset. Treat it as immutable once
// returned by the store.
type Manifest struct {
	// ID is the content address: hex SHA-256 over the per-tile digests in
	// canonical (image, tile) order.
	ID string `json:"id"`
	// Name is caller metadata (not part of the content hash).
	Name    string    `json:"name,omitempty"`
	Created time.Time `json:"created"`
	// LastUsed is the retention clock: the last time a job, cross comparison,
	// matrix cell, or tile read touched the dataset. Zero on datasets written
	// before last-use tracking existed; LastUse falls back to Created. Like
	// Name it is metadata, not part of the content hash.
	LastUsed     time.Time  `json:"last_used,omitempty"`
	SegmentBytes int64      `json:"segment_bytes"`
	Polygons     int64      `json:"polygons"`
	Tiles        []TileInfo `json:"tiles"`
}

// LastUse returns the dataset's retention timestamp: the recorded last use,
// or Created for datasets never touched since ingest.
func (m *Manifest) LastUse() time.Time {
	if m.LastUsed.IsZero() {
		return m.Created
	}
	return m.LastUsed
}

// DisplayName returns the dataset's name, falling back to a short
// content-ID tag for unnamed datasets. Job listings use it as the label.
func (m *Manifest) DisplayName() string {
	if m.Name != "" {
		return m.Name
	}
	return "dataset-" + m.ID[:12]
}

// Store is a directory of content-addressed datasets. All methods are safe
// for concurrent use.
type Store struct {
	dir string

	mu       sync.RWMutex
	datasets map[string]*Manifest
	skipped  []error
	// pins refcounts datasets referenced by queued or running jobs; a pinned
	// dataset survives Delete and retention sweeps until the last Unpin.
	pins map[string]int
	// persistedUse is each dataset's last-use value as written to disk;
	// TouchAt rewrites the manifest only when the clock has moved at least
	// touchPersistInterval past it, so hot datasets don't pay a manifest
	// serialize+rename per request.
	persistedUse map[string]time.Time
	// onDelete, when set, is called after every successful delete (outside
	// the lock) — the server hooks it to cascade cached results.
	onDelete func(id string)
	// tileReadHist, when set via SetMetrics, observes every verified tile
	// read's wall latency (open + range reads + digest + WKB decode).
	tileReadHist *metrics.Histogram
	// onRead, when set, is called after every digest-verified tile read
	// (ReadTile and both sides of CrossReader.ReadPair) with the dataset ID,
	// tile index, and bytes read — the feed for per-tile heat accounting.
	onRead func(id string, tile int, bytes int64)
}

// Open opens (creating if needed) the store rooted at dir and recovers its
// datasets by re-scanning manifests. Leftover temp directories from crashed
// ingests are removed; a dataset whose manifest or segment fails validation
// is skipped — not fatal to the daemon — and reported via Skipped.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: create %s: %w", dir, err)
	}
	s := &Store{
		dir:          dir,
		datasets:     make(map[string]*Manifest),
		pins:         make(map[string]int),
		persistedUse: make(map[string]time.Time),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: scan %s: %w", dir, err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		if len(name) > len(tmpPrefix) && name[:len(tmpPrefix)] == tmpPrefix {
			os.RemoveAll(filepath.Join(dir, name)) // crashed ingest
			continue
		}
		if !ValidateID(name) {
			continue
		}
		man, err := loadManifest(filepath.Join(dir, name), name)
		if err != nil {
			s.skipped = append(s.skipped, fmt.Errorf("store: dataset %s: %w", name, err))
			continue
		}
		// A crashed Touch can leave a temp manifest copy behind; sweep it.
		if tmps, _ := filepath.Glob(filepath.Join(dir, name, "manifest-tmp-*")); len(tmps) > 0 {
			for _, p := range tmps {
				os.Remove(p)
			}
		}
		s.datasets[man.ID] = man
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Len returns the number of recovered datasets.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.datasets)
}

// Skipped returns the validation errors of datasets Open refused to recover.
func (s *Store) Skipped() []error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]error(nil), s.skipped...)
}

// Get returns the manifest of the dataset with the given content ID.
func (s *Store) Get(id string) (*Manifest, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	man, ok := s.datasets[id]
	return man, ok
}

// List returns every dataset manifest, sorted by name then ID.
func (s *Store) List() []*Manifest {
	s.mu.RLock()
	out := make([]*Manifest, 0, len(s.datasets))
	for _, man := range s.datasets {
		out = append(out, man)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Delete removes a dataset from the index and from disk, failing with
// ErrPinned while any queued or running job holds the dataset pinned. Tile
// reads already holding the segment file finish; new reads fail. The
// directory is moved aside atomically under the lock before removal, so a
// concurrent re-ingest of identical content (whose Commit renames under the
// same lock) can never publish into a path a half-finished removal is still
// walking.
func (s *Store) Delete(id string) error { return s.remove(id, false) }

// ForceDelete removes a dataset even while pinned. A job caught mid-read
// fails with a "dataset deleted during job" error rather than a raw segment
// I/O error.
func (s *Store) ForceDelete(id string) error { return s.remove(id, true) }

func (s *Store) remove(id string, force bool) error {
	s.mu.Lock()
	if _, ok := s.datasets[id]; !ok {
		s.mu.Unlock()
		return ErrNotFound
	}
	if !force && s.pins[id] > 0 {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrPinned, id)
	}
	trash, err := os.MkdirTemp(s.dir, tmpPrefix)
	if err == nil {
		err = os.Rename(filepath.Join(s.dir, id), filepath.Join(trash, id))
	}
	if err != nil {
		// Nothing moved: keep the dataset indexed and report the failure.
		s.mu.Unlock()
		if trash != "" {
			os.RemoveAll(trash)
		}
		return fmt.Errorf("store: delete %s: %w", id, err)
	}
	delete(s.datasets, id)
	delete(s.persistedUse, id)
	hook := s.onDelete
	s.mu.Unlock()
	if hook != nil {
		// Outside the lock: the hook walks the server's cache layers.
		hook(id)
	}
	// Out of the namespace; a crash mid-removal leaves only a tmp- dir the
	// next Open sweeps away.
	if err := os.RemoveAll(trash); err != nil {
		return fmt.Errorf("store: delete %s: %w", id, err)
	}
	return nil
}

// SetDeleteHook registers fn to run after every successful delete (plain,
// forced, or retention-driven) with the removed dataset's ID. The server
// uses it to cascade cached results, so no delete path can orphan them.
func (s *Store) SetDeleteHook(fn func(id string)) {
	s.mu.Lock()
	s.onDelete = fn
	s.mu.Unlock()
}

// SetMetrics hooks the store into a metrics registry: every verified tile
// read observes its latency into sccgd_store_tile_read_seconds. Call once at
// startup, before readers are opened.
func (s *Store) SetMetrics(r *metrics.Registry) {
	if r == nil {
		return
	}
	s.mu.Lock()
	s.tileReadHist = r.Histogram("sccgd_store_tile_read_seconds")
	s.mu.Unlock()
}

// tileHist returns the tile-read histogram, nil when metrics are unhooked.
func (s *Store) tileHist() *metrics.Histogram {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tileReadHist
}

// SetReadHook registers fn to run after every digest-verified tile read with
// the dataset ID, tile index, and total bytes read. Both the single-dataset
// and cross-dataset read paths route through it — the server hooks it to
// maintain the per-tile read-frequency rollup behind /datasets/{id}/heat.
// fn must be cheap and must not call back into the store.
func (s *Store) SetReadHook(fn func(id string, tile int, bytes int64)) {
	s.mu.Lock()
	s.onRead = fn
	s.mu.Unlock()
}

// readHook returns the read hook, nil when unset.
func (s *Store) readHook() func(id string, tile int, bytes int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.onRead
}

// Pin marks the dataset as referenced by a queued or running job. While the
// refcount is positive, Delete (and the retention sweeper) refuse to remove
// it. Pinning a dataset the store does not hold fails with ErrNotFound, so a
// successful Pin guarantees the dataset stays readable until Unpin.
func (s *Store) Pin(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.datasets[id]; !ok {
		return ErrNotFound
	}
	s.pins[id]++
	return nil
}

// Unpin releases one Pin reference. Unpinning below zero is a no-op.
func (s *Store) Unpin(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := s.pins[id]; n > 1 {
		s.pins[id] = n - 1
	} else {
		delete(s.pins, id)
	}
}

// Pinned reports whether the dataset is currently pinned by any job.
func (s *Store) Pinned(id string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.pins[id] > 0
}

// PinnedCount returns how many datasets are currently pinned.
func (s *Store) PinnedCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pins)
}

// PinnedBytes returns the summed segment bytes of currently pinned datasets
// — the part of the store a sweep can never reclaim. Admission control uses
// it to distinguish "cannot fit until pins release" (retryable) from "cannot
// fit even after evicting everything unpinned" (reject or degrade).
func (s *Store) PinnedBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	for id := range s.pins {
		if man, ok := s.datasets[id]; ok {
			total += man.SegmentBytes
		}
	}
	return total
}

// TotalBytes returns the summed segment size of every stored dataset — the
// quantity the retention byte budget bounds.
func (s *Store) TotalBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	for _, man := range s.datasets {
		total += man.SegmentBytes
	}
	return total
}

// touchPersistInterval is how far the in-memory retention clock may run
// ahead of the manifest's persisted copy before TouchAt rewrites it. A hot
// dataset touched on every request then pays at most one manifest
// serialize+rename per interval; a crash loses at most this much recency.
const touchPersistInterval = time.Minute

// Touch records a use of the dataset now. See TouchAt.
func (s *Store) Touch(id string) { s.TouchAt(id, time.Now().UTC()) }

// TouchAt records a use of the dataset at the given time, advancing the
// retention clock in memory and — when the clock has moved at least
// touchPersistInterval since the last write (or moved backwards, which only
// explicit TouchAt calls do) — persisting it into the manifest so last-use
// ordering survives a restart. The manifest is replaced copy-on-write (the
// published *Manifest stays immutable) and rewritten with an atomic rename;
// a crashed write loses only recency, never dataset integrity. Touching an
// unknown dataset is a no-op.
func (s *Store) TouchAt(id string, t time.Time) {
	s.mu.Lock()
	man, ok := s.datasets[id]
	if !ok {
		s.mu.Unlock()
		return
	}
	// The on-disk value: seeded from the manifest as loaded/committed the
	// first time the dataset is touched, then tracked across rewrites.
	prev, ok := s.persistedUse[id]
	if !ok {
		prev = man.LastUse()
		s.persistedUse[id] = prev
	}
	cp := *man
	cp.LastUsed = t
	s.datasets[id] = &cp
	persist := t.Before(prev) || t.Sub(prev) >= touchPersistInterval
	if persist {
		s.persistedUse[id] = t
	}
	s.mu.Unlock()
	if !persist {
		return
	}

	raw, err := json.MarshalIndent(&cp, "", "  ")
	if err != nil {
		return
	}
	// Outside the lock: rename is atomic and last-writer-wins, so a racing
	// Touch (or a concurrent delete moving the directory away, which just
	// fails the write) is harmless.
	dir := filepath.Join(s.dir, id)
	f, err := os.CreateTemp(dir, "manifest-tmp-*")
	if err != nil {
		return
	}
	tmp := f.Name()
	if _, err := f.Write(raw); err != nil {
		f.Close()
		os.Remove(tmp)
		return
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestFile)); err != nil {
		os.Remove(tmp)
	}
}

// IngestTile is one tile's two parsed result sets handed to Ingest.
type IngestTile struct {
	Image string
	Tile  int
	A, B  []*geom.Polygon
}

// Ingest persists the tiles as one dataset and returns its manifest.
// Content-addressing makes it idempotent: re-ingesting identical polygon
// sets (in any tile order) returns the existing manifest without writing a
// second copy.
func (s *Store) Ingest(name string, tiles []IngestTile) (*Manifest, error) {
	w, err := s.NewWriter(name)
	if err != nil {
		return nil, err
	}
	for _, t := range tiles {
		if err := w.AddTile(t.Image, t.Tile, t.A, t.B); err != nil {
			w.Abort()
			return nil, err
		}
	}
	return w.Commit()
}

// DatasetBytes returns the exact segment size d would occupy if ingested —
// the WKB framing is deterministic in vertex counts, so admission control
// can size a generated dataset without encoding or touching disk.
func DatasetBytes(d *pathology.Dataset) int64 {
	var total int64
	for _, tp := range d.Pairs {
		for _, p := range tp.A {
			total += recLenBytes + int64(wkb.Size(p))
		}
		for _, p := range tp.B {
			total += recLenBytes + int64(wkb.Size(p))
		}
	}
	return total
}

// IngestDataset persists a generated pathology dataset under its spec name.
func (s *Store) IngestDataset(d *pathology.Dataset) (*Manifest, error) {
	w, err := s.NewWriter(d.Spec.Name)
	if err != nil {
		return nil, err
	}
	for _, tp := range d.Pairs {
		if err := w.AddTile(tp.Image, tp.Index, tp.A, tp.B); err != nil {
			w.Abort()
			return nil, err
		}
	}
	return w.Commit()
}

// tileKey orders and deduplicates tiles within one ingest.
type tileKey struct {
	image string
	tile  int
}

type tileEntry struct {
	info   TileInfo
	digest [sha256.Size]byte
}

// tileDigest hashes one tile's canonical content. Every variable-length
// field is length-prefixed (decimal, fixed separators), so no crafted image
// name or polygon byte sequence can make two different tiles encode to the
// same hash input.
func tileDigest(info TileInfo, segA, segB []byte) [sha256.Size]byte {
	h := sha256.New()
	fmt.Fprintf(h, "tile\x00%d:%s\x00%d\x00A%d:%d\x00", len(info.Image), info.Image, info.Tile, info.CountA, len(segA))
	h.Write(segA)
	fmt.Fprintf(h, "\x00B%d:%d\x00", info.CountB, len(segB))
	h.Write(segB)
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}

// Writer is a streaming ingest: tiles are appended to a temp segment file
// as they arrive and hashed incrementally, so an arbitrarily large dataset
// is ingested holding only one tile in memory. Commit seals the dataset
// under its content ID with a single rename.
type Writer struct {
	s       *Store
	name    string
	tmp     string
	f       *os.File
	off     int64
	entries []tileEntry
	seen    map[tileKey]struct{}
	polys   int64
}

// NewWriter starts a streaming ingest of a new dataset called name.
func (s *Store) NewWriter(name string) (*Writer, error) {
	tmp, err := os.MkdirTemp(s.dir, tmpPrefix)
	if err != nil {
		return nil, fmt.Errorf("store: ingest temp dir: %w", err)
	}
	f, err := os.Create(filepath.Join(tmp, segmentFile))
	if err != nil {
		os.RemoveAll(tmp)
		return nil, fmt.Errorf("store: ingest segment: %w", err)
	}
	return &Writer{s: s, name: name, tmp: tmp, f: f, seen: make(map[tileKey]struct{})}, nil
}

// encodeSet frames a polygon set as length-prefixed WKB records.
func encodeSet(polys []*geom.Polygon) ([]byte, error) {
	var out []byte
	for i, p := range polys {
		if p == nil {
			return nil, fmt.Errorf("store: polygon %d is nil", i)
		}
		rec := wkb.Marshal(p)
		var ln [recLenBytes]byte
		binary.LittleEndian.PutUint32(ln[:], uint32(len(rec)))
		out = append(out, ln[:]...)
		out = append(out, rec...)
	}
	return out, nil
}

// AddTile appends one tile's two result sets to the dataset.
func (w *Writer) AddTile(image string, tile int, a, b []*geom.Polygon) error {
	key := tileKey{image: image, tile: tile}
	if _, dup := w.seen[key]; dup {
		return fmt.Errorf("%w: %s/%d", ErrDuplicateTile, image, tile)
	}
	segA, err := encodeSet(a)
	if err != nil {
		return fmt.Errorf("store: tile %s/%d set A: %w", image, tile, err)
	}
	segB, err := encodeSet(b)
	if err != nil {
		return fmt.Errorf("store: tile %s/%d set B: %w", image, tile, err)
	}
	info := TileInfo{
		Image: image, Tile: tile,
		OffA: w.off, LenA: int64(len(segA)), CountA: len(a),
		OffB: w.off + int64(len(segA)), LenB: int64(len(segB)), CountB: len(b),
		// Planning stats are computed here, the one place the decoded
		// polygons are already in hand; they ride the manifest as metadata
		// (the tile digest below covers identity and bytes only, so adding
		// stats never changes a dataset's content address).
		StatsA: computeSetStats(a),
		StatsB: computeSetStats(b),
	}
	if _, err := w.f.Write(segA); err != nil {
		return fmt.Errorf("store: append tile %s/%d: %w", image, tile, err)
	}
	if _, err := w.f.Write(segB); err != nil {
		return fmt.Errorf("store: append tile %s/%d: %w", image, tile, err)
	}
	w.off = info.OffB + info.LenB

	// The tile digest covers identity and both sets' exact bytes; the
	// dataset ID folds these in canonical order at Commit, so arrival order
	// cannot change the content address.
	var e tileEntry
	e.info = info
	e.digest = tileDigest(info, segA, segB)
	e.info.Digest = hex.EncodeToString(e.digest[:])
	w.entries = append(w.entries, e)
	w.seen[key] = struct{}{}
	w.polys += int64(len(a) + len(b))
	return nil
}

// Bytes returns the segment bytes appended so far — the quantity a
// streaming ingest's admission check compares against byte budgets.
func (w *Writer) Bytes() int64 { return w.off }

// Abort discards the in-progress ingest.
func (w *Writer) Abort() {
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	if w.tmp != "" {
		os.RemoveAll(w.tmp)
		w.tmp = ""
	}
}

// Commit computes the content ID, writes the manifest, and publishes the
// dataset directory atomically. If the store already holds the content, the
// existing manifest is returned and the temp copy discarded.
func (w *Writer) Commit() (*Manifest, error) {
	defer w.Abort()
	if len(w.entries) == 0 {
		return nil, ErrEmpty
	}
	sort.Slice(w.entries, func(i, j int) bool {
		a, b := w.entries[i].info, w.entries[j].info
		if a.Image != b.Image {
			return a.Image < b.Image
		}
		return a.Tile < b.Tile
	})
	idh := sha256.New()
	for _, e := range w.entries {
		idh.Write(e.digest[:])
	}
	id := hex.EncodeToString(idh.Sum(nil))

	man := &Manifest{
		ID:           id,
		Name:         w.name,
		Created:      time.Now().UTC(),
		SegmentBytes: w.off,
		Polygons:     w.polys,
		Tiles:        make([]TileInfo, len(w.entries)),
	}
	for i, e := range w.entries {
		man.Tiles[i] = e.info
	}

	if err := w.f.Sync(); err != nil {
		return nil, fmt.Errorf("store: sync segment: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return nil, fmt.Errorf("store: close segment: %w", err)
	}
	w.f = nil
	raw, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("store: encode manifest: %w", err)
	}
	if err := writeFileSync(filepath.Join(w.tmp, manifestFile), raw); err != nil {
		return nil, fmt.Errorf("store: write manifest: %w", err)
	}

	s := w.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.datasets[id]; ok {
		return existing, nil // content already stored; deferred Abort drops the temp copy
	}
	if err := os.Rename(w.tmp, filepath.Join(s.dir, id)); err != nil {
		return nil, fmt.Errorf("store: publish dataset %s: %w", id, err)
	}
	w.tmp = ""
	// The content exists again: its retention clock restarts from this
	// manifest (and readers no longer classify it as deleted).
	delete(s.persistedUse, id)
	// Make the rename itself durable: without a directory fsync a power
	// failure can roll back the publish after the caller was handed the ID.
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
	s.datasets[id] = man
	return man, nil
}

// writeFileSync writes data and fsyncs before closing, so a crash after
// Commit returns cannot leave a committed dataset with a torn manifest.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// loadManifest reads and validates one dataset directory during recovery.
func loadManifest(dir, id string) (*Manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if err != nil {
		return nil, fmt.Errorf("read manifest: %w", err)
	}
	var man Manifest
	if err := json.Unmarshal(raw, &man); err != nil {
		return nil, fmt.Errorf("decode manifest: %w", err)
	}
	if man.ID != id {
		return nil, fmt.Errorf("manifest ID %q does not match directory %q", man.ID, id)
	}
	if err := man.Validate(); err != nil {
		return nil, err
	}
	st, err := os.Stat(filepath.Join(dir, segmentFile))
	if err != nil {
		return nil, fmt.Errorf("stat segment: %w", err)
	}
	if st.Size() != man.SegmentBytes {
		return nil, fmt.Errorf("segment is %d bytes, manifest says %d", st.Size(), man.SegmentBytes)
	}
	return &man, nil
}

// Validate checks the manifest against the store's content-addressing
// invariants — the same checks recovery applies to a manifest read back from
// disk, shared with the peer-pull import path so a manifest served by
// another node is held to exactly the standard a local one is. It also
// normalizes the way recovery does: tiles are sorted into canonical
// (image, tile) order, and planning stats that fail their own consistency
// check are dropped (stats sit outside the digest fold, so a mangled copy
// must degrade planning, not reject a verifiable dataset). Validate never
// touches the filesystem; agreement between SegmentBytes and the actual
// segment is the caller's check.
func (m *Manifest) Validate() error {
	if !ValidateID(m.ID) {
		return fmt.Errorf("manifest ID %q is not a content address", m.ID)
	}
	if len(m.Tiles) == 0 {
		return errors.New("manifest lists no tiles")
	}
	if m.SegmentBytes < 0 || m.Polygons < 0 {
		return errors.New("manifest carries negative sizes")
	}
	seen := make(map[tileKey]struct{}, len(m.Tiles))
	for _, ti := range m.Tiles {
		// Same uniqueness invariant the Writer enforces: a duplicated
		// (image, tile) entry would double-count that tile in every job.
		key := tileKey{image: ti.Image, tile: ti.Tile}
		if _, dup := seen[key]; dup {
			return fmt.Errorf("tile %s/%d listed twice in manifest", ti.Image, ti.Tile)
		}
		seen[key] = struct{}{}
		// Overflow-safe bounds: Len <= total and Off <= total-Len, so a
		// manifest with huge offsets cannot wrap Off+Len negative and slip
		// past into a later make([]byte, Len) panic.
		if ti.CountA < 0 || ti.CountB < 0 ||
			ti.LenA < 0 || ti.LenA > m.SegmentBytes || ti.OffA < 0 || ti.OffA > m.SegmentBytes-ti.LenA ||
			ti.LenB < 0 || ti.LenB > m.SegmentBytes || ti.OffB < 0 || ti.OffB > m.SegmentBytes-ti.LenB {
			return fmt.Errorf("tile %s/%d byte range out of bounds", ti.Image, ti.Tile)
		}
		// Each polygon record costs at least its length prefix, so a count
		// beyond LenX/recLenBytes is unsatisfiable — reject it here rather
		// than letting decodeSet size a slice from a crafted manifest.
		if int64(ti.CountA) > ti.LenA/recLenBytes || int64(ti.CountB) > ti.LenB/recLenBytes {
			return fmt.Errorf("tile %s/%d polygon count exceeds its byte range", ti.Image, ti.Tile)
		}
		if !idPattern.MatchString(ti.Digest) {
			return fmt.Errorf("tile %s/%d carries no content digest", ti.Image, ti.Tile)
		}
	}
	// Planning stats sit outside the digest fold, so a mangled manifest
	// can carry inconsistent ones; drop those (the planner degrades to the
	// trivial bound) instead of rejecting an otherwise-verifiable dataset.
	for i := range m.Tiles {
		if m.Tiles[i].StatsA != nil && !m.Tiles[i].StatsA.Valid() {
			m.Tiles[i].StatsA = nil
		}
		if m.Tiles[i].StatsB != nil && !m.Tiles[i].StatsB.Valid() {
			m.Tiles[i].StatsB = nil
		}
	}
	sort.Slice(m.Tiles, func(i, j int) bool {
		if m.Tiles[i].Image != m.Tiles[j].Image {
			return m.Tiles[i].Image < m.Tiles[j].Image
		}
		return m.Tiles[i].Tile < m.Tiles[j].Tile
	})
	// Enforce the invariant Commit established: the dataset ID is the fold
	// of the per-tile digests in canonical order. A manifest whose tile list
	// doesn't hash back to its own content address (swapped in from another
	// dataset, partially restored, served by a lying peer) is rejected.
	idh := sha256.New()
	for _, ti := range m.Tiles {
		raw, err := hex.DecodeString(ti.Digest)
		if err != nil {
			return fmt.Errorf("tile %s/%d digest is not hex: %v", ti.Image, ti.Tile, err)
		}
		idh.Write(raw)
	}
	if got := hex.EncodeToString(idh.Sum(nil)); got != m.ID {
		return fmt.Errorf("manifest tile digests fold to %s, not the manifest's content address", got)
	}
	return nil
}

// Dataset is a lazy reader over one stored dataset: each ReadTile opens the
// segment file and reads only that tile's byte ranges, so a scheduler shard
// touches only its own tiles and deleting a dataset mid-job fails that job
// cleanly instead of leaking a handle.
type Dataset struct {
	st  *Store
	dir string
	man *Manifest
}

// OpenDataset returns a lazy per-tile reader for the dataset.
func (s *Store) OpenDataset(id string) (*Dataset, error) {
	man, ok := s.Get(id)
	if !ok {
		return nil, ErrNotFound
	}
	return &Dataset{st: s, dir: filepath.Join(s.dir, id), man: man}, nil
}

// wasRemoved reports whether the dataset was deleted from this store after
// the reader was opened. Readers only exist for datasets that were indexed
// when opened, so absence from the index IS the deletion signal — no
// tombstone set to grow unboundedly across a long-lived daemon's sweeps.
func (d *Dataset) wasRemoved() bool {
	if d.st == nil {
		return false
	}
	d.st.mu.RLock()
	defer d.st.mu.RUnlock()
	_, present := d.st.datasets[d.man.ID]
	return !present
}

// Manifest returns the dataset's manifest.
func (d *Dataset) Manifest() *Manifest { return d.man }

// ReadTile decodes tile i's two polygon sets from the segment file, first
// re-verifying the tile's content digest (so size-preserving corruption is
// caught even when the bytes still decode), then fully validating every WKB
// record (the SDBMS deserialization protocol cost).
func (d *Dataset) ReadTile(i int) (a, b []*geom.Polygon, err error) {
	var start time.Time
	var hist *metrics.Histogram
	if d.st != nil {
		if hist = d.st.tileHist(); hist != nil {
			start = time.Now()
		}
	}
	ti, segA, segB, err := d.readVerified(i)
	if err != nil {
		return nil, nil, err
	}
	if a, err = d.decodeSet(ti, "A", segA, ti.CountA); err != nil {
		return nil, nil, err
	}
	if b, err = d.decodeSet(ti, "B", segB, ti.CountB); err != nil {
		return nil, nil, err
	}
	// Only successful reads are observed: failure latency is dominated by
	// error paths (missing segment, corrupt digest), which would pollute the
	// read-latency distribution the histogram exists to show.
	if hist != nil {
		hist.ObserveSince(start)
	}
	return a, b, nil
}

// readVerified reads tile i's raw segment byte ranges and re-verifies the
// tile's content digest. The digest covers both sets jointly, so both ranges
// are always read even when the caller decodes only one — verification is
// never skipped on the cross-dataset read path.
func (d *Dataset) readVerified(i int) (ti TileInfo, segA, segB []byte, err error) {
	if i < 0 || i >= len(d.man.Tiles) {
		return TileInfo{}, nil, nil, fmt.Errorf("store: dataset %s has no tile index %d", d.man.ID, i)
	}
	ti = d.man.Tiles[i]
	f, err := os.Open(filepath.Join(d.dir, segmentFile))
	if err != nil {
		// Distinguish a lifecycle fault from a storage fault: a segment that
		// vanished because the dataset was force-deleted mid-job reports the
		// delete, not the raw open error.
		if d.wasRemoved() {
			return TileInfo{}, nil, nil, fmt.Errorf("%w: dataset %s (%s)",
				ErrDeleted, d.man.ID, d.man.DisplayName())
		}
		return TileInfo{}, nil, nil, fmt.Errorf("store: dataset %s: %w", d.man.ID, err)
	}
	defer f.Close()
	if segA, err = d.readRange(f, ti, "A", ti.OffA, ti.LenA); err != nil {
		return TileInfo{}, nil, nil, err
	}
	if segB, err = d.readRange(f, ti, "B", ti.OffB, ti.LenB); err != nil {
		return TileInfo{}, nil, nil, err
	}
	sum := tileDigest(ti, segA, segB)
	if hex.EncodeToString(sum[:]) != ti.Digest {
		return TileInfo{}, nil, nil, fmt.Errorf("store: dataset %s tile %s/%d corrupt: content digest mismatch",
			d.man.ID, ti.Image, ti.Tile)
	}
	if d.st != nil {
		if hook := d.st.readHook(); hook != nil {
			hook(d.man.ID, i, int64(len(segA)+len(segB)))
		}
	}
	return ti, segA, segB, nil
}

func (d *Dataset) readRange(f *os.File, ti TileInfo, set string, off, ln int64) ([]byte, error) {
	buf := make([]byte, ln)
	if _, err := f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("store: dataset %s tile %s/%d set %s corrupt: read %d bytes at %d: %v",
			d.man.ID, ti.Image, ti.Tile, set, ln, off, err)
	}
	return buf, nil
}

func (d *Dataset) decodeSet(ti TileInfo, set string, buf []byte, count int) ([]*geom.Polygon, error) {
	corrupt := func(format string, args ...any) error {
		return fmt.Errorf("store: dataset %s tile %s/%d set %s corrupt: %s",
			d.man.ID, ti.Image, ti.Tile, set, fmt.Sprintf(format, args...))
	}
	polys := make([]*geom.Polygon, 0, count)
	for i := 0; i < count; i++ {
		if len(buf) < recLenBytes {
			return nil, corrupt("truncated record header for polygon %d", i)
		}
		n := int64(binary.LittleEndian.Uint32(buf))
		if n > int64(len(buf)-recLenBytes) {
			return nil, corrupt("polygon %d claims %d bytes, only %d remain", i, n, len(buf)-recLenBytes)
		}
		p, err := wkb.Unmarshal(buf[recLenBytes : recLenBytes+n])
		if err != nil {
			return nil, corrupt("polygon %d: %v", i, err)
		}
		polys = append(polys, p)
		buf = buf[recLenBytes+n:]
	}
	if len(buf) != 0 {
		return nil, corrupt("%d trailing bytes after %d polygons", len(buf), count)
	}
	return polys, nil
}

// Source returns the dataset as a lazily-materializing task source: the
// scheduler shards over tile handles (weights come straight from the
// manifest) and each shard encodes only its own tiles into pipeline input.
// The text encoding is canonical, so a store-served task is byte-identical
// to the task pipeline.EncodeDataset would have produced from the same
// polygons.
func (d *Dataset) Source() *DatasetSource { return &DatasetSource{d: d} }

// DatasetSource adapts a stored dataset to the scheduler's task-source
// contract (Len/Weight/Task) without the scheduler importing the store.
type DatasetSource struct {
	d *Dataset
}

// Len returns the tile count.
func (src *DatasetSource) Len() int { return len(src.d.man.Tiles) }

// Weight returns tile i's encoded byte size, the sharding weight.
func (src *DatasetSource) Weight(i int) int64 { return src.d.man.Tiles[i].Bytes() }

// Task materializes tile i as pipeline input.
func (src *DatasetSource) Task(i int) (pipeline.FileTask, error) {
	a, b, err := src.d.ReadTile(i)
	if err != nil {
		return pipeline.FileTask{}, err
	}
	ti := src.d.man.Tiles[i]
	return pipeline.FileTask{
		Image: ti.Image,
		Tile:  ti.Tile,
		RawA:  parser.Encode(a),
		RawB:  parser.Encode(b),
	}, nil
}

// PolyTask materializes tile i as pre-parsed pipeline input: the store
// validated every WKB record at ingest (and ReadTile re-validates on read),
// so stored tiles skip the text re-encode/re-parse round trip entirely. The
// decoded polygons are exactly what parsing the canonical text would yield,
// keeping reports bit-identical to the FileTask path.
func (src *DatasetSource) PolyTask(i int) (pipeline.PolyTask, error) {
	a, b, err := src.d.ReadTile(i)
	if err != nil {
		return pipeline.PolyTask{}, err
	}
	ti := src.d.man.Tiles[i]
	return pipeline.PolyTask{Image: ti.Image, Tile: ti.Tile, A: a, B: b}, nil
}
