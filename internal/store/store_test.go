package store

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/pathology"
	"repro/internal/pipeline"
	"repro/internal/sched"
	"repro/internal/wkb"
)

func testDataset(t *testing.T, tiles int) *pathology.Dataset {
	t.Helper()
	spec := pathology.Representative()
	spec.Tiles = tiles
	return pathology.Generate(spec)
}

func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

// TestRoundTripByteIdentical is the core durability property: every polygon
// read back from a stored dataset re-marshals to exactly the WKB bytes that
// were written, and a store-served pipeline task is byte-identical to the
// task EncodeDataset builds from the same polygons in memory.
func TestRoundTripByteIdentical(t *testing.T) {
	d := testDataset(t, 3)
	s := openStore(t, t.TempDir())
	man, err := s.IngestDataset(d)
	if err != nil {
		t.Fatalf("IngestDataset: %v", err)
	}
	if !ValidateID(man.ID) {
		t.Fatalf("manifest ID %q is not a valid content hash", man.ID)
	}
	if len(man.Tiles) != len(d.Pairs) {
		t.Fatalf("manifest has %d tiles, dataset has %d", len(man.Tiles), len(d.Pairs))
	}

	ds, err := s.OpenDataset(man.ID)
	if err != nil {
		t.Fatalf("OpenDataset: %v", err)
	}
	want := pipeline.EncodeDataset(d)
	for i, tp := range d.Pairs {
		a, b, err := ds.ReadTile(i)
		if err != nil {
			t.Fatalf("ReadTile(%d): %v", i, err)
		}
		if len(a) != len(tp.A) || len(b) != len(tp.B) {
			t.Fatalf("tile %d read %d/%d polygons, want %d/%d", i, len(a), len(b), len(tp.A), len(tp.B))
		}
		for j := range a {
			if !bytes.Equal(wkb.Marshal(a[j]), wkb.Marshal(tp.A[j])) {
				t.Fatalf("tile %d set A polygon %d WKB differs after round trip", i, j)
			}
		}
		task, err := ds.Source().Task(i)
		if err != nil {
			t.Fatalf("Source().Task(%d): %v", i, err)
		}
		if task.Image != want[i].Image || task.Tile != want[i].Tile ||
			!bytes.Equal(task.RawA, want[i].RawA) || !bytes.Equal(task.RawB, want[i].RawB) {
			t.Fatalf("store-served task %d differs from EncodeDataset task", i)
		}
		if got := ds.Source().Weight(i); got != man.Tiles[i].Bytes() || got <= 0 {
			t.Fatalf("Weight(%d) = %d, want manifest tile bytes %d", i, got, man.Tiles[i].Bytes())
		}
	}
}

// TestContentIDStableAcrossIngestOrder: the dataset ID hashes canonical tile
// content, so ingesting the same tiles in reverse order — under a different
// name — deduplicates to the same stored dataset.
func TestContentIDStableAcrossIngestOrder(t *testing.T) {
	d := testDataset(t, 4)
	s := openStore(t, t.TempDir())

	tiles := make([]IngestTile, len(d.Pairs))
	for i, tp := range d.Pairs {
		tiles[i] = IngestTile{Image: tp.Image, Tile: tp.Index, A: tp.A, B: tp.B}
	}
	first, err := s.Ingest("forward", tiles)
	if err != nil {
		t.Fatalf("Ingest forward: %v", err)
	}
	rev := make([]IngestTile, len(tiles))
	for i := range tiles {
		rev[i] = tiles[len(tiles)-1-i]
	}
	second, err := s.Ingest("backward", rev)
	if err != nil {
		t.Fatalf("Ingest backward: %v", err)
	}
	if first.ID != second.ID {
		t.Fatalf("ingest order changed the content ID: %s vs %s", first.ID, second.ID)
	}
	if s.Len() != 1 {
		t.Fatalf("store holds %d datasets after duplicate ingest, want 1", s.Len())
	}
	if second.Name != "forward" {
		t.Errorf("dedup returned name %q, want the stored dataset's %q", second.Name, "forward")
	}
}

// TestRecoveryRescan: a second Open over the same directory recovers the
// manifest and serves identical tile reads.
func TestRecoveryRescan(t *testing.T) {
	d := testDataset(t, 2)
	dir := t.TempDir()
	man, err := openStore(t, dir).IngestDataset(d)
	if err != nil {
		t.Fatalf("IngestDataset: %v", err)
	}

	s2 := openStore(t, dir)
	if len(s2.Skipped()) != 0 {
		t.Fatalf("recovery skipped datasets: %v", s2.Skipped())
	}
	got, ok := s2.Get(man.ID)
	if !ok {
		t.Fatalf("dataset %s not recovered", man.ID)
	}
	if got.Name != man.Name || got.SegmentBytes != man.SegmentBytes || got.Polygons != man.Polygons {
		t.Fatalf("recovered manifest differs: %+v vs %+v", got, man)
	}
	ds, err := s2.OpenDataset(man.ID)
	if err != nil {
		t.Fatalf("OpenDataset after recovery: %v", err)
	}
	if _, _, err := ds.ReadTile(0); err != nil {
		t.Fatalf("ReadTile after recovery: %v", err)
	}
}

// TestCorruptSegmentRejected: a flipped byte inside a stored polygon must
// surface as a clear per-tile error naming the dataset, not a panic or a
// silently wrong polygon.
func TestCorruptSegmentRejected(t *testing.T) {
	d := testDataset(t, 1)
	dir := t.TempDir()
	s := openStore(t, dir)
	man, err := s.IngestDataset(d)
	if err != nil {
		t.Fatalf("IngestDataset: %v", err)
	}
	seg := filepath.Join(dir, man.ID, "segments.wkb")
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	ds, err := s.OpenDataset(man.ID)
	if err != nil {
		t.Fatalf("OpenDataset: %v", err)
	}
	_, _, err = ds.ReadTile(0)
	if err == nil {
		t.Fatal("ReadTile returned no error over a corrupted segment")
	}
	if !strings.Contains(err.Error(), man.ID) || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corruption error %q does not name the dataset and corruption", err)
	}
}

// TestTruncatedSegmentSkippedOnOpen: recovery refuses a dataset whose
// segment file does not match its manifest, reporting why, without failing
// the whole store.
func TestTruncatedSegmentSkippedOnOpen(t *testing.T) {
	d := testDataset(t, 2)
	dir := t.TempDir()
	man, err := openStore(t, dir).IngestDataset(d)
	if err != nil {
		t.Fatalf("IngestDataset: %v", err)
	}
	seg := filepath.Join(dir, man.ID, "segments.wkb")
	if err := os.Truncate(seg, man.SegmentBytes/2); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	if _, ok := s2.Get(man.ID); ok {
		t.Fatal("truncated dataset was recovered as valid")
	}
	skipped := s2.Skipped()
	if len(skipped) != 1 || !strings.Contains(skipped[0].Error(), "segment") {
		t.Fatalf("Skipped() = %v, want one clear segment-size error", skipped)
	}
}

// TestCorruptManifestSkipped: unparseable manifest JSON is likewise skipped
// with a clear reason.
func TestCorruptManifestSkipped(t *testing.T) {
	d := testDataset(t, 1)
	dir := t.TempDir()
	man, err := openStore(t, dir).IngestDataset(d)
	if err != nil {
		t.Fatalf("IngestDataset: %v", err)
	}
	manPath := filepath.Join(dir, man.ID, "manifest.json")
	if err := os.WriteFile(manPath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir)
	if s2.Len() != 0 {
		t.Fatal("dataset with corrupt manifest was recovered")
	}
	if skipped := s2.Skipped(); len(skipped) != 1 || !strings.Contains(skipped[0].Error(), "manifest") {
		t.Fatalf("Skipped() = %v, want one clear manifest error", skipped)
	}
}

// TestStoreBackedJobMatchesPipeline: a scheduler job running over lazy
// store tile handles must reproduce a direct in-memory pipeline run of the
// same dataset bit-for-bit.
func TestStoreBackedJobMatchesPipeline(t *testing.T) {
	d := testDataset(t, 4)
	s := openStore(t, t.TempDir())
	man, err := s.IngestDataset(d)
	if err != nil {
		t.Fatalf("IngestDataset: %v", err)
	}
	ds, err := s.OpenDataset(man.ID)
	if err != nil {
		t.Fatalf("OpenDataset: %v", err)
	}

	sc := sched.New(sched.Config{Devices: 2, Workers: 2})
	defer sc.Close()
	id, err := sc.SubmitSource(man.Name, ds.Source())
	if err != nil {
		t.Fatalf("SubmitSource: %v", err)
	}
	st, err := sc.Wait(context.Background(), id)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if st.State != sched.Done {
		t.Fatalf("job state %v (error %q), want done", st.State, st.Error)
	}

	direct, err := pipeline.Run(pipeline.EncodeDataset(d), pipeline.Config{})
	if err != nil {
		t.Fatalf("direct pipeline run: %v", err)
	}
	if st.Report.Similarity != direct.Similarity {
		t.Errorf("store-backed job similarity %v != direct %v (must be bit-identical)",
			st.Report.Similarity, direct.Similarity)
	}
	if st.Report.Intersecting != direct.Intersecting || st.Report.Candidates != direct.Candidates {
		t.Errorf("store-backed job counts (%d, %d) != direct (%d, %d)",
			st.Report.Intersecting, st.Report.Candidates, direct.Intersecting, direct.Candidates)
	}
}

// TestDeleteRemovesDataset: Delete drops the index entry and the directory;
// a lazy reader opened before the delete fails cleanly on its next read.
func TestDeleteRemovesDataset(t *testing.T) {
	d := testDataset(t, 1)
	dir := t.TempDir()
	s := openStore(t, dir)
	man, err := s.IngestDataset(d)
	if err != nil {
		t.Fatalf("IngestDataset: %v", err)
	}
	ds, err := s.OpenDataset(man.ID)
	if err != nil {
		t.Fatalf("OpenDataset: %v", err)
	}
	if err := s.Delete(man.ID); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, ok := s.Get(man.ID); ok {
		t.Fatal("deleted dataset still indexed")
	}
	if _, err := os.Stat(filepath.Join(dir, man.ID)); !os.IsNotExist(err) {
		t.Fatalf("dataset directory survives delete: %v", err)
	}
	if _, _, err := ds.ReadTile(0); err == nil {
		t.Fatal("reading a deleted dataset succeeded")
	}
	if err := s.Delete(man.ID); err != ErrNotFound {
		t.Fatalf("second Delete = %v, want ErrNotFound", err)
	}
}

// TestEmptyIngestRejected: committing zero tiles is an error and leaves no
// temp debris behind.
func TestEmptyIngestRejected(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if _, err := s.Ingest("empty", nil); err != ErrEmpty {
		t.Fatalf("Ingest(nil) = %v, want ErrEmpty", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("empty ingest left %d entries in the store dir", len(entries))
	}
}

// TestDuplicateTileRejected: one ingest cannot contain the same (image,
// tile) twice — the content address would be ambiguous.
func TestDuplicateTileRejected(t *testing.T) {
	d := testDataset(t, 1)
	s := openStore(t, t.TempDir())
	tp := d.Pairs[0]
	tiles := []IngestTile{
		{Image: tp.Image, Tile: tp.Index, A: tp.A, B: tp.B},
		{Image: tp.Image, Tile: tp.Index, A: tp.A, B: tp.B},
	}
	if _, err := s.Ingest("dup", tiles); err == nil || !strings.Contains(err.Error(), "duplicate tile") {
		t.Fatalf("duplicate-tile ingest error = %v, want a clear duplicate error", err)
	}
}

// TestManifestDigestFoldVerified: recovery recomputes the dataset ID from
// the manifest's per-tile digests; a manifest whose tile list no longer
// folds to the directory's content address is rejected.
func TestManifestDigestFoldVerified(t *testing.T) {
	d := testDataset(t, 1)
	dir := t.TempDir()
	man, err := openStore(t, dir).IngestDataset(d)
	if err != nil {
		t.Fatalf("IngestDataset: %v", err)
	}
	manPath := filepath.Join(dir, man.ID, "manifest.json")
	raw, err := os.ReadFile(manPath)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(raw), man.Tiles[0].Digest, strings.Repeat("0", 64), 1)
	if tampered == string(raw) {
		t.Fatal("test setup: tile digest not found in manifest JSON")
	}
	if err := os.WriteFile(manPath, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir)
	if _, ok := s2.Get(man.ID); ok {
		t.Fatal("dataset with tampered tile digest was recovered")
	}
	if skipped := s2.Skipped(); len(skipped) != 1 || !strings.Contains(skipped[0].Error(), "content address") {
		t.Fatalf("Skipped() = %v, want a content-address fold error", skipped)
	}
}
