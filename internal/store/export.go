package store

// Peer-transfer surface: streaming export of a dataset's raw segment and
// import-by-copy of a manifest+segment received from another store. Because
// datasets are immutable and content-addressed, replication is pure file
// copy — but an importing store trusts nothing: the manifest must fold back
// to its own content address and every tile of the copied segment is
// digest-verified and WKB-decoded before the dataset is published, exactly
// the checks a local ReadTile applies. Any failure removes the temp
// directory, so a corrupt or malicious peer can never leave a partial or
// poisoned dataset on disk.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// OpenSegment opens dataset id's segment file for streaming export and
// returns it with its manifest-recorded size. The caller owns the handle; a
// concurrent delete moves the directory aside but an already-open handle
// keeps streaming, same as in-flight tile reads.
func (s *Store) OpenSegment(id string) (io.ReadCloser, int64, error) {
	man, ok := s.Get(id)
	if !ok {
		return nil, 0, ErrNotFound
	}
	f, err := os.Open(filepath.Join(s.dir, id, segmentFile))
	if err != nil {
		if _, ok := s.Get(id); !ok {
			return nil, 0, ErrNotFound // deleted between index lookup and open
		}
		return nil, 0, fmt.Errorf("store: open segment %s: %w", id, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("store: stat segment %s: %w", id, err)
	}
	if fi.Size() != man.SegmentBytes {
		f.Close()
		return nil, 0, fmt.Errorf("store: segment %s is %d bytes, manifest says %d", id, fi.Size(), man.SegmentBytes)
	}
	return f, man.SegmentBytes, nil
}

// Import copies a dataset — a manifest plus its raw segment stream, as
// served by another store's export — into this store under the same content
// address. The manifest is structurally validated (including the
// digest-fold-equals-ID check), the segment is copied into a temp directory,
// and then every tile is read back through the standard verified path:
// content digest first, full WKB decode second. Only a copy that passes all
// of it is published, with the same atomic rename + directory fsync Commit
// uses. Importing content the store already holds returns the existing
// manifest untouched.
func (s *Store) Import(man *Manifest, seg io.Reader) (*Manifest, error) {
	if man == nil {
		return nil, errors.New("store: import: nil manifest")
	}
	// Work on a private copy: Validate normalizes in place, and the caller's
	// manifest (typically decoded from a peer response) stays untouched.
	cp := *man
	cp.Tiles = append([]TileInfo(nil), man.Tiles...)
	if err := cp.Validate(); err != nil {
		return nil, fmt.Errorf("store: import %.12s: %w", cp.ID, err)
	}
	if existing, ok := s.Get(cp.ID); ok {
		return existing, nil // content already stored
	}
	// The origin's retention clock is its own; the import is a fresh use here.
	cp.LastUsed = time.Now().UTC()

	tmp, err := os.MkdirTemp(s.dir, tmpPrefix)
	if err != nil {
		return nil, fmt.Errorf("store: import temp dir: %w", err)
	}
	cleanup := func() {
		if tmp != "" {
			os.RemoveAll(tmp)
		}
	}
	defer cleanup()

	f, err := os.Create(filepath.Join(tmp, segmentFile))
	if err != nil {
		return nil, fmt.Errorf("store: import segment: %w", err)
	}
	// +1 past the declared size so an over-long stream shows up as a size
	// mismatch instead of copying unboundedly.
	n, err := io.Copy(f, io.LimitReader(seg, cp.SegmentBytes+1))
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: import %.12s: copy segment: %w", cp.ID, err)
	}
	if n != cp.SegmentBytes {
		f.Close()
		return nil, fmt.Errorf("store: import %.12s: segment is %d bytes, manifest says %d", cp.ID, n, cp.SegmentBytes)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: import %.12s: sync segment: %w", cp.ID, err)
	}
	if err := f.Close(); err != nil {
		return nil, fmt.Errorf("store: import %.12s: close segment: %w", cp.ID, err)
	}

	// Verify every tile of the copy before publishing: digest first, then a
	// full WKB decode — exactly what ReadTile enforces — so corrupted or
	// crafted bytes can never land under a valid-looking content address.
	d := &Dataset{dir: tmp, man: &cp}
	for i := range cp.Tiles {
		if _, _, err := d.ReadTile(i); err != nil {
			return nil, fmt.Errorf("store: import %.12s: %w", cp.ID, err)
		}
	}

	raw, err := json.MarshalIndent(&cp, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("store: import %.12s: encode manifest: %w", cp.ID, err)
	}
	if err := writeFileSync(filepath.Join(tmp, manifestFile), raw); err != nil {
		return nil, fmt.Errorf("store: import %.12s: write manifest: %w", cp.ID, err)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.datasets[cp.ID]; ok {
		return existing, nil // raced a concurrent ingest/import; deferred cleanup drops the copy
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, cp.ID)); err != nil {
		return nil, fmt.Errorf("store: publish imported dataset %s: %w", cp.ID, err)
	}
	tmp = ""
	delete(s.persistedUse, cp.ID)
	// Make the rename itself durable, matching Commit.
	if dh, err := os.Open(s.dir); err == nil {
		dh.Sync()
		dh.Close()
	}
	s.datasets[cp.ID] = &cp
	return &cp, nil
}
