package experiments

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/pathology"
	"repro/internal/pipesim"
	"repro/internal/pixelbox"
	"repro/internal/sdbms"
)

// steadyStateTiles is the stream length the system-level simulations
// replicate calibrated tiles up to, restoring the paper-scale tile counts
// the ~50x-scaled corpus shrinks away.
const steadyStateTiles = 160

// Fig2Result is the SDBMS query-time decomposition (paper Fig. 2).
type Fig2Result struct {
	Unoptimized sdbms.Result
	Optimized   sdbms.Result
}

// Fig2 profiles the cross-comparing query in the mini spatial DBMS, in both
// the Fig. 1(a) and Fig. 1(b) forms, on a single core.
func Fig2(d *pathology.Dataset) (Fig2Result, error) {
	var out Fig2Result
	for _, form := range []sdbms.QueryForm{sdbms.Unoptimized, sdbms.Optimized} {
		a, b := d.GlobalPolygons()
		db := sdbms.NewDB()
		if _, err := db.CreateTable(d.Spec.Name+"_1", a); err != nil {
			return out, err
		}
		if _, err := db.CreateTable(d.Spec.Name+"_2", b); err != nil {
			return out, err
		}
		res, err := db.CrossCompare(d.Spec.Name+"_1", d.Spec.Name+"_2", form)
		if err != nil {
			return out, err
		}
		if form == sdbms.Unoptimized {
			out.Unoptimized = res
		} else {
			out.Optimized = res
		}
	}
	return out, nil
}

// Render prints the decomposition as percentage rows.
func (r Fig2Result) Render() string {
	t := metrics.NewTable("component", "unoptimized", "optimized")
	u, o := r.Unoptimized.Profile, r.Optimized.Profile
	ut, ot := float64(u.Total()), float64(o.Total())
	uc, oc := u.Components(), o.Components()
	for i := range uc {
		t.AddRow(uc[i].Label,
			fmt.Sprintf("%5.1f%%", 100*float64(uc[i].D)/ut),
			fmt.Sprintf("%5.1f%%", 100*float64(oc[i].D)/ot))
	}
	t.AddRow("total", u.Total(), o.Total())
	return t.String()
}

// Fig7Result compares the exact sweep baseline, the single-core CPU port
// and the GPU kernel on the full representative workload (paper Fig. 7).
type Fig7Result struct {
	Pairs            int
	GEOSSecs         float64 // single-core sweep overlay (GEOS role)
	PixelBoxCPUSSecs float64 // PixelBox-CPU on one core
	PixelBoxSecs     float64 // simulated GTX 580 incl. transfers
}

// Speedups returns the Fig. 7 right-hand panel: speedups over GEOS.
func (r Fig7Result) Speedups() (cpuS, gpuBox float64) {
	return metrics.Speedup(r.GEOSSecs, r.PixelBoxCPUSSecs), metrics.Speedup(r.GEOSSecs, r.PixelBoxSecs)
}

// Fig7 measures all three systems over every filtered pair of the dataset.
func Fig7(d *pathology.Dataset) Fig7Result {
	pairs := FilteredPairs(d)
	encoded := EncodePairs(pairs)
	var out Fig7Result
	out.Pairs = len(pairs)

	sw := metrics.Start()
	SweepAreas(encoded)
	out.GEOSSecs = sw.ElapsedSeconds()

	sw = metrics.Start()
	pixelbox.RunCPU(pairs, pixelbox.CPUConfig{})
	out.PixelBoxCPUSSecs = sw.ElapsedSeconds()

	out.PixelBoxSecs = GPUSeconds(pairs, pixelbox.Config{})
	return out
}

// Fig8Row is one scale factor of the algorithm-decision ablation (paper
// Fig. 8): sampling boxes and indirect union vs pixelization alone.
type Fig8Row struct {
	ScaleFactor   int
	PixelOnlySecs float64
	NoSepSecs     float64
	PixelBoxSecs  float64
	SweepSecs     float64 // GEOS reference ("takes GEOS over 11 seconds")
}

// Fig8 stresses the three algorithm variants over scale factors 1..maxSF.
func Fig8(pairs []pixelbox.Pair, maxSF int) []Fig8Row {
	rows := make([]Fig8Row, 0, maxSF)
	for sf := 1; sf <= maxSF; sf++ {
		scaled := ScalePairs(pairs, int32(sf))
		encoded := EncodePairs(scaled)
		sw := metrics.Start()
		SweepAreas(encoded)
		rows = append(rows, Fig8Row{
			ScaleFactor:   sf,
			SweepSecs:     sw.ElapsedSeconds(),
			PixelOnlySecs: GPUSeconds(scaled, pixelbox.Config{Variant: pixelbox.PixelOnly}),
			NoSepSecs:     GPUSeconds(scaled, pixelbox.Config{Variant: pixelbox.PixelBoxNoSep}),
			PixelBoxSecs:  GPUSeconds(scaled, pixelbox.Config{Variant: pixelbox.PixelBox}),
		})
	}
	return rows
}

// Fig9Row is one scale factor of the implementation-optimisation ladder
// (paper Fig. 9), reporting speedups normalised to PixelBox-NoOpt.
type Fig9Row struct {
	ScaleFactor int
	NoOptSecs   float64
	NBCSecs     float64
	NBCURSecs   float64
	NBCURSMSecs float64
}

// Speedups returns each variant's speedup over NoOpt.
func (r Fig9Row) Speedups() (nbc, nbcur, nbcursm float64) {
	return metrics.Speedup(r.NoOptSecs, r.NBCSecs),
		metrics.Speedup(r.NoOptSecs, r.NBCURSecs),
		metrics.Speedup(r.NoOptSecs, r.NBCURSMSecs)
}

// Fig9 measures the optimisation ladder at the given scale factors (the
// paper uses 1, 3 and 5).
func Fig9(pairs []pixelbox.Pair, scaleFactors []int) []Fig9Row {
	rows := make([]Fig9Row, 0, len(scaleFactors))
	for _, sf := range scaleFactors {
		scaled := ScalePairs(pairs, int32(sf))
		rows = append(rows, Fig9Row{
			ScaleFactor: sf,
			NoOptSecs:   GPUSeconds(scaled, pixelbox.Config{Variant: pixelbox.NoOpt}),
			NBCSecs:     GPUSeconds(scaled, pixelbox.Config{Variant: pixelbox.NBC}),
			NBCURSecs:   GPUSeconds(scaled, pixelbox.Config{Variant: pixelbox.NBCUR}),
			NBCURSMSecs: GPUSeconds(scaled, pixelbox.Config{Variant: pixelbox.NBCURSM}),
		})
	}
	return rows
}

// Fig10Point is one pixelization threshold sample.
type Fig10Point struct {
	Threshold int
	Secs      float64
}

// Fig10Series is the threshold-sensitivity curve for one scale factor
// (paper Fig. 10).
type Fig10Series struct {
	ScaleFactor int
	Points      []Fig10Point
}

// Fig10 sweeps the pixelization threshold T at a fixed thread-block size
// for each scale factor.
func Fig10(pairs []pixelbox.Pair, blockSize int, thresholds []int, scaleFactors []int) []Fig10Series {
	series := make([]Fig10Series, 0, len(scaleFactors))
	for _, sf := range scaleFactors {
		scaled := ScalePairs(pairs, int32(sf))
		s := Fig10Series{ScaleFactor: sf}
		for _, T := range thresholds {
			s.Points = append(s.Points, Fig10Point{
				Threshold: T,
				Secs:      GPUSeconds(scaled, pixelbox.Config{BlockSize: blockSize, Threshold: T}),
			})
		}
		series = append(series, s)
	}
	return series
}

// Best returns the threshold with the lowest time in the series.
func (s Fig10Series) Best() Fig10Point {
	best := s.Points[0]
	for _, p := range s.Points[1:] {
		if p.Secs < best.Secs {
			best = p
		}
	}
	return best
}

// Table1Result holds the execution-scheme comparison (paper Table 1),
// normalised against the measured single-core SDBMS baseline.
type Table1Result struct {
	PostGISSecs float64
	NoPipeS     pipesim.Result
	NoPipeM     pipesim.Result
	Pipelined   pipesim.Result
}

// Speedups returns the Table 1 row: each scheme's speedup over PostGIS-S.
func (r Table1Result) Speedups() (s, m, p float64) {
	return metrics.Speedup(r.PostGISSecs, r.NoPipeS.Seconds),
		metrics.Speedup(r.PostGISSecs, r.NoPipeM.Seconds),
		metrics.Speedup(r.PostGISSecs, r.Pipelined.Seconds)
}

// Table1 measures the SDBMS baseline on the host core and simulates the
// three SCCG schemes on the T1500 platform with calibrated service times.
// Task migration is disabled, as in the paper's §5.5 methodology.
func Table1(d *pathology.Dataset, cal Calibration) (Table1Result, error) {
	var out Table1Result
	a, b := d.GlobalPolygons()
	db := sdbms.NewDB()
	if _, err := db.CreateTable("t1", a); err != nil {
		return out, err
	}
	if _, err := db.CreateTable("t2", b); err != nil {
		return out, err
	}
	sw := metrics.Start()
	if _, err := db.CrossCompare("t1", "t2", sdbms.Optimized); err != nil {
		return out, err
	}
	out.PostGISSecs = sw.ElapsedSeconds()

	// Replicate the calibrated tiles to paper-scale stream length so the
	// schemes reach steady state, and scale the measured baseline by the
	// same factor.
	reps := (steadyStateTiles + len(cal.Tiles) - 1) / len(cal.Tiles)
	tiles := ReplicateTiles(cal.Tiles, reps)
	out.PostGISSecs *= float64(reps)

	plat := pipesim.T1500()
	var err error
	if out.NoPipeS, err = pipesim.Simulate(tiles, plat, pipesim.NoPipeS, pipesim.Options{}); err != nil {
		return out, err
	}
	if out.NoPipeM, err = pipesim.Simulate(tiles, plat, pipesim.NoPipeM, pipesim.Options{}); err != nil {
		return out, err
	}
	if out.Pipelined, err = pipesim.Simulate(tiles, plat, pipesim.Pipelined, pipesim.Options{}); err != nil {
		return out, err
	}
	return out, nil
}

// Fig11Row is one platform configuration of the task-migration experiment
// (paper Fig. 11).
type Fig11Row struct {
	Config         string
	Off            pipesim.Result
	On             pipesim.Result
	NormThroughput float64 // on/off throughput ratio
}

// Fig11 evaluates dynamic task migration on the paper's three platform
// configurations: the T1500 workstation, the EC2 instance with both GPUs,
// and the EC2 instance with one deliberately slowed GPU (the paper slows
// PixelBox with a sub-optimal thread-block size to emulate a shared,
// non-exclusive device).
func Fig11(cal Calibration) ([]Fig11Row, error) {
	configIII := pipesim.EC2(1)
	// De-tune the device (the paper picks a sub-optimal thread-block size,
	// emulating a GPU shared with other applications) just enough that the
	// aggregator becomes the pipeline bottleneck and migration flows
	// GPU -> CPU (§5.6).
	configIII.GPUSpeed *= 0.5
	configs := []struct {
		name string
		plat pipesim.Platform
	}{
		{"Config-I (T1500)", pipesim.T1500()},
		{"Config-II (EC2 2xGPU)", pipesim.EC2(2)},
		{"Config-III (EC2 1xGPU slowed)", configIII},
	}
	reps := (steadyStateTiles + len(cal.Tiles) - 1) / len(cal.Tiles)
	tiles := ReplicateTiles(cal.Tiles, reps)
	rows := make([]Fig11Row, 0, len(configs))
	for _, c := range configs {
		off, err := pipesim.Simulate(tiles, c.plat, pipesim.Pipelined, pipesim.Options{Migration: false})
		if err != nil {
			return nil, err
		}
		on, err := pipesim.Simulate(tiles, c.plat, pipesim.Pipelined, pipesim.Options{Migration: true})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig11Row{
			Config:         c.name,
			Off:            off,
			On:             on,
			NormThroughput: off.Seconds / on.Seconds,
		})
	}
	return rows, nil
}

// Fig12Row is one dataset of the full-corpus comparison (paper Fig. 12).
type Fig12Row struct {
	Dataset      string
	Tiles        int
	Polygons     int
	Pairs        int
	PostGISMSecs float64
	SCCGSecs     float64
	Speedup      float64
	Similarity   float64
}

// Fig12 cross-compares every corpus dataset with both systems: PostGIS-M is
// the measured single-core SDBMS time scaled by the paper's 16-stream /
// 8-core parallelisation model, and SCCG is the pipelined scheme with task
// migration on the T1500 platform.
func Fig12(specs []pathology.DatasetSpec) ([]Fig12Row, error) {
	rows := make([]Fig12Row, 0, len(specs))
	for _, spec := range specs {
		d := pathology.Generate(spec)
		a, b := d.GlobalPolygons()

		db := sdbms.NewDB()
		if _, err := db.CreateTable("a", a); err != nil {
			return nil, err
		}
		if _, err := db.CreateTable("b", b); err != nil {
			return nil, err
		}
		sw := metrics.Start()
		res, err := db.CrossCompare("a", "b", sdbms.Optimized)
		if err != nil {
			return nil, err
		}
		single := sw.Elapsed()
		// The paper's 16-stream PostgreSQL on the 8-core EC2 instance
		// scales well below linear: its own numbers (Table 1's 76x over
		// PostGIS-S vs Fig. 12's ~19x over PostGIS-M for the same dataset)
		// imply ~4x effective parallelism. ModelParallelTime(16, 8, -0.5)
		// yields that factor: 8 cores x 50% per-core efficiency under
		// shared buffer-manager contention.
		postgisM := sdbms.ModelParallelTime(single, 16, 8, -0.5)

		// Replicate to steady-state stream length, scaling the baseline by
		// the same factor (both systems process `reps` copies).
		reps := (steadyStateTiles + spec.Tiles - 1) / spec.Tiles
		postgisM = time.Duration(float64(postgisM) * float64(reps))
		cal := Calibrate(d)
		tiles := ReplicateTiles(cal.Tiles, reps)
		sccg, err := pipesim.Simulate(tiles, pipesim.T1500(), pipesim.Pipelined, pipesim.Options{Migration: true})
		if err != nil {
			return nil, err
		}

		rows = append(rows, Fig12Row{
			Dataset:      spec.Name,
			Tiles:        spec.Tiles,
			Polygons:     len(a) + len(b),
			Pairs:        cal.TotalPairs,
			PostGISMSecs: postgisM.Seconds(),
			SCCGSecs:     sccg.Seconds,
			Speedup:      metrics.Speedup(postgisM.Seconds(), sccg.Seconds),
			Similarity:   res.Similarity,
		})
	}
	return rows, nil
}

// Fig12GeoMean returns the geometric mean of per-dataset speedups, the
// paper's summary statistic (">18x").
func Fig12GeoMean(rows []Fig12Row) float64 {
	vals := make([]float64, len(rows))
	for i, r := range rows {
		vals[i] = r.Speedup
	}
	return metrics.GeoMean(vals)
}

// durationSeconds formats a seconds value as a duration for tables.
func durationSeconds(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
