package experiments_test

import (
	"testing"

	"repro/internal/clip"
	"repro/internal/experiments"
	"repro/internal/pathology"
	"repro/internal/pixelbox"
)

// smallRep returns a trimmed representative dataset so experiment tests run
// quickly on one core.
func smallRep(tiles int) *pathology.Dataset {
	spec := pathology.Representative()
	spec.Tiles = tiles
	return pathology.Generate(spec)
}

func TestFilteredPairsNonEmptyAndIntersecting(t *testing.T) {
	d := smallRep(2)
	pairs := experiments.FilteredPairs(d)
	if len(pairs) == 0 {
		t.Fatal("no filtered pairs")
	}
	for i, pr := range pairs {
		if !pr.P.MBR().Intersects(pr.Q.MBR()) {
			t.Fatalf("pair %d has disjoint MBRs", i)
		}
	}
}

func TestSweepAreasMatchesExactOverlay(t *testing.T) {
	d := smallRep(2)
	pairs := experiments.FilteredPairs(d)
	encoded := experiments.EncodePairs(pairs)
	got := experiments.SweepAreas(encoded)
	for i, pr := range pairs {
		inter := clip.IntersectionArea(pr.P, pr.Q)
		union := pr.P.Area() + pr.Q.Area() - inter
		if got[i].Intersection != inter || got[i].Union != union {
			t.Fatalf("pair %d: got %+v, want %d/%d", i, got[i], inter, union)
		}
	}
}

func TestScalePairs(t *testing.T) {
	d := smallRep(1)
	pairs := experiments.FilteredPairs(d)
	scaled := experiments.ScalePairs(pairs, 3)
	for i := range pairs {
		if scaled[i].P.Area() != pairs[i].P.Area()*9 {
			t.Fatalf("pair %d not scaled", i)
		}
	}
	same := experiments.ScalePairs(pairs, 1)
	if &same[0] != &pairs[0] {
		t.Fatal("SF1 should be a no-op")
	}
}

func TestCalibrateShape(t *testing.T) {
	d := smallRep(3)
	cal := experiments.Calibrate(d)
	if len(cal.Tiles) != 3 {
		t.Fatalf("tiles = %d", len(cal.Tiles))
	}
	if cal.ParseBytesPerSec <= 0 {
		t.Fatal("no parse throughput")
	}
	if cal.TotalPairs == 0 {
		t.Fatal("no pairs")
	}
	for i, tc := range cal.Tiles {
		if tc.ParseSec <= 0 || tc.BuildSec <= 0 || tc.CPUAggSec <= 0 {
			t.Fatalf("tile %d: non-positive CPU service times %+v", i, tc)
		}
		if tc.GPUAggSec <= 0 || tc.GPUParseSec <= 0 {
			t.Fatalf("tile %d: non-positive GPU service times %+v", i, tc)
		}
		// The GPU must aggregate far faster than a single CPU core.
		if tc.GPUAggSec >= tc.CPUAggSec {
			t.Fatalf("tile %d: GPU aggregation (%v) not faster than CPU (%v)", i, tc.GPUAggSec, tc.CPUAggSec)
		}
	}
}

func TestReplicateTiles(t *testing.T) {
	d := smallRep(2)
	cal := experiments.Calibrate(d)
	rep := experiments.ReplicateTiles(cal.Tiles, 5)
	if len(rep) != 10 {
		t.Fatalf("replicated to %d tiles", len(rep))
	}
	if rep[0] != rep[2] {
		t.Fatal("replication altered tile costs")
	}
}

func TestFig2Shape(t *testing.T) {
	d := smallRep(3)
	res, err := experiments.Fig2(d)
	if err != nil {
		t.Fatal(err)
	}
	opt := res.Optimized.Profile
	if frac := float64(opt.AreaOfIntersection) / float64(opt.Total()); frac < 0.5 {
		t.Fatalf("optimised Area_Of_Intersection fraction %v, want dominant", frac)
	}
	if res.Unoptimized.Profile.Total() <= opt.Total() {
		t.Fatal("unoptimised query should be slower")
	}
	if res.Unoptimized.Similarity != res.Optimized.Similarity {
		t.Fatal("query forms disagree on similarity")
	}
	if res.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestFig7Shape(t *testing.T) {
	d := smallRep(3)
	res := experiments.Fig7(d)
	cpuS, gpuBox := res.Speedups()
	if cpuS <= 0.5 {
		t.Fatalf("PixelBox-CPU-S speedup %v: should be in GEOS's ballpark or better", cpuS)
	}
	if gpuBox < 10 {
		t.Fatalf("PixelBox speedup %v: should be >=10x over GEOS", gpuBox)
	}
	if res.PixelBoxSecs >= res.PixelBoxCPUSSecs {
		t.Fatal("GPU not faster than single-core CPU")
	}
}

func TestFig8Shape(t *testing.T) {
	d := smallRep(2)
	pairs := experiments.FilteredPairs(d)
	rows := experiments.Fig8(pairs, 5)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	sf5 := rows[4]
	if !(sf5.PixelBoxSecs < sf5.NoSepSecs && sf5.NoSepSecs < sf5.PixelOnlySecs) {
		t.Fatalf("SF5 ordering violated: %+v", sf5)
	}
	// PixelOnly must degrade much faster than PixelBox across the sweep.
	pixelOnlyGrowth := rows[4].PixelOnlySecs / rows[0].PixelOnlySecs
	pixelBoxGrowth := rows[4].PixelBoxSecs / rows[0].PixelBoxSecs
	if pixelOnlyGrowth <= pixelBoxGrowth {
		t.Fatalf("PixelOnly growth %v not worse than PixelBox %v", pixelOnlyGrowth, pixelBoxGrowth)
	}
}

func TestFig9Shape(t *testing.T) {
	d := smallRep(2)
	pairs := experiments.FilteredPairs(d)
	rows := experiments.Fig9(pairs, []int{1, 5})
	for _, r := range rows {
		nbc, nbcur, nbcursm := r.Speedups()
		if nbc < 1 || nbcur < nbc || nbcursm < nbcur {
			t.Fatalf("SF%d ladder not monotone: %v %v %v", r.ScaleFactor, nbc, nbcur, nbcursm)
		}
		if nbcursm < 1.05 {
			t.Fatalf("SF%d full optimisation gain %v too small", r.ScaleFactor, nbcursm)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	d := smallRep(2)
	pairs := experiments.FilteredPairs(d)
	thresholds := []int{16, 512, 2048, 1 << 20}
	series := experiments.Fig10(pairs, 64, thresholds, []int{4})
	if len(series) != 1 || len(series[0].Points) != 4 {
		t.Fatal("series shape wrong")
	}
	best := series[0].Best()
	// The paper's sweet spot [n²/8, n²] = [512, 4096] must beat the
	// extremes at SF4.
	if best.Threshold == 16 || best.Threshold == 1<<20 {
		t.Fatalf("best threshold %d at an extreme", best.Threshold)
	}
}

func TestTable1Shape(t *testing.T) {
	d := smallRep(3)
	cal := experiments.Calibrate(d)
	res, err := experiments.Table1(d, cal)
	if err != nil {
		t.Fatal(err)
	}
	s, m, p := res.Speedups()
	if !(1 < s && s < m && m < p) {
		t.Fatalf("Table 1 ordering violated: %v %v %v", s, m, p)
	}
}

func TestFig11Shape(t *testing.T) {
	d := smallRep(3)
	cal := experiments.Calibrate(d)
	rows, err := experiments.Fig11(cal)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("configs = %d", len(rows))
	}
	// Config-III must migrate GPU -> CPU (the reversed direction).
	if rows[2].On.MigratedToCPU == 0 {
		t.Fatal("Config-III migrated nothing to CPUs")
	}
	// Config-I must migrate parser tasks to the GPU.
	if rows[0].On.MigratedToGPU == 0 {
		t.Fatal("Config-I migrated nothing to the GPU")
	}
}

func TestFig12SmallCorpus(t *testing.T) {
	specs := pathology.Corpus()[:2]
	for i := range specs {
		specs[i].Tiles = 3 // trim for test speed
	}
	rows, err := experiments.Fig12(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Speedup <= 1 {
			t.Fatalf("%s: SCCG not faster than PostGIS-M (%vx)", r.Dataset, r.Speedup)
		}
		if r.Similarity <= 0.3 || r.Similarity >= 1 {
			t.Fatalf("%s: implausible similarity %v", r.Dataset, r.Similarity)
		}
	}
	if gm := experiments.Fig12GeoMean(rows); gm <= 1 {
		t.Fatalf("geomean %v", gm)
	}
}

func TestGPUSecondsPositive(t *testing.T) {
	d := smallRep(1)
	pairs := experiments.FilteredPairs(d)
	if s := experiments.GPUSeconds(pairs, pixelbox.Config{}); s <= 0 {
		t.Fatalf("gpu seconds = %v", s)
	}
}
