// Package experiments contains one driver per table and figure of the
// paper's evaluation (§5), shared by cmd/bench and the repository's
// benchmark suite. Each driver returns a structured report whose rows mirror
// the paper's presentation; EXPERIMENTS.md records paper-vs-measured values.
//
// Time bases: CPU-side baselines (GEOS-style overlay, PixelBox-CPU, the
// mini-SDBMS) are measured wall-clock on the host; GPU numbers are modelled
// device seconds from the simulator; system-level schemes run on the
// discrete-event model with service times calibrated from both (DESIGN.md
// §1 documents the substitutions).
package experiments

import (
	"time"

	"repro/internal/geom"
	"repro/internal/gpu"
	"repro/internal/parser"
	"repro/internal/pathology"
	"repro/internal/pipesim"
	"repro/internal/pixelbox"
	"repro/internal/rtree"
	"repro/internal/sdbms"
	"repro/internal/wkb"
)

// FilteredPairs runs the filter path (index build + MBR join) over a
// dataset and returns the polygon-pair array, the unit of work for the
// algorithm experiments.
func FilteredPairs(d *pathology.Dataset) []pixelbox.Pair {
	var pairs []pixelbox.Pair
	for _, tp := range d.Pairs {
		pairs = append(pairs, tilePairs(tp)...)
	}
	return pairs
}

func tilePairs(tp pathology.TilePair) []pixelbox.Pair {
	ea := make([]rtree.Entry, len(tp.A))
	for i, p := range tp.A {
		ea[i] = rtree.Entry{MBR: p.MBR(), ID: int32(i)}
	}
	eb := make([]rtree.Entry, len(tp.B))
	for i, p := range tp.B {
		eb[i] = rtree.Entry{MBR: p.MBR(), ID: int32(i)}
	}
	joined, _ := rtree.Join(rtree.Build(ea, rtree.Options{}), rtree.Build(eb, rtree.Options{}), nil)
	pairs := make([]pixelbox.Pair, len(joined))
	for i, pr := range joined {
		pairs[i] = pixelbox.Pair{P: tp.A[pr.A], Q: tp.B[pr.B]}
	}
	return pairs
}

// ScalePairs scales every polygon's coordinates by factor, the paper's
// §5.2 stress methodology ("increase the polygon sizes by multiplying the
// coordinates of polygon vertices with a scale factor").
func ScalePairs(pairs []pixelbox.Pair, factor int32) []pixelbox.Pair {
	if factor == 1 {
		return pairs
	}
	out := make([]pixelbox.Pair, len(pairs))
	for i, pr := range pairs {
		out[i] = pixelbox.Pair{P: pr.P.Scale(factor), Q: pr.Q.Scale(factor)}
	}
	return out
}

// EncodedPair is a polygon pair in the SDBMS's serialized form.
type EncodedPair struct {
	P, Q []byte
}

// EncodePairs serializes pairs to WKB (done outside any timed region: the
// data sits in that form inside the database).
func EncodePairs(pairs []pixelbox.Pair) []EncodedPair {
	out := make([]EncodedPair, len(pairs))
	for i, pr := range pairs {
		out[i] = EncodedPair{P: wkb.Marshal(pr.P), Q: wkb.Marshal(pr.Q)}
	}
	return out
}

// SweepAreas computes areas for all pairs exactly as the optimised SDBMS
// query does per tuple: ST_Area(ST_Intersection(a,b)) plus two ST_Area
// calls, each deserializing its arguments per the PostGIS calling
// convention. It is the single-core GEOS baseline of Fig. 7.
func SweepAreas(encoded []EncodedPair) []pixelbox.AreaResult {
	out := make([]pixelbox.AreaResult, len(encoded))
	for i, pr := range encoded {
		inter, err := sdbms.STAreaOfIntersection(pr.P, pr.Q)
		if err != nil {
			panic(err)
		}
		areaP, err := sdbms.STArea(pr.P)
		if err != nil {
			panic(err)
		}
		areaQ, err := sdbms.STArea(pr.Q)
		if err != nil {
			panic(err)
		}
		out[i] = pixelbox.AreaResult{
			Intersection: inter,
			Union:        areaP + areaQ - inter,
		}
	}
	return out
}

// ReplicateTiles repeats a calibrated tile-cost workload n times, restoring
// the paper-scale tile counts (hundreds per dataset) that the ~50x-scaled
// synthetic corpus shrinks; steady-state pipeline behaviour needs the longer
// streams.
func ReplicateTiles(tiles []pipesim.TileCost, n int) []pipesim.TileCost {
	out := make([]pipesim.TileCost, 0, len(tiles)*n)
	for i := 0; i < n; i++ {
		out = append(out, tiles...)
	}
	return out
}

// GPUSeconds runs a PixelBox variant over pairs on a fresh simulated GTX
// 580 and returns the modelled device time including transfers.
func GPUSeconds(pairs []pixelbox.Pair, cfg pixelbox.Config) float64 {
	dev := gpu.NewDevice(gpu.GTX580())
	_, launch, xfer := pixelbox.RunGPU(dev, pairs, cfg)
	return launch.DeviceSeconds + xfer
}

// Calibration carries the per-tile service times feeding the system-level
// simulations, plus aggregate host throughput numbers.
type Calibration struct {
	Tiles []pipesim.TileCost
	// ParseBytesPerSec is the measured single-core parser throughput.
	ParseBytesPerSec float64
	// TotalPairs across all tiles.
	TotalPairs int
}

// measure runs f three times and returns the minimum wall-clock seconds,
// suppressing scheduling noise in sub-millisecond service-time calibration.
func measure(f func()) float64 {
	best := -1.0
	for i := 0; i < 3; i++ {
		start := time.Now()
		f()
		if d := time.Since(start).Seconds(); best < 0 || d < best {
			best = d
		}
	}
	return best
}

// Calibrate measures the per-tile pipeline service times for a dataset:
// parse/build/filter and PixelBox-CPU wall-clock on the host core, PixelBox
// device time from the simulator, and GPU-Parser time at parity with a
// 4-worker CPU parser stage (the paper's comparability finding).
func Calibrate(d *pathology.Dataset) Calibration {
	var cal Calibration
	var totalBytes int64
	var totalParse float64
	var allPairs []pixelbox.Pair
	for _, tp := range d.Pairs {
		rawA := parser.Encode(tp.A)
		rawB := parser.Encode(tp.B)

		var pa, pb []*geom.Polygon
		parseSec := measure(func() {
			pa, _ = parser.Parse(rawA)
			pb, _ = parser.Parse(rawB)
		})

		var ta, tb *rtree.Tree
		buildSec := measure(func() {
			ea := make([]rtree.Entry, len(pa))
			for i, p := range pa {
				ea[i] = rtree.Entry{MBR: p.MBR(), ID: int32(i)}
			}
			eb := make([]rtree.Entry, len(pb))
			for i, p := range pb {
				eb[i] = rtree.Entry{MBR: p.MBR(), ID: int32(i)}
			}
			ta = rtree.Build(ea, rtree.Options{})
			tb = rtree.Build(eb, rtree.Options{})
		})

		var joined []rtree.Pair
		filterSec := measure(func() {
			joined, _ = rtree.Join(ta, tb, nil)
		})

		pairs := make([]pixelbox.Pair, len(joined))
		for i, pr := range joined {
			pairs[i] = pixelbox.Pair{P: pa[pr.A], Q: pb[pr.B]}
		}
		allPairs = append(allPairs, pairs...)

		cpuSec := measure(func() {
			pixelbox.RunCPU(pairs, pixelbox.CPUConfig{})
		})

		cal.Tiles = append(cal.Tiles, pipesim.TileCost{
			ParseSec:    parseSec,
			BuildSec:    buildSec,
			FilterSec:   filterSec,
			CPUAggSec:   cpuSec,
			GPUParseSec: parseSec / 4,
			Pairs:       len(pairs),
		})
		cal.TotalPairs += len(pairs)
		totalBytes += int64(len(rawA) + len(rawB))
		totalParse += parseSec
	}
	if totalParse > 0 {
		cal.ParseBytesPerSec = float64(totalBytes) / totalParse
	}
	// GPU aggregation is calibrated at batch scale — the pipelined
	// aggregator launches batches of many tiles, which run at much better
	// occupancy than a per-tile launch would — and apportioned back to
	// tiles by pair count.
	dev := gpu.NewDevice(gpu.GTX580())
	_, launch, _ := pixelbox.RunGPU(dev, allPairs, pixelbox.Config{})
	batchSec := launch.DeviceSeconds - gpu.GTX580().LaunchOverhead
	if batchSec < 0 {
		batchSec = 0
	}
	if cal.TotalPairs > 0 {
		perPair := batchSec / float64(cal.TotalPairs)
		for i := range cal.Tiles {
			cal.Tiles[i].GPUAggSec = perPair * float64(cal.Tiles[i].Pairs)
		}
	}
	return cal
}
