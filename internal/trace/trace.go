// Package trace records per-job stage spans on monotonic clocks.
//
// A Recorder is created when a job enters the system (HTTP handler or
// scheduler submit) and threaded through server → sched → pipeline → store.
// Each layer adds named spans (queue, pin, materialize, shard, parse,
// execute, merge, persist); the recorder snapshots into a wire-form Trace
// attached to the job report and served by GET /jobs/{id}/trace.
//
// All offsets derive from time.Time values that carry Go's monotonic
// reading, so spans are immune to wall-clock steps; the wall-clock
// StartedAt is informational only.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Recorder accumulates spans for one job. Safe for concurrent use — shards
// and executor slots add spans from their own goroutines.
type Recorder struct {
	mu    sync.Mutex
	ctx   Context   // propagation identity; zero on untraced local jobs
	base  time.Time // monotonic anchor; offsets are span.start - base
	wall  time.Time // wall clock at creation, for display only
	end   time.Time // zero until Finish; freezes TotalMs
	spans []span
}

type span struct {
	name   string
	detail string
	peer   string
	start  time.Duration
	dur    time.Duration
}

// NewRecorder anchors a recorder at now with a fresh trace identity.
func NewRecorder() *Recorder {
	now := time.Now()
	return &Recorder{ctx: NewContext(), base: now, wall: now}
}

// NewRecorderFrom anchors a child recorder at now under an incoming trace
// context: the remote caller's trace ID is kept so every node's spans fold
// into one logical trace, while the span ID is re-rolled for this hop. A
// zero context (no caller, or an unparseable header) mints a fresh identity
// instead — every recorder can propagate.
func NewRecorderFrom(ctx Context) *Recorder {
	now := time.Now()
	if ctx.Zero() {
		ctx = NewContext()
	} else {
		ctx = ctx.Child()
	}
	return &Recorder{ctx: ctx, base: now, wall: now}
}

// Context returns the recorder's propagation identity (zero for recorders
// predating the context, e.g. zero-value Recorders in tests).
func (r *Recorder) Context() Context {
	if r == nil {
		return Context{}
	}
	return r.ctx
}

// Add records a span from start to end. Spans whose end precedes their start
// are clamped to zero duration rather than dropped, so a misordered caller
// still shows up in the trace (visibly, at 0ms) instead of vanishing.
func (r *Recorder) Add(name, detail string, start, end time.Time) {
	if r == nil {
		return
	}
	d := end.Sub(start)
	if d < 0 {
		d = 0
	}
	off := start.Sub(r.base)
	if off < 0 {
		off = 0
	}
	r.mu.Lock()
	r.spans = append(r.spans, span{name: name, detail: detail, start: off, dur: d})
	r.mu.Unlock()
}

// AddDuration records a span of length d ending now-ish whose start is
// inferred from start. Convenience for callers that timed a block with a
// single time.Since.
func (r *Recorder) AddDuration(name, detail string, start time.Time, d time.Duration) {
	if r == nil {
		return
	}
	r.Add(name, detail, start, start.Add(d))
}

// Finish freezes the trace's total at now: later Snapshots report TotalMs
// up to the first Finish call, not a still-running clock, so a finished
// job's trace is stable across reads. Spans added after Finish (persist,
// cache writes) still appear and may extend past TotalMs.
func (r *Recorder) Finish() {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.end.IsZero() {
		r.end = time.Now()
	}
	r.mu.Unlock()
}

// Span is one recorded stage in wire form. Offsets and durations are
// fractional milliseconds. Peer names the node whose recorder produced the
// span when it was spliced in from a cross-node call; empty for local spans.
type Span struct {
	Name       string  `json:"name"`
	Detail     string  `json:"detail,omitempty"`
	Peer       string  `json:"peer,omitempty"`
	StartMs    float64 `json:"start_ms"`
	DurationMs float64 `json:"duration_ms"`
}

// Trace is the wire form attached to job reports and served over HTTP.
type Trace struct {
	TraceID   string  `json:"trace_id,omitempty"`
	StartedAt string  `json:"started_at"`
	TotalMs   float64 `json:"total_ms"`
	Spans     []Span  `json:"spans"`
}

// Snapshot renders the spans recorded so far, sorted by start offset (ties
// by name), with TotalMs measured from the anchor to now. Safe to call on a
// live recorder; later snapshots include later spans (e.g. persist, added
// after the job report is finalized).
func (r *Recorder) Snapshot() *Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	spans := make([]span, len(r.spans))
	copy(spans, r.spans)
	end := r.end
	r.mu.Unlock()

	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].start != spans[j].start {
			return spans[i].start < spans[j].start
		}
		return spans[i].name < spans[j].name
	})
	total := time.Since(r.base)
	if !end.IsZero() {
		total = end.Sub(r.base)
	}
	t := &Trace{
		TraceID:   r.ctx.TraceIDString(),
		StartedAt: r.wall.UTC().Format(time.RFC3339Nano),
		TotalMs:   ms(total),
		Spans:     make([]Span, len(spans)),
	}
	for i, s := range spans {
		t.Spans[i] = Span{Name: s.name, Detail: s.detail, Peer: s.peer, StartMs: ms(s.start), DurationMs: ms(s.dur)}
	}
	return t
}

// Splice re-anchors a remote trace's spans inside the local call window
// [start, end] and tags each with the peer's address. Remote offsets are
// relative to the remote recorder's own anchor; clocks across nodes are not
// comparable, so the only sound placement is "inside the local window that
// covered the call": each remote offset is applied from the local start and
// clamped so no spliced span extends past the window. Spans already carrying
// a peer tag (the remote side itself spliced a third node) keep their tag.
func (r *Recorder) Splice(peer string, remote *Trace, start, end time.Time) {
	if r == nil || remote == nil || len(remote.Spans) == 0 {
		return
	}
	window := end.Sub(start)
	if window < 0 {
		window = 0
	}
	base := start.Sub(r.base)
	if base < 0 {
		base = 0
	}
	r.mu.Lock()
	for _, sp := range remote.Spans {
		off := time.Duration(sp.StartMs * float64(time.Millisecond))
		dur := time.Duration(sp.DurationMs * float64(time.Millisecond))
		if off < 0 {
			off = 0
		}
		if off > window {
			off = window
		}
		if dur < 0 {
			dur = 0
		}
		if off+dur > window {
			dur = window - off
		}
		p := sp.Peer
		if p == "" {
			p = peer
		}
		r.spans = append(r.spans, span{name: sp.Name, detail: sp.Detail, peer: p, start: base + off, dur: dur})
	}
	r.mu.Unlock()
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Summary is a per-stage rollup of a trace: total duration per span name.
// Matrix runs attach one Summary per cell so a K×K status stays compact.
type Summary struct {
	TotalMs float64            `json:"total_ms"`
	Stages  map[string]float64 `json:"stages"`
}

// String renders the summary as "total=<ms> <stage>=<ms> ..." with stages
// sorted by name, so logfmt output stays deterministic and greppable.
func (s *Summary) String() string {
	if s == nil {
		return ""
	}
	names := make([]string, 0, len(s.Stages))
	for k := range s.Stages {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "total=%.3fms", s.TotalMs)
	for _, k := range names {
		fmt.Fprintf(&b, " %s=%.3fms", k, s.Stages[k])
	}
	return b.String()
}

// Summarize folds a trace into per-stage totals. Returns nil for nil input.
func Summarize(t *Trace) *Summary {
	if t == nil {
		return nil
	}
	s := &Summary{TotalMs: t.TotalMs, Stages: make(map[string]float64, 8)}
	for _, sp := range t.Spans {
		s.Stages[sp.Name] += sp.DurationMs
	}
	return s
}
