package trace

// Cross-node propagation: a W3C-traceparent-style context travels on every
// /internal/* request so the remote side can run a child Recorder under the
// same trace ID and return its spans inline for the caller to Splice. The
// wire form is the standard `00-<32 hex trace-id>-<16 hex span-id>-<2 hex
// flags>`; only version 00 is produced or accepted.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"strings"
)

// Header is the HTTP request header carrying the trace context, and
// ResponseHeader is where byte-stream internal endpoints (manifest/segment)
// return their compact JSON trace, since their bodies are raw data.
const (
	Header         = "Traceparent"
	ResponseHeader = "X-Sccg-Trace"
)

// Context is a parsed traceparent: the 16-byte trace ID shared by every hop
// of one logical operation and the 8-byte span ID of the current hop.
type Context struct {
	TraceID [16]byte
	SpanID  [8]byte
	Flags   byte
}

// Zero reports whether the context carries no identity (the all-zero trace
// ID is invalid per the traceparent spec and doubles as "absent" here).
func (c Context) Zero() bool { return c.TraceID == [16]byte{} }

// TraceIDString renders the trace ID as 32 lowercase hex digits, or "" for
// a zero context.
func (c Context) TraceIDString() string {
	if c.Zero() {
		return ""
	}
	return hex.EncodeToString(c.TraceID[:])
}

// Traceparent renders the context in wire form, or "" for a zero context.
func (c Context) Traceparent() string {
	if c.Zero() {
		return ""
	}
	var b strings.Builder
	b.Grow(55)
	b.WriteString("00-")
	b.WriteString(hex.EncodeToString(c.TraceID[:]))
	b.WriteByte('-')
	b.WriteString(hex.EncodeToString(c.SpanID[:]))
	b.WriteByte('-')
	b.WriteString(hex.EncodeToString([]byte{c.Flags}))
	return b.String()
}

// Child keeps the trace ID and rolls a fresh span ID for the next hop. A
// zero context stays zero rather than minting a partial identity.
func (c Context) Child() Context {
	if c.Zero() {
		return c
	}
	child := c
	fill(child.SpanID[:])
	return child
}

// NewContext mints a fresh trace identity with the sampled flag set.
func NewContext() Context {
	var c Context
	fill(c.TraceID[:])
	fill(c.SpanID[:])
	c.Flags = 0x01
	return c
}

func fill(b []byte) {
	if _, err := rand.Read(b); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; for trace IDs
		// a fixed fallback only degrades observability, never correctness.
		for i := range b {
			b[i] = 0xff
		}
	}
}

// ParseTraceparent parses a version-00 traceparent header. It returns a zero
// Context (ok=false) for anything malformed: wrong length or structure,
// non-hex digits, unsupported version, or the all-zero trace or span ID the
// spec forbids. Never panics — FuzzTraceparent holds it to that.
func ParseTraceparent(s string) (Context, bool) {
	// 2 + 1 + 32 + 1 + 16 + 1 + 2
	if len(s) != 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return Context{}, false
	}
	if s[0] != '0' || s[1] != '0' {
		return Context{}, false
	}
	var c Context
	if !hexDecode(c.TraceID[:], s[3:35]) || !hexDecode(c.SpanID[:], s[36:52]) {
		return Context{}, false
	}
	var flags [1]byte
	if !hexDecode(flags[:], s[53:55]) {
		return Context{}, false
	}
	c.Flags = flags[0]
	if c.TraceID == [16]byte{} || c.SpanID == [8]byte{} {
		return Context{}, false
	}
	return c, true
}

// hexDecode fills dst from exactly len(dst)*2 lowercase-or-uppercase hex
// digits, reporting false on any non-hex byte.
func hexDecode(dst []byte, s string) bool {
	if len(s) != len(dst)*2 {
		return false
	}
	_, err := hex.Decode(dst, []byte(s))
	return err == nil
}

// maxHeaderTrace bounds a header-carried trace; internal byte-stream
// endpoints attach only a handful of spans, so anything bigger is bogus.
const maxHeaderTrace = 64 << 10

// EncodeHeaderTrace renders a trace as one compact JSON line for the
// X-Sccg-Trace response header on byte-stream internal endpoints (manifest
// and segment serving, whose bodies are raw data). Empty traces render "".
func EncodeHeaderTrace(t *Trace) string {
	if t == nil || len(t.Spans) == 0 {
		return ""
	}
	raw, err := json.Marshal(t)
	if err != nil || len(raw) > maxHeaderTrace {
		return ""
	}
	return string(raw)
}

// DecodeHeaderTrace parses an X-Sccg-Trace header value; nil for absent,
// oversized, or malformed input — a peer's broken trace must never fail the
// data transfer it rode on.
func DecodeHeaderTrace(s string) *Trace {
	if s == "" || len(s) > maxHeaderTrace {
		return nil
	}
	var t Trace
	if err := json.Unmarshal([]byte(s), &t); err != nil {
		return nil
	}
	if len(t.Spans) == 0 {
		return nil
	}
	return &t
}

type ctxKey struct{}

// WithContext stashes a trace context in a context.Context so the cluster
// transport can inject the traceparent header without every call site
// threading it explicitly.
func WithContext(ctx context.Context, tc Context) context.Context {
	if tc.Zero() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, tc)
}

// FromContext recovers a stashed trace context; zero when absent.
func FromContext(ctx context.Context) Context {
	tc, _ := ctx.Value(ctxKey{}).(Context)
	return tc
}
