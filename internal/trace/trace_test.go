package trace

import (
	"sync"
	"testing"
	"time"
)

func TestRecorderSnapshot(t *testing.T) {
	r := NewRecorder()
	base := time.Now()
	r.Add("queue", "", base, base.Add(5*time.Millisecond))
	r.Add("execute", "slot0", base.Add(5*time.Millisecond), base.Add(25*time.Millisecond))
	r.Add("merge", "", base.Add(25*time.Millisecond), base.Add(30*time.Millisecond))

	tr := r.Snapshot()
	if len(tr.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(tr.Spans))
	}
	names := []string{"queue", "execute", "merge"}
	for i, want := range names {
		if tr.Spans[i].Name != want {
			t.Errorf("span[%d] = %q, want %q (sorted by start)", i, tr.Spans[i].Name, want)
		}
	}
	for i := 1; i < len(tr.Spans); i++ {
		if tr.Spans[i].StartMs < tr.Spans[i-1].StartMs {
			t.Errorf("spans not monotone: span[%d].start=%g < span[%d].start=%g",
				i, tr.Spans[i].StartMs, i-1, tr.Spans[i-1].StartMs)
		}
	}
	if tr.Spans[1].Detail != "slot0" {
		t.Errorf("detail = %q, want slot0", tr.Spans[1].Detail)
	}
	if tr.TotalMs <= 0 {
		t.Errorf("total_ms = %g, want > 0", tr.TotalMs)
	}
}

func TestRecorderClampsNegative(t *testing.T) {
	r := NewRecorder()
	now := time.Now()
	// End before start: clamped to zero duration, not dropped.
	r.Add("weird", "", now.Add(time.Second), now)
	// Start before the anchor: offset clamped to zero.
	r.Add("early", "", now.Add(-time.Hour), now)
	tr := r.Snapshot()
	if len(tr.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(tr.Spans))
	}
	for _, s := range tr.Spans {
		if s.StartMs < 0 || s.DurationMs < 0 {
			t.Errorf("span %q has negative offset/duration: %+v", s.Name, s)
		}
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				s := time.Now()
				r.Add("execute", "slot", s, s.Add(time.Microsecond))
			}
		}()
	}
	wg.Wait()
	if got := len(r.Snapshot().Spans); got != 1600 {
		t.Errorf("spans = %d, want 1600", got)
	}
}

func TestNilRecorder(t *testing.T) {
	var r *Recorder
	r.Add("x", "", time.Now(), time.Now()) // must not panic
	r.AddDuration("y", "", time.Now(), time.Second)
	if r.Snapshot() != nil {
		t.Error("nil recorder should snapshot to nil")
	}
}

func TestSummarize(t *testing.T) {
	tr := &Trace{
		TotalMs: 30,
		Spans: []Span{
			{Name: "execute", DurationMs: 10},
			{Name: "execute", DurationMs: 12},
			{Name: "merge", DurationMs: 3},
		},
	}
	s := Summarize(tr)
	if s.TotalMs != 30 || s.Stages["execute"] != 22 || s.Stages["merge"] != 3 {
		t.Errorf("summary = %+v", s)
	}
	if Summarize(nil) != nil {
		t.Error("Summarize(nil) should be nil")
	}
}
