package trace

import "testing"

// FuzzTraceparent holds the header parser to "never panic, and anything
// accepted round-trips byte-for-byte" — the property the cluster transport
// relies on when a peer (or anything spoofing one) sends arbitrary bytes.
func FuzzTraceparent(f *testing.F) {
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00")
	f.Add("")
	f.Add("00-00000000000000000000000000000000-0000000000000000-00")
	f.Add("ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	f.Add("00_4bf92f3577b34da6a3ce929d0e0e4736_00f067aa0ba902b7_01")
	f.Fuzz(func(t *testing.T, s string) {
		c, ok := ParseTraceparent(s)
		if !ok {
			if !c.Zero() {
				t.Fatalf("rejected input left identity %+v", c)
			}
			return
		}
		if c.Zero() {
			t.Fatal("accepted a zero trace ID")
		}
		wire := c.Traceparent()
		re, ok2 := ParseTraceparent(wire)
		if !ok2 || re != c {
			t.Fatalf("round trip diverged: %q -> %+v -> %q -> %+v (ok=%v)", s, c, wire, re, ok2)
		}
	})
}
