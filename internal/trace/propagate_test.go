package trace

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestContextRoundTrip(t *testing.T) {
	c := NewContext()
	if c.Zero() {
		t.Fatal("fresh context is zero")
	}
	wire := c.Traceparent()
	if len(wire) != 55 || !strings.HasPrefix(wire, "00-") {
		t.Fatalf("wire form %q", wire)
	}
	got, ok := ParseTraceparent(wire)
	if !ok || got != c {
		t.Fatalf("round trip: %+v ok=%v, want %+v", got, ok, c)
	}
	if got.TraceIDString() != wire[3:35] {
		t.Fatalf("trace id %q vs wire %q", got.TraceIDString(), wire)
	}
}

func TestChildKeepsTraceID(t *testing.T) {
	c := NewContext()
	kid := c.Child()
	if kid.TraceID != c.TraceID {
		t.Fatal("child changed the trace ID")
	}
	if kid.SpanID == c.SpanID {
		t.Fatal("child kept the parent span ID")
	}
	var zero Context
	if !zero.Child().Zero() {
		t.Fatal("zero context minted a child identity")
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	valid := NewContext().Traceparent()
	bad := []string{
		"",
		"00",
		valid[:54],
		valid + "0",
		"01" + valid[2:], // unsupported version
		"00-00000000000000000000000000000000-" + valid[36:], // zero trace id
		valid[:36] + "0000000000000000" + valid[52:],        // zero span id
		strings.Replace(valid, "-", "_", 1),                 // wrong separator
		valid[:3] + "zz" + valid[5:],                        // non-hex
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("accepted %q", s)
		}
	}
}

func TestContextCarrier(t *testing.T) {
	if !FromContext(context.Background()).Zero() {
		t.Fatal("empty context carried an identity")
	}
	tc := NewContext()
	ctx := WithContext(context.Background(), tc)
	if got := FromContext(ctx); got != tc {
		t.Fatalf("carried %+v, want %+v", got, tc)
	}
	if WithContext(context.Background(), Context{}) != context.Background() {
		t.Fatal("zero context allocated a value")
	}
}

func TestSplice(t *testing.T) {
	rec := NewRecorder()
	start := time.Now()
	end := start.Add(100 * time.Millisecond)
	remote := &Trace{Spans: []Span{
		{Name: "materialize", StartMs: 10, DurationMs: 20},
		{Name: "execute", StartMs: 50, DurationMs: 500}, // overruns the window
		{Name: "third", Peer: "http://other:1", StartMs: 0, DurationMs: 5},
	}}
	rec.Splice("http://peer:1", remote, start, end)
	tr := rec.Snapshot()
	if len(tr.Spans) != 3 {
		t.Fatalf("spliced %d spans", len(tr.Spans))
	}
	if tr.TraceID == "" {
		t.Fatal("snapshot lost the trace ID")
	}
	windowEnd := ms(end.Sub(rec.base))
	for _, sp := range tr.Spans {
		if sp.Peer == "" {
			t.Fatalf("span %q lost its peer tag", sp.Name)
		}
		if sp.StartMs+sp.DurationMs > windowEnd+0.001 {
			t.Fatalf("span %q extends past the call window: %v+%v > %v", sp.Name, sp.StartMs, sp.DurationMs, windowEnd)
		}
	}
	// A third-node tag survives re-splicing.
	for _, sp := range tr.Spans {
		if sp.Name == "third" && sp.Peer != "http://other:1" {
			t.Fatalf("nested peer tag overwritten: %q", sp.Peer)
		}
	}
	// Nil safety.
	var nilRec *Recorder
	nilRec.Splice("p", remote, start, end)
	rec.Splice("p", nil, start, end)
}
