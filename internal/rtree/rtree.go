// Package rtree implements a Hilbert R-tree over polygon MBRs. The SCCG
// pipeline's builder stage bulk-loads one tree per polygon file (paper §4.1:
// "Since polygons are small, Hilbert R-Tree is used to accelerate index
// building"), and the filter stage runs a pairwise MBR join between the two
// trees of a tile to produce the candidate polygon-pair array consumed by the
// aggregator.
package rtree

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/hilbert"
)

// DefaultFanout is the default number of entries per node. Hilbert R-trees
// achieve near-100% node utilisation under bulk loading, so a moderate
// fanout keeps trees shallow without hurting packing.
const DefaultFanout = 16

// hilbertOrder is the order of the Hilbert curve used to sort entries; 16
// bits per axis covers tile coordinate spaces up to 65536 pixels.
const hilbertOrder = 16

// Entry is one indexed item: an MBR plus the caller's identifier for the
// underlying polygon (typically its index in the tile's polygon slice).
type Entry struct {
	MBR geom.MBR
	ID  int32
}

type node struct {
	mbr      geom.MBR
	children []*node // nil for leaves
	entries  []Entry // nil for internal nodes
}

// Tree is a bulk-loaded, read-only Hilbert R-tree.
type Tree struct {
	root   *node
	fanout int
	size   int
	// Stats filled during construction, consumed by the cost models.
	Height int
	Nodes  int
}

// Options configures tree construction.
type Options struct {
	// Fanout is the maximum entries per node; DefaultFanout when zero.
	Fanout int
}

// Build bulk-loads a Hilbert R-tree from entries using the Kamel–Faloutsos
// packing method: sort by the Hilbert value of each MBR centre, pack runs of
// `fanout` entries into leaves, then build upper levels the same way.
// The input slice is sorted in place.
func Build(entries []Entry, opts Options) *Tree {
	fanout := opts.Fanout
	if fanout <= 0 {
		fanout = DefaultFanout
	}
	t := &Tree{fanout: fanout, size: len(entries)}
	if len(entries) == 0 {
		return t
	}
	// Precompute each entry's Hilbert key once; recomputing it inside the
	// sort comparator would cost O(n log n) curve evaluations.
	keys := make([]uint64, len(entries))
	for i := range entries {
		keys[i] = hilbertKey(entries[i].MBR)
	}
	order := make([]int, len(entries))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return keys[order[i]] < keys[order[j]] })
	sorted := make([]Entry, len(entries))
	for i, idx := range order {
		sorted[i] = entries[idx]
	}
	copy(entries, sorted)
	// Pack leaves.
	level := make([]*node, 0, (len(entries)+fanout-1)/fanout)
	for i := 0; i < len(entries); i += fanout {
		j := i + fanout
		if j > len(entries) {
			j = len(entries)
		}
		leaf := &node{entries: entries[i:j:j]}
		leaf.mbr = geom.EmptyMBR()
		for _, e := range leaf.entries {
			leaf.mbr = leaf.mbr.Union(e.MBR)
		}
		level = append(level, leaf)
	}
	t.Nodes += len(level)
	t.Height = 1
	// Build upper levels until a single root remains.
	for len(level) > 1 {
		next := make([]*node, 0, (len(level)+fanout-1)/fanout)
		for i := 0; i < len(level); i += fanout {
			j := i + fanout
			if j > len(level) {
				j = len(level)
			}
			n := &node{children: level[i:j:j]}
			n.mbr = geom.EmptyMBR()
			for _, c := range n.children {
				n.mbr = n.mbr.Union(c.mbr)
			}
			next = append(next, n)
		}
		level = next
		t.Nodes += len(level)
		t.Height++
	}
	t.root = level[0]
	return t
}

// hilbertKey maps an MBR to the Hilbert value of its centre. Centres are
// doubled to stay integral; coordinates are clamped into the curve's grid.
func hilbertKey(m geom.MBR) uint64 {
	cx, cy := m.Center() // doubled coordinates
	x := clampGrid(cx)
	y := clampGrid(cy)
	return hilbert.XY2D(hilbertOrder, x, y)
}

func clampGrid(v int64) uint32 {
	if v < 0 {
		return 0
	}
	const maxGrid = 1<<hilbertOrder - 1
	if v > maxGrid {
		return maxGrid
	}
	return uint32(v)
}

// Len returns the number of indexed entries.
func (t *Tree) Len() int { return t.size }

// Root MBR of the whole tree; empty when the tree is empty.
func (t *Tree) RootMBR() geom.MBR {
	if t.root == nil {
		return geom.MBR{}
	}
	return t.root.mbr
}

// SearchStats counts the node and entry tests performed by queries; the
// SDBMS profiler charges index-search time from these.
type SearchStats struct {
	NodesVisited  int
	EntriesTested int
}

// Search appends to dst the IDs of all entries whose MBR intersects the
// query window, returning the extended slice and the traversal statistics.
func (t *Tree) Search(window geom.MBR, dst []int32) ([]int32, SearchStats) {
	var st SearchStats
	if t.root == nil {
		return dst, st
	}
	dst = searchNode(t.root, window, dst, &st)
	return dst, st
}

func searchNode(n *node, window geom.MBR, dst []int32, st *SearchStats) []int32 {
	st.NodesVisited++
	if n.entries != nil {
		for _, e := range n.entries {
			st.EntriesTested++
			if e.MBR.Intersects(window) {
				dst = append(dst, e.ID)
			}
		}
		return dst
	}
	for _, c := range n.children {
		if c.mbr.Intersects(window) {
			dst = searchNode(c, window, dst, st)
		}
	}
	return dst
}

// Pair is a candidate polygon pair produced by the spatial join: indices of
// entries from the two joined trees whose MBRs intersect.
type Pair struct {
	A, B int32
}

// Join performs a pairwise MBR spatial join between two trees, appending all
// (a.ID, b.ID) pairs with intersecting MBRs to dst. This implements the
// filter stage of the pipeline (paper §4.1, stage 3).
func Join(a, b *Tree, dst []Pair) ([]Pair, SearchStats) {
	var st SearchStats
	if a.root == nil || b.root == nil {
		return dst, st
	}
	dst = joinNodes(a.root, b.root, dst, &st)
	return dst, st
}

func joinNodes(x, y *node, dst []Pair, st *SearchStats) []Pair {
	if !x.mbr.Intersects(y.mbr) {
		return dst
	}
	st.NodesVisited++
	switch {
	case x.entries != nil && y.entries != nil:
		for _, ea := range x.entries {
			if !ea.MBR.Intersects(y.mbr) {
				continue
			}
			for _, eb := range y.entries {
				st.EntriesTested++
				if ea.MBR.Intersects(eb.MBR) {
					dst = append(dst, Pair{A: ea.ID, B: eb.ID})
				}
			}
		}
	case x.entries != nil: // descend y
		for _, c := range y.children {
			dst = joinNodes(x, c, dst, st)
		}
	case y.entries != nil: // descend x
		for _, c := range x.children {
			dst = joinNodes(c, y, dst, st)
		}
	default:
		for _, cx := range x.children {
			for _, cy := range y.children {
				dst = joinNodes(cx, cy, dst, st)
			}
		}
	}
	return dst
}
