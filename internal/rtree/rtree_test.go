package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func randEntries(rng *rand.Rand, n int, space int32) []Entry {
	entries := make([]Entry, n)
	for i := range entries {
		x := rng.Int31n(space)
		y := rng.Int31n(space)
		w := 1 + rng.Int31n(16)
		h := 1 + rng.Int31n(16)
		entries[i] = Entry{MBR: geom.MBR{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}, ID: int32(i)}
	}
	return entries
}

func TestEmptyTree(t *testing.T) {
	tr := Build(nil, Options{})
	if tr.Len() != 0 {
		t.Fatal("empty tree has entries")
	}
	ids, _ := tr.Search(geom.MBR{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}, nil)
	if len(ids) != 0 {
		t.Fatal("empty tree returned results")
	}
	other := Build(randEntries(rand.New(rand.NewSource(1)), 10, 100), Options{})
	pairs, _ := Join(tr, other, nil)
	if len(pairs) != 0 {
		t.Fatal("join with empty tree returned pairs")
	}
}

func TestSearchMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	entries := randEntries(rng, 500, 400)
	// Build sorts entries in place; keep a copy for the oracle.
	oracle := make([]Entry, len(entries))
	copy(oracle, entries)
	tr := Build(entries, Options{})
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for trial := 0; trial < 50; trial++ {
		x := rng.Int31n(400)
		y := rng.Int31n(400)
		window := geom.MBR{MinX: x, MinY: y, MaxX: x + 1 + rng.Int31n(60), MaxY: y + 1 + rng.Int31n(60)}
		got, _ := tr.Search(window, nil)
		var want []int32
		for _, e := range oracle {
			if e.MBR.Intersects(window) {
				want = append(want, e.ID)
			}
		}
		sortIDs(got)
		sortIDs(want)
		if !equalIDs(got, want) {
			t.Fatalf("window %v: got %v, want %v", window, got, want)
		}
	}
}

func TestJoinMatchesNestedLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ea := randEntries(rng, 300, 300)
	eb := randEntries(rng, 280, 300)
	oa := make([]Entry, len(ea))
	ob := make([]Entry, len(eb))
	copy(oa, ea)
	copy(ob, eb)
	ta := Build(ea, Options{})
	tb := Build(eb, Options{})
	got, st := Join(ta, tb, nil)
	var want []Pair
	for _, a := range oa {
		for _, b := range ob {
			if a.MBR.Intersects(b.MBR) {
				want = append(want, Pair{A: a.ID, B: b.ID})
			}
		}
	}
	sortPairs(got)
	sortPairs(want)
	if len(got) != len(want) {
		t.Fatalf("join size %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("pair %d: got %v, want %v", i, got[i], want[i])
		}
	}
	// The join must prune: far fewer entry tests than the full cross
	// product.
	if st.EntriesTested >= len(oa)*len(ob) {
		t.Fatalf("join did not prune: %d tests", st.EntriesTested)
	}
}

func TestTreeShape(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	entries := randEntries(rng, 1000, 1000)
	tr := Build(entries, Options{Fanout: 10})
	// 1000 leaves entries / 10 = 100 leaves, /10 = 10 nodes, /10 = 1 root:
	// height 3, 111 nodes.
	if tr.Height != 3 {
		t.Fatalf("height = %d, want 3", tr.Height)
	}
	if tr.Nodes != 111 {
		t.Fatalf("nodes = %d, want 111", tr.Nodes)
	}
	if tr.RootMBR().IsEmpty() {
		t.Fatal("root MBR empty")
	}
}

func TestSingleEntry(t *testing.T) {
	tr := Build([]Entry{{MBR: geom.MBR{MinX: 5, MinY: 5, MaxX: 7, MaxY: 7}, ID: 42}}, Options{})
	got, _ := tr.Search(geom.MBR{MinX: 6, MinY: 6, MaxX: 8, MaxY: 8}, nil)
	if len(got) != 1 || got[0] != 42 {
		t.Fatalf("got %v", got)
	}
	got, _ = tr.Search(geom.MBR{MinX: 8, MinY: 8, MaxX: 9, MaxY: 9}, nil)
	if len(got) != 0 {
		t.Fatalf("miss returned %v", got)
	}
}

func sortIDs(ids []int32) { sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] }) }
func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].A != ps[j].A {
			return ps[i].A < ps[j].A
		}
		return ps[i].B < ps[j].B
	})
}
