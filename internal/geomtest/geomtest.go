// Package geomtest provides shared helpers for property-based testing of
// the geometry, overlay and PixelBox packages: random rectilinear polygon
// generation and brute-force pixel-counting oracles.
package geomtest

import (
	"math/rand"

	"repro/internal/clip"
	"repro/internal/geom"
)

// RandomPolygon generates a random simple rectilinear polygon whose MBR fits
// within [0, size) x [0, size): the union of a few random rectangles, with
// holes filled, traced into its largest boundary ring. Returns nil rarely,
// when the random region degenerates; callers should retry.
func RandomPolygon(rng *rand.Rand, size int32) *geom.Polygon {
	if size < 4 {
		size = 4
	}
	nRects := 1 + rng.Intn(5)
	// Anchor rectangles around a common centre so their union is usually
	// connected.
	cx := 1 + rng.Int31n(size-2)
	cy := 1 + rng.Int31n(size-2)
	region := make([]geom.MBR, 0, nRects)
	for i := 0; i < nRects; i++ {
		w := 1 + rng.Int31n(size/2)
		h := 1 + rng.Int31n(size/2)
		x0 := cx - rng.Int31n(w+1)
		y0 := cy - rng.Int31n(h+1)
		if x0 < 0 {
			x0 = 0
		}
		if y0 < 0 {
			y0 = 0
		}
		x1, y1 := x0+w, y0+h
		if x1 > size {
			x1 = size
		}
		if y1 > size {
			y1 = size
		}
		if x1 <= x0 || y1 <= y0 {
			continue
		}
		region = append(region, geom.MBR{MinX: x0, MinY: y0, MaxX: x1, MaxY: y1})
	}
	if len(region) == 0 {
		return nil
	}
	// Normalise the overlapping rectangles into a disjoint cover, pick the
	// largest boundary ring, and fill its holes by re-tracing only the
	// outer ring.
	disjoint := disjointCover(region)
	rings := clip.RegionToRings(disjoint)
	var best *clip.Ring
	for i := range rings {
		if rings[i].IsHole() {
			continue
		}
		if best == nil || rings[i].SignedArea > best.SignedArea {
			best = &rings[i]
		}
	}
	if best == nil {
		return nil
	}
	p, err := best.Polygon()
	if err != nil {
		return nil
	}
	return p
}

// disjointCover converts possibly-overlapping rectangles into a disjoint
// rectangle cover of their union by folding them together pairwise with the
// union overlay.
func disjointCover(rects []geom.MBR) []geom.MBR {
	if len(rects) == 0 {
		return nil
	}
	acc := []geom.MBR{rects[0]}
	for _, r := range rects[1:] {
		a := regionPoly(acc)
		b := regionPoly([]geom.MBR{r})
		if a == nil || b == nil {
			continue
		}
		acc = clip.Overlay(a, b, clip.OpOr)
	}
	return acc
}

// regionPoly turns a disjoint rect cover into its largest outer polygon
// (good enough for test-data generation).
func regionPoly(rects []geom.MBR) *geom.Polygon {
	polys := clip.RegionToPolygons(rects)
	var best *geom.Polygon
	for _, p := range polys {
		if best == nil || p.Area() > best.Area() {
			best = p
		}
	}
	return best
}

// BruteIntersectionArea counts intersection pixels exhaustively via
// per-pixel ray casting: the oracle every exact algorithm must match.
func BruteIntersectionArea(p, q *geom.Polygon) int64 {
	w := p.MBR().Intersection(q.MBR())
	var n int64
	for y := w.MinY; y < w.MaxY; y++ {
		for x := w.MinX; x < w.MaxX; x++ {
			if p.ContainsPixel(x, y) && q.ContainsPixel(x, y) {
				n++
			}
		}
	}
	return n
}

// BruteArea counts a polygon's pixels exhaustively.
func BruteArea(p *geom.Polygon) int64 {
	m := p.MBR()
	var n int64
	for y := m.MinY; y < m.MaxY; y++ {
		for x := m.MinX; x < m.MaxX; x++ {
			if p.ContainsPixel(x, y) {
				n++
			}
		}
	}
	return n
}

// BruteUnionArea counts union pixels exhaustively.
func BruteUnionArea(p, q *geom.Polygon) int64 {
	w := p.MBR().Union(q.MBR())
	var n int64
	for y := w.MinY; y < w.MaxY; y++ {
		for x := w.MinX; x < w.MaxX; x++ {
			if p.ContainsPixel(x, y) || q.ContainsPixel(x, y) {
				n++
			}
		}
	}
	return n
}
