// Package clip is the GEOS-equivalent geometric computation library of the
// reproduction. It computes Boolean overlays (intersection, union, symmetric
// difference, difference) of simple rectilinear polygons with a plane-sweep
// algorithm, both as exact areas and as exact boundary polygon sets.
//
// The paper (§2.3) identifies the GEOS/CGAL-style sweepline overlay used by
// spatial databases as the bottleneck of cross-comparing queries: it is
// branch-intensive, allocation-heavy and inherently serial. This package
// plays that role faithfully — it is the single-core exact baseline that
// PixelBox is measured against (Fig. 7) and the correctness oracle that
// PixelBox results are validated against (§3.4).
package clip

import (
	"fmt"
	"sort"

	"repro/internal/geom"
)

// Op selects the Boolean overlay operation.
type Op uint8

// Overlay operations.
const (
	OpAnd Op = iota // intersection: inside both polygons
	OpOr            // union: inside either polygon
	OpXor           // symmetric difference: inside exactly one polygon
	OpSub           // difference: inside the first polygon but not the second
)

func (o Op) String() string {
	switch o {
	case OpAnd:
		return "intersection"
	case OpOr:
		return "union"
	case OpXor:
		return "symdifference"
	case OpSub:
		return "difference"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

func (o Op) combine(inA, inB bool) bool {
	switch o {
	case OpAnd:
		return inA && inB
	case OpOr:
		return inA || inB
	case OpXor:
		return inA != inB
	case OpSub:
		return inA && !inB
	}
	return false
}

// sweepEvent is a vertical polygon edge entering the sweep at X; which marks
// the polygon (0 or 1) it belongs to.
type sweepEvent struct {
	x      int32
	y1, y2 int32
	which  uint8
}

// gatherEvents collects the vertical edges of a polygon as sweep events.
func gatherEvents(p *geom.Polygon, which uint8, out []sweepEvent) []sweepEvent {
	vs := p.Vertices()
	n := len(vs)
	for i := 0; i < n; i++ {
		a, b := vs[i], vs[(i+1)%n]
		if a.X != b.X {
			continue
		}
		y1, y2 := a.Y, b.Y
		if y1 > y2 {
			y1, y2 = y2, y1
		}
		out = append(out, sweepEvent{x: a.X, y1: y1, y2: y2, which: which})
	}
	return out
}

// parityLine tracks, along the sweep line, the y-intervals currently inside
// each input polygon via crossing parity. Each vertical edge toggles the
// parity of its y-span: the interior of a simple polygon between two
// consecutive slab boundaries is exactly the odd-parity set.
type parityLine struct {
	toggles [2]map[int32]int // per polygon: y -> number of pending toggles (mod 2)
}

func newParityLine() *parityLine {
	return &parityLine{toggles: [2]map[int32]int{make(map[int32]int), make(map[int32]int)}}
}

func (l *parityLine) toggle(which uint8, y1, y2 int32) {
	l.toggles[which][y1] ^= 1
	l.toggles[which][y2] ^= 1
	if l.toggles[which][y1] == 0 {
		delete(l.toggles[which], y1)
	}
	if l.toggles[which][y2] == 0 {
		delete(l.toggles[which], y2)
	}
}

// intervals materialises the maximal y-intervals where op.combine(inA, inB)
// holds, appending them to dst as (y1, y2) pairs.
func (l *parityLine) intervals(op Op, ys []int32, dst [][2]int32) [][2]int32 {
	ys = ys[:0]
	for y := range l.toggles[0] {
		ys = append(ys, y)
	}
	for y := range l.toggles[1] {
		if _, dup := l.toggles[0][y]; !dup {
			ys = append(ys, y)
		}
	}
	sort.Slice(ys, func(i, j int) bool { return ys[i] < ys[j] })
	inA, inB := false, false
	open := false
	var start int32
	for _, y := range ys {
		if l.toggles[0][y] != 0 {
			inA = !inA
		}
		if l.toggles[1][y] != 0 {
			inB = !inB
		}
		now := op.combine(inA, inB)
		switch {
		case now && !open:
			open, start = true, y
		case !now && open:
			open = false
			if y > start {
				dst = append(dst, [2]int32{start, y})
			}
		}
	}
	return dst
}

// Overlay computes the Boolean overlay of two rectilinear polygons as a set
// of disjoint rectangles exactly covering the result region. Either polygon
// may be nil, which is treated as the empty region.
func Overlay(a, b *geom.Polygon, op Op) []geom.MBR {
	events := make([]sweepEvent, 0, 16)
	if a != nil {
		events = gatherEvents(a, 0, events)
	}
	if b != nil {
		events = gatherEvents(b, 1, events)
	}
	if len(events) == 0 {
		return nil
	}
	sort.Slice(events, func(i, j int) bool { return events[i].x < events[j].x })

	line := newParityLine()
	var rects []geom.MBR
	var ybuf []int32
	var prevIntervals [][2]int32
	var prevX int32

	i := 0
	for i < len(events) {
		x := events[i].x
		// Close the slab [prevX, x) with the interval set computed at the
		// previous event group.
		for _, iv := range prevIntervals {
			rects = append(rects, geom.MBR{MinX: prevX, MinY: iv[0], MaxX: x, MaxY: iv[1]})
		}
		for i < len(events) && events[i].x == x {
			line.toggle(events[i].which, events[i].y1, events[i].y2)
			i++
		}
		prevIntervals = line.intervals(op, ybuf, prevIntervals[:0])
		prevX = x
	}
	// After the final event group the parity line must be empty for simple
	// closed polygons, so no trailing slab is emitted.
	return rects
}

// Decompose partitions the interior of a single polygon into disjoint
// rectangles via the vertical slab sweep.
func Decompose(p *geom.Polygon) []geom.MBR {
	return Overlay(p, nil, OpOr)
}

// RectsArea sums the pixel areas of a rectangle set.
func RectsArea(rects []geom.MBR) int64 {
	var total int64
	for _, r := range rects {
		total += r.Pixels()
	}
	return total
}

// IntersectionArea returns the exact area (pixel count) of p ∩ q, the
// quantity the paper's profiling shows consuming ~90% of optimised query
// time when computed via boundary construction (Fig. 2). This fast path
// avoids boundary construction but still performs the full sweep.
func IntersectionArea(p, q *geom.Polygon) int64 {
	if !p.MBR().Intersects(q.MBR()) {
		return 0
	}
	return RectsArea(Overlay(p, q, OpAnd))
}

// UnionArea returns the exact area of p ∪ q.
func UnionArea(p, q *geom.Polygon) int64 {
	if !p.MBR().Intersects(q.MBR()) {
		return p.Area() + q.Area()
	}
	return RectsArea(Overlay(p, q, OpOr))
}

// Intersects reports whether the interiors of p and q share at least one
// pixel (the ST_Intersects spatial predicate).
func Intersects(p, q *geom.Polygon) bool {
	if !p.MBR().Intersects(q.MBR()) {
		return false
	}
	return IntersectionArea(p, q) > 0
}

// TopologyOverlay computes the requested overlay result the way a
// general-purpose library does: GEOS's OverlayOp first builds the complete
// labelled topology graph of both inputs — every elementary face of the
// arrangement (p∩q, p\q, q\p) — and only then extracts the faces belonging
// to the requested operation and assembles their boundary rings. The
// reproduction's SDBMS operators call this entry point so the baseline pays
// the full-graph cost per tuple, as PostGIS does.
func TopologyOverlay(p, q *geom.Polygon, op Op) []Ring {
	faces := [3][]geom.MBR{
		Overlay(p, q, OpAnd),
		Overlay(p, q, OpSub),
		Overlay(q, p, OpSub),
	}
	var selected []geom.MBR
	switch op {
	case OpAnd:
		selected = faces[0]
	case OpSub:
		selected = faces[1]
	case OpXor:
		selected = append(append([]geom.MBR{}, faces[1]...), faces[2]...)
	case OpOr:
		selected = append(append(append([]geom.MBR{}, faces[0]...), faces[1]...), faces[2]...)
	}
	return RegionToRings(selected)
}

// Intersection computes the boundary polygons of p ∩ q (the ST_Intersection
// spatial operator). The result may be empty or contain multiple disjoint
// polygons.
func Intersection(p, q *geom.Polygon) []*geom.Polygon {
	return RegionToPolygons(Overlay(p, q, OpAnd))
}

// Union computes the boundary polygons of p ∪ q (the ST_Union spatial
// operator).
func Union(p, q *geom.Polygon) []*geom.Polygon {
	return RegionToPolygons(Overlay(p, q, OpOr))
}

// Difference computes the boundary polygons of p \ q.
func Difference(p, q *geom.Polygon) []*geom.Polygon {
	return RegionToPolygons(Overlay(p, q, OpSub))
}

// JaccardRatio returns r(p, q) = |p∩q| / |p∪q| for a polygon pair, and
// whether the pair actually intersects. Pairs that do not intersect do not
// contribute to the paper's J' metric (Eq. 1).
func JaccardRatio(p, q *geom.Polygon) (ratio float64, intersects bool) {
	inter := IntersectionArea(p, q)
	if inter == 0 {
		return 0, false
	}
	union := p.Area() + q.Area() - inter
	return float64(inter) / float64(union), true
}
