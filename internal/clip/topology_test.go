package clip_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/clip"
	"repro/internal/geom"
	"repro/internal/geomtest"
)

// TestTopologyOverlayMatchesDirect: the full-graph entry point must agree
// with the direct single-op overlay for every operation.
func TestTopologyOverlayMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	ops := []clip.Op{clip.OpAnd, clip.OpOr, clip.OpXor, clip.OpSub}
	for trial := 0; trial < 60; {
		p := geomtest.RandomPolygon(rng, 24)
		q := geomtest.RandomPolygon(rng, 24)
		if p == nil || q == nil {
			continue
		}
		trial++
		for _, op := range ops {
			want := clip.RectsArea(clip.Overlay(p, q, op))
			got := clip.RegionArea(clip.TopologyOverlay(p, q, op))
			if got != want {
				t.Fatalf("trial %d op %v: topology area %d, direct %d", trial, op, got, want)
			}
		}
	}
}

// TestTopologyOverlayFaceDecomposition: the three elementary faces must
// partition the union exactly: |AND| + |A\B| + |B\A| = |A∪B|.
func TestTopologyOverlayFaceDecomposition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := geomtest.RandomPolygon(rng, 20)
		q := geomtest.RandomPolygon(rng, 20)
		if p == nil || q == nil {
			return true
		}
		and := clip.RegionArea(clip.TopologyOverlay(p, q, clip.OpAnd))
		sub := clip.RegionArea(clip.TopologyOverlay(p, q, clip.OpSub))
		bsub := clip.RegionArea(clip.TopologyOverlay(q, p, clip.OpSub))
		or := clip.RegionArea(clip.TopologyOverlay(p, q, clip.OpOr))
		return and+sub+bsub == or && and+sub == p.Area() && and+bsub == q.Area()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTopologyOverlayDisjoint(t *testing.T) {
	a := geom.Rect(0, 0, 2, 2)
	b := geom.Rect(10, 10, 12, 12)
	if got := clip.RegionArea(clip.TopologyOverlay(a, b, clip.OpAnd)); got != 0 {
		t.Fatalf("disjoint intersection area %d", got)
	}
	if got := clip.RegionArea(clip.TopologyOverlay(a, b, clip.OpOr)); got != 8 {
		t.Fatalf("disjoint union area %d", got)
	}
	rings := clip.TopologyOverlay(a, b, clip.OpOr)
	if len(rings) != 2 {
		t.Fatalf("disjoint union rings = %d, want 2", len(rings))
	}
}

func TestTopologyOverlayIdentical(t *testing.T) {
	a := geom.MustPolygon([]geom.Point{{X: 0, Y: 0}, {X: 3, Y: 0}, {X: 3, Y: 2}, {X: 2, Y: 2}, {X: 2, Y: 3}, {X: 0, Y: 3}})
	if got := clip.RegionArea(clip.TopologyOverlay(a, a, clip.OpAnd)); got != a.Area() {
		t.Fatalf("self intersection %d, want %d", got, a.Area())
	}
	if got := clip.RegionArea(clip.TopologyOverlay(a, a, clip.OpXor)); got != 0 {
		t.Fatalf("self xor %d, want 0", got)
	}
	if got := clip.RegionArea(clip.TopologyOverlay(a, a, clip.OpSub)); got != 0 {
		t.Fatalf("self difference %d, want 0", got)
	}
}
