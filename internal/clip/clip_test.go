package clip_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/clip"
	"repro/internal/geom"
	"repro/internal/geomtest"
)

func lShape() *geom.Polygon {
	return geom.MustPolygon([]geom.Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 1}, {X: 1, Y: 1}, {X: 1, Y: 2}, {X: 0, Y: 2}})
}

func TestDecomposeRect(t *testing.T) {
	p := geom.Rect(2, 3, 7, 9)
	rects := clip.Decompose(p)
	if len(rects) != 1 {
		t.Fatalf("rect decomposes into %d rects, want 1", len(rects))
	}
	if rects[0] != (geom.MBR{MinX: 2, MinY: 3, MaxX: 7, MaxY: 9}) {
		t.Fatalf("got %v", rects[0])
	}
}

func TestDecomposeLShape(t *testing.T) {
	p := lShape()
	rects := clip.Decompose(p)
	if got := clip.RectsArea(rects); got != p.Area() {
		t.Fatalf("decomposed area %d != polygon area %d", got, p.Area())
	}
	// Rectangles must be disjoint.
	for i := range rects {
		for j := i + 1; j < len(rects); j++ {
			if rects[i].Intersects(rects[j]) {
				t.Fatalf("rects %v and %v overlap", rects[i], rects[j])
			}
		}
	}
}

func TestDecomposeCoversExactPixels(t *testing.T) {
	p := geom.MustPolygon([]geom.Point{{X: 0, Y: 0}, {X: 6, Y: 0}, {X: 6, Y: 2}, {X: 4, Y: 2}, {X: 4, Y: 4}, {X: 6, Y: 4}, {X: 6, Y: 6}, {X: 0, Y: 6}, {X: 0, Y: 4}, {X: 2, Y: 4}, {X: 2, Y: 2}, {X: 0, Y: 2}})
	rects := clip.Decompose(p)
	m := p.MBR()
	for y := m.MinY; y < m.MaxY; y++ {
		for x := m.MinX; x < m.MaxX; x++ {
			inRects := false
			for _, r := range rects {
				if r.ContainsPixel(x, y) {
					inRects = true
					break
				}
			}
			if inRects != p.ContainsPixel(x, y) {
				t.Fatalf("pixel (%d,%d): cover %v, polygon %v", x, y, inRects, p.ContainsPixel(x, y))
			}
		}
	}
}

func TestIntersectionAreaSquares(t *testing.T) {
	a := geom.Rect(0, 0, 4, 4)
	b := geom.Rect(2, 2, 6, 6)
	if got := clip.IntersectionArea(a, b); got != 4 {
		t.Fatalf("intersection area = %d, want 4", got)
	}
	if got := clip.UnionArea(a, b); got != 28 {
		t.Fatalf("union area = %d, want 28", got)
	}
}

func TestIntersectionAreaDisjoint(t *testing.T) {
	a := geom.Rect(0, 0, 2, 2)
	b := geom.Rect(5, 5, 7, 7)
	if got := clip.IntersectionArea(a, b); got != 0 {
		t.Fatalf("disjoint intersection = %d", got)
	}
	if got := clip.UnionArea(a, b); got != 8 {
		t.Fatalf("disjoint union = %d, want 8", got)
	}
	if clip.Intersects(a, b) {
		t.Fatal("disjoint polygons reported intersecting")
	}
}

func TestIntersectionAreaTouching(t *testing.T) {
	// Sharing only a border: zero pixels of intersection.
	a := geom.Rect(0, 0, 2, 2)
	b := geom.Rect(2, 0, 4, 2)
	if got := clip.IntersectionArea(a, b); got != 0 {
		t.Fatalf("touching intersection = %d, want 0", got)
	}
	if clip.Intersects(a, b) {
		t.Fatal("touching polygons reported intersecting")
	}
}

func TestOverlayOps(t *testing.T) {
	a := geom.Rect(0, 0, 4, 4)
	b := geom.Rect(2, 0, 6, 4)
	cases := []struct {
		op   clip.Op
		want int64
	}{
		{clip.OpAnd, 8},
		{clip.OpOr, 24},
		{clip.OpXor, 16},
		{clip.OpSub, 8},
	}
	for _, c := range cases {
		if got := clip.RectsArea(clip.Overlay(a, b, c.op)); got != c.want {
			t.Errorf("%v area = %d, want %d", c.op, got, c.want)
		}
	}
}

func TestJaccardRatio(t *testing.T) {
	a := geom.Rect(0, 0, 4, 4)
	b := geom.Rect(0, 0, 4, 4)
	r, ok := clip.JaccardRatio(a, b)
	if !ok || r != 1.0 {
		t.Fatalf("identical polygons ratio = %v,%v", r, ok)
	}
	c := geom.Rect(2, 0, 6, 4)
	r, ok = clip.JaccardRatio(a, c)
	if !ok || r != 8.0/24.0 {
		t.Fatalf("half-overlap ratio = %v, want %v", r, 8.0/24.0)
	}
	d := geom.Rect(10, 10, 12, 12)
	if _, ok = clip.JaccardRatio(a, d); ok {
		t.Fatal("disjoint pair reported intersecting")
	}
}

func TestRegionToRingsSquare(t *testing.T) {
	rings := clip.RegionToRings([]geom.MBR{{MinX: 1, MinY: 1, MaxX: 4, MaxY: 5}})
	if len(rings) != 1 {
		t.Fatalf("got %d rings, want 1", len(rings))
	}
	if rings[0].SignedArea != 12 {
		t.Fatalf("signed area = %d, want 12", rings[0].SignedArea)
	}
	if rings[0].IsHole() {
		t.Fatal("outer ring reported as hole")
	}
	p, err := rings[0].Polygon()
	if err != nil {
		t.Fatalf("ring to polygon: %v", err)
	}
	if p.Area() != 12 {
		t.Fatalf("polygon area = %d", p.Area())
	}
}

func TestRegionToRingsMergesAdjacent(t *testing.T) {
	// Two stacked rectangles form one square ring with 4 vertices.
	rects := []geom.MBR{{MinX: 0, MinY: 0, MaxX: 2, MaxY: 1}, {MinX: 0, MinY: 1, MaxX: 2, MaxY: 2}}
	rings := clip.RegionToRings(rects)
	if len(rings) != 1 {
		t.Fatalf("got %d rings, want 1", len(rings))
	}
	if len(rings[0].Vertices) != 4 {
		t.Fatalf("got %d vertices, want 4 (interior border must cancel)", len(rings[0].Vertices))
	}
	if rings[0].SignedArea != 4 {
		t.Fatalf("area = %d, want 4", rings[0].SignedArea)
	}
}

func TestRegionToRingsHole(t *testing.T) {
	// A 4x4 square with its centre 2x2 missing: outer ring + hole.
	var rects []geom.MBR
	for y := int32(0); y < 4; y++ {
		for x := int32(0); x < 4; x++ {
			if x >= 1 && x < 3 && y >= 1 && y < 3 {
				continue
			}
			rects = append(rects, geom.MBR{MinX: x, MinY: y, MaxX: x + 1, MaxY: y + 1})
		}
	}
	rings := clip.RegionToRings(rects)
	if len(rings) != 2 {
		t.Fatalf("got %d rings, want outer + hole", len(rings))
	}
	if got := clip.RegionArea(rings); got != 12 {
		t.Fatalf("region area = %d, want 12", got)
	}
	holes := 0
	for _, r := range rings {
		if r.IsHole() {
			holes++
			if r.SignedArea != -4 {
				t.Fatalf("hole signed area = %d, want -4", r.SignedArea)
			}
		}
	}
	if holes != 1 {
		t.Fatalf("holes = %d, want 1", holes)
	}
}

func TestRegionToRingsCornerTouch(t *testing.T) {
	// Two squares touching at one corner must yield two simple rings, not a
	// figure eight.
	rects := []geom.MBR{{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, {MinX: 1, MinY: 1, MaxX: 2, MaxY: 2}}
	rings := clip.RegionToRings(rects)
	if len(rings) != 2 {
		t.Fatalf("got %d rings, want 2", len(rings))
	}
	for _, r := range rings {
		if r.SignedArea != 1 {
			t.Fatalf("ring signed area = %d, want 1", r.SignedArea)
		}
		if len(r.Vertices) != 4 {
			t.Fatalf("ring has %d vertices, want 4", len(r.Vertices))
		}
	}
}

func TestIntersectionBoundary(t *testing.T) {
	a := geom.Rect(0, 0, 4, 4)
	b := geom.Rect(2, 2, 6, 6)
	polys := clip.Intersection(a, b)
	if len(polys) != 1 {
		t.Fatalf("got %d polygons, want 1", len(polys))
	}
	if polys[0].Area() != 4 {
		t.Fatalf("intersection polygon area = %d, want 4", polys[0].Area())
	}
	if polys[0].MBR() != (geom.MBR{MinX: 2, MinY: 2, MaxX: 4, MaxY: 4}) {
		t.Fatalf("intersection MBR = %v", polys[0].MBR())
	}
}

func TestUnionBoundary(t *testing.T) {
	a := geom.Rect(0, 0, 2, 2)
	b := geom.Rect(5, 0, 7, 2)
	polys := clip.Union(a, b)
	if len(polys) != 2 {
		t.Fatalf("union of disjoint squares: %d polygons, want 2", len(polys))
	}
	if polys[0].Area()+polys[1].Area() != 8 {
		t.Fatal("union area mismatch")
	}
}

func TestDifference(t *testing.T) {
	a := geom.Rect(0, 0, 4, 4)
	b := geom.Rect(0, 0, 4, 2)
	polys := clip.Difference(a, b)
	if len(polys) != 1 {
		t.Fatalf("difference polygons = %d, want 1", len(polys))
	}
	if polys[0].Area() != 8 {
		t.Fatalf("difference area = %d, want 8", polys[0].Area())
	}
}

// TestOverlayMatchesBruteForce is the core exactness property: for random
// polygon pairs, every overlay op must match exhaustive per-pixel counting.
func TestOverlayMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	trials := 0
	for trials < 120 {
		p := geomtest.RandomPolygon(rng, 24)
		q := geomtest.RandomPolygon(rng, 24)
		if p == nil || q == nil {
			continue
		}
		trials++
		wantInter := geomtest.BruteIntersectionArea(p, q)
		wantUnion := geomtest.BruteUnionArea(p, q)
		if got := clip.IntersectionArea(p, q); got != wantInter {
			t.Fatalf("trial %d: intersection %d, want %d\np=%v\nq=%v", trials, got, wantInter, p.Vertices(), q.Vertices())
		}
		if got := clip.UnionArea(p, q); got != wantUnion {
			t.Fatalf("trial %d: union %d, want %d", trials, got, wantUnion)
		}
		// Boundary-constructed area must agree with rect-cover area.
		rings := clip.RegionToRings(clip.Overlay(p, q, clip.OpAnd))
		if got := clip.RegionArea(rings); got != wantInter {
			t.Fatalf("trial %d: ring area %d, want %d", trials, got, wantInter)
		}
	}
}

// TestDecomposePropertyQuick uses testing/quick to drive random polygon
// shapes: decomposition area always equals shoelace area, and rectangles
// are pairwise disjoint.
func TestDecomposePropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := geomtest.RandomPolygon(rng, 20)
		if p == nil {
			return true
		}
		rects := clip.Decompose(p)
		if clip.RectsArea(rects) != p.Area() {
			return false
		}
		for i := range rects {
			for j := i + 1; j < len(rects); j++ {
				if rects[i].Intersects(rects[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestInclusionExclusionQuick checks |p|+|q| = |p∩q|+|p∪q| on random pairs.
func TestInclusionExclusionQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := geomtest.RandomPolygon(rng, 20)
		q := geomtest.RandomPolygon(rng, 20)
		if p == nil || q == nil {
			return true
		}
		return p.Area()+q.Area() == clip.IntersectionArea(p, q)+clip.UnionArea(p, q)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestOpString(t *testing.T) {
	if clip.OpAnd.String() != "intersection" || clip.OpOr.String() != "union" {
		t.Fatal("Op strings wrong")
	}
}
