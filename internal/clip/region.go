package clip

import (
	"sort"

	"repro/internal/geom"
)

// Ring is one closed boundary loop of an overlay result. Outer boundaries
// wind counter-clockwise (positive SignedArea); holes wind clockwise
// (negative SignedArea). A full overlay result is a set of rings whose signed
// areas sum to the region's pixel count.
type Ring struct {
	Vertices   []geom.Point
	SignedArea int64
}

// IsHole reports whether the ring bounds a hole in the region.
func (r Ring) IsHole() bool { return r.SignedArea < 0 }

// Polygon converts an outer ring into a validated geom.Polygon. It fails for
// holes and for degenerate rings.
func (r Ring) Polygon() (*geom.Polygon, error) {
	return geom.NewPolygon(r.Vertices)
}

// RegionArea sums the signed areas of a ring set, yielding the exact pixel
// count of the region (holes subtract).
func RegionArea(rings []Ring) int64 {
	var total int64
	for _, r := range rings {
		total += r.SignedArea
	}
	return total
}

// dseg is a directed axis-aligned boundary segment.
type dseg struct {
	from, to geom.Point
}

// dir encodes the direction of a segment: 0=+x, 1=+y, 2=-x, 3=-y.
func (s dseg) dir() int {
	switch {
	case s.to.X > s.from.X:
		return 0
	case s.to.Y > s.from.Y:
		return 1
	case s.to.X < s.from.X:
		return 2
	default:
		return 3
	}
}

// RegionToRings converts a disjoint rectangle cover (as produced by Overlay)
// into its boundary rings. Interior-shared borders between adjacent
// rectangles cancel; the remaining directed segments are stitched into
// closed loops. At degenerate corner-touch points the stitcher always takes
// the leftmost available turn, which keeps every emitted loop simple. Outer
// loops come out counter-clockwise and holes clockwise.
func RegionToRings(rects []geom.MBR) []Ring {
	if len(rects) == 0 {
		return nil
	}
	segs := boundarySegments(rects)
	return stitch(segs)
}

// RegionToPolygons converts a disjoint rectangle cover into validated
// polygons, one per outer ring. It returns only outer boundaries; use
// RegionToRings when holes matter (for area accounting RegionArea on the
// rings is always exact).
func RegionToPolygons(rects []geom.MBR) []*geom.Polygon {
	rings := RegionToRings(rects)
	polys := make([]*geom.Polygon, 0, len(rings))
	for _, r := range rings {
		if r.IsHole() {
			continue
		}
		if p, err := r.Polygon(); err == nil {
			polys = append(polys, p)
		}
	}
	return polys
}

// signedIv is an interval [a, b) on a grid line carrying an orientation
// weight.
type signedIv struct {
	a, b int32
	w    int // +1 or -1
}

// boundarySegments derives the net directed boundary segments of the region.
// For each vertical grid line it accumulates +1 for upward rectangle borders
// (right sides of CCW rectangles) and -1 for downward borders (left sides),
// then emits maximal runs of non-zero net weight; horizontal lines likewise.
// Because the rectangles are disjoint, net weights are always in {-1, 0, +1}.
func boundarySegments(rects []geom.MBR) []dseg {
	vert := make(map[int32][]signedIv)
	horiz := make(map[int32][]signedIv)
	for _, r := range rects {
		// CCW orientation: bottom L->R, right B->T, top R->L, left T->B.
		horiz[r.MinY] = append(horiz[r.MinY], signedIv{r.MinX, r.MaxX, +1})
		vert[r.MaxX] = append(vert[r.MaxX], signedIv{r.MinY, r.MaxY, +1})
		horiz[r.MaxY] = append(horiz[r.MaxY], signedIv{r.MinX, r.MaxX, -1})
		vert[r.MinX] = append(vert[r.MinX], signedIv{r.MinY, r.MaxY, -1})
	}
	// Iterate grid lines in sorted order so the emitted segment list — and
	// therefore ring starting points downstream — is deterministic.
	var segs []dseg
	for _, x := range sortedKeys(vert) {
		for _, run := range netRuns(vert[x]) {
			if run.w > 0 { // upward
				segs = append(segs, dseg{geom.Point{X: x, Y: run.a}, geom.Point{X: x, Y: run.b}})
			} else { // downward
				segs = append(segs, dseg{geom.Point{X: x, Y: run.b}, geom.Point{X: x, Y: run.a}})
			}
		}
	}
	for _, y := range sortedKeys(horiz) {
		for _, run := range netRuns(horiz[y]) {
			if run.w > 0 { // rightward
				segs = append(segs, dseg{geom.Point{X: run.a, Y: y}, geom.Point{X: run.b, Y: y}})
			} else { // leftward
				segs = append(segs, dseg{geom.Point{X: run.b, Y: y}, geom.Point{X: run.a, Y: y}})
			}
		}
	}
	return segs
}

func sortedKeys(m map[int32][]signedIv) []int32 {
	keys := make([]int32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// netRuns collapses signed intervals on one grid line into maximal runs of
// constant non-zero net weight.
func netRuns(ivs []signedIv) []signedIv {
	diff := make(map[int32]int, 2*len(ivs))
	for _, iv := range ivs {
		diff[iv.a] += iv.w
		diff[iv.b] -= iv.w
	}
	keys := make([]int32, 0, len(diff))
	for k, v := range diff {
		if v != 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var runs []signedIv
	w := 0
	for i, k := range keys {
		prevW := w
		w += diff[k]
		_ = prevW
		if i+1 < len(keys) && w != 0 {
			runs = append(runs, signedIv{a: k, b: keys[i+1], w: w})
		}
	}
	// Merge adjacent runs of identical weight (breakpoints that only existed
	// because another interval started/ended with zero net change there).
	merged := runs[:0]
	for _, r := range runs {
		if n := len(merged); n > 0 && merged[n-1].b == r.a && merged[n-1].w == r.w {
			merged[n-1].b = r.b
			continue
		}
		merged = append(merged, r)
	}
	return merged
}

// stitch links directed segments into closed loops. Every segment's end point
// matches some segment's start point; at points with multiple outgoing
// segments the leftmost turn relative to the incoming direction is chosen.
func stitch(segs []dseg) []Ring {
	out := make(map[geom.Point][]int) // start point -> indices into segs
	used := make([]bool, len(segs))
	for i, s := range segs {
		out[s.from] = append(out[s.from], i)
	}
	var rings []Ring
	for i := range segs {
		if used[i] {
			continue
		}
		loop := traceLoop(segs, out, used, i)
		if len(loop) >= 4 {
			rings = append(rings, makeRing(loop))
		}
	}
	return rings
}

// traceLoop follows segments from segs[start] until returning to the loop's
// first point, preferring the leftmost turn at junctions.
func traceLoop(segs []dseg, out map[geom.Point][]int, used []bool, start int) []geom.Point {
	var pts []geom.Point
	cur := start
	origin := segs[start].from
	for {
		used[cur] = true
		pts = append(pts, segs[cur].from)
		end := segs[cur].to
		if end == origin {
			return pts
		}
		next := -1
		bestTurn := -4
		inDir := segs[cur].dir()
		for _, cand := range out[end] {
			if used[cand] {
				continue
			}
			// Turn score: leftmost first. turn = ((candDir - inDir + 5) % 4)
			// maps left=2? Compute explicitly: left turn = (inDir+1)%4,
			// straight = inDir, right = (inDir+3)%4, U-turn = (inDir+2)%4.
			cd := segs[cand].dir()
			var score int
			switch cd {
			case (inDir + 1) % 4:
				score = 3 // left
			case inDir:
				score = 2 // straight
			case (inDir + 3) % 4:
				score = 1 // right
			default:
				score = 0 // reverse (should not happen)
			}
			if score > bestTurn {
				bestTurn = score
				next = cand
			}
		}
		if next < 0 {
			// Open chain: malformed input; abandon this loop.
			return nil
		}
		cur = next
	}
}

// makeRing simplifies collinear runs in a vertex loop and computes its signed
// area (positive for CCW).
func makeRing(pts []geom.Point) Ring {
	n := len(pts)
	simplified := make([]geom.Point, 0, n)
	for i := 0; i < n; i++ {
		prev := pts[(i-1+n)%n]
		cur := pts[i]
		next := pts[(i+1)%n]
		collinear := (prev.X == cur.X && cur.X == next.X) || (prev.Y == cur.Y && cur.Y == next.Y)
		if !collinear {
			simplified = append(simplified, cur)
		}
	}
	var sum int64
	m := len(simplified)
	for i := 0; i < m; i++ {
		j := (i + 1) % m
		sum += int64(simplified[i].X)*int64(simplified[j].Y) - int64(simplified[j].X)*int64(simplified[i].Y)
	}
	return Ring{Vertices: simplified, SignedArea: sum / 2}
}
