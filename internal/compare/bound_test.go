package compare

// Unit tests for the per-tile bound math, isolated from the store: every
// degradation path (empty set, missing stats, degenerate areas, disjoint
// windows) and the normal clamped quotient.

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/store"
)

func stats(mbr geom.MBR, minArea, maxArea int64) *store.SetStats {
	return &store.SetStats{MBR: mbr, MinArea: minArea, MaxArea: maxArea}
}

func TestTileBound(t *testing.T) {
	base := geom.MBR{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}
	cases := []struct {
		name    string
		ta, tb  store.TileInfo
		bound   float64
		trivial bool
	}{
		{
			name:  "empty set A",
			ta:    store.TileInfo{CountA: 0},
			tb:    store.TileInfo{CountB: 5, StatsB: stats(base, 1, 10)},
			bound: 0,
		},
		{
			name:  "empty set B",
			ta:    store.TileInfo{CountA: 5, StatsA: stats(base, 1, 10)},
			tb:    store.TileInfo{CountB: 0},
			bound: 0,
		},
		{
			name:    "missing stats fall back to trivial 1",
			ta:      store.TileInfo{CountA: 3},
			tb:      store.TileInfo{CountB: 4, StatsB: stats(base, 1, 10)},
			bound:   1,
			trivial: true,
		},
		{
			name: "inconsistent stats fall back to trivial 1",
			ta: store.TileInfo{CountA: 3,
				StatsA: stats(base, 20, 10)}, // min > max: not Valid
			tb:      store.TileInfo{CountB: 4, StatsB: stats(base, 1, 10)},
			bound:   1,
			trivial: true,
		},
		{
			name:  "all-degenerate polygons cannot intersect",
			ta:    store.TileInfo{CountA: 3, StatsA: stats(geom.MBR{}, 0, 0)},
			tb:    store.TileInfo{CountB: 4, StatsB: stats(base, 1, 10)},
			bound: 0,
		},
		{
			name: "disjoint MBRs",
			ta:   store.TileInfo{CountA: 3, StatsA: stats(base, 1, 10)},
			tb: store.TileInfo{CountB: 4,
				StatsB: stats(geom.MBR{MinX: 200, MinY: 200, MaxX: 300, MaxY: 300}, 1, 10)},
			bound: 0,
		},
		{
			name: "window caps the numerator",
			// 2×2 overlap window, large areas: bound = 4 / max(minA, minB).
			ta: store.TileInfo{CountA: 3,
				StatsA: stats(geom.MBR{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, 8, 100)},
			tb: store.TileInfo{CountB: 4,
				StatsB: stats(geom.MBR{MinX: 8, MinY: 8, MaxX: 20, MaxY: 20}, 16, 100)},
			bound: 4.0 / 16.0,
		},
		{
			name: "max area caps the numerator",
			// Big window but tiny polygons on side A: bound = maxA/minB.
			ta:    store.TileInfo{CountA: 3, StatsA: stats(base, 1, 5)},
			tb:    store.TileInfo{CountB: 4, StatsB: stats(base, 50, 100)},
			bound: 5.0 / 50.0,
		},
		{
			name: "quotient clamps at 1",
			// Window pixels exceed both min areas: raw quotient > 1.
			ta:    store.TileInfo{CountA: 3, StatsA: stats(base, 1, 10000)},
			tb:    store.TileInfo{CountB: 4, StatsB: stats(base, 1, 10000)},
			bound: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, trivial := tileBound(tc.ta, tc.tb)
			if b != tc.bound || trivial != tc.trivial {
				t.Fatalf("tileBound = (%v, %v), want (%v, %v)",
					b, trivial, tc.bound, tc.trivial)
			}
		})
	}
}
