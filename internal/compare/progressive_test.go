package compare

// Tests for the progressive matrix path: bound soundness, top-k runs over a
// spatially skewed corpus (differential against the full exact matrix),
// bipartite grids, and top-k early termination of in-flight cells.

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/pathology"
	"repro/internal/pipeline"
	"repro/internal/sched"
	"repro/internal/store"
)

// ingestShifted stores a generated variant whose polygons are translated by
// (dx, dy): same tile keys as an unshifted variant of the same image, but a
// different spatial cluster. This is the skew that makes bounds bite —
// cross-cluster cells have disjoint per-tile set MBRs and bound 0.
func ingestShifted(t *testing.T, s *store.Store, image string, seed int64, tiles int, dx, dy int32) *store.Manifest {
	t.Helper()
	spec := pathology.Representative()
	spec.Name = image
	spec.Seed = seed
	spec.Tiles = tiles
	d := pathology.Generate(spec)
	its := make([]store.IngestTile, 0, len(d.Pairs))
	for _, tp := range d.Pairs {
		it := store.IngestTile{Image: tp.Image, Tile: tp.Index}
		for _, p := range tp.A {
			it.A = append(it.A, p.Translate(dx, dy))
		}
		for _, p := range tp.B {
			it.B = append(it.B, p.Translate(dx, dy))
		}
		its = append(its, it)
	}
	man, err := s.Ingest(image, its)
	if err != nil {
		t.Fatalf("Ingest: %v", err)
	}
	return man
}

// clusterCorpus ingests a 6-dataset skewed corpus: three variants at the
// origin, three shifted far away. All six share tile keys.
func clusterCorpus(t *testing.T, s *store.Store) (near, far []string) {
	t.Helper()
	const shift = 1 << 20
	for seed := int64(1); seed <= 3; seed++ {
		near = append(near, ingestShifted(t, s, "slideK", seed, 2, 0, 0).ID)
	}
	for seed := int64(4); seed <= 6; seed++ {
		far = append(far, ingestShifted(t, s, "slideK", seed, 2, shift, shift).ID)
	}
	return near, far
}

// TestBoundPairSoundness: no exact cell similarity may exceed its bound, and
// cross-cluster bounds must be exactly zero.
func TestBoundPairSoundness(t *testing.T) {
	s := testStore(t)
	sc := sched.New(sched.Config{})
	t.Cleanup(sc.Close)
	near, far := clusterCorpus(t, s)
	all := append(append([]string(nil), near...), far...)

	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			cb, err := BoundPair(s, all[i], all[j])
			if err != nil {
				t.Fatalf("BoundPair(%d,%d): %v", i, j, err)
			}
			if cb.Trivial {
				t.Errorf("bound [%d][%d] degraded to trivial; freshly ingested datasets carry stats", i, j)
			}
			crossCluster := (i < len(near)) != (j < len(near))
			if crossCluster && cb.Bound != 0 {
				t.Errorf("cross-cluster bound [%d][%d] = %v, want 0 (disjoint MBRs)", i, j, cb.Bound)
			}
			if !crossCluster && cb.Bound == 0 {
				t.Errorf("within-cluster bound [%d][%d] = 0; overlapping variants must bound positive", i, j)
			}

			// Exact oracle: the similarity the real kernel computes can
			// never exceed the bound (tiny epsilon for float summation).
			dsA := openDataset(t, s, all[i])
			dsB := openDataset(t, s, all[j])
			src, _ := NewSource(dsA, dsB)
			st := waitJob(t, sc, mustSubmit(t, sc, src))
			if st.Report.Similarity > cb.Bound+1e-9 {
				t.Errorf("cell [%d][%d] exact similarity %.12f exceeds bound %.12f — bound unsound",
					i, j, st.Report.Similarity, cb.Bound)
			}
		}
	}
}

func mustSubmit(t *testing.T, sc *sched.Scheduler, src sched.TaskSource) string {
	t.Helper()
	id, err := sc.SubmitSource("oracle", src)
	if err != nil {
		t.Fatalf("SubmitSource: %v", err)
	}
	return id
}

// TestMatrixTopKDifferential is the tentpole acceptance test: a top_k=3 run
// over the 6-way skewed corpus completes with skipped cells, and every cell
// it did answer exactly is bit-identical to the full exact matrix's same
// cell — progressive execution elides work, never changes answers.
func TestMatrixTopKDifferential(t *testing.T) {
	s := testStore(t)
	sc := sched.New(sched.Config{Devices: 2})
	t.Cleanup(sc.Close)
	near, far := clusterCorpus(t, s)
	all := append(append([]string(nil), near...), far...)

	bound := func(a, b string) (CellBound, error) { return BoundPair(s, a, b) }
	m := NewManager(ManagerConfig{
		Scheduler: sc,
		Submit:    directSubmit(t, s, sc, nil),
		Bound:     bound,
		Estimate:  func(a, b string) (CellEstimate, error) { return EstimatePair(s, a, b) },
	})

	// Oracle first: the full exact matrix, no objectives. Progressive runs
	// plan bounds too, but without an objective nothing may be elided.
	oracleRun, err := m.Start("oracle", all)
	if err != nil {
		t.Fatal(err)
	}
	oracle := waitRun(t, oracleRun)
	if oracle.State != RunDone || oracle.ExactCells != 15 {
		t.Fatalf("oracle run: state %s, %d exact cells, want done/15", oracle.State, oracle.ExactCells)
	}

	run, err := m.StartSpec(RunSpec{
		Name:     "topk",
		Datasets: all,
		TopK:     3,
		Estimate: true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := waitRun(t, run)
	if st.State != RunDone {
		t.Fatalf("top-k run ended %s", st.State)
	}
	if st.SkippedCells == 0 {
		t.Fatalf("top-k run skipped 0 cells over the skewed corpus; status %+v", st)
	}
	if st.ExactCells == 0 || st.ExactCells == 15 {
		t.Fatalf("top-k run answered %d cells exactly, want some but not all", st.ExactCells)
	}
	if st.ExactCells+st.SkippedCells+st.BoundedCells != 15 {
		t.Fatalf("cells don't add up: exact %d + skipped %d + bounded %d != 15",
			st.ExactCells, st.SkippedCells, st.BoundedCells)
	}
	// All 9 cross-cluster cells have bound 0 and must be skipped.
	if st.SkippedCells < 9 {
		t.Errorf("only %d skipped cells, want at least the 9 cross-cluster ones", st.SkippedCells)
	}

	// Differential bit-identity over the upper triangle.
	var exactSims []float64
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			got, want := st.Cells[i][j], oracle.Cells[i][j]
			switch got.State {
			case CellDone:
				if got.Similarity != want.Similarity ||
					got.Intersect != want.Intersect ||
					got.Candidates != want.Candidates {
					t.Errorf("cell [%d][%d] = (%.17g, %d, %d), oracle = (%.17g, %d, %d) — not bit-identical",
						i, j, got.Similarity, got.Intersect, got.Candidates,
						want.Similarity, want.Intersect, want.Candidates)
				}
				exactSims = append(exactSims, got.Similarity)
			case CellSkipped, CellBounded:
				if got.Bound == nil {
					t.Errorf("elided cell [%d][%d] carries no bound", i, j)
				} else if want.Similarity > *got.Bound+1e-9 {
					t.Errorf("elided cell [%d][%d] bound %.12f below true similarity %.12f — answer changed",
						i, j, *got.Bound, want.Similarity)
				}
			default:
				t.Errorf("cell [%d][%d] state %q, want done/skipped/bounded", i, j, got.State)
			}
		}
	}

	// The top-3 similarities of the oracle must all be among the exact
	// cells — eliding may only drop cells outside the answer.
	var oracleSims []float64
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			oracleSims = append(oracleSims, oracle.Cells[i][j].Similarity)
		}
	}
	for _, top := range topN(oracleSims, 3) {
		found := false
		for _, s := range exactSims {
			if s == top {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("oracle top-3 similarity %.12f missing from the progressive run's exact cells %v",
				top, exactSims)
		}
	}

	if st.PlanTrace == nil || st.PlanTrace.Stages["bound"] < 0 {
		t.Errorf("progressive run carries no plan trace with a bound stage: %+v", st.PlanTrace)
	}
	if st.Version == 0 {
		t.Error("terminal run still at version 0; state changes must bump the version")
	}

	// WaitChange on a terminal run returns immediately.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if got, err := run.WaitChange(ctx, st.Version+100); err != nil || got.State != RunDone {
		t.Errorf("WaitChange on terminal run = (%s, %v), want immediate done", got.State, err)
	}
}

func topN(sims []float64, n int) []float64 {
	out := append([]float64(nil), sims...)
	for i := 0; i < n && i < len(out); i++ {
		max := i
		for j := i + 1; j < len(out); j++ {
			if out[j] > out[max] {
				max = j
			}
		}
		out[i], out[max] = out[max], out[i]
	}
	if n > len(out) {
		n = len(out)
	}
	return out[:n]
}

// TestMatrixMinSimilaritySkips: a min_similarity objective alone (no top-k)
// statically skips the provably-below cells and computes the rest exactly.
func TestMatrixMinSimilarity(t *testing.T) {
	s := testStore(t)
	sc := sched.New(sched.Config{})
	t.Cleanup(sc.Close)
	near, far := clusterCorpus(t, s)

	m := NewManager(ManagerConfig{
		Scheduler: sc,
		Submit:    directSubmit(t, s, sc, nil),
		Bound:     func(a, b string) (CellBound, error) { return BoundPair(s, a, b) },
	})
	run, err := m.StartSpec(RunSpec{
		Datasets:      []string{near[0], near[1], far[0]},
		MinSimilarity: 0.01,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := waitRun(t, run)
	if st.State != RunDone {
		t.Fatalf("run ended %s", st.State)
	}
	// (near0, near1) computes; the two cross-cluster cells skip.
	if st.ExactCells != 1 || st.SkippedCells != 2 || st.BoundedCells != 0 {
		t.Fatalf("exact/skipped/bounded = %d/%d/%d, want 1/2/0. cells: %+v",
			st.ExactCells, st.SkippedCells, st.BoundedCells, st.Cells)
	}
	if c := st.Cells[0][1]; c.State != CellDone || c.Similarity <= 0 {
		t.Errorf("within-cluster cell = %+v, want exact positive similarity", c)
	}
	if c := st.Cells[0][2]; c.State != CellSkipped || c.Bound == nil || *c.Bound != 0 {
		t.Errorf("cross-cluster cell = %+v, want skipped with bound 0", c)
	}
}

// TestMatrixBipartite: a set_a × set_b run produces an oriented rows×cols
// grid with no mirroring, and an ID on both sides becomes a computed
// self-cross cell, not a "self" placeholder.
func TestMatrixBipartite(t *testing.T) {
	s := testStore(t)
	sc := sched.New(sched.Config{})
	t.Cleanup(sc.Close)
	a := ingestShifted(t, s, "slideB", 7, 2, 0, 0).ID
	b := ingestShifted(t, s, "slideB", 8, 2, 0, 0).ID

	m := NewManager(ManagerConfig{Scheduler: sc, Submit: directSubmit(t, s, sc, nil)})
	run, err := m.StartSpec(RunSpec{SetA: []string{a}, SetB: []string{a, b}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := waitRun(t, run)
	if st.State != RunDone {
		t.Fatalf("run ended %s: %+v", st.State, st.Cells)
	}
	if len(st.SetA) != 1 || len(st.SetB) != 2 || len(st.Datasets) != 0 {
		t.Fatalf("axes = %v × %v (datasets %v), want 1×2 bipartite", st.SetA, st.SetB, st.Datasets)
	}
	if len(st.Cells) != 1 || len(st.Cells[0]) != 2 {
		t.Fatalf("grid is %dx%d, want 1x2", len(st.Cells), len(st.Cells[0]))
	}
	// The diagonal-ID cell is a real self-cross comparison.
	if c := st.Cells[0][0]; c.State != CellDone || c.Similarity <= 0 {
		t.Errorf("self-cross cell = %+v, want computed with positive similarity", c)
	}
	if c := st.Cells[0][1]; c.State != CellDone {
		t.Errorf("cross cell = %+v, want done", c)
	}

	// Validation: mixing axes is rejected, as are per-side duplicates.
	if _, err := m.StartSpec(RunSpec{Datasets: []string{a, b}, SetA: []string{a}, SetB: []string{b}}, nil); err == nil {
		t.Error("mixed datasets + set_a/set_b accepted")
	}
	if _, err := m.StartSpec(RunSpec{SetA: []string{a, a}, SetB: []string{b}}, nil); err == nil {
		t.Error("duplicate within set_a accepted")
	}
	if _, err := m.StartSpec(RunSpec{SetA: []string{a}, SetB: nil}, nil); err == nil {
		t.Error("set_a without set_b accepted")
	}
}

// TestMatrixPrunesInFlightCells: when an exact result proves an in-flight
// cell cannot enter the top-k answer, its owned job is canceled through the
// group and the cell finishes `bounded`, not `canceled` — and the run is
// still a success.
func TestMatrixPrunesInFlightCells(t *testing.T) {
	s := testStore(t)
	sc := sched.New(sched.Config{})
	t.Cleanup(sc.Close)
	release := make(chan struct{})
	var once sync.Once
	t.Cleanup(func() { once.Do(func() { close(release) }) })

	man := ingestVariant(t, s, "slideP", 3, 1)
	ds := openDataset(t, s, man.ID)
	task, err := ds.Source().Task(0)
	if err != nil {
		t.Fatal(err)
	}

	// A gated blocker occupies the scheduler's single runner, so the
	// victim's job stays Queued — and a queued job finalizes the moment the
	// group cancels it, making the prune observable without draining races.
	if _, err := sc.SubmitSource("blocker", &gatedSource{release: release, task: task}); err != nil {
		t.Fatal(err)
	}

	idA, idB, idC := testID('a'), testID('b'), testID('c')
	bounds := map[string]float64{idB: 0.9, idC: 0.6}
	runCh := make(chan *Run, 1)
	rep := pipeline.Result{Similarity: 0.8}

	m := NewManager(ManagerConfig{
		Scheduler:   sc,
		Concurrency: 2,
		Bound: func(_, b string) (CellBound, error) {
			return CellBound{Bound: bounds[b], Tiles: 1}, nil
		},
		Submit: func(_, b, _ string) (SubmitOutcome, error) {
			switch b {
			case idC:
				// The prune victim: queued behind the blocker.
				id, err := sc.SubmitSource("victim", ds.Source())
				if err != nil {
					return SubmitOutcome{}, err
				}
				return SubmitOutcome{JobID: id, Tiles: 1}, nil
			default:
				// The winner returns only once the victim cell is
				// observably in flight, then answers with an exact result
				// above the victim's bound — the trigger for pruning.
				r := <-runCh
				deadline := time.Now().Add(10 * time.Second)
				for {
					if st := r.Status(); st.Cells[0][1].State == CellRunning && st.Cells[0][1].JobID != "" {
						break
					}
					if time.Now().After(deadline) {
						return SubmitOutcome{}, context.DeadlineExceeded
					}
					time.Sleep(2 * time.Millisecond)
				}
				return SubmitOutcome{Cached: true, Report: &rep, Tiles: 1}, nil
			}
		},
	})

	// Bipartite 1×2: cell (a,b) bound 0.9 dispatches first, cell (a,c)
	// bound 0.6 second; with concurrency 2 both are in flight before any
	// exact result exists.
	run, err := m.StartSpec(RunSpec{SetA: []string{idA}, SetB: []string{idB, idC}, TopK: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	runCh <- run
	st := waitRun(t, run)
	if st.State != RunDone {
		t.Fatalf("run ended %s, want done (pruning is success): %+v", st.State, st.Cells)
	}
	if c := st.Cells[0][0]; c.State != CellDone || c.Similarity != 0.8 {
		t.Fatalf("winner cell = %+v, want exact 0.8", c)
	}
	victim := st.Cells[0][1]
	if victim.State != CellBounded {
		t.Fatalf("victim cell state %q, want bounded (top-k early termination)", victim.State)
	}
	if victim.Bound == nil || *victim.Bound != 0.6 {
		t.Errorf("victim bound = %v, want 0.6", victim.Bound)
	}
	if victim.JobID == "" {
		t.Fatal("victim never had a job; the prune path was not exercised")
	}
	job := waitJob(t, sc, victim.JobID)
	if job.State != sched.Canceled {
		t.Errorf("victim job ended %s, want canceled through the group", job.State)
	}
	if math.IsNaN(victim.Similarity) || victim.Similarity != 0 {
		t.Errorf("bounded cell reports similarity %v, want 0 (no exact answer)", victim.Similarity)
	}
}
