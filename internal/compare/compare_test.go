package compare

import (
	"context"
	"testing"
	"time"

	"repro/internal/pathology"
	"repro/internal/sched"
	"repro/internal/store"
)

func testStore(t *testing.T) *store.Store {
	t.Helper()
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return s
}

// ingestVariant stores a generated dataset whose tile keys come from name
// (the image label) and whose content varies with seed.
func ingestVariant(t *testing.T, s *store.Store, image string, seed int64, tiles int) *store.Manifest {
	t.Helper()
	spec := pathology.Representative()
	spec.Name = image
	spec.Seed = seed
	spec.Tiles = tiles
	man, err := s.IngestDataset(pathology.Generate(spec))
	if err != nil {
		t.Fatalf("IngestDataset: %v", err)
	}
	return man
}

func openDataset(t *testing.T, s *store.Store, id string) *store.Dataset {
	t.Helper()
	ds, err := s.OpenDataset(id)
	if err != nil {
		t.Fatalf("OpenDataset(%s): %v", id, err)
	}
	return ds
}

func waitJob(t *testing.T, sc *sched.Scheduler, id string) sched.JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	st, err := sc.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait(%s): %v", id, err)
	}
	return st
}

// TestMatchManifests checks the merge join over partially overlapping tile
// indexes: the intersection is paired, everything else is reported on the
// correct side, nothing is dropped.
func TestMatchManifests(t *testing.T) {
	s := testStore(t)
	spec := pathology.Representative()
	spec.Tiles = 5
	d := pathology.Generate(spec)

	ingest := func(name string, lo, hi int) *store.Manifest {
		tiles := make([]store.IngestTile, 0, hi-lo)
		for _, tp := range d.Pairs[lo:hi] {
			tiles = append(tiles, store.IngestTile{Image: tp.Image, Tile: tp.Index, A: tp.A, B: tp.B})
		}
		man, err := s.Ingest(name, tiles)
		if err != nil {
			t.Fatalf("Ingest %s: %v", name, err)
		}
		return man
	}
	manA := ingest("front", 0, 4) // tiles 0..3
	manB := ingest("back", 2, 5)  // tiles 2..4

	m := MatchManifests(manA, manB)
	if len(m.Pairs) != 2 {
		t.Fatalf("matched %d pairs, want 2 (tiles 2,3)", len(m.Pairs))
	}
	for _, p := range m.Pairs {
		ka, kb := manA.Tiles[p.A], manB.Tiles[p.B]
		if ka.Image != kb.Image || ka.Tile != kb.Tile {
			t.Fatalf("pair joins tile %s/%d with %s/%d", ka.Image, ka.Tile, kb.Image, kb.Tile)
		}
	}
	if len(m.OnlyA) != 2 || m.OnlyA[0].Tile != 0 || m.OnlyA[1].Tile != 1 {
		t.Fatalf("OnlyA = %+v, want tiles 0,1", m.OnlyA)
	}
	if len(m.OnlyB) != 1 || m.OnlyB[0].Tile != 4 {
		t.Fatalf("OnlyB = %+v, want tile 4", m.OnlyB)
	}
	if got := len(m.Pairs) + len(m.OnlyA); got != len(manA.Tiles) {
		t.Fatalf("match accounts for %d of A's %d tiles", got, len(manA.Tiles))
	}
	if got := len(m.Pairs) + len(m.OnlyB); got != len(manB.Tiles) {
		t.Fatalf("match accounts for %d of B's %d tiles", got, len(manB.Tiles))
	}
}

// TestCrossSelfBitIdentical is the subsystem's exactness anchor: a
// cross-dataset job whose two sides are the same stored content must produce
// a report bit-identical to the single-dataset job over that dataset — the
// cross semantics (left set A vs right set B) degenerate to the embedded
// comparison exactly.
func TestCrossSelfBitIdentical(t *testing.T) {
	s := testStore(t)
	man := ingestVariant(t, s, "slideX", 7, 4)
	sc := sched.New(sched.Config{Devices: 2})
	defer sc.Close()

	ds := openDataset(t, s, man.ID)
	singleID, err := sc.SubmitSource("single", ds.Source())
	if err != nil {
		t.Fatalf("submit single: %v", err)
	}
	single := waitJob(t, sc, singleID)
	if single.State != sched.Done {
		t.Fatalf("single job ended %s: %s", single.State, single.Error)
	}

	src, match := NewSource(openDataset(t, s, man.ID), openDataset(t, s, man.ID))
	if len(match.Pairs) != len(man.Tiles) || len(match.OnlyA) != 0 || len(match.OnlyB) != 0 {
		t.Fatalf("self match = %d pairs, %d/%d unmatched", len(match.Pairs), len(match.OnlyA), len(match.OnlyB))
	}
	crossID, err := sc.SubmitSource("cross", src)
	if err != nil {
		t.Fatalf("submit cross: %v", err)
	}
	cross := waitJob(t, sc, crossID)
	if cross.State != sched.Done {
		t.Fatalf("cross job ended %s: %s", cross.State, cross.Error)
	}

	if cross.Report.Similarity != single.Report.Similarity {
		t.Errorf("cross similarity %.17g != single %.17g (must be bit-identical)",
			cross.Report.Similarity, single.Report.Similarity)
	}
	if cross.Report.RatioSum != single.Report.RatioSum ||
		cross.Report.Intersecting != single.Report.Intersecting ||
		cross.Report.Candidates != single.Report.Candidates {
		t.Errorf("cross report (%v, %d, %d) != single (%v, %d, %d)",
			cross.Report.RatioSum, cross.Report.Intersecting, cross.Report.Candidates,
			single.Report.RatioSum, single.Report.Intersecting, single.Report.Candidates)
	}
	if len(cross.Report.TileRatios) != len(single.Report.TileRatios) {
		t.Fatalf("cross has %d tile partials, single %d",
			len(cross.Report.TileRatios), len(single.Report.TileRatios))
	}
	for i := range cross.Report.TileRatios {
		if cross.Report.TileRatios[i] != single.Report.TileRatios[i] {
			t.Errorf("tile partial %d differs: %+v vs %+v",
				i, cross.Report.TileRatios[i], single.Report.TileRatios[i])
		}
	}
}

// TestCrossPartialOverlapComparesIntersection: a cross job over datasets
// sharing only some tile keys compares exactly the intersection, and the
// unmatched remainder is reported, not dropped.
func TestCrossPartialOverlapComparesIntersection(t *testing.T) {
	s := testStore(t)
	spec := pathology.Representative()
	spec.Tiles = 4
	d := pathology.Generate(spec)

	all := make([]store.IngestTile, len(d.Pairs))
	for i, tp := range d.Pairs {
		all[i] = store.IngestTile{Image: tp.Image, Tile: tp.Index, A: tp.A, B: tp.B}
	}
	manFull, err := s.Ingest("full", all)
	if err != nil {
		t.Fatal(err)
	}
	manHalf, err := s.Ingest("half", all[:2])
	if err != nil {
		t.Fatal(err)
	}

	sc := sched.New(sched.Config{Devices: 1})
	defer sc.Close()

	src, match := NewSource(openDataset(t, s, manFull.ID), openDataset(t, s, manHalf.ID))
	if len(match.Pairs) != 2 || len(match.OnlyA) != 2 || len(match.OnlyB) != 0 {
		t.Fatalf("match = %d pairs, %d/%d unmatched; want 2 pairs, 2 only in full",
			len(match.Pairs), len(match.OnlyA), len(match.OnlyB))
	}
	if src.Len() != 2 {
		t.Fatalf("source Len = %d, want the 2 matched pairs", src.Len())
	}
	crossID, err := sc.SubmitSource("partial", src)
	if err != nil {
		t.Fatal(err)
	}
	cross := waitJob(t, sc, crossID)
	if cross.State != sched.Done {
		t.Fatalf("cross job ended %s: %s", cross.State, cross.Error)
	}

	// Oracle: the half dataset self-compared (its tiles are the
	// intersection, and full's set A on those tiles is identical content).
	halfDS := openDataset(t, s, manHalf.ID)
	wantID, err := sc.SubmitSource("oracle", halfDS.Source())
	if err != nil {
		t.Fatal(err)
	}
	want := waitJob(t, sc, wantID)
	if cross.Report.Similarity != want.Report.Similarity ||
		cross.Report.Intersecting != want.Report.Intersecting {
		t.Errorf("intersection cross (%.17g, %d) != oracle (%.17g, %d)",
			cross.Report.Similarity, cross.Report.Intersecting,
			want.Report.Similarity, want.Report.Intersecting)
	}
}

// TestSourceTaskMatchesPolyTask: the text and pre-parsed materializations of
// a cross pair agree (the canonical text encodes exactly the decoded
// polygons).
func TestSourceTaskMatchesPolyTask(t *testing.T) {
	s := testStore(t)
	man := ingestVariant(t, s, "slideY", 3, 2)
	src, _ := NewSource(openDataset(t, s, man.ID), openDataset(t, s, man.ID))
	for i := 0; i < src.Len(); i++ {
		ft, err := src.Task(i)
		if err != nil {
			t.Fatalf("Task(%d): %v", i, err)
		}
		pt, err := src.PolyTask(i)
		if err != nil {
			t.Fatalf("PolyTask(%d): %v", i, err)
		}
		if ft.Image != pt.Image || ft.Tile != pt.Tile {
			t.Fatalf("task %d keys differ: %s/%d vs %s/%d", i, ft.Image, ft.Tile, pt.Image, pt.Tile)
		}
		if len(pt.A) == 0 || len(pt.B) == 0 {
			t.Fatalf("task %d materialized empty polygon sets", i)
		}
		if src.Weight(i) <= 0 {
			t.Fatalf("Weight(%d) = %d", i, src.Weight(i))
		}
	}
}
