package compare

// Monte-Carlo cell estimates for progressive matrix runs. Where bound.go
// answers "how high could this cell possibly be" from manifest metadata,
// EstimatePair answers "where does it probably land" by decoding a small
// sample of matched tiles, indexing one side's polygons in an R-tree, and
// casting random pixels through the MBR-intersecting pairs. The estimate is
// approximate by construction and is used only to refine the planner's
// submission order — never to skip a cell, which only the sound bound may do.

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"repro/internal/montecarlo"
	"repro/internal/parser"
	"repro/internal/pipeline"
	"repro/internal/rtree"
	"repro/internal/sched"
	"repro/internal/store"
)

// Estimation budget: a few tiles and a modest per-pair sample count keep the
// plan phase far cheaper than a single exact cell job.
const (
	estimateMaxTiles       = 4
	estimateMaxPairs       = 256
	estimateSamplesPerPair = 128
)

// CellEstimate is a Monte-Carlo guess at one cell's similarity with a
// confidence measure.
type CellEstimate struct {
	// Mean is the estimated similarity: the average estimated Jaccard ratio
	// over the sampled pairs that showed any intersection.
	Mean float64 `json:"mean"`
	// StdErr is the pooled standard error of Mean.
	StdErr float64 `json:"stderr"`
	// Pairs and Tiles report the sample the estimate rests on.
	Pairs int `json:"pairs"`
	Tiles int `json:"tiles"`
}

// EstimatePair estimates the similarity of dataset idA's set A against
// dataset idB's set B. The RNG seed derives from the dataset IDs, so repeated
// plans over the same pair order cells identically.
func EstimatePair(st *store.Store, idA, idB string) (CellEstimate, error) {
	_, src, m, self, err := OpenPair(st, idA, idB)
	if err != nil {
		return CellEstimate{}, err
	}
	rng := rand.New(rand.NewSource(pairSeed(idA, idB)))

	// Spread the tile sample across the matched range instead of taking a
	// prefix: canonical tile order correlates with spatial position, and a
	// prefix would estimate one corner of the image.
	pairs := m.Pairs
	if self {
		// OpenPair degenerates a self comparison to the single-dataset
		// source, whose indexes are the dataset's own tile positions.
		pairs = make([]MatchedPair, src.Len())
		for i := range pairs {
			pairs[i] = MatchedPair{A: i, B: i}
		}
	}
	step := 1
	if len(pairs) > estimateMaxTiles {
		step = len(pairs) / estimateMaxTiles
	}

	var est CellEstimate
	var varSum float64
	for i := 0; i < len(pairs) && est.Tiles < estimateMaxTiles; i += step {
		pt, err := polyTaskAt(src, i)
		if err != nil {
			return CellEstimate{}, fmt.Errorf("estimate tile %d: %w", i, err)
		}
		est.Tiles++

		// Index set A's MBRs; probe with each B polygon. The R-tree prunes
		// the candidate pairs to MBR intersections, mirroring the exact
		// kernel's filter stage.
		entries := make([]rtree.Entry, len(pt.A))
		for k, p := range pt.A {
			entries[k] = rtree.Entry{MBR: p.MBR(), ID: int32(k)}
		}
		tr := rtree.Build(entries, rtree.Options{})
		var hits []int32
		for _, q := range pt.B {
			hits, _ = tr.Search(q.MBR(), hits[:0])
			for _, id := range hits {
				if est.Pairs >= estimateMaxPairs {
					break
				}
				r, se, ok := montecarlo.EstimateRatio(rng, pt.A[id], q, estimateSamplesPerPair)
				if !ok || r == 0 {
					// No observed intersection: the exact kernel excludes
					// non-intersecting pairs from the average, so do we.
					continue
				}
				est.Pairs++
				est.Mean += r
				varSum += se * se
			}
		}
	}
	if est.Pairs > 0 {
		n := float64(est.Pairs)
		est.Mean /= n
		est.StdErr = math.Sqrt(varSum) / n
	}
	return est, nil
}

// polyTaskAt materializes matched pair i as decoded polygons. Both sources
// OpenPair can return (the cross source, the self-comparison dataset source)
// carry the parse-free PolySource contract; the text fallback exists only
// for exotic TaskSource implementations.
func polyTaskAt(src sched.TaskSource, i int) (pipeline.PolyTask, error) {
	if ps, ok := src.(sched.PolySource); ok {
		return ps.PolyTask(i)
	}
	ft, err := src.Task(i)
	if err != nil {
		return pipeline.PolyTask{}, err
	}
	a, err := parser.Parse(ft.RawA)
	if err != nil {
		return pipeline.PolyTask{}, err
	}
	b, err := parser.Parse(ft.RawB)
	if err != nil {
		return pipeline.PolyTask{}, err
	}
	return pipeline.PolyTask{Image: ft.Image, Tile: ft.Tile, A: a, B: b}, nil
}

// pairSeed derives a deterministic RNG seed from the pair's dataset IDs.
func pairSeed(idA, idB string) int64 {
	h := fnv.New64a()
	h.Write([]byte(idA))
	h.Write([]byte{0})
	h.Write([]byte(idB))
	return int64(h.Sum64())
}
