package compare

// K-way matrix runs: given K stored dataset IDs, plan the K·(K−1)/2
// unordered pairwise cells, submit each cell through the service's
// cache-aware job submitter (so repeated content is answered without
// recompute — including from the persisted cache after a restart), fan the
// remaining cells out with bounded concurrency, and aggregate the per-cell
// outcomes into a symmetric similarity matrix.
//
// Each run is one scheduler job group: cell jobs submitted for the run are
// owned members, cache-hit attachments are shared members, and cancelling
// the run cancels the owned members while merely detaching from the shared
// ones. Cell (i,j) is computed once as cross(ids[i], ids[j]) with i < j and
// mirrored into (j,i); the diagonal is the self-comparison, which by the
// cross semantics (set A of the left dataset vs set B of the right) is the
// dataset's own embedded A-vs-B job — it is not part of the plan, and the
// status marks it "self".

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pipeline"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Cell states surfaced in a matrix status.
const (
	CellPending  = "pending"
	CellRunning  = "running"
	CellDone     = "done"
	CellFailed   = "failed"
	CellCanceled = "canceled"
	CellSelf     = "self" // diagonal placeholder, never computed
)

// Run states.
const (
	RunRunning  = "running"
	RunDone     = "done"
	RunFailed   = "failed"
	RunCanceled = "canceled"
)

// SubmitOutcome is what the cache-aware submitter returns for one cell.
type SubmitOutcome struct {
	// JobID is the live scheduler job computing (or having computed) the
	// cell; empty when a persisted report answered without a job.
	JobID string
	// Cached marks answers served from the result cache (live or persisted).
	Cached bool
	// Report is set when the cell was answered terminal-immediately from a
	// persisted report; the run records it without waiting on any job.
	Report *pipeline.Result
	// Tiles and the unmatched counts describe the cell's tile pairing.
	Tiles      int
	UnmatchedA int
	UnmatchedB int
}

// SubmitFunc submits (or resolves from cache) one pairwise cell job
// comparing dataset idA's set A against dataset idB's set B.
type SubmitFunc func(idA, idB string) (SubmitOutcome, error)

// ManagerConfig wires a matrix manager.
type ManagerConfig struct {
	// Scheduler is where cell jobs run and groups live.
	Scheduler *sched.Scheduler
	// Submit is the cache-aware cell submitter (the HTTP server's job
	// submission path).
	Submit SubmitFunc
	// Concurrency bounds how many cells are in flight per run; default 4.
	Concurrency int
}

// Errors returned by the manager API.
var (
	ErrNoRun       = errors.New("compare: no such matrix run")
	ErrRunTerminal = errors.New("compare: matrix run already finished")
	ErrClosed      = errors.New("compare: matrix manager closed")
)

// Manager owns the matrix runs of one service instance.
type Manager struct {
	cfg ManagerConfig

	mu     sync.Mutex
	runs   map[string]*Run
	order  []string
	closed bool

	nextID int64
}

// NewManager creates a matrix manager.
func NewManager(cfg ManagerConfig) *Manager {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	return &Manager{cfg: cfg, runs: make(map[string]*Run)}
}

// Start plans and launches a matrix run over the dataset IDs. The caller is
// expected to have verified the IDs exist; duplicate IDs are rejected here
// because a duplicated dataset would make two cells aliases of each other
// and the matrix no longer K-way.
func (m *Manager) Start(name string, ids []string) (*Run, error) {
	if len(ids) < 2 {
		return nil, fmt.Errorf("compare: a matrix needs at least 2 datasets, got %d", len(ids))
	}
	seen := make(map[string]struct{}, len(ids))
	for _, id := range ids {
		if _, dup := seen[id]; dup {
			return nil, fmt.Errorf("compare: dataset %s listed twice", id)
		}
		seen[id] = struct{}{}
	}

	ctx, cancel := context.WithCancel(context.Background())
	r := &Run{
		m:       m,
		name:    name,
		ids:     append([]string(nil), ids...),
		created: time.Now(),
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		state:   RunRunning,
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			r.cells = append(r.cells, &cell{i: i, j: j, state: CellPending})
		}
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		cancel()
		return nil, ErrClosed
	}
	r.id = fmt.Sprintf("mx-%06d", atomic.AddInt64(&m.nextID, 1))
	r.group = m.cfg.Scheduler.NewGroup(r.id + ": " + r.label())
	m.runs[r.id] = r
	m.order = append(m.order, r.id)
	m.mu.Unlock()

	go r.execute(m.cfg)
	return r, nil
}

// Get returns the run with the given ID.
func (m *Manager) Get(id string) (*Run, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.runs[id]
	return r, ok
}

// Runs returns every run in start order.
func (m *Manager) Runs() []*Run {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Run, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.runs[id])
	}
	return out
}

// Cancel cancels a running matrix: pending cells are abandoned, owned member
// jobs are canceled through the run's job group.
func (m *Manager) Cancel(id string) error {
	r, ok := m.Get(id)
	if !ok {
		return ErrNoRun
	}
	return r.Cancel()
}

// Close cancels every non-terminal run; further Starts fail.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	runs := make([]*Run, 0, len(m.order))
	for _, id := range m.order {
		runs = append(runs, m.runs[id])
	}
	m.mu.Unlock()
	for _, r := range runs {
		_ = r.Cancel()
	}
}

// cell is one planned pairwise comparison; guarded by its run's mutex.
type cell struct {
	i, j       int
	state      string
	jobID      string
	cached     bool
	errMsg     string
	tiles      int
	unmatchedA int
	unmatchedB int
	report     *pipeline.Result // set when state == done
	// trace is the cell job's per-stage rollup, captured at the terminal
	// snapshot. A K×K status carries K·(K−1)/2 of these, so cells keep the
	// compact summary, not the full span list (GET /jobs/{id}/trace has it).
	trace *trace.Summary
}

// Run is one in-flight or finished matrix run.
type Run struct {
	m       *Manager
	id      string
	name    string
	ids     []string
	created time.Time
	group   *sched.Group
	ctx     context.Context
	cancel  context.CancelFunc
	done    chan struct{}

	mu              sync.Mutex
	cells           []*cell
	state           string
	finished        time.Time
	cancelRequested bool
}

// ID returns the run's manager-assigned ID.
func (r *Run) ID() string { return r.id }

// Done returns a channel closed when the run reaches a terminal state.
func (r *Run) Done() <-chan struct{} { return r.done }

func (r *Run) label() string {
	if r.name != "" {
		return r.name
	}
	return fmt.Sprintf("%d-way matrix", len(r.ids))
}

// Cancel stops the run: no further cells are submitted and owned member
// jobs are canceled. Idempotent on running runs; terminal runs report
// ErrRunTerminal.
func (r *Run) Cancel() error {
	r.mu.Lock()
	if r.state != RunRunning {
		r.mu.Unlock()
		return ErrRunTerminal
	}
	r.cancelRequested = true
	r.mu.Unlock()
	r.cancel()
	r.group.Cancel()
	return nil
}

// execute drives the run to completion: submit cells with bounded
// concurrency, wait for their jobs, finalize.
func (r *Run) execute(cfg ManagerConfig) {
	sem := make(chan struct{}, cfg.Concurrency)
	var wg sync.WaitGroup
	for _, c := range r.cells {
		if r.ctx.Err() != nil {
			r.setCellCanceled(c, "matrix canceled before cell submission")
			continue
		}
		select {
		case sem <- struct{}{}:
		case <-r.ctx.Done():
			r.setCellCanceled(c, "matrix canceled before cell submission")
			continue
		}
		wg.Add(1)
		go func(c *cell) {
			defer wg.Done()
			defer func() { <-sem }()
			r.runCell(c, cfg)
		}(c)
	}
	wg.Wait()
	r.group.Seal()
	r.finalize()
}

// maxCellAttempts bounds resubmissions of a cell whose job was canceled
// out from under the run (an attached shared job canceled by its owning
// run, or a direct DELETE /jobs/{id}).
const maxCellAttempts = 3

// runCell submits one cell and tracks its job to a terminal state.
func (r *Run) runCell(c *cell, cfg ManagerConfig) {
	for attempt := 1; ; attempt++ {
		out, err := cfg.Submit(r.ids[c.i], r.ids[c.j])
		if err != nil {
			if r.ctx.Err() != nil {
				r.setCellCanceled(c, "matrix canceled")
				return
			}
			r.mu.Lock()
			c.state = CellFailed
			c.errMsg = err.Error()
			r.mu.Unlock()
			return
		}

		r.mu.Lock()
		c.cached = out.Cached
		c.tiles = out.Tiles
		c.unmatchedA = out.UnmatchedA
		c.unmatchedB = out.UnmatchedB
		c.jobID = out.JobID
		if out.Report != nil {
			// Persisted-cache answer: terminal immediately, no live job.
			c.state = CellDone
			c.report = out.Report
			r.mu.Unlock()
			return
		}
		c.state = CellRunning
		r.mu.Unlock()

		// Owned means submitted for this run: cache hits attach to a job
		// some other submission created, and cancelling this matrix must
		// not cancel a job others depend on.
		if addErr := r.group.Add(out.JobID, !out.Cached); addErr != nil {
			// The run was canceled between submit and attach; the job
			// escaped the group's cancel fan-out, so cancel it here if it
			// is ours.
			if !out.Cached {
				_ = cfg.Scheduler.Cancel(out.JobID)
			}
			r.setCellCanceled(c, "matrix canceled")
			return
		}

		st, err := cfg.Scheduler.Wait(r.ctx, out.JobID)
		if err != nil {
			// Run canceled while waiting. The group cancel already reached
			// the job if it is owned; record the freshest snapshot without
			// blocking on in-flight shards.
			if snap, ok := cfg.Scheduler.Job(out.JobID); ok && snap.State.Terminal() {
				r.recordFinal(c, snap)
				return
			}
			r.setCellCanceled(c, "matrix canceled")
			return
		}
		if st.State == sched.Canceled && r.ctx.Err() == nil && attempt < maxCellAttempts {
			// The job was canceled but this run wasn't: the cell attached
			// to another run's job that got canceled, or someone canceled
			// the job directly. The cache evicts canceled jobs, so a
			// resubmit computes the cell fresh instead of poisoning the
			// whole run with a cancellation it never asked for. Drop the
			// dead attempt from the group so it doesn't inflate the run's
			// aggregates.
			r.group.Remove(out.JobID)
			continue
		}
		r.recordFinal(c, st)
		return
	}
}

// recordFinal maps a terminal job snapshot onto the cell.
func (r *Run) recordFinal(c *cell, st sched.JobStatus) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c.trace = trace.Summarize(st.Trace)
	switch st.State {
	case sched.Done:
		c.state = CellDone
		rep := st.Report
		c.report = &rep
		if c.tiles == 0 {
			c.tiles = st.Tiles
		}
	case sched.Failed:
		c.state = CellFailed
		c.errMsg = st.Error
	default:
		c.state = CellCanceled
	}
}

func (r *Run) setCellCanceled(c *cell, reason string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c.state = CellCanceled
	if c.errMsg == "" {
		c.errMsg = reason
	}
}

// finalize computes the run's terminal state from its cells.
func (r *Run) finalize() {
	r.mu.Lock()
	state := RunDone
	for _, c := range r.cells {
		switch c.state {
		case CellFailed, CellCanceled:
			state = RunFailed
		}
	}
	if r.cancelRequested {
		state = RunCanceled
	}
	r.state = state
	r.finished = time.Now()
	r.mu.Unlock()
	close(r.done)
}

// CellView is the wire form of one matrix cell.
type CellView struct {
	State      string  `json:"state"`
	JobID      string  `json:"job_id,omitempty"`
	Cached     bool    `json:"cached,omitempty"`
	Error      string  `json:"error,omitempty"`
	Tiles      int     `json:"tiles,omitempty"`
	UnmatchedA int     `json:"unmatched_a,omitempty"`
	UnmatchedB int     `json:"unmatched_b,omitempty"`
	Similarity float64 `json:"similarity"`
	Intersect  int     `json:"intersecting"`
	Candidates int     `json:"candidates"`
	// Trace is the cell job's per-stage duration rollup (total plus
	// milliseconds per stage name), set once the cell is terminal.
	Trace *trace.Summary `json:"trace,omitempty"`
}

// Status is a point-in-time snapshot of a matrix run: the K×K cell grid
// (diagonal marked self, off-diagonal mirrored from the computed upper
// triangle) plus the run's job-group aggregate.
type Status struct {
	ID       string     `json:"id"`
	Name     string     `json:"name,omitempty"`
	State    string     `json:"state"`
	Datasets []string   `json:"datasets"`
	Created  time.Time  `json:"created"`
	Finished *time.Time `json:"finished,omitempty"`
	// Cells is the symmetric K×K grid. Cell {i,j} is computed once, in the
	// upper-triangle orientation (dataset i's set A against dataset j's
	// set B for i < j), and the lower triangle holds a verbatim copy of
	// that computed cell — including its unmatched counts, which read in
	// the computed orientation. The uncomputed reverse orientation is a
	// different comparison and is never presented as run (see ROADMAP's
	// set-selectable comparisons follow-on).
	Cells [][]CellView `json:"cells"`
	// PlannedCells / TerminalCells track progress over the K·(K−1)/2 plan.
	PlannedCells  int               `json:"planned_cells"`
	TerminalCells int               `json:"terminal_cells"`
	Group         sched.GroupStatus `json:"group"`
}

// Status snapshots the run.
func (r *Run) Status() Status {
	r.mu.Lock()
	k := len(r.ids)
	st := Status{
		ID:           r.id,
		Name:         r.name,
		State:        r.state,
		Datasets:     append([]string(nil), r.ids...),
		Created:      r.created,
		PlannedCells: len(r.cells),
	}
	if !r.finished.IsZero() {
		t := r.finished
		st.Finished = &t
	}
	st.Cells = make([][]CellView, k)
	for i := range st.Cells {
		st.Cells[i] = make([]CellView, k)
		st.Cells[i][i] = CellView{State: CellSelf}
	}
	for _, c := range r.cells {
		v := CellView{
			State:      c.state,
			JobID:      c.jobID,
			Cached:     c.cached,
			Error:      c.errMsg,
			Tiles:      c.tiles,
			UnmatchedA: c.unmatchedA,
			UnmatchedB: c.unmatchedB,
			Trace:      c.trace,
		}
		if c.report != nil {
			v.Similarity = c.report.Similarity
			v.Intersect = c.report.Intersecting
			v.Candidates = c.report.Candidates
		}
		switch c.state {
		case CellDone, CellFailed, CellCanceled:
			st.TerminalCells++
		}
		st.Cells[c.i][c.j] = v
		// The mirror is a verbatim copy of the computed cell: swapping the
		// unmatched counts would present the reverse orientation — a
		// comparison that was never run — as computed.
		st.Cells[c.j][c.i] = v
	}
	r.mu.Unlock()
	st.Group = r.group.Status()
	return st
}

// SortRunsByID orders run snapshots deterministically (used by listings).
func SortRunsByID(runs []Status) {
	sort.Slice(runs, func(i, j int) bool { return runs[i].ID < runs[j].ID })
}
