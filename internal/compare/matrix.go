package compare

// K-way matrix runs: given stored dataset IDs, plan the pairwise cells,
// submit each cell through the service's cache-aware job submitter (so
// repeated content is answered without recompute — including from the
// persisted cache after a restart), fan the remaining cells out with bounded
// concurrency, and aggregate the per-cell outcomes into a similarity matrix.
//
// Runs come in two shapes. A symmetric run over `datasets` plans the
// K·(K−1)/2 unordered pairs and mirrors them into a K×K grid (the diagonal
// is the self-comparison, marked "self", never computed). A bipartite run
// over `set_a` × `set_b` plans every oriented (row, column) cell — including
// equal IDs, which degenerate to the dataset's own embedded A-vs-B job.
//
// Progressive execution: when the run carries a top_k or min_similarity
// objective, a plan phase first derives a cheap, sound upper bound per cell
// from manifest metadata (bound.go) — optionally refined in ordering by a
// Monte-Carlo estimate (estimate.go) — and cells are dispatched in
// descending-bound order. At dispatch time a cell whose bound cannot reach
// the objective is finished without a job: `skipped` when the bound falls
// below min_similarity (or is zero), `bounded` when top_k exact results
// already at or above its bound exist. New exact results also prune
// in-flight cells: their owned jobs are canceled through the group
// (group-aware early termination) and the cells finish `bounded`. Bounds
// are upper bounds, so a skipped cell's true similarity never exceeds the
// recorded bound — exact results are only ever elided, never approximated.
//
// Each run is one scheduler job group: cell jobs submitted for the run are
// owned members, cache-hit attachments are shared members, and cancelling
// the run cancels the owned members while merely detaching from the shared
// ones.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pipeline"
	"repro/internal/sched"
	"repro/internal/trace"
)

// Cell states surfaced in a matrix status.
const (
	CellPending  = "pending"
	CellRunning  = "running"
	CellDone     = "done"
	CellFailed   = "failed"
	CellCanceled = "canceled"
	CellSelf     = "self" // diagonal placeholder, never computed
	// CellSkipped marks a cell elided statically: its bound falls below the
	// run's min_similarity (or is zero), so the exact job was never needed.
	CellSkipped = "skipped"
	// CellBounded marks a cell elided by the top-k objective: enough exact
	// results at or above its bound exist, so it cannot enter the answer.
	CellBounded = "bounded"
)

// Run states.
const (
	RunRunning  = "running"
	RunDone     = "done"
	RunFailed   = "failed"
	RunCanceled = "canceled"
)

// SubmitOutcome is what the cache-aware submitter returns for one cell.
type SubmitOutcome struct {
	// JobID is the live scheduler job computing (or having computed) the
	// cell; empty when a persisted report answered without a job.
	JobID string
	// Cached marks answers served from the result cache (live or persisted).
	Cached bool
	// Trace carries the caller-side spans of a routed (remote) cell — the
	// cluster leg plus the serving peer's spliced spans. Nil for local cells,
	// whose trace lives on the job itself.
	Trace *trace.Trace
	// Report is set when the cell was answered terminal-immediately from a
	// persisted report; the run records it without waiting on any job.
	Report *pipeline.Result
	// Tiles and the unmatched counts describe the cell's tile pairing.
	Tiles      int
	UnmatchedA int
	UnmatchedB int
}

// SubmitFunc submits (or resolves from cache) one pairwise cell job
// comparing dataset idA's set A against dataset idB's set B. tenant is the
// run's accounting identity — cells run in the batch band charged to it.
type SubmitFunc func(idA, idB, tenant string) (SubmitOutcome, error)

// BoundFunc computes a cell's similarity upper bound (bound.go behind the
// server's store).
type BoundFunc func(idA, idB string) (CellBound, error)

// EstimateFunc computes a cell's Monte-Carlo similarity estimate
// (estimate.go behind the server's store).
type EstimateFunc func(idA, idB string) (CellEstimate, error)

// ManagerConfig wires a matrix manager.
type ManagerConfig struct {
	// Scheduler is where cell jobs run and groups live.
	Scheduler *sched.Scheduler
	// Submit is the cache-aware cell submitter (the HTTP server's job
	// submission path).
	Submit SubmitFunc
	// Bound, when set, enables the progressive plan phase. Without it every
	// cell runs exact regardless of the run's objectives.
	Bound BoundFunc
	// Estimate, when set and requested by the run, refines cell ordering.
	// Estimates never decide skips — only the sound bound does.
	Estimate EstimateFunc
	// Concurrency bounds how many cells are in flight per run; default 4.
	Concurrency int
}

// RunSpec describes one matrix run. Exactly one of Datasets (symmetric) or
// SetA+SetB (bipartite) must be set.
type RunSpec struct {
	Name     string
	Datasets []string
	SetA     []string
	SetB     []string
	// TopK, when positive, asks only for the K highest-similarity cells;
	// the rest may finish `bounded`.
	TopK int
	// MinSimilarity, in [0,1], statically skips cells whose bound falls
	// below it.
	MinSimilarity float64
	// Estimate asks the plan phase for Monte-Carlo ordering refinement.
	Estimate bool
	// Tenant is the run's accounting identity: every owned cell job is
	// submitted (batch band) and quota-charged under it, and the run's
	// scheduler group carries it for dashboards.
	Tenant string
	// Prelude carries spans the caller recorded before starting the run —
	// e.g. cluster pulls making the datasets resident on the coordinator.
	// Its per-stage totals fold into the run's plan_trace rollup.
	Prelude *trace.Trace
}

// progressive reports whether the spec carries an objective that permits
// eliding cells. A plain run (no objective) always computes every cell, so
// pre-progressive clients see bit-identical behavior.
func (sp RunSpec) progressive() bool { return sp.TopK > 0 || sp.MinSimilarity > 0 }

// Errors returned by the manager API.
var (
	ErrNoRun       = errors.New("compare: no such matrix run")
	ErrRunTerminal = errors.New("compare: matrix run already finished")
	ErrClosed      = errors.New("compare: matrix manager closed")
	// Cell-level errors, surfaced by GET /matrix/{id}/cells/{i}/{j}.
	ErrNoCell        = errors.New("compare: no such matrix cell")
	ErrCellSelf      = errors.New("compare: diagonal self cell is never computed")
	ErrCellNotElided = errors.New("compare: cell was not elided")
	ErrCellBusy      = errors.New("compare: cell is already being computed")
)

// Manager owns the matrix runs of one service instance.
type Manager struct {
	cfg ManagerConfig

	mu     sync.Mutex
	runs   map[string]*Run
	order  []string
	closed bool

	nextID int64
}

// NewManager creates a matrix manager.
func NewManager(cfg ManagerConfig) *Manager {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	return &Manager{cfg: cfg, runs: make(map[string]*Run)}
}

// Start plans and launches a symmetric matrix run over the dataset IDs.
func (m *Manager) Start(name string, ids []string) (*Run, error) {
	return m.StartSpec(RunSpec{Name: name, Datasets: ids}, nil)
}

// StartSpec plans and launches a run. The caller is expected to have
// verified the IDs exist; duplicates within one axis are rejected here
// because a duplicated dataset would make two cells aliases of each other.
// release, if non-nil, is invoked exactly once when the run reaches a
// terminal state (the server parks its dataset pins there); it is NOT
// invoked when StartSpec itself fails.
func (m *Manager) StartSpec(spec RunSpec, release func()) (*Run, error) {
	bipartite := len(spec.SetA) > 0 || len(spec.SetB) > 0
	if bipartite && len(spec.Datasets) > 0 {
		return nil, errors.New("compare: datasets and set_a/set_b are mutually exclusive")
	}
	if spec.TopK < 0 {
		return nil, fmt.Errorf("compare: top_k %d is negative", spec.TopK)
	}
	if spec.MinSimilarity < 0 || spec.MinSimilarity > 1 {
		return nil, fmt.Errorf("compare: min_similarity %v outside [0, 1]", spec.MinSimilarity)
	}
	var rows, cols []string
	if bipartite {
		if len(spec.SetA) == 0 || len(spec.SetB) == 0 {
			return nil, errors.New("compare: a bipartite matrix needs both set_a and set_b")
		}
		if err := checkAxis("set_a", spec.SetA); err != nil {
			return nil, err
		}
		if err := checkAxis("set_b", spec.SetB); err != nil {
			return nil, err
		}
		rows, cols = spec.SetA, spec.SetB
	} else {
		if len(spec.Datasets) < 2 {
			return nil, fmt.Errorf("compare: a matrix needs at least 2 datasets, got %d", len(spec.Datasets))
		}
		if err := checkAxis("datasets", spec.Datasets); err != nil {
			return nil, err
		}
		rows, cols = spec.Datasets, spec.Datasets
	}

	ctx, cancel := context.WithCancel(context.Background())
	r := &Run{
		m:         m,
		spec:      spec,
		bipartite: bipartite,
		rows:      append([]string(nil), rows...),
		cols:      append([]string(nil), cols...),
		created:   time.Now(),
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		notify:    make(chan struct{}),
		release:   release,
		state:     RunRunning,
	}
	if spec.Prelude != nil && len(spec.Prelude.Spans) > 0 {
		r.planTrace = trace.Summarize(spec.Prelude)
	}
	if bipartite {
		for i := range r.rows {
			for j := range r.cols {
				r.cells = append(r.cells, &cell{i: i, j: j, state: CellPending})
			}
		}
	} else {
		for i := 0; i < len(r.rows); i++ {
			for j := i + 1; j < len(r.cols); j++ {
				r.cells = append(r.cells, &cell{i: i, j: j, state: CellPending})
			}
		}
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		cancel()
		return nil, ErrClosed
	}
	r.id = fmt.Sprintf("mx-%06d", atomic.AddInt64(&m.nextID, 1))
	r.group = m.cfg.Scheduler.NewGroupFor(r.id+": "+r.label(), spec.Tenant)
	m.runs[r.id] = r
	m.order = append(m.order, r.id)
	m.mu.Unlock()

	go r.execute(m.cfg)
	return r, nil
}

func checkAxis(field string, ids []string) error {
	seen := make(map[string]struct{}, len(ids))
	for i, id := range ids {
		if _, dup := seen[id]; dup {
			return fmt.Errorf("compare: %s[%d] %s listed twice", field, i, id)
		}
		seen[id] = struct{}{}
	}
	return nil
}

// Get returns the run with the given ID.
func (m *Manager) Get(id string) (*Run, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.runs[id]
	return r, ok
}

// Runs returns every run in start order.
func (m *Manager) Runs() []*Run {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Run, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.runs[id])
	}
	return out
}

// Cancel cancels a running matrix: pending cells are abandoned, owned member
// jobs are canceled through the run's job group.
func (m *Manager) Cancel(id string) error {
	r, ok := m.Get(id)
	if !ok {
		return ErrNoRun
	}
	return r.Cancel()
}

// Close cancels every non-terminal run; further Starts fail.
func (m *Manager) Close() {
	m.mu.Lock()
	m.closed = true
	runs := make([]*Run, 0, len(m.order))
	for _, id := range m.order {
		runs = append(runs, m.runs[id])
	}
	m.mu.Unlock()
	for _, r := range runs {
		_ = r.Cancel()
	}
}

// cell is one planned pairwise comparison; guarded by its run's mutex.
type cell struct {
	i, j       int
	state      string
	jobID      string
	cached     bool
	errMsg     string
	tiles      int
	unmatchedA int
	unmatchedB int
	report     *pipeline.Result // set when state == done
	// bound is the plan phase's similarity upper bound; boundSet marks it
	// computed (a run without a Bound hook plans none).
	bound    float64
	boundSet bool
	// estimate is the optional Monte-Carlo ordering refinement.
	estimate *CellEstimate
	// pruned marks an in-flight cell whose job was canceled by top-k early
	// termination; its cancellation records as bounded, not canceled.
	pruned bool
	// trace is the cell job's per-stage rollup, captured at the terminal
	// snapshot. A K×K status carries K·(K−1)/2 of these, so cells keep the
	// compact summary, not the full span list (GET /jobs/{id}/trace has it).
	trace *trace.Summary
}

// Run is one in-flight or finished matrix run.
type Run struct {
	m         *Manager
	id        string
	spec      RunSpec
	bipartite bool
	rows      []string // row axis dataset IDs (set-A side of each cell)
	cols      []string // column axis dataset IDs (set-B side)
	created   time.Time
	group     *sched.Group
	ctx       context.Context
	cancel    context.CancelFunc
	done      chan struct{}
	release   func()
	relOnce   sync.Once

	mu              sync.Mutex
	cells           []*cell
	state           string
	finished        time.Time
	cancelRequested bool
	planTrace       *trace.Summary
	// version counts observable state changes; notify is closed and replaced
	// on each bump, waking WaitChange long-polls and stream writers.
	version int64
	notify  chan struct{}
}

// ID returns the run's manager-assigned ID.
func (r *Run) ID() string { return r.id }

// Done returns a channel closed when the run reaches a terminal state.
func (r *Run) Done() <-chan struct{} { return r.done }

func (r *Run) label() string {
	if r.spec.Name != "" {
		return r.spec.Name
	}
	if r.bipartite {
		return fmt.Sprintf("%d×%d matrix", len(r.rows), len(r.cols))
	}
	return fmt.Sprintf("%d-way matrix", len(r.rows))
}

// bumpLocked registers an observable state change; r.mu must be held.
func (r *Run) bumpLocked() {
	r.version++
	close(r.notify)
	r.notify = make(chan struct{})
}

// WaitChange blocks until the run's version exceeds since, the run is
// terminal, or ctx expires, then returns a fresh snapshot. On ctx expiry the
// snapshot is still returned alongside the context error, so long-poll
// handlers can answer with the current state rather than nothing.
func (r *Run) WaitChange(ctx context.Context, since int64) (Status, error) {
	for {
		r.mu.Lock()
		if r.version > since || r.state != RunRunning {
			r.mu.Unlock()
			return r.Status(), nil
		}
		ch := r.notify
		r.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return r.Status(), ctx.Err()
		}
	}
}

// Cancel stops the run: no further cells are submitted and owned member
// jobs are canceled. Idempotent on running runs; terminal runs report
// ErrRunTerminal.
func (r *Run) Cancel() error {
	r.mu.Lock()
	if r.state != RunRunning {
		r.mu.Unlock()
		return ErrRunTerminal
	}
	r.cancelRequested = true
	r.mu.Unlock()
	r.cancel()
	r.group.Cancel()
	return nil
}

// execute drives the run to completion: plan bounds, dispatch cells in
// descending-bound order with bounded concurrency, wait, finalize.
func (r *Run) execute(cfg ManagerConfig) {
	order := r.plan(cfg)
	sem := make(chan struct{}, cfg.Concurrency)
	var wg sync.WaitGroup
	for _, c := range order {
		if r.ctx.Err() != nil {
			r.setCellCanceled(c, "matrix canceled before cell submission")
			continue
		}
		select {
		case sem <- struct{}{}:
		case <-r.ctx.Done():
			r.setCellCanceled(c, "matrix canceled before cell submission")
			continue
		}
		// Decide at the last moment, with every earlier exact result in
		// hand: cells the objective already excludes finish without a job.
		if r.elide(c) {
			<-sem
			continue
		}
		wg.Add(1)
		go func(c *cell) {
			defer wg.Done()
			defer func() { <-sem }()
			r.runCell(c, cfg)
		}(c)
	}
	wg.Wait()
	r.group.Seal()
	r.finalize()
}

// plan computes per-cell bounds (and optional estimates), records them as
// `bound`/`estimate` stages in the run-level trace, and returns the cells in
// dispatch order: bound descending, estimate mean breaking ties, plan order
// breaking the rest (which keeps non-progressive runs in their original,
// pre-progressive submission order).
func (r *Run) plan(cfg ManagerConfig) []*cell {
	if cfg.Bound == nil {
		return r.cells
	}
	rec := trace.NewRecorder()
	for _, c := range r.cells {
		if r.ctx.Err() != nil {
			break
		}
		idA, idB := r.rows[c.i], r.cols[c.j]
		start := time.Now()
		cb, err := cfg.Bound(idA, idB)
		rec.Add("bound", fmt.Sprintf("%.8s×%.8s", idA, idB), start, time.Now())
		r.mu.Lock()
		if err != nil {
			// A bound failure never fails the cell — the trivial bound is
			// always sound, the cell just can't be elided.
			c.bound, c.boundSet = 1, true
		} else {
			c.bound, c.boundSet = cb.Bound, true
			c.tiles = cb.Tiles
		}
		r.mu.Unlock()

		if r.spec.Estimate && cfg.Estimate != nil && cb.Bound > 0 {
			start = time.Now()
			est, err := cfg.Estimate(idA, idB)
			rec.Add("estimate", fmt.Sprintf("%.8s×%.8s", idA, idB), start, time.Now())
			if err == nil {
				r.mu.Lock()
				c.estimate = &est
				r.mu.Unlock()
			}
		}
	}
	rec.Finish()

	sum := trace.Summarize(rec.Snapshot())
	r.mu.Lock()
	// Fold in the caller's prelude (cluster pulls recorded before the run
	// started) rather than overwriting it: plan_trace is the whole cost of
	// getting the run ready to dispatch.
	if prev := r.planTrace; prev != nil {
		sum.TotalMs += prev.TotalMs
		for k, v := range prev.Stages {
			sum.Stages[k] += v
		}
	}
	r.planTrace = sum
	order := make([]*cell, len(r.cells))
	copy(order, r.cells)
	sort.SliceStable(order, func(a, b int) bool {
		if order[a].bound != order[b].bound {
			return order[a].bound > order[b].bound
		}
		ea, eb := 0.0, 0.0
		if order[a].estimate != nil {
			ea = order[a].estimate.Mean
		}
		if order[b].estimate != nil {
			eb = order[b].estimate.Mean
		}
		return ea > eb
	})
	r.bumpLocked()
	r.mu.Unlock()
	return order
}

// elide finishes a cell without a job when the run's objective already
// excludes it; it reports whether it did. Only sound bounds elide.
func (r *Run) elide(c *cell) bool {
	if !r.spec.progressive() {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !c.boundSet {
		return false
	}
	if c.bound == 0 || c.bound < r.spec.MinSimilarity {
		c.state = CellSkipped
		c.errMsg = ""
		r.bumpLocked()
		return true
	}
	if r.spec.TopK > 0 {
		if kth, n := r.kthBestLocked(); n >= r.spec.TopK && c.bound < kth {
			c.state = CellBounded
			r.bumpLocked()
			return true
		}
	}
	return false
}

// kthBestLocked returns the k-th highest exact similarity so far and the
// number of exact results; r.mu must be held.
func (r *Run) kthBestLocked() (float64, int) {
	var sims []float64
	for _, c := range r.cells {
		if c.state == CellDone && c.report != nil {
			sims = append(sims, c.report.Similarity)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(sims)))
	if len(sims) < r.spec.TopK {
		return 0, len(sims)
	}
	return sims[r.spec.TopK-1], len(sims)
}

// maybePrune cancels in-flight cells a fresh exact result has excluded from
// the top-k answer: their bound is strictly below the k-th best exact
// similarity, so they cannot enter the answer no matter how they finish.
// Owned jobs are canceled through the group (shared cache-attachments keep
// running for their other consumers and simply finish exact).
func (r *Run) maybePrune() {
	if r.spec.TopK <= 0 {
		return
	}
	r.mu.Lock()
	kth, n := r.kthBestLocked()
	var victims []string
	if n >= r.spec.TopK {
		for _, c := range r.cells {
			if c.state == CellRunning && c.boundSet && c.bound < kth && !c.pruned && c.jobID != "" {
				c.pruned = true
				victims = append(victims, c.jobID)
			}
		}
	}
	r.mu.Unlock()
	for _, id := range victims {
		r.group.CancelMember(id)
	}
}

// maxCellAttempts bounds resubmissions of a cell whose job was canceled
// out from under the run (an attached shared job canceled by its owning
// run, or a direct DELETE /jobs/{id}).
const maxCellAttempts = 3

// runCell submits one cell and tracks its job to a terminal state.
func (r *Run) runCell(c *cell, cfg ManagerConfig) {
	for attempt := 1; ; attempt++ {
		out, err := cfg.Submit(r.rows[c.i], r.cols[c.j], r.spec.Tenant)
		if err != nil {
			if r.ctx.Err() != nil {
				r.setCellCanceled(c, "matrix canceled")
				return
			}
			r.mu.Lock()
			c.state = CellFailed
			c.errMsg = err.Error()
			r.bumpLocked()
			r.mu.Unlock()
			return
		}

		r.mu.Lock()
		c.cached = out.Cached
		c.tiles = out.Tiles
		c.unmatchedA = out.UnmatchedA
		c.unmatchedB = out.UnmatchedB
		c.jobID = out.JobID
		if out.Report != nil {
			// Persisted-cache answer: terminal immediately, no live job.
			c.state = CellDone
			c.report = out.Report
			c.trace = trace.Summarize(out.Trace)
			r.bumpLocked()
			r.mu.Unlock()
			r.maybePrune()
			return
		}
		c.state = CellRunning
		r.bumpLocked()
		r.mu.Unlock()

		// Owned means submitted for this run: cache hits attach to a job
		// some other submission created, and cancelling this matrix must
		// not cancel a job others depend on.
		if addErr := r.group.Add(out.JobID, !out.Cached); addErr != nil {
			// The run was canceled between submit and attach; the job
			// escaped the group's cancel fan-out, so cancel it here if it
			// is ours.
			if !out.Cached {
				_ = cfg.Scheduler.Cancel(out.JobID)
			}
			r.setCellCanceled(c, "matrix canceled")
			return
		}

		st, err := cfg.Scheduler.Wait(r.ctx, out.JobID)
		if err != nil {
			// Run canceled while waiting. The group cancel already reached
			// the job if it is owned; record the freshest snapshot without
			// blocking on in-flight shards.
			if snap, ok := cfg.Scheduler.Job(out.JobID); ok && snap.State.Terminal() {
				r.recordFinal(c, snap)
				return
			}
			r.setCellCanceled(c, "matrix canceled")
			return
		}
		if st.State == sched.Canceled && r.ctx.Err() == nil {
			r.mu.Lock()
			pruned := c.pruned
			r.mu.Unlock()
			if pruned {
				// Top-k early termination canceled this job on purpose: the
				// cell is excluded from the answer, not a casualty.
				r.mu.Lock()
				c.state = CellBounded
				c.trace = trace.Summarize(st.Trace)
				r.bumpLocked()
				r.mu.Unlock()
				return
			}
			if attempt < maxCellAttempts {
				// The job was canceled but this run wasn't: the cell attached
				// to another run's job that got canceled, or someone canceled
				// the job directly. The cache evicts canceled jobs, so a
				// resubmit computes the cell fresh instead of poisoning the
				// whole run with a cancellation it never asked for. Drop the
				// dead attempt from the group so it doesn't inflate the run's
				// aggregates.
				r.group.Remove(out.JobID)
				continue
			}
		}
		r.recordFinal(c, st)
		return
	}
}

// recordFinal maps a terminal job snapshot onto the cell.
func (r *Run) recordFinal(c *cell, st sched.JobStatus) {
	r.mu.Lock()
	c.trace = trace.Summarize(st.Trace)
	switch st.State {
	case sched.Done:
		c.state = CellDone
		rep := st.Report
		c.report = &rep
		if c.tiles == 0 {
			c.tiles = st.Tiles
		}
	case sched.Failed:
		c.state = CellFailed
		c.errMsg = st.Error
	default:
		c.state = CellCanceled
	}
	done := c.state == CellDone
	r.bumpLocked()
	r.mu.Unlock()
	if done {
		r.maybePrune()
	}
}

func (r *Run) setCellCanceled(c *cell, reason string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c.state = CellCanceled
	if c.errMsg == "" {
		c.errMsg = reason
	}
	r.bumpLocked()
}

// finalize computes the run's terminal state from its cells. Skipped and
// bounded cells are successful outcomes — the objective excluded them.
func (r *Run) finalize() {
	r.mu.Lock()
	state := RunDone
	for _, c := range r.cells {
		switch c.state {
		case CellFailed, CellCanceled:
			state = RunFailed
		}
	}
	if r.cancelRequested {
		state = RunCanceled
	}
	r.state = state
	r.finished = time.Now()
	r.bumpLocked()
	r.mu.Unlock()
	r.relOnce.Do(func() {
		if r.release != nil {
			r.release()
		}
	})
	close(r.done)
}

// CellView is the wire form of one matrix cell.
type CellView struct {
	State      string  `json:"state"`
	JobID      string  `json:"job_id,omitempty"`
	Cached     bool    `json:"cached,omitempty"`
	Error      string  `json:"error,omitempty"`
	Tiles      int     `json:"tiles,omitempty"`
	UnmatchedA int     `json:"unmatched_a,omitempty"`
	UnmatchedB int     `json:"unmatched_b,omitempty"`
	Similarity float64 `json:"similarity"`
	Intersect  int     `json:"intersecting"`
	Candidates int     `json:"candidates"`
	// Bound is the plan phase's similarity upper bound; present on every
	// planned cell of a progressive run. Skipped/bounded cells' true
	// similarity never exceeds it.
	Bound *float64 `json:"bound,omitempty"`
	// Estimate is the optional Monte-Carlo ordering estimate.
	Estimate *CellEstimate `json:"estimate,omitempty"`
	// Trace is the cell job's per-stage duration rollup (total plus
	// milliseconds per stage name), set once the cell is terminal.
	Trace *trace.Summary `json:"trace,omitempty"`
}

// Status is a point-in-time snapshot of a matrix run: the cell grid plus the
// run's job-group aggregate.
type Status struct {
	ID       string     `json:"id"`
	Name     string     `json:"name,omitempty"`
	State    string     `json:"state"`
	Created  time.Time  `json:"created"`
	Finished *time.Time `json:"finished,omitempty"`
	// Datasets is the axis of a symmetric run; SetA/SetB the axes of a
	// bipartite run (rows × columns).
	Datasets []string `json:"datasets,omitempty"`
	SetA     []string `json:"set_a,omitempty"`
	SetB     []string `json:"set_b,omitempty"`
	// The run's progressive objectives, echoed from the request.
	TopK          int     `json:"top_k,omitempty"`
	MinSimilarity float64 `json:"min_similarity,omitempty"`
	// Version increments on every observable change; pass it back as
	// ?since= to long-poll for the next one.
	Version int64 `json:"version"`
	// Cells is the grid. Symmetric runs: the K×K grid, diagonal marked
	// self, cell {i,j} computed once in the upper-triangle orientation
	// (dataset i's set A against dataset j's set B for i < j) and the lower
	// triangle holding a verbatim copy — including its unmatched counts,
	// which read in the computed orientation; the uncomputed reverse
	// orientation is a different comparison and is never presented as run.
	// Bipartite runs: len(SetA) rows × len(SetB) columns, every cell its
	// own oriented comparison, no mirroring.
	Cells [][]CellView `json:"cells"`
	// PlannedCells / TerminalCells track progress over the plan;
	// Exact/Skipped/Bounded break the terminal cells down by how they were
	// answered.
	PlannedCells  int `json:"planned_cells"`
	TerminalCells int `json:"terminal_cells"`
	ExactCells    int `json:"exact_cells"`
	SkippedCells  int `json:"skipped_cells,omitempty"`
	BoundedCells  int `json:"bounded_cells,omitempty"`
	// PlanTrace is the run-level plan-phase rollup (bound/estimate stages).
	PlanTrace *trace.Summary    `json:"plan_trace,omitempty"`
	Group     sched.GroupStatus `json:"group"`
}

// Status snapshots the run.
func (r *Run) Status() Status {
	r.mu.Lock()
	st := Status{
		ID:            r.id,
		Name:          r.spec.Name,
		State:         r.state,
		Created:       r.created,
		TopK:          r.spec.TopK,
		MinSimilarity: r.spec.MinSimilarity,
		Version:       r.version,
		PlannedCells:  len(r.cells),
		PlanTrace:     r.planTrace,
	}
	if r.bipartite {
		st.SetA = append([]string(nil), r.rows...)
		st.SetB = append([]string(nil), r.cols...)
	} else {
		st.Datasets = append([]string(nil), r.rows...)
	}
	if !r.finished.IsZero() {
		t := r.finished
		st.Finished = &t
	}
	st.Cells = make([][]CellView, len(r.rows))
	for i := range st.Cells {
		st.Cells[i] = make([]CellView, len(r.cols))
		if !r.bipartite {
			st.Cells[i][i] = CellView{State: CellSelf}
		}
	}
	for _, c := range r.cells {
		v := r.viewLocked(c)
		switch c.state {
		case CellDone:
			st.TerminalCells++
			st.ExactCells++
		case CellFailed, CellCanceled:
			st.TerminalCells++
		case CellSkipped:
			st.TerminalCells++
			st.SkippedCells++
		case CellBounded:
			st.TerminalCells++
			st.BoundedCells++
		}
		st.Cells[c.i][c.j] = v
		if !r.bipartite {
			// The mirror is a verbatim copy of the computed cell: swapping
			// the unmatched counts would present the reverse orientation — a
			// comparison that was never run — as computed.
			st.Cells[c.j][c.i] = v
		}
	}
	r.mu.Unlock()
	st.Group = r.group.Status()
	return st
}

// viewLocked builds the wire view of one cell; r.mu must be held.
func (r *Run) viewLocked(c *cell) CellView {
	v := CellView{
		State:      c.state,
		JobID:      c.jobID,
		Cached:     c.cached,
		Error:      c.errMsg,
		Tiles:      c.tiles,
		UnmatchedA: c.unmatchedA,
		UnmatchedB: c.unmatchedB,
		Estimate:   c.estimate,
		Trace:      c.trace,
	}
	if c.boundSet {
		b := c.bound
		v.Bound = &b
	}
	if c.report != nil {
		v.Similarity = c.report.Similarity
		v.Intersect = c.report.Intersecting
		v.Candidates = c.report.Candidates
	}
	return v
}

// cellAt resolves grid coordinates to the planned cell computing them. In a
// symmetric run a mirror coordinate (i > j) resolves to its upper-triangle
// cell and the diagonal reports ErrCellSelf. rows, cols and the cells slice
// are immutable after StartSpec, so resolution itself needs no lock.
func (r *Run) cellAt(i, j int) (*cell, error) {
	if i < 0 || i >= len(r.rows) || j < 0 || j >= len(r.cols) {
		return nil, fmt.Errorf("%w: (%d,%d) outside %d×%d grid", ErrNoCell, i, j, len(r.rows), len(r.cols))
	}
	if !r.bipartite {
		if i == j {
			return nil, ErrCellSelf
		}
		if i > j {
			i, j = j, i
		}
	}
	for _, c := range r.cells {
		if c.i == i && c.j == j {
			return c, nil
		}
	}
	return nil, fmt.Errorf("%w: (%d,%d)", ErrNoCell, i, j)
}

// Cell returns the wire view of one cell by grid coordinates. The diagonal of
// a symmetric run answers its placeholder view rather than an error.
func (r *Run) Cell(i, j int) (CellView, error) {
	c, err := r.cellAt(i, j)
	if errors.Is(err, ErrCellSelf) {
		return CellView{State: CellSelf}, nil
	}
	if err != nil {
		return CellView{}, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.viewLocked(c), nil
}

// UpgradeCell recomputes an elided (`skipped` or `bounded`) cell exactly, on
// demand, and patches it into the run as `done` — the lazy complement of
// progressive execution: the objective elides cheaply up front, and a caller
// who later needs one specific elided answer pays for exactly that cell. The
// upgrade goes through the same cache-aware submitter as planned cells but
// outside the run's job group and concurrency gate: it is caller-driven work
// on a (typically finished) run and must not be pruned by the objective that
// elided the cell in the first place — which maybePrune guarantees, since the
// upgrading cell never records a job ID while running. Already-exact cells
// return their view idempotently; other states report ErrCellBusy or
// ErrCellNotElided alongside the current view.
func (r *Run) UpgradeCell(i, j int) (CellView, error) {
	c, err := r.cellAt(i, j)
	if errors.Is(err, ErrCellSelf) {
		return CellView{State: CellSelf}, err
	}
	if err != nil {
		return CellView{}, err
	}
	r.mu.Lock()
	prev := c.state
	switch prev {
	case CellDone:
		v := r.viewLocked(c)
		r.mu.Unlock()
		return v, nil
	case CellSkipped, CellBounded:
		// The states an upgrade exists for.
	case CellRunning:
		v := r.viewLocked(c)
		r.mu.Unlock()
		return v, ErrCellBusy
	default:
		v := r.viewLocked(c)
		r.mu.Unlock()
		return v, fmt.Errorf("%w (cell is %s)", ErrCellNotElided, prev)
	}
	c.state = CellRunning
	c.errMsg = ""
	r.bumpLocked()
	r.mu.Unlock()

	restore := func() {
		r.mu.Lock()
		c.state = prev
		r.bumpLocked()
		r.mu.Unlock()
	}

	out, err := r.m.cfg.Submit(r.rows[c.i], r.cols[c.j], r.spec.Tenant)
	if err != nil {
		restore()
		return CellView{}, fmt.Errorf("compare: exact upgrade: %w", err)
	}
	r.mu.Lock()
	c.cached = out.Cached
	if out.Tiles != 0 {
		c.tiles = out.Tiles
	}
	c.unmatchedA = out.UnmatchedA
	c.unmatchedB = out.UnmatchedB
	if out.Report != nil {
		// A cache layer answered terminal-immediately: no live job to track.
		c.state = CellDone
		c.report = out.Report
		c.trace = trace.Summarize(out.Trace)
		c.jobID = out.JobID
		v := r.viewLocked(c)
		r.bumpLocked()
		r.mu.Unlock()
		r.maybePrune()
		return v, nil
	}
	r.mu.Unlock()

	// Wait with a background context: the run's own ctx is canceled once the
	// run finishes, and an upgrade outlives the run lifecycle by design.
	st, err := r.m.cfg.Scheduler.Wait(context.Background(), out.JobID)
	if err != nil {
		restore()
		return CellView{}, fmt.Errorf("compare: exact upgrade: %w", err)
	}
	if st.State != sched.Done {
		restore()
		msg := st.Error
		if msg == "" {
			msg = "job ended " + st.State.String()
		}
		return CellView{}, fmt.Errorf("compare: exact upgrade: %s", msg)
	}
	r.mu.Lock()
	c.state = CellDone
	rep := st.Report
	c.report = &rep
	c.jobID = out.JobID
	c.trace = trace.Summarize(st.Trace)
	if c.tiles == 0 {
		c.tiles = st.Tiles
	}
	v := r.viewLocked(c)
	r.bumpLocked()
	r.mu.Unlock()
	r.maybePrune()
	return v, nil
}

// SortRunsByID orders run snapshots deterministically (used by listings).
func SortRunsByID(runs []Status) {
	sort.Slice(runs, func(i, j int) bool { return runs[i].ID < runs[j].ID })
}
