package compare

// Cheap per-cell similarity bounds for progressive matrix runs.
//
// A cell's similarity is the average per-pair Jaccard ratio over the truly
// intersecting polygon pairs of the matched tiles, so any upper bound on a
// single pair's ratio bounds the whole cell: avg ≤ max. BoundPair derives
// that bound from manifest metadata alone — the per-set stats the store
// records at ingest (covering MBR, min/max polygon area) — without touching
// a segment file, which is what makes planning a K-way matrix O(K² · tiles)
// index work instead of O(K² · polygons) decode work.
//
// Soundness, against the kernel's actual semantics: polygons are rectilinear
// on the integer lattice, so a polygon's pixel count equals its shoelace
// area, and for any pair (P, Q) in a matched tile
//
//	inter(P,Q) ≤ min(Pixels(mbrA ∩ mbrB), maxAreaA, maxAreaB)
//	union(P,Q) = Area(P) + Area(Q) − inter ≥ max(minAreaA, minAreaB, 1)
//
// where mbrX/minAreaX/maxAreaX are the tile's per-set stats. The tile bound
// is the quotient clamped to 1 (a ratio cannot exceed 1 on the lattice); the
// cell bound is the max over matched tiles. Missing or invalid stats fall
// back to the trivial bound 1, which is always sound.

import (
	"fmt"

	"repro/internal/store"
)

// CellBound is the planner's upper bound on one cell's similarity.
type CellBound struct {
	// Bound is an upper bound on the cell's Similarity, in [0, 1].
	Bound float64 `json:"bound"`
	// Tiles is the matched tile-pair count the bound covers.
	Tiles int `json:"tiles"`
	// Trivial marks bounds that degraded to 1 because at least one matched
	// tile carried no usable stats (datasets ingested before stats existed).
	Trivial bool `json:"trivial,omitempty"`
}

// BoundPair computes the similarity upper bound for the cell comparing
// dataset idA's set A against dataset idB's set B, from manifests alone.
func BoundPair(st *store.Store, idA, idB string) (CellBound, error) {
	manA, ok := st.Get(idA)
	if !ok {
		return CellBound{}, fmt.Errorf("dataset_a %s: %w", idA, store.ErrNotFound)
	}
	manB, ok := st.Get(idB)
	if !ok {
		return CellBound{}, fmt.Errorf("dataset_b %s: %w", idB, store.ErrNotFound)
	}
	m := MatchManifests(manA, manB)
	cb := CellBound{Tiles: len(m.Pairs)}
	for _, p := range m.Pairs {
		tb, trivial := tileBound(manA.Tiles[p.A], manB.Tiles[p.B])
		cb.Trivial = cb.Trivial || trivial
		if tb > cb.Bound {
			cb.Bound = tb
		}
		if cb.Bound >= 1 {
			cb.Bound = 1
			break // nothing can raise it further
		}
	}
	return cb, nil
}

// tileBound bounds any pair ratio within one matched tile (A's set A against
// B's set B). trivial reports a stats-less fallback to 1.
func tileBound(ta, tb store.TileInfo) (bound float64, trivial bool) {
	// An empty set on either side yields no pairs at all.
	if ta.CountA == 0 || tb.CountB == 0 {
		return 0, false
	}
	sa, sb := ta.StatsA, tb.StatsB
	if !sa.Valid() || !sb.Valid() {
		return 1, true
	}
	// All-degenerate sets (every polygon zero-area) cannot intersect on the
	// pixel lattice, so no pair ever counts toward the similarity.
	if sa.MaxArea == 0 || sb.MaxArea == 0 {
		return 0, false
	}
	window := sa.MBR.Intersection(sb.MBR)
	if window.IsEmpty() {
		return 0, false
	}
	num := window.Pixels()
	if sa.MaxArea < num {
		num = sa.MaxArea
	}
	if sb.MaxArea < num {
		num = sb.MaxArea
	}
	den := int64(1)
	if sa.MinArea > den {
		den = sa.MinArea
	}
	if sb.MinArea > den {
		den = sb.MinArea
	}
	b := float64(num) / float64(den)
	if b > 1 {
		b = 1
	}
	return b, false
}
