package compare

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/pipeline"
	"repro/internal/sched"
	"repro/internal/store"
)

// directSubmit is a cache-less cell submitter over a store and scheduler.
func directSubmit(t *testing.T, s *store.Store, sc *sched.Scheduler, calls *int64) SubmitFunc {
	return func(idA, idB, _ string) (SubmitOutcome, error) {
		if calls != nil {
			atomic.AddInt64(calls, 1)
		}
		dsA, err := s.OpenDataset(idA)
		if err != nil {
			return SubmitOutcome{}, err
		}
		dsB, err := s.OpenDataset(idB)
		if err != nil {
			return SubmitOutcome{}, err
		}
		src, match := NewSource(dsA, dsB)
		id, err := sc.SubmitSource("cell", src)
		if err != nil {
			return SubmitOutcome{}, err
		}
		return SubmitOutcome{
			JobID:      id,
			Tiles:      len(match.Pairs),
			UnmatchedA: len(match.OnlyA),
			UnmatchedB: len(match.OnlyB),
		}, nil
	}
}

func waitRun(t *testing.T, r *Run) Status {
	t.Helper()
	select {
	case <-r.Done():
	case <-time.After(time.Minute):
		t.Fatalf("matrix run %s did not finish", r.ID())
	}
	return r.Status()
}

// TestMatrixSymmetricAndExact: a K=3 run produces a symmetric 3×3 status
// whose off-diagonal cells are bit-identical to independently submitted
// pairwise jobs, with the diagonal marked self and the job group terminal.
func TestMatrixSymmetricAndExact(t *testing.T) {
	s := testStore(t)
	sc := sched.New(sched.Config{Devices: 2})
	t.Cleanup(sc.Close)

	ids := []string{
		ingestVariant(t, s, "slideM", 11, 3).ID,
		ingestVariant(t, s, "slideM", 22, 3).ID,
		ingestVariant(t, s, "slideM", 33, 3).ID,
	}

	m := NewManager(ManagerConfig{Scheduler: sc, Submit: directSubmit(t, s, sc, nil), Concurrency: 2})
	run, err := m.Start("exactness", ids)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	st := waitRun(t, run)
	if st.State != RunDone {
		t.Fatalf("run ended %s, cells %+v", st.State, st.Cells)
	}
	if st.PlannedCells != 3 || st.TerminalCells != 3 {
		t.Fatalf("planned/terminal = %d/%d, want 3/3", st.PlannedCells, st.TerminalCells)
	}
	if len(st.Cells) != 3 {
		t.Fatalf("cell grid is %d×?, want 3×3", len(st.Cells))
	}

	for i := 0; i < 3; i++ {
		if st.Cells[i][i].State != CellSelf {
			t.Errorf("diagonal cell [%d][%d] state %q, want self", i, i, st.Cells[i][i].State)
		}
		for j := 0; j < 3; j++ {
			if i == j {
				continue
			}
			c, mirror := st.Cells[i][j], st.Cells[j][i]
			if c.State != CellDone {
				t.Fatalf("cell [%d][%d] state %q: %s", i, j, c.State, c.Error)
			}
			if c.Similarity != mirror.Similarity || c.JobID != mirror.JobID {
				t.Errorf("cell [%d][%d] not mirrored: %v/%s vs %v/%s",
					i, j, c.Similarity, c.JobID, mirror.Similarity, mirror.JobID)
			}
		}
	}

	// Independent pairwise jobs, same orientation as the plan (i < j).
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			dsA, _ := s.OpenDataset(ids[i])
			dsB, _ := s.OpenDataset(ids[j])
			src, _ := NewSource(dsA, dsB)
			jobID, err := sc.SubmitSource("oracle", src)
			if err != nil {
				t.Fatal(err)
			}
			want := waitJob(t, sc, jobID)
			got := st.Cells[i][j]
			if got.Similarity != want.Report.Similarity ||
				got.Intersect != want.Report.Intersecting ||
				got.Candidates != want.Report.Candidates {
				t.Errorf("cell [%d][%d] = (%.17g, %d, %d), independent job = (%.17g, %d, %d)",
					i, j, got.Similarity, got.Intersect, got.Candidates,
					want.Report.Similarity, want.Report.Intersecting, want.Report.Candidates)
			}
		}
	}

	g := st.Group
	if !g.Terminal || g.Done != 3 || g.Members != 3 {
		t.Errorf("group = %+v, want 3 done members, terminal", g)
	}
}

// TestMatrixCachedCells: cells answered with a ready report (the persisted
// cache path) complete without any scheduler job.
func TestMatrixCachedCells(t *testing.T) {
	sc := sched.New(sched.Config{})
	t.Cleanup(sc.Close)
	rep := pipeline.Result{Similarity: 0.5, RatioSum: 1, Intersecting: 2, Candidates: 3}
	m := NewManager(ManagerConfig{
		Scheduler: sc,
		Submit: func(idA, idB, _ string) (SubmitOutcome, error) {
			return SubmitOutcome{Cached: true, Report: &rep, Tiles: 4}, nil
		},
	})
	ids := []string{testID('a'), testID('b'), testID('c')}
	run, err := m.Start("cached", ids)
	if err != nil {
		t.Fatal(err)
	}
	st := waitRun(t, run)
	if st.State != RunDone {
		t.Fatalf("run ended %s", st.State)
	}
	for i := range st.Cells {
		for j := range st.Cells[i] {
			if i == j {
				continue
			}
			c := st.Cells[i][j]
			if c.State != CellDone || !c.Cached || c.JobID != "" || c.Similarity != 0.5 {
				t.Fatalf("cell [%d][%d] = %+v, want cached done with similarity 0.5", i, j, c)
			}
		}
	}
	if st.Group.Members != 0 {
		t.Errorf("cached run attached %d jobs to its group, want 0", st.Group.Members)
	}
}

func testID(b byte) string {
	id := make([]byte, 64)
	for i := range id {
		id[i] = b
	}
	return string(id)
}

// gatedSource blocks task materialization until released, making
// cancellation timing deterministic.
type gatedSource struct {
	release <-chan struct{}
	task    pipeline.FileTask
}

func (g *gatedSource) Len() int         { return 1 }
func (g *gatedSource) Weight(int) int64 { return 1 }
func (g *gatedSource) Task(int) (pipeline.FileTask, error) {
	<-g.release
	return g.task, nil
}

// TestMatrixCellResubmitsAfterExternalCancel: a cell whose member job is
// canceled from outside the run (another run cancelling a shared job, or a
// direct job DELETE) is resubmitted instead of poisoning the whole matrix
// with a cancellation it never asked for.
func TestMatrixCellResubmitsAfterExternalCancel(t *testing.T) {
	s := testStore(t)
	sc := sched.New(sched.Config{})
	t.Cleanup(sc.Close)
	release := make(chan struct{})
	var once sync.Once
	t.Cleanup(func() { once.Do(func() { close(release) }) })

	man := ingestVariant(t, s, "slideR", 9, 1)
	ds, err := s.OpenDataset(man.ID)
	if err != nil {
		t.Fatal(err)
	}
	task, err := ds.Source().Task(0)
	if err != nil {
		t.Fatal(err)
	}

	var attempts int64
	firstJob := make(chan string, 1)
	m := NewManager(ManagerConfig{
		Scheduler: sc,
		Submit: func(idA, idB, _ string) (SubmitOutcome, error) {
			n := atomic.AddInt64(&attempts, 1)
			if n == 1 {
				// First attempt: a job that blocks until released, so the
				// test can cancel it while the cell waits.
				id, err := sc.SubmitSource("doomed", &gatedSource{release: release, task: task})
				if err != nil {
					return SubmitOutcome{}, err
				}
				firstJob <- id
				return SubmitOutcome{JobID: id, Tiles: 1}, nil
			}
			id, err := sc.SubmitSource("retry", ds.Source())
			if err != nil {
				return SubmitOutcome{}, err
			}
			return SubmitOutcome{JobID: id, Tiles: 1}, nil
		},
	})
	run, err := m.Start("resubmit", []string{testID('4'), testID('5')})
	if err != nil {
		t.Fatal(err)
	}
	var doomed string
	select {
	case doomed = <-firstJob:
	case <-time.After(10 * time.Second):
		t.Fatal("first attempt never submitted")
	}
	if err := sc.Cancel(doomed); err != nil { // an outside cancel, not the run's
		t.Fatalf("Cancel(%s): %v", doomed, err)
	}
	once.Do(func() { close(release) })

	st := waitRun(t, run)
	if st.State != RunDone {
		t.Fatalf("run ended %s, want done after resubmit: %+v", st.State, st.Cells)
	}
	if got := atomic.LoadInt64(&attempts); got != 2 {
		t.Fatalf("cell was submitted %d times, want 2 (original + resubmit)", got)
	}
	if c := st.Cells[0][1]; c.State != CellDone || c.JobID == doomed {
		t.Fatalf("cell = %+v, want done under a fresh job", c)
	}
	if st.Group.Members != 1 || st.Group.CanceledJobs != 0 || st.Group.Done != 1 {
		t.Fatalf("group = %+v, want only the fresh job (dead attempt removed)", st.Group)
	}
}

// TestMatrixCancelCancelsMembers is the cancellation acceptance test:
// cancelling a matrix cancels its in-flight member job and abandons the
// cells not yet submitted.
func TestMatrixCancelCancelsMembers(t *testing.T) {
	s := testStore(t)
	sc := sched.New(sched.Config{})
	t.Cleanup(sc.Close)
	release := make(chan struct{})
	var once sync.Once
	t.Cleanup(func() { once.Do(func() { close(release) }) })

	man := ingestVariant(t, s, "slideC", 5, 1)
	ds, err := s.OpenDataset(man.ID)
	if err != nil {
		t.Fatal(err)
	}
	task, err := ds.Source().Task(0)
	if err != nil {
		t.Fatal(err)
	}

	var submitted int64
	submitStarted := make(chan string, 1)
	m := NewManager(ManagerConfig{
		Scheduler:   sc,
		Concurrency: 1, // cells 2 and 3 stay queued behind the gated cell
		Submit: func(idA, idB, _ string) (SubmitOutcome, error) {
			atomic.AddInt64(&submitted, 1)
			id, err := sc.SubmitSource("gated", &gatedSource{release: release, task: task})
			if err != nil {
				return SubmitOutcome{}, err
			}
			submitStarted <- id
			return SubmitOutcome{JobID: id, Tiles: 1}, nil
		},
	})
	run, err := m.Start("cancelme", []string{testID('1'), testID('2'), testID('3')})
	if err != nil {
		t.Fatal(err)
	}

	var jobID string
	select {
	case jobID = <-submitStarted:
	case <-time.After(10 * time.Second):
		t.Fatal("first cell never submitted")
	}
	if err := run.Cancel(); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	once.Do(func() { close(release) }) // let the in-flight shard drain

	st := waitRun(t, run)
	if st.State != RunCanceled {
		t.Fatalf("run ended %s, want canceled", st.State)
	}
	if got := atomic.LoadInt64(&submitted); got != 1 {
		t.Fatalf("%d cells were submitted after cancel, want only the first", got)
	}
	member := waitJob(t, sc, jobID)
	if member.State != sched.Canceled {
		t.Fatalf("member job ended %s, want canceled", member.State)
	}
	canceledCells := 0
	for i := range st.Cells {
		for j := range st.Cells[i] {
			if i != j && st.Cells[i][j].State == CellCanceled {
				canceledCells++
			}
		}
	}
	if canceledCells != 6 { // 3 planned cells, each mirrored
		t.Errorf("%d canceled cell views, want all 6", canceledCells)
	}
	if !st.Group.Canceled {
		t.Errorf("group not marked canceled: %+v", st.Group)
	}

	// A terminal run rejects a second cancel.
	if err := run.Cancel(); err != ErrRunTerminal {
		t.Errorf("second Cancel = %v, want ErrRunTerminal", err)
	}
}
