// Package compare is the cross-dataset comparison subsystem: the layer that
// opens the paper's headline workload — validating one segmentation
// algorithm's output against another's over the same pathology images — on
// top of the persistent dataset store.
//
// A pairwise comparison takes two stored datasets, pairs their tiles by
// (image, tile) key (the intersection of the two tile indexes; tiles present
// on only one side are reported, never silently dropped), and compares the
// first dataset's set-A polygons against the second dataset's set-B polygons
// tile by tile. The pairing is exposed as a lazy scheduler task source whose
// shards materialize only their own tile pairs from the two segment files,
// so a cross job over two large stored datasets never holds either dataset
// whole in memory. With dataset_a == dataset_b the comparison degenerates
// exactly — bit for bit — to the dataset's own embedded A-vs-B job.
//
// On top of pairwise jobs, matrix.go orchestrates K-way matrix runs: all
// K·(K−1)/2 unordered dataset pairs as one cancellable scheduler job group,
// deduplicated through the service's content-hash result cache and fanned
// out with bounded concurrency, aggregated into a symmetric similarity
// matrix with per-cell status.
package compare

import (
	"errors"
	"fmt"

	"repro/internal/parser"
	"repro/internal/pipeline"
	"repro/internal/sched"
	"repro/internal/store"
)

// TileKey identifies one tile within a dataset.
type TileKey struct {
	Image string `json:"image,omitempty"`
	Tile  int    `json:"tile"`
}

// MatchedPair is one cross-comparison tile pair: indexes into the two
// datasets' manifests whose tiles carry the same (image, tile) key.
type MatchedPair struct {
	A, B int
}

// Match is the outcome of pairing two datasets' tile indexes: the matched
// pairs in canonical key order, plus the keys present on only one side.
type Match struct {
	Pairs []MatchedPair
	OnlyA []TileKey
	OnlyB []TileKey
}

// MatchManifests pairs two datasets' tiles by (image, tile) key. Both
// manifests hold their tiles in canonical key order (the store sorts at
// commit and re-sorts at recovery), so the pairing is a linear merge join.
func MatchManifests(a, b *store.Manifest) Match {
	var m Match
	i, j := 0, 0
	for i < len(a.Tiles) && j < len(b.Tiles) {
		ta, tb := a.Tiles[i], b.Tiles[j]
		switch {
		case ta.Image == tb.Image && ta.Tile == tb.Tile:
			m.Pairs = append(m.Pairs, MatchedPair{A: i, B: j})
			i++
			j++
		case ta.Image < tb.Image || (ta.Image == tb.Image && ta.Tile < tb.Tile):
			m.OnlyA = append(m.OnlyA, TileKey{Image: ta.Image, Tile: ta.Tile})
			i++
		default:
			m.OnlyB = append(m.OnlyB, TileKey{Image: tb.Image, Tile: tb.Tile})
			j++
		}
	}
	for ; i < len(a.Tiles); i++ {
		m.OnlyA = append(m.OnlyA, TileKey{Image: a.Tiles[i].Image, Tile: a.Tiles[i].Tile})
	}
	for ; j < len(b.Tiles); j++ {
		m.OnlyB = append(m.OnlyB, TileKey{Image: b.Tiles[j].Image, Tile: b.Tiles[j].Tile})
	}
	return m
}

// ErrNoSharedTiles rejects a cross comparison over datasets with disjoint
// tile indexes.
var ErrNoSharedTiles = errors.New("compare: datasets share no tile keys")

// OpenPair opens a cross comparison over the store and returns its job
// label, task source, and tile match. It is the one construction path for
// both the HTTP server and the facade. A self-comparison (idA == idB)
// returns the dataset's own single-dataset source: the cross semantics
// degenerate to the embedded A-vs-B job exactly, and the single source
// reads each tile once where the cross reader would read and digest-verify
// it twice. An empty intersection fails with ErrNoSharedTiles (wrapping the
// per-side unmatched counts in the message).
func OpenPair(st *store.Store, idA, idB string) (name string, src sched.TaskSource, m Match, self bool, err error) {
	dsA, err := st.OpenDataset(idA)
	if err != nil {
		return "", nil, Match{}, false, fmt.Errorf("dataset_a: %w", err)
	}
	if idA == idB {
		return dsA.Manifest().DisplayName(), dsA.Source(),
			MatchManifests(dsA.Manifest(), dsA.Manifest()), true, nil
	}
	dsB, err := st.OpenDataset(idB)
	if err != nil {
		return "", nil, Match{}, false, fmt.Errorf("dataset_b: %w", err)
	}
	csrc, m := NewSource(dsA, dsB)
	if len(m.Pairs) == 0 {
		return "", nil, m, false, fmt.Errorf(
			"%w (%d tiles only in dataset_a, %d only in dataset_b)",
			ErrNoSharedTiles, len(m.OnlyA), len(m.OnlyB))
	}
	name = dsA.Manifest().DisplayName() + " vs " + dsB.Manifest().DisplayName()
	return name, csrc, m, false, nil
}

// Source is a lazy scheduler task source over the matched tile pairs of two
// stored datasets. It implements sched.PolySource: shards materialize
// decoded polygon pairs straight from the two segment files (digest-verified
// by the store's cross reader) and skip the pipeline's parser stage.
type Source struct {
	r     *store.CrossReader
	manA  *store.Manifest
	manB  *store.Manifest
	pairs []MatchedPair
}

// NewSource pairs the two datasets' tiles and returns the task source over
// the matched pairs plus the full match report. A source over an empty
// intersection is returned too (Len 0); callers decide whether that is an
// error.
func NewSource(a, b *store.Dataset) (*Source, Match) {
	m := MatchManifests(a.Manifest(), b.Manifest())
	return &Source{
		r:     store.NewCrossReader(a, b),
		manA:  a.Manifest(),
		manB:  b.Manifest(),
		pairs: m.Pairs,
	}, m
}

// Len returns the matched tile-pair count.
func (s *Source) Len() int { return len(s.pairs) }

// Weight returns pair i's sharding weight: the encoded byte size of the two
// sets actually compared (set A from the first dataset, set B from the
// second). For a self-comparison this equals the single-dataset source's
// weight, so the shard split — and therefore the whole report — matches the
// single-dataset job exactly.
func (s *Source) Weight(i int) int64 {
	p := s.pairs[i]
	return s.manA.Tiles[p.A].LenA + s.manB.Tiles[p.B].LenB
}

// PolyTask materializes pair i as pre-parsed pipeline input.
func (s *Source) PolyTask(i int) (pipeline.PolyTask, error) {
	p := s.pairs[i]
	setA, setB, err := s.r.ReadPair(p.A, p.B)
	if err != nil {
		return pipeline.PolyTask{}, err
	}
	ti := s.manA.Tiles[p.A]
	return pipeline.PolyTask{Image: ti.Image, Tile: ti.Tile, A: setA, B: setB}, nil
}

// Task materializes pair i as text pipeline input (the TaskSource contract;
// the scheduler prefers PolyTask).
func (s *Source) Task(i int) (pipeline.FileTask, error) {
	pt, err := s.PolyTask(i)
	if err != nil {
		return pipeline.FileTask{}, err
	}
	return pipeline.FileTask{
		Image: pt.Image,
		Tile:  pt.Tile,
		RawA:  parser.Encode(pt.A),
		RawB:  parser.Encode(pt.B),
	}, nil
}
