package wkb_test

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/geomtest"
	"repro/internal/wkb"
)

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; {
		p := geomtest.RandomPolygon(rng, 30)
		if p == nil {
			continue
		}
		trial++
		got, err := wkb.Unmarshal(wkb.Marshal(p))
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if got.Area() != p.Area() || got.NumVertices() != p.NumVertices() {
			t.Fatalf("round trip changed polygon: %d/%d vs %d/%d",
				got.Area(), got.NumVertices(), p.Area(), p.NumVertices())
		}
		for i, v := range p.Vertices() {
			if got.Vertices()[i] != v {
				t.Fatalf("vertex %d: %v != %v", i, got.Vertices()[i], v)
			}
		}
	}
}

func TestRoundTripNegativeCoords(t *testing.T) {
	p := geom.MustPolygon([]geom.Point{{X: -10, Y: -10}, {X: -5, Y: -10}, {X: -5, Y: -3}, {X: -10, Y: -3}})
	got, err := wkb.Unmarshal(wkb.Marshal(p))
	if err != nil {
		t.Fatal(err)
	}
	if got.Area() != 35 {
		t.Fatalf("area = %d", got.Area())
	}
}

func TestUnmarshalErrors(t *testing.T) {
	valid := wkb.Marshal(geom.Rect(0, 0, 4, 4))

	truncated := valid[:10]
	if _, err := wkb.Unmarshal(truncated); err == nil {
		t.Fatal("truncated accepted")
	}

	badOrder := append([]byte{}, valid...)
	badOrder[0] = 0
	if _, err := wkb.Unmarshal(badOrder); err == nil {
		t.Fatal("bad byte order accepted")
	}

	badType := append([]byte{}, valid...)
	binary.LittleEndian.PutUint32(badType[1:], 99)
	if _, err := wkb.Unmarshal(badType); err == nil {
		t.Fatal("bad geometry type accepted")
	}

	badLen := append([]byte{}, valid...)
	binary.LittleEndian.PutUint32(badLen[9:], 100)
	if _, err := wkb.Unmarshal(badLen); err == nil {
		t.Fatal("bad point count accepted")
	}

	// Non-integral coordinate.
	frac := append([]byte{}, valid...)
	binary.LittleEndian.PutUint64(frac[13:], math.Float64bits(1.5))
	if _, err := wkb.Unmarshal(frac); err == nil {
		t.Fatal("fractional coordinate accepted")
	}

	// Unclosed ring: change the closing point.
	open := append([]byte{}, valid...)
	binary.LittleEndian.PutUint64(open[len(open)-16:], math.Float64bits(99))
	if _, err := wkb.Unmarshal(open); err == nil {
		t.Fatal("unclosed ring accepted")
	}
}

func TestUnmarshalValidates(t *testing.T) {
	// Hand-build WKB for a self-intersecting rectilinear loop; Unmarshal
	// must run full validation and reject it.
	vs := []geom.Point{{X: 0, Y: 0}, {X: 3, Y: 0}, {X: 3, Y: 2}, {X: 1, Y: 2}, {X: 1, Y: -1}, {X: 0, Y: -1}}
	data := make([]byte, 13+(len(vs)+1)*16)
	data[0] = 1
	binary.LittleEndian.PutUint32(data[1:], 3)
	binary.LittleEndian.PutUint32(data[5:], 1)
	binary.LittleEndian.PutUint32(data[9:], uint32(len(vs)+1))
	off := 13
	for i := 0; i <= len(vs); i++ {
		v := vs[i%len(vs)]
		binary.LittleEndian.PutUint64(data[off:], math.Float64bits(float64(v.X)))
		binary.LittleEndian.PutUint64(data[off+8:], math.Float64bits(float64(v.Y)))
		off += 16
	}
	if _, err := wkb.Unmarshal(data); err == nil {
		t.Fatal("self-intersecting polygon accepted")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := geomtest.RandomPolygon(rng, 24)
		if p == nil {
			return true
		}
		got, err := wkb.Unmarshal(wkb.Marshal(p))
		return err == nil && got.Area() == p.Area()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMustUnmarshalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on invalid data")
		}
	}()
	wkb.MustUnmarshal([]byte{1, 2, 3})
}
