// Package wkb implements the serialized geometry format and calling
// convention of the SDBMS baseline. PostGIS stores geometries as serialized
// varlena values and every spatial function call pays to deserialize its
// arguments into GEOS objects — double-precision coordinates, ring
// construction and validity checking — before any geometry computation
// happens, and to serialize results back. That per-tuple protocol cost is a
// large, real part of what cross-comparing queries spend (§2.3), so the
// reproduction's baseline pays it too: tables store WKB-encoded polygons and
// the executor decodes (with full validation) on every operator call.
package wkb

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/geom"
)

// Format constants, following the WKB layout for a single-ring polygon:
// byte order marker, geometry type, ring count, point count, points as
// float64 pairs.
const (
	byteOrderLE = 1
	geomPolygon = 3
	headerBytes = 1 + 4 + 4 + 4
	pointBytes  = 16
)

// Marshal encodes a polygon as WKB (little-endian, single ring, closed:
// the first vertex is repeated at the end, as WKB requires).
func Marshal(p *geom.Polygon) []byte {
	vs := p.Vertices()
	n := len(vs)
	out := make([]byte, headerBytes+(n+1)*pointBytes)
	out[0] = byteOrderLE
	binary.LittleEndian.PutUint32(out[1:], geomPolygon)
	binary.LittleEndian.PutUint32(out[5:], 1)
	binary.LittleEndian.PutUint32(out[9:], uint32(n+1))
	off := headerBytes
	put := func(pt geom.Point) {
		binary.LittleEndian.PutUint64(out[off:], math.Float64bits(float64(pt.X)))
		binary.LittleEndian.PutUint64(out[off+8:], math.Float64bits(float64(pt.Y)))
		off += pointBytes
	}
	for _, v := range vs {
		put(v)
	}
	put(vs[0])
	return out
}

// Size returns len(Marshal(p)) without encoding — admission control sizes a
// dataset before deciding whether it may touch disk.
func Size(p *geom.Polygon) int { return headerBytes + (len(p.Vertices())+1)*pointBytes }

// Unmarshal decodes and fully validates a WKB polygon, the work a spatial
// function performs on each argument of each call. Coordinates must be
// integral and in int32 range (the pixel-grid domain).
func Unmarshal(data []byte) (*geom.Polygon, error) {
	if len(data) < headerBytes {
		return nil, fmt.Errorf("wkb: truncated header (%d bytes)", len(data))
	}
	if data[0] != byteOrderLE {
		return nil, fmt.Errorf("wkb: unsupported byte order %d", data[0])
	}
	if gt := binary.LittleEndian.Uint32(data[1:]); gt != geomPolygon {
		return nil, fmt.Errorf("wkb: unsupported geometry type %d", gt)
	}
	if rings := binary.LittleEndian.Uint32(data[5:]); rings != 1 {
		return nil, fmt.Errorf("wkb: expected 1 ring, got %d", rings)
	}
	npts := int(binary.LittleEndian.Uint32(data[9:]))
	if npts < 5 {
		return nil, fmt.Errorf("wkb: ring has %d points, need at least 5", npts)
	}
	if want := headerBytes + npts*pointBytes; len(data) != want {
		return nil, fmt.Errorf("wkb: length %d, want %d", len(data), want)
	}
	vs := make([]geom.Point, npts-1)
	off := headerBytes
	for i := 0; i < npts; i++ {
		x := math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		y := math.Float64frombits(binary.LittleEndian.Uint64(data[off+8:]))
		off += pointBytes
		xi, yi := int64(x), int64(y)
		if float64(xi) != x || float64(yi) != y {
			return nil, fmt.Errorf("wkb: non-integral coordinate (%v,%v)", x, y)
		}
		if xi < math.MinInt32 || xi > math.MaxInt32 || yi < math.MinInt32 || yi > math.MaxInt32 {
			return nil, fmt.Errorf("wkb: coordinate out of range (%v,%v)", x, y)
		}
		if i == npts-1 {
			// Closing point must equal the first.
			if xi != int64(vs[0].X) || yi != int64(vs[0].Y) {
				return nil, fmt.Errorf("wkb: ring not closed")
			}
			break
		}
		vs[i] = geom.Point{X: int32(xi), Y: int32(yi)}
	}
	// Full validation — rectilinearity, simplicity — the robustness work a
	// general-purpose geometry library performs before overlay.
	return geom.NewPolygon(vs)
}

// MustUnmarshal is Unmarshal that panics on error, for callers that encoded
// the data themselves.
func MustUnmarshal(data []byte) *geom.Polygon {
	p, err := Unmarshal(data)
	if err != nil {
		panic(err)
	}
	return p
}
