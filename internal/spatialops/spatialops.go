// Package spatialops implements the additional spatial predicates the paper
// derives from PixelBox's principles (§3.4, "Implications of PixelBox to
// other spatial operators"):
//
//   - ST_Contains "can be implemented by computing the area of intersection
//     and testing whether it equals the area of the object being contained";
//   - ST_Touches compares the edges of one polygon with the edges of the
//     other, tests vertex positions, and requires boundary contact without
//     interior overlap.
//
// Both exact CPU implementations and the GPU-accelerated batch form of
// ST_Contains (riding the PixelBox kernel) are provided.
package spatialops

import (
	"repro/internal/clip"
	"repro/internal/geom"
	"repro/internal/gpu"
	"repro/internal/pixelbox"
)

// Contains reports whether polygon p contains polygon q (every pixel of q
// is a pixel of p), via the paper's area identity: q ⊆ p iff ‖p∩q‖ = ‖q‖.
func Contains(p, q *geom.Polygon) bool {
	if !p.MBR().Contains(q.MBR()) {
		return false
	}
	return clip.IntersectionArea(p, q) == q.Area()
}

// ContainsBatch evaluates Contains for many pairs on the simulated GPU by
// computing areas of intersection with the PixelBox kernel and applying the
// area identity host-side, exactly as §3.4 proposes. Returns one verdict
// per pair plus the modelled device seconds.
func ContainsBatch(dev *gpu.Device, pairs []pixelbox.Pair, cfg pixelbox.Config) ([]bool, float64) {
	results, launch, xfer := pixelbox.RunGPU(dev, pairs, cfg)
	out := make([]bool, len(pairs))
	for i, pr := range pairs {
		out[i] = results[i].Intersection == pr.Q.Area()
	}
	return out, launch.DeviceSeconds + xfer
}

// Touches reports whether the polygons touch: their boundaries share at
// least one point but their interiors share no pixel. Following §3.4: there
// must be no proper edge-to-edge crossing, no vertex of one polygon strictly
// inside the other, and at least one boundary contact — and additionally
// the interiors must not overlap (which also excludes the containment
// cases the edge tests alone cannot see).
func Touches(p, q *geom.Polygon) bool {
	if !p.MBR().Touches(q.MBR()) {
		return false
	}
	if edgesCross(p, q) {
		return false
	}
	if vertexStrictlyInside(p, q) || vertexStrictlyInside(q, p) {
		return false
	}
	if !boundariesShareContact(p, q) {
		return false
	}
	// Interiors must be disjoint (covers one-inside-the-other with
	// coincident boundary segments).
	return clip.IntersectionArea(p, q) == 0
}

// edgesCross reports a proper transversal crossing between any edge of p
// and any edge of q (axis-aligned: only horizontal-vertical pairs can
// cross properly).
func edgesCross(p, q *geom.Polygon) bool {
	ph, pv := p.HorizontalEdges(), p.VerticalEdges()
	qh, qv := q.HorizontalEdges(), q.VerticalEdges()
	return hvCross(ph, qv) || hvCross(qh, pv)
}

func hvCross(hs []geom.HEdge, vs []geom.VEdge) bool {
	for _, h := range hs {
		for _, v := range vs {
			if h.X1 < v.X && v.X < h.X2 && v.Y1 < h.Y && h.Y < v.Y2 {
				return true
			}
		}
	}
	return false
}

// vertexStrictlyInside reports whether any vertex of a lies strictly inside
// polygon b (not on its boundary).
func vertexStrictlyInside(b, a *geom.Polygon) bool {
	for _, v := range a.Vertices() {
		if onBoundary(b, v) {
			continue
		}
		// Strict interior test via crossing parity at the exact vertex:
		// cast leftward at v's height offset by half a pixel both ways; a
		// grid point is strictly interior iff the pixels above-left and
		// below-left of it... simpler: the four pixels around v are all
		// inside iff v is strictly interior for a rectilinear polygon.
		if b.ContainsPixel(v.X-1, v.Y-1) && b.ContainsPixel(v.X, v.Y-1) &&
			b.ContainsPixel(v.X-1, v.Y) && b.ContainsPixel(v.X, v.Y) {
			return true
		}
	}
	return false
}

// onBoundary reports whether grid point v lies on polygon b's boundary.
func onBoundary(b *geom.Polygon, v geom.Point) bool {
	for _, h := range b.HorizontalEdges() {
		if v.Y == h.Y && h.X1 <= v.X && v.X <= h.X2 {
			return true
		}
	}
	for _, e := range b.VerticalEdges() {
		if v.X == e.X && e.Y1 <= v.Y && v.Y <= e.Y2 {
			return true
		}
	}
	return false
}

// boundariesShareContact reports whether the two boundaries intersect at
// all: a vertex of one on the other's boundary, or overlapping collinear
// edge segments.
func boundariesShareContact(p, q *geom.Polygon) bool {
	for _, v := range q.Vertices() {
		if onBoundary(p, v) {
			return true
		}
	}
	for _, v := range p.Vertices() {
		if onBoundary(q, v) {
			return true
		}
	}
	// Collinear overlap without shared vertices: horizontal-horizontal.
	for _, a := range p.HorizontalEdges() {
		for _, b := range q.HorizontalEdges() {
			if a.Y == b.Y && a.X1 < b.X2 && b.X1 < a.X2 {
				return true
			}
		}
	}
	for _, a := range p.VerticalEdges() {
		for _, b := range q.VerticalEdges() {
			if a.X == b.X && a.Y1 < b.Y2 && b.Y1 < a.Y2 {
				return true
			}
		}
	}
	// Perpendicular touch: a vertical edge's interior meeting a horizontal
	// edge's interior without crossing (T-contact at a grid point).
	for _, h := range p.HorizontalEdges() {
		for _, v := range q.VerticalEdges() {
			if h.X1 <= v.X && v.X <= h.X2 && v.Y1 <= h.Y && h.Y <= v.Y2 {
				return true
			}
		}
	}
	for _, h := range q.HorizontalEdges() {
		for _, v := range p.VerticalEdges() {
			if h.X1 <= v.X && v.X <= h.X2 && v.Y1 <= h.Y && h.Y <= v.Y2 {
				return true
			}
		}
	}
	return false
}
