package spatialops_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/clip"
	"repro/internal/geom"
	"repro/internal/geomtest"
	"repro/internal/gpu"
	"repro/internal/pixelbox"
	"repro/internal/spatialops"
)

func TestContainsBasics(t *testing.T) {
	outer := geom.Rect(0, 0, 10, 10)
	inner := geom.Rect(2, 2, 5, 5)
	if !spatialops.Contains(outer, inner) {
		t.Fatal("inner not contained")
	}
	if spatialops.Contains(inner, outer) {
		t.Fatal("containment inverted")
	}
	if !spatialops.Contains(outer, outer) {
		t.Fatal("self containment")
	}
	partial := geom.Rect(8, 8, 12, 12)
	if spatialops.Contains(outer, partial) {
		t.Fatal("overlapping reported contained")
	}
	disjoint := geom.Rect(20, 20, 22, 22)
	if spatialops.Contains(outer, disjoint) {
		t.Fatal("disjoint reported contained")
	}
}

func TestContainsNonConvex(t *testing.T) {
	// A U shape does not contain a rectangle spanning its notch.
	u := geom.MustPolygon([]geom.Point{{X: 0, Y: 0}, {X: 6, Y: 0}, {X: 6, Y: 6}, {X: 4, Y: 6}, {X: 4, Y: 2}, {X: 2, Y: 2}, {X: 2, Y: 6}, {X: 0, Y: 6}})
	bridge := geom.Rect(1, 3, 5, 5) // spans the notch interior
	if spatialops.Contains(u, bridge) {
		t.Fatal("U contains a rectangle bridging its notch")
	}
	leg := geom.Rect(0, 0, 2, 6)
	if !spatialops.Contains(u, leg) {
		t.Fatal("U does not contain its own leg")
	}
}

// TestContainsQuickAgainstBruteForce: Contains must agree with exhaustive
// pixel subset testing on random polygons.
func TestContainsQuickAgainstBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := geomtest.RandomPolygon(rng, 20)
		q := geomtest.RandomPolygon(rng, 12)
		if p == nil || q == nil {
			return true
		}
		want := geomtest.BruteIntersectionArea(p, q) == q.Area()
		return spatialops.Contains(p, q) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestContainsBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var pairs []pixelbox.Pair
	for len(pairs) < 40 {
		p := geomtest.RandomPolygon(rng, 24)
		q := geomtest.RandomPolygon(rng, 12)
		if p == nil || q == nil {
			continue
		}
		pairs = append(pairs, pixelbox.Pair{P: p, Q: q})
	}
	dev := gpu.NewDevice(gpu.GTX580())
	got, secs, _ := func() ([]bool, float64, error) {
		v, s := spatialops.ContainsBatch(dev, pairs, pixelbox.Config{})
		return v, s, nil
	}()
	if secs <= 0 {
		t.Fatal("no device time charged")
	}
	for i, pr := range pairs {
		if got[i] != spatialops.Contains(pr.P, pr.Q) {
			t.Fatalf("pair %d: batch disagrees with scalar", i)
		}
	}
}

func TestTouchesBasics(t *testing.T) {
	a := geom.Rect(0, 0, 4, 4)
	cases := []struct {
		name string
		b    *geom.Polygon
		want bool
	}{
		{"edge-adjacent", geom.Rect(4, 0, 8, 4), true},
		{"corner-adjacent", geom.Rect(4, 4, 8, 8), true},
		{"overlapping", geom.Rect(2, 2, 6, 6), false},
		{"disjoint", geom.Rect(6, 0, 8, 4), false},
		{"contained", geom.Rect(1, 1, 3, 3), false},
		{"partial shared edge", geom.Rect(4, 1, 8, 3), true},
		{"self", a, false},
	}
	for _, c := range cases {
		if got := spatialops.Touches(a, c.b); got != c.want {
			t.Errorf("%s: Touches = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestTouchesTContact(t *testing.T) {
	// A vertical edge's interior touching a horizontal edge's interior.
	a := geom.Rect(0, 0, 6, 2)
	b := geom.Rect(2, 2, 4, 5) // sits on top of a's top edge, strictly inside its span
	if !spatialops.Touches(a, b) {
		t.Fatal("stacked rectangles should touch")
	}
}

// TestTouchesQuickConsistency: Touches implies zero intersection area and
// (given MBR contact) boundary contact; overlapping interiors never touch.
func TestTouchesQuickConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := geomtest.RandomPolygon(rng, 16)
		q := geomtest.RandomPolygon(rng, 16)
		if p == nil || q == nil {
			return true
		}
		touches := spatialops.Touches(p, q)
		inter := clip.IntersectionArea(p, q)
		if touches && inter != 0 {
			return false // touching polygons share no interior pixel
		}
		if inter > 0 && touches {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
