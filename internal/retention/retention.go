// Package retention bounds the persistent footprint of a long-lived sccgd:
// a policy engine over the content-addressed dataset store and (through a
// narrow interface) the persisted result cache. Without it the store is a
// disk leak — every spec job ingests a dataset nobody asked to keep, and the
// report cache grows one JSON file per distinct content key forever.
//
// The policy is usage-driven, LogBase-style compaction for an append-only
// segment store: every job, cross comparison, matrix cell, and tile read
// advances the dataset's last-use clock (persisted in the manifest, so
// recency ordering survives restarts), datasets referenced by queued or
// running jobs are pinned via store refcounts and never evicted, and a sweep
// removes what the two configurable bounds reject — datasets unused longer
// than TTL, then least-recently-used datasets until total segment bytes fit
// MaxBytes. Evictions go through Store.Delete, so the server's delete hook
// cascades each evicted dataset's persisted cache entries and spec aliases
// in the same stroke; a restart can never resurrect a report for data that
// no longer exists.
//
// An Engine runs one Sweep on demand (the server's POST /gc) or
// periodically in the background (Start/Close, owned by the server
// lifecycle).
package retention

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/store"
)

// Policy is the retention configuration. The zero value bounds nothing: no
// dataset or cache entry is ever evicted.
type Policy struct {
	// MaxBytes caps the store's total segment bytes; above it the sweep
	// evicts least-recently-used unpinned datasets until the total fits.
	// 0 means unbounded.
	MaxBytes int64
	// TTL evicts datasets whose last use is older than this, regardless of
	// the byte budget. 0 disables TTL eviction.
	TTL time.Duration
	// CacheMaxEntries caps the persisted result-cache entry count; above it
	// the sweep drops least-recently-used entries. 0 means unbounded.
	CacheMaxEntries int
	// SweepInterval is the background sweep period; 0 selects the default of
	// one minute. The background sweeper only runs when Active.
	SweepInterval time.Duration
}

// Active reports whether the policy bounds anything — whether a background
// sweeper is worth running.
func (p Policy) Active() bool { return p.MaxBytes > 0 || p.TTL > 0 || p.CacheMaxEntries > 0 }

// String renders the policy for boot logs.
func (p Policy) String() string {
	if !p.Active() {
		return "unbounded"
	}
	var parts []string
	if p.MaxBytes > 0 {
		parts = append(parts, "store<="+FormatBytes(p.MaxBytes))
	}
	if p.TTL > 0 {
		parts = append(parts, "ttl="+p.TTL.String())
	}
	if p.CacheMaxEntries > 0 {
		parts = append(parts, fmt.Sprintf("cache<=%d", p.CacheMaxEntries))
	}
	return strings.Join(parts, " ")
}

// Cache is the persisted result cache as the engine sees it: just a size
// bound. Cascading per-dataset entries is not here — that happens through
// the store's delete hook, so every delete path cascades, not only sweeps.
type Cache interface {
	// EnforceLimit evicts least-recently-used entries until at most max
	// remain, returning how many were dropped.
	EnforceLimit(max int) int
}

// Config wires an Engine.
type Config struct {
	// Store is the dataset store to bound. Required.
	Store *store.Store
	// Cache, when set, is bounded by Policy.CacheMaxEntries.
	Cache Cache
	// Policy is the retention policy; the zero value makes Sweep a no-op
	// reporter.
	Policy Policy
	// Registry, when set, receives the engine's counters and gauges.
	Registry *metrics.Registry
	// Log, when set, receives one line per eviction decision worth noting.
	Log func(format string, args ...any)
	// Now overrides the sweep clock (tests); nil means time.Now.
	Now func() time.Time
	// PinnedPressure, when set, is called at the end of a sweep that is
	// still over its byte budget with every eviction blocked by pins. It
	// receives the blocked dataset IDs and returns how many pins it managed
	// to release (the server cancels aged-out queued jobs holding them);
	// a positive return triggers one more eviction pass in the same sweep.
	PinnedPressure func(blocked []string) int
}

// Sweep is one pass's outcome.
type Sweep struct {
	// TTLEvicted counts datasets evicted because their last use exceeded TTL.
	TTLEvicted int `json:"ttl_evicted"`
	// BudgetEvicted counts datasets evicted to fit the byte budget.
	BudgetEvicted int `json:"budget_evicted"`
	// EvictedBytes is the total segment bytes reclaimed.
	EvictedBytes int64 `json:"evicted_bytes"`
	// CacheEvicted counts persisted result-cache entries dropped by the
	// entry bound (cascaded entries from dataset evictions are not counted
	// here; the delete hook owns those).
	CacheEvicted int `json:"cache_evicted"`
	// PinnedSkipped counts datasets the policy wanted gone but pins kept.
	PinnedSkipped int `json:"pinned_skipped"`
	// Datasets and StoreBytes describe the store after the sweep.
	Datasets   int   `json:"datasets"`
	StoreBytes int64 `json:"store_bytes"`
}

// Engine applies a Policy to a store (and optionally a cache), on demand via
// Sweep or periodically via Start.
type Engine struct {
	cfg Config

	sweeps       *metrics.Counter
	evicted      *metrics.Counter
	evictedBytes *metrics.Counter
	cacheEvicted *metrics.Counter

	stop      chan struct{}
	wg        sync.WaitGroup
	startOnce sync.Once
	closeOnce sync.Once
}

// New creates an engine. It registers retention gauges (store bytes, pinned
// datasets) and eviction counters on cfg.Registry when one is set; the
// background sweeper does not run until Start.
func New(cfg Config) *Engine {
	e := &Engine{cfg: cfg, stop: make(chan struct{})}
	if cfg.Registry != nil {
		e.sweeps = cfg.Registry.Counter("sccgd_retention_sweeps_total")
		e.evicted = cfg.Registry.Counter("sccgd_retention_datasets_evicted_total")
		e.evictedBytes = cfg.Registry.Counter("sccgd_retention_bytes_evicted_total")
		e.cacheEvicted = cfg.Registry.Counter("sccgd_retention_cache_entries_evicted_total")
		cfg.Registry.GaugeFunc("sccgd_store_bytes", func() float64 {
			return float64(cfg.Store.TotalBytes())
		})
		cfg.Registry.GaugeFunc("sccgd_store_pinned_datasets", func() float64 {
			return float64(cfg.Store.PinnedCount())
		})
	}
	return e
}

// Policy returns the engine's policy.
func (e *Engine) Policy() Policy { return e.cfg.Policy }

func (e *Engine) now() time.Time {
	if e.cfg.Now != nil {
		return e.cfg.Now()
	}
	return time.Now()
}

func (e *Engine) logf(format string, args ...any) {
	if e.cfg.Log != nil {
		e.cfg.Log(format, args...)
	}
}

// Sweep runs one retention pass and reports what it evicted.
//
// Candidates are considered least-recently-used first. Because TTL expiry is
// monotone in last-use, the expired datasets form a prefix of that order, so
// one pass applies both bounds: a dataset is evicted when its last use
// exceeds TTL or while the store is still over the byte budget; the pass
// stops at the first dataset neither bound rejects. Pinned datasets are
// skipped (and counted) — a job's data can never be swept out from under it.
func (e *Engine) Sweep() Sweep { return e.SweepFor(0) }

// SweepFor is Sweep with reserved headroom: the byte budget is treated as
// MaxBytes-headroom, so admission control can synchronously evict enough
// least-recently-used unpinned datasets to fit an incoming dataset of
// `headroom` bytes before any of it touches disk — the fix for spec-ingest
// overshooting the budget until the next background sweep. When the pass
// ends still over budget with every candidate pinned, the PinnedPressure
// callback gets one chance to release pins (aged-out queued jobs) and the
// eviction pass reruns.
func (e *Engine) SweepFor(headroom int64) Sweep {
	if e.sweeps != nil {
		e.sweeps.Inc()
	}
	pol := e.cfg.Policy
	if headroom > 0 && pol.MaxBytes > 0 {
		if headroom >= pol.MaxBytes {
			pol.MaxBytes = 1 // evict everything evictable
		} else {
			pol.MaxBytes -= headroom
		}
	}
	now := e.now()
	var sw Sweep

	blocked := e.evictPass(pol, now, &sw)
	if len(blocked) > 0 && e.cfg.PinnedPressure != nil {
		if e.cfg.PinnedPressure(blocked) > 0 {
			e.evictPass(pol, now, &sw)
		}
	}
	if n := sw.TTLEvicted + sw.BudgetEvicted; n > 0 && e.evicted != nil {
		e.evicted.Add(int64(n))
		e.evictedBytes.Add(sw.EvictedBytes)
	}

	if pol.CacheMaxEntries > 0 && e.cfg.Cache != nil {
		sw.CacheEvicted = e.cfg.Cache.EnforceLimit(pol.CacheMaxEntries)
		if sw.CacheEvicted > 0 && e.cacheEvicted != nil {
			e.cacheEvicted.Add(int64(sw.CacheEvicted))
		}
	}

	sw.Datasets = e.cfg.Store.Len()
	sw.StoreBytes = e.cfg.Store.TotalBytes()
	return sw
}

// evictPass runs one LRU-first eviction pass against pol, accumulating into
// sw, and returns the IDs whose eviction only pins prevented while the store
// was still over the byte budget.
func (e *Engine) evictPass(pol Policy, now time.Time, sw *Sweep) (blocked []string) {
	mans := e.cfg.Store.List()
	sort.Slice(mans, func(i, j int) bool {
		ti, tj := mans[i].LastUse(), mans[j].LastUse()
		if !ti.Equal(tj) {
			return ti.Before(tj)
		}
		return mans[i].ID < mans[j].ID
	})
	total := int64(0)
	for _, m := range mans {
		total += m.SegmentBytes
	}

	for _, m := range mans {
		expired := pol.TTL > 0 && now.Sub(m.LastUse()) > pol.TTL
		overBudget := pol.MaxBytes > 0 && total > pol.MaxBytes
		if !expired && !overBudget {
			break
		}
		if e.cfg.Store.Pinned(m.ID) {
			sw.PinnedSkipped++
			if overBudget {
				blocked = append(blocked, m.ID)
			}
			continue
		}
		err := e.cfg.Store.Delete(m.ID)
		switch {
		case errors.Is(err, store.ErrPinned):
			// Pinned between the check and the delete: the job wins.
			sw.PinnedSkipped++
			if overBudget {
				blocked = append(blocked, m.ID)
			}
			continue
		case errors.Is(err, store.ErrNotFound):
			// Deleted concurrently; its bytes are gone either way.
			total -= m.SegmentBytes
			continue
		case err != nil:
			e.logf("retention: evict dataset %s: %v", m.ID, err)
			continue
		}
		if expired {
			sw.TTLEvicted++
		} else {
			sw.BudgetEvicted++
		}
		sw.EvictedBytes += m.SegmentBytes
		total -= m.SegmentBytes
		e.logf("retention: evicted dataset %s (%s, %s, last used %s)",
			m.ID[:12], m.DisplayName(), FormatBytes(m.SegmentBytes), m.LastUse().Format(time.RFC3339))
	}
	if pol.MaxBytes > 0 && total <= pol.MaxBytes {
		// Budget satisfied: earlier pin-blocked candidates no longer matter.
		blocked = nil
	}
	return blocked
}

// Start launches the background sweeper. It is a no-op when the policy
// bounds nothing. Safe to call once; stop with Close.
func (e *Engine) Start() {
	if !e.cfg.Policy.Active() {
		return
	}
	e.startOnce.Do(func() {
		interval := e.cfg.Policy.SweepInterval
		if interval <= 0 {
			interval = time.Minute
		}
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			ticker := time.NewTicker(interval)
			defer ticker.Stop()
			for {
				select {
				case <-e.stop:
					return
				case <-ticker.C:
					e.Sweep()
				}
			}
		}()
	})
}

// Close stops the background sweeper and waits for an in-flight sweep to
// finish. Idempotent.
func (e *Engine) Close() {
	e.closeOnce.Do(func() { close(e.stop) })
	e.wg.Wait()
}

// byteUnits maps size suffixes (upper-cased, no trailing "B") to their
// multipliers. Decimal (KB, MB, ...) and binary (KIB, MIB, ...) forms are
// both accepted.
var byteUnits = map[string]int64{
	"":   1,
	"K":  1e3,
	"M":  1e6,
	"G":  1e9,
	"T":  1e12,
	"KI": 1 << 10,
	"MI": 1 << 20,
	"GI": 1 << 30,
	"TI": 1 << 40,
}

// ParseBytes parses a human-readable byte size for the -store-max-bytes
// flag: a non-negative decimal number with an optional B/KB/MB/GB/TB
// (decimal) or KiB/MiB/GiB/TiB (binary) suffix, case-insensitive, optional
// space before the unit. "512MiB", "1.5 GB", and "1073741824" all parse.
func ParseBytes(s string) (int64, error) {
	in := strings.TrimSpace(s)
	if in == "" {
		return 0, errors.New("retention: empty byte size")
	}
	num := strings.ToUpper(in)
	cut := len(num)
	for cut > 0 {
		c := num[cut-1]
		if c >= '0' && c <= '9' || c == '.' {
			break
		}
		cut--
	}
	unit := strings.TrimSpace(num[cut:])
	unit = strings.TrimSuffix(unit, "B")
	mult, ok := byteUnits[unit]
	if !ok {
		return 0, fmt.Errorf("retention: unknown byte unit %q in %q", num[cut:], s)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(num[:cut]), 64)
	if err != nil {
		return 0, fmt.Errorf("retention: byte size %q: %v", s, err)
	}
	if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("retention: byte size %q must be a non-negative finite number", s)
	}
	f := v * float64(mult)
	// Strictly below 2^63: float rounding at the boundary must not wrap.
	if f >= math.MaxInt64 {
		return 0, fmt.Errorf("retention: byte size %q overflows", s)
	}
	return int64(f), nil
}

// FormatBytes renders n in binary units for logs and policy strings.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<40:
		return fmt.Sprintf("%.1fTiB", float64(n)/(1<<40))
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
