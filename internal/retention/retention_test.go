package retention

import (
	"testing"
	"time"

	"repro/internal/pathology"
	"repro/internal/store"
)

func testStore(t *testing.T) *store.Store {
	t.Helper()
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	return s
}

// ingest stores a small generated dataset; image names the tile key
// namespace so distinct images never dedup.
func ingest(t *testing.T, s *store.Store, image string, seed int64) *store.Manifest {
	t.Helper()
	spec := pathology.Representative()
	spec.Name = image
	spec.Seed = seed
	spec.Tiles = 1
	man, err := s.IngestDataset(pathology.Generate(spec))
	if err != nil {
		t.Fatalf("IngestDataset: %v", err)
	}
	return man
}

// TestSweepTTL: datasets unused past the TTL are evicted; recently used
// ones survive, regardless of when they were created.
func TestSweepTTL(t *testing.T) {
	s := testStore(t)
	old := ingest(t, s, "ttl-old", 1)
	fresh := ingest(t, s, "ttl-fresh", 2)
	now := time.Now().UTC()
	s.TouchAt(old.ID, now.Add(-2*time.Hour))
	s.TouchAt(fresh.ID, now)

	e := New(Config{Store: s, Policy: Policy{TTL: time.Hour}})
	sw := e.Sweep()
	if sw.TTLEvicted != 1 || sw.BudgetEvicted != 0 {
		t.Fatalf("sweep = %+v, want exactly 1 TTL eviction", sw)
	}
	if _, ok := s.Get(old.ID); ok {
		t.Error("TTL-expired dataset survived the sweep")
	}
	if _, ok := s.Get(fresh.ID); !ok {
		t.Error("recently used dataset was evicted")
	}
	if sw.StoreBytes != s.TotalBytes() || sw.Datasets != 1 {
		t.Errorf("sweep reported store %d bytes/%d datasets, store says %d/%d",
			sw.StoreBytes, sw.Datasets, s.TotalBytes(), s.Len())
	}
}

// TestSweepByteBudgetRespectsLastUse: under byte pressure the LRU victim is
// the dataset with the oldest *last use*, not the oldest Created — a dataset
// ingested first but touched recently must outlive one ingested later but
// never used since.
func TestSweepByteBudgetRespectsLastUse(t *testing.T) {
	s := testStore(t)
	first := ingest(t, s, "lru-first", 1) // older Created
	second := ingest(t, s, "lru-second", 2)
	now := time.Now().UTC()
	// Invert recency vs creation order: the older dataset is the hot one.
	s.TouchAt(first.ID, now)
	s.TouchAt(second.ID, now.Add(-time.Hour))

	// A budget that fits one dataset but not both.
	budget := s.TotalBytes() - 1
	e := New(Config{Store: s, Policy: Policy{MaxBytes: budget}})
	sw := e.Sweep()
	if sw.BudgetEvicted != 1 || sw.TTLEvicted != 0 {
		t.Fatalf("sweep = %+v, want exactly 1 budget eviction", sw)
	}
	if _, ok := s.Get(second.ID); ok {
		t.Error("least-recently-used dataset survived byte pressure")
	}
	if _, ok := s.Get(first.ID); !ok {
		t.Error("recently used dataset was evicted despite older Created")
	}
	if s.TotalBytes() > budget {
		t.Errorf("store still %d bytes over a %d budget", s.TotalBytes(), budget)
	}
}

// TestSweepPinnedSurvives: a pinned dataset survives any byte pressure; the
// sweep reports the skip and evicts it only after Unpin.
func TestSweepPinnedSurvives(t *testing.T) {
	s := testStore(t)
	man := ingest(t, s, "pinned", 7)
	if err := s.Pin(man.ID); err != nil {
		t.Fatalf("Pin: %v", err)
	}

	e := New(Config{Store: s, Policy: Policy{MaxBytes: 1}})
	sw := e.Sweep()
	if sw.PinnedSkipped != 1 || sw.BudgetEvicted != 0 {
		t.Fatalf("sweep = %+v, want the pinned dataset skipped", sw)
	}
	if _, ok := s.Get(man.ID); !ok {
		t.Fatal("pinned dataset was evicted")
	}

	s.Unpin(man.ID)
	if sw := e.Sweep(); sw.BudgetEvicted != 1 {
		t.Fatalf("post-unpin sweep = %+v, want 1 budget eviction", sw)
	}
	if s.Len() != 0 {
		t.Error("unpinned dataset survived byte pressure")
	}
}

// TestSweepTTLAndBudgetCompose: TTL evicts an expired dataset even when the
// store is under budget, and the byte budget evicts an unexpired one when
// the total still does not fit — both in a single pass.
func TestSweepTTLAndBudgetCompose(t *testing.T) {
	s := testStore(t)
	expired := ingest(t, s, "compose-expired", 1)
	colder := ingest(t, s, "compose-colder", 2)
	hot := ingest(t, s, "compose-hot", 3)
	now := time.Now().UTC()
	s.TouchAt(expired.ID, now.Add(-3*time.Hour))
	s.TouchAt(colder.ID, now.Add(-30*time.Minute))
	s.TouchAt(hot.ID, now)

	// Budget fits two datasets; only "expired" is past the 1h TTL. One pass
	// must TTL-evict it and then stop — the remaining two fit the budget.
	budget := s.TotalBytes() - 1
	e := New(Config{Store: s, Policy: Policy{TTL: time.Hour, MaxBytes: budget}})
	sw := e.Sweep()
	if sw.TTLEvicted != 1 || sw.BudgetEvicted != 0 {
		t.Fatalf("sweep = %+v, want 1 TTL eviction only", sw)
	}

	// Shrink the budget below the two survivors: the colder one goes for
	// bytes even though its TTL has not expired.
	e2 := New(Config{Store: s, Policy: Policy{TTL: time.Hour, MaxBytes: s.TotalBytes() - 1}})
	sw = e2.Sweep()
	if sw.BudgetEvicted != 1 || sw.TTLEvicted != 0 {
		t.Fatalf("second sweep = %+v, want 1 budget eviction only", sw)
	}
	if _, ok := s.Get(hot.ID); !ok {
		t.Error("hottest dataset did not survive both bounds")
	}
	if _, ok := s.Get(colder.ID); ok {
		t.Error("colder dataset survived byte pressure")
	}
}

// recordingCache captures EnforceLimit calls.
type recordingCache struct {
	max     int
	calls   int
	evicted int
}

func (c *recordingCache) EnforceLimit(max int) int {
	c.calls++
	c.max = max
	return c.evicted
}

// TestSweepEnforcesCacheBound: the sweep passes the configured entry cap to
// the cache and reports what it dropped; without a cap the cache is left
// alone.
func TestSweepEnforcesCacheBound(t *testing.T) {
	s := testStore(t)
	c := &recordingCache{evicted: 3}
	e := New(Config{Store: s, Cache: c, Policy: Policy{CacheMaxEntries: 8}})
	if sw := e.Sweep(); sw.CacheEvicted != 3 {
		t.Fatalf("sweep = %+v, want cache_evicted 3", sw)
	}
	if c.calls != 1 || c.max != 8 {
		t.Fatalf("cache saw %d calls with max %d, want 1 call with max 8", c.calls, c.max)
	}

	unbounded := New(Config{Store: s, Cache: c, Policy: Policy{}})
	unbounded.Sweep()
	if c.calls != 1 {
		t.Error("a policy without a cache bound still called EnforceLimit")
	}
}

// TestLastUseSurvivesReopen: TouchAt persists into the manifest, so LRU
// ordering survives a restart.
func TestLastUseSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	man := ingest(t, s, "reopen", 5)
	stamp := time.Now().UTC().Add(-42 * time.Minute).Truncate(time.Second)
	s.TouchAt(man.ID, stamp)

	s2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(man.ID)
	if !ok {
		t.Fatal("dataset lost across reopen")
	}
	if !got.LastUse().Equal(stamp) {
		t.Fatalf("reopened last-use = %s, want %s", got.LastUse(), stamp)
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"0", 0},
		{"1024", 1024},
		{"1KB", 1000},
		{"1KiB", 1024},
		{"512MiB", 512 << 20},
		{"512 MiB", 512 << 20},
		{"2gb", 2e9},
		{"1.5GiB", 3 << 29},
		{"3TiB", 3 << 40},
		{"7B", 7},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseBytes(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "   ", "-1", "1XB", "GiB", "1e400", "NaN", "0x10", "9223372036854775807KiB"} {
		if got, err := ParseBytes(bad); err == nil {
			t.Errorf("ParseBytes(%q) = %d, want error", bad, got)
		}
	}
}
