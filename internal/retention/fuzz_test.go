package retention

// FuzzParseBytes hardens the -store-max-bytes flag parser: arbitrary input
// must never panic, and every accepted value must be a sane bound (a
// non-negative byte count that survives a format/parse round trip to within
// unit rounding).

import (
	"strings"
	"testing"
)

func FuzzParseBytes(f *testing.F) {
	for _, seed := range []string{
		"0", "1024", "512MiB", "1.5 GB", "2gb", "1073741824", "3TiB",
		"-1", "1e400", "NaN", "Inf", "GiB", "0x10", " 7 b ",
		"9223372036854775807", "9223372036854775807KiB", "1.7976931348623157e308",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		n, err := ParseBytes(s)
		if err != nil {
			return
		}
		if n < 0 {
			t.Fatalf("ParseBytes(%q) accepted a negative size %d", s, n)
		}
		// FormatBytes of an accepted value must itself be parseable (the
		// policy string round-trips through logs and docs).
		back, err := ParseBytes(FormatBytes(n))
		if err != nil {
			t.Fatalf("FormatBytes(%d) = %q does not re-parse: %v", n, FormatBytes(n), err)
		}
		if back < 0 {
			t.Fatalf("round trip of %d went negative: %d", n, back)
		}
		// Inputs with no unit suffix are exact integers end to end.
		trimmed := strings.TrimSpace(s)
		if allDigits(trimmed) && len(trimmed) <= 15 {
			var exact int64
			for _, c := range trimmed {
				exact = exact*10 + int64(c-'0')
			}
			if n != exact {
				t.Fatalf("ParseBytes(%q) = %d, want exact %d", s, n, exact)
			}
		}
	})
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}
