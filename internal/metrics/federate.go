package metrics

// Text-exposition parsing and cluster merging, the metrics half of
// federation: each node serves its own registry on /internal/metrics, and
// GET /metrics?cluster=1 parses every peer's exposition and merges it with
// the local one — counters and histogram series summed (cumulative buckets
// sum validly), gauges relabelled per peer so they stay attributable.

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// SeriesSample is one parsed sample line: the full rendered series name
// (labels included) and its value.
type SeriesSample struct {
	Series string
	Value  float64
}

// Exposition is one node's parsed text-format scrape.
type Exposition struct {
	// Types maps family name → declared type (counter, gauge, histogram).
	Types map[string]string
	// Samples in input order.
	Samples []SeriesSample
	// Skipped counts malformed lines the parser stepped over.
	Skipped int
}

// ParseText parses a Prometheus text-format (v0.0.4) exposition. It is
// deliberately tolerant: unparseable lines are counted and skipped, unknown
// comment lines ignored, and an optional trailing timestamp accepted — a
// peer running a newer build must not break the whole federation scrape.
func ParseText(r io.Reader) (*Exposition, error) {
	exp := &Exposition{Types: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 4<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) == 4 && fields[1] == "TYPE" {
				exp.Types[fields[2]] = fields[3]
			}
			continue
		}
		series, rest, ok := splitSample(line)
		if !ok {
			exp.Skipped++
			continue
		}
		v, err := strconv.ParseFloat(strings.Fields(rest)[0], 64)
		if err != nil {
			exp.Skipped++
			continue
		}
		exp.Samples = append(exp.Samples, SeriesSample{Series: series, Value: v})
	}
	if err := sc.Err(); err != nil {
		return exp, fmt.Errorf("metrics: parse exposition: %w", err)
	}
	return exp, nil
}

// splitSample separates a sample line into its series name and the value
// field(s). Label values may contain spaces, so the split point is the first
// space after the closing brace when labels are present.
func splitSample(line string) (series, rest string, ok bool) {
	i := 0
	if j := strings.IndexByte(line, '{'); j >= 0 {
		k := strings.IndexByte(line[j:], '}')
		if k < 0 {
			return "", "", false
		}
		i = j + k + 1
	}
	sp := strings.IndexByte(line[i:], ' ')
	if sp < 0 {
		return "", "", false
	}
	series = line[:i+sp]
	rest = strings.TrimSpace(line[i+sp:])
	if series == "" || rest == "" {
		return "", "", false
	}
	return series, rest, true
}

// familyOf resolves the family a sample belongs to and whether the sample is
// summable across nodes (counter or histogram child series). Histogram child
// series (_bucket/_sum/_count) resolve to their parent family.
func (e *Exposition) familyOf(series string) (fam, typ string, summable bool) {
	base, _ := splitName(series)
	if t, ok := e.Types[base]; ok {
		return base, t, t == "counter"
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		parent := strings.TrimSuffix(base, suffix)
		if parent == base {
			continue
		}
		if t, ok := e.Types[parent]; ok && t == "histogram" {
			return parent, "histogram", true
		}
	}
	return base, "untyped", false
}

// Federate merges per-node expositions into one cluster-wide exposition and
// writes it in text format. nodes maps a peer label (the advertise address,
// or "self") to its parsed scrape. Counters and histogram series with
// identical rendered names are summed across nodes — cumulative buckets sum
// into valid cumulative buckets. Gauges (and untyped series) are relabelled
// with a `peer` label per node so point-in-time values stay attributable
// instead of being summed into nonsense.
func Federate(w io.Writer, nodes map[string]*Exposition) error {
	type famOut struct {
		typ    string
		summed map[string]float64
		series []SeriesSample
	}
	fams := make(map[string]*famOut)
	order := make([]string, 0, len(nodes))
	for label := range nodes {
		order = append(order, label)
	}
	sort.Strings(order)
	for _, label := range order {
		exp := nodes[label]
		if exp == nil {
			continue
		}
		for _, s := range exp.Samples {
			fam, typ, summable := exp.familyOf(s.Series)
			f, ok := fams[fam]
			if !ok {
				f = &famOut{typ: typ, summed: make(map[string]float64)}
				fams[fam] = f
			}
			if f.typ == "untyped" && typ != "untyped" {
				f.typ = typ
			}
			if summable {
				f.summed[s.Series] += s.Value
			} else {
				f.series = append(f.series, SeriesSample{
					Series: spliceSuffix(s.Series, "", "peer", label),
					Value:  s.Value,
				})
			}
		}
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		typ := f.typ
		if typ == "untyped" {
			typ = "gauge"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ); err != nil {
			return err
		}
		series := make([]SeriesSample, 0, len(f.summed)+len(f.series))
		for s, v := range f.summed {
			series = append(series, SeriesSample{Series: s, Value: v})
		}
		series = append(series, f.series...)
		sort.Slice(series, func(i, j int) bool {
			return seriesSortKey(series[i].Series) < seriesSortKey(series[j].Series)
		})
		for _, s := range series {
			if err := writeSample(w, s.Series, s.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// seriesSortKey orders series lexically except for histogram buckets, whose
// `le` value sorts numerically so cumulative buckets come out ascending
// (lexical order would put le="10.4" before le="2.6").
func seriesSortKey(series string) string {
	base, labels := splitName(series)
	if !strings.HasSuffix(base, "_bucket") {
		return series
	}
	i := strings.Index(labels, `le="`)
	if i < 0 {
		return series
	}
	j := strings.IndexByte(labels[i+4:], '"')
	if j < 0 {
		return series
	}
	le := labels[i+4 : i+4+j]
	rest := base + "{" + labels[:i] + labels[i+4+j:]
	if le == "+Inf" {
		return rest + "~" // past every padded numeric key
	}
	v, err := strconv.ParseFloat(le, 64)
	if err != nil {
		return series
	}
	return rest + fmt.Sprintf("%020.9f", v)
}
