package metrics

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestParseTextRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total").Add(7)
	r.Counter(Label("routed_total", "peer", "http://p:1")).Add(2)
	r.Gauge("queue_depth").Set(3.5)
	h := r.Histogram("latency_seconds")
	h.Observe(0.01)
	h.Observe(2.5)

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if exp.Skipped != 0 {
		t.Fatalf("skipped %d lines of our own exposition", exp.Skipped)
	}
	if exp.Types["jobs_total"] != "counter" || exp.Types["latency_seconds"] != "histogram" {
		t.Fatalf("types: %v", exp.Types)
	}
	found := map[string]float64{}
	for _, s := range exp.Samples {
		found[s.Series] = s.Value
	}
	if found["jobs_total"] != 7 {
		t.Fatalf("jobs_total = %v", found["jobs_total"])
	}
	if found[`routed_total{peer="http://p:1"}`] != 2 {
		t.Fatalf("labelled counter lost: %v", found)
	}
	if found["latency_seconds_count"] != 2 || found["latency_seconds_sum"] != 2.51 {
		t.Fatalf("histogram sum/count: %v %v", found["latency_seconds_sum"], found["latency_seconds_count"])
	}
	fam, typ, summable := exp.familyOf(`latency_seconds_bucket{le="+Inf"}`)
	if fam != "latency_seconds" || typ != "histogram" || !summable {
		t.Fatalf("bucket family = %s/%s summable=%v", fam, typ, summable)
	}
}

func TestParseTextTolerant(t *testing.T) {
	in := strings.Join([]string{
		"# HELP something ignored",
		"# TYPE good counter",
		"good 4",
		"with_ts 5 1700000000000",
		"malformed",
		"bad_value{x=\"y\"} notanumber",
		"",
	}, "\n")
	exp, err := ParseText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if exp.Skipped != 2 {
		t.Fatalf("skipped = %d, want 2", exp.Skipped)
	}
	if len(exp.Samples) != 2 || exp.Samples[1].Value != 5 {
		t.Fatalf("samples: %+v", exp.Samples)
	}
}

func buildExp(t *testing.T, fill func(r *Registry)) *Exposition {
	t.Helper()
	r := NewRegistry()
	fill(r)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return exp
}

func TestFederate(t *testing.T) {
	a := buildExp(t, func(r *Registry) {
		r.Counter("sccgd_jobs_total").Add(3)
		r.Gauge("sccgd_cache_entries").Set(10)
		h := r.Histogram("sccgd_pull_seconds")
		h.Observe(0.2)
	})
	b := buildExp(t, func(r *Registry) {
		r.Counter("sccgd_jobs_total").Add(4)
		r.Gauge("sccgd_cache_entries").Set(5)
		h := r.Histogram("sccgd_pull_seconds")
		h.Observe(0.4)
		h.Observe(0.4)
	})

	var out bytes.Buffer
	if err := Federate(&out, map[string]*Exposition{"self": a, "http://b:1": b}); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	merged, err := ParseText(strings.NewReader(text))
	if err != nil || merged.Skipped != 0 {
		t.Fatalf("federated output does not re-parse: %v skipped=%d\n%s", err, merged.Skipped, text)
	}
	vals := map[string]float64{}
	for _, s := range merged.Samples {
		vals[s.Series] = s.Value
	}
	if vals["sccgd_jobs_total"] != 7 {
		t.Fatalf("counter not summed: %v", vals["sccgd_jobs_total"])
	}
	if vals[`sccgd_cache_entries{peer="self"}`] != 10 || vals[`sccgd_cache_entries{peer="http://b:1"}`] != 5 {
		t.Fatalf("gauges not peer-labelled:\n%s", text)
	}
	if vals["sccgd_pull_seconds_count"] != 3 {
		t.Fatalf("histogram count not summed: %v", vals["sccgd_pull_seconds_count"])
	}
	if vals[`sccgd_pull_seconds_bucket{le="+Inf"}`] != 3 {
		t.Fatalf("+Inf bucket not summed:\n%s", text)
	}
	// Buckets ascend: cumulative counts never decrease in output order.
	last := -1.0
	lastLe := ""
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "sccgd_pull_seconds_bucket") {
			continue
		}
		fields := strings.Fields(line)
		v := vals[fields[0]]
		if v < last {
			t.Fatalf("bucket order broken at %s (after %s):\n%s", fields[0], lastLe, text)
		}
		last, lastLe = v, fields[0]
	}
	if !strings.Contains(text, "# TYPE sccgd_jobs_total counter") {
		t.Fatalf("missing TYPE line:\n%s", text)
	}
}

func TestFederateHandlesDuration(t *testing.T) {
	// ObserveSince-style values survive a parse→federate→parse cycle.
	a := buildExp(t, func(r *Registry) {
		r.Histogram("d_seconds").ObserveDuration(1500 * time.Millisecond)
	})
	var out bytes.Buffer
	if err := Federate(&out, map[string]*Exposition{"self": a}); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseText(&out); err != nil {
		t.Fatal(err)
	}
}
