package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if r.Counter("hits") != c {
		t.Error("Counter(name) is not idempotent")
	}
}

func TestRegistryRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(3)
	r.Gauge("a_value").Set(1.5)
	r.GaugeFunc("c_live", func() float64 { return 42 })

	snap := r.Snapshot()
	if snap["b_total"] != 3 || snap["a_value"] != 1.5 || snap["c_live"] != 42 {
		t.Errorf("snapshot = %v", snap)
	}

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE a_value gauge\n" +
		"a_value 1.5\n" +
		"# TYPE b_total counter\n" +
		"b_total 3\n" +
		"# TYPE c_live gauge\n" +
		"c_live 42\n"
	if b.String() != want {
		t.Errorf("WriteText = %q, want %q (sorted families, TYPE lines, integers unpadded)", b.String(), want)
	}
}

func TestLabelEscaping(t *testing.T) {
	got := Label("m_total", "path", `a\b"c`+"\n")
	want := `m_total{path="a\\b\"c\n"}`
	if got != want {
		t.Errorf("Label = %q, want %q", got, want)
	}
	// UTF-8 passes through raw — Go's %q would have escaped it.
	got = Label("m_total", "name", "café")
	want = `m_total{name="café"}`
	if got != want {
		t.Errorf("Label = %q, want %q", got, want)
	}
	if Label("bare") != "bare" {
		t.Errorf("Label with no pairs should return the bare name")
	}
}

func TestSpliceSuffix(t *testing.T) {
	cases := []struct{ name, suffix, want string }{
		{"d_seconds", "_sum", "d_seconds_sum"},
		{`d_seconds{route="/x"}`, "_sum", `d_seconds_sum{route="/x"}`},
	}
	for _, c := range cases {
		if got := spliceSuffix(c.name, c.suffix); got != c.want {
			t.Errorf("spliceSuffix(%q, %q) = %q, want %q", c.name, c.suffix, got, c.want)
		}
	}
	got := spliceSuffix(`d_seconds{route="/x"}`, "_bucket", "le", "0.1")
	want := `d_seconds_bucket{route="/x",le="0.1"}`
	if got != want {
		t.Errorf("spliceSuffix bucket = %q, want %q", got, want)
	}
	got = spliceSuffix("d_seconds", "_bucket", "le", "+Inf")
	want = `d_seconds_bucket{le="+Inf"}`
	if got != want {
		t.Errorf("spliceSuffix bare bucket = %q, want %q", got, want)
	}
}

// TestHistogramHammer drives a histogram from many goroutines with a known
// mix of values and asserts exact bucket counts, count, and sum afterwards.
// Run under -race in CI, this doubles as the lock-freedom proof.
func TestHistogramHammer(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", 0.001, 0.01, 0.1, 1)
	if r.Histogram("lat_seconds") != h {
		t.Fatal("Histogram(name) is not idempotent")
	}

	const goroutines = 8
	const perG = 5000
	// Each goroutine observes the same 5-value cycle, one value per bucket
	// including +Inf, so expected per-bucket counts are exact.
	values := []float64{0.0005, 0.005, 0.05, 0.5, 5}
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				h.Observe(values[j%len(values)])
			}
		}()
	}
	wg.Wait()

	wantPer := int64(goroutines * perG / len(values))
	counts := h.BucketCounts()
	if len(counts) != 5 {
		t.Fatalf("bucket count slots = %d, want 5", len(counts))
	}
	for i, c := range counts {
		if c != wantPer {
			t.Errorf("bucket[%d] = %d, want %d", i, c, wantPer)
		}
	}
	if got := h.Count(); got != int64(goroutines*perG) {
		t.Errorf("count = %d, want %d", got, goroutines*perG)
	}
	wantSum := 0.0
	for _, v := range values {
		wantSum += v * float64(wantPer)
	}
	if got := h.Sum(); math.Abs(got-wantSum) > 1e-6*wantSum {
		t.Errorf("sum = %g, want %g", got, wantSum)
	}
}

// TestHistogramExposition checks the rendered cumulative bucket series, the
// le="+Inf" terminal bucket, and that labelled histogram series splice the
// le label after the existing labels.
func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(Label("req_seconds", "route", "/jobs"), 0.1, 1)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE req_seconds histogram\n" +
		`req_seconds_bucket{route="/jobs",le="0.1"} 1` + "\n" +
		`req_seconds_bucket{route="/jobs",le="1"} 2` + "\n" +
		`req_seconds_bucket{route="/jobs",le="+Inf"} 3` + "\n" +
		`req_seconds_sum{route="/jobs"} 2.55` + "\n" +
		`req_seconds_count{route="/jobs"} 3` + "\n"
	if b.String() != want {
		t.Errorf("WriteText = %q, want %q", b.String(), want)
	}

	snap := r.Snapshot()
	if snap[`req_seconds_sum{route="/jobs"}`] != 2.55 || snap[`req_seconds_count{route="/jobs"}`] != 3 {
		t.Errorf("snapshot missing histogram sum/count: %v", snap)
	}
}

func TestOnScrape(t *testing.T) {
	r := NewRegistry()
	r.OnScrape(func(e *Emitter) {
		e.Gauge("queue_depth", 7)
		e.Counter(Label("launches_total", "device", "0"), 3)
	})
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE launches_total counter\n" +
		`launches_total{device="0"} 3` + "\n" +
		"# TYPE queue_depth gauge\n" +
		"queue_depth 7\n"
	if b.String() != want {
		t.Errorf("WriteText = %q, want %q", b.String(), want)
	}
	if snap := r.Snapshot(); snap["queue_depth"] != 7 {
		t.Errorf("snapshot missing scrape sample: %v", snap)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	if len(b) != len(want) {
		t.Fatalf("len = %d, want %d", len(b), len(want))
	}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Errorf("bucket[%d] = %g, want %g", i, b[i], want[i])
		}
	}
	if ExpBuckets(0, 2, 3) != nil || ExpBuckets(1, 1, 3) != nil || ExpBuckets(1, 2, 0) != nil {
		t.Error("invalid ExpBuckets args should return nil")
	}
}

// TestHistogramDropsNonFinite: NaN and ±Inf observations must never reach
// the CAS-folded sum (one NaN would make `_sum` NaN for the registry's
// lifetime and break Prometheus scrapers); they land in the Dropped tally
// and surface as a `_dropped_total` self-metric instead.
func TestHistogramDropsNonFinite(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(Label("req_seconds", "route", "/matrix"), 0.1, 1)
	h.Observe(0.05)
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	h.Observe(math.Inf(-1))
	h.Observe(0.5)

	if got := h.Count(); got != 2 {
		t.Errorf("count = %d, want 2 (non-finite observations must not count)", got)
	}
	if got := h.Sum(); got != 0.55 {
		t.Errorf("sum = %g, want 0.55 (sum poisoned by a non-finite value)", got)
	}
	if !isFinite(h.Sum()) {
		t.Fatalf("sum is non-finite: %g", h.Sum())
	}
	if got := h.Dropped(); got != 3 {
		t.Errorf("dropped = %d, want 3", got)
	}
	var total int64
	for _, c := range h.BucketCounts() {
		total += c
	}
	if total != 2 {
		t.Errorf("bucket total = %d, want 2", total)
	}

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	wantLine := `req_seconds_dropped_total{route="/matrix"} 3`
	if !strings.Contains(b.String(), "# TYPE req_seconds_dropped_total counter\n"+wantLine+"\n") {
		t.Errorf("exposition missing dropped self-metric:\n%s", b.String())
	}
	if snap := r.Snapshot(); snap[`req_seconds_dropped_total{route="/matrix"}`] != 3 {
		t.Errorf("snapshot missing dropped self-metric: %v", snap)
	}
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
