package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if r.Counter("hits") != c {
		t.Error("Counter(name) is not idempotent")
	}
}

func TestRegistryRender(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(3)
	r.Gauge("a_value").Set(1.5)
	r.GaugeFunc("c_live", func() float64 { return 42 })

	snap := r.Snapshot()
	if snap["b_total"] != 3 || snap["a_value"] != 1.5 || snap["c_live"] != 42 {
		t.Errorf("snapshot = %v", snap)
	}

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := "a_value 1.5\nb_total 3\nc_live 42\n"
	if b.String() != want {
		t.Errorf("WriteText = %q, want %q (sorted, integers unpadded)", b.String(), want)
	}
}
