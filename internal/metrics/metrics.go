// Package metrics provides the measurement and reporting helpers shared by
// the experiment drivers: monotonic stopwatches, speedup and geometric-mean
// arithmetic (Fig. 12 reports the geometric mean of per-dataset speedups),
// and fixed-width table rendering for paper-style output.
package metrics

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// Stopwatch measures wall-clock spans.
type Stopwatch struct {
	start time.Time
}

// Start returns a running stopwatch.
func Start() Stopwatch { return Stopwatch{start: time.Now()} }

// Elapsed returns the time since Start.
func (s Stopwatch) Elapsed() time.Duration { return time.Since(s.start) }

// ElapsedSeconds returns the elapsed time in seconds.
func (s Stopwatch) ElapsedSeconds() float64 { return time.Since(s.start).Seconds() }

// Speedup returns base/observed, the convention of the paper's tables
// (larger is better for the observed system).
func Speedup(base, observed float64) float64 {
	if observed <= 0 {
		return math.Inf(1)
	}
	return base / observed
}

// GeoMean returns the geometric mean of positive values, NaN when the input
// is empty or contains non-positive entries.
func GeoMean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	var logSum float64
	for _, v := range values {
		if v <= 0 {
			return math.NaN()
		}
		logSum += math.Log(v)
	}
	return math.Exp(logSum / float64(len(values)))
}

// Mean returns the arithmetic mean, NaN when empty.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// StdDev returns the population standard deviation, NaN when empty.
func StdDev(values []float64) float64 {
	m := Mean(values)
	if math.IsNaN(m) {
		return m
	}
	var sq float64
	for _, v := range values {
		sq += (v - m) * (v - m)
	}
	return math.Sqrt(sq / float64(len(values)))
}

// Table renders fixed-width rows for terminal output.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "n/a"
	case v != 0 && math.Abs(v) < 0.01:
		return fmt.Sprintf("%.2e", v)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
