package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestSpeedup(t *testing.T) {
	if got := Speedup(100, 10); got != 10 {
		t.Fatalf("speedup = %v", got)
	}
	if !math.IsInf(Speedup(1, 0), 1) {
		t.Fatal("zero observed should be +Inf")
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Fatalf("geomean = %v, want 4", got)
	}
	if got := GeoMean([]float64{5}); got != 5 {
		t.Fatalf("geomean single = %v", got)
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Fatal("empty geomean should be NaN")
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Fatal("negative geomean should be NaN")
	}
}

func TestMeanStdDev(t *testing.T) {
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(vals); m != 5 {
		t.Fatalf("mean = %v", m)
	}
	if sd := StdDev(vals); math.Abs(sd-2) > 1e-12 {
		t.Fatalf("stddev = %v", sd)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(StdDev(nil)) {
		t.Fatal("empty stats should be NaN")
	}
}

func TestStopwatch(t *testing.T) {
	sw := Start()
	time.Sleep(2 * time.Millisecond)
	if sw.Elapsed() < time.Millisecond {
		t.Fatal("stopwatch did not advance")
	}
	if sw.ElapsedSeconds() <= 0 {
		t.Fatal("seconds not positive")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("name", "speedup", "time")
	tb.AddRow("PixelBox", 18.4, 3600*time.Millisecond)
	tb.AddRow("GEOS", 1.0, 64*time.Second)
	out := tb.String()
	if !strings.Contains(out, "PixelBox") || !strings.Contains(out, "18.40") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
	// Columns align: header and separator share width.
	if len(lines[0]) != len(lines[1]) {
		t.Fatalf("misaligned header/separator:\n%s", out)
	}
}

func TestTableFloatFormats(t *testing.T) {
	tb := NewTable("v")
	tb.AddRow(0.00001)
	tb.AddRow(12345.6)
	tb.AddRow(math.NaN())
	out := tb.String()
	if !strings.Contains(out, "e-05") || !strings.Contains(out, "12346") || !strings.Contains(out, "n/a") {
		t.Fatalf("float formatting wrong:\n%s", out)
	}
}
