package metrics

// Histogram is an atomic, log-bucketed latency histogram in the Prometheus
// cumulative-bucket model: Observe classifies a value into the first bucket
// whose upper bound contains it, WriteText renders the series as
// `name_bucket{le="..."}` lines (cumulative counts, `le="+Inf"` last) plus
// `name_sum` and `name_count`. Observations are lock-free — one atomic add
// per bucket count plus a CAS loop folding the value into the sum — so the
// hot paths (HTTP requests, tile reads, executor batches) can observe
// unconditionally.

import (
	"math"
	"sync/atomic"
	"time"
)

// DefBuckets is the default log-spaced bound set: powers of 2 from 100µs to
// ~105s (21 buckets). One set serves every latency the daemon measures —
// sub-millisecond tile reads through multi-second matrix jobs — because log
// spacing keeps relative error constant across the range.
var DefBuckets = ExpBuckets(1e-4, 2, 21)

// ExpBuckets returns n exponentially growing bucket upper bounds:
// start, start*factor, start*factor², ... The +Inf bucket is implicit.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		return nil
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Histogram counts observations into cumulative log-spaced buckets. Safe for
// concurrent use; create through Registry.Histogram.
type Histogram struct {
	// bounds are the finite bucket upper bounds, ascending; counts has one
	// extra slot for the implicit +Inf bucket.
	bounds  []float64
	counts  []int64
	sumBits uint64
	count   int64
	// dropped counts non-finite observations rejected by Observe. One NaN
	// folded into sumBits would make _sum NaN forever (NaN + x = NaN), so
	// such values never touch the sum — they are tallied here instead and
	// exposed as the histogram's `_dropped_total` self-metric.
	dropped int64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// Observe records one value. Non-finite values (NaN, ±Inf) are dropped —
// recorded only in the Dropped tally — because the CAS sum below is
// cumulative and a single NaN would poison `_sum` for the registry's
// lifetime, breaking every scraper reading the series.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		atomic.AddInt64(&h.dropped, 1)
		return
	}
	// Log-spaced bounds make a linear scan cheap (≤ ~21 compares), and the
	// scan is branch-predictable for clustered latencies; no lock, no search
	// allocation.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	atomic.AddInt64(&h.counts[i], 1)
	atomic.AddInt64(&h.count, 1)
	for {
		old := atomic.LoadUint64(&h.sumBits)
		next := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(&h.sumBits, old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start).Seconds()) }

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Sum returns the total of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(atomic.LoadUint64(&h.sumBits)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return atomic.LoadInt64(&h.count) }

// Dropped returns the number of non-finite observations rejected by Observe.
func (h *Histogram) Dropped() int64 { return atomic.LoadInt64(&h.dropped) }

// BucketCounts returns the non-cumulative per-bucket counts, the last entry
// being the +Inf bucket. The copy is not an atomic snapshot across buckets —
// like every Prometheus scrape, it can interleave with observations — but
// each individual count is atomically read.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = atomic.LoadInt64(&h.counts[i])
	}
	return out
}

// Bounds returns the finite bucket upper bounds.
func (h *Histogram) Bounds() []float64 { return h.bounds }
