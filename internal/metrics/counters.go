package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label renders a Prometheus-style metric name with label pairs, e.g.
// Label("pairs_total", "executor", "gpu0") = `pairs_total{executor="gpu0"}`.
// Registries key metrics by the full rendered name, so labelled series are
// independent metrics that sort together in the text exposition. Label
// values are escaped per the Prometheus text format: backslash, double
// quote, and newline only — other bytes (including UTF-8) pass through raw,
// unlike Go's %q which would mangle them.
func Label(name string, kv ...string) string {
	if len(kv) < 2 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// spliceSuffix inserts a suffix (and optional extra label pairs) into a
// possibly-labelled series name: spliceSuffix(`d_seconds{route="/x"}`,
// "_bucket", "le", "0.1") = `d_seconds_bucket{route="/x",le="0.1"}`.
func spliceSuffix(name, suffix string, kv ...string) string {
	base, labels := splitName(name)
	var b strings.Builder
	b.WriteString(base)
	b.WriteString(suffix)
	if labels == "" && len(kv) == 0 {
		return b.String()
	}
	b.WriteByte('{')
	b.WriteString(labels)
	for i := 0; i+1 < len(kv); i += 2 {
		if b.String()[b.Len()-1] != '{' {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// splitName separates a rendered series name into its family (metric name)
// and the label body between the braces ("" when unlabelled).
func splitName(name string) (family, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// Counter is a monotonically increasing counter, safe for concurrent use.
type Counter struct {
	v int64
}

// Inc adds one.
func (c *Counter) Inc() { atomic.AddInt64(&c.v, 1) }

// Add adds d (d must be non-negative for the counter to stay monotonic).
func (c *Counter) Add(d int64) { atomic.AddInt64(&c.v, d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return atomic.LoadInt64(&c.v) }

// Gauge is a settable float64 value, safe for concurrent use.
type Gauge struct {
	bits uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { atomic.StoreUint64(&g.bits, math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(atomic.LoadUint64(&g.bits)) }

// Registry is a named collection of counters, gauges, gauge functions, and
// histograms, rendered in the Prometheus text exposition format (v0.0.4:
// `# TYPE` comments, families grouped, series sorted deterministically) for
// scraping endpoints like sccgd's GET /metrics.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	funcs      map[string]func() float64
	histograms map[string]*Histogram
	scrapers   []func(*Emitter)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		funcs:      make(map[string]func() float64),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a metric whose value is read live at render time
// (e.g. a scheduler queue depth or a device's accumulated busy seconds).
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Histogram returns the named histogram, creating it on first use with the
// given bucket upper bounds (DefBuckets when none are given). The bounds of
// an existing histogram are never changed by later calls, so every labelled
// series of one family should be created with the same bounds.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// OnScrape registers a collector invoked on every WriteText call. Collectors
// emit point-in-time samples (e.g. scheduler queue depths read under the
// scheduler's own lock) that merge into the same sorted, typed exposition as
// registered metrics.
func (r *Registry) OnScrape(fn func(*Emitter)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.scrapers = append(r.scrapers, fn)
}

// Emitter collects typed samples from OnScrape collectors during a scrape.
type Emitter struct {
	samples []sample
}

// Counter emits one counter sample under the (possibly labelled) name.
func (e *Emitter) Counter(name string, v float64) {
	e.samples = append(e.samples, sample{name: name, value: v, typ: "counter"})
}

// Gauge emits one gauge sample under the (possibly labelled) name.
func (e *Emitter) Gauge(name string, v float64) {
	e.samples = append(e.samples, sample{name: name, value: v, typ: "gauge"})
}

type sample struct {
	name  string
	value float64
	typ   string
}

// Snapshot returns every scalar metric's current value by name. Histograms
// contribute their `_sum` and `_count` series; scrape collectors contribute
// their samples.
func (r *Registry) Snapshot() map[string]float64 {
	counters, gauges, funcs, histograms, scrapers := r.copyRefs()

	// Read values outside the lock: gauge funcs and scrape collectors may
	// take other locks.
	snap := make(map[string]float64, len(counters)+len(gauges)+len(funcs)+2*len(histograms))
	for n, c := range counters {
		snap[n] = float64(c.Value())
	}
	for n, g := range gauges {
		snap[n] = g.Value()
	}
	for n, f := range funcs {
		snap[n] = f()
	}
	for n, h := range histograms {
		snap[spliceSuffix(n, "_sum")] = h.Sum()
		snap[spliceSuffix(n, "_count")] = float64(h.Count())
		if d := h.Dropped(); d > 0 {
			snap[spliceSuffix(n, "_dropped_total")] = float64(d)
		}
	}
	for _, s := range collectScrapes(scrapers) {
		snap[s.name] = s.value
	}
	return snap
}

func (r *Registry) copyRefs() (map[string]*Counter, map[string]*Gauge, map[string]func() float64, map[string]*Histogram, []func(*Emitter)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	funcs := make(map[string]func() float64, len(r.funcs))
	for n, f := range r.funcs {
		funcs[n] = f
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for n, h := range r.histograms {
		histograms[n] = h
	}
	scrapers := make([]func(*Emitter), len(r.scrapers))
	copy(scrapers, r.scrapers)
	return counters, gauges, funcs, histograms, scrapers
}

func collectScrapes(scrapers []func(*Emitter)) []sample {
	var e Emitter
	for _, fn := range scrapers {
		fn(&e)
	}
	return e.samples
}

// family groups every series that shares a metric name (the part before the
// label braces) so the exposition emits one `# TYPE` line per family.
type family struct {
	typ        string
	series     []sample     // scalar series, sorted by name at render
	histograms []histSeries // histogram series, sorted by name at render
}

type histSeries struct {
	name   string
	bounds []float64
	counts []int64 // non-cumulative, +Inf last
	sum    float64
	count  int64
}

// WriteText renders the registry in the Prometheus text exposition format:
// families sorted by name, one `# TYPE` line per family, series within a
// family sorted, histogram buckets cumulative with an explicit `+Inf` le.
func (r *Registry) WriteText(w io.Writer) error {
	counters, gauges, funcs, histograms, scrapers := r.copyRefs()

	fams := make(map[string]*family)
	get := func(name, typ string) *family {
		fam, _ := splitName(name)
		f, ok := fams[fam]
		if !ok {
			f = &family{typ: typ}
			fams[fam] = f
		}
		return f
	}
	for n, c := range counters {
		f := get(n, "counter")
		f.series = append(f.series, sample{name: n, value: float64(c.Value())})
	}
	for n, g := range gauges {
		f := get(n, "gauge")
		f.series = append(f.series, sample{name: n, value: g.Value()})
	}
	for n, fn := range funcs {
		f := get(n, "gauge")
		f.series = append(f.series, sample{name: n, value: fn()})
	}
	for n, h := range histograms {
		f := get(n, "histogram")
		f.typ = "histogram"
		f.histograms = append(f.histograms, histSeries{
			name:   n,
			bounds: h.Bounds(),
			counts: h.BucketCounts(),
			sum:    h.Sum(),
			count:  h.Count(),
		})
		// Self-metric: non-finite observations the histogram refused. Only
		// emitted once something was dropped, so healthy registries carry no
		// extra series.
		if d := h.Dropped(); d > 0 {
			name := spliceSuffix(n, "_dropped_total")
			df := get(name, "counter")
			df.series = append(df.series, sample{name: name, value: float64(d)})
		}
	}
	for _, s := range collectScrapes(scrapers) {
		f := get(s.name, s.typ)
		f.series = append(f.series, sample{name: s.name, value: s.value})
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)

	for _, fam := range names {
		f := fams[fam]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, f.typ); err != nil {
			return err
		}
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].name < f.series[j].name })
		for _, s := range f.series {
			if err := writeSample(w, s.name, s.value); err != nil {
				return err
			}
		}
		sort.Slice(f.histograms, func(i, j int) bool { return f.histograms[i].name < f.histograms[j].name })
		for _, h := range f.histograms {
			cum := int64(0)
			for i, c := range h.counts {
				cum += c
				le := "+Inf"
				if i < len(h.bounds) {
					le = formatSample(h.bounds[i])
				}
				if err := writeSample(w, spliceSuffix(h.name, "_bucket", "le", le), float64(cum)); err != nil {
					return err
				}
			}
			if err := writeSample(w, spliceSuffix(h.name, "_sum"), h.sum); err != nil {
				return err
			}
			if err := writeSample(w, spliceSuffix(h.name, "_count"), float64(h.count)); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSample(w io.Writer, name string, v float64) error {
	_, err := fmt.Fprintf(w, "%s %s\n", name, formatSample(v))
	return err
}

// formatSample renders integers unpadded and everything else with %g, matching
// what Prometheus parsers accept and keeping the output stable for tests.
func formatSample(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
