package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label renders a Prometheus-style metric name with label pairs, e.g.
// Label("pairs_total", "executor", "gpu0") = `pairs_total{executor="gpu0"}`.
// Registries key metrics by the full rendered name, so labelled series are
// independent metrics that sort together in the text exposition.
func Label(name string, kv ...string) string {
	if len(kv) < 2 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing counter, safe for concurrent use.
type Counter struct {
	v int64
}

// Inc adds one.
func (c *Counter) Inc() { atomic.AddInt64(&c.v, 1) }

// Add adds d (d must be non-negative for the counter to stay monotonic).
func (c *Counter) Add(d int64) { atomic.AddInt64(&c.v, d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return atomic.LoadInt64(&c.v) }

// Gauge is a settable float64 value, safe for concurrent use.
type Gauge struct {
	bits uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { atomic.StoreUint64(&g.bits, math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(atomic.LoadUint64(&g.bits)) }

// Registry is a named collection of counters, gauges, and gauge functions,
// rendered in the Prometheus text exposition format (one `name value` line
// per metric) for scraping endpoints like sccgd's GET /metrics.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	funcs    map[string]func() float64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		funcs:    make(map[string]func() float64),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a metric whose value is read live at render time
// (e.g. a scheduler queue depth or a device's accumulated busy seconds).
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Snapshot returns every metric's current value by name.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	funcs := make(map[string]func() float64, len(r.funcs))
	for n, f := range r.funcs {
		funcs[n] = f
	}
	r.mu.Unlock()

	// Read values outside the lock: gauge funcs may take other locks.
	snap := make(map[string]float64, len(counters)+len(gauges)+len(funcs))
	for n, c := range counters {
		snap[n] = float64(c.Value())
	}
	for n, g := range gauges {
		snap[n] = g.Value()
	}
	for n, f := range funcs {
		snap[n] = f()
	}
	return snap
}

// WriteText renders the registry as `name value` lines sorted by name.
func (r *Registry) WriteText(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		v := snap[n]
		var err error
		if v == math.Trunc(v) && math.Abs(v) < 1e15 {
			_, err = fmt.Fprintf(w, "%s %d\n", n, int64(v))
		} else {
			_, err = fmt.Fprintf(w, "%s %g\n", n, v)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
