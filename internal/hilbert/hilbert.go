// Package hilbert implements the Hilbert space-filling curve mapping used by
// the Hilbert R-tree (Kamel & Faloutsos, VLDB 1994) that the SCCG pipeline's
// builder stage uses to index polygon MBRs (paper §4.1).
package hilbert

// D2XY converts a distance d along the Hilbert curve of order k (a 2^k x 2^k
// grid) into (x, y) coordinates.
func D2XY(k uint, d uint64) (x, y uint32) {
	var rx, ry uint64
	t := d
	for s := uint64(1); s < 1<<k; s <<= 1 {
		rx = 1 & (t / 2)
		ry = 1 & (t ^ rx)
		x, y = rot(s, x, y, rx, ry)
		x += uint32(s * rx)
		y += uint32(s * ry)
		t /= 4
	}
	return x, y
}

// XY2D converts (x, y) coordinates on a 2^k x 2^k grid into the distance
// along the Hilbert curve of order k.
func XY2D(k uint, x, y uint32) uint64 {
	var d uint64
	for s := uint64(1) << (k - 1); s > 0; s >>= 1 {
		var rx, ry uint64
		if uint64(x)&s > 0 {
			rx = 1
		}
		if uint64(y)&s > 0 {
			ry = 1
		}
		d += s * s * ((3 * rx) ^ ry)
		x, y = rot(s, x, y, rx, ry)
	}
	return d
}

// rot rotates/flips a quadrant appropriately.
func rot(s uint64, x, y uint32, rx, ry uint64) (uint32, uint32) {
	if ry == 0 {
		if rx == 1 {
			x = uint32(s-1) - x
			y = uint32(s-1) - y
		}
		x, y = y, x
	}
	return x, y
}
