package hilbert

import (
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	const k = 4 // 16x16 grid
	seen := make(map[uint64]bool)
	for x := uint32(0); x < 16; x++ {
		for y := uint32(0); y < 16; y++ {
			d := XY2D(k, x, y)
			if d >= 256 {
				t.Fatalf("d out of range: %d", d)
			}
			if seen[d] {
				t.Fatalf("duplicate curve index %d at (%d,%d)", d, x, y)
			}
			seen[d] = true
			gx, gy := D2XY(k, d)
			if gx != x || gy != y {
				t.Fatalf("round trip (%d,%d) -> %d -> (%d,%d)", x, y, d, gx, gy)
			}
		}
	}
}

// TestLocality verifies the defining property of the Hilbert curve:
// consecutive curve positions are adjacent grid cells (Manhattan distance 1).
func TestLocality(t *testing.T) {
	const k = 5
	px, py := D2XY(k, 0)
	for d := uint64(1); d < 1024; d++ {
		x, y := D2XY(k, d)
		dist := absDiff(x, px) + absDiff(y, py)
		if dist != 1 {
			t.Fatalf("curve jump at d=%d: (%d,%d) -> (%d,%d)", d, px, py, x, y)
		}
		px, py = x, y
	}
}

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestQuickRoundTrip(t *testing.T) {
	const k = 16
	f := func(x, y uint16) bool {
		d := XY2D(k, uint32(x), uint32(y))
		gx, gy := D2XY(k, d)
		return gx == uint32(x) && gy == uint32(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCorners(t *testing.T) {
	// Order-1 curve visits the four cells of the 2x2 grid in the canonical
	// order (0,0),(0,1),(1,1),(1,0).
	wantX := []uint32{0, 0, 1, 1}
	wantY := []uint32{0, 1, 1, 0}
	for d := uint64(0); d < 4; d++ {
		x, y := D2XY(1, d)
		if x != wantX[d] || y != wantY[d] {
			t.Fatalf("d=%d: got (%d,%d), want (%d,%d)", d, x, y, wantX[d], wantY[d])
		}
	}
}
