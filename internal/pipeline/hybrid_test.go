package pipeline

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/pathology"
)

func hybridDataset(t *testing.T) []FileTask {
	t.Helper()
	spec := pathology.Representative()
	spec.Tiles = 6
	return EncodeDataset(pathology.Generate(spec))
}

func devices(n int) []*gpu.Device { return gpu.NewDevices(n, gpu.GTX580()) }

// TestHybridBitIdentical is the tentpole determinism guarantee: no matter
// which executor mix computes which tiles, the reported similarity must be
// bit-identical, because per-pair areas are exact integers and ratio
// accumulation folds per tile in canonical order.
func TestHybridBitIdentical(t *testing.T) {
	tasks := hybridDataset(t)

	gpuOnly, err := Run(tasks, Config{Devices: devices(1)})
	if err != nil {
		t.Fatal(err)
	}
	cpuOnly, err := Run(tasks, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Small batches so the work actually spreads across executors.
	hybrid, err := Run(tasks, Config{Devices: devices(2), CPUAggregators: 2, BatchPairs: 64})
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		res  Result
	}{{"cpu-only", cpuOnly}, {"hybrid", hybrid}} {
		if tc.res.Similarity != gpuOnly.Similarity {
			t.Errorf("%s similarity = %.17g, gpu-only = %.17g (must be bit-identical)",
				tc.name, tc.res.Similarity, gpuOnly.Similarity)
		}
		if tc.res.RatioSum != gpuOnly.RatioSum {
			t.Errorf("%s ratio sum = %.17g, gpu-only = %.17g", tc.name, tc.res.RatioSum, gpuOnly.RatioSum)
		}
		if tc.res.Intersecting != gpuOnly.Intersecting || tc.res.Candidates != gpuOnly.Candidates {
			t.Errorf("%s pair counts (%d,%d) != gpu-only (%d,%d)", tc.name,
				tc.res.Intersecting, tc.res.Candidates, gpuOnly.Intersecting, gpuOnly.Candidates)
		}
	}
	if len(hybrid.TileRatios) != len(tasks) {
		t.Errorf("hybrid tracked %d tiles, want %d", len(hybrid.TileRatios), len(tasks))
	}
}

// TestHybridExecutorAccounting checks that the hybrid pool reports one
// executor per device plus each CPU aggregator, that their pair counts add
// up, and that work actually co-executed on both kinds.
func TestHybridExecutorAccounting(t *testing.T) {
	spec := pathology.Representative()
	spec.Tiles = 12
	tasks := EncodeDataset(pathology.Generate(spec))
	res, err := Run(tasks, Config{Devices: devices(2), CPUAggregators: 2, BatchPairs: 32})
	if err != nil {
		t.Fatal(err)
	}
	ex := res.Stats.Executors
	if len(ex) != 4 {
		t.Fatalf("got %d executors, want 4: %+v", len(ex), ex)
	}
	var gpus, cpus int
	var pairs int64
	for _, e := range ex {
		switch e.Kind {
		case ExecGPU:
			gpus++
		case ExecCPU:
			cpus++
		default:
			t.Errorf("unknown executor kind %q", e.Kind)
		}
		pairs += e.Pairs
		if e.Batches > 0 && e.PairsPerSec <= 0 {
			t.Errorf("executor %s ran %d batches but reports throughput %v", e.ID, e.Batches, e.PairsPerSec)
		}
	}
	if gpus != 2 || cpus != 2 {
		t.Errorf("executor mix gpu=%d cpu=%d, want 2/2", gpus, cpus)
	}
	if got := int64(res.Stats.PairsOnGPU + res.Stats.PairsOnCPU); pairs != got {
		t.Errorf("executor pairs sum %d != pipeline pair count %d", pairs, got)
	}
	if res.Stats.PairsOnGPU == 0 {
		t.Error("no pairs executed on GPU executors")
	}
	// With tiny batches and two CPU executors, CPUs essentially always get
	// work; don't hard-require it to avoid scheduling flakes, but the total
	// must be conserved (checked above).
}

// TestHybridMetricsPublished checks per-executor accounting lands in the
// configured registry under labelled names.
func TestHybridMetricsPublished(t *testing.T) {
	tasks := hybridDataset(t)
	reg := metrics.NewRegistry()
	_, err := Run(tasks, Config{
		Devices:        devices(1),
		CPUAggregators: 1,
		BatchPairs:     64,
		Registry:       reg,
		ExecutorLabel:  "t/",
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	name := metrics.Label("sccg_executor_pairs_total", "executor", "t/gpu0")
	if snap[name] <= 0 {
		t.Errorf("metric %s = %v, want > 0 (snapshot: %v)", name, snap[name], snap)
	}
	if _, ok := snap[metrics.Label("sccg_executor_batches_total", "executor", "t/cpu0")]; !ok {
		t.Errorf("cpu executor metrics missing from registry: %v", snap)
	}
}

// TestClaimTargetScalesWithThroughput pins the cost-model policy: claim
// sizes are proportional to measured executor throughput, clamped to
// [1, BatchPairs].
func TestClaimTargetScalesWithThroughput(t *testing.T) {
	cfg := Config{BatchPairs: 1000}.normalized()
	fast := &executor{id: "gpu0", kind: ExecGPU}
	slow := &executor{id: "cpu0", kind: ExecCPU}
	r := &run{cfg: cfg, executors: []*executor{fast, slow}}

	// Converge the EWMAs onto 1e6 and 1e5 pairs/s.
	for i := 0; i < 20; i++ {
		fast.observe(1_000_000, 1e9) // 1e6 pairs over 1s
		slow.observe(100_000, 1e9)
	}

	if got := r.claimTarget(fast); got != 1000 {
		t.Errorf("fast claim = %d, want full batch 1000", got)
	}
	got := r.claimTarget(slow)
	if got < 80 || got > 120 {
		t.Errorf("slow claim = %d, want ~100 (10%% of fast)", got)
	}
}

// TestWarmthSeedsExecutors checks the warm-start path: a remembered
// measurement for a labelled executor replaces the static prior at pool
// construction, while executors without history keep the static seed, and a
// run with a Warmth configured records its measurements back.
func TestWarmthSeedsExecutors(t *testing.T) {
	warm := NewThroughputMemory()
	warm.Record("shard/gpu0", 123456)
	cfg := Config{
		Devices:        devices(1),
		CPUAggregators: 1,
		ExecutorLabel:  "shard/",
		Warmth:         warm,
	}.normalized()
	execs := buildExecutors(cfg)
	if len(execs) != 2 {
		t.Fatalf("built %d executors, want 2", len(execs))
	}
	if tp := execs[0].throughput(); tp != 123456 {
		t.Errorf("gpu0 seeded with %v, want remembered 123456", tp)
	}
	if tp := execs[1].throughput(); tp != cpuThroughputPrior {
		t.Errorf("cpu0 seeded with %v, want static prior %v (no history)", tp, cpuThroughputPrior)
	}

	// A full run must deposit measurements for the executors that worked.
	if _, err := Run(hybridDataset(t), Config{ExecutorLabel: "warmrun/", Warmth: warm}); err != nil {
		t.Fatal(err)
	}
	if tp, ok := warm.Prior("warmrun/cpu0"); !ok || tp <= 0 {
		t.Errorf("Prior(warmrun/cpu0) = %v, %v; want a positive measurement", tp, ok)
	}
}
