package pipeline

// The hybrid aggregator: the single-device aggregator of paper §4.1
// generalised to a pool of co-executing heterogeneous executors. Each
// simulated GPU device and each PixelBox-CPU worker is an executor that
// steals pair-task batches from the shared aggregator input buffer. The
// paper's buffer-pressure migration heuristic (§4.2: move work to the CPU
// only when the GPU's input buffer fills) generalises here into a
// cost-model-driven stealing policy: every executor measures its own
// throughput (pairs/second, EWMA over its batches) and claims a batch sized
// proportionally to that throughput — the fastest executor claims full
// BatchPairs batches, slower executors claim proportionally less and always
// pick the cheapest tasks in the buffer, so a slow executor can never hold
// the tail of the pipeline hostage while fast executors idle.

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/pixelbox"
)

// Executor kinds.
const (
	ExecGPU = "gpu"
	ExecCPU = "cpu"
)

// ThroughputMemory carries measured executor throughput (EWMA pairs/sec)
// across pipeline runs, keyed by labelled executor ID. A scheduler shares
// one memory across all of a slot's jobs so a new run's first claims are
// sized from the slot's measured history instead of resetting to the static
// priors every time. Safe for concurrent use.
type ThroughputMemory struct {
	mu sync.Mutex
	tp map[string]float64
}

// NewThroughputMemory returns an empty throughput memory.
func NewThroughputMemory() *ThroughputMemory {
	return &ThroughputMemory{tp: make(map[string]float64)}
}

// Prior returns the remembered throughput for a labelled executor ID.
func (m *ThroughputMemory) Prior(id string) (float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.tp[id]
	return v, ok
}

// Record stores an executor's measured throughput for future runs.
func (m *ThroughputMemory) Record(id string, pairsPerSec float64) {
	if pairsPerSec <= 0 {
		return
	}
	m.mu.Lock()
	m.tp[id] = pairsPerSec
	m.mu.Unlock()
}

// ExecutorStats reports one hybrid-aggregator executor's work.
type ExecutorStats struct {
	ID      string
	Kind    string // ExecGPU or ExecCPU
	Batches int64
	Pairs   int64
	Busy    time.Duration
	// PairsPerSec is the executor's final measured throughput (EWMA over
	// its batches) — the quantity the stealing policy sizes claims with.
	PairsPerSec float64
}

// Throughput priors seed the cost model before an executor has processed a
// batch. Only their ratio matters (it sets the first claim sizes); both
// estimates converge to measurements after the first batch. The 8:1 ratio
// reflects the paper's PixelBox-vs-CPU gap at pipeline batch sizes.
const (
	gpuThroughputPrior = 2e6
	cpuThroughputPrior = 2.5e5
	throughputEWMA     = 0.4 // weight of the newest sample
)

// executor is one member of the hybrid aggregator pool.
type executor struct {
	id   string
	kind string
	dev  *gpu.Device        // ExecGPU only
	cpu  pixelbox.CPUConfig // ExecCPU only

	tpBits  uint64 // atomic float64 bits: EWMA pairs/sec
	batches int64  // atomic
	pairs   int64  // atomic
	busyNS  int64  // atomic
}

func (e *executor) throughput() float64 {
	return math.Float64frombits(atomic.LoadUint64(&e.tpBits))
}

// observe folds one batch's measured throughput into the executor's EWMA.
func (e *executor) observe(pairs int, elapsed time.Duration) {
	atomic.AddInt64(&e.batches, 1)
	atomic.AddInt64(&e.pairs, int64(pairs))
	atomic.AddInt64(&e.busyNS, int64(elapsed))
	secs := elapsed.Seconds()
	if pairs <= 0 || secs <= 0 {
		return
	}
	sample := float64(pairs) / secs
	next := e.throughput()*(1-throughputEWMA) + sample*throughputEWMA
	atomic.StoreUint64(&e.tpBits, math.Float64bits(next))
}

func (e *executor) snapshot() ExecutorStats {
	return ExecutorStats{
		ID:          e.id,
		Kind:        e.kind,
		Batches:     atomic.LoadInt64(&e.batches),
		Pairs:       atomic.LoadInt64(&e.pairs),
		Busy:        time.Duration(atomic.LoadInt64(&e.busyNS)),
		PairsPerSec: e.throughput(),
	}
}

// buildExecutors assembles the aggregator pool for a normalized config: one
// GPU executor per device plus CPUAggregators PixelBox-CPU executors. In
// hybrid mode each CPU executor is single-threaded (parallelism comes from
// the pool); in CPU-only mode the lone CPU executor keeps the full
// RunCPUParallel worker count, preserving the original fallback behaviour.
func buildExecutors(cfg Config) []*executor {
	var execs []*executor
	// Warm start: a remembered measurement for this labelled executor beats
	// the static prior — first claims are then sized from the executor's
	// real history instead of converging from scratch every run.
	prior := func(id string, static float64) uint64 {
		if cfg.Warmth != nil {
			if v, ok := cfg.Warmth.Prior(cfg.ExecutorLabel + id); ok {
				return math.Float64bits(v)
			}
		}
		return math.Float64bits(static)
	}
	for i, dev := range cfg.Devices {
		id := fmt.Sprintf("gpu%d", i)
		execs = append(execs, &executor{
			id:     id,
			kind:   ExecGPU,
			dev:    dev,
			tpBits: prior(id, gpuThroughputPrior),
		})
	}
	cpuCfg := cfg.CPU
	if len(cfg.Devices) > 0 || cfg.CPUAggregators > 1 {
		// Any multi-executor pool: parallelism comes from the pool itself,
		// so each CPU executor is single-threaded (otherwise a GPU-less
		// hybrid pool would run CPUAggregators x Workers goroutines).
		cpuCfg.Workers = 1
	}
	for i := 0; i < cfg.CPUAggregators; i++ {
		id := fmt.Sprintf("cpu%d", i)
		execs = append(execs, &executor{
			id:     id,
			kind:   ExecCPU,
			cpu:    cpuCfg,
			tpBits: prior(id, cpuThroughputPrior),
		})
	}
	return execs
}

func pairTaskWeight(t pairTask) int { return len(t.pairs) }

// claimTarget returns the executor's batch-size target: BatchPairs scaled by
// the executor's measured throughput relative to the fastest pool member.
func (r *run) claimTarget(e *executor) int {
	maxTP := 0.0
	for _, o := range r.executors {
		if tp := o.throughput(); tp > maxTP {
			maxTP = tp
		}
	}
	tp := e.throughput()
	if maxTP <= 0 || tp <= 0 {
		return r.cfg.BatchPairs
	}
	want := int(float64(r.cfg.BatchPairs) * tp / maxTP)
	if want < 1 {
		want = 1
	}
	if want > r.cfg.BatchPairs {
		want = r.cfg.BatchPairs
	}
	return want
}

// claim blocks for the executor's next batch of whole tile tasks, sized by
// the cost model. GPU executors consume FIFO; CPU executors in a hybrid pool
// steal the smallest tasks first, mirroring the §4.2 migrator's "select the
// smallest tasks" rule. ok is false when the pair buffer has drained.
func (r *run) claim(e *executor) (batch []pairTask, ok bool) {
	stealSmallest := e.kind == ExecCPU && len(r.executors) > 1
	want := r.claimTarget(e)
	var t pairTask
	if stealSmallest {
		t, ok = r.pairBuf.getMin(pairTaskWeight)
	} else {
		t, ok = r.pairBuf.get()
	}
	if !ok {
		return nil, false
	}
	batch = append(batch, t)
	got := len(t.pairs)
	for got < want {
		if stealSmallest {
			t, ok = r.pairBuf.stealMin(pairTaskWeight)
		} else {
			t, ok = r.pairBuf.tryGet()
		}
		if !ok {
			break
		}
		batch = append(batch, t)
		got += len(t.pairs)
	}
	return batch, true
}

// executorWorker is one executor's aggregation loop: claim a batch, compute
// exact areas with the executor's backend in a single consolidated launch,
// then fold each tile's results into its accumulator.
func (r *run) executorWorker(e *executor) {
	// Batch execution time lands in a per-kind histogram so GPU and CPU batch
	// latency distributions are separable on /metrics; labelled by kind only
	// (not executor ID) to bound series cardinality.
	var batchHist *metrics.Histogram
	if r.cfg.Registry != nil {
		batchHist = r.cfg.Registry.Histogram(metrics.Label("sccg_executor_batch_seconds", "kind", e.kind))
	}
	for {
		batch, ok := r.claim(e)
		if !ok {
			return
		}
		var n int
		for _, t := range batch {
			n += len(t.pairs)
		}
		flat := make([]pixelbox.Pair, 0, n)
		for _, t := range batch {
			flat = append(flat, t.pairs...)
		}
		start := time.Now()
		var results []pixelbox.AreaResult
		if e.kind == ExecGPU {
			results, _, _ = pixelbox.RunGPU(e.dev, flat, r.cfg.PixelBox)
		} else {
			results = pixelbox.RunCPUParallel(flat, e.cpu)
		}
		elapsed := time.Since(start)
		off := 0
		for _, t := range batch {
			r.accumulateTask(t, results[off:off+len(t.pairs)], e.kind == ExecGPU)
			off += len(t.pairs)
		}
		e.observe(n, elapsed)
		if batchHist != nil {
			batchHist.ObserveDuration(elapsed)
		}
		atomic.AddInt64(&r.aggBusy, int64(elapsed))
	}
}
